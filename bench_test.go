// Benchmarks that regenerate every table and figure of the paper's
// evaluation (one per experiment, at Standard scale — a reduced but
// representative workload; run `go run ./cmd/ekho-bench -run all -scale
// full` for the paper's full 30-clip / 6×5-minute configuration).
//
// Each benchmark reports headline metrics from the experiment's report via
// b.ReportMetric so regression runs can track the reproduced results, and
// micro-benchmarks of the hot paths live next to their packages.
package ekho_test

import (
	"testing"

	"ekho/internal/experiments"
	"ekho/internal/hub"
	"ekho/internal/transport"
)

// runExperiment executes one experiment per benchmark iteration and
// reports the named metrics.
func runExperiment(b *testing.B, id string, metrics map[string]string) {
	b.Helper()
	run, ok := experiments.Get(id)
	if !ok {
		b.Fatalf("experiment %q not registered", id)
	}
	for i := 0; i < b.N; i++ {
		report := run(experiments.Standard)
		if len(report.Rows) == 0 {
			b.Fatalf("%s produced no output", id)
		}
		for key, unit := range metrics {
			if v, ok := report.Values[key]; ok {
				b.ReportMetric(v, unit)
			}
		}
	}
}

// BenchmarkFig2EchoThreshold regenerates Figure 2: DCR opinion scores for
// echoes across delays and stimulus categories.
func BenchmarkFig2EchoThreshold(b *testing.B) {
	runExperiment(b, "fig2", map[string]string{
		"speech_10": "DCR@10ms",
	})
}

// BenchmarkTable1LatencyBreakdown regenerates Table 1: per-component
// latency ranges and the RTT-asymmetry clock error.
func BenchmarkTable1LatencyBreakdown(b *testing.B) {
	runExperiment(b, "table1", map[string]string{
		"rtt_err_hi_ms": "ms-rtt-err",
	})
}

// BenchmarkFig5CorrelationStages regenerates Figure 5: the raw, normalized
// and envelope stages of marker detection.
func BenchmarkFig5CorrelationStages(b *testing.B) {
	runExperiment(b, "fig5", map[string]string{
		"norm_peak_to_bg": "peak/bg",
	})
}

// BenchmarkFig6MarkerMatching regenerates Figure 6: timestamp alignment
// recovers positive and negative ISDs exactly.
func BenchmarkFig6MarkerMatching(b *testing.B) {
	runExperiment(b, "fig6", map[string]string{
		"max_abs_err_ms": "ms-err",
	})
}

// BenchmarkFig8EndToEndCDF regenerates Figure 8: the |ISD| CDF across
// end-to-end sessions with and without Ekho.
func BenchmarkFig8EndToEndCDF(b *testing.B) {
	runExperiment(b, "fig8", map[string]string{
		"on_below_10ms_pct":  "%below10ms-on",
		"off_below_50ms_pct": "%below50ms-off",
	})
}

// BenchmarkFig9SessionTrace regenerates Figure 9: the example session with
// scripted loss events.
func BenchmarkFig9SessionTrace(b *testing.B) {
	runExperiment(b, "fig9", map[string]string{
		"initial_isd_ms":      "ms-initial",
		"first_action_frames": "frames-corrected",
	})
}

// BenchmarkFig10MarkerAudibility regenerates Figure 10: marker audibility
// DCR vs relative power C.
func BenchmarkFig10MarkerAudibility(b *testing.B) {
	runExperiment(b, "fig10", map[string]string{
		"c_2.5": "DCR@C2.5",
	})
}

// BenchmarkFig11MarkerDetection regenerates Figure 11: detection rate and
// ISD error across marker volumes.
func BenchmarkFig11MarkerDetection(b *testing.B) {
	runExperiment(b, "fig11", map[string]string{
		"rate_mean_0.5":  "rate@C0.5",
		"err_p99_us_0.5": "us-p99@C0.5",
	})
}

// BenchmarkFig12EkhoVsGCCPHAT regenerates Figure 12: measurement rate vs
// GCC-PHAT under background chatter.
func BenchmarkFig12EkhoVsGCCPHAT(b *testing.B) {
	runExperiment(b, "fig12", map[string]string{
		"ekho_rate_mean_med": "rate-ekho-med",
		"gcc_rate_mean_med":  "rate-gcc-med",
	})
}

// BenchmarkFig13MutedScreen regenerates Figure 13: constant-amplitude
// markers for video-to-audio sync with the screen muted.
func BenchmarkFig13MutedScreen(b *testing.B) {
	runExperiment(b, "fig13", map[string]string{
		"dba_at_15db": "dBA@15dB",
	})
}

// BenchmarkFig14Microphones regenerates Figure 14 (Appendix B): the
// microphone-quality ablation.
func BenchmarkFig14Microphones(b *testing.B) {
	runExperiment(b, "fig14", map[string]string{
		"rate_mean_2": "rate-samsung",
	})
}

// BenchmarkFig15Encoding regenerates Figure 15 (Appendix C): the encoding
// ablation.
func BenchmarkFig15Encoding(b *testing.B) {
	runExperiment(b, "fig15", map[string]string{
		"rate_mean_3": "rate-24kULL",
	})
}

// BenchmarkFig17MicResponses regenerates Figure 17 (Appendix E): the
// microphone frequency responses.
func BenchmarkFig17MicResponses(b *testing.B) {
	runExperiment(b, "fig17", map[string]string{
		"swing_db_2": "dB-swing-samsung",
	})
}

// BenchmarkTable2Corpus regenerates Table 2: the evaluation corpus.
func BenchmarkTable2Corpus(b *testing.B) {
	runExperiment(b, "table2", map[string]string{
		"clips": "clips",
	})
}

// BenchmarkAppendixAReliability regenerates Appendix A: analytic false-
// positive rates validated by Monte Carlo.
func BenchmarkAppendixAReliability(b *testing.B) {
	runExperiment(b, "appa", map[string]string{
		"mtbf_hours_theta5": "h-between-false-peaks",
	})
}

// BenchmarkAblationDesignChoices regenerates the design-choice ablations
// (marker band, marker length, peak threshold) from DESIGN.md.
func BenchmarkAblationDesignChoices(b *testing.B) {
	runExperiment(b, "ablation", map[string]string{
		"band_paper_rate": "rate-6-12kHz",
		"band_low_rate":   "rate-1-5kHz",
	})
}

// BenchmarkImplProfile regenerates the §5.2 implementation profile (CPU
// fraction and memory for real-time operation).
func BenchmarkImplProfile(b *testing.B) {
	runExperiment(b, "impl", map[string]string{
		"cpu_core_pct": "%core",
		"heap_mib":     "MiB-heap",
	})
}

// BenchmarkExtensions measures the beyond-paper features: haptics skew,
// multi-screen sync and PLC-style insertion quality.
func BenchmarkExtensions(b *testing.B) {
	runExperimentHelper(b)
}

// BenchmarkDriftCompensation regenerates the clock-drift sweep (DESIGN
// §11): micro-resampling vs level-only compensation under sample-rate
// offsets. The headline metrics are the +100 ppm acceptance pair — tail
// |ISD| must stay under the 10 ms bound and the residual slope near zero.
func BenchmarkDriftCompensation(b *testing.B) {
	runExperiment(b, "drift", map[string]string{
		"tail_max_ms_drift_100": "ms-tail-max",
		"resid_ppm_drift_100":   "ppm-resid",
	})
}

func runExperimentHelper(b *testing.B) {
	runExperiment(b, "ext", map[string]string{
		"haptic_skew_p95_ms":   "ms-haptic-p95",
		"multi_insync_min_pct": "%multi-insync",
	})
}

// BenchmarkHubDemux measures the hub's packet demultiplexing path alone:
// chat packets for 64 registered (but not yet streaming) sessions are
// dispatched across the sharded registry, so the cost is the hash, the
// shard lookup and the worker handoff without any DSP behind it.
func BenchmarkHubDemux(b *testing.B) {
	const sessions = 64
	mem := hub.NewMemNet()
	conn := mem.Endpoint("hub")
	h := hub.New(hub.Config{
		Capacity:    sessions,
		TickEvery:   -1,
		IdleTimeout: -1,
	}, conn)
	done := make(chan error, 1)
	go func() { done <- h.Serve() }()
	from := mem.Endpoint("bench-client").LocalAddr()
	msgs := make([]transport.Message, sessions)
	for i := range msgs {
		id := uint32(i + 1)
		h.Dispatch(transport.Message{
			Type:    transport.TypeHello,
			Session: id,
			Hello:   transport.Hello{Session: id, Role: transport.RoleScreen},
			From:    from,
		})
		msgs[i] = transport.Message{
			Type:    transport.TypeChat,
			Session: id,
			Chat:    transport.Chat{Session: id},
			From:    from,
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Dispatch(msgs[i%sessions])
	}
	b.StopTimer()
	h.Close()
	if err := <-done; err != nil {
		b.Fatalf("hub serve: %v", err)
	}
	if got := h.Stats().Admitted; got != sessions {
		b.Fatalf("admitted %d sessions, want %d", got, sessions)
	}
}

// BenchmarkHubSessions measures a full 64-session hub: every iteration
// runs the complete loopback fleet (estimation, compensation and all)
// over a short stretch of content and reports the per-session frame
// throughput.
func BenchmarkHubSessions(b *testing.B) {
	const sessions = 64
	const content = 4.0
	for i := 0; i < b.N; i++ {
		rep, err := hub.RunLoopback(hub.LoopbackScenario{
			Sessions:       sessions,
			ContentSeconds: content,
		})
		if err != nil {
			b.Fatalf("RunLoopback: %v", err)
		}
		if len(rep.Results) != sessions {
			b.Fatalf("got %d session results, want %d", len(rep.Results), sessions)
		}
		frames := 0
		for _, r := range rep.Results {
			frames += r.Frames
		}
		b.ReportMetric(float64(frames)/float64(b.N), "frames/op")
	}
}
