// Command ekho-server is the live multi-tenant Ekho server: it hosts up
// to -capacity concurrent sessions on one UDP socket, each streaming a
// marked screen stream and an accessory stream to its own ekho-screen and
// ekho-client pair, estimating the inter-stream delay from the returned
// chat audio and compensating it per session.
//
// Run a single-session demo on one machine:
//
//	ekho-server -listen 127.0.0.1:9000
//	ekho-client -server 127.0.0.1:9000 -air-listen 127.0.0.1:9100
//	ekho-screen -server 127.0.0.1:9000 -air 127.0.0.1:9100 -extra-delay 180ms
//
// Additional player sessions join the same server by picking a session
// id: start more screen/client pairs with a shared -session N. A session
// past -capacity is politely refused with a busy packet. The screen's
// -extra-delay emulates a slow network + TV pipeline; watch the server
// measure the startup gap (~240 ms), insert 12 frames, and hold the
// streams within a frame thereafter — while the client stamps everything
// with a deliberately offset clock, proving no clock synchronization is
// needed.
//
// Wire framing: the server accepts the native v2 framing and RFC 3550
// RTP packetization side by side, sniffing per datagram, and replies to
// each session in whatever framing its hello used. -wire restricts
// accepted framings (auto, v2 or rtp); clients pick theirs with the
// matching -wire flag on ekho-screen/ekho-client.
//
// Observability: -pprof ADDR serves an admin mux with
//
//	/metrics      Prometheus text exposition of every hub counter
//	/sessions     per-session JSON snapshots (wire, ISD, markers, ...)
//	/debug/pprof  the usual net/http/pprof handlers
//
// making scraping the primary way to watch a hub. Signals: SIGHUP prints
// the same numbers as a stats snapshot plus one stable line per live
// session ("session <id> frames=... measurements=... actions=...
// pending=... records=..."), SIGINT/SIGTERM drain the hub (existing
// sessions finish, new ones are refused) and shut down after a short
// grace period. The final snapshot is printed on exit.
//
// With -record DIR every session's full pipeline timeline is captured to
// DIR/session-<id>.ektrace for deterministic replay by ekho-replay.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ekho"
	"ekho/internal/hub"
	"ekho/internal/rtp"
	"ekho/internal/transport"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:9000", "UDP address to listen on")
	capacity := flag.Int("capacity", 64, "maximum concurrent sessions")
	shards := flag.Int("shards", 8, "session registry shards (worker goroutines)")
	duration := flag.Duration("duration", 0, "stop after this long (0 = run until signalled)")
	idle := flag.Duration("idle-timeout", 30*time.Second, "evict sessions with no traffic for this long")
	grace := flag.Duration("grace", 5*time.Second, "drain grace period on SIGINT/SIGTERM")
	markerC := flag.Float64("c", ekho.DefaultMarkerVolume, "marker relative volume C")
	clip := flag.Int("clip", 0, "corpus clip index (0-29)")
	record := flag.String("record", "", "capture each session to <dir>/session-<id>.ektrace for ekho-replay (empty = off)")
	pprofAddr := flag.String("pprof", "", "serve the admin mux (/metrics, /sessions, /debug/pprof) on this address (e.g. 127.0.0.1:6060; empty = off)")
	detector := flag.String("detector", "two-stage", "marker detector pipeline: two-stage or full-rate")
	wire := flag.String("wire", "auto", "accepted wire framings: auto (sniff v2+rtp per datagram), v2 or rtp")
	flag.Parse()
	log.SetFlags(log.Ltime | log.Lmicroseconds)
	if *capacity < 1 {
		fmt.Fprintln(os.Stderr, "ekho-server: -capacity must be at least 1")
		os.Exit(2)
	}
	if *shards < 1 {
		fmt.Fprintln(os.Stderr, "ekho-server: -shards must be at least 1")
		os.Exit(2)
	}

	if *record != "" {
		if err := os.MkdirAll(*record, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "ekho-server:", err)
			os.Exit(1)
		}
	}

	conn, err := transport.Listen(*listen)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ekho-server:", err)
		os.Exit(1)
	}
	switch *wire {
	case "auto":
		conn.SetDecoder(rtp.NewCodec())
	case "v2", "rtp":
		w, _ := transport.ParseWire(*wire)
		conn.SetDecoder(rtp.NewCodecFor(w))
	default:
		fmt.Fprintf(os.Stderr, "ekho-server: unknown -wire %q (want auto, v2 or rtp)\n", *wire)
		os.Exit(2)
	}
	det, ok := ekho.ParseDetectorMode(*detector)
	if !ok {
		fmt.Fprintf(os.Stderr, "ekho-server: unknown -detector %q (want two-stage or full-rate)\n", *detector)
		os.Exit(2)
	}

	h := hub.New(hub.Config{
		Capacity:    *capacity,
		Shards:      *shards,
		IdleTimeout: *idle,
		MarkerC:     *markerC,
		Clip:        *clip,
		Detector:    det,
		RecordDir:   *record,
		Logf:        log.Printf,
		OnSessionEnd: func(id uint32, r hub.SessionResult) {
			log.Printf("session %d ended: %d frames, %d measurements, %d actions",
				id, r.Frames, r.Measurements, r.Actions)
		},
	}, conn)

	if *pprofAddr != "" {
		// DefaultServeMux carries the net/http/pprof handlers; the hub adds
		// /metrics (Prometheus text) and /sessions (JSON) beside them.
		h.RegisterAdmin(http.DefaultServeMux)
		go func() {
			log.Printf("admin listening on http://%s/ (/metrics, /sessions, /debug/pprof/)", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				log.Printf("admin server: %v", err)
			}
		}()
	}

	sigs := make(chan os.Signal, 4)
	signal.Notify(sigs, syscall.SIGHUP, syscall.SIGINT, syscall.SIGTERM)
	stop := make(chan struct{})
	go func() {
		var timeout <-chan time.Time
		if *duration > 0 {
			timeout = time.After(*duration)
		}
		for {
			select {
			case sig := <-sigs:
				if sig == syscall.SIGHUP {
					log.Printf("stats: %s", h.Stats())
					for _, st := range h.SessionStats() {
						log.Printf("%s", st)
					}
					continue
				}
				log.Printf("%s: draining (grace %s)", sig, *grace)
				h.Shutdown(*grace)
				return
			case <-timeout:
				log.Printf("duration elapsed: draining (grace %s)", *grace)
				h.Shutdown(*grace)
				return
			case <-stop:
				return
			}
		}
	}()

	err = h.Serve()
	close(stop)
	log.Printf("final stats: %s", h.Stats())
	if err != nil {
		fmt.Fprintln(os.Stderr, "ekho-server:", err)
		os.Exit(1)
	}
}
