// Command ekho-server is the live multi-tenant Ekho server: it hosts up
// to -capacity concurrent sessions on one UDP socket, each streaming a
// marked screen stream and an accessory stream to its own ekho-screen and
// ekho-client pair, estimating the inter-stream delay from the returned
// chat audio and compensating it per session.
//
// Run a single-session demo on one machine:
//
//	ekho-server -listen 127.0.0.1:9000
//	ekho-client -server 127.0.0.1:9000 -air-listen 127.0.0.1:9100
//	ekho-screen -server 127.0.0.1:9000 -air 127.0.0.1:9100 -extra-delay 180ms
//
// Additional player sessions join the same server by picking a session
// id: start more screen/client pairs with a shared -session N. A session
// past -capacity is politely refused with a busy packet. The screen's
// -extra-delay emulates a slow network + TV pipeline; watch the server
// measure the startup gap (~240 ms), insert 12 frames, and hold the
// streams within a frame thereafter — while the client stamps everything
// with a deliberately offset clock, proving no clock synchronization is
// needed.
//
// Signals: SIGHUP prints a stats snapshot plus one stable line per live
// session ("session <id> frames=... measurements=... actions=...
// pending=... records=..."), SIGINT/SIGTERM drain the hub (existing
// sessions finish, new ones are refused) and shut down after a short
// grace period. The final snapshot is printed on exit.
//
// With -record DIR every session's full pipeline timeline is captured to
// DIR/session-<id>.ektrace for deterministic replay by ekho-replay.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ekho"
	"ekho/internal/hub"
	"ekho/internal/transport"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:9000", "UDP address to listen on")
	capacity := flag.Int("capacity", 64, "maximum concurrent sessions")
	shards := flag.Int("shards", 8, "session registry shards (worker goroutines)")
	duration := flag.Duration("duration", 0, "stop after this long (0 = run until signalled)")
	idle := flag.Duration("idle-timeout", 30*time.Second, "evict sessions with no traffic for this long")
	grace := flag.Duration("grace", 5*time.Second, "drain grace period on SIGINT/SIGTERM")
	markerC := flag.Float64("c", ekho.DefaultMarkerVolume, "marker relative volume C")
	clip := flag.Int("clip", 0, "corpus clip index (0-29)")
	record := flag.String("record", "", "capture each session to <dir>/session-<id>.ektrace for ekho-replay (empty = off)")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. 127.0.0.1:6060; empty = off)")
	detector := flag.String("detector", "two-stage", "marker detector pipeline: two-stage or full-rate")
	flag.Parse()
	log.SetFlags(log.Ltime | log.Lmicroseconds)
	if *capacity < 1 {
		fmt.Fprintln(os.Stderr, "ekho-server: -capacity must be at least 1")
		os.Exit(2)
	}
	if *shards < 1 {
		fmt.Fprintln(os.Stderr, "ekho-server: -shards must be at least 1")
		os.Exit(2)
	}

	if *record != "" {
		if err := os.MkdirAll(*record, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "ekho-server:", err)
			os.Exit(1)
		}
	}

	if *pprofAddr != "" {
		// DefaultServeMux carries the net/http/pprof handlers; profiles at
		// http://<addr>/debug/pprof/ (CPU, heap, allocs, goroutine, ...).
		go func() {
			log.Printf("pprof listening on http://%s/debug/pprof/", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				log.Printf("pprof server: %v", err)
			}
		}()
	}

	conn, err := transport.Listen(*listen)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ekho-server:", err)
		os.Exit(1)
	}
	det, ok := ekho.ParseDetectorMode(*detector)
	if !ok {
		fmt.Fprintf(os.Stderr, "ekho-server: unknown -detector %q (want two-stage or full-rate)\n", *detector)
		os.Exit(2)
	}

	h := hub.New(hub.Config{
		Capacity:    *capacity,
		Shards:      *shards,
		IdleTimeout: *idle,
		MarkerC:     *markerC,
		Clip:        *clip,
		Detector:    det,
		RecordDir:   *record,
		Logf:        log.Printf,
		OnSessionEnd: func(id uint32, r hub.SessionResult) {
			log.Printf("session %d ended: %d frames, %d measurements, %d actions",
				id, r.Frames, r.Measurements, r.Actions)
		},
	}, conn)

	sigs := make(chan os.Signal, 4)
	signal.Notify(sigs, syscall.SIGHUP, syscall.SIGINT, syscall.SIGTERM)
	stop := make(chan struct{})
	go func() {
		var timeout <-chan time.Time
		if *duration > 0 {
			timeout = time.After(*duration)
		}
		for {
			select {
			case sig := <-sigs:
				if sig == syscall.SIGHUP {
					log.Printf("stats: %s", h.Stats())
					for _, st := range h.SessionStats() {
						log.Printf("%s", st)
					}
					continue
				}
				log.Printf("%s: draining (grace %s)", sig, *grace)
				h.Shutdown(*grace)
				return
			case <-timeout:
				log.Printf("duration elapsed: draining (grace %s)", *grace)
				h.Shutdown(*grace)
				return
			case <-stop:
				return
			}
		}
	}()

	err = h.Serve()
	close(stop)
	log.Printf("final stats: %s", h.Stats())
	if err != nil {
		fmt.Fprintln(os.Stderr, "ekho-server:", err)
		os.Exit(1)
	}
}
