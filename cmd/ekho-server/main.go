// Command ekho-server is the live Ekho-Server demo: it streams a screen
// stream (with embedded PN markers) and an accessory stream over real UDP
// to an ekho-screen and an ekho-client process, receives timestamped chat
// audio back, estimates the inter-stream delay and compensates it.
//
// Run the three demo processes on one machine:
//
//	ekho-server -listen 127.0.0.1:9000 -duration 30s
//	ekho-client -server 127.0.0.1:9000 -air-listen 127.0.0.1:9100
//	ekho-screen -server 127.0.0.1:9000 -air 127.0.0.1:9100 -extra-delay 180ms
//
// The screen's -extra-delay emulates a slow network + TV pipeline; watch
// the server measure the startup gap (~240 ms), insert 12 frames, and hold
// the streams within a frame thereafter — while the client stamps
// everything with a deliberately offset clock, proving no clock
// synchronization is needed.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"ekho"
	"ekho/internal/live"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:9000", "UDP address to listen on")
	duration := flag.Duration("duration", 30*time.Second, "how long to stream")
	markerC := flag.Float64("c", ekho.DefaultMarkerVolume, "marker relative volume C")
	clip := flag.Int("clip", 0, "corpus clip index (0-29)")
	flag.Parse()
	log.SetFlags(log.Ltime | log.Lmicroseconds)

	_, err := live.RunServer(live.ServerConfig{
		Listen:   *listen,
		Duration: *duration,
		MarkerC:  *markerC,
		Clip:     *clip,
		Logf:     log.Printf,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "ekho-server:", err)
		os.Exit(1)
	}
}
