// Command ekho-estimate runs Ekho-Estimator offline on a WAV recording:
// it detects the PN markers and prints one ISD measurement per marker.
// Pair it with ekho-corpus to build test material:
//
//	ekho-corpus -out /tmp/c -only halo-infinite#1 -marked -recorded
//	ekho-estimate -in /tmp/c/halo-infinite#1.recorded.wav -seed 42
//
// The accessory-stream marker schedule defaults to "one marker per second
// from t=0" (how AddMarkers lays them out); pass -schedule to load
// explicit marker times (one float per line, seconds) instead.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"ekho"
	"ekho/internal/audio"
)

func main() {
	in := flag.String("in", "", "input WAV recording (16-bit mono PCM)")
	seed := flag.Int64("seed", 42, "PN sequence seed (must match the injector)")
	schedule := flag.String("schedule", "", "optional file with marker times (seconds, one per line)")
	interval := flag.Float64("interval", 1.0, "marker interval for the implicit schedule")
	verbose := flag.Bool("v", false, "print detections before matching")
	flag.Parse()
	if *in == "" {
		fmt.Fprintln(os.Stderr, "ekho-estimate: -in is required")
		os.Exit(2)
	}
	if err := run(*in, *seed, *schedule, *interval, *verbose); err != nil {
		fmt.Fprintln(os.Stderr, "ekho-estimate:", err)
		os.Exit(1)
	}
}

func run(inPath string, seed int64, schedulePath string, interval float64, verbose bool) error {
	f, err := os.Open(inPath)
	if err != nil {
		return err
	}
	defer f.Close()
	rec, err := audio.ReadWAV(f)
	if err != nil {
		return err
	}
	fmt.Printf("recording: %s\n", rec)

	seq := ekho.NewMarkerSequence(seed)
	dets := ekho.DetectMarkers(rec, seq)
	if verbose {
		for _, d := range dets {
			fmt.Printf("detection at sample %d (t=%.3fs), strength %.1f sigma\n",
				d.Sample, float64(d.Sample)/float64(rec.Rate), d.Strength)
		}
	}
	if len(dets) == 0 {
		return fmt.Errorf("no markers detected (wrong -seed, or markers below the noise floor)")
	}

	markerTimes, err := loadSchedule(schedulePath, rec.Duration(), interval)
	if err != nil {
		return err
	}
	ms := ekho.EstimateISD(rec, 0, markerTimes, seq)
	if len(ms) == 0 {
		return fmt.Errorf("detections found but none matched the schedule (|ISD| > 500 ms?)")
	}
	fmt.Printf("%-10s %-12s %-10s\n", "marker(s)", "ISD (ms)", "strength")
	for _, m := range ms {
		fmt.Printf("%-10.3f %+-12.3f %-10.0f\n", m.MarkerTime, m.ISDSeconds*1000, m.Strength)
	}
	return nil
}

// loadSchedule reads marker times from a file, or synthesizes the implicit
// one-per-interval schedule.
func loadSchedule(path string, duration, interval float64) ([]float64, error) {
	if path == "" {
		var out []float64
		for t := 0.0; t < duration; t += interval {
			out = append(out, t)
		}
		return out, nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []float64
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		v, err := strconv.ParseFloat(line, 64)
		if err != nil {
			return nil, fmt.Errorf("schedule line %q: %w", line, err)
		}
		out = append(out, v)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("schedule %s is empty", path)
	}
	return out, nil
}
