// Command ekho-corpus exports the synthetic evaluation corpus (the Table 2
// stand-in) as WAV files for listening and external analysis. For each
// clip it can also write the marker-infused variant at a chosen C and the
// recording as heard by a chosen microphone — useful for auditioning how
// inaudible the markers are and what the estimator actually receives.
//
//	ekho-corpus -out /tmp/corpus                 # clean clips only
//	ekho-corpus -out /tmp/corpus -marked -c 0.5  # plus marked variants
//	ekho-corpus -out /tmp/corpus -recorded       # plus mic recordings
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"ekho"
	"ekho/internal/acoustic"
	"ekho/internal/audio"
	"ekho/internal/gamesynth"
)

func main() {
	out := flag.String("out", "corpus", "output directory")
	seconds := flag.Float64("seconds", gamesynth.ClipSeconds, "clip length")
	marked := flag.Bool("marked", false, "also write marker-infused variants")
	recorded := flag.Bool("recorded", false, "also write microphone recordings of the marked clips")
	markerC := flag.Float64("c", ekho.DefaultMarkerVolume, "marker relative volume C")
	only := flag.String("only", "", "export just the clip with this ID (e.g. halo-infinite#1)")
	flag.Parse()

	if err := run(*out, *seconds, *marked, *recorded, *markerC, *only); err != nil {
		fmt.Fprintln(os.Stderr, "ekho-corpus:", err)
		os.Exit(1)
	}
}

func run(out string, seconds float64, marked, recorded bool, markerC float64, only string) error {
	if err := os.MkdirAll(out, 0o755); err != nil {
		return err
	}
	seq := ekho.NewMarkerSequence(42)
	channel := acoustic.DefaultChannel()
	n := 0
	for _, spec := range gamesynth.Catalog() {
		if only != "" && spec.ID() != only {
			continue
		}
		clip := gamesynth.Generate(spec, seconds)
		if err := writeWAV(filepath.Join(out, spec.ID()+".wav"), clip); err != nil {
			return err
		}
		n++
		if !marked && !recorded {
			continue
		}
		mk, injections := ekho.AddMarkers(clip, seq, markerC)
		if marked {
			if err := writeWAV(filepath.Join(out, spec.ID()+".marked.wav"), mk); err != nil {
				return err
			}
		}
		if recorded {
			rec := channel.Transmit(mk)
			if err := writeWAV(filepath.Join(out, spec.ID()+".recorded.wav"), rec.Normalize(0.7)); err != nil {
				return err
			}
		}
		_ = injections
	}
	if n == 0 {
		return fmt.Errorf("no clip matched %q (IDs look like halo-infinite#1)", only)
	}
	fmt.Printf("wrote %d clips to %s\n", n, out)
	return nil
}

func writeWAV(path string, b *audio.Buffer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := audio.WriteWAV(f, b); err != nil {
		return fmt.Errorf("writing %s: %w", path, err)
	}
	return nil
}
