// Command ekho-replay re-drives recorded Ekho session traces through a
// fresh server pipeline and verifies that every recorded output — marker
// injections, matches and expiries, chat-gap conceals, ISD measurements,
// compensation actions, and the outbound frames' content bookkeeping — is
// reproduced bit for bit. A session captured live (ekho-server -record) or
// in the simulator replays deterministically because the trace carries the
// pipeline's full configuration and the content-clock value of every
// input.
//
// Replay one or more traces:
//
//	ekho-replay session-7.ektrace session-8.ektrace
//
// Each trace prints its reconstructed configuration, the replayed
// counters in the stable per-session line format, and — on divergence —
// the first mismatches. The exit status is 0 only if every trace
// replayed exactly.
//
// Self-check mode records a short simulated session over each provider
// network profile (stadia, gfn, psnow), replays it and verifies the
// round trip end to end — the CI determinism gate:
//
//	ekho-replay -selfcheck -duration 20 -bench BENCH_replay.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"ekho/internal/netsim"
	"ekho/internal/session"
	"ekho/internal/trace"
)

// benchEntry is one trace's replay metrics in the -bench JSON.
type benchEntry struct {
	Trace         string  `json:"trace"`
	Profile       string  `json:"profile,omitempty"`
	Records       int64   `json:"records"`
	Ticks         int     `json:"ticks"`
	Chats         int     `json:"chats"`
	Events        int     `json:"events"`
	Measurements  int     `json:"measurements"`
	Actions       int     `json:"actions"`
	Divergences   int64   `json:"divergences"`
	ElapsedMs     float64 `json:"elapsed_ms"`
	RecordsPerSec float64 `json:"records_per_sec"`
	BytesIn       int64   `json:"bytes_in"`
}

// benchFile is the -bench JSON document.
type benchFile struct {
	Tool    string       `json:"tool"`
	Mode    string       `json:"mode"`
	Entries []benchEntry `json:"entries"`
	OK      bool         `json:"ok"`
}

func main() {
	selfcheck := flag.Bool("selfcheck", false, "record short simulator sessions over each provider profile, then replay them")
	duration := flag.Float64("duration", 20, "selfcheck session duration in virtual seconds")
	keep := flag.String("keep", "", "selfcheck: write traces into this directory instead of a temp dir")
	benchPath := flag.String("bench", "", "write replay metrics as JSON to this file")
	flag.Parse()

	var entries []benchEntry
	ok := true
	mode := "replay"

	if *selfcheck {
		mode = "selfcheck"
		dir := *keep
		if dir == "" {
			var err error
			dir, err = os.MkdirTemp("", "ekho-replay-*")
			if err != nil {
				fatal(err)
			}
			defer os.RemoveAll(dir)
		} else if err := os.MkdirAll(dir, 0o755); err != nil {
			fatal(err)
		}
		for _, p := range netsim.Providers() {
			path := filepath.Join(dir, "selfcheck-"+p.Name+".ektrace")
			sc := session.DefaultScenario()
			sc.DurationSec = *duration
			sc.Provider = p.Name
			sc.RecordPath = path
			res := session.Run(sc)
			fmt.Printf("recorded %s: %s (%d measurements, %d actions live)\n",
				p.Name, path, len(res.Measurements), len(res.Actions))
			e, good := replayFile(path)
			e.Profile = p.Name
			// The replayed sequences must also match what the live session
			// observed through its own sink — the end-to-end equivalence the
			// paper's capture/replay design promises.
			if len(res.Measurements) != e.Measurements || len(res.Actions) != e.Actions {
				fmt.Printf("FAIL %s: live saw %d measurements / %d actions, replay %d / %d\n",
					p.Name, len(res.Measurements), len(res.Actions), e.Measurements, e.Actions)
				good = false
			}
			entries = append(entries, e)
			ok = ok && good
		}
	} else {
		if flag.NArg() == 0 {
			fmt.Fprintln(os.Stderr, "usage: ekho-replay [flags] trace.ektrace...  (or -selfcheck)")
			flag.PrintDefaults()
			os.Exit(2)
		}
		for _, path := range flag.Args() {
			e, good := replayFile(path)
			entries = append(entries, e)
			ok = ok && good
		}
	}

	if *benchPath != "" {
		doc := benchFile{Tool: "ekho-replay", Mode: mode, Entries: entries, OK: ok}
		data, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			fatal(err)
		}
		data = append(data, '\n')
		if err := os.WriteFile(*benchPath, data, 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *benchPath)
	}
	if !ok {
		os.Exit(1)
	}
}

// replayFile replays one trace and prints its report.
func replayFile(path string) (benchEntry, bool) {
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		fatal(err)
	}
	rep, err := trace.Replay(f)
	if err != nil {
		fatal(fmt.Errorf("%s: %w", path, err))
	}
	h := rep.Header
	fmt.Printf("%s: session %d clip %d seed %d codec %s markers=%v\n",
		path, h.SessionID, h.ClipIndex, h.Seed, h.Codec.Name, !h.DisableMarkers)
	fmt.Printf("  replayed %d records in %s (%.0f records/s): %d ticks, %d chats, %d playback records, %d events, %d media-out checks\n",
		rep.Records, rep.Elapsed, rep.EventsPerSec(),
		rep.Ticks, rep.Chats, rep.PlaybackRecords, rep.Events, rep.MediaOut)
	fmt.Printf("  %s\n", rep.Final)
	if !rep.OK() {
		fmt.Printf("  DIVERGED: %d mismatches\n", rep.DivergenceCount)
		for _, d := range rep.Divergences {
			fmt.Printf("    %s\n", d)
		}
		if rep.DivergenceCount > int64(len(rep.Divergences)) {
			fmt.Printf("    ... and %d more\n", rep.DivergenceCount-int64(len(rep.Divergences)))
		}
	} else {
		fmt.Printf("  OK: bit-identical replay\n")
	}
	e := benchEntry{
		Trace:         filepath.Base(path),
		Records:       rep.Records,
		Ticks:         rep.Ticks,
		Chats:         rep.Chats,
		Events:        rep.Events,
		Measurements:  len(rep.ISDs),
		Actions:       len(rep.Actions),
		Divergences:   rep.DivergenceCount,
		ElapsedMs:     float64(rep.Elapsed.Microseconds()) / 1000,
		RecordsPerSec: rep.EventsPerSec(),
		BytesIn:       fi.Size(),
	}
	return e, rep.OK()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ekho-replay:", err)
	os.Exit(1)
}
