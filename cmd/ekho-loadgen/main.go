// Command ekho-loadgen load-tests the hub's batched wire path over live
// kernel UDP. It hosts an ekho hub on a real socket in-process (so the
// dispatch-latency histogram and shed counters are readable), launches a
// fleet of synthetic player sessions on pooled UDP client sockets —
// every session echoes attenuated chat audio with piggybacked playback
// records, exactly like a real ekho-client — and ramps the session count
// in stages until the p99 dispatch latency or the shed rate breaches its
// threshold. The last sustained stage becomes the capacity baseline.
//
// The run also micro-compares the batched decode→dispatch path against
// the legacy per-packet path on an in-process hub, yielding ns/packet
// and allocs/packet for both. Everything is written as JSON (default
// BENCH_hub.json), the hub perf baseline future PRs diff against:
//
//	ekho-loadgen -out BENCH_hub.json
//	ekho-loadgen -start 4 -step 4 -max-sessions 8 -stage 500ms \
//	    -compare-packets 50000 -out BENCH_hub.json   # CI smoke
//
// All traffic crosses the kernel loopback (real syscalls, real socket
// buffers); only the stats plumbing is in-process. Client work shares
// the machine with the hub, so allocs/packet is process-wide and
// sessions/core is a conservative lower bound.
//
// -wire ramps the fleet once per listed framing (v2, rtp): the report's
// top-level ramp/stages stay the first framing's results (the stable
// baseline diff surface) and every framing lands under "ramps" with its
// wire tag. -admin ADDR serves the hub's /metrics and /sessions
// endpoints during the ramp, so CI can assert the observability plane
// answers under load.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ekho"
	"ekho/internal/audio"
	"ekho/internal/codec"
	"ekho/internal/hub"
	"ekho/internal/rtp"
	"ekho/internal/transport"
)

const frameSec = float64(ekho.FrameSamples) / ekho.SampleRate

// batchLen sizes the client-side receive batches and their reusable
// chat-buffer pools (matches the hub's internal arena batch).
const batchLen = 64

func main() {
	listen := flag.String("listen", "127.0.0.1:0", "UDP address the in-process hub listens on")
	start := flag.Int("start", 8, "sessions in the first ramp stage")
	step := flag.Int("step", 8, "sessions added per stage")
	maxSessions := flag.Int("max-sessions", 256, "stop ramping at this many sessions")
	stage := flag.Duration("stage", 2*time.Second, "measured duration of each stage")
	settle := flag.Duration("settle", 500*time.Millisecond, "unmeasured settle time after adding sessions")
	maxP99 := flag.Duration("max-p99", 10*time.Millisecond, "p99 dispatch latency breach threshold")
	maxShed := flag.Float64("max-shed", 0.01, "shed-rate breach threshold (fraction of inbound packets)")
	pairs := flag.Int("sockets", 8, "client socket pairs (sessions are multiplexed across them)")
	shards := flag.Int("shards", 8, "hub shards")
	comparePackets := flag.Int("compare-packets", 200000, "packets per path in the batched-vs-per-packet comparison (0 = skip)")
	out := flag.String("out", "BENCH_hub.json", "output JSON path (empty = stdout only)")
	wireList := flag.String("wire", "v2,rtp", "comma-separated wire framings to ramp (v2, rtp); the first is the baseline")
	admin := flag.String("admin", "", "serve the hub's /metrics and /sessions on this address during the ramp (empty = off)")
	verbose := flag.Bool("v", false, "log hub progress lines")
	flag.Parse()
	log.SetFlags(log.Ltime | log.Lmicroseconds)

	var wires []transport.Wire
	for _, name := range strings.Split(*wireList, ",") {
		w, ok := transport.ParseWire(strings.TrimSpace(name))
		if !ok {
			log.Fatalf("unknown -wire entry %q (want v2 or rtp)", name)
		}
		wires = append(wires, w)
	}

	report := Report{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		Host: Host{
			GOOS: runtime.GOOS, GOARCH: runtime.GOARCH,
			CPUs: runtime.NumCPU(), GoMaxProcs: runtime.GOMAXPROCS(0),
		},
		Config: RunConfig{
			Start: *start, Step: *step, MaxSessions: *maxSessions,
			StageMS:     float64(*stage) / float64(time.Millisecond),
			MaxP99MS:    float64(*maxP99) / float64(time.Millisecond),
			MaxShedRate: *maxShed, SocketPairs: *pairs, Shards: *shards,
		},
	}

	if *comparePackets > 0 {
		log.Printf("comparing per-packet vs batched dispatch over %d packets each...", *comparePackets)
		cmp, err := runCompare(*comparePackets, *shards)
		if err != nil {
			log.Fatalf("compare: %v", err)
		}
		report.Compare = cmp
		log.Printf("per-packet %.0f ns/pkt, batched %.0f ns/pkt (%.1f%% fewer), batched allocs/pkt %.3f",
			cmp.PerPacketNs, cmp.BatchedNs, cmp.ImprovementPct, cmp.BatchedAllocsPerPacket)
	}

	for i, w := range wires {
		log.Printf("ramping over %s wire...", w)
		wr := WireRamp{Wire: w.String()}
		ramp, err := runRamp(rampConfig{
			listen: *listen, start: *start, step: *step, max: *maxSessions,
			stage: *stage, settle: *settle, maxP99: *maxP99, maxShed: *maxShed,
			pairs: *pairs, shards: *shards, wire: w, admin: *admin,
			verbose: *verbose,
		}, &wr.Stages)
		if err != nil {
			log.Fatalf("ramp (%s): %v", w, err)
		}
		wr.Ramp = ramp
		report.Ramps = append(report.Ramps, wr)
		if i == 0 {
			report.Ramp = ramp
			report.Stages = wr.Stages
		}
		log.Printf("[%s] sustained %d sessions (%.1f/core): p99 dispatch %.3f ms, %.0f pkt/s, shed %.4f, allocs/pkt %.3f [%s]",
			w, ramp.Sessions, ramp.SessionsPerCore, ramp.P99DispatchMS, ramp.PacketsPerSec,
			ramp.ShedRate, ramp.AllocsPerPacket, ramp.Stopped)
	}

	blob, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		log.Fatalf("marshal: %v", err)
	}
	blob = append(blob, '\n')
	if *out != "" {
		if err := os.WriteFile(*out, blob, 0o644); err != nil {
			log.Fatalf("write %s: %v", *out, err)
		}
		log.Printf("wrote %s", *out)
	}
	os.Stdout.Write(blob)
}

// Report is the BENCH_hub.json schema. Ramp/Stages hold the first
// listed wire's run (historically v2 — the surface older baselines
// diff against); Ramps carries every wire's run tagged by framing.
type Report struct {
	GeneratedAt string        `json:"generated_at"`
	Host        Host          `json:"host"`
	Config      RunConfig     `json:"config"`
	Compare     *Compare      `json:"compare,omitempty"`
	Ramp        StageResult   `json:"ramp"`
	Stages      []StageResult `json:"stages"`
	Ramps       []WireRamp    `json:"ramps,omitempty"`
}

// WireRamp is one full ramp over a single wire framing.
type WireRamp struct {
	Wire   string        `json:"wire"`
	Ramp   StageResult   `json:"ramp"`
	Stages []StageResult `json:"stages"`
}

// Host describes the machine the baseline was taken on.
type Host struct {
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	CPUs       int    `json:"cpus"`
	GoMaxProcs int    `json:"gomaxprocs"`
}

// RunConfig echoes the ramp parameters for reproducibility.
type RunConfig struct {
	Start       int     `json:"start_sessions"`
	Step        int     `json:"step_sessions"`
	MaxSessions int     `json:"max_sessions"`
	StageMS     float64 `json:"stage_ms"`
	MaxP99MS    float64 `json:"max_p99_ms"`
	MaxShedRate float64 `json:"max_shed_rate"`
	SocketPairs int     `json:"socket_pairs"`
	Shards      int     `json:"shards"`
}

// Compare holds the batched-vs-per-packet dispatch micro-comparison.
type Compare struct {
	Packets                int     `json:"packets_per_path"`
	PerPacketNs            float64 `json:"per_packet_ns_per_packet"`
	BatchedNs              float64 `json:"batched_ns_per_packet"`
	ImprovementPct         float64 `json:"batched_improvement_pct"`
	BatchedAllocsPerPacket float64 `json:"batched_allocs_per_packet"`
}

// StageResult is one measured ramp stage. AllocsPerPacket is
// process-wide (hub + synthetic clients), so it upper-bounds the hub's
// own rate; the hub-only guarantee is locked in by the AllocsPerRun
// tests in internal/hub and internal/transport.
type StageResult struct {
	Sessions        int     `json:"sessions"`
	SessionsPerCore float64 `json:"sessions_per_core"`
	P99DispatchMS   float64 `json:"p99_dispatch_ms"`
	PacketsPerSec   float64 `json:"packets_per_sec"`
	AllocsPerPacket float64 `json:"allocs_per_packet"`
	ShedRate        float64 `json:"shed_rate"`
	// Stopped says why the ramp ended at this stage: "p99-breach",
	// "shed-breach" or "max-sessions". Empty on intermediate stages.
	Stopped string `json:"stopped,omitempty"`
}

type rampConfig struct {
	listen        string
	start, step   int
	max           int
	stage, settle time.Duration
	maxP99        time.Duration
	maxShed       float64
	pairs, shards int
	wire          transport.Wire
	admin         string
	verbose       bool
}

// runRamp hosts the hub on live UDP, ramps the synthetic fleet and
// returns the last sustained stage (with Stopped set to the exit
// reason). Every measured stage is appended to stages.
func runRamp(cfg rampConfig, stages *[]StageResult) (StageResult, error) {
	conn, err := transport.Listen(cfg.listen)
	if err != nil {
		return StageResult{}, err
	}
	conn.SetDecoder(rtp.NewCodec()) // accept either framing, like ekho-server
	var ready atomic.Int64
	var logf hub.Logf
	if cfg.verbose {
		logf = log.Printf
	}
	h := hub.New(hub.Config{
		Capacity:       cfg.max,
		Shards:         cfg.shards,
		IdleTimeout:    -1, // the ramp owns session lifetime
		Codec:          codec.Lossless,
		Logf:           logf,
		OnSessionReady: func(id uint32) { ready.Add(1) },
	}, conn)
	serveErr := make(chan error, 1)
	go func() { serveErr <- h.Serve() }()
	defer h.Close()

	if cfg.admin != "" {
		mux := http.NewServeMux()
		h.RegisterAdmin(mux)
		srv := &http.Server{Addr: cfg.admin, Handler: mux}
		go func() {
			if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Printf("admin server: %v", err)
			}
		}()
		defer srv.Close()
	}

	fleet, err := newFleet(cfg.pairs, conn.LocalAddr(), cfg.wire)
	if err != nil {
		return StageResult{}, err
	}
	defer fleet.close()

	last := StageResult{Stopped: "max-sessions"}
	target := 0
	for target < cfg.max {
		target += cfg.step
		if target > cfg.max {
			target = cfg.max
		}
		if last.Sessions == 0 && cfg.start > 0 {
			target = cfg.start
		}
		fleet.grow(target)
		if !waitReady(&ready, h, int64(target), 10*time.Second) {
			// Some sessions never came up (rejected or lost hellos):
			// measure what is actually streaming rather than aborting.
			log.Printf("stage %d: only %d/%d sessions ready (rejected %d)",
				target, ready.Load(), target, h.Stats().Rejected)
		}
		time.Sleep(cfg.settle)

		res := measureStage(h, int(ready.Load()), cfg.stage)
		*stages = append(*stages, res)
		log.Printf("stage %4d sessions: p99 %.3f ms, %.0f pkt/s, shed %.4f, allocs/pkt %.2f",
			res.Sessions, res.P99DispatchMS, res.PacketsPerSec, res.ShedRate, res.AllocsPerPacket)

		if res.P99DispatchMS > float64(cfg.maxP99)/float64(time.Millisecond) {
			res.Stopped = "p99-breach"
			if last.Sessions == 0 {
				last = res // breached on the very first stage
			} else {
				last.Stopped = res.Stopped
			}
			(*stages)[len(*stages)-1] = res
			break
		}
		if res.ShedRate > cfg.maxShed {
			res.Stopped = "shed-breach"
			if last.Sessions == 0 {
				last = res
			} else {
				last.Stopped = res.Stopped
			}
			(*stages)[len(*stages)-1] = res
			break
		}
		res.Stopped = ""
		last = res
		last.Stopped = "max-sessions"
		select {
		case err := <-serveErr:
			return StageResult{}, fmt.Errorf("hub exited mid-ramp: %w", err)
		default:
		}
	}
	return last, nil
}

// waitReady blocks until `want` sessions are streaming, or some were
// rejected, or the timeout expires.
func waitReady(ready *atomic.Int64, h *hub.Hub, want int64, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if ready.Load() >= want {
			return true
		}
		if ready.Load()+h.Stats().Rejected >= want {
			return false
		}
		time.Sleep(5 * time.Millisecond)
	}
	return ready.Load() >= want
}

// measureStage samples hub counters, the dispatch-latency histogram and
// process mallocs across one stage window.
func measureStage(h *hub.Hub, sessions int, d time.Duration) StageResult {
	var m0, m1 runtime.MemStats
	h0 := h.DispatchLatency()
	s0 := h.Stats()
	runtime.ReadMemStats(&m0)
	t0 := time.Now()
	time.Sleep(d)
	elapsed := time.Since(t0)
	runtime.ReadMemStats(&m1)
	hist := h.DispatchLatency().Sub(h0)
	s1 := h.Stats()

	pktsIn := s1.PacketsIn - s0.PacketsIn
	res := StageResult{
		Sessions:        sessions,
		SessionsPerCore: float64(sessions) / float64(runtime.NumCPU()),
		P99DispatchMS:   float64(hist.Quantile(0.99)) / float64(time.Millisecond),
		PacketsPerSec:   float64(pktsIn) / elapsed.Seconds(),
	}
	if pktsIn > 0 {
		res.AllocsPerPacket = float64(m1.Mallocs-m0.Mallocs) / float64(pktsIn)
		res.ShedRate = float64(s1.Shed-s0.Shed) / float64(pktsIn)
	}
	return res
}

// fleet multiplexes synthetic sessions over a pool of UDP socket pairs.
// Session i lives on pair i%len(pairs): its screen hello comes from the
// pair's screen socket and its controller hello from the ctrl socket, so
// the hub's replies demux by session id on shared sockets — the fan-in
// shape a real deployment's NAT'd clients produce.
type fleet struct {
	pairs []*sockPair
	next  uint32 // next session id to start (count started so far)
}

func newFleet(n int, server net.Addr, wire transport.Wire) (*fleet, error) {
	f := &fleet{}
	for i := 0; i < n; i++ {
		p, err := newSockPair(server, wire)
		if err != nil {
			f.close()
			return nil, err
		}
		f.pairs = append(f.pairs, p)
		p.start()
	}
	return f, nil
}

// grow starts sessions until `target` are running.
func (f *fleet) grow(target int) {
	for int(f.next) < target {
		f.next++
		id := f.next
		f.pairs[int(id)%len(f.pairs)].addSession(id)
	}
}

func (f *fleet) close() {
	for _, p := range f.pairs {
		p.close()
	}
	for _, p := range f.pairs {
		p.wg.Wait()
	}
}

// lgSession is one synthetic player's state: the screen loop overhears
// playback through an attenuated air path delayFrames later and echoes
// it as chat; the ctrl loop logs accessory playback records on a
// per-session offset clock (Ekho must work without clock sync).
type lgSession struct {
	id          uint32
	delayFrames int
	offset      float64
	enc         *codec.Encoder

	mu      sync.Mutex
	pending []transport.PlaybackRecord
	spare   []transport.PlaybackRecord
}

// sockPair is one pooled client socket pair plus the receive loops that
// serve every session multiplexed onto it. wenc picks the wire framing
// the pair speaks toward the hub (the hub replies in kind).
type sockPair struct {
	server net.Addr
	screen *transport.Conn
	ctrl   *transport.Conn
	wenc   transport.WireEncoder

	mu       sync.RWMutex
	sessions map[uint32]*lgSession

	wg sync.WaitGroup
}

func newSockPair(server net.Addr, wire transport.Wire) (*sockPair, error) {
	screen, err := transport.Listen("127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	ctrl, err := transport.Listen("127.0.0.1:0")
	if err != nil {
		screen.Close()
		return nil, err
	}
	// One stateful sniffing codec per receive loop (codecs are not
	// concurrency-safe across loops).
	screen.SetDecoder(rtp.NewCodec())
	ctrl.SetDecoder(rtp.NewCodec())
	var wenc transport.WireEncoder = transport.V2{}
	if wire == transport.WireRTP {
		wenc = rtp.Encoder{}
	}
	return &sockPair{
		server: server, screen: screen, ctrl: ctrl, wenc: wenc,
		sessions: make(map[uint32]*lgSession),
	}, nil
}

func (p *sockPair) start() {
	p.wg.Add(2)
	go func() { defer p.wg.Done(); p.screenLoop() }()
	go func() { defer p.wg.Done(); p.ctrlLoop() }()
}

func (p *sockPair) close() {
	p.screen.Close()
	p.ctrl.Close()
}

func (p *sockPair) addSession(id uint32) {
	s := &lgSession{
		id:          id,
		delayFrames: 4 + int(id%9), // 80-240 ms air delay, like the loopback fleet
		offset:      float64(id),   // deliberately unsynchronized clocks
		enc:         codec.NewEncoder(codec.Lossless),
	}
	p.mu.Lock()
	p.sessions[id] = s
	p.mu.Unlock()
	_ = p.screen.SendTo(p.wenc.AppendHello(nil, transport.Hello{Session: id, Role: transport.RoleScreen}), p.server)
	_ = p.ctrl.SendTo(p.wenc.AppendHello(nil, transport.Hello{Session: id, Role: transport.RoleController}), p.server)
}

func (p *sockPair) lookup(id uint32) *lgSession {
	p.mu.RLock()
	s := p.sessions[id]
	p.mu.RUnlock()
	return s
}

// ctrlLoop plays the accessory stream: every content-bearing frame
// yields a playback record on the session's local clock.
func (p *sockPair) ctrlLoop() {
	msgs := make([]transport.Message, batchLen)
	for {
		n, err := p.ctrl.RecvBatch(time.Now().Add(time.Second), msgs)
		if err != nil && n == 0 {
			if isTimeout(err) {
				continue
			}
			return
		}
		for i := range msgs[:n] {
			md := msgs[i].Media
			if msgs[i].Type != transport.TypeMedia || md.ContentStart < 0 {
				continue
			}
			s := p.lookup(msgs[i].Session)
			if s == nil {
				continue
			}
			at := s.offset + float64(md.Seq)*frameSec + float64(md.ContentOff)/ekho.SampleRate
			s.mu.Lock()
			s.pending = append(s.pending, transport.PlaybackRecord{
				ContentStart: md.ContentStart,
				LocalMicros:  int64(at * 1e6),
				N:            uint16(len(md.Samples)) - md.ContentOff,
			})
			s.mu.Unlock()
		}
	}
}

// screenLoop overhears screen playback: each frame is attenuated,
// encoded and echoed as chat with the session's pending playback records
// piggybacked, then the whole batch leaves in one SendBatch. Chat
// buffers are pooled per batch slot (each received frame produces at
// most one chat), so the loop is allocation-free in steady state.
func (p *sockPair) screenLoop() {
	const atten = 0.1
	msgs := make([]transport.Message, batchLen)
	chatBufs := make([][]byte, batchLen)
	outBufs := make([]transport.Packet, 0, batchLen)
	var mic []float64
	var encBuf []byte
	for {
		n, err := p.screen.RecvBatch(time.Now().Add(time.Second), msgs)
		if err != nil && n == 0 {
			if isTimeout(err) {
				continue
			}
			return
		}
		outBufs = outBufs[:0]
		for i := range msgs[:n] {
			if msgs[i].Type != transport.TypeMedia {
				continue
			}
			md := msgs[i].Media
			s := p.lookup(msgs[i].Session)
			if s == nil {
				continue
			}
			if cap(mic) < len(md.Samples) {
				mic = make([]float64, len(md.Samples))
			}
			buf := mic[:len(md.Samples)]
			for j, v := range md.Samples {
				buf[j] = audio.Int16ToFloat(v) * atten
			}
			pkt, err := s.enc.EncodeTo(encBuf[:0], buf)
			if err != nil {
				continue
			}
			encBuf = pkt
			adc := int64((s.offset + (float64(md.Seq)+float64(s.delayFrames))*frameSec) * 1e6)
			s.mu.Lock()
			recs := s.pending
			s.pending = s.spare[:0]
			s.spare = recs
			s.mu.Unlock()
			b, err := p.wenc.AppendChat(chatBufs[i][:0], transport.Chat{
				Seq: md.Seq, Session: s.id, ADCMicros: adc, Records: recs, Encoded: pkt})
			if err != nil {
				continue
			}
			chatBufs[i] = b
			outBufs = append(outBufs, transport.Packet{Buf: b, To: p.server})
		}
		if len(outBufs) > 0 {
			_, _ = p.screen.SendBatch(outBufs)
		}
	}
}

func isTimeout(err error) bool {
	if errors.Is(err, os.ErrDeadlineExceeded) {
		return true
	}
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// runCompare measures the decode→dispatch→process cost per packet on
// the legacy per-packet path versus the batched path, against an
// in-process hub whose sessions treat media as a routing no-op — so the
// delta is pure wire-path overhead, not DSP. SessionStats round-trips
// through every shard worker's queue, making it a processing barrier:
// both timed windows include full drain, so they measure throughput,
// not enqueue rate.
func runCompare(packets, shards int) (*Compare, error) {
	const sessions = 64
	mem := hub.NewMemNet()
	conn := mem.Endpoint("hub")
	h := hub.New(hub.Config{
		TickEvery: -1, IdleTimeout: -1, Capacity: sessions, Shards: shards,
	}, conn)
	serveErr := make(chan error, 1)
	go func() { serveErr <- h.Serve() }()
	defer h.Close()

	from := mem.Endpoint("loadgen").LocalAddr()
	samples := make([]int16, ekho.FrameSamples)
	for i := range samples {
		samples[i] = int16(i)
	}
	raw := make([][]byte, sessions)
	for i := range raw {
		id := uint32(i + 1)
		h.Dispatch(transport.Message{
			Type:    transport.TypeHello,
			Session: id,
			Hello:   transport.Hello{Session: id, Role: transport.RoleScreen},
			From:    from,
		})
		b, err := transport.EncodeMedia(transport.Media{
			Seq: uint32(i), Session: id, ContentStart: int64(i) * ekho.FrameSamples, Samples: samples})
		if err != nil {
			return nil, err
		}
		raw[i] = b
	}
	deadline := time.Now().Add(10 * time.Second)
	for h.Stats().Admitted < sessions {
		if time.Now().After(deadline) {
			return nil, errors.New("compare: sessions never admitted")
		}
		time.Sleep(time.Millisecond)
	}

	perPacket := func(n int) {
		for i := 0; i < n; i++ {
			msg, err := transport.Decode(raw[i%sessions])
			if err != nil {
				panic(err)
			}
			h.Dispatch(msg)
		}
		h.SessionStats() // barrier: every worker has drained its queue
	}
	msgs := make([]transport.Message, batchLen)
	batched := func(n int) {
		for i := 0; i < n; i += batchLen {
			k := batchLen
			if rem := n - i; rem < k {
				k = rem
			}
			for j := 0; j < k; j++ {
				if err := transport.DecodeInto(&msgs[j], raw[(i+j)%sessions]); err != nil {
					panic(err)
				}
			}
			h.DispatchBatch(msgs[:k])
		}
		h.SessionStats()
	}

	perPacket(packets / 10) // warm both paths
	batched(packets / 10)

	t0 := time.Now()
	perPacket(packets)
	perNs := float64(time.Since(t0)) / float64(packets)

	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	t0 = time.Now()
	batched(packets)
	batchNs := float64(time.Since(t0)) / float64(packets)
	runtime.ReadMemStats(&m1)

	select {
	case err := <-serveErr:
		return nil, fmt.Errorf("compare hub exited: %w", err)
	default:
	}
	return &Compare{
		Packets:                packets,
		PerPacketNs:            perNs,
		BatchedNs:              batchNs,
		ImprovementPct:         100 * (1 - batchNs/perNs),
		BatchedAllocsPerPacket: float64(m1.Mallocs-m0.Mallocs) / float64(packets),
	}, nil
}
