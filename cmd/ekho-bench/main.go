// Command ekho-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	ekho-bench -list
//	ekho-bench -run fig8,fig9 -scale standard
//	ekho-bench -run all -scale full        # the paper's full workload
//
// Each experiment prints the rows/series of the corresponding table or
// figure (see DESIGN.md §5 for the experiment index and EXPERIMENTS.md for
// recorded paper-vs-measured results).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"ekho/internal/experiments"
)

func main() {
	runIDs := flag.String("run", "all", "comma-separated experiment ids, or 'all'")
	scaleStr := flag.String("scale", "standard", "workload scale: quick|standard|full")
	list := flag.Bool("list", false, "list experiment ids and exit")
	jsonOut := flag.String("json", "", "also write structured results (id, title, values) to this JSON file")
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}
	scale, err := experiments.ParseScale(*scaleStr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	var ids []string
	if *runIDs == "all" {
		ids = experiments.IDs()
	} else {
		for _, id := range strings.Split(*runIDs, ",") {
			id = strings.TrimSpace(id)
			if id == "" {
				continue
			}
			if _, ok := experiments.Get(id); !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q; use -list\n", id)
				os.Exit(2)
			}
			ids = append(ids, id)
		}
	}
	type jsonReport struct {
		ID      string             `json:"id"`
		Title   string             `json:"title"`
		Seconds float64            `json:"seconds"`
		Values  map[string]float64 `json:"values"`
	}
	var structured []jsonReport
	for _, id := range ids {
		run, _ := experiments.Get(id)
		start := time.Now()
		report := run(scale)
		elapsed := time.Since(start).Seconds()
		fmt.Print(report.String())
		fmt.Printf("(%s in %.1fs)\n\n", id, elapsed)
		structured = append(structured, jsonReport{
			ID: report.ID, Title: report.Title, Seconds: elapsed, Values: report.Values,
		})
	}
	if *jsonOut != "" {
		f, err := os.Create(*jsonOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ekho-bench:", err)
			os.Exit(1)
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(structured); err != nil {
			fmt.Fprintln(os.Stderr, "ekho-bench:", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "ekho-bench:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote structured results to %s\n", *jsonOut)
	}
}
