// Command ekho-screen is the live screen-device demo: it receives the
// screen stream from ekho-server, buffers it in a jitter buffer, and
// "plays" it — on a machine without speakers, playback is emulated by
// forwarding each played frame over UDP to the ekho-client's "air" port
// after a configurable extra delay (standing in for a slow network path,
// TV post-processing and sound propagation).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"ekho/internal/live"
	"ekho/internal/transport"
)

func main() {
	server := flag.String("server", "127.0.0.1:9000", "ekho-server address")
	session := flag.Uint("session", 0, "session id on a multi-session server")
	air := flag.String("air", "127.0.0.1:9100", "ekho-client air (microphone) address")
	extraDelay := flag.Duration("extra-delay", 150*time.Millisecond, "playback lag emulating TV pipeline")
	jitterFrames := flag.Int("jitter-frames", 4, "jitter buffer threshold")
	duration := flag.Duration("duration", 60*time.Second, "how long to run")
	wire := flag.String("wire", "v2", "wire framing spoken with the server: v2 or rtp")
	flag.Parse()
	log.SetFlags(log.Ltime | log.Lmicroseconds)
	w, ok := transport.ParseWire(*wire)
	if !ok {
		fmt.Fprintf(os.Stderr, "ekho-screen: unknown -wire %q (want v2 or rtp)\n", *wire)
		os.Exit(2)
	}

	_, err := live.RunScreen(live.ScreenConfig{
		Server:       *server,
		Session:      uint32(*session),
		Air:          *air,
		ExtraDelay:   *extraDelay,
		JitterFrames: *jitterFrames,
		Duration:     *duration,
		Wire:         w,
		Logf:         log.Printf,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "ekho-screen:", err)
		os.Exit(1)
	}
}
