// Command ekho-client is the live controller/headset demo (Ekho-Client,
// paper §5.1): it receives the accessory stream from ekho-server, plays it
// (logging playback timestamps), captures "microphone" audio arriving on
// its air port from ekho-screen (the overheard screen playback), encodes it
// and ships it back to the server with both sets of timestamps.
//
// A configurable clock offset is applied to every local timestamp to
// demonstrate that Ekho needs no clock synchronization: the server still
// measures the true inter-stream delay.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"ekho/internal/live"
	"ekho/internal/transport"
)

func main() {
	server := flag.String("server", "127.0.0.1:9000", "ekho-server address")
	session := flag.Uint("session", 0, "session id on a multi-session server")
	airListen := flag.String("air-listen", "127.0.0.1:9100", "UDP address for overheard screen audio")
	clockOffset := flag.Duration("clock-offset", 3200*time.Millisecond, "artificial local clock offset")
	attenuation := flag.Float64("attenuation", 0.1, "overheard path gain")
	jitterFrames := flag.Int("jitter-frames", 2, "jitter buffer threshold")
	duration := flag.Duration("duration", 60*time.Second, "how long to run")
	wire := flag.String("wire", "v2", "wire framing spoken with the server: v2 or rtp")
	flag.Parse()
	log.SetFlags(log.Ltime | log.Lmicroseconds)
	w, ok := transport.ParseWire(*wire)
	if !ok {
		fmt.Fprintf(os.Stderr, "ekho-client: unknown -wire %q (want v2 or rtp)\n", *wire)
		os.Exit(2)
	}

	_, err := live.RunClient(live.ClientConfig{
		Server:       *server,
		Session:      uint32(*session),
		AirListen:    *airListen,
		ClockOffset:  *clockOffset,
		Attenuation:  *attenuation,
		JitterFrames: *jitterFrames,
		Duration:     *duration,
		Wire:         w,
		Logf:         log.Printf,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "ekho-client:", err)
		os.Exit(1)
	}
}
