package ekho_test

import (
	"fmt"
	"math"

	"ekho"
	"ekho/internal/gamesynth"
)

// ExampleAddMarkers embeds inaudible PN markers into game audio and shows
// the injection schedule the server logs for the estimator.
func ExampleAddMarkers() {
	game := gamesynth.Generate(gamesynth.Catalog()[0], 3)
	seq := ekho.NewMarkerSequence(42)
	marked, schedule := ekho.AddMarkers(game, seq, ekho.DefaultMarkerVolume)
	fmt.Printf("audio length unchanged: %v\n", marked.Len() == game.Len())
	for _, inj := range schedule {
		fmt.Printf("marker at sample %d (frame %d)\n", inj.StartSample, inj.FrameID)
	}
	// Output:
	// audio length unchanged: true
	// marker at sample 0 (frame 0)
	// marker at sample 48000 (frame 50)
	// marker at sample 96000 (frame 100)
}

// ExampleEstimateISD measures a known delay between the marker schedule
// and a recording to sub-millisecond accuracy.
func ExampleEstimateISD() {
	game := gamesynth.Generate(gamesynth.Catalog()[0], 4)
	seq := ekho.NewMarkerSequence(42)
	marked, schedule := ekho.AddMarkers(game, seq, ekho.DefaultMarkerVolume)

	// The "recording": the marked audio delayed by exactly 100 ms, with
	// capture continuing a moment after the clip ends.
	const isd = 0.100
	rec := ekho.NewBuffer(ekho.SampleRate, marked.Len()+ekho.SampleRate)
	rec.MixInto(marked.Samples, int(isd*ekho.SampleRate), 1)

	var markerTimes []float64
	for _, inj := range schedule {
		markerTimes = append(markerTimes, float64(inj.StartSample)/ekho.SampleRate)
	}
	ms := ekho.EstimateISD(rec, 0, markerTimes, seq)
	allClose := len(ms) > 0
	for _, m := range ms {
		if math.Abs(m.ISDSeconds-isd) > 0.001 {
			allClose = false
		}
	}
	fmt.Printf("measurements: %d, all within 1 ms of 100 ms: %v\n", len(ms), allClose)
	// Output:
	// measurements: 4, all within 1 ms of 100 ms: true
}

// ExampleNewCompensator turns an ISD measurement into a corrective action.
func ExampleNewCompensator() {
	comp := ekho.NewCompensator(ekho.CompensatorConfig{})
	// Screen lags by 60 ms: delay the accessory stream by 3 frames.
	if act := comp.Offer(0, 0.060); act != nil {
		fmt.Printf("%v stream: insert %d frames\n", act.Stream, act.InsertFrames)
	}
	// 4 ms is inside the hysteresis band: no action.
	fmt.Printf("small ISD acted on: %v\n", comp.Offer(100, 0.004) != nil)
	// Output:
	// accessory stream: insert 3 frames
	// small ISD acted on: false
}
