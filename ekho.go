// Package ekho is a stdlib-only Go implementation of Ekho, the system from
// "Ekho: Synchronizing Cloud Gaming Media Across Multiple Endpoints"
// (SIGCOMM 2023): robust synchronization of a cloud-gaming screen stream
// and accessory stream by embedding human-inaudible pseudo-noise (PN)
// markers in the screen audio, detecting them in the chat audio overheard
// by the player's microphone, and compensating the measured Inter-Stream
// Delay (ISD) at the server.
//
// The package is a facade over the internal subsystems:
//
//   - NewMarkerSequence / NewInjector: PN marker generation and embedding
//     with the Eq. 2 amplitude tracker (markers stay below audibility).
//   - NewEstimator: the Eq. 3-7 detection pipeline plus §4.3 timestamp
//     matching, in both one-shot (EstimateISD) and streaming (Estimator)
//     forms.
//   - NewCompensator: the §4.4/§5.1 feedback loop producing frame
//     insert/skip actions with hysteresis and settling.
//   - RunSession: the full simulated end-to-end system of §6.1 (server,
//     two devices, lossy links, jitter buffers, acoustic overhearing).
//
// Quickstart:
//
//	seq := ekho.NewMarkerSequence(42)
//	marked, schedule := ekho.AddMarkers(gameAudio, seq, ekho.DefaultMarkerVolume)
//	// ... play `marked` on the screen; record `chat` at the headset;
//	// collect the accessory playback time of each schedule entry ...
//	isds := ekho.EstimateISD(chat, chatStartTime, markerPlaybackTimes, seq)
//
// See the examples/ directory for runnable programs and DESIGN.md for how
// each paper experiment maps onto the implementation.
package ekho

import (
	"io"

	"ekho/internal/audio"
	"ekho/internal/compensator"
	"ekho/internal/estimator"
	"ekho/internal/netsim"
	"ekho/internal/pn"
	"ekho/internal/serverpipe"
	"ekho/internal/session"
	"ekho/internal/trace"
)

// Audio and marker constants re-exported from the paper's configuration.
const (
	// SampleRate is the canonical stream rate (48 kHz).
	SampleRate = audio.SampleRate
	// FrameSamples is one 20 ms packet (960 samples).
	FrameSamples = audio.FrameSamples
	// MarkerLength is L, the PN sequence length (1 s).
	MarkerLength = audio.MarkerLength
	// DefaultMarkerVolume is C = 0.5, the paper's chosen marker volume
	// (inaudible yet reliably detectable, §6.2-§6.3).
	DefaultMarkerVolume = pn.DefaultC
	// HumanEchoThresholdSec is the 10 ms synchronization target (§3.1).
	HumanEchoThresholdSec = 0.010
)

// Buffer is a mono PCM audio buffer (float64 samples at a fixed rate).
type Buffer = audio.Buffer

// NewBuffer allocates a silent buffer.
func NewBuffer(rate, samples int) *Buffer { return audio.NewBuffer(rate, samples) }

// FromSamples wraps a sample slice as a Buffer without copying.
func FromSamples(rate int, s []float64) *Buffer { return audio.FromSamples(rate, s) }

// MarkerSequence is a reusable band-limited PN marker template shared by
// the injector (server) and estimator.
type MarkerSequence = pn.Sequence

// NewMarkerSequence generates the canonical 1 s, 6-12 kHz PN sequence for
// a seed. Server and estimator must use the same seed.
func NewMarkerSequence(seed int64) *MarkerSequence {
	return pn.NewSequence(seed, pn.DefaultLength)
}

// Injection records where a marker was embedded.
type Injection = pn.Injection

// Injector embeds markers frame by frame into a live stream.
type Injector = pn.Injector

// NewInjector returns a streaming marker injector with relative volume c.
func NewInjector(seq *MarkerSequence, c float64) *Injector { return pn.NewInjector(seq, c) }

// AddMarkers embeds periodic PN markers into a copy of the screen audio,
// returning the marked audio and the injection log (one entry per marker).
func AddMarkers(b *Buffer, seq *MarkerSequence, c float64) (*Buffer, []Injection) {
	return pn.Mark(b, seq, c)
}

// AddConstantMarkers produces the §6.5 muted-screen stream: silence with
// PN markers at a constant amplitude (dB above the internal floor).
func AddConstantMarkers(samples int, seq *MarkerSequence, amplitudeDB float64) (*Buffer, []Injection) {
	return pn.ConstantMark(samples, seq, amplitudeDB)
}

// Detection is a confirmed marker found in a recording.
type Detection = estimator.Detection

// Measurement is one ISD estimate.
type Measurement = estimator.Measurement

// EstimatorConfig tunes the detection pipeline; the zero value uses the
// paper's parameters (S=100 ms, β=0.99995, θ=5, δ=100, L=1 s).
type EstimatorConfig = estimator.Config

// DetectMarkers runs the Eq. 3-7 pipeline over a recording.
func DetectMarkers(rec *Buffer, seq *MarkerSequence) []Detection {
	return estimator.DetectMarkers(rec.Samples, estimator.Config{Seq: seq})
}

// EstimateISD detects markers in a recording and matches them against the
// accessory stream's marker playback times (all in the device's local
// clock), returning one measurement per matched marker. recStartLocal is
// the local capture time of the recording's first sample.
func EstimateISD(rec *Buffer, recStartLocal float64, markerLocalTimes []float64, seq *MarkerSequence) []Measurement {
	return estimator.Estimate(rec, recStartLocal, markerLocalTimes, estimator.Config{Seq: seq})
}

// Estimator is the streaming form used by a live server: feed chat audio
// and marker times as they arrive; measurements are emitted once per
// detected marker.
type Estimator = estimator.Streamer

// NewEstimator returns a streaming estimator for the sequence.
func NewEstimator(seq *MarkerSequence) *Estimator {
	return estimator.NewStreamer(estimator.Config{Seq: seq})
}

// DetectorMode selects the streaming marker-detection pipeline.
type DetectorMode = estimator.DetectorMode

// Detector modes: the band-decimated coarse-to-fine pipeline (default)
// and the full-rate reference.
const (
	DetectorTwoStage = estimator.DetectorTwoStage
	DetectorFullRate = estimator.DetectorFullRate
)

// ParseDetectorMode converts a flag/config spelling ("two-stage",
// "full-rate", ...) into a DetectorMode.
func ParseDetectorMode(s string) (DetectorMode, bool) { return estimator.ParseDetectorMode(s) }

// Compensation types re-exported for the feedback loop.
type (
	// Compensator turns measurements into corrective actions.
	Compensator = compensator.Compensator
	// CompensatorConfig tunes hysteresis/settling/sub-frame behaviour.
	CompensatorConfig = compensator.Config
	// Action is a frame insert/skip command for one stream.
	Action = compensator.Action
	// FrameEditor applies actions to a live frame stream.
	FrameEditor = compensator.FrameEditor
	// Resample is the drift regime's continuous rate-retune action.
	Resample = compensator.Resample
	// DriftCompensatorConfig tunes the micro-resampling regime.
	DriftCompensatorConfig = compensator.DriftConfig
	// DriftLoop layers micro-resampling over the discrete compensator.
	DriftLoop = compensator.DriftLoop
	// DriftTracker fits ISD level+slope over a sliding window.
	DriftTracker = estimator.DriftTracker
	// DriftTrackerConfig tunes the sliding-window slope fit.
	DriftTrackerConfig = estimator.DriftConfig
	// DriftFit is one windowed least-squares level+slope fit.
	DriftFit = estimator.DriftFit
)

// Stream identifiers for compensation actions.
const (
	ScreenStream    = compensator.ScreenStream
	AccessoryStream = compensator.AccessoryStream
)

// NewCompensator returns a compensator; the zero config uses the paper's
// 5 ms hysteresis and a 6 s settling window.
func NewCompensator(cfg CompensatorConfig) *Compensator { return compensator.New(cfg) }

// Session types re-exported for end-to-end simulation.
type (
	// SessionScenario configures a simulated end-to-end run.
	SessionScenario = session.Scenario
	// SessionResult carries the ISD trace, measurements and actions.
	SessionResult = session.Result
	// ISDPoint is one ground-truth ISD observation.
	ISDPoint = session.ISDPoint
	// ScriptedLoss forces a deterministic loss event.
	ScriptedLoss = session.ScriptedLoss
)

// Haptics types re-exported for controller rumble synchronization.
type (
	// HapticEvent is one rumble command anchored to game content.
	HapticEvent = session.HapticEvent
	// HapticRecord reports a fired rumble and its skew to the screen.
	HapticRecord = session.HapticRecord
)

// Session stream identifiers for scripted loss events.
const (
	SessionScreen    = session.Screen
	SessionAccessory = session.Accessory
)

// DefaultSessionScenario mirrors the paper's testbed (screen on cellular,
// controller on WiFi).
func DefaultSessionScenario() SessionScenario { return session.DefaultScenario() }

// RunSession executes a simulated end-to-end session.
func RunSession(sc SessionScenario) *SessionResult { return session.Run(sc) }

// Multi-endpoint types re-exported: N screen devices synchronized against
// one accessory stream using per-screen PN seeds (see
// internal/session/multi.go for the align-to-slowest policy).
type (
	// MultiScenario configures an N-screen simulated session.
	MultiScenario = session.MultiScenario
	// ScreenSpec describes one screen endpoint in a MultiScenario.
	ScreenSpec = session.ScreenSpec
	// MultiResult carries per-screen ISD traces and joint actions.
	MultiResult = session.MultiResult
)

// DefaultMultiScenario returns a two-screen setup (cellular TV + WiFi PC).
func DefaultMultiScenario() MultiScenario { return session.DefaultMultiScenario() }

// RunMultiSession executes a simulated N-screen session.
func RunMultiSession(sc MultiScenario) *MultiResult { return session.RunMulti(sc) }

// Server pipeline re-exports: the transport-agnostic per-session server
// core (streams, marker ledger, record matching, chat sequencing,
// estimation, compensation) that every hosting layer — the multi-tenant
// hub, the discrete-event simulator, the experiments harness — drives.
// Embed ServerNopSink to observe only the events of interest.
type (
	// ServerPipeline is one session's server core.
	ServerPipeline = serverpipe.Pipeline
	// ServerPipelineConfig assembles a pipeline (Game and Seq required).
	ServerPipelineConfig = serverpipe.Config
	// ServerFrameInfo describes one produced downlink frame.
	ServerFrameInfo = serverpipe.FrameInfo
	// ServerPlaybackRecord reports when accessory content played locally.
	ServerPlaybackRecord = serverpipe.Record
	// ServerEventSink receives pipeline lifecycle events.
	ServerEventSink = serverpipe.EventSink
	// ServerNopSink ignores all events; embed it for partial sinks.
	ServerNopSink = serverpipe.NopSink
)

// NewServerPipeline assembles a per-session server pipeline.
func NewServerPipeline(cfg ServerPipelineConfig) *ServerPipeline { return serverpipe.New(cfg) }

// Capture/replay re-exports: record a live session's pipeline timeline to
// a versioned binary trace, replay it deterministically, and verify the
// replayed ISD/compensation sequences bit for bit (cmd/ekho-replay is the
// CLI over the same API).
type (
	// TraceHeader reconstructs a recorded session's pipeline configuration.
	TraceHeader = trace.Header
	// TraceRecorder captures a session timeline (serverpipe.EventSink plus
	// input/output taps).
	TraceRecorder = trace.Recorder
	// ReplayReport summarizes one deterministic replay.
	ReplayReport = trace.ReplayReport
	// SessionStat is the stable one-line-per-session status format shared
	// by the live server's SIGHUP dump and the replayer's final report.
	SessionStat = trace.SessionStat
)

// NewTraceRecorder starts recording a session to w.
func NewTraceRecorder(w io.Writer, h TraceHeader) (*TraceRecorder, error) {
	return trace.NewRecorder(w, h)
}

// TraceHeaderFor captures a session's effective pipeline configuration.
func TraceHeaderFor(sessionID uint32, clipIndex int, seed int64, cfg ServerPipelineConfig) TraceHeader {
	return trace.HeaderFor(sessionID, clipIndex, seed, cfg)
}

// ReplayTrace re-drives a fresh pipeline from a recorded trace and
// verifies every recorded output exactly.
func ReplayTrace(r io.Reader) (*ReplayReport, error) { return trace.Replay(r) }

// Provider network profile re-exports: named delay/jitter/loss shapes
// modeled on the Stadia / GeForce Now / PlayStation Now measurement study
// (arXiv:2012.06774), selectable by name in simulator scenarios.
type (
	// ProviderProfile is a named bidirectional path shape.
	ProviderProfile = netsim.ProviderProfile
)

// Providers returns the built-in provider profiles in a stable order.
func Providers() []ProviderProfile { return netsim.Providers() }

// ProviderByName resolves a provider profile by name or alias.
func ProviderByName(name string) (ProviderProfile, bool) { return netsim.ProviderByName(name) }
