// gcc-phat-compare: the §6.4 head-to-head — Ekho's marker-based estimator
// vs GCC-PHAT (the marker-free state of the art) on the same recordings,
// with background chatter swept from none to louder than the game audio.
// GCC-PHAT's measurement rate collapses once voices mask the game audio;
// Ekho's inaudible markers keep working.
//
//	go run ./examples/gcc-phat-compare
package main

import (
	"fmt"
	"math/rand"

	"ekho"
	"ekho/internal/acoustic"
	"ekho/internal/audio"
	"ekho/internal/codec"
	"ekho/internal/gamesynth"
	"ekho/internal/gccphat"
)

func main() {
	clip := gamesynth.Generate(gamesynth.Catalog()[0], 10)
	seq := ekho.NewMarkerSequence(42)

	fmt.Printf("%-18s %16s %16s\n", "condition", "Ekho rate", "GCC-PHAT rate")
	for _, cond := range []struct {
		name   string
		offset float64 // chatter dBA relative to game audio; NaN = none
		chat   bool
	}{
		{"no chatter", 0, false},
		{"chat -5 dBA", -5, true},
		{"chat +0 dBA", 0, true},
		{"chat +5 dBA", +5, true},
	} {
		ekhoRate, gccRate := runCondition(clip, seq, cond.chat, cond.offset)
		fmt.Printf("%-18s %15.0f%% %15.0f%%\n", cond.name, ekhoRate*100, gccRate*100)
	}
	fmt.Println("\nrate = ISD measurements per marker opportunity (one per second)")
}

func runCondition(clip *audio.Buffer, seq *ekho.MarkerSequence, withChat bool, offsetDBA float64) (ekhoRate, gccRate float64) {
	marked, injections := ekho.AddMarkers(clip, seq, ekho.DefaultMarkerVolume)
	ch := acoustic.Channel{
		Mic: acoustic.XboxHeadset, DistanceFt: 6, Attenuation: 0.1,
		Room:         acoustic.Room{RT60: 0.35, Reflections: 30, Seed: 3},
		AmbientLevel: 0.0006, NoiseSeed: 4,
	}
	var recEkho, recGCC *audio.Buffer
	if withChat {
		chatter := gamesynth.Babble(rand.New(rand.NewSource(7)), clip.Duration(), 2)
		gain := audio.GainForDBA(chatter, audio.MedianFrameDBA(clip)+offsetDBA)
		// Chatter couples to the headset mic more strongly than the
		// distant TV (people sit next to the player).
		recEkho = ch.TransmitMixed(marked, chatter.Clone().Gain(gain), 0.6)
		recGCC = ch.TransmitMixed(clip, chatter.Clone().Gain(gain), 0.6)
	} else {
		recEkho = ch.Transmit(marked)
		recGCC = ch.Transmit(clip)
	}
	for _, rec := range []*audio.Buffer{recEkho, recGCC} {
		rec.Samples = append(rec.Samples, make([]float64, ekho.SampleRate)...)
	}

	codedEkho, err := codec.RoundTripAligned(recEkho, codec.SWB32)
	if err != nil {
		panic(err)
	}
	codedGCC, err := codec.RoundTripAligned(recGCC, codec.SWB32)
	if err != nil {
		panic(err)
	}

	// Ekho: detections matched against marker schedule.
	var markerTimes []float64
	for _, inj := range injections {
		markerTimes = append(markerTimes, float64(inj.StartSample)/ekho.SampleRate)
	}
	ms := ekho.EstimateISD(codedEkho, 0, markerTimes, seq)
	ekhoRate = float64(len(ms)) / float64(len(injections))

	// GCC-PHAT: one estimate per second, 300 ms plausibility rule.
	accepted := 0
	gms := gccphat.EstimateSegments(clip, codedGCC, 1)
	for _, g := range gms {
		if g.Plausible {
			accepted++
		}
	}
	if len(gms) > 0 {
		gccRate = float64(accepted) / float64(len(gms))
	}
	return ekhoRate, gccRate
}
