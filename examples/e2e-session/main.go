// e2e-session: the full closed-loop system of the paper's §6.1 in virtual
// time — a cloud game server streaming to a cellular-connected screen and
// a WiFi-connected controller, with the headset microphone overhearing the
// TV, the chat uplink feeding Ekho-Estimator, and Ekho-Compensator
// re-aligning the streams. Prints the ISD timeline, every measurement and
// every compensation action, then the Figure 8-style summary.
//
//	go run ./examples/e2e-session
package main

import (
	"fmt"
	"math"

	"ekho"
)

func main() {
	sc := ekho.DefaultSessionScenario()
	sc.DurationSec = 90
	// Scripted single-frame loss mid-session (the Figure 9 dynamic).
	sc.ControllerJitterFrames = 3
	sc.ScriptedLosses = []ekho.ScriptedLoss{{AtSec: 50, Stream: ekho.SessionAccessory, Frames: 1}}

	fmt.Println("running 90 s end-to-end session (virtual time)...")
	res := ekho.RunSession(sc)

	fmt.Println("\ncompensation actions:")
	for _, a := range res.Actions {
		fmt.Printf("  t=%5.1fs  %v stream: insert %d frames %d samples, skip %d frames\n",
			a.TimeSec, a.Action.Stream, a.Action.InsertFrames, a.Action.InsertSamples, a.Action.SkipFrames)
	}

	fmt.Println("\nISD timeline (1 s resolution):")
	next := 0.0
	for _, p := range res.Trace {
		if p.TimeSec >= next {
			bar := isdBar(p.ISDSeconds)
			fmt.Printf("  t=%5.1fs  ISD %+7.1f ms  %s\n", p.TimeSec, p.ISDSeconds*1000, bar)
			next = p.TimeSec + 1
		}
	}

	in10 := 0
	total := 0
	for _, p := range res.Trace {
		if p.TimeSec < sc.WarmupIgnoreSec {
			continue
		}
		total++
		if math.Abs(p.ISDSeconds) <= ekho.HumanEchoThresholdSec {
			in10++
		}
	}
	fmt.Printf("\nsummary: %d measurements, %d actions, |ISD| <= 10 ms for %.1f%% of the session\n",
		len(res.Measurements), len(res.Actions), 100*float64(in10)/float64(total))
	fmt.Printf("packet loss: screen %d/%d, accessory %d/%d\n",
		res.ScreenLoss.Lost, res.ScreenLoss.Sent, res.AccessLoss.Lost, res.AccessLoss.Sent)
}

// isdBar renders a tiny ASCII gauge of the ISD magnitude.
func isdBar(isd float64) string {
	n := int(math.Abs(isd) * 1000 / 10) // one block per 10 ms
	if n > 40 {
		n = 40
	}
	out := make([]byte, n)
	for i := range out {
		out[i] = '#'
	}
	if isd < 0 {
		return "-" + string(out)
	}
	return string(out)
}
