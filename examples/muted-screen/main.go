// muted-screen: the §6.5 scenario — the TV's game audio is muted (to avoid
// disturbing others) and the player listens through the headset, but the
// video on screen must still stay in sync with the headset audio and
// haptics. Ekho switches to constant-amplitude PN markers: the muted
// screen plays only faint noise pulses, quieter than a library, and the
// estimator still measures the video-to-audio delay.
//
//	go run ./examples/muted-screen
package main

import (
	"fmt"

	"ekho"
	"ekho/internal/acoustic"
	"ekho/internal/codec"
	"ekho/internal/perceptual"
)

func main() {
	seq := ekho.NewMarkerSequence(42)
	const seconds = 8

	fmt.Println("muted screen: constant-amplitude markers vs loudness and detectability")
	fmt.Printf("%-12s %-14s %-14s %-12s\n", "amp (dB)", "marker dBA", "detected", "max err (us)")
	for _, amp := range []float64{3, 6, 9, 12, 15} {
		// The muted screen plays only the marker pulses.
		stream, injections := ekho.AddConstantMarkers(seconds*ekho.SampleRate, seq, amp)
		loudness := perceptual.MarkerBandLoudness(stream)

		// Physical path to the headset microphone.
		ch := acoustic.Channel{
			Mic: acoustic.XboxHeadset, DistanceFt: 6, Attenuation: 0.1,
			Room:         acoustic.Room{RT60: 0.35, Reflections: 30, Seed: 1},
			AmbientLevel: 0.0006, NoiseSeed: 2,
		}
		rec := ch.Transmit(stream)
		rec.Samples = append(rec.Samples, make([]float64, ekho.SampleRate)...)
		coded, err := codec.RoundTripAligned(rec, codec.SWB32)
		if err != nil {
			panic(err)
		}

		// The headset played the (hypothetical) markers at their schedule
		// times; measure the arrival delay of the screen's pulses.
		var markerTimes []float64
		for _, inj := range injections {
			markerTimes = append(markerTimes, float64(inj.StartSample)/ekho.SampleRate)
		}
		ms := ekho.EstimateISD(coded, 0, markerTimes, seq)
		var maxErr float64
		for _, m := range ms {
			if e := (m.ISDSeconds - ch.TotalDelaySec()) * 1e6; e > maxErr || -e > maxErr {
				if e < 0 {
					e = -e
				}
				maxErr = e
			}
		}
		fmt.Printf("%-12.0f %-14.1f %2d/%-11d %-12.0f\n",
			amp, loudness, len(ms), len(injections), maxErr)
	}
	fmt.Printf("\nreference levels: quiet library %.0f dBA, air conditioner %.0f dBA\n",
		perceptual.QuietLibraryDBA, perceptual.AirConditionerDBA)
	fmt.Println("the paper's finding: amplitudes in [6 dB, 15 dB] detect reliably while")
	fmt.Println("staying below a quiet library's sound level.")
}
