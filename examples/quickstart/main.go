// Quickstart: the minimal Ekho loop in one file.
//
// It synthesizes game audio, embeds inaudible PN markers (the screen
// stream), simulates the acoustic path from the TV speakers to the
// player's headset microphone, compresses the "chat" recording like a
// voice uplink would, and then runs Ekho-Estimator to measure the
// inter-stream delay to sub-millisecond accuracy — all offline.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"ekho"
	"ekho/internal/acoustic"
	"ekho/internal/codec"
	"ekho/internal/gamesynth"
)

func main() {
	// 1. Game audio: 8 s of a synthetic FPS clip (the corpus stands in
	//    for the paper's commercial game recordings).
	game := gamesynth.Generate(gamesynth.Catalog()[0], 8)

	// 2. Server side: embed PN markers at the paper's C = 0.5. The
	//    injection log records where each marker starts.
	seq := ekho.NewMarkerSequence(42)
	marked, injections := ekho.AddMarkers(game, seq, ekho.DefaultMarkerVolume)
	fmt.Printf("embedded %d markers in %.0f s of audio\n", len(injections), game.Duration())

	// 3. The physical world: the screen plays the marked audio; the
	//    headset mic overhears it 6 ft away, colored by an Xbox headset's
	//    frequency response, with room reverb and an ambient noise floor.
	channel := acoustic.DefaultChannel()
	recording := channel.Transmit(marked)
	// The capture keeps rolling briefly after the clip ends.
	recording.Samples = append(recording.Samples, make([]float64, ekho.SampleRate)...)

	// 4. The uplink: chat audio is lossy-compressed (OPUS-like SWB at
	//    32 kbps) before it reaches the server.
	compressed, err := codec.RoundTripAligned(recording, codec.SWB32)
	if err != nil {
		log.Fatal(err)
	}

	// 5. Ekho-Estimator: match detections against the accessory stream's
	//    marker playback times. Here the accessory stream played each
	//    marker exactly at its injection time, so the measured ISD is the
	//    acoustic path delay (6 ft ≈ 6 ms).
	var markerTimes []float64
	for _, inj := range injections {
		markerTimes = append(markerTimes, float64(inj.StartSample)/ekho.SampleRate)
	}
	measurements := ekho.EstimateISD(compressed, 0, markerTimes, seq)

	fmt.Printf("markers detected: %d/%d\n", len(measurements), len(injections))
	for i, m := range measurements {
		fmt.Printf("  marker %d: ISD = %+.3f ms (correlation strength %.0f sigma)\n",
			i, m.ISDSeconds*1000, m.Strength)
	}
	if len(measurements) > 0 {
		fmt.Printf("expected: ~%.3f ms (sound propagation over 6 ft)\n",
			channel.TotalDelaySec()*1000)
	}
}
