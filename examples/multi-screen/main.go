// multi-screen: Ekho generalized to several screen endpoints (Figure 1
// shows both a TV and a PC playing the screen stream). Each screen's
// stream carries markers from its own PN seed — different seeds are nearly
// orthogonal, so the single chat uplink drives one estimator per screen —
// and a joint policy aligns every device to the slowest one.
//
//	go run ./examples/multi-screen
package main

import (
	"fmt"
	"math"

	"ekho"
)

func main() {
	sc := ekho.DefaultMultiScenario()
	sc.DurationSec = 60
	fmt.Printf("running %d screens + controller for %.0f s (virtual time)...\n",
		len(sc.Screens), sc.DurationSec)
	res := ekho.RunMultiSession(sc)

	fmt.Printf("\njoint compensation rounds: %d\n", res.Actions)
	for i, trace := range res.Traces {
		first, last := trace[0], trace[len(trace)-1]
		fmt.Printf("screen %d: ISD %+.0f ms at start -> %+.1f ms at end; |ISD|<=10 ms for %.0f%% after warm-up\n",
			i, first.ISDSeconds*1000, last.ISDSeconds*1000, res.InSyncFractions[i]*100)
	}

	fmt.Println("\nper-screen ISD timeline (2 s resolution):")
	for i, trace := range res.Traces {
		fmt.Printf("screen %d:", i)
		next := 0.0
		for _, p := range trace {
			if p.TimeSec >= next {
				fmt.Printf(" %+.0f", p.ISDSeconds*1000)
				next = p.TimeSec + 2
			}
		}
		fmt.Println(" (ms)")
	}

	worst := 0.0
	for _, trace := range res.Traces {
		for _, p := range trace {
			if p.TimeSec > sc.DurationSec-10 {
				if v := math.Abs(p.ISDSeconds); v > worst {
					worst = v
				}
			}
		}
	}
	fmt.Printf("\nworst |ISD| across all screens in the final 10 s: %.1f ms\n", worst*1000)
}
