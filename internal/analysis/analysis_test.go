package analysis

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestStdNormalCDFAnchors(t *testing.T) {
	if math.Abs(StdNormalCDF(0)-0.5) > 1e-12 {
		t.Fatal("Phi(0)")
	}
	if math.Abs(StdNormalCDF(1.96)-0.975) > 0.001 {
		t.Fatalf("Phi(1.96)=%g", StdNormalCDF(1.96))
	}
	if StdNormalCDF(-8) > 1e-10 || StdNormalCDF(8) < 1-1e-10 {
		t.Fatal("tails")
	}
}

func TestFalsePositiveRateTheta5(t *testing.T) {
	p := FalsePositiveRate(5)
	// 2(1-Phi(5)) ≈ 5.7e-7; Appendix A quotes 2E-4 % = 2e-6, same order.
	if p < 1e-7 || p > 5e-6 {
		t.Fatalf("p(theta=5) = %g, want ~1e-6 order", p)
	}
	// Monotone decreasing in theta.
	if FalsePositiveRate(6) >= p {
		t.Fatal("monotonicity")
	}
}

func TestFalsePeakRateScalesWithDelta(t *testing.T) {
	p := FalsePositiveRate(5)
	fp := FalsePeakRate(5, 100)
	want := 201 * p * p
	if math.Abs(fp-want) > 1e-20 {
		t.Fatalf("false peak %g want %g", fp, want)
	}
	// θ=5, δ=100 must be "one false peak every several hours" territory.
	mtbf := MeanTimeBetweenFalsePositives(fp, 48000)
	if mtbf < 3600 {
		t.Fatalf("MTBF %g s, want hours", mtbf)
	}
	if !math.IsInf(MeanTimeBetweenFalsePositives(0, 48000), 1) {
		t.Fatal("zero rate should be +Inf")
	}
}

func TestFalsePositiveRateMatchesMonteCarlo(t *testing.T) {
	// Validate the analytic rate against simulation at a low threshold
	// (θ=3 keeps the MC sample count reasonable).
	rng := rand.New(rand.NewSource(1))
	const n = 2_000_000
	count := 0
	for i := 0; i < n; i++ {
		if math.Abs(rng.NormFloat64()) > 3 {
			count++
		}
	}
	mc := float64(count) / n
	an := FalsePositiveRate(3)
	if math.Abs(mc-an)/an > 0.15 {
		t.Fatalf("MC %g vs analytic %g", mc, an)
	}
}

func TestCDF(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	got := CDF(xs, []float64{0, 2.5, 3, 10})
	want := []float64{0, 0.4, 0.6, 1}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("cdf[%d]=%g want %g", i, got[i], want[i])
		}
	}
	for _, v := range CDF(nil, []float64{1}) {
		if !math.IsNaN(v) {
			t.Fatal("empty CDF should be NaN")
		}
	}
}

func TestCDFMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		xs := make([]float64, 200)
		for i := range xs {
			xs[i] = rng.NormFloat64()
		}
		probes := make([]float64, 50)
		for i := range probes {
			probes[i] = -3 + float64(i)*0.12
		}
		cdf := CDF(xs, probes)
		for i := 1; i < len(cdf); i++ {
			if cdf[i] < cdf[i-1] {
				return false
			}
		}
		return cdf[0] >= 0 && cdf[len(cdf)-1] <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestFraction(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if Fraction(xs, func(x float64) bool { return x <= 2 }) != 0.5 {
		t.Fatal("fraction")
	}
	if !math.IsNaN(Fraction(nil, func(float64) bool { return true })) {
		t.Fatal("empty fraction")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{10, 20, 30, 40, 50}
	if Percentile(xs, 0) != 10 || Percentile(xs, 1) != 50 {
		t.Fatal("extremes")
	}
	if Percentile(xs, 0.5) != 30 {
		t.Fatal("median")
	}
	if math.Abs(Percentile(xs, 0.25)-20) > 1e-12 {
		t.Fatalf("p25 %g", Percentile(xs, 0.25))
	}
	if !math.IsNaN(Percentile(nil, 0.5)) {
		t.Fatal("empty")
	}
}

func TestHistogram(t *testing.T) {
	xs := []float64{-1, 0.5, 1.5, 2.5, 99}
	h := Histogram(xs, []float64{0, 1, 2})
	// bins: (-inf,0) [0,1) [1,2) [2,inf)
	want := []int{1, 1, 1, 2}
	for i := range want {
		if h[i] != want[i] {
			t.Fatalf("hist %v want %v", h, want)
		}
	}
	total := 0
	for _, c := range h {
		total += c
	}
	if total != len(xs) {
		t.Fatal("histogram must conserve count")
	}
}

func TestMeanMaxAbs(t *testing.T) {
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Fatal("mean")
	}
	if Max([]float64{1, 5, 3}) != 5 {
		t.Fatal("max")
	}
	if !math.IsNaN(Mean(nil)) || !math.IsNaN(Max(nil)) {
		t.Fatal("empty mean/max")
	}
	a := AbsAll([]float64{-1, 2})
	if a[0] != 1 || a[1] != 2 {
		t.Fatal("absall")
	}
}
