// Package analysis implements the reliability model of the paper's
// Appendix A — analytic false-positive and false-peak rates for the
// Ekho-Estimator thresholds — plus the shared statistics helpers (CDFs,
// histograms, percentiles) that the experiment harness uses to print the
// evaluation's tables and figure series.
//
// Appendix A's argument: off-peak, the normalized cross-correlation Z* is
// distributed as |N(0,1)|. A threshold θ therefore admits a per-sample
// false-positive probability p = 2(1−Φ(θ)). The back-to-back filter
// (Eq. 7) requires a second aligned peak within a ±δ window one marker
// interval away, so a false *pair* needs two independent events, giving a
// per-sample false-peak probability of roughly (2δ+1)·p².
package analysis

import (
	"math"
	"sort"
)

// StdNormalCDF is Φ, the standard normal cumulative distribution.
func StdNormalCDF(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}

// FalsePositiveRate returns the per-sample probability that |N(0,1)|
// exceeds theta: p = 2(1−Φ(θ)). For θ = 5 this is ≈ 5.7e-7 per sample —
// the paper's "2E-4 %" (i.e. 2e-6 in fractional terms, of the same order).
func FalsePositiveRate(theta float64) float64 {
	return 2 * (1 - StdNormalCDF(theta))
}

// FalsePeakRate returns the per-sample probability of a spurious *pair*
// surviving the Eq. 7 filter: (2δ+1)·p² with p = FalsePositiveRate(θ).
func FalsePeakRate(theta float64, delta int) float64 {
	p := FalsePositiveRate(theta)
	return float64(2*delta+1) * p * p
}

// MeanTimeBetweenFalsePositives converts a per-sample rate to seconds at
// the given sample rate. Returns +Inf for a zero rate.
func MeanTimeBetweenFalsePositives(ratePerSample float64, sampleRate int) float64 {
	if ratePerSample <= 0 {
		return math.Inf(1)
	}
	return 1 / (ratePerSample * float64(sampleRate))
}

// CDF computes the empirical distribution of xs at the given probe points:
// fraction of values <= probe.
func CDF(xs []float64, probes []float64) []float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	out := make([]float64, len(probes))
	for i, p := range probes {
		out[i] = float64(sort.SearchFloat64s(s, math.Nextafter(p, math.Inf(1)))) / float64(len(s))
	}
	if len(s) == 0 {
		for i := range out {
			out[i] = math.NaN()
		}
	}
	return out
}

// Fraction returns the share of values for which pred holds.
func Fraction(xs []float64, pred func(float64) bool) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	n := 0
	for _, x := range xs {
		if pred(x) {
			n++
		}
	}
	return float64(n) / float64(len(xs))
}

// Percentile returns the p-quantile (0 <= p <= 1) by linear interpolation.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 1 {
		return s[len(s)-1]
	}
	pos := p * float64(len(s)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(s) {
		return s[len(s)-1]
	}
	return s[lo]*(1-frac) + s[lo+1]*frac
}

// Histogram bins values into the ranges defined by edges (len(edges)+1
// bins: (-inf, e0), [e0, e1), ..., [eLast, +inf)).
func Histogram(xs []float64, edges []float64) []int {
	out := make([]int, len(edges)+1)
	for _, x := range xs {
		i := sort.SearchFloat64s(edges, math.Nextafter(x, math.Inf(1)))
		out[i]++
	}
	return out
}

// Mean returns the arithmetic mean (NaN for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Max returns the maximum (NaN for empty input).
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// AbsAll returns |x| element-wise.
func AbsAll(xs []float64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = math.Abs(x)
	}
	return out
}
