package session

import (
	"math"
	"testing"

	"ekho/internal/audio"
	"ekho/internal/compensator"
)

// shortScenario is a fast configuration for unit tests.
func shortScenario() Scenario {
	sc := DefaultScenario()
	sc.DurationSec = 40
	return sc
}

func TestSessionConvergesWithEkho(t *testing.T) {
	res := Run(shortScenario())
	if len(res.Trace) == 0 {
		t.Fatal("no ISD trace")
	}
	if len(res.Measurements) == 0 {
		t.Fatal("no Ekho measurements")
	}
	if len(res.Actions) == 0 {
		t.Fatal("no compensation actions — streams start hundreds of ms apart")
	}
	// After convergence (last 10 s) the ISD should be inside the
	// whole-frame bound (±10 ms) most of the time.
	var tail []float64
	for _, p := range res.Trace {
		if p.TimeSec > 30 {
			tail = append(tail, math.Abs(p.ISDSeconds))
		}
	}
	if len(tail) == 0 {
		t.Fatal("no tail trace")
	}
	inSync := 0
	for _, v := range tail {
		if v <= 0.010 {
			inSync++
		}
	}
	frac := float64(inSync) / float64(len(tail))
	if frac < 0.8 {
		t.Fatalf("tail in-sync fraction %.2f, want >= 0.8", frac)
	}
}

func TestSessionWithoutEkhoStaysOutOfSync(t *testing.T) {
	sc := shortScenario()
	sc.EkhoEnabled = false
	res := Run(sc)
	if len(res.Trace) == 0 {
		t.Fatal("no trace")
	}
	if len(res.Measurements) != 0 || len(res.Actions) != 0 {
		t.Fatal("Ekho OFF must not measure or act")
	}
	// The latency gap (cellular + TV latency vs WiFi) keeps ISD far from
	// zero the whole session (paper: never below 50 ms).
	for _, p := range res.Trace {
		if p.TimeSec > 5 && math.Abs(p.ISDSeconds) < 0.050 {
			t.Fatalf("ISD %g at %gs without Ekho — should never approach sync", p.ISDSeconds, p.TimeSec)
		}
	}
	if res.InSyncFraction != 0 {
		t.Fatalf("in-sync fraction %g without Ekho", res.InSyncFraction)
	}
}

func TestSessionMeasurementsMatchGroundTruth(t *testing.T) {
	// Every Ekho measurement taken outside compensation transients must
	// agree with the ground-truth trace at that moment to a few ms.
	res := Run(shortScenario())
	// Build a lookup of ground truth by time.
	gt := func(at float64) (float64, bool) {
		best, bestDt := 0.0, math.Inf(1)
		for _, p := range res.Trace {
			if dt := math.Abs(p.TimeSec - at); dt < bestDt {
				bestDt, best = dt, p.ISDSeconds
			}
		}
		return best, bestDt < 0.5
	}
	checked := 0
	for _, m := range res.Measurements {
		// Skip measurements within 6 s of any action (transients).
		inTransient := false
		for _, a := range res.Actions {
			if m.TimeSec >= a.TimeSec-2 && m.TimeSec <= a.TimeSec+8 {
				inTransient = true
				break
			}
		}
		if inTransient {
			continue
		}
		want, ok := gt(m.TimeSec)
		if !ok {
			continue
		}
		checked++
		if math.Abs(m.ISDSeconds-want) > 0.005 {
			t.Fatalf("measurement %g at %gs disagrees with ground truth %g",
				m.ISDSeconds, m.TimeSec, want)
		}
	}
	if checked == 0 {
		t.Fatal("no steady-state measurements checked")
	}
}

func TestScriptedLossCausesResync(t *testing.T) {
	sc := shortScenario()
	sc.DurationSec = 60
	// Clean links so only the scripted loss perturbs the session. A
	// deeper controller buffer guarantees frames are queued at the loss
	// tick, so playback jumps ahead (an empty buffer would rebuffer and
	// self-heal instead — both behaviours exist in the wild).
	sc.ScreenLink.LossProb = 0
	sc.ControllerLink.LossProb = 0
	sc.ControllerUplink.LossProb = 0
	sc.ControllerJitterFrames = 3
	sc.ScriptedLosses = []ScriptedLoss{{AtSec: 35, Stream: Accessory, Frames: 1}}
	res := Run(sc)
	// Find the ISD right before the loss and shortly after.
	mean := func(lo, hi float64) float64 {
		var s float64
		n := 0
		for _, p := range res.Trace {
			if p.TimeSec >= lo && p.TimeSec <= hi {
				s += p.ISDSeconds
				n++
			}
		}
		if n == 0 {
			return math.NaN()
		}
		return s / float64(n)
	}
	// The post-loss window closes before the (fast) incremental estimator
	// can drive a correction.
	before := mean(30, 34.5)
	after := mean(35.3, 36.2)
	if math.IsNaN(before) || math.IsNaN(after) {
		t.Fatal("missing trace segments")
	}
	// Losing one accessory frame advances the accessory playback by
	// 20 ms → ISD jumps up by ~20 ms.
	jump := after - before
	if jump < 0.012 || jump > 0.028 {
		t.Fatalf("loss jump %g want ~0.020", jump)
	}
	// And Ekho must bring it back under 10 ms within ~10 s.
	end := mean(50, 60)
	if math.Abs(end) > 0.010 {
		t.Fatalf("post-loss resync failed: ISD %g at end", end)
	}
}

func TestInitialCorrectionMagnitude(t *testing.T) {
	// The startup gap (cellular + jitter buffer + TV latency vs WiFi)
	// must be corrected by inserting frames into the accessory stream.
	res := Run(shortScenario())
	if len(res.Actions) == 0 {
		t.Fatal("no actions")
	}
	first := res.Actions[0]
	if first.Action.Stream != compensator.AccessoryStream {
		t.Fatalf("first action on %v, want accessory (screen lags)", first.Action.Stream)
	}
	if first.Action.InsertFrames < 5 {
		t.Fatalf("first correction only %d frames — startup gap should be large", first.Action.InsertFrames)
	}
	// The correction should happen within the estimator warm-up (2-8 s).
	if first.TimeSec > 10 {
		t.Fatalf("first correction at %gs, too slow", first.TimeSec)
	}
}

func TestSubFrameModeTightensSync(t *testing.T) {
	coarse := shortScenario()
	fine := shortScenario()
	fine.SubFrame = true
	rc := Run(coarse)
	rf := Run(fine)
	tailErr := func(r *Result) float64 {
		var s float64
		n := 0
		for _, p := range r.Trace {
			if p.TimeSec > 25 {
				s += math.Abs(p.ISDSeconds)
				n++
			}
		}
		return s / float64(n)
	}
	ce, fe := tailErr(rc), tailErr(rf)
	if fe > ce+0.002 {
		t.Fatalf("sub-frame mode should not be worse: %g vs %g", fe, ce)
	}
	if fe > 0.005 {
		t.Fatalf("sub-frame steady error %g want < 5 ms", fe)
	}
}

func TestDeterministicForSeed(t *testing.T) {
	sc := shortScenario()
	sc.DurationSec = 20
	a := Run(sc)
	b := Run(sc)
	if len(a.Trace) != len(b.Trace) {
		t.Fatal("nondeterministic trace length")
	}
	for i := range a.Trace {
		if a.Trace[i] != b.Trace[i] {
			t.Fatal("nondeterministic trace")
		}
	}
}

func TestChirpGroundTruthAgreesWithBookkeeping(t *testing.T) {
	// Validate the §6.1 chirp methodology: build a synthetic third-device
	// recording with both chirps at a known offset and check AlignChirps.
	rec := audio.NewBuffer(audio.SampleRate, 4*audio.SampleRate)
	up := ScreenChirp(audio.SampleRate)
	down := ControllerChirp(audio.SampleRate)
	const isdMs = 73.0
	ctrlAt := audio.SampleRate / 2
	screenAt := ctrlAt + int(isdMs/1000*audio.SampleRate)
	rec.MixInto(down.Samples, ctrlAt, 0.8)
	rec.MixInto(up.Samples, screenAt, 0.6)
	// Light noise.
	for i := range rec.Samples {
		rec.Samples[i] += 0.01 * math.Sin(float64(i))
	}
	isd, conf := AlignChirps(rec)
	if conf < 0.2 {
		t.Fatalf("confidence %g too low", conf)
	}
	if math.Abs(isd-isdMs/1000) > 0.001 {
		t.Fatalf("chirp ISD %g want %g", isd, isdMs/1000)
	}
}
