package session

import (
	"math"
	"testing"

	"ekho/internal/audio"
	"ekho/internal/estimator"
	"ekho/internal/gamesynth"
	"ekho/internal/pn"
)

func TestPNSequencesOrthogonalAcrossSeeds(t *testing.T) {
	// The multi-screen design depends on different seeds being separable:
	// a detector for seed A must find nothing in audio marked with seed B.
	seqA := pn.NewSequence(4242, pn.DefaultLength)
	seqB := pn.NewSequence(9191, pn.DefaultLength)
	clip := gamesynth.Generate(gamesynth.Catalog()[0], 4)
	markedB, logB := pn.Mark(clip, seqB, 0.5)
	markedB.Samples = append(markedB.Samples, make([]float64, audio.SampleRate)...)

	wrong := estimator.DetectMarkers(markedB.Samples, estimator.Config{Seq: seqA})
	if len(wrong) != 0 {
		t.Fatalf("seed-A detector found %d markers in seed-B audio", len(wrong))
	}
	right := estimator.DetectMarkers(markedB.Samples, estimator.Config{Seq: seqB})
	if len(right) != len(logB) {
		t.Fatalf("seed-B detector found %d of %d own markers", len(right), len(logB))
	}
}

func TestPNSequencesSeparableWhenMixed(t *testing.T) {
	// Both screens audible at the microphone simultaneously: each
	// detector must find exactly its own markers.
	seqA := pn.NewSequence(4242, pn.DefaultLength)
	seqB := pn.NewSequence(9191, pn.DefaultLength)
	clip := gamesynth.Generate(gamesynth.Catalog()[2], 4)
	markedA, logA := pn.Mark(clip, seqA, 0.5)
	markedB, logB := pn.Mark(clip, seqB, 0.5)
	// Screen B shifted by 150 ms (different path latency).
	mix := audio.NewBuffer(audio.SampleRate, markedA.Len()+audio.SampleRate)
	mix.MixInto(markedA.Samples, 0, 1)
	mix.MixInto(markedB.Samples, int(0.15*audio.SampleRate), 1)

	detA := estimator.DetectMarkers(mix.Samples, estimator.Config{Seq: seqA})
	detB := estimator.DetectMarkers(mix.Samples, estimator.Config{Seq: seqB})
	if len(detA) < len(logA)-1 {
		t.Fatalf("A found %d of %d", len(detA), len(logA))
	}
	if len(detB) < len(logB)-1 {
		t.Fatalf("B found %d of %d", len(detB), len(logB))
	}
	for _, d := range detA {
		if d.Sample%audio.SampleRate > 100 && audio.SampleRate-d.Sample%audio.SampleRate > 100 {
			t.Fatalf("A detection at %d not on its schedule", d.Sample)
		}
	}
	for _, d := range detB {
		phase := (d.Sample - int(0.15*audio.SampleRate)) % audio.SampleRate
		if phase > 100 && audio.SampleRate-phase > 100 {
			t.Fatalf("B detection at %d not on its shifted schedule", d.Sample)
		}
	}
}

func TestMultiScreenSessionConverges(t *testing.T) {
	sc := DefaultMultiScenario()
	res := RunMulti(sc)
	if len(res.Traces) != 2 {
		t.Fatalf("traces %d", len(res.Traces))
	}
	if res.Actions == 0 {
		t.Fatal("no joint compensation actions")
	}
	for i, frac := range res.InSyncFractions {
		if frac < 0.7 {
			t.Fatalf("screen %d in-sync fraction %.2f", i, frac)
		}
	}
	// Tail check: both screens within the frame bound near the end.
	for i, trace := range res.Traces {
		var tail []float64
		for _, p := range trace {
			if p.TimeSec > sc.DurationSec-15 {
				tail = append(tail, math.Abs(p.ISDSeconds))
			}
		}
		if len(tail) == 0 {
			t.Fatalf("screen %d has no tail trace", i)
		}
		in := 0
		for _, v := range tail {
			if v <= 0.012 {
				in++
			}
		}
		if frac := float64(in) / float64(len(tail)); frac < 0.8 {
			t.Fatalf("screen %d tail in-sync %.2f", i, frac)
		}
	}
}

func TestMultiScreenThreeDevices(t *testing.T) {
	sc := DefaultMultiScenario()
	sc.DurationSec = 50
	sc.Screens = append(sc.Screens, ScreenSpec{
		Link:          sc.Screens[0].Link,
		JitterFrames:  5,
		DeviceLatency: 0.030,
		DistanceFt:    9,
		Attenuation:   0.07,
		MarkerSeed:    31337,
	})
	res := RunMulti(sc)
	if len(res.Traces) != 3 {
		t.Fatalf("traces %d", len(res.Traces))
	}
	for i, frac := range res.InSyncFractions {
		if frac < 0.6 {
			t.Fatalf("screen %d in-sync fraction %.2f with 3 devices", i, frac)
		}
	}
}
