package session

import (
	"math"
	"testing"

	"ekho/internal/compensator"
)

// tailStats summarizes |ISD| over the ground-truth trace points at or
// after fromSec.
func tailStats(res *Result, fromSec float64) (mean, max float64) {
	n := 0
	for _, p := range res.Trace {
		if p.TimeSec < fromSec {
			continue
		}
		a := math.Abs(p.ISDSeconds)
		if a > max {
			max = a
		}
		mean += a
		n++
	}
	if n > 0 {
		mean /= float64(n)
	}
	return mean, max
}

// TestDriftCompensationHoldsSync is the tentpole acceptance gate: with a
// +100 ppm controller sample-rate offset, the drift regime must converge
// on a cancelling rate near −100 ppm and hold steady-state |ISD| below
// the 10 ms in-sync bound — no sawtooth.
func TestDriftCompensationHoldsSync(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-minute virtual session")
	}
	sc := DriftScenario(100)
	sc.DurationSec = 120
	res := Run(sc)
	if len(res.Resamples) == 0 {
		t.Fatal("drift regime never engaged: no resample retunes")
	}
	last := res.Resamples[len(res.Resamples)-1].Resample
	if last.Stream != compensator.AccessoryStream {
		t.Fatalf("resampling wrong stream: %v", last.Stream)
	}
	// The cancelling rate for +100 ppm SRO is ≈ −100 ppm.
	if last.PPM > -40 || last.PPM < -160 {
		t.Fatalf("converged rate %+.1f ppm; want near -100", last.PPM)
	}
	mean, max := tailStats(res, sc.DurationSec-30)
	if max >= 0.010 {
		t.Fatalf("steady-state |ISD| max %.2f ms (mean %.2f ms); want < 10 ms", max*1000, mean*1000)
	}
}

// TestDriftCompensationNegativeSRO mirrors the gate for a slow oscillator:
// −100 ppm SRO must converge on ≈ +100 ppm (continuous skip).
func TestDriftCompensationNegativeSRO(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-minute virtual session")
	}
	sc := DriftScenario(-100)
	sc.DurationSec = 120
	res := Run(sc)
	if len(res.Resamples) == 0 {
		t.Fatal("drift regime never engaged: no resample retunes")
	}
	last := res.Resamples[len(res.Resamples)-1].Resample
	if last.PPM < 40 || last.PPM > 160 {
		t.Fatalf("converged rate %+.1f ppm; want near +100", last.PPM)
	}
	_, max := tailStats(res, sc.DurationSec-30)
	if max >= 0.010 {
		t.Fatalf("steady-state |ISD| max %.2f ms; want < 10 ms", max*1000)
	}
}

// TestLevelOnlySawtoothUnderDrift documents what the drift regime fixes:
// the same +100 ppm SRO under the discrete level-only loop produces a
// sawtooth — the ramp must build to a whole-frame correction threshold
// before each step, so |ISD| repeatedly exceeds the 10 ms bound and the
// compensator keeps issuing corrections forever.
func TestLevelOnlySawtoothUnderDrift(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-minute virtual session")
	}
	sc := DriftScenario(100)
	sc.DriftCompensation = false
	sc.DurationSec = 120
	res := Run(sc)
	if len(res.Resamples) != 0 {
		t.Fatalf("level-only run issued %d resamples", len(res.Resamples))
	}
	if len(res.Actions) < 3 {
		t.Fatalf("expected repeated sawtooth corrections, got %d actions", len(res.Actions))
	}
	out, total := 0, 0
	for _, p := range res.Trace {
		if p.TimeSec < sc.WarmupIgnoreSec {
			continue
		}
		total++
		if math.Abs(p.ISDSeconds) > 0.010 {
			out++
		}
	}
	if total == 0 || float64(out)/float64(total) < 0.05 {
		t.Fatalf("expected sawtooth excursions beyond 10 ms; %d/%d points out of sync", out, total)
	}
}

// TestDriftBeatsLevelOnly compares the two regimes head to head on the
// same drifting scenario: enabling drift compensation must not lower the
// in-sync fraction.
func TestDriftBeatsLevelOnly(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-minute virtual session")
	}
	drift := DriftScenario(100)
	drift.DurationSec = 120
	level := drift
	level.DriftCompensation = false
	dres, lres := Run(drift), Run(level)
	if dres.InSyncFraction < lres.InSyncFraction {
		t.Fatalf("drift regime in-sync %.3f < level-only %.3f", dres.InSyncFraction, lres.InSyncFraction)
	}
}
