package session

import (
	"ekho/internal/audio"
	"ekho/internal/compensator"
)

// streamScheduler produces the per-tick downlink frames for one stream,
// tracking the mapping between transmitted frames and game-content
// positions. Compensation actions (silence insertion, content skip) are
// applied here; content positions are "unlooped" sample indices into an
// infinite repetition of the game clip.
type streamScheduler struct {
	game        *audio.Buffer
	pos         int // next content sample to transmit
	silenceDebt int // gap samples still to insert
	seq         int // next packet sequence number
	// interp, when set, synthesizes inserted gaps from the surrounding
	// audio (PLC-style) instead of hard silence — the §4.4 future-work
	// enhancement.
	interp *compensator.Interpolator
}

func newStreamScheduler(game *audio.Buffer) *streamScheduler {
	return &streamScheduler{game: game}
}

// enableInterpolation switches inserted delay from silence to PLC-style
// synthesized audio.
func (st *streamScheduler) enableInterpolation() {
	st.interp = compensator.NewInterpolator()
}

// apply registers a compensation action with this stream.
func (st *streamScheduler) apply(a compensator.Action) {
	st.silenceDebt += a.InsertFrames*audio.FrameSamples + a.InsertSamples
	skip := a.SkipFrames*audio.FrameSamples + a.SkipSamples
	if skip > 0 {
		// Skipping drains pending silence first (reverting an earlier
		// correction); any remainder drops content.
		if st.silenceDebt >= skip {
			st.silenceDebt -= skip
			skip = 0
		} else {
			skip -= st.silenceDebt
			st.silenceDebt = 0
		}
		st.pos += skip
	}
}

// next returns the next 20 ms frame along with the content position of its
// first content sample (-1 for all-gap frames) and the in-frame offset
// where content begins. Gap audio is silence by default, or synthesized
// continuation when interpolation is enabled.
func (st *streamScheduler) next() (samples []float64, contentStart, contentOffset int) {
	f := make([]float64, audio.FrameSamples)
	if st.silenceDebt >= audio.FrameSamples {
		st.silenceDebt -= audio.FrameSamples
		if st.interp != nil {
			copy(f, st.interp.Synthesize(audio.FrameSamples))
		}
		return f, -1, 0
	}
	off := st.silenceDebt
	st.silenceDebt = 0
	if off > 0 && st.interp != nil {
		copy(f[:off], st.interp.Synthesize(off))
	}
	start := st.pos
	for i := off; i < audio.FrameSamples; i++ {
		f[i] = st.game.Samples[st.pos%st.game.Len()]
		st.pos++
	}
	if st.interp != nil {
		st.interp.Observe(f[off:])
	}
	return f, start, off
}

// nextContent returns the content position the next content sample will
// have (used to tie markers that begin during inserted silence).
func (st *streamScheduler) nextContent() int { return st.pos }
