package session

import (
	"math"
	"testing"

	"ekho/internal/audio"
	"ekho/internal/compensator"
	"ekho/internal/serverpipe"
)

// TestSessionWithHeavyClockDrift verifies the paper's core claim — no
// clock synchronization required — under an aggressive ±200 ppm controller
// clock drift (4x a bad consumer crystal). Ekho's measurements and
// corrections must still hold the streams inside the whole-frame bound.
func TestSessionWithHeavyClockDrift(t *testing.T) {
	for _, drift := range []float64{-200, 200} {
		sc := shortScenario()
		sc.ControllerDriftPPM = drift
		res := Run(sc)
		var tail []float64
		for _, p := range res.Trace {
			if p.TimeSec > 30 {
				tail = append(tail, math.Abs(p.ISDSeconds))
			}
		}
		if len(tail) == 0 {
			t.Fatalf("drift %g: no tail trace", drift)
		}
		in := 0
		for _, v := range tail {
			if v <= 0.012 {
				in++
			}
		}
		if frac := float64(in) / float64(len(tail)); frac < 0.75 {
			t.Fatalf("drift %g ppm: in-sync fraction %.2f", drift, frac)
		}
	}
}

// TestSessionWithLossyUplink injects heavy chat-uplink loss; the estimator
// conceals the gaps and the loop still converges.
func TestSessionWithLossyUplink(t *testing.T) {
	sc := shortScenario()
	sc.ControllerUplink.LossProb = 0.02 // 2% chat loss
	sc.ControllerUplink.BurstFactor = 3
	res := Run(sc)
	if len(res.Measurements) == 0 {
		t.Fatal("no measurements despite uplink loss")
	}
	var tail []float64
	for _, p := range res.Trace {
		if p.TimeSec > 30 {
			tail = append(tail, math.Abs(p.ISDSeconds))
		}
	}
	in := 0
	for _, v := range tail {
		if v <= 0.010 {
			in++
		}
	}
	if frac := float64(in) / float64(len(tail)); frac < 0.6 {
		t.Fatalf("in-sync fraction %.2f with lossy uplink", frac)
	}
}

// TestSessionBothLinksCongested drives both downlinks through a congested
// public AP; Ekho should still spend most of the time in sync, just with
// more resync episodes.
func TestSessionBothLinksCongested(t *testing.T) {
	sc := shortScenario()
	sc.DurationSec = 50
	sc.ScreenLink.JitterStd = 0.012
	sc.ControllerLink.JitterStd = 0.010
	sc.ScreenLink.LossProb = 0.001
	sc.ControllerLink.LossProb = 0.001
	res := Run(sc)
	if res.InSyncFraction < 0.4 {
		t.Fatalf("in-sync fraction %.2f under congestion", res.InSyncFraction)
	}
	if len(res.Actions) == 0 {
		t.Fatal("congestion should require corrections")
	}
}

// TestSessionExtremeStartupGap pushes the startup ISD close to the ±500 ms
// matching bound; the estimator must still resolve it unambiguously.
func TestSessionExtremeStartupGap(t *testing.T) {
	sc := shortScenario()
	sc.ScreenLink.BaseDelay = 0.260
	sc.ScreenJitterFrames = 8
	sc.ScreenDeviceLatency = 0.110
	res := Run(sc)
	if len(res.Actions) == 0 {
		t.Fatal("no corrective action for extreme gap")
	}
	first := res.Actions[0]
	total := first.Action.InsertFrames * 20
	if total < 350 || total > 520 {
		t.Fatalf("first correction %d ms for a ~450 ms gap", total)
	}
	var tail []float64
	for _, p := range res.Trace {
		if p.TimeSec > 30 {
			tail = append(tail, math.Abs(p.ISDSeconds))
		}
	}
	in := 0
	for _, v := range tail {
		if v <= 0.010 {
			in++
		}
	}
	if frac := float64(in) / float64(len(tail)); frac < 0.8 {
		t.Fatalf("in-sync fraction %.2f after extreme startup", frac)
	}
}

// TestSessionInterpolatedInsertion runs the §4.4 future-work mode: gaps
// synthesized from surrounding audio instead of silence. Synchronization
// must be unaffected, and the transmitted audio around insertions must
// carry energy (no hard mute) with smaller discontinuities.
func TestSessionInterpolatedInsertion(t *testing.T) {
	sc := shortScenario()
	sc.InterpolatedInsert = true
	res := Run(sc)
	if len(res.Actions) == 0 {
		t.Fatal("no actions")
	}
	var tail []float64
	for _, p := range res.Trace {
		if p.TimeSec > 30 {
			tail = append(tail, math.Abs(p.ISDSeconds))
		}
	}
	in := 0
	for _, v := range tail {
		if v <= 0.010 {
			in++
		}
	}
	if frac := float64(in) / float64(len(tail)); frac < 0.8 {
		t.Fatalf("interpolated mode in-sync fraction %.2f", frac)
	}
}

// TestInterpolatedGapCarriesEnergy checks the scheduler-level behaviour
// directly: inserted gaps continue the waveform instead of muting.
func TestInterpolatedGapCarriesEnergy(t *testing.T) {
	game := audio.Tone(audio.SampleRate, 240, 2.0, 0.5)
	plain := serverpipe.NewStream(game)
	interp := serverpipe.NewStream(game)
	interp.EnableInterpolation()
	pf := make([]float64, audio.FrameSamples)
	inf := make([]float64, audio.FrameSamples)
	// Warm both up, then insert one frame of delay.
	for i := 0; i < 10; i++ {
		plain.Next(pf)
		interp.Next(inf)
	}
	plain.Apply(compensator.Action{InsertFrames: 1})
	interp.Apply(compensator.Action{InsertFrames: 1})
	pi := plain.Next(pf)
	ii := interp.Next(inf)
	if pi.ContentStart != -1 || ii.ContentStart != -1 {
		t.Fatalf("expected gap frames, got contents %d %d", pi.ContentStart, ii.ContentStart)
	}
	if rmsOf(pf) != 0 {
		t.Fatal("plain gap should be silence")
	}
	if rmsOf(inf) < 0.1 {
		t.Fatalf("interpolated gap RMS %g should carry energy", rmsOf(inf))
	}
}

func rmsOf(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v * v
	}
	return math.Sqrt(s / float64(len(x)))
}

// TestSessionPlayerWalksAcrossRoom ramps the player from 2 ft to 19 ft
// from the TV (the paper's full controller range): the propagation delay
// drifts by 17 ms over the session and Ekho must keep re-centering.
func TestSessionPlayerWalksAcrossRoom(t *testing.T) {
	sc := shortScenario()
	sc.DurationSec = 60
	sc.Channel.DistanceFt = 2
	sc.WalkToFt = 19
	res := Run(sc)
	if len(res.Actions) < 2 {
		t.Fatalf("walking player should force repeated corrections, got %d", len(res.Actions))
	}
	// The drift is 17 ms / 60 s ≈ 0.3 ms/s; between corrections the ISD
	// can wander, but it must stay within ~1.5 frames at all times after
	// convergence.
	for _, p := range res.Trace {
		if p.TimeSec > 20 && math.Abs(p.ISDSeconds) > 0.030 {
			t.Fatalf("ISD %g ms at %gs while walking", p.ISDSeconds*1000, p.TimeSec)
		}
	}
	var tail []float64
	for _, p := range res.Trace {
		if p.TimeSec > 20 {
			tail = append(tail, math.Abs(p.ISDSeconds))
		}
	}
	in := 0
	for _, v := range tail {
		if v <= 0.012 {
			in++
		}
	}
	if frac := float64(in) / float64(len(tail)); frac < 0.7 {
		t.Fatalf("in-sync fraction %.2f while walking", frac)
	}
}

// TestSessionCongestionBurst throttles the screen downlink below the
// stream's rate for a few seconds: queueing delay builds, the screen's
// jitter buffer strains, and once the burst clears Ekho re-centers.
func TestSessionCongestionBurst(t *testing.T) {
	sc := shortScenario()
	sc.DurationSec = 70
	// 50 pkt/s × 600 B = 240 kbps offered; cap at 220 kbps for 3 s —
	// a ~270 ms backlog, inside Ekho's ±500 ms measurable envelope
	// (markers 1 s apart can only disambiguate |ISD| < 500 ms, §4.3).
	sc.ScriptedThrottles = []ScriptedThrottle{
		{AtSec: 35, DurationSec: 3, Stream: Screen, BandwidthBps: 220_000},
	}
	res := Run(sc)
	// During/after the burst the ISD must have been disturbed...
	disturbed := false
	for _, p := range res.Trace {
		if p.TimeSec > 35 && p.TimeSec < 48 && math.Abs(p.ISDSeconds) > 0.015 {
			disturbed = true
			break
		}
	}
	if !disturbed {
		t.Log("note: burst absorbed by the jitter buffer (no ISD excursion)")
	}
	// ...and the tail must be back in sync.
	var tail []float64
	for _, p := range res.Trace {
		if p.TimeSec > 58 {
			tail = append(tail, math.Abs(p.ISDSeconds))
		}
	}
	in := 0
	for _, v := range tail {
		if v <= 0.012 {
			in++
		}
	}
	if frac := float64(in) / float64(len(tail)); frac < 0.8 {
		t.Fatalf("post-congestion in-sync fraction %.2f", frac)
	}
}
