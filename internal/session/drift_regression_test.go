package session

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"math"
	"os"
	"path/filepath"
	"testing"
)

// zeroDriftScenarios are the eight simulator configurations whose
// measurement/action timelines are pinned by the golden file. They cover
// every compensation mode (whole-frame, sub-frame, interpolated insert,
// muted screen), the three provider network shapes and a scripted
// loss/throttle/walk session — all with zero sample-rate offset, so the
// drift subsystem must leave them untouched down to the last bit.
func zeroDriftScenarios() map[string]Scenario {
	base := func() Scenario {
		sc := DefaultScenario()
		sc.DurationSec = 25
		return sc
	}
	scs := map[string]Scenario{}

	scs["default"] = base()

	sub := base()
	sub.SubFrame = true
	scs["subframe"] = sub

	interp := base()
	interp.InterpolatedInsert = true
	scs["interpolated"] = interp

	muted := base()
	muted.MutedScreen = true
	muted.MutedMarkerAmpDB = 9
	scs["muted"] = muted

	for _, p := range []string{"stadia", "gfn", "psnow"} {
		sc := base()
		sc.Provider = p
		scs[p] = sc
	}

	scripted := base()
	scripted.ScriptedLosses = []ScriptedLoss{
		{AtSec: 8, Stream: Screen, Frames: 3},
		{AtSec: 14, Stream: Accessory, Frames: 2},
	}
	scripted.ScriptedThrottles = []ScriptedThrottle{
		{AtSec: 10, DurationSec: 4, Stream: Screen, BandwidthBps: 300_000},
	}
	scripted.WalkToFt = 12
	scs["scripted"] = scripted

	return scs
}

// goldenDigest summarizes one scenario's full measurement/action timeline.
// The hash covers the exact IEEE-754 bits of every timestamp and ISD value
// plus every action field, so any behavioral change — however small —
// flips it.
type goldenDigest struct {
	Hash         string `json:"hash"`
	Measurements int    `json:"measurements"`
	Actions      int    `json:"actions"`
}

func digestResult(res *Result) goldenDigest {
	h := fnv.New64a()
	u64 := func(v uint64) {
		var b [8]byte
		for i := range b {
			b[i] = byte(v >> (8 * i))
		}
		h.Write(b[:])
	}
	f64 := func(v float64) { u64(math.Float64bits(v)) }
	u64(uint64(len(res.Measurements)))
	for _, m := range res.Measurements {
		f64(m.TimeSec)
		f64(m.ISDSeconds)
	}
	u64(uint64(len(res.Actions)))
	for _, a := range res.Actions {
		f64(a.TimeSec)
		u64(uint64(a.Action.Stream))
		u64(uint64(int64(a.Action.InsertFrames)))
		u64(uint64(int64(a.Action.SkipFrames)))
		u64(uint64(int64(a.Action.InsertSamples)))
		u64(uint64(int64(a.Action.SkipSamples)))
	}
	return goldenDigest{
		Hash:         fmt.Sprintf("%016x", h.Sum64()),
		Measurements: len(res.Measurements),
		Actions:      len(res.Actions),
	}
}

const zeroDriftGoldenPath = "testdata/zero_drift_golden.json"

// TestZeroDriftRegression is the SRO=0 bit-identity guard: with no
// sample-rate offset configured, every simulator scenario must produce
// measurement and compensation-action sequences identical to the
// pre-drift-subsystem behavior, captured in the checked-in golden file.
//
// Regenerate (only when a deliberate behavior change is being made) with:
//
//	EKHO_UPDATE_GOLDEN=1 go test ./internal/session -run TestZeroDriftRegression
//
// The goldens hash exact float bits, so they are tied to one architecture's
// floating-point behavior (generated on linux/amd64, which CI also runs).
func TestZeroDriftRegression(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	scs := zeroDriftScenarios()
	got := map[string]goldenDigest{}
	for name, sc := range scs {
		got[name] = digestResult(Run(sc))
	}

	if os.Getenv("EKHO_UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll(filepath.Dir(zeroDriftGoldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		blob, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(zeroDriftGoldenPath, append(blob, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", zeroDriftGoldenPath)
		return
	}

	blob, err := os.ReadFile(zeroDriftGoldenPath)
	if err != nil {
		t.Fatalf("missing golden file (run with EKHO_UPDATE_GOLDEN=1 to create): %v", err)
	}
	var want map[string]goldenDigest
	if err := json.Unmarshal(blob, &want); err != nil {
		t.Fatalf("corrupt golden file: %v", err)
	}
	for name, g := range got {
		w, ok := want[name]
		if !ok {
			t.Errorf("%s: no golden entry (regenerate goldens)", name)
			continue
		}
		if g != w {
			t.Errorf("%s: timeline diverged from pre-drift behavior:\n  got  %+v\n  want %+v", name, g, w)
		}
	}
	for name := range want {
		if _, ok := got[name]; !ok {
			t.Errorf("golden entry %s has no scenario", name)
		}
	}
}
