package session

import (
	"fmt"
	"math"

	"ekho/internal/audio"
	"ekho/internal/compensator"
	"ekho/internal/estimator"
	"ekho/internal/gamesynth"
	"ekho/internal/jitterbuf"
	"ekho/internal/netsim"
	"ekho/internal/pn"
	"ekho/internal/serverpipe"
	"ekho/internal/vclock"
)

// Multi-endpoint synchronization: Figure 1 of the paper shows *screens*
// plural (a TV and a PC both playing the screen stream), and the
// conclusion notes Ekho generalizes beyond a single pair. This file
// extends the simulated session to N screen devices: each screen's stream
// carries markers from its own PN seed (different seeds are nearly
// orthogonal, so one chat uplink feeds one estimator per screen), and a
// joint compensation policy aligns everything to the slowest device:
//
//	T = max_i ISD_i            (the worst screen lag)
//	delay accessory by  max(T, 0)
//	delay screen i by   max(T, 0) − ISD_i
//
// which drives every pairwise delay to zero with insert-only actions.

// MultiScenario configures an N-screen end-to-end run.
type MultiScenario struct {
	Seed        int64
	DurationSec float64
	// Screens describes each screen device's path and acoustics.
	Screens []ScreenSpec
	// ControllerLink / ControllerUplink are as in Scenario.
	ControllerLink         netsim.LinkConfig
	ControllerUplink       netsim.LinkConfig
	ControllerJitterFrames int
	MarkerC                float64
	ClipIndex              int
	WarmupIgnoreSec        float64
}

// ScreenSpec is one screen endpoint.
type ScreenSpec struct {
	// Link is the downlink to this screen.
	Link netsim.LinkConfig
	// JitterFrames is the device's buffer threshold.
	JitterFrames int
	// DeviceLatency is the playback pipeline lag (TV post-processing).
	DeviceLatency float64
	// DistanceFt is the speaker-to-player distance.
	DistanceFt float64
	// Attenuation is the overheard gain at the microphone.
	Attenuation float64
	// MarkerSeed is this screen's PN seed (must differ across screens).
	MarkerSeed int64
}

// DefaultMultiScenario: a slow cellular TV and a faster WiFi PC screen.
func DefaultMultiScenario() MultiScenario {
	return MultiScenario{
		Seed:        1,
		DurationSec: 60,
		Screens: []ScreenSpec{
			{Link: netsim.Cellular, JitterFrames: 4, DeviceLatency: 0.060, DistanceFt: 6, Attenuation: 0.1, MarkerSeed: 4242},
			{Link: netsim.WiFi, JitterFrames: 3, DeviceLatency: 0.015, DistanceFt: 3, Attenuation: 0.08, MarkerSeed: 9191},
		},
		ControllerLink:         netsim.WiFi,
		ControllerUplink:       netsim.Asymmetric(netsim.WiFi, 0.010, 777),
		ControllerJitterFrames: 2,
		MarkerC:                pn.DefaultC,
		WarmupIgnoreSec:        8,
	}
}

// MultiResult carries per-screen traces and the joint actions.
type MultiResult struct {
	// Traces[i] is the ground-truth ISD trace of screen i vs the
	// accessory stream.
	Traces [][]ISDPoint
	// Actions counts joint compensation rounds.
	Actions int
	// InSyncFractions[i] is the post-warmup share of |ISD_i| <= 10 ms.
	InSyncFractions []float64
}

// debugMulti enables compensation-decision prints in tests.
var debugMulti = false

// debugf prints multi-session diagnostics when debugMulti is set.
func debugf(format string, args ...any) {
	if debugMulti {
		fmt.Printf(format+"\n", args...)
	}
}

// nearestFrames quantizes a delay to whole 20 ms frames (nearest).
func nearestFrames(sec float64) int {
	return int(math.Round(sec * audio.SampleRate / audio.FrameSamples))
}

// RunMulti executes the multi-screen scenario.
func RunMulti(sc MultiScenario) *MultiResult {
	if sc.MarkerC == 0 {
		sc.MarkerC = pn.DefaultC
	}
	m := &multiSim{sc: sc}
	m.setup()
	m.run()
	return m.finish()
}

// multiScreen is the per-screen simulation state. Stream scheduling and
// the pending-marker ledger are the shared serverpipe components; the
// joint compensation policy below is what stays multi-specific.
type multiScreen struct {
	spec     ScreenSpec
	seq      *pn.Sequence
	injector *pn.Injector
	stream   *serverpipe.Stream
	link     *netsim.Link
	buf      *jitterbuf.Buffer
	air      *airChannel
	est      *estimator.Streamer
	ledger   serverpipe.MarkerLedger // markers awaiting playback records

	heard   []contentRecord
	trace   []ISDPoint
	lastISD float64
	prevISD float64
	nISD    int // measurements since the last action
}

type multiSim struct {
	sc    MultiScenario
	sched *vclock.Scheduler
	game  *audio.Buffer

	screens []*multiScreen

	accessStream *serverpipe.Stream
	accessLink   *netsim.Link
	accessBuf    *jitterbuf.Buffer
	accessClk    *vclock.Clock
	chatUp       *netsim.Link
	seqr         serverpipe.ChatSequencer
	book         serverpipe.RecordBook
	played       []contentRecord
	pendLog      []playbackRecord
	chatSeq      int
	gapBuf       []float64 // stays all-zero; AddChat copies it

	settleUntil float64
	actions     int
}

func (m *multiSim) setup() {
	sc := m.sc
	m.sched = vclock.NewScheduler()
	m.game = gamesynth.Generate(gamesynth.Catalog()[sc.ClipIndex%30], gamesynth.ClipSeconds)
	m.accessStream = serverpipe.NewStream(m.game)
	m.accessBuf = jitterbuf.New(sc.ControllerJitterFrames)
	m.accessClk = &vclock.Clock{Offset: -1.5, DriftPPM: 20, DACLatency: 0.002}

	for i, spec := range sc.Screens {
		s := &multiScreen{spec: spec}
		s.seq = pn.NewSequence(spec.MarkerSeed, pn.DefaultLength)
		s.injector = pn.NewInjector(s.seq, sc.MarkerC)
		s.stream = serverpipe.NewStream(m.game)
		s.buf = jitterbuf.New(spec.JitterFrames)
		s.air = newAirChannel(channelSpec{
			Mic:          0, // StudioMic-equivalent; coloration shared via spec below
			DistanceFt:   spec.DistanceFt,
			Attenuation:  spec.Attenuation,
			AmbientLevel: 0,
			EchoTaps:     4,
			Seed:         sc.Seed + int64(100*i),
		})
		s.est = estimator.NewStreamer(estimator.Config{Seq: s.seq})
		link := spec.Link
		link.Seed += sc.Seed*101 + int64(i)
		idx := i
		s.link = netsim.NewLink(link, m.sched, func(p netsim.Packet) { m.onScreenPacket(idx, p) })
		m.screens = append(m.screens, s)
	}
	al := sc.ControllerLink
	al.Seed += sc.Seed * 103
	m.accessLink = netsim.NewLink(al, m.sched, m.onAccessPacket)
	ul := sc.ControllerUplink
	ul.Seed += sc.Seed * 107
	m.chatUp = netsim.NewLink(ul, m.sched, m.onChatPacket)
	m.gapBuf = make([]float64, audio.FrameSamples)
	m.settleUntil = math.Inf(-1)
}

func (m *multiSim) run() {
	end := vclock.Time(m.sc.DurationSec)
	tick := func(start vclock.Time, fn func()) {
		var loop func()
		loop = func() {
			if m.sched.Now() >= end {
				return
			}
			fn()
			m.sched.After(frameSec, loop)
		}
		m.sched.At(start, loop)
	}
	tick(0, m.produce)
	for i := range m.screens {
		i := i
		tick(vclock.Time(0.011+0.001*float64(i)), func() { m.screenPlayout(i) })
	}
	tick(0.015, m.accessPlayout)
	tick(0.017, m.captureMic)
	m.sched.RunUntil(end + 1)
}

// produce emits one frame per stream (all screens + accessory). Buffers
// are fresh per frame because netsim retains the payload until delivery.
func (m *multiSim) produce() {
	for _, s := range m.screens {
		samples := make([]float64, audio.FrameSamples)
		fi := s.stream.Next(samples)
		pre := s.injector.InjectionCount()
		s.injector.ProcessFrame(samples)
		if s.injector.InjectionCount() > pre {
			mc := fi.ContentStart
			if mc < 0 {
				mc = s.stream.NextContent()
			}
			s.ledger.Add(mc)
		}
		s.link.Send(frame{seq: int(fi.Seq), contentStart: int(fi.ContentStart), contentOff: fi.ContentOff, samples: samples})
	}
	samples := make([]float64, audio.FrameSamples)
	fi := m.accessStream.Next(samples)
	m.accessLink.Send(frame{seq: int(fi.Seq), contentStart: int(fi.ContentStart), contentOff: fi.ContentOff, samples: samples})
}

func (m *multiSim) onScreenPacket(i int, p netsim.Packet) {
	f := p.Payload.(frame)
	m.screens[i].buf.Push(jitterbuf.Frame{Seq: f.seq, Samples: packFrame(f)})
}

func (m *multiSim) onAccessPacket(p netsim.Packet) {
	f := p.Payload.(frame)
	m.accessBuf.Push(jitterbuf.Frame{Seq: f.seq, Samples: packFrame(f)})
}

func (m *multiSim) screenPlayout(i int) {
	s := m.screens[i]
	raw, ev := s.buf.Pop()
	if ev == jitterbuf.Waiting {
		return
	}
	samples, content, off := unpackFrame(raw)
	playTime := float64(m.sched.Now()) + s.spec.DeviceLatency
	s.air.play(int(math.Round(playTime*audio.SampleRate)), samples)
	if content >= 0 {
		heardAt := playTime + (float64(off)+float64(s.air.propSamples))/audio.SampleRate
		rec := contentRecord{contentStart: content, n: len(samples) - off, time: heardAt}
		s.heard = append(s.heard, rec)
		if len(s.heard) > 120 {
			s.heard = append([]contentRecord(nil), s.heard[len(s.heard)-120:]...)
		}
		m.emitTrace(i, rec)
	}
}

// emitTrace pairs a newly heard screen record against already-played
// accessory records; emitTraceFromPlay covers the opposite arrival order.
func (m *multiSim) emitTrace(i int, h contentRecord) {
	for _, p := range m.played {
		if m.emitPair(i, h, p) {
			return
		}
	}
}

// emitTraceFromPlay pairs a newly played accessory record against each
// screen's already-heard records (the screen-leads case after convergence).
func (m *multiSim) emitTraceFromPlay(p contentRecord) {
	for i, s := range m.screens {
		for _, h := range s.heard {
			if m.emitPair(i, h, p) {
				break
			}
		}
	}
}

// emitPair emits one ISD point if the records share content.
func (m *multiSim) emitPair(i int, h, p contentRecord) bool {
	lo := max(h.contentStart, p.contentStart)
	hi := min(h.contentStart+h.n, p.contentStart+p.n)
	if lo >= hi {
		return false
	}
	heardAt := h.time + float64(lo-h.contentStart)/audio.SampleRate
	playedAt := p.time + float64(lo-p.contentStart)/audio.SampleRate
	m.screens[i].trace = append(m.screens[i].trace, ISDPoint{
		TimeSec:    float64(m.sched.Now()),
		ISDSeconds: heardAt - playedAt,
	})
	return true
}

func (m *multiSim) accessPlayout() {
	raw, ev := m.accessBuf.Pop()
	if ev == jitterbuf.Waiting {
		return
	}
	samples, content, off := unpackFrame(raw)
	playTrue := float64(m.sched.Now()) + 0.002 + float64(off)/audio.SampleRate
	if content >= 0 {
		n := len(samples) - off
		rec := contentRecord{contentStart: content, n: n, time: playTrue}
		m.played = append(m.played, rec)
		if len(m.played) > 150 {
			m.played = append([]contentRecord(nil), m.played[len(m.played)-150:]...)
		}
		local := float64(m.accessClk.Local(vclock.Time(playTrue)))
		m.pendLog = append(m.pendLog, playbackRecord{contentStart: content, n: n, localTime: local})
		m.emitTraceFromPlay(rec)
	}
}

// captureMic sums every screen's air at the mic and uplinks the window.
func (m *multiSim) captureMic() {
	now := float64(m.sched.Now())
	to := int(math.Round(now * audio.SampleRate))
	from := to - audio.FrameSamples
	if from < 0 {
		return
	}
	sum := make([]float64, audio.FrameSamples)
	for _, s := range m.screens {
		for i, v := range s.air.capture(from, to) {
			sum[i] += v
		}
	}
	adcLocal := float64(m.accessClk.StampADC(vclock.Time(float64(from) / audio.SampleRate)))
	cp := chatPacket{seq: m.chatSeq, adcLocal: adcLocal, playbackLog: m.pendLog}
	m.chatSeq++
	m.pendLog = nil
	// Raw PCM uplink: the two-device session already exercises lossy
	// compression on this path.
	m.chatUp.Send(multiChat{pkt: cp, samples: sum})
}

type multiChat struct {
	pkt     chatPacket
	samples []float64
}

func (m *multiSim) onChatPacket(p netsim.Packet) {
	mc := p.Payload.(multiChat)
	for _, r := range mc.pkt.playbackLog {
		m.book.Add(serverpipe.Record{ContentStart: int64(r.contentStart), N: r.n, LocalTime: r.localTime})
	}
	now := float64(m.sched.Now())
	// Uplink loss: keep every estimator's timeline contiguous by filling
	// the gap with silence (a slipped timeline biases all subsequent
	// measurements by the lost duration).
	lost, fresh := m.seqr.Offer(uint32(mc.pkt.seq))
	if !fresh {
		return // stale duplicate/reorder
	}
	for i := lost; i > 0; i-- {
		gapStart := mc.pkt.adcLocal - float64(i)*frameSec
		for _, s := range m.screens {
			s.est.AddChat(m.gapBuf, gapStart)
		}
	}
	for i, s := range m.screens {
		// Resolve pending marker content to accessory local times.
		s.ledger.Resolve(&m.book, s.est, serverpipe.NopSink{})

		// Feed the shared chat audio to this screen's estimator.
		for _, meas := range s.est.AddChat(mc.samples, mc.pkt.adcLocal) {
			s.prevISD = s.lastISD
			s.lastISD = meas.ISDSeconds
			s.nISD++
			debugf("screen %d ISD %.1f ms at %.2fs", i, meas.ISDSeconds*1000, now)
		}
	}
	// One shared record book serves every screen's ledger: evict only
	// below the lowest pending marker across all screens.
	minPending := int64(math.MaxInt64)
	for _, s := range m.screens {
		if p := s.ledger.MinPending(); p < minPending {
			minPending = p
		}
	}
	m.book.Evict(minPending)
	m.maybeCompensate(now)
}

// maybeCompensate applies the joint align-to-slowest policy once every
// screen has a fresh measurement and the settle window has passed.
func (m *multiSim) maybeCompensate(now float64) {
	if now < m.settleUntil {
		return
	}
	worst := math.Inf(-1)
	for _, s := range m.screens {
		// Require two consistent measurements since the last action so a
		// single jitter-wobble outlier cannot trigger a wrong correction.
		if s.nISD < 2 || math.Abs(s.lastISD-s.prevISD) > 0.005 {
			return
		}
		if s.lastISD > worst {
			worst = s.lastISD
		}
	}
	target := math.Max(worst, 0)
	// Quantize the joint plan first; act only when it does something.
	accessFrames := 0
	if target >= 0.005 {
		accessFrames = nearestFrames(target)
	}
	screenFrames := make([]int, len(m.screens))
	any := accessFrames > 0
	for i, s := range m.screens {
		if d := target - s.lastISD; d >= 0.005 {
			screenFrames[i] = nearestFrames(d)
		}
		if screenFrames[i] > 0 {
			any = true
		}
	}
	if !any {
		return
	}
	debugf("action at %.2fs: target %.1f ms, accessory insert %d", now, target*1000, accessFrames)
	if accessFrames > 0 {
		m.accessStream.Apply(compensator.Action{InsertFrames: accessFrames})
	}
	for i, s := range m.screens {
		if screenFrames[i] > 0 {
			s.stream.Apply(compensator.Action{InsertFrames: screenFrames[i]})
			debugf("  screen %d insert %d (lastISD %.1f ms)", i, screenFrames[i], s.lastISD*1000)
		}
		s.nISD = 0
	}
	m.actions++
	m.settleUntil = now + 6
}

func (m *multiSim) finish() *MultiResult {
	res := &MultiResult{Actions: m.actions}
	for _, s := range m.screens {
		res.Traces = append(res.Traces, s.trace)
		in, total := 0, 0
		for _, p := range s.trace {
			if p.TimeSec < m.sc.WarmupIgnoreSec {
				continue
			}
			total++
			if math.Abs(p.ISDSeconds) <= 0.010 {
				in++
			}
		}
		frac := 0.0
		if total > 0 {
			frac = float64(in) / float64(total)
		}
		res.InSyncFractions = append(res.InSyncFractions, frac)
	}
	return res
}
