package session

import (
	"math"

	"ekho/internal/audio"
	"ekho/internal/dsp"
)

// GroundTruth implements the paper's §6.1 measurement methodology for real
// hardware, reproduced here for validation: "we add a 2KHz to 5KHz chirp to
// the start of the screen audio, and a 5KHz to 2KHz chirp to the start of
// the controller audio. A microphone from a third device listens to the
// playback from both devices, and by correlating each chirp to the
// recording, we extract the initial ISD, which then synchronizes the two
// device's logs."
//
// The two chirps sweep in opposite directions so they remain separable
// even when they overlap in time in the third-device recording.

// Chirp parameters from the paper.
const (
	chirpLoHz  = 2000.0
	chirpHiHz  = 5000.0
	chirpSec   = 0.5
	chirpLevel = 0.7
)

// ScreenChirp returns the rising 2→5 kHz chirp prepended to screen audio.
func ScreenChirp(rate int) *audio.Buffer {
	return audio.Chirp(rate, chirpLoHz, chirpHiHz, chirpSec, chirpLevel)
}

// ControllerChirp returns the falling 5→2 kHz chirp prepended to
// controller audio.
func ControllerChirp(rate int) *audio.Buffer {
	return audio.Chirp(rate, chirpHiHz, chirpLoHz, chirpSec, chirpLevel)
}

// AlignChirps locates both chirps in a third-device recording and returns
// the initial ISD (screen chirp time minus controller chirp time) in
// seconds, plus the normalized correlation confidence of the weaker
// detection. A confidence below ~0.2 means one chirp was not found.
func AlignChirps(recording *audio.Buffer) (isdSeconds, confidence float64) {
	up := ScreenChirp(recording.Rate)
	down := ControllerChirp(recording.Rate)
	lagUp, confUp := dsp.NormalizedPeakLag(recording.Samples, up.Samples)
	lagDown, confDown := dsp.NormalizedPeakLag(recording.Samples, down.Samples)
	conf := math.Min(confUp, confDown)
	return float64(lagUp-lagDown) / float64(recording.Rate), conf
}
