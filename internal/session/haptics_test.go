package session

import (
	"math"
	"testing"

	"ekho/internal/audio"
)

func TestHapticsSkewFollowsISD(t *testing.T) {
	sc := shortScenario()
	sc.HapticsEnabled = true
	res := Run(sc)
	if len(res.Haptics) == 0 {
		t.Fatal("no haptic events fired")
	}
	matched := 0
	var tail []float64
	for _, h := range res.Haptics {
		if !h.Matched {
			continue
		}
		matched++
		if h.PlayedAt > 30 {
			tail = append(tail, math.Abs(h.SkewToScreen))
		}
	}
	if matched < len(res.Haptics)/2 {
		t.Fatalf("only %d/%d haptic events matched to screen playback", matched, len(res.Haptics))
	}
	if len(tail) == 0 {
		t.Fatal("no post-convergence haptic events")
	}
	// After convergence the haptic-to-screen skew must sit well below the
	// 24-30 ms perception thresholds (§3.1) — it equals the audio ISD.
	inBound := 0
	for _, v := range tail {
		if v <= 0.015 {
			inBound++
		}
	}
	if frac := float64(inBound) / float64(len(tail)); frac < 0.8 {
		t.Fatalf("haptic skew above perception threshold too often: %.2f in-bound", frac)
	}
}

func TestHapticsWithoutEkhoSkewLarge(t *testing.T) {
	sc := shortScenario()
	sc.HapticsEnabled = true
	sc.EkhoEnabled = false
	res := Run(sc)
	if len(res.Haptics) == 0 {
		t.Fatal("no haptic events")
	}
	for _, h := range res.Haptics {
		if h.Matched && h.PlayedAt > 5 && math.Abs(h.SkewToScreen) < 0.050 {
			t.Fatalf("haptic skew %g without Ekho should stay large", h.SkewToScreen)
		}
	}
}

func TestHapticsGeneration(t *testing.T) {
	evs := generateHaptics(1, 20*48000)
	if len(evs) < 8 {
		t.Fatalf("only %d events in 20 s", len(evs))
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].ContentSample <= evs[i-1].ContentSample {
			t.Fatal("events must be content-ordered")
		}
	}
	for _, e := range evs {
		if e.Intensity < 0.3 || e.Intensity > 1 {
			t.Fatalf("intensity %g", e.Intensity)
		}
	}
	// Deterministic per seed.
	evs2 := generateHaptics(1, 20*48000)
	if len(evs) != len(evs2) || evs[3] != evs2[3] {
		t.Fatal("haptics not deterministic")
	}
}

func TestMutedScreenSessionConverges(t *testing.T) {
	sc := shortScenario()
	sc.MutedScreen = true
	sc.MutedMarkerAmpDB = 9
	res := Run(sc)
	if len(res.Measurements) == 0 {
		t.Fatal("muted-screen session produced no measurements")
	}
	if len(res.Actions) == 0 {
		t.Fatal("no compensation actions")
	}
	var tail []float64
	for _, p := range res.Trace {
		if p.TimeSec > 30 {
			tail = append(tail, math.Abs(p.ISDSeconds))
		}
	}
	if len(tail) == 0 {
		t.Fatal("no tail trace")
	}
	inSync := 0
	for _, v := range tail {
		if v <= 0.010 {
			inSync++
		}
	}
	if frac := float64(inSync) / float64(len(tail)); frac < 0.8 {
		t.Fatalf("muted-screen tail in-sync fraction %.2f", frac)
	}
}

func TestMutedScreenAudioIsSilentExceptMarkers(t *testing.T) {
	// The transmitted screen frames must carry only marker energy: build
	// a sim manually and inspect one produced frame.
	sc := shortScenario()
	sc.MutedScreen = true
	s := &sim{sc: sc}
	s.setup()
	// Produce 10 frames and check their peak levels are marker-scale.
	maxPeak := 0.0
	f := make([]float64, audio.FrameSamples)
	for i := 0; i < 10; i++ {
		s.pipe.NextScreenFrame(f)
		for _, v := range f {
			if a := math.Abs(v); a > maxPeak {
				maxPeak = a
			}
		}
	}
	if maxPeak == 0 {
		t.Fatal("markers missing from muted stream")
	}
	if maxPeak > 0.05 {
		t.Fatalf("muted stream peak %g too loud for a faint marker", maxPeak)
	}
}
