// Package session orchestrates the full end-to-end system of §6.1: a cloud
// game server streaming a screen stream (cellular path) and an accessory
// stream (WiFi path) to two simulated devices, with the player's headset
// microphone overhearing the screen playback and shipping timestamped chat
// audio back to the server, where Ekho-Estimator and Ekho-Compensator close
// the synchronization loop.
//
// Everything runs on a single discrete-event scheduler in virtual time, so
// a 5-minute session completes in seconds of wall time. Ground-truth ISD is
// computed from the simulator's omniscient bookkeeping (true playback time
// per content position); the chirp-based methodology the paper uses on real
// hardware is implemented in groundtruth.go and validated against the
// bookkeeping in tests.
//
// Sign convention: ISD = (true time screen content is heard at the mic) −
// (true time the same content plays in the headset). Positive ISD means
// the screen lags and the compensator delays the accessory stream.
package session

import (
	"math"
	"os"

	"ekho/internal/audio"
	"ekho/internal/codec"
	"ekho/internal/compensator"
	"ekho/internal/estimator"
	"ekho/internal/gamesynth"
	"ekho/internal/jitterbuf"
	"ekho/internal/netsim"
	"ekho/internal/pn"
	"ekho/internal/serverpipe"
	"ekho/internal/trace"
	"ekho/internal/vclock"
)

// StreamID distinguishes the two downlinks in scripted events.
type StreamID int

// The two downlink streams.
const (
	Screen StreamID = iota
	Accessory
)

// ScriptedLoss forces the loss of consecutive frames on one downlink at a
// given session time (Figure 9's deterministic events).
type ScriptedLoss struct {
	AtSec  float64
	Stream StreamID
	Frames int
}

// ScriptedThrottle caps a downlink's bandwidth for a period — a cross-
// traffic burst that builds queueing delay (§3.3's network variation).
type ScriptedThrottle struct {
	AtSec        float64
	DurationSec  float64
	Stream       StreamID
	BandwidthBps float64
}

// Scenario configures one end-to-end run.
type Scenario struct {
	Seed        int64
	DurationSec float64
	// EkhoEnabled turns the marker/estimation/compensation loop on.
	EkhoEnabled bool
	// MarkerC is the relative marker volume (default 0.5).
	MarkerC float64
	// ScreenLink / ControllerLink are the downlink configurations.
	ScreenLink     netsim.LinkConfig
	ControllerLink netsim.LinkConfig
	// ControllerUplink carries chat audio to the server.
	ControllerUplink netsim.LinkConfig
	// Jitter buffer thresholds in frames.
	ScreenJitterFrames     int
	ControllerJitterFrames int
	// Extra device playback latencies (TV post-processing etc.), seconds.
	ScreenDeviceLatency     float64
	ControllerDeviceLatency float64
	// Clock offsets of the devices' local clocks vs true time (seconds);
	// Ekho never sees true time, only these local stamps.
	ScreenClockOffset     float64
	ControllerClockOffset float64
	ControllerDriftPPM    float64
	// ScreenSROPPM / ControllerSROPPM are the devices' sample-rate
	// offsets in ppm: the device's DAC/ADC oscillator runs at
	// 48000·(1+ppm·1e-6), so it consumes (and captures) samples at a
	// skewed rate and the ISD becomes a ramp instead of a level
	// (arXiv:2507.05399's multi-device SRO model). Playout ticks fire
	// every frameSec/(1+ppm·1e-6); the controller's microphone captures
	// through a fractional resampler at the same skew. A drifting
	// controller should normally set ControllerDriftPPM to the same
	// value: one crystal drives both the audio oscillator and the local
	// clock.
	ScreenSROPPM     float64
	ControllerSROPPM float64
	// DriftCompensation enables the server's drift regime: a sliding-
	// window slope fit on ISD measurements plus continuous
	// micro-resampling of the accessory stream once drift dominates.
	// Off by default — level-only scenarios stay bit-identical.
	DriftCompensation bool
	// Channel is the acoustic path spec; zero value uses defaults.
	Channel channelSpec
	// ChatProfile encodes the uplink audio (default SWB32).
	ChatProfile codec.Profile
	// ScriptedLosses are deterministic loss events.
	ScriptedLosses []ScriptedLoss
	// ScriptedThrottles are deterministic bandwidth caps.
	ScriptedThrottles []ScriptedThrottle
	// ClipIndex selects the looping game clip from the corpus.
	ClipIndex int
	// SubFrame enables fractional-frame compensation.
	SubFrame bool
	// InterpolatedInsert synthesizes inserted delay from the surrounding
	// audio (PLC-style, §4.4 future work) instead of hard silence.
	InterpolatedInsert bool
	// WarmupIgnoreSec excludes the startup transient from summary stats
	// (the paper ignores the first 5 s).
	WarmupIgnoreSec float64
	// WalkToFt, when positive, moves the player linearly from the
	// channel's starting distance to this distance over the session —
	// the sound-propagation component of ISD then drifts slowly (§3.3's
	// low-frequency variation class, ~1 ms per foot).
	WalkToFt float64
	// HapticsEnabled generates controller rumble events anchored to game
	// content and reports their skew to the screen playback.
	HapticsEnabled bool
	// MutedScreen enables the §6.5 mode: the screen audio is silenced and
	// markers are sent at a constant faint amplitude instead of tracking
	// the (absent) game audio. Video-to-audio sync still converges.
	MutedScreen bool
	// MutedMarkerAmpDB is the constant marker amplitude for MutedScreen
	// (dB above the injector floor; the paper suggests 6-15 dB).
	MutedMarkerAmpDB float64
	// Detector selects the server's marker-detection pipeline (zero
	// value = the band-decimated two-stage detector; DetectorFullRate
	// is the reference full-rate correlator).
	Detector estimator.DetectorMode
	// Provider, when non-empty, selects a named provider-shaped network
	// profile (netsim.ProviderByName: "stadia", "gfn", "psnow") and
	// overrides ScreenLink, ControllerLink and ControllerUplink with its
	// measured delay/jitter/loss shapes. Unknown names panic: a scenario
	// asking for a profile that does not exist is a programming error.
	Provider string
	// RecordPath, when non-empty, captures the server pipeline's full
	// timeline to a trace log for deterministic replay (cmd/ekho-replay).
	RecordPath string
}

// DefaultScenario mirrors the paper's testbed: screen on cellular with a
// TV-like playback latency, controller on campus WiFi.
func DefaultScenario() Scenario {
	return Scenario{
		Seed:                    1,
		DurationSec:             120,
		EkhoEnabled:             true,
		MarkerC:                 pn.DefaultC,
		ScreenLink:              netsim.Cellular,
		ControllerLink:          netsim.WiFi,
		ControllerUplink:        netsim.Asymmetric(netsim.WiFi, 0.010, 777),
		ScreenJitterFrames:      4,
		ControllerJitterFrames:  2,
		ScreenDeviceLatency:     0.060,
		ControllerDeviceLatency: 0.002,
		ScreenClockOffset:       3.7,
		ControllerClockOffset:   -2.2,
		ControllerDriftPPM:      25,
		Channel:                 defaultChannelSpec(),
		ChatProfile:             codec.SWB32,
		ClipIndex:               0,
		WarmupIgnoreSec:         5,
	}
}

// DriftScenario is the default scenario with a controller sample-rate
// offset of sroPPM and the server's drift-compensation regime enabled.
// The controller's local clock drifts at the same rate as its audio
// oscillator — one crystal drives both — so ControllerDriftPPM tracks
// the SRO instead of the default 25 ppm.
func DriftScenario(sroPPM float64) Scenario {
	sc := DefaultScenario()
	sc.ControllerSROPPM = sroPPM
	sc.ControllerDriftPPM = sroPPM
	sc.DriftCompensation = true
	return sc
}

// ISDPoint is one ground-truth ISD observation.
type ISDPoint struct {
	TimeSec    float64
	ISDSeconds float64
}

// ActionRecord logs one compensation action.
type ActionRecord struct {
	TimeSec float64
	Action  compensator.Action
}

// MeasurementRecord logs one Ekho ISD measurement at the server.
type MeasurementRecord struct {
	TimeSec    float64
	ISDSeconds float64
}

// ResampleRecord logs one micro-resampling rate retune (drift regime).
type ResampleRecord struct {
	TimeSec  float64
	Resample compensator.Resample
}

// Result carries everything a session produced.
type Result struct {
	Trace        []ISDPoint
	Measurements []MeasurementRecord
	Actions      []ActionRecord
	// Resamples logs the drift regime's rate retunes (empty unless
	// Scenario.DriftCompensation).
	Resamples  []ResampleRecord
	ScreenLoss netsim.Stats
	AccessLoss netsim.Stats
	// Haptics holds the fired rumble events and their skew to the screen
	// (empty unless Scenario.HapticsEnabled).
	Haptics []HapticRecord
	// InSyncFraction is the share of post-warmup trace points with
	// |ISD| <= 10 ms.
	InSyncFraction float64
}

// frame is the downlink payload: 20 ms of PCM plus content bookkeeping.
type frame struct {
	seq          int
	contentStart int // content sample index of the first content sample; -1 = all silence
	contentOff   int // in-frame offset where content begins
	samples      []float64
}

// chatPacket is the uplink payload.
type chatPacket struct {
	seq     int
	encoded []byte
	// adcLocal is the controller-local capture time of the first sample.
	adcLocal float64
	// playbackLog piggybacks recent accessory playback records.
	playbackLog []playbackRecord
}

// playbackRecord reports that accessory content [contentStart, +n) started
// playing at the given controller-local time.
type playbackRecord struct {
	contentStart int
	n            int
	localTime    float64
}

const frameSec = 0.02

// Run executes the scenario and returns its result.
func Run(sc Scenario) *Result {
	if sc.MarkerC == 0 {
		sc.MarkerC = pn.DefaultC
	}
	if sc.ChatProfile.Name == "" {
		sc.ChatProfile = codec.SWB32
	}
	if sc.Channel == (channelSpec{}) {
		sc.Channel = defaultChannelSpec()
	}
	if sc.Provider != "" {
		p, ok := netsim.ProviderByName(sc.Provider)
		if !ok {
			panic("session: unknown provider profile " + sc.Provider)
		}
		sc.ScreenLink = p.Down
		sc.ControllerLink = p.Down
		sc.ControllerUplink = p.Up
	}
	s := &sim{sc: sc}
	s.setup()
	s.run()
	return s.finish()
}

// contentRecord is a (content range → true/local time) bookkeeping entry.
type contentRecord struct {
	contentStart int
	n            int
	time         float64 // true time (ground truth) or local time (uplink)
}

type sim struct {
	sc    Scenario
	sched *vclock.Scheduler

	game *audio.Buffer // looping game audio

	// Server side: the shared per-session pipeline, driven from the
	// discrete-event scheduler (the same core the hub hosts on sockets).
	pnSeq *pn.Sequence
	pipe  *serverpipe.Pipeline

	// Optional capture of the pipeline timeline (Scenario.RecordPath).
	rec     *trace.Recorder
	recFile *os.File

	// Links.
	screenDown *netsim.Link
	accessDown *netsim.Link
	chatUp     *netsim.Link

	// Devices.
	screenBuf *jitterbuf.Buffer
	accessBuf *jitterbuf.Buffer
	screenClk *vclock.Clock
	accessClk *vclock.Clock
	air       *airChannel
	chatEnc   *codec.Encoder
	chatSeq   int
	pendLog   []playbackRecord

	// Ground truth bookkeeping (true times).
	heardRecs  []contentRecord // screen content heard at mic
	playedRecs []contentRecord // accessory content played

	trace        []ISDPoint
	measurements []MeasurementRecord
	actions      []ActionRecord
	resamples    []ResampleRecord
	haptics      *hapticTracker
}

func (s *sim) setup() {
	sc := s.sc
	s.sched = vclock.NewScheduler()
	s.game = gamesynth.Generate(gamesynth.Catalog()[sc.ClipIndex%30], gamesynth.ClipSeconds)

	s.pnSeq = pn.NewSequence(4242, pn.DefaultLength)
	cfg := serverpipe.Config{
		Game:               s.game,
		Seq:                s.pnSeq,
		MarkerC:            sc.MarkerC,
		Codec:              sc.ChatProfile,
		Compensator:        compensator.Config{SubFrame: sc.SubFrame},
		Drift:              compensator.DriftConfig{Enabled: sc.DriftCompensation},
		Now:                func() float64 { return float64(s.sched.Now()) },
		Sink:               s,
		DisableMarkers:     !sc.EkhoEnabled,
		InterpolatedInsert: sc.InterpolatedInsert,
		MutedScreen:        sc.MutedScreen,
		MutedMarkerAmpDB:   sc.MutedMarkerAmpDB,
		ChatStartsAtZero:   true,
		Detector:           sc.Detector,
	}
	s.pipe = serverpipe.New(cfg)
	if sc.RecordPath != "" {
		f, err := os.Create(sc.RecordPath)
		if err != nil {
			panic("session: record: " + err.Error())
		}
		rec, err := trace.NewRecorder(f, trace.HeaderFor(0, sc.ClipIndex, 4242, cfg))
		if err != nil {
			f.Close()
			panic("session: record: " + err.Error())
		}
		s.recFile, s.rec = f, rec
	}
	s.chatEnc = codec.NewEncoder(sc.ChatProfile)

	s.screenClk = &vclock.Clock{Offset: sc.ScreenClockOffset, DACLatency: sc.ScreenDeviceLatency}
	s.accessClk = &vclock.Clock{Offset: sc.ControllerClockOffset, DriftPPM: sc.ControllerDriftPPM, DACLatency: sc.ControllerDeviceLatency}
	s.air = newAirChannel(sc.Channel)

	s.screenBuf = jitterbuf.New(sc.ScreenJitterFrames)
	s.accessBuf = jitterbuf.New(sc.ControllerJitterFrames)
	if sc.HapticsEnabled {
		s.haptics = &hapticTracker{
			pending: generateHaptics(sc.Seed+500, int(sc.DurationSec*audio.SampleRate)),
		}
	}

	sl := sc.ScreenLink
	sl.Seed += sc.Seed * 101
	al := sc.ControllerLink
	al.Seed += sc.Seed * 103
	ul := sc.ControllerUplink
	ul.Seed += sc.Seed * 107
	s.screenDown = netsim.NewLink(sl, s.sched, s.onScreenPacket)
	s.accessDown = netsim.NewLink(al, s.sched, s.onAccessPacket)
	s.chatUp = netsim.NewLink(ul, s.sched, s.onChatPacket)

	for _, ev := range sc.ScriptedLosses {
		ev := ev
		s.sched.At(vclock.Time(ev.AtSec), func() {
			switch ev.Stream {
			case Screen:
				s.screenDown.ForceDrop(ev.Frames)
			default:
				s.accessDown.ForceDrop(ev.Frames)
			}
		})
	}
	for _, ev := range sc.ScriptedThrottles {
		ev := ev
		link := s.accessDown
		if ev.Stream == Screen {
			link = s.screenDown
		}
		s.sched.At(vclock.Time(ev.AtSec), func() { link.SetBandwidth(ev.BandwidthBps) })
		s.sched.At(vclock.Time(ev.AtSec+ev.DurationSec), func() { link.SetBandwidth(0) })
	}
}

func (s *sim) run() {
	end := vclock.Time(s.sc.DurationSec)
	tick := func(start vclock.Time, period float64, fn func()) {
		var loop func()
		loop = func() {
			if s.sched.Now() >= end {
				return
			}
			fn()
			s.sched.After(period, loop)
		}
		s.sched.At(start, loop)
	}
	// A device with a sample-rate offset drains its 960-sample frames in
	// 20 ms of *its* oscillator's time: its playout/capture ticks fire
	// every frameSec/(1+ppm·1e-6) of true time. With zero SRO the period
	// is exactly frameSec, preserving the pre-drift schedule bit for bit.
	screenPeriod := frameSec / (1 + s.sc.ScreenSROPPM*1e-6)
	ctrlPeriod := frameSec / (1 + s.sc.ControllerSROPPM*1e-6)
	tick(0, frameSec, s.serverProduce)
	tick(0.011, screenPeriod, s.screenPlayout)
	tick(0.013, ctrlPeriod, s.accessPlayout)
	tick(0.017, ctrlPeriod, s.captureMic)
	s.sched.RunUntil(end + 1)
}

// serverProduce generates one frame for each stream through the shared
// pipeline (compensation edits + marker injection) and transmits both.
// Fresh buffers each tick: the simulated network retains the payloads.
func (s *sim) serverProduce() {
	if s.rec != nil {
		s.rec.Tick(s.pipe.Now())
	}
	scSamples := make([]float64, audio.FrameSamples)
	scf := s.pipe.NextScreenFrame(scSamples)
	acSamples := make([]float64, audio.FrameSamples)
	acf := s.pipe.NextAccessoryFrame(acSamples)
	s.screenDown.Send(frame{seq: int(scf.Seq), contentStart: int(scf.ContentStart), contentOff: scf.ContentOff, samples: scSamples})
	s.accessDown.Send(frame{seq: int(acf.Seq), contentStart: int(acf.ContentStart), contentOff: acf.ContentOff, samples: acSamples})
	if s.rec != nil {
		s.rec.MediaOut(trace.StreamScreen, scf, 0)
		s.rec.MediaOut(trace.StreamAccessory, acf, 0)
	}
}

func (s *sim) onScreenPacket(p netsim.Packet) {
	f := p.Payload.(frame)
	s.screenBuf.Push(jitterbuf.Frame{Seq: f.seq, Samples: packFrame(f)})
}

func (s *sim) onAccessPacket(p netsim.Packet) {
	f := p.Payload.(frame)
	s.accessBuf.Push(jitterbuf.Frame{Seq: f.seq, Samples: packFrame(f)})
}

// packFrame/unpackFrame smuggle content bookkeeping through the jitter
// buffer (which carries []float64): two trailing sentinel values.
func packFrame(f frame) []float64 {
	out := make([]float64, len(f.samples)+2)
	copy(out, f.samples)
	out[len(f.samples)] = float64(f.contentStart)
	out[len(f.samples)+1] = float64(f.contentOff)
	return out
}

func unpackFrame(s []float64) (samples []float64, contentStart, contentOff int) {
	if len(s) < 2 {
		return nil, -1, 0
	}
	return s[:len(s)-2], int(s[len(s)-2]), int(s[len(s)-1])
}

// screenPlayout pops one frame from the screen jitter buffer and plays it
// through the speaker into the air channel. A screen sample-rate offset
// is modeled by the skewed tick period alone: each frame's start lands at
// the drifted true time (the effect that accumulates, ~sro µs/s), while
// the 960 samples within it are written at the nominal rate — the
// within-frame stretch is sro·1e-6·20 ms ≈ nanoseconds, far below the
// channel's own one-sample placement quantization.
func (s *sim) screenPlayout() {
	raw, ev := s.screenBuf.Pop()
	if ev == jitterbuf.Waiting {
		return
	}
	if s.sc.WalkToFt > 0 {
		frac := float64(s.sched.Now()) / s.sc.DurationSec
		if frac > 1 {
			frac = 1
		}
		ft := s.sc.Channel.DistanceFt + (s.sc.WalkToFt-s.sc.Channel.DistanceFt)*frac
		s.air.setDistanceFt(ft)
	}
	samples, content, off := unpackFrame(raw)
	playTime := float64(s.sched.Now()) + s.sc.ScreenDeviceLatency
	playSample := int(math.Round(playTime * audio.SampleRate))
	s.air.play(playSample, samples)
	if content >= 0 {
		heardAt := playTime + (float64(off)+float64(s.air.propSamples))/audio.SampleRate
		rec := contentRecord{contentStart: content, n: len(samples) - off, time: heardAt}
		s.heardRecs = append(s.heardRecs, rec)
		s.matchTrace(rec, s.playedRecs)
		if s.haptics != nil {
			s.haptics.onScreenHeard(content, len(samples)-off, heardAt)
		}
	}
}

// accessPlayout pops one frame from the accessory jitter buffer, plays it
// to the headset and logs the playback record for the uplink.
func (s *sim) accessPlayout() {
	raw, ev := s.accessBuf.Pop()
	if ev == jitterbuf.Waiting {
		return
	}
	samples, content, off := unpackFrame(raw)
	offSec := float64(off) / audio.SampleRate
	if sro := s.sc.ControllerSROPPM; sro != 0 {
		// The headset DAC drains samples at 48000·(1+sro·1e-6): reaching
		// in-frame offset off takes off/(48000·(1+sro·1e-6)) of true time.
		offSec = float64(off) / (audio.SampleRate * (1 + sro*1e-6))
	}
	playTrue := float64(s.sched.Now()) + s.sc.ControllerDeviceLatency + offSec
	if content >= 0 {
		n := len(samples) - off
		rec := contentRecord{contentStart: content, n: n, time: playTrue}
		s.playedRecs = append(s.playedRecs, rec)
		local := float64(s.accessClk.Local(vclock.Time(playTrue)))
		s.pendLog = append(s.pendLog, playbackRecord{contentStart: content, n: n, localTime: local})
		s.matchTraceReverse(rec, s.heardRecs)
		if s.haptics != nil {
			s.haptics.onAccessoryPlay(content, n, playTrue)
		}
	}
}

// captureMic reads 20 ms of ADC time from the air channel, encodes it and
// uplinks it. With a controller sample-rate offset, the ADC consumes
// 1/(1+sro·1e-6) true-rate air samples per ADC sample, so the frame is
// read through the channel's fractional-capture path; the zero-SRO path
// is the original integer capture, bit for bit.
func (s *sim) captureMic() {
	now := float64(s.sched.Now())
	var samples []float64
	var adcTrue float64
	if sro := s.sc.ControllerSROPPM; sro != 0 {
		step := 1 / (1 + sro*1e-6)
		endPos := now * audio.SampleRate
		startPos := endPos - float64(audio.FrameSamples)*step
		if startPos < 0 {
			return
		}
		samples = s.air.captureFrac(startPos, step, audio.FrameSamples)
		adcTrue = startPos / audio.SampleRate
	} else {
		to := int(math.Round(now * audio.SampleRate))
		from := to - audio.FrameSamples
		if from < 0 {
			return
		}
		samples = s.air.capture(from, to)
		adcTrue = float64(from) / audio.SampleRate
	}
	pkt, err := s.chatEnc.Encode(samples)
	if err != nil {
		panic("session: chat encode: " + err.Error())
	}
	adcLocal := float64(s.accessClk.StampADC(vclock.Time(adcTrue)))
	cp := chatPacket{seq: s.chatSeq, encoded: pkt, adcLocal: adcLocal, playbackLog: s.pendLog}
	s.chatSeq++
	s.pendLog = nil
	s.chatUp.Send(cp)
}

// onChatPacket is the server-side uplink handler: it deserializes the
// simulated packet into the shared pipeline (records first, then audio).
func (s *sim) onChatPacket(p netsim.Packet) {
	if !s.sc.EkhoEnabled {
		return
	}
	cp := p.Payload.(chatPacket)
	for _, r := range cp.playbackLog {
		rec := serverpipe.Record{ContentStart: int64(r.contentStart), N: r.n, LocalTime: r.localTime}
		if s.rec != nil {
			s.rec.OfferRecord(s.pipe.Now(), rec)
		}
		s.pipe.OfferRecord(rec)
	}
	if s.rec != nil {
		s.rec.OfferChat(s.pipe.Now(), uint32(cp.seq), cp.adcLocal, cp.encoded)
	}
	s.pipe.OfferChat(uint32(cp.seq), cp.adcLocal, cp.encoded)
}

// The sim is its pipeline's EventSink: measurements and actions land in
// the result log with virtual-time stamps.

// MarkerInjected implements serverpipe.EventSink.
func (s *sim) MarkerInjected(content int64) {
	if s.rec != nil {
		s.rec.MarkerInjected(content)
	}
}

// MarkerMatched implements serverpipe.EventSink.
func (s *sim) MarkerMatched(content int64, localTime float64) {
	if s.rec != nil {
		s.rec.MarkerMatched(content, localTime)
	}
}

// MarkerExpired implements serverpipe.EventSink.
func (s *sim) MarkerExpired(content int64) {
	if s.rec != nil {
		s.rec.MarkerExpired(content)
	}
}

// ChatGapConcealed implements serverpipe.EventSink.
func (s *sim) ChatGapConcealed(seq uint32, startLocal float64) {
	if s.rec != nil {
		s.rec.ChatGapConcealed(seq, startLocal)
	}
}

// ISDMeasurement implements serverpipe.EventSink.
func (s *sim) ISDMeasurement(now float64, m estimator.Measurement) {
	s.measurements = append(s.measurements, MeasurementRecord{TimeSec: now, ISDSeconds: m.ISDSeconds})
	if s.rec != nil {
		s.rec.ISDMeasurement(now, m)
	}
}

// CompensationAction implements serverpipe.EventSink.
func (s *sim) CompensationAction(now float64, a compensator.Action) {
	s.actions = append(s.actions, ActionRecord{TimeSec: now, Action: a})
	if s.rec != nil {
		s.rec.CompensationAction(now, a)
	}
}

// ResampleApplied implements serverpipe.EventSink.
func (s *sim) ResampleApplied(now float64, r compensator.Resample) {
	s.resamples = append(s.resamples, ResampleRecord{TimeSec: now, Resample: r})
	if s.rec != nil {
		s.rec.ResampleApplied(now, r)
	}
}

// matchTrace emits a ground-truth ISD point when a newly heard screen
// record overlaps an already-played accessory record.
func (s *sim) matchTrace(h contentRecord, played []contentRecord) {
	for _, p := range played {
		if s.emitOverlap(h, p) {
			break
		}
	}
	s.pruneRecs()
}

// matchTraceReverse is the mirror: a newly played accessory record paired
// against already-heard screen records (the screen-leads case).
func (s *sim) matchTraceReverse(p contentRecord, heard []contentRecord) {
	for _, h := range heard {
		if s.emitOverlap(h, p) {
			break
		}
	}
	s.pruneRecs()
}

// emitOverlap emits one ISD point if the records share content.
func (s *sim) emitOverlap(h, p contentRecord) bool {
	lo := max(h.contentStart, p.contentStart)
	hi := min(h.contentStart+h.n, p.contentStart+p.n)
	if lo >= hi {
		return false
	}
	heardAt := h.time + float64(lo-h.contentStart)/audio.SampleRate
	playedAt := p.time + float64(lo-p.contentStart)/audio.SampleRate
	s.trace = append(s.trace, ISDPoint{
		TimeSec:    float64(s.sched.Now()),
		ISDSeconds: heardAt - playedAt,
	})
	return true
}

// pruneRecs bounds the bookkeeping windows: ~1.2 s of heard records and
// ~2.4 s of played records cover any plausible ISD.
func (s *sim) pruneRecs() {
	if len(s.heardRecs) > 60 {
		s.heardRecs = append([]contentRecord(nil), s.heardRecs[len(s.heardRecs)-60:]...)
	}
	if len(s.playedRecs) > 120 {
		s.playedRecs = append([]contentRecord(nil), s.playedRecs[len(s.playedRecs)-120:]...)
	}
}

func (s *sim) finish() *Result {
	if s.rec != nil {
		if err := s.rec.Close(); err != nil {
			panic("session: record: " + err.Error())
		}
		if err := s.recFile.Close(); err != nil {
			panic("session: record: " + err.Error())
		}
		s.rec, s.recFile = nil, nil
	}
	res := &Result{
		Trace:        s.trace,
		Measurements: s.measurements,
		Actions:      s.actions,
		Resamples:    s.resamples,
		ScreenLoss:   s.screenDown.Stats(),
		AccessLoss:   s.accessDown.Stats(),
	}
	if s.haptics != nil {
		res.Haptics = s.haptics.fired
	}
	inSync, total := 0, 0
	for _, p := range res.Trace {
		if p.TimeSec < s.sc.WarmupIgnoreSec {
			continue
		}
		total++
		if math.Abs(p.ISDSeconds) <= 0.010 {
			inSync++
		}
	}
	if total > 0 {
		res.InSyncFraction = float64(inSync) / float64(total)
	}
	return res
}
