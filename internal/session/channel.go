package session

import (
	"math"
	"math/rand"

	"ekho/internal/acoustic"
	"ekho/internal/audio"
	"ekho/internal/dsp"
)

// airChannel is a streaming-friendly version of acoustic.Channel used by
// the live session loop: the screen device writes its playback into a
// shared "air" timeline and the controller microphone reads it back with
// propagation delay, attenuation, sparse early reflections, microphone
// coloration and an ambient noise floor.
//
// Unlike acoustic.Channel (which filters whole buffers offline with a
// dense room impulse response), this version uses a handful of discrete
// echo taps and stateful biquads so per-sample cost stays low across
// half-hour sessions.
type airChannel struct {
	mic          dsp.Chain
	attenuation  float64
	propSamples  int
	taps         []airTap // sparse reflections, delay in samples
	ambientLevel float64
	rng          *rand.Rand

	// timeline holds what the microphone membrane receives, indexed by
	// absolute true-time sample. Writers (screen playback) write ahead;
	// the capture loop consumes from the front.
	timeline []float64
	base     int // absolute sample index of timeline[0]
	consumed int // absolute sample index up to which audio was captured

	// Fractional-capture state (captureFrac, SRO'd controllers only).
	// The mic biquads are stateful and sequential, so the air is filtered
	// exactly once at the nominal integer rate into filt, and the skewed
	// ADC reads are sinc-interpolated from that history.
	filt     []float64
	filtBase int  // absolute sample index of filt[0]
	filtInit bool // filtBase anchored (first captureFrac call)
}

type airTap struct {
	delay int
	gain  float64
}

// channelSpec configures the session's acoustic path.
type channelSpec struct {
	Mic          acoustic.Microphone
	DistanceFt   float64
	Attenuation  float64
	AmbientLevel float64
	EchoTaps     int
	Seed         int64
}

func defaultChannelSpec() channelSpec {
	return channelSpec{
		Mic:          acoustic.XboxHeadset,
		DistanceFt:   6,
		Attenuation:  0.1,
		AmbientLevel: 0.0008,
		EchoTaps:     6,
		Seed:         21,
	}
}

func newAirChannel(spec channelSpec) *airChannel {
	rng := rand.New(rand.NewSource(spec.Seed))
	taps := make([]airTap, 0, spec.EchoTaps)
	for i := 0; i < spec.EchoTaps; i++ {
		// Reflections 10-120 ms after the direct path, decaying.
		delay := int((0.010 + 0.110*rng.Float64()) * audio.SampleRate)
		gain := 0.25 * (1 - float64(i)/float64(spec.EchoTaps+1))
		if rng.Intn(2) == 0 {
			gain = -gain
		}
		taps = append(taps, airTap{delay: delay, gain: gain})
	}
	att := spec.Attenuation
	if att == 0 {
		att = 1
	}
	return &airChannel{
		mic:          micChain(spec.Mic),
		attenuation:  att,
		propSamples:  int(spec.DistanceFt / acoustic.SpeedOfSoundFtPerSec * audio.SampleRate),
		taps:         taps,
		ambientLevel: spec.AmbientLevel,
		rng:          rng,
	}
}

// micChain mirrors acoustic's microphone responses for streaming use.
func micChain(m acoustic.Microphone) dsp.Chain {
	// acoustic exposes responses only via filtering; rebuild the same
	// cascade here through the public probe-free constructor.
	return acoustic.MicChain(m, audio.SampleRate)
}

// setDistanceFt updates the speaker-to-microphone distance (the player
// moving around the room — the paper's low-frequency ISD variation class).
// Takes effect for subsequently played audio.
func (a *airChannel) setDistanceFt(ft float64) {
	a.propSamples = int(ft / acoustic.SpeedOfSoundFtPerSec * audio.SampleRate)
}

// play writes the samples the screen speaker emits at absolute true-time
// sample index playSample into the air timeline (direct path + taps).
func (a *airChannel) play(playSample int, samples []float64) {
	arrive := playSample + a.propSamples
	a.writeScaled(arrive, samples, a.attenuation)
	for _, tap := range a.taps {
		a.writeScaled(arrive+tap.delay, samples, a.attenuation*tap.gain)
	}
}

func (a *airChannel) writeScaled(at int, samples []float64, gain float64) {
	if at < a.base {
		// Can't write into already-consumed air; drop the stale head.
		cut := a.base - at
		if cut >= len(samples) {
			return
		}
		samples = samples[cut:]
		at = a.base
	}
	end := at + len(samples)
	need := end - (a.base + len(a.timeline))
	if need > 0 {
		a.timeline = append(a.timeline, make([]float64, need)...)
	}
	off := at - a.base
	for i, v := range samples {
		a.timeline[off+i] += v * gain
	}
}

// capture returns what the microphone recorded for the absolute sample
// range [from, to): air content colored by the mic response plus ambient
// noise. Calls must be sequential and non-overlapping.
func (a *airChannel) capture(from, to int) []float64 {
	if to <= from {
		return nil
	}
	out := make([]float64, to-from)
	for i := range out {
		abs := from + i
		var v float64
		if idx := abs - a.base; idx >= 0 && idx < len(a.timeline) {
			v = a.timeline[idx]
		}
		v = a.mic.Process(v)
		if a.ambientLevel > 0 {
			v += a.rng.NormFloat64() * a.ambientLevel
		}
		out[i] = v
	}
	// Trim consumed air to bound memory.
	if drop := to - a.base; drop > 0 {
		if drop > len(a.timeline) {
			drop = len(a.timeline)
		}
		a.timeline = a.timeline[drop:]
		a.base += drop
	}
	a.consumed = to
	return out
}

// captureFrac returns n microphone samples taken at fractional air
// positions startPos, startPos+step, ... — a controller ADC whose
// oscillator runs off-rate consumes step true-rate air samples per ADC
// sample (step = 1/(1+sro·1e-6)). The mic coloration and ambient noise
// are applied at the nominal integer rate exactly once (the biquads are
// stateful and sequential), and the skewed reads are sinc-interpolated
// from that filtered history. A session uses either capture or
// captureFrac exclusively; mixing them would split the filter state.
// Calls must be sequential with non-decreasing positions.
func (a *airChannel) captureFrac(startPos, step float64, n int) []float64 {
	if n <= 0 {
		return nil
	}
	endPos := startPos + float64(n-1)*step
	if !a.filtInit {
		a.filtBase = int(math.Floor(startPos)) - dsp.InterpHalfWidth
		a.filtInit = true
	}
	a.filterTo(int(math.Floor(endPos)) + dsp.InterpHalfWidth + 1)
	out := make([]float64, n)
	for i := range out {
		pos := startPos + float64(i)*step
		out[i] = dsp.Interp(a.filt, pos-float64(a.filtBase))
	}
	// Keep enough filtered history for the next call's leading kernel taps
	// (it starts at endPos+step); drop the rest, and trim the raw air the
	// filter frontier has moved past.
	if cut := int(math.Floor(endPos)) - dsp.InterpHalfWidth - a.filtBase; cut > 0 {
		a.filt = a.filt[cut:]
		a.filtBase += cut
	}
	frontier := a.filtBase + len(a.filt)
	if drop := frontier - a.base; drop > 0 {
		if drop > len(a.timeline) {
			drop = len(a.timeline)
		}
		a.timeline = a.timeline[drop:]
		a.base += drop
	}
	a.consumed = frontier
	return out
}

// filterTo advances the filtered history through absolute air sample
// index to (exclusive), reading zeros outside the written timeline.
func (a *airChannel) filterTo(to int) {
	for next := a.filtBase + len(a.filt); next < to; next++ {
		var v float64
		if idx := next - a.base; idx >= 0 && idx < len(a.timeline) {
			v = a.timeline[idx]
		}
		v = a.mic.Process(v)
		if a.ambientLevel > 0 {
			v += a.rng.NormFloat64() * a.ambientLevel
		}
		a.filt = append(a.filt, v)
	}
}
