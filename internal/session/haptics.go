package session

import (
	"math/rand"

	"ekho/internal/audio"
)

// Haptic feedback support. The accessory stream carries controller rumble
// events alongside audio (paper §1: "haptic feedback, such as controller
// vibrations"); they fire when the content they are anchored to plays at
// the controller. Users perceive haptic-to-audio skew above ~24 ms and
// haptic-to-video skew above ~30 ms (§3.1), so once Ekho aligns the
// accessory audio with the screen, the haptics come along for free — the
// session measures that skew explicitly.

// HapticEvent is one rumble command anchored to game content.
type HapticEvent struct {
	// ContentSample anchors the event to the game-audio timeline.
	ContentSample int
	// Intensity is the rumble strength in [0, 1].
	Intensity float64
}

// HapticRecord reports when an event actually fired at the controller and
// how it related to the screen playback of the same content.
type HapticRecord struct {
	Event HapticEvent
	// PlayedAt is the true time the controller fired the rumble.
	PlayedAt float64
	// SkewToScreen is (screen heard time of the anchor content) minus
	// PlayedAt — positive when the rumble leads the picture/sound.
	SkewToScreen float64
	// Matched reports whether the screen side was observed for the anchor
	// (false for content the screen never played, e.g. during loss).
	Matched bool
}

// generateHaptics synthesizes rumble events every 0.5-2 s of content —
// roughly the cadence of weapon fire / impacts in the corpus clips.
func generateHaptics(seed int64, contentSamples int) []HapticEvent {
	rng := rand.New(rand.NewSource(seed))
	var out []HapticEvent
	pos := int(0.5 * audio.SampleRate)
	for pos < contentSamples {
		out = append(out, HapticEvent{
			ContentSample: pos,
			Intensity:     0.3 + 0.7*rng.Float64(),
		})
		pos += int((0.5 + 1.5*rng.Float64()) * audio.SampleRate)
	}
	return out
}

// hapticTracker matches fired events with screen-heard times. Matching is
// symmetric: the rumble may fire before or after the screen plays the
// anchoring content (the whole point of Ekho is to drive that skew to
// zero), so the tracker keeps a short history of screen heard-ranges and
// resolves whichever side arrives second.
type hapticTracker struct {
	pending []HapticEvent // sorted by content, not yet fired
	fired   []HapticRecord
	heard   []contentRecord // recent screen heard ranges
}

// onAccessoryPlay fires any events anchored within the played content
// range at the interpolated moment the anchor content plays.
func (h *hapticTracker) onAccessoryPlay(contentStart, n int, playTime float64) {
	kept := h.pending[:0]
	for _, ev := range h.pending {
		if ev.ContentSample >= contentStart && ev.ContentSample < contentStart+n {
			at := playTime + float64(ev.ContentSample-contentStart)/audio.SampleRate
			rec := HapticRecord{Event: ev, PlayedAt: at}
			// The screen may already have played this content.
			for _, hr := range h.heard {
				if ev.ContentSample >= hr.contentStart && ev.ContentSample < hr.contentStart+hr.n {
					screenAt := hr.time + float64(ev.ContentSample-hr.contentStart)/audio.SampleRate
					rec.SkewToScreen = screenAt - at
					rec.Matched = true
					break
				}
			}
			h.fired = append(h.fired, rec)
			continue
		}
		kept = append(kept, ev)
	}
	h.pending = kept
}

// onScreenHeard resolves the skew for fired events whose anchor content
// the screen just played, and remembers the range for events that have
// not fired yet.
func (h *hapticTracker) onScreenHeard(contentStart, n int, heardTime float64) {
	for i := range h.fired {
		r := &h.fired[i]
		if r.Matched {
			continue
		}
		if r.Event.ContentSample >= contentStart && r.Event.ContentSample < contentStart+n {
			screenAt := heardTime + float64(r.Event.ContentSample-contentStart)/audio.SampleRate
			r.SkewToScreen = screenAt - r.PlayedAt
			r.Matched = true
		}
	}
	h.heard = append(h.heard, contentRecord{contentStart: contentStart, n: n, time: heardTime})
	if len(h.heard) > 120 { // ~2.4 s of history covers any plausible skew
		h.heard = append([]contentRecord(nil), h.heard[len(h.heard)-120:]...)
	}
}
