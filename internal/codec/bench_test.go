package codec

import (
	"math/rand"
	"testing"
)

func benchFrame(seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	f := make([]float64, FrameSamples)
	for i := range f {
		f[i] = 0.25 * rng.NormFloat64()
	}
	return f
}

// BenchmarkEncodeSWB32 measures the steady-state cost of encoding one
// 20 ms frame at the paper's SWB 32 kbps operating point.
func BenchmarkEncodeSWB32(b *testing.B) {
	enc := NewEncoder(SWB32)
	frame := benchFrame(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := enc.Encode(frame); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDecodeSWB32 measures the steady-state cost of decoding one
// 20 ms frame at SWB 32 kbps.
func BenchmarkDecodeSWB32(b *testing.B) {
	enc := NewEncoder(SWB32)
	dec := NewDecoder(SWB32)
	pkt, err := enc.Encode(benchFrame(2))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dec.Decode(pkt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEncodeToSWB32 measures the append-style encoder with a reused
// packet buffer — the zero-allocation path the hub runs per tick.
func BenchmarkEncodeToSWB32(b *testing.B) {
	enc := NewEncoder(SWB32)
	frame := benchFrame(1)
	var pkt []byte
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		if pkt, err = enc.EncodeTo(pkt[:0], frame); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDecodeToSWB32 measures the append-style decoder with a reused
// sample buffer.
func BenchmarkDecodeToSWB32(b *testing.B) {
	enc := NewEncoder(SWB32)
	dec := NewDecoder(SWB32)
	pkt, err := enc.Encode(benchFrame(2))
	if err != nil {
		b.Fatal(err)
	}
	var out []float64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if out, err = dec.DecodeTo(out[:0], pkt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEncodeLossless measures the lossless (loopback-fleet) frame
// encode path.
func BenchmarkEncodeLossless(b *testing.B) {
	enc := NewEncoder(Lossless)
	frame := benchFrame(3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := enc.Encode(frame); err != nil {
			b.Fatal(err)
		}
	}
}
