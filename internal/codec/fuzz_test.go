package codec

import (
	"math"
	"testing"
)

// FuzzDecode feeds arbitrary bytes to the decoder: it must either error or
// return a finite frame, never panic or emit NaN/Inf samples.
func FuzzDecode(f *testing.F) {
	enc := NewEncoder(SWB32)
	pkt, _ := enc.Encode(make([]float64, FrameSamples))
	f.Add(pkt)
	encL := NewEncoder(Lossless)
	pktL, _ := encL.Encode(make([]float64, FrameSamples))
	f.Add(pktL)
	f.Add([]byte{})
	f.Add([]byte{magic, 0x01, 24})
	f.Add([]byte{magic, 0xFF, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		dec := NewDecoder(SWB32)
		out, err := dec.Decode(data)
		if err != nil {
			return
		}
		for _, v := range out {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("non-finite sample from decode")
			}
		}
		// Concealment after any successful decode must also be finite.
		for _, v := range dec.Conceal() {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("non-finite sample from conceal")
			}
		}
	})
}
