package codec

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
)

func allocFrame(seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	f := make([]float64, FrameSamples)
	for i := range f {
		f[i] = 0.5 * rng.NormFloat64()
	}
	return f
}

// TestEncodeToMatchesEncode checks the append-style encoder produces
// byte-identical packets to the allocating API across all profiles.
func TestEncodeToMatchesEncode(t *testing.T) {
	for _, p := range []Profile{Lossless, SWB32, SWB24, SWB24ULL, SWB24Low0} {
		e1, e2 := NewEncoder(p), NewEncoder(p)
		var dst []byte
		for i := 0; i < 5; i++ {
			frame := allocFrame(int64(i))
			want, err := e1.Encode(frame)
			if err != nil {
				t.Fatal(err)
			}
			dst, err = e2.EncodeTo(dst[:0], frame)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(dst, want) {
				t.Fatalf("%s frame %d: EncodeTo differs from Encode", p.Name, i)
			}
		}
	}
}

// TestDecodeToMatchesDecode checks the append-style decoder against the
// allocating API, including concealment.
func TestDecodeToMatchesDecode(t *testing.T) {
	for _, p := range []Profile{Lossless, SWB32, SWB24ULL} {
		enc := NewEncoder(p)
		d1, d2 := NewDecoder(p), NewDecoder(p)
		var dst []float64
		for i := 0; i < 5; i++ {
			pkt, err := enc.Encode(allocFrame(int64(i) + 100))
			if err != nil {
				t.Fatal(err)
			}
			var want []float64
			if i == 3 { // exercise concealment on both decoders
				want = d1.Conceal()
				dst = d2.ConcealTo(dst[:0])
			} else {
				want, err = d1.Decode(pkt)
				if err != nil {
					t.Fatal(err)
				}
				dst, err = d2.DecodeTo(dst[:0], pkt)
				if err != nil {
					t.Fatal(err)
				}
			}
			if len(dst) != len(want) {
				t.Fatalf("%s frame %d: len %d want %d", p.Name, i, len(dst), len(want))
			}
			for j := range want {
				if math.Abs(dst[j]-want[j]) > 1e-12 {
					t.Fatalf("%s frame %d sample %d: got %g want %g", p.Name, i, j, dst[j], want[j])
				}
			}
		}
	}
}

// TestCodecSteadyStateZeroAlloc asserts the per-frame encode/decode path
// allocates nothing once buffers are warm — the property the hub hot path
// depends on.
func TestCodecSteadyStateZeroAlloc(t *testing.T) {
	for _, p := range []Profile{Lossless, SWB32, SWB24ULL} {
		enc := NewEncoder(p)
		dec := NewDecoder(p)
		frame := allocFrame(7)
		var pkt []byte
		var out []float64
		var err error
		// Warm-up: grows dst buffers and concealment scratch.
		for i := 0; i < 3; i++ {
			if pkt, err = enc.EncodeTo(pkt[:0], frame); err != nil {
				t.Fatal(err)
			}
			if out, err = dec.DecodeTo(out[:0], pkt); err != nil {
				t.Fatal(err)
			}
		}
		allocs := testing.AllocsPerRun(20, func() {
			pkt, err = enc.EncodeTo(pkt[:0], frame)
			if err != nil {
				t.Fatal(err)
			}
			out, err = dec.DecodeTo(out[:0], pkt)
			if err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Fatalf("%s: EncodeTo+DecodeTo allocates %v per frame, want 0", p.Name, allocs)
		}
		out = dec.ConcealTo(out[:0]) // warm concealment scratch
		allocs = testing.AllocsPerRun(20, func() {
			out = dec.ConcealTo(out[:0])
		})
		if allocs != 0 {
			t.Fatalf("%s: ConcealTo allocates %v per frame, want 0", p.Name, allocs)
		}
	}
}
