package codec

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"ekho/internal/audio"
	"ekho/internal/dsp"
	"ekho/internal/gamesynth"
)

func snr(clean, coded []float64) float64 {
	n := len(clean)
	if len(coded) < n {
		n = len(coded)
	}
	var sig, noise float64
	for i := 0; i < n; i++ {
		sig += clean[i] * clean[i]
		d := clean[i] - coded[i]
		noise += d * d
	}
	if noise == 0 {
		return math.Inf(1)
	}
	return 10 * math.Log10(sig/noise)
}

func testClip(seconds float64) *audio.Buffer {
	return gamesynth.Generate(gamesynth.Catalog()[0], seconds)
}

func TestLosslessRoundTripExact(t *testing.T) {
	b := testClip(1)
	rt, err := RoundTripAligned(b, Lossless)
	if err != nil {
		t.Fatal(err)
	}
	for i := range rt.Samples {
		if rt.Samples[i] != b.Samples[i] {
			t.Fatalf("lossless mismatch at %d", i)
		}
	}
}

func TestPerfectReconstructionWithoutQuantization(t *testing.T) {
	// With a huge bitrate the transform path itself must be near-perfect
	// (COLA property of the sqrt-Hann window pair).
	p := Profile{Name: "hi", BitrateKbps: 10000, BandwidthHz: 24000, Complexity: 10}
	b := testClip(1)
	rt, err := RoundTripAligned(b, p)
	if err != nil {
		t.Fatal(err)
	}
	s := snr(b.Samples[960:b.Len()-960], rt.Samples[960:b.Len()-960])
	if s < 40 {
		t.Fatalf("transform SNR %g dB, want > 40", s)
	}
}

func TestSNRMonotonicInBitrate(t *testing.T) {
	b := testClip(2)
	profiles := []Profile{
		{Name: "8k", BitrateKbps: 8, BandwidthHz: 12000, Complexity: 4},
		SWB24,
		SWB32,
		{Name: "96k", BitrateKbps: 96, BandwidthHz: 12000, Complexity: 4},
	}
	var last float64 = math.Inf(-1)
	for _, p := range profiles {
		rt, err := RoundTripAligned(b, p)
		if err != nil {
			t.Fatal(err)
		}
		s := snr(b.Samples[960:b.Len()-960], rt.Samples[960:b.Len()-960])
		if s < last-1 { // allow 1 dB tolerance for allocation noise
			t.Fatalf("SNR not monotone: %s gives %g after %g", p.Name, s, last)
		}
		if s > last {
			last = s
		}
	}
}

func TestBandwidthLimiting(t *testing.T) {
	// A 15 kHz tone must be killed by SWB (12 kHz) profiles.
	tone := audio.Tone(audio.SampleRate, 15000, 1, 0.5)
	rt, err := RoundTripAligned(tone, SWB32)
	if err != nil {
		t.Fatal(err)
	}
	if p := dsp.BandPower(rt.Samples, audio.SampleRate, 14000, 16000); p > 1e-4 {
		t.Fatalf("15 kHz tone survived SWB: power %g", p)
	}
	// But an 9 kHz tone (marker band) must survive.
	tone9 := audio.Tone(audio.SampleRate, 9000, 1, 0.5)
	rt9, err := RoundTripAligned(tone9, SWB32)
	if err != nil {
		t.Fatal(err)
	}
	if p := dsp.BandPower(rt9.Samples[4800:43200], audio.SampleRate, 8500, 9500); p < 0.05 {
		t.Fatalf("9 kHz tone destroyed by SWB: power %g", p)
	}
}

func TestMarkerBandDegradesWithHarsherSettings(t *testing.T) {
	// Noise in the marker band (6-12 kHz) under game audio: harsher
	// encodes must add more error energy in that band.
	rng := rand.New(rand.NewSource(3))
	clip := testClip(2)
	marker := audio.NewBuffer(audio.SampleRate, clip.Len())
	bp := dsp.BandPass(6000, 12000, audio.SampleRate, 255)
	noise := make([]float64, clip.Len())
	for i := range noise {
		noise[i] = rng.NormFloat64() * 0.02
	}
	copy(marker.Samples, bp.Apply(noise))
	mixed := audio.Mix(clip, marker)

	errBand := func(p Profile) float64 {
		rt, err := RoundTripAligned(mixed, p)
		if err != nil {
			t.Fatal(err)
		}
		diff := make([]float64, mixed.Len())
		for i := range diff {
			diff[i] = rt.Samples[i] - mixed.Samples[i]
		}
		return dsp.BandPower(diff[960:len(diff)-960], audio.SampleRate, 6000, 12000)
	}
	e32 := errBand(SWB32)
	e24 := errBand(SWB24)
	if e24 < e32 {
		t.Fatalf("24 kbps should distort marker band at least as much as 32 kbps: %g vs %g", e24, e32)
	}
}

func TestLowComplexityWorse(t *testing.T) {
	b := testClip(2)
	// At a comfortable bitrate both allocators are near-transparent; the
	// water-filling advantage shows when bits are scarce.
	lo4 := Profile{Name: "8k c4", BitrateKbps: 8, BandwidthHz: 12000, Complexity: 4}
	lo0 := Profile{Name: "8k c0", BitrateKbps: 8, BandwidthHz: 12000, Complexity: 0}
	rtHi, err := RoundTripAligned(b, lo4)
	if err != nil {
		t.Fatal(err)
	}
	rtLo, err := RoundTripAligned(b, lo0)
	if err != nil {
		t.Fatal(err)
	}
	sHi := snr(b.Samples[960:b.Len()-960], rtHi.Samples[960:b.Len()-960])
	sLo := snr(b.Samples[960:b.Len()-960], rtLo.Samples[960:b.Len()-960])
	if sLo > sHi+0.1 {
		t.Fatalf("complexity 0 should not beat complexity 4 at 8 kbps: %g vs %g dB", sLo, sHi)
	}
	// And at the paper's 24 kbps the two must at least be comparable.
	rt24Hi, _ := RoundTripAligned(b, SWB24)
	rt24Lo, _ := RoundTripAligned(b, SWB24Low0)
	s24Hi := snr(b.Samples[960:b.Len()-960], rt24Hi.Samples[960:b.Len()-960])
	s24Lo := snr(b.Samples[960:b.Len()-960], rt24Lo.Samples[960:b.Len()-960])
	if s24Lo > s24Hi+0.5 {
		t.Fatalf("complexity 0 beats complexity 4 at 24 kbps by too much: %g vs %g dB", s24Lo, s24Hi)
	}
}

func TestEncodeRejectsBadFrame(t *testing.T) {
	enc := NewEncoder(SWB32)
	if _, err := enc.Encode(make([]float64, 100)); err == nil {
		t.Fatal("short frame should error")
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	dec := NewDecoder(SWB32)
	if _, err := dec.Decode(nil); err == nil {
		t.Fatal("nil packet")
	}
	if _, err := dec.Decode([]byte{1, 2, 3, 4}); err == nil {
		t.Fatal("bad magic")
	}
	enc := NewEncoder(SWB32)
	pkt, err := enc.Encode(make([]float64, FrameSamples))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dec.Decode(pkt[:len(pkt)/2]); err == nil {
		t.Fatal("truncated packet should error")
	}
}

func TestStreamingDelayIsOneHop(t *testing.T) {
	// An impulse fed to the streaming encoder appears Delay() samples
	// later in the decoded stream.
	p := SWB32
	enc := NewEncoder(p)
	dec := NewDecoder(p)
	in := audio.NewBuffer(audio.SampleRate, 4*FrameSamples)
	in.Samples[1000] = 1
	out := audio.NewBuffer(audio.SampleRate, 0)
	for _, f := range in.Frames(FrameSamples) {
		pkt, err := enc.Encode(f)
		if err != nil {
			t.Fatal(err)
		}
		d, err := dec.Decode(pkt)
		if err != nil {
			t.Fatal(err)
		}
		out.AppendFrame(d)
	}
	peak := dsp.ArgMaxAbs(out.Samples)
	want := 1000 + p.Delay()
	if abs(peak-want) > 2 {
		t.Fatalf("impulse at %d, want ~%d", peak, want)
	}
}

func TestConcealProducesDecayingOutput(t *testing.T) {
	p := SWB32
	enc := NewEncoder(p)
	dec := NewDecoder(p)
	tone := audio.Tone(audio.SampleRate, 2000, 0.2, 0.5)
	for _, f := range tone.Frames(FrameSamples) {
		pkt, _ := enc.Encode(f)
		if _, err := dec.Decode(pkt); err != nil {
			t.Fatal(err)
		}
	}
	c1 := dec.Conceal()
	c2 := dec.Conceal()
	if len(c1) != FrameSamples || len(c2) != FrameSamples {
		t.Fatalf("conceal lengths %d %d", len(c1), len(c2))
	}
	p1 := dsp.MeanPower(c1)
	p2 := dsp.MeanPower(c2)
	if p1 == 0 {
		t.Fatal("first concealment should carry energy")
	}
	if p2 >= p1 {
		t.Fatalf("concealment should decay: %g then %g", p1, p2)
	}
}

func TestConcealBeforeAnyDecode(t *testing.T) {
	dec := NewDecoder(SWB32)
	c := dec.Conceal()
	if len(c) != FrameSamples {
		t.Fatalf("len %d", len(c))
	}
	for _, v := range c {
		if v != 0 {
			t.Fatal("conceal with no history should be silence")
		}
	}
}

func TestULLModeRoundTrips(t *testing.T) {
	b := testClip(1)
	rt, err := RoundTripAligned(b, SWB24ULL)
	if err != nil {
		t.Fatal(err)
	}
	if rt.Len() != b.Len() {
		t.Fatalf("len %d want %d", rt.Len(), b.Len())
	}
	s := snr(b.Samples[960:b.Len()-960], rt.Samples[960:b.Len()-960])
	if s < 3 {
		t.Fatalf("ULL SNR %g dB too low to be usable", s)
	}
}

func TestRoundTripPropertyNoNaNs(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		b := audio.NewBuffer(audio.SampleRate, 3*FrameSamples)
		for i := range b.Samples {
			b.Samples[i] = r.Float64()*2 - 1
		}
		rt, err := RoundTrip(b, SWB24)
		if err != nil {
			return false
		}
		for _, v := range rt.Samples {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return false
			}
		}
		return rt.Len() == b.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestMakeBandsCoverage(t *testing.T) {
	// MDCT with hop 960: 12 kHz of bandwidth covers the first 480 bins.
	bands := makeBands(960, 12000)
	maxBin := int(12000.0 / (audio.SampleRate / 2) * 960)
	if bands[0].lo != 0 {
		t.Fatal("first band must start at DC")
	}
	for i := 1; i < len(bands); i++ {
		if bands[i].lo != bands[i-1].hi {
			t.Fatalf("gap between bands %d and %d", i-1, i)
		}
	}
	if bands[len(bands)-1].hi != maxBin {
		t.Fatalf("last band ends at %d want %d", bands[len(bands)-1].hi, maxBin)
	}
}

func abs(a int) int {
	if a < 0 {
		return -a
	}
	return a
}

func BenchmarkEncodeFrame(b *testing.B) {
	enc := NewEncoder(SWB32)
	frame := make([]float64, FrameSamples)
	rng := rand.New(rand.NewSource(1))
	for i := range frame {
		frame[i] = rng.NormFloat64() * 0.1
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := enc.Encode(frame); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRoundTrip1s(b *testing.B) {
	clip := testClip(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RoundTrip(clip, SWB32); err != nil {
			b.Fatal(err)
		}
	}
}
