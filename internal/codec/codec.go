// Package codec implements the lossy audio codec substrate that stands in
// for OPUS in the paper's pipeline (§6.3: "OPUS compression scheme with
// 32 kbps of bitrate budget, super-wide-band mode, a level 4 search
// complexity and application set to lowdelay").
//
// Real OPUS is a large, patented hybrid codec; re-implementing its bitstream
// is out of scope and unnecessary — what Ekho cares about is that the chat
// uplink is *lossy*, *band-limited* and that harsher settings deteriorate
// the 6-12 kHz marker band. This codec reproduces those properties with a
// windowed-transform design:
//
//   - 20 ms frames (960 samples at 48 kHz), one-frame algorithmic delay;
//   - sine-windowed 50%-overlap MDCT analysis/synthesis with time-domain
//     alias cancellation — the same transform family as CELT/AAC; perfect
//     reconstruction when quantization is disabled;
//   - bandwidth limiting (SWB = 12 kHz, like OPUS super-wide-band);
//   - per-band scalar quantization whose step size follows the bitrate
//     budget, with complexity-dependent bit allocation (high complexity
//     allocates bits by band energy, low complexity allocates uniformly);
//   - low-delay mode trades frequency resolution for latency like OPUS's
//     "lowdelay" application, further hurting the marker band.
//
// The wire format is deliberately simple (per-band float32 scales plus
// packed indices); the *configured* bitrate drives distortion rather than
// the literal packet size. See DESIGN.md for the substitution rationale.
package codec

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"ekho/internal/audio"
	"ekho/internal/dsp"
)

// Profile selects the codec operating point.
type Profile struct {
	Name        string
	Lossless    bool    // bypass quantization entirely (paper's "No compression")
	BitrateKbps float64 // bit budget driving quantization noise
	BandwidthHz float64 // hard spectral cutoff (SWB = 12 kHz)
	Complexity  int     // 0-10; >=4 enables energy-driven bit allocation
	LowDelay    bool    // halve the transform length ("application lowdelay")
}

// The operating points used in the paper's evaluation (§6.3, Appendix C).
var (
	Lossless  = Profile{Name: "No compression", Lossless: true, BandwidthHz: 24000}
	SWB32     = Profile{Name: "OPUS-like SWB 32kbps", BitrateKbps: 32, BandwidthHz: 12000, Complexity: 4}
	SWB24     = Profile{Name: "OPUS-like SWB 24kbps", BitrateKbps: 24, BandwidthHz: 12000, Complexity: 4}
	SWB24ULL  = Profile{Name: "OPUS-like SWB 24kbps ULL", BitrateKbps: 24, BandwidthHz: 12000, Complexity: 4, LowDelay: true}
	SWB24Low0 = Profile{Name: "OPUS-like SWB 24kbps c0", BitrateKbps: 24, BandwidthHz: 12000, Complexity: 0}
)

// FrameSamples is the codec frame size: 20 ms at 48 kHz.
const FrameSamples = audio.FrameSamples

const (
	numBands = 24 // roughly Bark-spaced quantization bands
	magic    = 0xEC
	// blockTag identifies the MDCT block format in packets.
	blockTag = 0x02
)

// ErrBadPacket reports a corrupt or truncated encoded frame.
var ErrBadPacket = errors.New("codec: bad packet")

// blockLen returns the transform block length for the profile: two frames
// (50% overlap) normally, one frame in low-delay mode.
func (p Profile) blockLen() int {
	if p.LowDelay {
		return FrameSamples
	}
	return 2 * FrameSamples
}

// hop returns the analysis hop (always half the block).
func (p Profile) hop() int { return p.blockLen() / 2 }

// Encoder compresses a 48 kHz mono stream frame by frame.
type Encoder struct {
	prof    Profile
	window  []float64
	history []float64 // last hop samples, prepended to each block
	nBins   int       // MDCT bins per block (= hop)
	bands   []bandDef
}

// Decoder reconstructs the stream, maintaining overlap-add state.
type Decoder struct {
	prof    Profile
	window  []float64
	overlap []float64 // tail of the previous block awaiting summation
	nBins   int
	bands   []bandDef
	last    []float64 // last decoded spectrum magnitudes for concealment
	lastOK  bool
}

type bandDef struct{ lo, hi int } // bin range [lo, hi)

// NewEncoder returns an encoder for the profile.
func NewEncoder(p Profile) *Encoder {
	bl := p.blockLen()
	return &Encoder{
		prof:    p,
		window:  sineWindow(bl),
		history: make([]float64, p.hop()),
		nBins:   p.hop(),
		bands:   makeBands(p.hop(), p.BandwidthHz),
	}
}

// NewDecoder returns a decoder for the profile.
func NewDecoder(p Profile) *Decoder {
	return &Decoder{
		prof:    p,
		window:  sineWindow(p.blockLen()),
		overlap: make([]float64, p.hop()),
		nBins:   p.hop(),
		bands:   makeBands(p.hop(), p.BandwidthHz),
	}
}

// sineWindow is the MDCT sine window sin(π(i+½)/L): symmetric and
// Princen-Bradley compliant, so analysis+synthesis windowing with 50%
// overlap-add cancels the MDCT's time-domain aliasing exactly.
func sineWindow(l int) []float64 {
	w := make([]float64, l)
	for i := range w {
		w[i] = math.Sin(math.Pi * (float64(i) + 0.5) / float64(l))
	}
	return w
}

// makeBands splits the usable MDCT spectrum into roughly logarithmic bands
// up to the bandwidth cutoff. With hop-size N, MDCT bin k covers
// frequencies around (k+½)·fs/(2N).
func makeBands(nBins int, bandwidthHz float64) []bandDef {
	maxBin := int(bandwidthHz / (audio.SampleRate / 2) * float64(nBins))
	if maxBin > nBins {
		maxBin = nBins
	}
	bands := make([]bandDef, 0, numBands)
	// Edges grow geometrically from ~100 Hz, first band covers DC upward.
	prev := 0
	for b := 1; b <= numBands; b++ {
		frac := float64(b) / numBands
		edge := int(math.Pow(float64(maxBin), frac) * math.Pow(4, 1-frac))
		if edge <= prev {
			edge = prev + 1
		}
		if edge > maxBin {
			edge = maxBin
		}
		bands = append(bands, bandDef{prev, edge})
		prev = edge
		if prev >= maxBin {
			break
		}
	}
	if prev < maxBin {
		bands = append(bands, bandDef{prev, maxBin})
	}
	return bands
}

// Encode compresses one 960-sample frame and returns the packet bytes.
// The stream has one hop of algorithmic delay: packet i reconstructs the
// signal span ending at frame i's start (see Decoder.Decode).
func (e *Encoder) Encode(frame []float64) ([]byte, error) {
	if len(frame) != FrameSamples {
		return nil, fmt.Errorf("codec: frame must be %d samples, got %d", FrameSamples, len(frame))
	}
	if e.prof.Lossless {
		return e.encodeLossless(frame), nil
	}
	hop := e.prof.hop()
	bl := e.prof.blockLen()
	// In low-delay mode (hop 480) each 960-sample frame spans two blocks.
	var packets [][]byte
	offset := 0
	for offset+hop <= len(frame) {
		block := make([]float64, bl)
		copy(block, e.history)
		copy(block[hop:], frame[offset:offset+hop])
		copy(e.history, frame[offset:offset+hop])
		packets = append(packets, e.encodeBlock(block))
		offset += hop
	}
	return joinPackets(packets), nil
}

func (e *Encoder) encodeLossless(frame []float64) []byte {
	out := make([]byte, 3+8*len(frame))
	out[0] = magic
	out[1] = 0xFF // lossless tag
	out[2] = 0
	for i, v := range frame {
		binary.LittleEndian.PutUint64(out[3+8*i:], math.Float64bits(v))
	}
	return out
}

// encodeBlock windows, MDCT-transforms and quantizes one block.
func (e *Encoder) encodeBlock(block []float64) []byte {
	windowed := make([]float64, len(block))
	for i := range block {
		windowed[i] = block[i] * e.window[i]
	}
	spec := dsp.MDCT(windowed)

	bits := e.allocateBits(spec)
	// Serialize: magic, tag, band count, then per band: scale f32 +
	// bits u8 + one int16 index per MDCT coefficient.
	out := []byte{magic, blockTag, byte(len(e.bands))}
	for bi, bd := range e.bands {
		scale := bandScale(spec, bd)
		levels := float64(int(1) << bits[bi])
		out = binary.LittleEndian.AppendUint32(out, math.Float32bits(float32(scale)))
		out = append(out, byte(bits[bi]))
		for bin := bd.lo; bin < bd.hi; bin++ {
			out = binary.LittleEndian.AppendUint16(out, uint16(quantize(spec[bin], scale, levels)))
		}
	}
	return out
}

// allocateBits distributes the per-block bit budget over bands. High
// complexity allocates proportionally to log band energy (a crude
// perceptual water-filling); low complexity spreads bits uniformly, wasting
// budget on empty bands — this is what makes low-complexity encodes hurt
// the sparse 6-12 kHz marker band more.
func (e *Encoder) allocateBits(spec []float64) []int {
	hopSec := float64(e.prof.hop()) / audio.SampleRate
	// entropyEfficiency models the gap between our raw scalar indices and
	// a real codec's entropy-coded bitstream: OPUS squeezes roughly this
	// factor more fidelity out of the same bit budget than uncoded scalar
	// quantization, so the *perceived* operating point of "32 kbps SWB"
	// corresponds to this many raw index bits.
	const entropyEfficiency = 6.0
	budget := e.prof.BitrateKbps * 1000 * hopSec * entropyEfficiency
	// Reserve header overhead per band.
	budget -= float64(len(e.bands) * 40)
	if budget < 0 {
		budget = 0
	}
	var totalBins int
	for _, bd := range e.bands {
		totalBins += bd.hi - bd.lo
	}
	bits := make([]int, len(e.bands))
	if totalBins == 0 {
		return bits
	}
	if e.prof.Complexity < 4 {
		per := int(budget / float64(totalBins))
		for i := range bits {
			bits[i] = clampBits(per)
		}
		return bits
	}
	// Reverse water-filling (the rate-distortion solution for scalar
	// quantizers): every band gets base bits plus half the log2 of its
	// per-bin energy relative to the geometric mean, so loud bands get
	// finer steps without starving wide quiet ones.
	logE := make([]float64, len(e.bands))
	var meanLogE float64
	for i, bd := range e.bands {
		var energy float64
		for bin := bd.lo; bin < bd.hi; bin++ {
			energy += spec[bin] * spec[bin]
		}
		perBin := energy/float64(bd.hi-bd.lo) + 1e-12
		logE[i] = 0.5 * math.Log2(perBin)
		meanLogE += logE[i] * float64(bd.hi-bd.lo)
	}
	meanLogE /= float64(totalBins)
	base := budget / float64(totalBins)
	for i := range e.bands {
		bits[i] = clampBits(int(base + logE[i] - meanLogE + 0.5))
	}
	return bits
}

func clampBits(b int) int {
	if b < 1 {
		return 1
	}
	if b > 14 {
		return 14
	}
	return b
}

func bandScale(spec []float64, bd bandDef) float64 {
	var peak float64
	for bin := bd.lo; bin < bd.hi; bin++ {
		if a := math.Abs(spec[bin]); a > peak {
			peak = a
		}
	}
	if peak == 0 {
		return 1e-12
	}
	return peak
}

// quantize maps v in [-scale, scale] to a signed index with the given
// number of levels (per polarity).
func quantize(v, scale, levels float64) int16 {
	q := math.Round(v / scale * (levels - 1))
	if q > 32767 {
		q = 32767
	}
	if q < -32768 {
		q = -32768
	}
	return int16(q)
}

func dequantize(q int16, scale, levels float64) float64 {
	return float64(q) / (levels - 1) * scale
}

// joinPackets concatenates sub-block packets with u16 length prefixes.
func joinPackets(pkts [][]byte) []byte {
	if len(pkts) == 1 {
		return pkts[0]
	}
	var out []byte
	for _, p := range pkts {
		out = binary.LittleEndian.AppendUint16(out, uint16(len(p)))
		out = append(out, p...)
	}
	return out
}

// Decode reconstructs one 960-sample frame from a packet. Because of the
// 50% overlap the output is delayed by one hop relative to the input fed
// to Encode — callers that need sample-exact alignment should use
// RoundTripAligned.
func (d *Decoder) Decode(pkt []byte) ([]float64, error) {
	if len(pkt) >= 3 && pkt[0] == magic && pkt[1] == 0xFF {
		return d.decodeLossless(pkt)
	}
	if d.prof.LowDelay {
		// Two sub-packets with length prefixes.
		out := make([]float64, 0, FrameSamples)
		rest := pkt
		for len(out) < FrameSamples {
			if len(rest) < 2 {
				return nil, ErrBadPacket
			}
			n := int(binary.LittleEndian.Uint16(rest))
			rest = rest[2:]
			if len(rest) < n {
				return nil, ErrBadPacket
			}
			blockOut, err := d.decodeBlock(rest[:n])
			if err != nil {
				return nil, err
			}
			out = append(out, blockOut...)
			rest = rest[n:]
		}
		return out, nil
	}
	if len(pkt) < 3 || pkt[0] != magic {
		return nil, ErrBadPacket
	}
	return d.decodeBlock(pkt)
}

func (d *Decoder) decodeLossless(pkt []byte) ([]float64, error) {
	n := (len(pkt) - 3) / 8
	if n != FrameSamples {
		return nil, ErrBadPacket
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(pkt[3+8*i:]))
	}
	d.lastOK = true
	return out, nil
}

// decodeBlock inverts one block and returns hop samples of finished output.
func (d *Decoder) decodeBlock(pkt []byte) ([]float64, error) {
	if len(pkt) < 3 || pkt[0] != magic || pkt[1] != blockTag {
		return nil, ErrBadPacket
	}
	nb := int(pkt[2])
	if nb != len(d.bands) {
		return nil, fmt.Errorf("%w: band count %d want %d", ErrBadPacket, nb, len(d.bands))
	}
	spec := make([]float64, d.nBins)
	pos := 3
	for _, bd := range d.bands {
		if pos+5 > len(pkt) {
			return nil, ErrBadPacket
		}
		scale := float64(math.Float32frombits(binary.LittleEndian.Uint32(pkt[pos:])))
		bitCount := int(pkt[pos+4])
		pos += 5
		levels := float64(int(1) << clampBits(bitCount))
		for bin := bd.lo; bin < bd.hi; bin++ {
			if pos+2 > len(pkt) {
				return nil, ErrBadPacket
			}
			spec[bin] = dequantize(int16(binary.LittleEndian.Uint16(pkt[pos:])), scale, levels)
			pos += 2
		}
	}
	return d.synthesize(spec), nil
}

// synthesize inverts the spectrum (IMDCT), windows and overlap-adds,
// returning the completed hop of output samples.
func (d *Decoder) synthesize(spec []float64) []float64 {
	d.rememberSpectrum(spec)
	td := dsp.IMDCT(spec)
	hop := d.prof.hop()
	out := make([]float64, hop)
	for i := 0; i < hop; i++ {
		out[i] = d.overlap[i] + td[i]*d.window[i]
	}
	for i := 0; i < hop; i++ {
		d.overlap[i] = td[hop+i] * d.window[hop+i]
	}
	return out
}

func (d *Decoder) rememberSpectrum(spec []float64) {
	if d.last == nil {
		d.last = make([]float64, len(spec))
	}
	for i, c := range spec {
		d.last[i] = math.Abs(c)
	}
	d.lastOK = true
}

// Conceal produces a packet-loss-concealment frame: the previous block's
// spectrum magnitudes with decayed energy (a standard PLC approximation).
// Returns silence if no frame was ever decoded.
func (d *Decoder) Conceal() []float64 {
	hop := d.prof.hop()
	framesPerPacket := FrameSamples / hop
	out := make([]float64, 0, FrameSamples)
	for f := 0; f < framesPerPacket; f++ {
		if !d.lastOK || d.last == nil {
			chunk := make([]float64, hop)
			for i := 0; i < hop; i++ {
				chunk[i] = d.overlap[i]
				d.overlap[i] = 0
			}
			out = append(out, chunk...)
			continue
		}
		spec := make([]float64, len(d.last))
		for i, m := range d.last {
			spec[i] = m * 0.5 // decayed, sign-flattened repeat
		}
		out = append(out, d.synthesize(spec)...)
		for i := range d.last {
			d.last[i] *= 0.5
		}
	}
	return out
}

// Delay returns the codec's algorithmic delay in samples (one hop).
func (p Profile) Delay() int {
	if p.Lossless {
		return 0
	}
	return p.hop()
}

// RoundTrip encodes and decodes a whole buffer through the profile,
// returning a buffer of the same length including the algorithmic delay
// (output is shifted later by Profile.Delay() samples).
func RoundTrip(b *audio.Buffer, p Profile) (*audio.Buffer, error) {
	enc := NewEncoder(p)
	dec := NewDecoder(p)
	out := audio.NewBuffer(b.Rate, 0)
	for _, frame := range b.Frames(FrameSamples) {
		pkt, err := enc.Encode(frame)
		if err != nil {
			return nil, err
		}
		dc, err := dec.Decode(pkt)
		if err != nil {
			return nil, err
		}
		out.AppendFrame(dc)
	}
	out.Samples = out.Samples[:min(len(out.Samples), b.Len())]
	return out, nil
}

// RoundTripAligned is RoundTrip with the algorithmic delay removed, so the
// output is sample-aligned with the input (used by the offline experiment
// pipelines where codec latency is accounted separately).
func RoundTripAligned(b *audio.Buffer, p Profile) (*audio.Buffer, error) {
	padded := b.Clone()
	padded.Samples = append(padded.Samples, make([]float64, FrameSamples)...)
	rt, err := RoundTrip(padded, p)
	if err != nil {
		return nil, err
	}
	d := p.Delay()
	end := d + b.Len()
	if end > rt.Len() {
		end = rt.Len()
	}
	return audio.FromSamples(b.Rate, rt.Samples[d:end]), nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
