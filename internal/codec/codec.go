// Package codec implements the lossy audio codec substrate that stands in
// for OPUS in the paper's pipeline (§6.3: "OPUS compression scheme with
// 32 kbps of bitrate budget, super-wide-band mode, a level 4 search
// complexity and application set to lowdelay").
//
// Real OPUS is a large, patented hybrid codec; re-implementing its bitstream
// is out of scope and unnecessary — what Ekho cares about is that the chat
// uplink is *lossy*, *band-limited* and that harsher settings deteriorate
// the 6-12 kHz marker band. This codec reproduces those properties with a
// windowed-transform design:
//
//   - 20 ms frames (960 samples at 48 kHz), one-frame algorithmic delay;
//   - sine-windowed 50%-overlap MDCT analysis/synthesis with time-domain
//     alias cancellation — the same transform family as CELT/AAC; perfect
//     reconstruction when quantization is disabled;
//   - bandwidth limiting (SWB = 12 kHz, like OPUS super-wide-band);
//   - per-band scalar quantization whose step size follows the bitrate
//     budget, with complexity-dependent bit allocation (high complexity
//     allocates bits by band energy, low complexity allocates uniformly);
//   - low-delay mode trades frequency resolution for latency like OPUS's
//     "lowdelay" application, further hurting the marker band.
//
// The wire format is deliberately simple (per-band float32 scales plus
// packed indices); the *configured* bitrate drives distortion rather than
// the literal packet size. See DESIGN.md for the substitution rationale.
//
// Encoder and Decoder own MDCT plans and scratch buffers, so the
// steady-state EncodeTo/DecodeTo path — one call per 20 ms frame per hub
// session — allocates nothing once the caller reuses its packet and sample
// buffers.
package codec

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"ekho/internal/audio"
	"ekho/internal/dsp"
)

// Profile selects the codec operating point.
type Profile struct {
	Name        string
	Lossless    bool    // bypass quantization entirely (paper's "No compression")
	BitrateKbps float64 // bit budget driving quantization noise
	BandwidthHz float64 // hard spectral cutoff (SWB = 12 kHz)
	Complexity  int     // 0-10; >=4 enables energy-driven bit allocation
	LowDelay    bool    // halve the transform length ("application lowdelay")
}

// The operating points used in the paper's evaluation (§6.3, Appendix C).
var (
	Lossless  = Profile{Name: "No compression", Lossless: true, BandwidthHz: 24000}
	SWB32     = Profile{Name: "OPUS-like SWB 32kbps", BitrateKbps: 32, BandwidthHz: 12000, Complexity: 4}
	SWB24     = Profile{Name: "OPUS-like SWB 24kbps", BitrateKbps: 24, BandwidthHz: 12000, Complexity: 4}
	SWB24ULL  = Profile{Name: "OPUS-like SWB 24kbps ULL", BitrateKbps: 24, BandwidthHz: 12000, Complexity: 4, LowDelay: true}
	SWB24Low0 = Profile{Name: "OPUS-like SWB 24kbps c0", BitrateKbps: 24, BandwidthHz: 12000, Complexity: 0}
)

// FrameSamples is the codec frame size: 20 ms at 48 kHz.
const FrameSamples = audio.FrameSamples

const (
	numBands = 24 // roughly Bark-spaced quantization bands
	magic    = 0xEC
	// blockTag identifies the MDCT block format in packets.
	blockTag = 0x02
)

// ErrBadPacket reports a corrupt or truncated encoded frame.
var ErrBadPacket = errors.New("codec: bad packet")

// blockLen returns the transform block length for the profile: two frames
// (50% overlap) normally, one frame in low-delay mode.
func (p Profile) blockLen() int {
	if p.LowDelay {
		return FrameSamples
	}
	return 2 * FrameSamples
}

// hop returns the analysis hop (always half the block).
func (p Profile) hop() int { return p.blockLen() / 2 }

// Encoder compresses a 48 kHz mono stream frame by frame.
type Encoder struct {
	prof    Profile
	window  []float64
	history []float64 // last hop samples, prepended to each block
	nBins   int       // MDCT bins per block (= hop)
	bands   []bandDef

	mdct  *dsp.MDCTPlan
	block []float64 // windowed analysis block scratch
	spec  []float64 // MDCT spectrum scratch
	bits  []int     // per-band bit allocation scratch
	logE  []float64 // per-band log-energy scratch
}

// Decoder reconstructs the stream, maintaining overlap-add state.
type Decoder struct {
	prof    Profile
	window  []float64
	overlap []float64 // tail of the previous block awaiting summation
	nBins   int
	bands   []bandDef
	last    []float64 // last decoded spectrum magnitudes for concealment
	lastOK  bool

	mdct  *dsp.MDCTPlan
	spec  []float64 // dequantized spectrum scratch
	td    []float64 // IMDCT time-domain scratch
	cspec []float64 // concealment spectrum scratch
}

type bandDef struct{ lo, hi int } // bin range [lo, hi)

// NewEncoder returns an encoder for the profile.
func NewEncoder(p Profile) *Encoder {
	bl := p.blockLen()
	bands := makeBands(p.hop(), p.BandwidthHz)
	return &Encoder{
		prof:    p,
		window:  sineWindow(bl),
		history: make([]float64, p.hop()),
		nBins:   p.hop(),
		bands:   bands,
		mdct:    dsp.NewMDCTPlan(p.hop()),
		block:   make([]float64, bl),
		spec:    make([]float64, p.hop()),
		bits:    make([]int, len(bands)),
		logE:    make([]float64, len(bands)),
	}
}

// NewDecoder returns a decoder for the profile.
func NewDecoder(p Profile) *Decoder {
	return &Decoder{
		prof:    p,
		window:  sineWindow(p.blockLen()),
		overlap: make([]float64, p.hop()),
		nBins:   p.hop(),
		bands:   makeBands(p.hop(), p.BandwidthHz),
		mdct:    dsp.NewMDCTPlan(p.hop()),
		spec:    make([]float64, p.hop()),
	}
}

// sineWindow is the MDCT sine window sin(π(i+½)/L): symmetric and
// Princen-Bradley compliant, so analysis+synthesis windowing with 50%
// overlap-add cancels the MDCT's time-domain aliasing exactly.
func sineWindow(l int) []float64 {
	w := make([]float64, l)
	for i := range w {
		w[i] = math.Sin(math.Pi * (float64(i) + 0.5) / float64(l))
	}
	return w
}

// makeBands splits the usable MDCT spectrum into roughly logarithmic bands
// up to the bandwidth cutoff. With hop-size N, MDCT bin k covers
// frequencies around (k+½)·fs/(2N).
func makeBands(nBins int, bandwidthHz float64) []bandDef {
	maxBin := int(bandwidthHz / (audio.SampleRate / 2) * float64(nBins))
	if maxBin > nBins {
		maxBin = nBins
	}
	bands := make([]bandDef, 0, numBands)
	// Edges grow geometrically from ~100 Hz, first band covers DC upward.
	prev := 0
	for b := 1; b <= numBands; b++ {
		frac := float64(b) / numBands
		edge := int(math.Pow(float64(maxBin), frac) * math.Pow(4, 1-frac))
		if edge <= prev {
			edge = prev + 1
		}
		if edge > maxBin {
			edge = maxBin
		}
		bands = append(bands, bandDef{prev, edge})
		prev = edge
		if prev >= maxBin {
			break
		}
	}
	if prev < maxBin {
		bands = append(bands, bandDef{prev, maxBin})
	}
	return bands
}

// Encode compresses one 960-sample frame and returns the packet bytes.
// The stream has one hop of algorithmic delay: packet i reconstructs the
// signal span ending at frame i's start (see Decoder.Decode).
func (e *Encoder) Encode(frame []float64) ([]byte, error) {
	return e.EncodeTo(nil, frame)
}

// EncodeTo is Encode appending the packet to dst and returning the extended
// slice. With a reused dst the steady-state path allocates nothing.
func (e *Encoder) EncodeTo(dst []byte, frame []float64) ([]byte, error) {
	if len(frame) != FrameSamples {
		return dst, fmt.Errorf("codec: frame must be %d samples, got %d", FrameSamples, len(frame))
	}
	if e.prof.Lossless {
		return e.appendLossless(dst, frame), nil
	}
	hop := e.prof.hop()
	bl := e.prof.blockLen()
	prefixed := hop < FrameSamples // low-delay: two length-prefixed sub-blocks
	for offset := 0; offset+hop <= len(frame); offset += hop {
		copy(e.block, e.history)
		copy(e.block[hop:], frame[offset:offset+hop])
		copy(e.history, frame[offset:offset+hop])
		for i := 0; i < bl; i++ {
			e.block[i] *= e.window[i]
		}
		if prefixed {
			// u16 length placeholder, backfilled after the block is written.
			at := len(dst)
			dst = append(dst, 0, 0)
			dst = e.appendBlock(dst)
			binary.LittleEndian.PutUint16(dst[at:], uint16(len(dst)-at-2))
		} else {
			dst = e.appendBlock(dst)
		}
	}
	return dst, nil
}

func (e *Encoder) appendLossless(dst []byte, frame []float64) []byte {
	need := 3 + 8*len(frame)
	dst = ensureCap(dst, need)
	n := len(dst)
	dst = dst[:n+need]
	dst[n], dst[n+1], dst[n+2] = magic, 0xFF, 0
	for i, v := range frame {
		binary.LittleEndian.PutUint64(dst[n+3+8*i:], math.Float64bits(v))
	}
	return dst
}

// ensureCap grows dst's spare capacity to at least extra bytes in a single
// allocation, so the append-style serializers don't pay repeated doubling
// on a cold buffer.
func ensureCap(dst []byte, extra int) []byte {
	if cap(dst)-len(dst) >= extra {
		return dst
	}
	nd := make([]byte, len(dst), len(dst)+extra)
	copy(nd, dst)
	return nd
}

// appendBlock MDCT-transforms and quantizes the windowed block scratch,
// appending the serialized bytes to dst.
func (e *Encoder) appendBlock(dst []byte) []byte {
	blockBytes := 3
	for _, bd := range e.bands {
		blockBytes += 5 + 2*(bd.hi-bd.lo)
	}
	dst = ensureCap(dst, blockBytes)
	e.spec = e.mdct.Forward(e.spec, e.block)

	bits := e.allocateBits(e.spec)
	// Serialize: magic, tag, band count, then per band: scale f32 +
	// bits u8 + one int16 index per MDCT coefficient.
	dst = append(dst, magic, blockTag, byte(len(e.bands)))
	for bi, bd := range e.bands {
		scale := bandScale(e.spec, bd)
		levels := float64(int(1) << bits[bi])
		dst = binary.LittleEndian.AppendUint32(dst, math.Float32bits(float32(scale)))
		dst = append(dst, byte(bits[bi]))
		for bin := bd.lo; bin < bd.hi; bin++ {
			dst = binary.LittleEndian.AppendUint16(dst, uint16(quantize(e.spec[bin], scale, levels)))
		}
	}
	return dst
}

// allocateBits distributes the per-block bit budget over bands into the
// encoder's reused scratch. High complexity allocates proportionally to log
// band energy (a crude perceptual water-filling); low complexity spreads
// bits uniformly, wasting budget on empty bands — this is what makes
// low-complexity encodes hurt the sparse 6-12 kHz marker band more.
func (e *Encoder) allocateBits(spec []float64) []int {
	hopSec := float64(e.prof.hop()) / audio.SampleRate
	// entropyEfficiency models the gap between our raw scalar indices and
	// a real codec's entropy-coded bitstream: OPUS squeezes roughly this
	// factor more fidelity out of the same bit budget than uncoded scalar
	// quantization, so the *perceived* operating point of "32 kbps SWB"
	// corresponds to this many raw index bits.
	const entropyEfficiency = 6.0
	budget := e.prof.BitrateKbps * 1000 * hopSec * entropyEfficiency
	// Reserve header overhead per band.
	budget -= float64(len(e.bands) * 40)
	if budget < 0 {
		budget = 0
	}
	var totalBins int
	for _, bd := range e.bands {
		totalBins += bd.hi - bd.lo
	}
	bits := e.bits
	if totalBins == 0 {
		for i := range bits {
			bits[i] = 0
		}
		return bits
	}
	if e.prof.Complexity < 4 {
		per := int(budget / float64(totalBins))
		for i := range bits {
			bits[i] = clampBits(per)
		}
		return bits
	}
	// Reverse water-filling (the rate-distortion solution for scalar
	// quantizers): every band gets base bits plus half the log2 of its
	// per-bin energy relative to the geometric mean, so loud bands get
	// finer steps without starving wide quiet ones.
	logE := e.logE
	var meanLogE float64
	for i, bd := range e.bands {
		var energy float64
		for bin := bd.lo; bin < bd.hi; bin++ {
			energy += spec[bin] * spec[bin]
		}
		perBin := energy/float64(bd.hi-bd.lo) + 1e-12
		logE[i] = 0.5 * math.Log2(perBin)
		meanLogE += logE[i] * float64(bd.hi-bd.lo)
	}
	meanLogE /= float64(totalBins)
	base := budget / float64(totalBins)
	for i := range e.bands {
		bits[i] = clampBits(int(base + logE[i] - meanLogE + 0.5))
	}
	return bits
}

func clampBits(b int) int {
	if b < 1 {
		return 1
	}
	if b > 14 {
		return 14
	}
	return b
}

func bandScale(spec []float64, bd bandDef) float64 {
	var peak float64
	for bin := bd.lo; bin < bd.hi; bin++ {
		if a := math.Abs(spec[bin]); a > peak {
			peak = a
		}
	}
	if peak == 0 {
		return 1e-12
	}
	return peak
}

// quantize maps v in [-scale, scale] to a signed index with the given
// number of levels (per polarity).
func quantize(v, scale, levels float64) int16 {
	q := math.Round(v / scale * (levels - 1))
	if q > 32767 {
		q = 32767
	}
	if q < -32768 {
		q = -32768
	}
	return int16(q)
}

func dequantize(q int16, scale, levels float64) float64 {
	return float64(q) / (levels - 1) * scale
}

// Decode reconstructs one 960-sample frame from a packet. Because of the
// 50% overlap the output is delayed by one hop relative to the input fed
// to Encode — callers that need sample-exact alignment should use
// RoundTripAligned.
func (d *Decoder) Decode(pkt []byte) ([]float64, error) {
	return d.DecodeTo(nil, pkt)
}

// DecodeTo is Decode appending the reconstructed samples to dst and
// returning the extended slice. With a reused dst the steady-state path
// allocates nothing.
func (d *Decoder) DecodeTo(dst []float64, pkt []byte) ([]float64, error) {
	if len(pkt) >= 3 && pkt[0] == magic && pkt[1] == 0xFF {
		return d.appendLossless(dst, pkt)
	}
	if d.prof.LowDelay {
		// Two sub-packets with length prefixes.
		start := len(dst)
		rest := pkt
		for len(dst)-start < FrameSamples {
			if len(rest) < 2 {
				return dst[:start], ErrBadPacket
			}
			n := int(binary.LittleEndian.Uint16(rest))
			rest = rest[2:]
			if len(rest) < n {
				return dst[:start], ErrBadPacket
			}
			var err error
			dst, err = d.appendBlock(dst, rest[:n])
			if err != nil {
				return dst[:start], err
			}
			rest = rest[n:]
		}
		return dst, nil
	}
	if len(pkt) < 3 || pkt[0] != magic {
		return dst, ErrBadPacket
	}
	return d.appendBlock(dst, pkt)
}

func (d *Decoder) appendLossless(dst []float64, pkt []byte) ([]float64, error) {
	n := (len(pkt) - 3) / 8
	if n != FrameSamples {
		return dst, ErrBadPacket
	}
	for i := 0; i < n; i++ {
		dst = append(dst, math.Float64frombits(binary.LittleEndian.Uint64(pkt[3+8*i:])))
	}
	d.lastOK = true
	return dst, nil
}

// appendBlock inverts one block and appends hop samples of finished output.
func (d *Decoder) appendBlock(dst []float64, pkt []byte) ([]float64, error) {
	if len(pkt) < 3 || pkt[0] != magic || pkt[1] != blockTag {
		return dst, ErrBadPacket
	}
	nb := int(pkt[2])
	if nb != len(d.bands) {
		return dst, fmt.Errorf("%w: band count %d want %d", ErrBadPacket, nb, len(d.bands))
	}
	spec := d.spec
	for i := range spec {
		spec[i] = 0
	}
	pos := 3
	for _, bd := range d.bands {
		if pos+5 > len(pkt) {
			return dst, ErrBadPacket
		}
		scale := float64(math.Float32frombits(binary.LittleEndian.Uint32(pkt[pos:])))
		bitCount := int(pkt[pos+4])
		pos += 5
		levels := float64(int(1) << clampBits(bitCount))
		for bin := bd.lo; bin < bd.hi; bin++ {
			if pos+2 > len(pkt) {
				return dst, ErrBadPacket
			}
			spec[bin] = dequantize(int16(binary.LittleEndian.Uint16(pkt[pos:])), scale, levels)
			pos += 2
		}
	}
	return d.appendSynthesis(dst, spec), nil
}

// appendSynthesis inverts the spectrum (IMDCT), windows and overlap-adds,
// appending the completed hop of output samples to dst.
func (d *Decoder) appendSynthesis(dst []float64, spec []float64) []float64 {
	d.rememberSpectrum(spec)
	d.td = d.mdct.Inverse(d.td, spec)
	hop := d.prof.hop()
	for i := 0; i < hop; i++ {
		dst = append(dst, d.overlap[i]+d.td[i]*d.window[i])
	}
	for i := 0; i < hop; i++ {
		d.overlap[i] = d.td[hop+i] * d.window[hop+i]
	}
	return dst
}

func (d *Decoder) rememberSpectrum(spec []float64) {
	if d.last == nil {
		d.last = make([]float64, len(spec))
	}
	for i, c := range spec {
		d.last[i] = math.Abs(c)
	}
	d.lastOK = true
}

// Conceal produces a packet-loss-concealment frame: the previous block's
// spectrum magnitudes with decayed energy (a standard PLC approximation).
// Returns silence if no frame was ever decoded.
func (d *Decoder) Conceal() []float64 {
	return d.ConcealTo(nil)
}

// ConcealTo is Conceal appending the concealment frame to dst and returning
// the extended slice.
func (d *Decoder) ConcealTo(dst []float64) []float64 {
	hop := d.prof.hop()
	framesPerPacket := FrameSamples / hop
	for f := 0; f < framesPerPacket; f++ {
		if !d.lastOK || d.last == nil {
			for i := 0; i < hop; i++ {
				dst = append(dst, d.overlap[i])
				d.overlap[i] = 0
			}
			continue
		}
		if cap(d.cspec) < len(d.last) {
			d.cspec = make([]float64, len(d.last))
		}
		spec := d.cspec[:len(d.last)]
		for i, m := range d.last {
			spec[i] = m * 0.5 // decayed, sign-flattened repeat
		}
		dst = d.appendSynthesis(dst, spec)
		for i := range d.last {
			d.last[i] *= 0.5
		}
	}
	return dst
}

// Delay returns the codec's algorithmic delay in samples (one hop).
func (p Profile) Delay() int {
	if p.Lossless {
		return 0
	}
	return p.hop()
}

// RoundTrip encodes and decodes a whole buffer through the profile,
// returning a buffer of the same length including the algorithmic delay
// (output is shifted later by Profile.Delay() samples).
func RoundTrip(b *audio.Buffer, p Profile) (*audio.Buffer, error) {
	enc := NewEncoder(p)
	dec := NewDecoder(p)
	out := audio.NewBuffer(b.Rate, 0)
	for _, frame := range b.Frames(FrameSamples) {
		pkt, err := enc.Encode(frame)
		if err != nil {
			return nil, err
		}
		dc, err := dec.Decode(pkt)
		if err != nil {
			return nil, err
		}
		out.AppendFrame(dc)
	}
	out.Samples = out.Samples[:min(len(out.Samples), b.Len())]
	return out, nil
}

// RoundTripAligned is RoundTrip with the algorithmic delay removed, so the
// output is sample-aligned with the input (used by the offline experiment
// pipelines where codec latency is accounted separately).
func RoundTripAligned(b *audio.Buffer, p Profile) (*audio.Buffer, error) {
	padded := b.Clone()
	padded.Samples = append(padded.Samples, make([]float64, FrameSamples)...)
	rt, err := RoundTrip(padded, p)
	if err != nil {
		return nil, err
	}
	d := p.Delay()
	end := d + b.Len()
	if end > rt.Len() {
		end = rt.Len()
	}
	return audio.FromSamples(b.Rate, rt.Samples[d:end]), nil
}
