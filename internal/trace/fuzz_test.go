package trace

import (
	"bytes"
	"testing"

	"ekho/internal/compensator"
	"ekho/internal/estimator"
)

// FuzzReaderNext drives the trace decoder over arbitrary bytes: whatever
// the input, Next must terminate with a record or an error, never panic
// or loop. The seed corpus includes a genuine recorded session (header,
// inputs, every event type including the resample record) plus truncated
// and corrupted variants of it, so the fuzzer starts from structurally
// interesting inputs.
func FuzzReaderNext(f *testing.F) {
	var buf bytes.Buffer
	rec, err := NewRecorder(&buf, testHeader())
	if err != nil {
		f.Fatal(err)
	}
	rec.Tick(0.02)
	rec.MarkerInjected(4800)
	rec.MarkerMatched(4800, 1.25)
	rec.MarkerExpired(9600)
	rec.ChatGapConcealed(7, 2.5)
	rec.OfferChat(0.06, 3, 0.043, []byte{1, 2, 3, 4})
	rec.ISDMeasurement(0.08, estimator.Measurement{ISDSeconds: 0.012, DetectionTime: 0.05, Strength: 20})
	rec.CompensationAction(0.1, compensator.Action{Stream: compensator.AccessoryStream, InsertFrames: 1})
	rec.ResampleApplied(0.12, compensator.Resample{Stream: compensator.AccessoryStream, PPM: -97.5})
	if err := rec.Close(); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add(valid[:7])
	f.Add([]byte{})
	corrupt := append([]byte(nil), valid...)
	corrupt[len(corrupt)/2] ^= 0xff
	f.Add(corrupt)

	f.Fuzz(func(t *testing.T, b []byte) {
		rd, err := NewReader(bytes.NewReader(b))
		if err != nil {
			return
		}
		// A record is at least a few bytes, so len(b) iterations bound any
		// well-formed log; more means the reader failed to make progress.
		for i := 0; i <= len(b); i++ {
			if _, err := rd.Next(); err != nil {
				return
			}
		}
		t.Fatalf("reader produced more records than input bytes (%d)", len(b))
	})
}
