package trace

import (
	"bufio"
	"fmt"
	"io"
	"sort"

	"ekho/internal/compensator"
	"ekho/internal/estimator"
	"ekho/internal/serverpipe"
)

// Recorder captures one session's timeline. It implements
// serverpipe.EventSink for the pipeline's lifecycle events; the host
// additionally taps its inputs (Tick, OfferRecord, OfferChat) and its
// outbound packets (MediaOut) at the points it drives the pipeline, in
// the same order. All calls must come from the goroutine that owns the
// pipeline (the hub's shard worker, the simulator's event loop) — the
// recorder is deliberately lock-free.
//
// The encode path is allocation-free in steady state: records are built
// in a reusable scratch buffer and handed to an internal bufio.Writer, so
// recording rides the hot per-frame path without disturbing the
// zero-alloc discipline of the pipeline itself.
type Recorder struct {
	w       *bufio.Writer
	scratch []byte
	err     error
	records int64
}

// NewRecorder writes the container preamble and the session header.
// Closing the recorder flushes buffered records; the caller owns closing
// the underlying writer.
func NewRecorder(w io.Writer, h Header) (*Recorder, error) {
	r := &Recorder{w: bufio.NewWriterSize(w, 1<<16)}
	var pre [10]byte
	copy(pre[:8], magic[:])
	pre[8] = Version & 0xff
	pre[9] = Version >> 8
	if _, err := r.w.Write(pre[:]); err != nil {
		return nil, err
	}
	r.emit(RecHeader, appendHeader(r.begin(), h))
	if r.err != nil {
		return nil, r.err
	}
	return r, nil
}

// begin resets the scratch buffer, leaving room for the record prefix.
func (r *Recorder) begin() []byte {
	if cap(r.scratch) < 5 {
		r.scratch = make([]byte, 5, 256)
	}
	return r.scratch[:5]
}

// emit finalizes the prefix ([type][len]) and writes the record.
func (r *Recorder) emit(t RecType, b []byte) {
	r.scratch = b // retain grown capacity
	if r.err != nil {
		return
	}
	b[0] = byte(t)
	n := uint32(len(b) - 5)
	b[1] = byte(n)
	b[2] = byte(n >> 8)
	b[3] = byte(n >> 16)
	b[4] = byte(n >> 24)
	if _, err := r.w.Write(b); err != nil {
		r.err = err
		return
	}
	r.records++
}

// Err returns the first write error, if any.
func (r *Recorder) Err() error { return r.err }

// Records reports how many records have been written (header included).
func (r *Recorder) Records() int64 { return r.records }

// Close flushes buffered records. The recorder must not be used after.
func (r *Recorder) Close() error {
	if err := r.w.Flush(); err != nil && r.err == nil {
		r.err = err
	}
	return r.err
}

// Tick records one media tick (one screen + one accessory frame are about
// to be produced) at the pipeline's current content time.
func (r *Recorder) Tick(now float64) {
	r.emit(RecTick, appendF64(r.begin(), now))
}

// OfferRecord records one inbound accessory playback record, just before
// it is offered to the pipeline.
func (r *Recorder) OfferRecord(now float64, rec serverpipe.Record) {
	b := appendF64(r.begin(), now)
	b = appendU64(b, uint64(rec.ContentStart))
	b = appendU32(b, uint32(int32(rec.N)))
	b = appendF64(b, rec.LocalTime)
	r.emit(RecRecord, b)
}

// OfferChat records one inbound chat packet (sequence number, capture
// timestamp and the encoded payload), just before it is offered to the
// pipeline.
func (r *Recorder) OfferChat(now float64, seq uint32, adcLocal float64, encoded []byte) {
	b := appendF64(r.begin(), now)
	b = appendU32(b, seq)
	b = appendF64(b, adcLocal)
	b = appendU32(b, uint32(len(encoded)))
	b = append(b, encoded...)
	r.emit(RecChat, b)
}

// MediaOut records one outbound media packet's metadata: which stream,
// the frame's sequence number and content bookkeeping, and the serialized
// datagram size.
func (r *Recorder) MediaOut(stream uint8, fi serverpipe.FrameInfo, size int) {
	b := appendU32(r.begin(), uint32(stream))
	b = appendU32(b, fi.Seq)
	b = appendU64(b, uint64(fi.ContentStart))
	b = appendU32(b, uint32(int32(fi.ContentOff)))
	b = appendU32(b, uint32(int32(size)))
	r.emit(RecMediaOut, b)
}

// MarkerInjected implements serverpipe.EventSink.
func (r *Recorder) MarkerInjected(content int64) {
	r.emit(RecMarkerInjected, appendU64(r.begin(), uint64(content)))
}

// MarkerMatched implements serverpipe.EventSink.
func (r *Recorder) MarkerMatched(content int64, localTime float64) {
	b := appendU64(r.begin(), uint64(content))
	b = appendF64(b, localTime)
	r.emit(RecMarkerMatched, b)
}

// MarkerExpired implements serverpipe.EventSink.
func (r *Recorder) MarkerExpired(content int64) {
	r.emit(RecMarkerExpired, appendU64(r.begin(), uint64(content)))
}

// ChatGapConcealed implements serverpipe.EventSink.
func (r *Recorder) ChatGapConcealed(seq uint32, startLocal float64) {
	b := appendU32(r.begin(), seq)
	b = appendF64(b, startLocal)
	r.emit(RecChatConcealed, b)
}

// ISDMeasurement implements serverpipe.EventSink.
func (r *Recorder) ISDMeasurement(now float64, m estimator.Measurement) {
	b := appendF64(r.begin(), now)
	b = appendF64(b, m.ISDSeconds)
	b = appendF64(b, m.DetectionTime)
	b = appendF64(b, m.MarkerTime)
	b = appendF64(b, m.Strength)
	r.emit(RecISD, b)
}

// CompensationAction implements serverpipe.EventSink.
func (r *Recorder) CompensationAction(now float64, a compensator.Action) {
	b := appendF64(r.begin(), now)
	b = appendU32(b, uint32(int32(a.Stream)))
	b = appendU32(b, uint32(int32(a.InsertFrames)))
	b = appendU32(b, uint32(int32(a.SkipFrames)))
	b = appendU32(b, uint32(int32(a.InsertSamples)))
	b = appendU32(b, uint32(int32(a.SkipSamples)))
	r.emit(RecAction, b)
}

// ResampleApplied implements serverpipe.EventSink.
func (r *Recorder) ResampleApplied(now float64, rs compensator.Resample) {
	b := appendF64(r.begin(), now)
	b = appendU32(b, uint32(int32(rs.Stream)))
	b = appendF64(b, rs.PPM)
	r.emit(RecResample, b)
}

// SessionStat is the stable per-session status line shared by every
// surface that reports on a session — the live server's SIGHUP dump, the
// replayer's final report, tests. One line per session, fixed field
// order; the format is documented in the README and must only ever grow
// at the tail.
type SessionStat struct {
	// ID is the wire session identifier.
	ID uint32
	// Frames counts produced media frame pairs.
	Frames int
	// Measurements / Actions count estimator outputs and compensator
	// corrections.
	Measurements int
	Actions      int
	// Pending / Records are the marker-ledger and record-book sizes.
	Pending int
	Records int
	// Resamples counts drift-regime rate retunes (tail growth: 0 for
	// every session without the drift regime).
	Resamples int
}

// String renders the stable one-line format:
//
//	session <id> frames=<n> measurements=<n> actions=<n> pending=<n> records=<n> resamples=<n>
func (s SessionStat) String() string {
	return fmt.Sprintf("session %d frames=%d measurements=%d actions=%d pending=%d records=%d resamples=%d",
		s.ID, s.Frames, s.Measurements, s.Actions, s.Pending, s.Records, s.Resamples)
}

// SortSessionStats orders stats by session ID so multi-session dumps are
// deterministic.
func SortSessionStats(ss []SessionStat) {
	sort.Slice(ss, func(i, j int) bool { return ss[i].ID < ss[j].ID })
}
