package trace_test

import (
	"os"
	"path/filepath"
	"testing"

	"ekho/internal/session"
	"ekho/internal/trace"
)

// TestReplayEquivalenceProviders is the determinism gate for the
// simulator hosts: a session recorded over each provider network profile
// must replay bit-identically — the replayed ISD measurement and
// compensation-action sequences equal the live session's exactly.
func TestReplayEquivalenceProviders(t *testing.T) {
	for _, name := range []string{"stadia", "gfn", "psnow"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			path := filepath.Join(t.TempDir(), name+".ektrace")
			sc := session.DefaultScenario()
			sc.DurationSec = 15
			sc.Provider = name
			sc.RecordPath = path
			res := session.Run(sc)
			if len(res.Measurements) == 0 {
				t.Fatalf("live session produced no measurements")
			}

			f, err := os.Open(path)
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			rep, err := trace.Replay(f)
			if err != nil {
				t.Fatalf("replay: %v", err)
			}
			if !rep.OK() {
				for _, d := range rep.Divergences {
					t.Errorf("divergence %s", d)
				}
				t.Fatalf("replay diverged %d times", rep.DivergenceCount)
			}
			if rep.Events == 0 || rep.Ticks == 0 || rep.Chats == 0 {
				t.Fatalf("replay exercised nothing: %d events, %d ticks, %d chats",
					rep.Events, rep.Ticks, rep.Chats)
			}

			// Bit-identical ISD sequence vs the live session's sink log.
			if len(rep.ISDs) != len(res.Measurements) {
				t.Fatalf("replay saw %d measurements, live saw %d", len(rep.ISDs), len(res.Measurements))
			}
			for i, isd := range rep.ISDs {
				if isd != res.Measurements[i].ISDSeconds {
					t.Fatalf("measurement %d: replay %v, live %v", i, isd, res.Measurements[i].ISDSeconds)
				}
			}
			// Bit-identical compensation actions.
			if len(rep.Actions) != len(res.Actions) {
				t.Fatalf("replay saw %d actions, live saw %d", len(rep.Actions), len(res.Actions))
			}
			for i, a := range rep.Actions {
				if a != res.Actions[i].Action {
					t.Fatalf("action %d: replay %+v, live %+v", i, a, res.Actions[i].Action)
				}
			}
		})
	}
}

// TestReplayEquivalenceDrift extends the determinism gate to the drift
// regime: a recorded session with a +100 ppm controller sample-rate
// offset and drift compensation enabled must replay bit-identically,
// including the resample-retune sequence (the new record type).
func TestReplayEquivalenceDrift(t *testing.T) {
	path := filepath.Join(t.TempDir(), "drift.ektrace")
	sc := session.DriftScenario(100)
	sc.DurationSec = 60
	sc.RecordPath = path
	res := session.Run(sc)
	if len(res.Resamples) == 0 {
		t.Fatal("live session never retuned: drift regime not exercised")
	}

	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	rep, err := trace.Replay(f)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if !rep.OK() {
		for _, d := range rep.Divergences {
			t.Errorf("divergence %s", d)
		}
		t.Fatalf("replay diverged %d times", rep.DivergenceCount)
	}
	if !rep.Header.Drift.Enabled {
		t.Fatal("recorded header lost Drift.Enabled")
	}
	// Bit-identical resample sequence vs the live session's sink log.
	if len(rep.Resamples) != len(res.Resamples) {
		t.Fatalf("replay saw %d resamples, live saw %d", len(rep.Resamples), len(res.Resamples))
	}
	for i, r := range rep.Resamples {
		if r != res.Resamples[i].Resample {
			t.Fatalf("resample %d: replay %+v, live %+v", i, r, res.Resamples[i].Resample)
		}
	}
	if len(rep.ISDs) != len(res.Measurements) {
		t.Fatalf("replay saw %d measurements, live saw %d", len(rep.ISDs), len(res.Measurements))
	}
	for i, isd := range rep.ISDs {
		if isd != res.Measurements[i].ISDSeconds {
			t.Fatalf("measurement %d: replay %v, live %v", i, isd, res.Measurements[i].ISDSeconds)
		}
	}
}

// TestReplayTwiceIdentical replays the same trace twice and demands the
// two reports agree — replay itself must be deterministic.
func TestReplayTwiceIdentical(t *testing.T) {
	path := filepath.Join(t.TempDir(), "twice.ektrace")
	sc := session.DefaultScenario()
	sc.DurationSec = 10
	sc.Provider = "stadia"
	sc.RecordPath = path
	session.Run(sc)

	run := func() *trace.ReplayReport {
		f, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		rep, err := trace.Replay(f)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := run(), run()
	if !a.OK() || !b.OK() {
		t.Fatalf("replays diverged: %d / %d", a.DivergenceCount, b.DivergenceCount)
	}
	if a.Final != b.Final {
		t.Fatalf("final stats differ:\n%s\n%s", a.Final, b.Final)
	}
	if len(a.ISDs) != len(b.ISDs) {
		t.Fatalf("ISD counts differ: %d vs %d", len(a.ISDs), len(b.ISDs))
	}
	for i := range a.ISDs {
		if a.ISDs[i] != b.ISDs[i] {
			t.Fatalf("ISD %d differs: %v vs %v", i, a.ISDs[i], b.ISDs[i])
		}
	}
}
