package trace

import (
	"fmt"
	"io"
	"time"

	"ekho/internal/audio"
	"ekho/internal/compensator"
	"ekho/internal/estimator"
	"ekho/internal/serverpipe"
)

// Divergence reports one point where the replayed pipeline's behavior
// departed from the recording.
type Divergence struct {
	// Index is the record's ordinal position in the log.
	Index int64
	// Want is the recorded event; Got is what the replay produced ("" when
	// the replay produced nothing / an extra event respectively).
	Want string
	Got  string
}

func (d Divergence) String() string {
	switch {
	case d.Got == "":
		return fmt.Sprintf("#%d: recorded %q, replay produced nothing", d.Index, d.Want)
	case d.Want == "":
		return fmt.Sprintf("#%d: replay produced extra %q", d.Index, d.Got)
	}
	return fmt.Sprintf("#%d: recorded %q, replay produced %q", d.Index, d.Want, d.Got)
}

// MaxDivergences bounds how many divergences a report retains; past the
// bound the replay keeps counting but stops storing.
const MaxDivergences = 64

// ReplayReport summarizes one replay run.
type ReplayReport struct {
	// Header is the recorded session's reconstructed configuration.
	Header Header
	// Ticks / Chats / PlaybackRecords count the inputs re-applied.
	Ticks           int
	Chats           int
	PlaybackRecords int
	// Events counts the recorded output events verified (marker
	// injections/matches/expiries, chat conceals, ISD measurements,
	// compensation actions).
	Events int
	// MediaOut counts outbound-packet records checked against the
	// replayed streams' frame bookkeeping.
	MediaOut int
	// ISDs / Actions / Resamples are the replayed measurement, action and
	// rate-retune sequences (the bit-identical artifacts the equivalence
	// tests compare).
	ISDs      []float64
	Actions   []compensator.Action
	Resamples []compensator.Resample
	// DivergenceCount is the total number of mismatches; Divergences
	// stores the first MaxDivergences of them.
	DivergenceCount int64
	Divergences     []Divergence
	// Final is the replayed pipeline's closing status in the stable
	// per-session line format.
	Final SessionStat
	// Elapsed is the replay wall time; Records is the total records read.
	Elapsed time.Duration
	Records int64
}

// OK reports whether the replay reproduced the recording exactly.
func (r *ReplayReport) OK() bool { return r.DivergenceCount == 0 }

// EventsPerSec is the verified-event replay throughput.
func (r *ReplayReport) EventsPerSec() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Records) / r.Elapsed.Seconds()
}

// replaySink captures the events the replayed pipeline emits so the
// replayer can match them against the recorded ones.
type replaySink struct {
	queue []Rec
}

func (s *replaySink) push(r Rec) { s.queue = append(s.queue, r) }

func (s *replaySink) MarkerInjected(content int64) {
	s.push(Rec{Type: RecMarkerInjected, Content: content})
}
func (s *replaySink) MarkerMatched(content int64, localTime float64) {
	s.push(Rec{Type: RecMarkerMatched, Content: content, LocalTime: localTime})
}
func (s *replaySink) MarkerExpired(content int64) {
	s.push(Rec{Type: RecMarkerExpired, Content: content})
}
func (s *replaySink) ChatGapConcealed(seq uint32, startLocal float64) {
	s.push(Rec{Type: RecChatConcealed, Seq: seq, LocalTime: startLocal})
}
func (s *replaySink) ISDMeasurement(now float64, m estimator.Measurement) {
	s.push(Rec{Type: RecISD, Now: now, M: m})
}
func (s *replaySink) CompensationAction(now float64, a compensator.Action) {
	s.push(Rec{Type: RecAction, Now: now, Action: a})
}
func (s *replaySink) ResampleApplied(now float64, r compensator.Resample) {
	s.push(Rec{Type: RecResample, Now: now, Resample: r})
}

// sameEvent compares a recorded event with a replayed one bit for bit
// (float fields must be exactly equal: replay runs the same code on the
// same inputs, so any difference is a real divergence).
func sameEvent(want, got Rec) bool {
	if want.Type != got.Type {
		return false
	}
	switch want.Type {
	case RecMarkerInjected, RecMarkerExpired:
		return want.Content == got.Content
	case RecMarkerMatched:
		return want.Content == got.Content && want.LocalTime == got.LocalTime
	case RecChatConcealed:
		return want.Seq == got.Seq && want.LocalTime == got.LocalTime
	case RecISD:
		return want.Now == got.Now && want.M == got.M
	case RecAction:
		return want.Now == got.Now && want.Action == got.Action
	case RecResample:
		return want.Now == got.Now && want.Resample == got.Resample
	}
	return false
}

// Replay re-drives a fresh pipeline from a recorded session trace and
// verifies that every recorded output — marker lifecycle events, ISD
// measurements, compensation actions, and the outbound frames' content
// bookkeeping — is reproduced exactly. It returns a report rather than an
// error for divergences; an error means the log itself was unreadable.
func Replay(r io.Reader) (*ReplayReport, error) {
	rd, err := NewReader(r)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	rep := &ReplayReport{}

	// The first record must be the session header.
	first, err := rd.Next()
	if err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if first.Type != RecHeader {
		return nil, fmt.Errorf("%w: log does not start with a session header (got %s)", ErrCorrupt, first)
	}
	hdr, _ := rd.Header()
	rep.Header = hdr

	// Rebuild the pipeline exactly as recorded, with the recorded content
	// clock: every input record carries the Now the live session saw, and
	// events fired while applying an input read that same value.
	now := 0.0
	sink := &replaySink{}
	cfg := hdr.PipelineConfig()
	cfg.Now = func() float64 { return now }
	cfg.Sink = sink
	pipe := serverpipe.New(cfg)

	frame := make([]float64, audio.FrameSamples)
	chatBuf := make([]byte, 0, 4096)
	var lastScreen, lastAccessory serverpipe.FrameInfo
	var index int64 // current record ordinal (header = 0)

	diverge := func(want, got string) {
		rep.DivergenceCount++
		if len(rep.Divergences) < MaxDivergences {
			rep.Divergences = append(rep.Divergences, Divergence{Index: index, Want: want, Got: got})
		}
	}
	// drainExtra flags replayed events the recording does not contain.
	drainExtra := func() {
		for _, g := range sink.queue {
			diverge("", g.String())
		}
		sink.queue = sink.queue[:0]
	}

	for {
		rec, err := rd.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		index++
		switch {
		case rec.IsInput():
			// Any replay events not consumed by recorded event records
			// before the next input are extras the live run never saw.
			drainExtra()
			now = rec.Now
			switch rec.Type {
			case RecTick:
				lastScreen = pipe.NextScreenFrame(frame)
				lastAccessory = pipe.NextAccessoryFrame(frame)
				rep.Ticks++
			case RecRecord:
				pipe.OfferRecord(serverpipe.Record{
					ContentStart: rec.Content,
					N:            rec.N,
					LocalTime:    rec.LocalTime,
				})
				rep.PlaybackRecords++
			case RecChat:
				// rec.Encoded aliases the reader's scratch; OfferChat may
				// retain nothing, but copy defensively for clarity.
				chatBuf = append(chatBuf[:0], rec.Encoded...)
				pipe.OfferChat(rec.Seq, rec.ADCLocal, chatBuf)
				rep.Chats++
			}
		case rec.IsEvent():
			rep.Events++
			if rec.Type == RecISD {
				rep.ISDs = append(rep.ISDs, rec.M.ISDSeconds)
			}
			if rec.Type == RecAction {
				rep.Actions = append(rep.Actions, rec.Action)
			}
			if rec.Type == RecResample {
				rep.Resamples = append(rep.Resamples, rec.Resample)
			}
			if len(sink.queue) == 0 {
				diverge(rec.String(), "")
				continue
			}
			got := sink.queue[0]
			sink.queue = sink.queue[1:]
			if !sameEvent(rec, got) {
				diverge(rec.String(), got.String())
			}
		case rec.Type == RecMediaOut:
			rep.MediaOut++
			fi := lastScreen
			if rec.Stream == StreamAccessory {
				fi = lastAccessory
			}
			// Size is informational (host wire encoding); the frame's
			// sequencing and content bookkeeping must match exactly.
			if rec.Seq != fi.Seq || rec.Content != fi.ContentStart || rec.ContentOff != fi.ContentOff {
				diverge(rec.String(), fmt.Sprintf("media stream=%d seq=%d content=%d off=%d",
					rec.Stream, fi.Seq, fi.ContentStart, fi.ContentOff))
			}
		case rec.Type == RecHeader:
			return nil, fmt.Errorf("%w: duplicate session header at record %d", ErrCorrupt, index)
		default:
			// RecProfile and future informational records: ignore.
		}
	}
	drainExtra()

	rep.Records = index + 1
	rep.Final = SessionStat{
		ID:           hdr.SessionID,
		Frames:       rep.Ticks,
		Measurements: len(rep.ISDs),
		Actions:      len(rep.Actions),
		Pending:      pipe.PendingMarkers(),
		Records:      pipe.RecordCount(),
		Resamples:    len(rep.Resamples),
	}
	rep.Elapsed = time.Since(start)
	return rep, nil
}
