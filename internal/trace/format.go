// Package trace is Ekho's capture/replay subsystem: it records a live
// session's full timeline — pipeline inputs (media ticks, playback
// records, chat packets), outbound media metadata and every pipeline
// lifecycle event — to a compact, versioned binary log, and re-drives a
// fresh serverpipe.Pipeline from such a log deterministically, verifying
// that the replay reproduces the recorded ISD measurement and
// compensation-action sequences bit for bit.
//
// The same container format also carries named network provider profiles
// (delay/jitter/loss shapes for Stadia, GeForce Now and PlayStation Now),
// so netsim scenarios can be driven from shipped or captured trace files.
//
// # Log format
//
// A trace file is a fixed 10-byte preamble — the 8-byte magic "EKHOTRC\0"
// and a little-endian uint16 format version — followed by a sequence of
// length-prefixed records:
//
//	[type uint8][length uint32][payload ...]
//
// All integers are little-endian; floats are IEEE-754 bits. A session
// trace starts with one header record (type 0) carrying everything needed
// to reconstruct the pipeline (clip index, PN seed, codec profile,
// compensator tuning, injector log limit, mode flags); the remaining
// records are the interleaved inputs and events in the exact order the
// live session processed them.
//
// # Versioning rules
//
//   - The version is bumped only for incompatible layout changes; readers
//     reject versions they do not know.
//   - Within a version, unknown record types are skipped (their length
//     prefix makes that possible), so new informational record types can
//     be added without a version bump.
//   - Record payloads may only grow at the tail within a version; readers
//     ignore trailing bytes they do not understand.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"ekho/internal/codec"
	"ekho/internal/compensator"
	"ekho/internal/estimator"
	"ekho/internal/gamesynth"
	"ekho/internal/netsim"
	"ekho/internal/pn"
	"ekho/internal/serverpipe"
)

// Version is the current trace format version.
const Version = 1

// magic identifies a trace container file.
var magic = [8]byte{'E', 'K', 'H', 'O', 'T', 'R', 'C', 0}

// maxRecordLen bounds a single record so a corrupt length prefix cannot
// make a reader attempt a huge allocation (chat payloads are a few KB).
const maxRecordLen = 1 << 24

// RecType identifies a trace record.
type RecType uint8

// Record types. Inputs (tick, playback record, chat) re-drive the
// pipeline on replay; events are the recorded outputs replay verifies
// against; media-out records carry outbound packet metadata checked
// against the replayed streams' frame bookkeeping.
const (
	RecHeader RecType = iota
	RecTick
	RecRecord
	RecChat
	RecMediaOut
	RecMarkerInjected
	RecMarkerMatched
	RecMarkerExpired
	RecChatConcealed
	RecISD
	RecAction
	RecProfile
	// RecResample carries a drift-regime rate retune (added within
	// version 1: old readers skip it by its length prefix).
	RecResample
)

// Stream identifiers for RecMediaOut.
const (
	StreamScreen    uint8 = 0
	StreamAccessory uint8 = 1
)

// Header reconstructs a session's pipeline configuration on replay. It
// captures the *effective* (defaulted) configuration, so a replayed
// pipeline is assembled identically to the recorded one.
type Header struct {
	// SessionID is the wire session identifier (0 for simulator runs).
	SessionID uint32
	// ClipIndex / ClipSeconds regenerate the looping game clip from the
	// deterministic gamesynth corpus.
	ClipIndex   int
	ClipSeconds float64
	// Seed / SeqLen regenerate the PN marker template.
	Seed   int64
	SeqLen int
	// MarkerC is the relative marker volume.
	MarkerC float64
	// Codec is the full chat uplink profile (stored field by field, so
	// custom profiles round-trip without a registry).
	Codec codec.Profile
	// Compensator is the correction-loop tuning.
	Compensator compensator.Config
	// InjectorLogLimit is the configured injection-log bound (negative =
	// unlimited); replay must apply the same limit so the injector's
	// ledger state — and therefore its memory behavior — is identical.
	InjectorLogLimit int
	// Mode flags, mirrored from serverpipe.Config.
	DisableMarkers     bool
	InterpolatedInsert bool
	MutedScreen        bool
	ChatStartsAtZero   bool
	MutedMarkerAmpDB   float64
	// Drift is the micro-resampling regime tuning and DriftTracker the
	// slope-fit tuning (serverpipe.Config.Drift / .DriftTracker). These
	// fields sit at the payload tail, appended within version 1: readers
	// accept old traces without them (all-zero = drift disabled, which is
	// what every pre-drift session ran).
	Drift        compensator.DriftConfig
	DriftTracker estimator.DriftConfig
	// Detector selects the marker-detection pipeline
	// (serverpipe.Config.Detector). Appended at the payload tail within
	// version 1; traces without it were recorded when the full-rate
	// detector was the only pipeline, so absence decodes as
	// DetectorFullRate — NOT the zero value, which is DetectorTwoStage.
	Detector estimator.DetectorMode
}

// HeaderFor captures a session's effective pipeline configuration. The
// clip index and PN seed are passed separately because serverpipe.Config
// holds the materialized buffers, not their generators.
func HeaderFor(sessionID uint32, clipIndex int, seed int64, cfg serverpipe.Config) Header {
	cfg = cfg.Normalized()
	return Header{
		SessionID:          sessionID,
		ClipIndex:          clipIndex,
		ClipSeconds:        gamesynth.ClipSeconds,
		Seed:               seed,
		SeqLen:             cfg.Seq.Len(),
		MarkerC:            cfg.MarkerC,
		Codec:              cfg.Codec,
		Compensator:        cfg.Compensator,
		InjectorLogLimit:   cfg.InjectorLogLimit,
		DisableMarkers:     cfg.DisableMarkers,
		InterpolatedInsert: cfg.InterpolatedInsert,
		MutedScreen:        cfg.MutedScreen,
		ChatStartsAtZero:   cfg.ChatStartsAtZero,
		MutedMarkerAmpDB:   cfg.MutedMarkerAmpDB,
		Drift:              cfg.Drift,
		DriftTracker:       cfg.DriftTracker,
		Detector:           cfg.Detector,
	}
}

// PipelineConfig rebuilds the recorded session's pipeline configuration:
// the game clip and PN sequence are regenerated from their deterministic
// sources. Now and Sink are left nil for the caller (the replayer) to set.
func (h Header) PipelineConfig() serverpipe.Config {
	cat := gamesynth.Catalog()
	return serverpipe.Config{
		Game:               gamesynth.Generate(cat[h.ClipIndex%len(cat)], h.ClipSeconds),
		Seq:                pn.NewSequence(h.Seed, h.SeqLen),
		MarkerC:            h.MarkerC,
		Codec:              h.Codec,
		Compensator:        h.Compensator,
		InjectorLogLimit:   h.InjectorLogLimit,
		DisableMarkers:     h.DisableMarkers,
		InterpolatedInsert: h.InterpolatedInsert,
		MutedScreen:        h.MutedScreen,
		ChatStartsAtZero:   h.ChatStartsAtZero,
		MutedMarkerAmpDB:   h.MutedMarkerAmpDB,
		Drift:              h.Drift,
		DriftTracker:       h.DriftTracker,
		Detector:           h.Detector,
	}
}

// Rec is one decoded trace record: a tagged union over all record types.
// Only the fields relevant to Type are meaningful.
type Rec struct {
	Type RecType

	// Now is the pipeline content time an input was applied at (RecTick,
	// RecRecord, RecChat) or an event fired at (RecISD, RecAction).
	Now float64

	// Content is a game-content sample position (RecRecord and the marker
	// events).
	Content int64
	// LocalTime is a device-local timestamp in seconds (RecRecord:
	// playback start; RecMarkerMatched: resolved playback time;
	// RecChatConcealed: concealed-gap start).
	LocalTime float64
	// N is a covered sample count (RecRecord).
	N int

	// Seq is a packet sequence number (RecChat, RecMediaOut,
	// RecChatConcealed).
	Seq uint32
	// ADCLocal is the chat capture timestamp (RecChat).
	ADCLocal float64
	// Encoded is the chat packet payload (RecChat). The slice aliases the
	// reader's scratch only until the next Next call; Replay copies it.
	Encoded []byte

	// Stream / ContentOff / Size describe an outbound media packet
	// (RecMediaOut): StreamScreen or StreamAccessory, the frame's content
	// bookkeeping, and the serialized datagram size (informational — not
	// compared on replay, since it depends on the host's wire encoding).
	Stream     uint8
	ContentOff int
	Size       int

	// M is an ISD measurement (RecISD).
	M estimator.Measurement
	// Action is a compensation action (RecAction).
	Action compensator.Action
	// Resample is a drift-regime rate retune (RecResample).
	Resample compensator.Resample
}

// String renders a record for divergence reports.
func (r Rec) String() string {
	switch r.Type {
	case RecTick:
		return fmt.Sprintf("tick now=%.6f", r.Now)
	case RecRecord:
		return fmt.Sprintf("record now=%.6f content=%d n=%d local=%.9f", r.Now, r.Content, r.N, r.LocalTime)
	case RecChat:
		return fmt.Sprintf("chat now=%.6f seq=%d adc=%.9f bytes=%d", r.Now, r.Seq, r.ADCLocal, len(r.Encoded))
	case RecMediaOut:
		return fmt.Sprintf("media stream=%d seq=%d content=%d off=%d size=%d", r.Stream, r.Seq, r.Content, r.ContentOff, r.Size)
	case RecMarkerInjected:
		return fmt.Sprintf("marker-injected content=%d", r.Content)
	case RecMarkerMatched:
		return fmt.Sprintf("marker-matched content=%d local=%.9f", r.Content, r.LocalTime)
	case RecMarkerExpired:
		return fmt.Sprintf("marker-expired content=%d", r.Content)
	case RecChatConcealed:
		return fmt.Sprintf("chat-concealed seq=%d start=%.9f", r.Seq, r.LocalTime)
	case RecISD:
		return fmt.Sprintf("isd now=%.6f isd=%.9f det=%.9f marker=%.9f strength=%.3f",
			r.Now, r.M.ISDSeconds, r.M.DetectionTime, r.M.MarkerTime, r.M.Strength)
	case RecAction:
		return fmt.Sprintf("action now=%.6f stream=%d insert=%d/%d skip=%d/%d", r.Now, r.Action.Stream,
			r.Action.InsertFrames, r.Action.InsertSamples, r.Action.SkipFrames, r.Action.SkipSamples)
	case RecProfile:
		return "profile"
	case RecResample:
		return fmt.Sprintf("resample now=%.6f stream=%d ppm=%.3f", r.Now, r.Resample.Stream, r.Resample.PPM)
	}
	return fmt.Sprintf("unknown(%d)", r.Type)
}

// IsInput reports whether the record re-drives the pipeline on replay.
func (r Rec) IsInput() bool {
	return r.Type == RecTick || r.Type == RecRecord || r.Type == RecChat
}

// IsEvent reports whether the record is a verified pipeline output.
func (r Rec) IsEvent() bool {
	switch r.Type {
	case RecMarkerInjected, RecMarkerMatched, RecMarkerExpired, RecChatConcealed, RecISD, RecAction, RecResample:
		return true
	}
	return false
}

// ---------------------------------------------------------------------------
// Low-level append helpers (the Recorder's zero-allocation encode path).

func appendU16(b []byte, v uint16) []byte { return binary.LittleEndian.AppendUint16(b, v) }
func appendU32(b []byte, v uint32) []byte { return binary.LittleEndian.AppendUint32(b, v) }
func appendU64(b []byte, v uint64) []byte { return binary.LittleEndian.AppendUint64(b, v) }
func appendF64(b []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
}
func appendBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}
func appendString(b []byte, s string) []byte {
	b = appendU16(b, uint16(len(s)))
	return append(b, s...)
}

// appendHeader serializes a Header payload.
func appendHeader(b []byte, h Header) []byte {
	b = appendU32(b, h.SessionID)
	b = appendU32(b, uint32(int32(h.ClipIndex)))
	b = appendF64(b, h.ClipSeconds)
	b = appendU64(b, uint64(h.Seed))
	b = appendU32(b, uint32(int32(h.SeqLen)))
	b = appendF64(b, h.MarkerC)
	b = appendString(b, h.Codec.Name)
	b = appendBool(b, h.Codec.Lossless)
	b = appendF64(b, h.Codec.BitrateKbps)
	b = appendF64(b, h.Codec.BandwidthHz)
	b = appendU32(b, uint32(int32(h.Codec.Complexity)))
	b = appendBool(b, h.Codec.LowDelay)
	b = appendF64(b, h.Compensator.MinCorrectionSec)
	b = appendF64(b, h.Compensator.SettleSec)
	b = appendBool(b, h.Compensator.SubFrame)
	b = appendU32(b, uint32(int32(h.InjectorLogLimit)))
	b = appendBool(b, h.DisableMarkers)
	b = appendBool(b, h.InterpolatedInsert)
	b = appendBool(b, h.MutedScreen)
	b = appendBool(b, h.ChatStartsAtZero)
	b = appendF64(b, h.MutedMarkerAmpDB)
	// Drift-regime tail (version-1 growth; readers accept its absence).
	b = appendBool(b, h.Drift.Enabled)
	b = appendF64(b, h.Drift.EngagePPM)
	b = appendF64(b, h.Drift.ReleasePPM)
	b = appendF64(b, h.Drift.MaxPPM)
	b = appendF64(b, h.Drift.MaxStepPPM)
	b = appendF64(b, h.Drift.SettleSec)
	b = appendF64(b, h.Drift.TStat)
	b = appendF64(b, h.Drift.BlankSec)
	b = appendU32(b, uint32(int32(h.DriftTracker.Window)))
	b = appendF64(b, h.DriftTracker.SpanSec)
	b = appendU32(b, uint32(int32(h.DriftTracker.MinPoints)))
	b = appendF64(b, h.DriftTracker.MinSpanSec)
	// Detector tail (version-1 growth; readers accept its absence).
	b = append(b, byte(h.Detector))
	return b
}

// appendLinkConfig serializes one netsim link shape.
func appendLinkConfig(b []byte, c netsim.LinkConfig) []byte {
	b = appendF64(b, c.BaseDelay)
	b = appendF64(b, c.JitterStd)
	b = appendF64(b, c.LossProb)
	b = appendF64(b, c.BurstFactor)
	b = appendF64(b, c.ReorderProb)
	b = appendF64(b, c.BandwidthBps)
	b = appendU32(b, uint32(int32(c.PacketBytes)))
	b = appendU32(b, uint32(int32(c.QueueLimit)))
	b = appendU64(b, uint64(c.Seed))
	return b
}

// ---------------------------------------------------------------------------
// Decoding.

// ErrCorrupt reports a structurally invalid trace.
var ErrCorrupt = errors.New("trace: corrupt log")

// decoder walks one record payload.
type decoder struct {
	b   []byte
	off int
	err error
}

func (d *decoder) fail() {
	if d.err == nil {
		d.err = fmt.Errorf("%w: truncated record payload", ErrCorrupt)
	}
}

func (d *decoder) u16() uint16 {
	if d.err != nil || d.off+2 > len(d.b) {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint16(d.b[d.off:])
	d.off += 2
	return v
}

func (d *decoder) u32() uint32 {
	if d.err != nil || d.off+4 > len(d.b) {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint32(d.b[d.off:])
	d.off += 4
	return v
}

func (d *decoder) u64() uint64 {
	if d.err != nil || d.off+8 > len(d.b) {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(d.b[d.off:])
	d.off += 8
	return v
}

func (d *decoder) i32() int     { return int(int32(d.u32())) }
func (d *decoder) i64() int64   { return int64(d.u64()) }
func (d *decoder) f64() float64 { return math.Float64frombits(d.u64()) }

func (d *decoder) boolean() bool { // named to avoid shadowing the builtin type
	if d.err != nil || d.off+1 > len(d.b) {
		d.fail()
		return false
	}
	v := d.b[d.off] != 0
	d.off++
	return v
}

func (d *decoder) str() string {
	n := int(d.u16())
	if d.err != nil || d.off+n > len(d.b) {
		d.fail()
		return ""
	}
	s := string(d.b[d.off : d.off+n])
	d.off += n
	return s
}

func (d *decoder) bytes() []byte {
	n := int(d.u32())
	if d.err != nil || n < 0 || d.off+n > len(d.b) {
		d.fail()
		return nil
	}
	b := d.b[d.off : d.off+n]
	d.off += n
	return b
}

func decodeHeader(payload []byte) (Header, error) {
	d := decoder{b: payload}
	var h Header
	h.SessionID = d.u32()
	h.ClipIndex = d.i32()
	h.ClipSeconds = d.f64()
	h.Seed = d.i64()
	h.SeqLen = d.i32()
	h.MarkerC = d.f64()
	h.Codec.Name = d.str()
	h.Codec.Lossless = d.boolean()
	h.Codec.BitrateKbps = d.f64()
	h.Codec.BandwidthHz = d.f64()
	h.Codec.Complexity = d.i32()
	h.Codec.LowDelay = d.boolean()
	h.Compensator.MinCorrectionSec = d.f64()
	h.Compensator.SettleSec = d.f64()
	h.Compensator.SubFrame = d.boolean()
	h.InjectorLogLimit = d.i32()
	h.DisableMarkers = d.boolean()
	h.InterpolatedInsert = d.boolean()
	h.MutedScreen = d.boolean()
	h.ChatStartsAtZero = d.boolean()
	h.MutedMarkerAmpDB = d.f64()
	// The drift tail was appended within version 1: a pre-drift trace
	// ends here, and its absence means drift-disabled (the only behavior
	// those sessions could have run). The guard must not set the decoder
	// error — a short payload is valid, a *partial* tail is not.
	if d.err == nil && d.off < len(d.b) {
		h.Drift.Enabled = d.boolean()
		h.Drift.EngagePPM = d.f64()
		h.Drift.ReleasePPM = d.f64()
		h.Drift.MaxPPM = d.f64()
		h.Drift.MaxStepPPM = d.f64()
		h.Drift.SettleSec = d.f64()
		h.Drift.TStat = d.f64()
		h.Drift.BlankSec = d.f64()
		h.DriftTracker.Window = d.i32()
		h.DriftTracker.SpanSec = d.f64()
		h.DriftTracker.MinPoints = d.i32()
		h.DriftTracker.MinSpanSec = d.f64()
	}
	// The detector tail came later still. Pre-two-stage traces ran the
	// full-rate detector, so absence means DetectorFullRate explicitly:
	// the zero value now names the two-stage default.
	h.Detector = estimator.DetectorFullRate
	if d.err == nil && d.off < len(d.b) {
		h.Detector = estimator.DetectorMode(d.b[d.off])
		d.off++
	}
	return h, d.err
}

func decodeLinkConfig(d *decoder) netsim.LinkConfig {
	var c netsim.LinkConfig
	c.BaseDelay = d.f64()
	c.JitterStd = d.f64()
	c.LossProb = d.f64()
	c.BurstFactor = d.f64()
	c.ReorderProb = d.f64()
	c.BandwidthBps = d.f64()
	c.PacketBytes = d.i32()
	c.QueueLimit = d.i32()
	c.Seed = d.i64()
	return c
}

// Reader decodes a trace container record by record.
type Reader struct {
	r       *bufio.Reader
	scratch []byte
	// Header is the session header, valid once ReadHeader (or the first
	// Next that encounters it) has run.
	hdr    Header
	hasHdr bool
}

// NewReader validates the preamble and positions the reader at the first
// record.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var pre [10]byte
	if _, err := io.ReadFull(br, pre[:]); err != nil {
		return nil, fmt.Errorf("%w: missing preamble: %v", ErrCorrupt, err)
	}
	if [8]byte(pre[:8]) != magic {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	if v := binary.LittleEndian.Uint16(pre[8:]); v != Version {
		return nil, fmt.Errorf("trace: unsupported version %d (reader speaks %d)", v, Version)
	}
	return &Reader{r: br}, nil
}

// Header returns the session header and whether one has been read yet.
func (rd *Reader) Header() (Header, bool) { return rd.hdr, rd.hasHdr }

// next reads one raw record.
func (rd *Reader) next() (RecType, []byte, error) {
	var pre [5]byte
	if _, err := io.ReadFull(rd.r, pre[:1]); err != nil {
		if err == io.EOF {
			return 0, nil, io.EOF
		}
		return 0, nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	if _, err := io.ReadFull(rd.r, pre[1:]); err != nil {
		return 0, nil, fmt.Errorf("%w: truncated record prefix: %v", ErrCorrupt, err)
	}
	n := binary.LittleEndian.Uint32(pre[1:])
	if n > maxRecordLen {
		return 0, nil, fmt.Errorf("%w: record length %d exceeds limit", ErrCorrupt, n)
	}
	if cap(rd.scratch) < int(n) {
		rd.scratch = make([]byte, n)
	}
	buf := rd.scratch[:n]
	if _, err := io.ReadFull(rd.r, buf); err != nil {
		return 0, nil, fmt.Errorf("%w: truncated record payload: %v", ErrCorrupt, err)
	}
	return RecType(pre[0]), buf, nil
}

// Next decodes the next known record, transparently skipping unknown
// types (forward compatibility within a version). It returns io.EOF at a
// clean end of log. Byte-slice fields alias the reader's scratch buffer
// until the following Next call.
func (rd *Reader) Next() (Rec, error) {
	for {
		t, payload, err := rd.next()
		if err != nil {
			return Rec{}, err
		}
		d := decoder{b: payload}
		rec := Rec{Type: t}
		switch t {
		case RecHeader:
			h, err := decodeHeader(payload)
			if err != nil {
				return Rec{}, err
			}
			rd.hdr, rd.hasHdr = h, true
			return rec, nil
		case RecTick:
			rec.Now = d.f64()
		case RecRecord:
			rec.Now = d.f64()
			rec.Content = d.i64()
			rec.N = d.i32()
			rec.LocalTime = d.f64()
		case RecChat:
			rec.Now = d.f64()
			rec.Seq = d.u32()
			rec.ADCLocal = d.f64()
			rec.Encoded = d.bytes()
		case RecMediaOut:
			rec.Stream = uint8(d.u32())
			rec.Seq = d.u32()
			rec.Content = d.i64()
			rec.ContentOff = d.i32()
			rec.Size = d.i32()
		case RecMarkerInjected, RecMarkerExpired:
			rec.Content = d.i64()
		case RecMarkerMatched:
			rec.Content = d.i64()
			rec.LocalTime = d.f64()
		case RecChatConcealed:
			rec.Seq = d.u32()
			rec.LocalTime = d.f64()
		case RecISD:
			rec.Now = d.f64()
			rec.M.ISDSeconds = d.f64()
			rec.M.DetectionTime = d.f64()
			rec.M.MarkerTime = d.f64()
			rec.M.Strength = d.f64()
		case RecAction:
			rec.Now = d.f64()
			rec.Action.Stream = compensator.Stream(d.i32())
			rec.Action.InsertFrames = d.i32()
			rec.Action.SkipFrames = d.i32()
			rec.Action.InsertSamples = d.i32()
			rec.Action.SkipSamples = d.i32()
		case RecResample:
			rec.Now = d.f64()
			rec.Resample.Stream = compensator.Stream(d.i32())
			rec.Resample.PPM = d.f64()
		case RecProfile:
			// Decoded by ReadProviderProfiles; surfaced raw here so Replay
			// can skip it.
			return rec, nil
		default:
			continue // unknown type: skip
		}
		if d.err != nil {
			return Rec{}, d.err
		}
		return rec, nil
	}
}
