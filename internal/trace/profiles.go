package trace

import (
	"fmt"
	"io"

	"ekho/internal/netsim"
)

// WriteProviderProfiles stores named network provider profiles in the
// trace container format (a profile file is the preamble followed by one
// RecProfile record per profile). Session traces and profile files share
// one format, so tooling needs a single reader.
func WriteProviderProfiles(w io.Writer, profiles []netsim.ProviderProfile) error {
	var pre [10]byte
	copy(pre[:8], magic[:])
	pre[8] = Version & 0xff
	pre[9] = Version >> 8
	if _, err := w.Write(pre[:]); err != nil {
		return err
	}
	var buf []byte
	for _, p := range profiles {
		buf = buf[:0]
		buf = append(buf, byte(RecProfile), 0, 0, 0, 0)
		buf = appendString(buf, p.Name)
		buf = appendLinkConfig(buf, p.Down)
		buf = appendLinkConfig(buf, p.Up)
		n := uint32(len(buf) - 5)
		buf[1] = byte(n)
		buf[2] = byte(n >> 8)
		buf[3] = byte(n >> 16)
		buf[4] = byte(n >> 24)
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

// ReadProviderProfiles loads every provider profile from a trace
// container, skipping any other record types (so profiles can also ride
// inside a session trace).
func ReadProviderProfiles(r io.Reader) ([]netsim.ProviderProfile, error) {
	rd, err := NewReader(r)
	if err != nil {
		return nil, err
	}
	var out []netsim.ProviderProfile
	for {
		t, payload, err := rd.next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		if t != RecProfile {
			continue
		}
		d := decoder{b: payload}
		var p netsim.ProviderProfile
		p.Name = d.str()
		p.Down = decodeLinkConfig(&d)
		p.Up = decodeLinkConfig(&d)
		if d.err != nil {
			return nil, fmt.Errorf("trace: profile record: %w", d.err)
		}
		out = append(out, p)
	}
}
