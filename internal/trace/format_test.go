package trace

import (
	"bytes"
	"errors"
	"io"
	"math"
	"math/rand"
	"testing"

	"ekho/internal/codec"
	"ekho/internal/compensator"
	"ekho/internal/estimator"
	"ekho/internal/netsim"
	"ekho/internal/serverpipe"
)

// testHeader is a header with every field set to a non-default value, so
// round-trip tests cannot pass by accident.
func testHeader() Header {
	return Header{
		SessionID:   77,
		ClipIndex:   13,
		ClipSeconds: 7.5,
		Seed:        -987654321,
		SeqLen:      640,
		MarkerC:     0.75,
		Codec: codec.Profile{
			Name: "custom-wb", Lossless: false, BitrateKbps: 24,
			BandwidthHz: 8000, Complexity: 5, LowDelay: true,
		},
		Compensator:        compensator.Config{MinCorrectionSec: 0.012, SettleSec: 4.5, SubFrame: true},
		InjectorLogLimit:   -1,
		DisableMarkers:     false,
		InterpolatedInsert: true,
		MutedScreen:        true,
		ChatStartsAtZero:   true,
		MutedMarkerAmpDB:   9.5,
		Drift: compensator.DriftConfig{
			Enabled: true, EngagePPM: 25, ReleasePPM: 8, MaxPPM: 350,
			MaxStepPPM: 55, SettleSec: 6.5, TStat: 2.25, BlankSec: 3.25,
		},
		DriftTracker: estimator.DriftConfig{
			Window: 48, SpanSec: 25, MinPoints: 5, MinSpanSec: 3.5,
		},
		Detector: estimator.DetectorFullRate,
	}
}

// A trace recorded before the two-stage detector existed ends before the
// detector byte; its session can only have run the full-rate pipeline, so
// the decoder must say so explicitly (the zero DetectorMode now names the
// two-stage default).
func TestHeaderDetectorTailAbsent(t *testing.T) {
	h := testHeader()
	h.Detector = estimator.DetectorTwoStage
	b := appendHeader(nil, h)
	got, err := decodeHeader(b[:len(b)-1])
	if err != nil {
		t.Fatal(err)
	}
	if got.Detector != estimator.DetectorFullRate {
		t.Fatalf("absent detector tail decoded as %v, want full-rate", got.Detector)
	}
}

// randomTap emits one random tap call on the recorder and returns the Rec
// the reader should produce for it.
func randomTap(rng *rand.Rand, r *Recorder) Rec {
	now := rng.Float64() * 300
	switch rng.Intn(11) {
	case 0:
		r.Tick(now)
		return Rec{Type: RecTick, Now: now}
	case 1:
		rec := serverpipe.Record{
			ContentStart: rng.Int63n(1 << 40),
			N:            rng.Intn(960),
			LocalTime:    rng.NormFloat64() * 10,
		}
		r.OfferRecord(now, rec)
		return Rec{Type: RecRecord, Now: now, Content: rec.ContentStart, N: rec.N, LocalTime: rec.LocalTime}
	case 2:
		seq := rng.Uint32()
		adc := rng.NormFloat64() * 100
		enc := make([]byte, rng.Intn(200))
		rng.Read(enc)
		r.OfferChat(now, seq, adc, enc)
		return Rec{Type: RecChat, Now: now, Seq: seq, ADCLocal: adc, Encoded: enc}
	case 3:
		stream := uint8(rng.Intn(2))
		fi := serverpipe.FrameInfo{
			Seq:          rng.Uint32(),
			ContentStart: rng.Int63n(1<<40) - 1,
			ContentOff:   rng.Intn(960),
		}
		size := rng.Intn(4096)
		r.MediaOut(stream, fi, size)
		return Rec{Type: RecMediaOut, Stream: stream, Seq: fi.Seq, Content: fi.ContentStart, ContentOff: fi.ContentOff, Size: size}
	case 4:
		c := rng.Int63n(1 << 40)
		r.MarkerInjected(c)
		return Rec{Type: RecMarkerInjected, Content: c}
	case 5:
		c := rng.Int63n(1 << 40)
		lt := rng.NormFloat64() * 50
		r.MarkerMatched(c, lt)
		return Rec{Type: RecMarkerMatched, Content: c, LocalTime: lt}
	case 6:
		c := rng.Int63n(1 << 40)
		r.MarkerExpired(c)
		return Rec{Type: RecMarkerExpired, Content: c}
	case 7:
		seq := rng.Uint32()
		lt := rng.NormFloat64() * 50
		r.ChatGapConcealed(seq, lt)
		return Rec{Type: RecChatConcealed, Seq: seq, LocalTime: lt}
	case 8:
		m := estimator.Measurement{
			ISDSeconds:    rng.NormFloat64() * 0.3,
			DetectionTime: rng.Float64() * 300,
			MarkerTime:    rng.Float64() * 300,
			Strength:      rng.Float64() * 40,
		}
		r.ISDMeasurement(now, m)
		return Rec{Type: RecISD, Now: now, M: m}
	case 9:
		rs := compensator.Resample{
			Stream: compensator.Stream(rng.Intn(2)),
			PPM:    rng.NormFloat64() * 200,
		}
		r.ResampleApplied(now, rs)
		return Rec{Type: RecResample, Now: now, Resample: rs}
	default:
		a := compensator.Action{
			Stream:        compensator.Stream(rng.Intn(2)),
			InsertFrames:  rng.Intn(30),
			SkipFrames:    rng.Intn(30),
			InsertSamples: rng.Intn(960),
			SkipSamples:   rng.Intn(960),
		}
		r.CompensationAction(now, a)
		return Rec{Type: RecAction, Now: now, Action: a}
	}
}

func sameRec(a, b Rec) bool {
	return a.Type == b.Type && a.Now == b.Now && a.Content == b.Content &&
		a.LocalTime == b.LocalTime && a.N == b.N && a.Seq == b.Seq &&
		a.ADCLocal == b.ADCLocal && bytes.Equal(a.Encoded, b.Encoded) &&
		a.Stream == b.Stream && a.ContentOff == b.ContentOff && a.Size == b.Size &&
		a.M == b.M && a.Action == b.Action && a.Resample == b.Resample
}

// TestRoundTrip is the codec property test: random tap sequences must
// decode back to exactly what was recorded, across many seeds.
func TestRoundTrip(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		hdr := testHeader()
		hdr.SessionID = uint32(seed)

		var buf bytes.Buffer
		rec, err := NewRecorder(&buf, hdr)
		if err != nil {
			t.Fatalf("seed %d: NewRecorder: %v", seed, err)
		}
		n := 1 + rng.Intn(200)
		want := make([]Rec, n)
		for i := range want {
			want[i] = randomTap(rng, rec)
		}
		if err := rec.Close(); err != nil {
			t.Fatalf("seed %d: Close: %v", seed, err)
		}
		if got := rec.Records(); got != int64(n)+1 {
			t.Fatalf("seed %d: Records() = %d, want %d", seed, got, n+1)
		}

		rd, err := NewReader(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("seed %d: NewReader: %v", seed, err)
		}
		first, err := rd.Next()
		if err != nil || first.Type != RecHeader {
			t.Fatalf("seed %d: first record = %v, %v; want header", seed, first, err)
		}
		gotHdr, ok := rd.Header()
		if !ok || gotHdr != hdr {
			t.Fatalf("seed %d: header round trip:\n got %+v\nwant %+v", seed, gotHdr, hdr)
		}
		for i, w := range want {
			g, err := rd.Next()
			if err != nil {
				t.Fatalf("seed %d: record %d: %v", seed, i, err)
			}
			if !sameRec(w, g) {
				t.Fatalf("seed %d: record %d:\n got %s\nwant %s", seed, i, g, w)
			}
		}
		if _, err := rd.Next(); err != io.EOF {
			t.Fatalf("seed %d: expected clean EOF, got %v", seed, err)
		}
	}
}

// TestRoundTripSpecialFloats checks that NaN and infinities survive the
// bit-level float encoding (NaN != NaN, so compare bit patterns).
func TestRoundTripSpecialFloats(t *testing.T) {
	var buf bytes.Buffer
	rec, err := NewRecorder(&buf, testHeader())
	if err != nil {
		t.Fatal(err)
	}
	vals := []float64{math.NaN(), math.Inf(1), math.Inf(-1), -0.0}
	for _, v := range vals {
		rec.Tick(v)
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	rd, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rd.Next(); err != nil { // header
		t.Fatal(err)
	}
	for i, v := range vals {
		g, err := rd.Next()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if math.Float64bits(g.Now) != math.Float64bits(v) {
			t.Fatalf("record %d: got bits %x, want %x", i, math.Float64bits(g.Now), math.Float64bits(v))
		}
	}
}

// buildValidLog returns a small complete trace for corruption tests.
func buildValidLog(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	rec, err := NewRecorder(&buf, testHeader())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 20; i++ {
		randomTap(rng, rec)
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// readAll consumes a log until EOF or error, returning the terminal error.
func readAll(data []byte) error {
	rd, err := NewReader(bytes.NewReader(data))
	if err != nil {
		return err
	}
	for {
		if _, err := rd.Next(); err != nil {
			return err
		}
	}
}

// TestTruncatedLog truncates a valid log at every possible byte offset:
// every prefix must produce either a clean EOF (truncation at a record
// boundary) or a structured error — never a panic or a hang.
func TestTruncatedLog(t *testing.T) {
	data := buildValidLog(t)
	for cut := 0; cut < len(data); cut++ {
		err := readAll(data[:cut])
		if err == nil {
			t.Fatalf("cut %d: no terminal error", cut)
		}
		if err != io.EOF && !errors.Is(err, ErrCorrupt) {
			t.Fatalf("cut %d: unexpected error %v", cut, err)
		}
	}
	if err := readAll(data); err != io.EOF {
		t.Fatalf("full log: %v", err)
	}
}

// TestCorruptLog flips structural fields and checks for clean errors.
func TestCorruptLog(t *testing.T) {
	valid := buildValidLog(t)

	t.Run("bad magic", func(t *testing.T) {
		data := append([]byte(nil), valid...)
		data[0] ^= 0xff
		if err := readAll(data); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("got %v, want ErrCorrupt", err)
		}
	})
	t.Run("unknown version", func(t *testing.T) {
		data := append([]byte(nil), valid...)
		data[8], data[9] = 0xfe, 0xca
		if _, err := NewReader(bytes.NewReader(data)); err == nil {
			t.Fatal("version 0xcafe accepted")
		} else if errors.Is(err, ErrCorrupt) {
			t.Fatalf("unsupported version should not be ErrCorrupt: %v", err)
		}
	})
	t.Run("huge record length", func(t *testing.T) {
		data := append([]byte(nil), valid[:10]...)
		data = append(data, byte(RecTick), 0xff, 0xff, 0xff, 0xff) // len ~4G
		if err := readAll(data); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("got %v, want ErrCorrupt", err)
		}
	})
	t.Run("payload shorter than fields", func(t *testing.T) {
		// A tick record whose payload is 4 bytes (needs 8).
		data := append([]byte(nil), valid[:10]...)
		data = append(data, byte(RecTick), 4, 0, 0, 0, 1, 2, 3, 4)
		if err := readAll(data); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("got %v, want ErrCorrupt", err)
		}
	})
	t.Run("empty file", func(t *testing.T) {
		if _, err := NewReader(bytes.NewReader(nil)); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("got %v, want ErrCorrupt", err)
		}
	})
}

// TestUnknownRecordSkipped checks forward compatibility: an unknown record
// type between known records is skipped, not an error.
func TestUnknownRecordSkipped(t *testing.T) {
	var buf bytes.Buffer
	rec, err := NewRecorder(&buf, testHeader())
	if err != nil {
		t.Fatal(err)
	}
	rec.Tick(1.5)
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Splice an unknown record (type 200, 3-byte payload) before the tick:
	// the header occupies the first record after the 10-byte preamble.
	hdrLen := 10 + 5 + int(uint32(data[11])|uint32(data[12])<<8|uint32(data[13])<<16|uint32(data[14])<<24)
	spliced := append([]byte(nil), data[:hdrLen]...)
	spliced = append(spliced, 200, 3, 0, 0, 0, 0xaa, 0xbb, 0xcc)
	spliced = append(spliced, data[hdrLen:]...)

	rd, err := NewReader(bytes.NewReader(spliced))
	if err != nil {
		t.Fatal(err)
	}
	if r, err := rd.Next(); err != nil || r.Type != RecHeader {
		t.Fatalf("header: %v %v", r, err)
	}
	r, err := rd.Next()
	if err != nil || r.Type != RecTick || r.Now != 1.5 {
		t.Fatalf("expected tick 1.5 after skipping unknown record, got %v %v", r, err)
	}
	if _, err := rd.Next(); err != io.EOF {
		t.Fatalf("want EOF, got %v", err)
	}
}

// TestProviderProfilesRoundTrip checks the profile container round trip.
func TestProviderProfilesRoundTrip(t *testing.T) {
	want := netsim.Providers()
	var buf bytes.Buffer
	if err := WriteProviderProfiles(&buf, want); err != nil {
		t.Fatal(err)
	}
	got, err := ReadProviderProfiles(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d profiles, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("profile %d:\n got %+v\nwant %+v", i, got[i], want[i])
		}
	}
}

// TestRecorderAllocs guards the zero-allocation hot path: steady-state
// tick/event recording must not allocate.
func TestRecorderAllocs(t *testing.T) {
	rec, err := NewRecorder(io.Discard, testHeader())
	if err != nil {
		t.Fatal(err)
	}
	m := estimator.Measurement{ISDSeconds: 0.01, DetectionTime: 1, MarkerTime: 2, Strength: 3}
	fi := serverpipe.FrameInfo{Seq: 9, ContentStart: 960, ContentOff: 4}
	// Warm up the scratch buffer.
	rec.Tick(0.02)
	rec.ISDMeasurement(0.02, m)
	rec.MediaOut(StreamScreen, fi, 100)
	allocs := testing.AllocsPerRun(200, func() {
		rec.Tick(0.02)
		rec.MediaOut(StreamScreen, fi, 100)
		rec.MediaOut(StreamAccessory, fi, 100)
		rec.ISDMeasurement(0.02, m)
	})
	// The bufio.Writer flushes to io.Discard without allocating; allow 1
	// alloc of slack for the occasional flush bookkeeping.
	if allocs > 1 {
		t.Fatalf("recording hot path allocates %.1f times per tick", allocs)
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
}
