package dsp

import (
	"fmt"
	"math"
)

// FIR is a finite impulse response filter described by its tap coefficients.
// The zero value is an identity-less (empty) filter; construct one with the
// design helpers (LowPass, HighPass, BandPass) or directly from taps.
type FIR struct {
	Taps []float64
}

// NewFIR wraps a coefficient slice as a FIR filter.
func NewFIR(taps []float64) *FIR { return &FIR{Taps: taps} }

// LowPass designs a windowed-sinc low-pass FIR with the given cutoff (Hz),
// sample rate (Hz), and number of taps (forced odd for symmetric delay).
// A Hamming window bounds the side lobes at roughly -53 dB, plenty for
// the marker band-limiting in Ekho.
func LowPass(cutoff, sampleRate float64, taps int) *FIR {
	taps = oddify(taps)
	h := make([]float64, taps)
	fc := cutoff / sampleRate // normalized (cycles/sample)
	mid := taps / 2
	w := hammingWindow(taps)
	var sum float64
	for i := 0; i < taps; i++ {
		n := float64(i - mid)
		var v float64
		if n == 0 {
			v = 2 * fc
		} else {
			v = math.Sin(2*math.Pi*fc*n) / (math.Pi * n)
		}
		v *= w[i]
		h[i] = v
		sum += v
	}
	// Normalize DC gain to exactly 1.
	for i := range h {
		h[i] /= sum
	}
	return &FIR{Taps: h}
}

// HighPass designs a windowed-sinc high-pass FIR by spectral inversion of
// the corresponding low-pass design.
func HighPass(cutoff, sampleRate float64, taps int) *FIR {
	lp := LowPass(cutoff, sampleRate, taps)
	h := lp.Taps
	for i := range h {
		h[i] = -h[i]
	}
	h[len(h)/2] += 1
	return &FIR{Taps: h}
}

// BandPass designs a linear-phase band-pass FIR passing [lo, hi] Hz. This is
// the filter Ekho applies to Gaussian noise to produce the 6-12 kHz
// pseudo-noise marker (Section 4.2 of the paper).
func BandPass(lo, hi, sampleRate float64, taps int) *FIR {
	if lo >= hi {
		panic(fmt.Sprintf("dsp: BandPass lo %v >= hi %v", lo, hi))
	}
	taps = oddify(taps)
	lpHi := LowPass(hi, sampleRate, taps)
	lpLo := LowPass(lo, sampleRate, taps)
	h := make([]float64, taps)
	for i := range h {
		h[i] = lpHi.Taps[i] - lpLo.Taps[i]
	}
	return &FIR{Taps: h}
}

// Len returns the number of taps.
func (f *FIR) Len() int { return len(f.Taps) }

// GroupDelay returns the filter's constant group delay in samples
// (linear-phase symmetric designs only).
func (f *FIR) GroupDelay() int { return len(f.Taps) / 2 }

// Apply convolves x with the filter and returns a signal of the same length
// as x, compensating the linear-phase group delay so features stay aligned
// with the input. Short inputs are handled by zero-padding at the edges.
func (f *FIR) Apply(x []float64) []float64 {
	if len(x) == 0 {
		return make([]float64, 0)
	}
	full := f.ApplyFull(x)
	d := f.GroupDelay()
	out := make([]float64, len(x))
	copy(out, full[d:])
	return out
}

// ApplyFull returns the full convolution of length len(x)+len(taps)-1.
// For long inputs it switches to FFT overlap-free block convolution.
func (f *FIR) ApplyFull(x []float64) []float64 {
	n, m := len(x), len(f.Taps)
	if n == 0 || m == 0 {
		return make([]float64, 0)
	}
	outLen := n + m - 1
	// Direct convolution below a size threshold; FFT beyond it.
	if n*m <= 1<<16 {
		out := make([]float64, outLen)
		for i := 0; i < n; i++ {
			xi := x[i]
			if xi == 0 {
				continue
			}
			for j := 0; j < m; j++ {
				out[i+j] += xi * f.Taps[j]
			}
		}
		return out
	}
	return fftConvolve(x, f.Taps, outLen)
}

// fftConvolve computes linear convolution via a single large FFT.
func fftConvolve(a, b []float64, outLen int) []float64 {
	n := NextPow2(outLen)
	fa := make([]complex128, n)
	fb := make([]complex128, n)
	for i, v := range a {
		fa[i] = complex(v, 0)
	}
	for i, v := range b {
		fb[i] = complex(v, 0)
	}
	fftPow2(fa, false)
	fftPow2(fb, false)
	for i := range fa {
		fa[i] *= fb[i]
	}
	fftPow2(fa, true)
	out := make([]float64, outLen)
	scale := 1 / float64(n)
	for i := 0; i < outLen; i++ {
		out[i] = real(fa[i]) * scale
	}
	return out
}

// Response returns the filter's magnitude response (in dB) at the given
// frequency, evaluated directly from the taps.
func (f *FIR) Response(freq, sampleRate float64) float64 {
	omega := 2 * math.Pi * freq / sampleRate
	var re, im float64
	for i, t := range f.Taps {
		re += t * math.Cos(omega*float64(i))
		im -= t * math.Sin(omega*float64(i))
	}
	mag := math.Hypot(re, im)
	if mag <= 0 {
		return math.Inf(-1)
	}
	return 20 * math.Log10(mag)
}

func oddify(n int) int {
	if n < 3 {
		n = 3
	}
	if n%2 == 0 {
		n++
	}
	return n
}

func hammingWindow(n int) []float64 {
	w := make([]float64, n)
	if n == 1 {
		w[0] = 1
		return w
	}
	for i := 0; i < n; i++ {
		w[i] = 0.54 - 0.46*math.Cos(2*math.Pi*float64(i)/float64(n-1))
	}
	return w
}
