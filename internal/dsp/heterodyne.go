package dsp

import "math"

// Quadrature heterodyne front-end for the band-decimated marker detector.
//
// Ekho's markers occupy 6-12 kHz only, so the detector can translate that
// band to complex baseband (multiply by e^{-jω0·n} with ω0 at the 9 kHz
// band center), low-pass it, and decimate — the correlation then runs at
// the band rate instead of the full 48 kHz. QuadOsc is the oscillator for
// that mix-down.
//
// At the rates Ekho uses the oscillator is exact: 9000/48000 = 3/16, so
// e^{-jω0·n} repeats every 16 samples and one precomputed period serves
// the whole stream with zero phase drift — no recurrence error accumulates
// no matter how many hours of audio pass through.

// QuadOsc generates e^{-jω·n} for ω = 2π·freq/rate by table lookup over
// one exact period (rate/gcd(freq,rate) entries). The phase is tracked as
// an absolute sample index, so mix-down output depends only on a sample's
// absolute position, never on chunk boundaries.
type QuadOsc struct {
	tab []complex128 // tab[k] = e^{-jω·k} over one exact period
	idx int          // next absolute sample index mod len(tab)
}

// NewQuadOsc returns an oscillator at freq Hz for a rate Hz stream. Both
// must be positive integers (true for every rate in this codebase); the
// period rate/gcd(freq,rate) is exact.
func NewQuadOsc(freq, rate int) *QuadOsc {
	if freq <= 0 || rate <= 0 {
		panic("dsp: QuadOsc needs positive integer freq and rate")
	}
	g := gcd(freq, rate)
	period := rate / g
	o := &QuadOsc{tab: make([]complex128, period)}
	for k := range o.tab {
		// Reduce the angle mod 2π in exact integer arithmetic before
		// evaluating, so every table entry has full float64 precision.
		num := (freq / g * k) % period
		s, c := math.Sincos(-2 * math.Pi * float64(num) / float64(period))
		o.tab[k] = complex(c, s)
	}
	return o
}

// Period returns the oscillator's exact period in samples.
func (o *QuadOsc) Period() int { return len(o.tab) }

// Factor returns e^{-jω·k} for an absolute sample index k ≥ 0.
func (o *QuadOsc) Factor(k int) complex128 { return o.tab[k%len(o.tab)] }

// MixDown appends x[i]·e^{-jω·(n+i)} to dst, where n is the running count
// of samples already mixed, and returns the extended slice. With a dst
// whose capacity covers the result it allocates nothing.
func (o *QuadOsc) MixDown(dst []complex128, x []float64) []complex128 {
	idx, tab := o.idx, o.tab
	for _, v := range x {
		w := tab[idx]
		dst = append(dst, complex(v*real(w), v*imag(w)))
		idx++
		if idx == len(tab) {
			idx = 0
		}
	}
	o.idx = idx
	return dst
}

// Reset rewinds the oscillator to absolute sample 0.
func (o *QuadOsc) Reset() { o.idx = 0 }

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}
