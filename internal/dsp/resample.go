package dsp

import "math"

// ResampleLinear converts x to a new length using linear interpolation.
// It is used for small playback-rate adjustments (temporarily faster
// playback during delay reversion) where a full polyphase resampler would
// be overkill.
func ResampleLinear(x []float64, outLen int) []float64 {
	if outLen <= 0 || len(x) == 0 {
		return make([]float64, 0)
	}
	out := make([]float64, outLen)
	if len(x) == 1 {
		for i := range out {
			out[i] = x[0]
		}
		return out
	}
	step := float64(len(x)-1) / float64(outLen-1)
	if outLen == 1 {
		out[0] = x[0]
		return out
	}
	for i := 0; i < outLen; i++ {
		pos := float64(i) * step
		j := int(pos)
		if j >= len(x)-1 {
			out[i] = x[len(x)-1]
			continue
		}
		frac := pos - float64(j)
		out[i] = x[j]*(1-frac) + x[j+1]*frac
	}
	return out
}

// FractionalDelay shifts x by a (possibly fractional) number of samples
// using windowed-sinc interpolation, returning a slice of the same length.
// Positive delay moves content later in time. Sub-sample shifts are what
// let the simulator exercise Ekho's sub-millisecond accuracy claims.
func FractionalDelay(x []float64, delay float64) []float64 {
	n := len(x)
	out := make([]float64, n)
	if n == 0 {
		return out
	}
	intPart := math.Floor(delay)
	frac := delay - intPart
	shift := int(intPart)
	if frac == 0 {
		for i := range out {
			src := i - shift
			if src >= 0 && src < n {
				out[i] = x[src]
			}
		}
		return out
	}
	const halfWidth = 16
	for i := 0; i < n; i++ {
		// out[i] = x(i - delay) interpolated.
		center := float64(i) - delay
		j0 := int(math.Floor(center)) - halfWidth + 1
		var acc float64
		for j := j0; j < j0+2*halfWidth; j++ {
			if j < 0 || j >= n {
				continue
			}
			t := center - float64(j)
			acc += x[j] * sincHann(t, halfWidth)
		}
		out[i] = acc
	}
	return out
}

func sincHann(t float64, halfWidth int) float64 {
	if math.Abs(t) >= float64(halfWidth) {
		return 0
	}
	var s float64
	if t == 0 {
		s = 1
	} else {
		pt := math.Pi * t
		s = math.Sin(pt) / pt
	}
	// Hann taper over the kernel support.
	w := 0.5 + 0.5*math.Cos(math.Pi*t/float64(halfWidth))
	return s * w
}
