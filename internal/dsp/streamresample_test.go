package dsp

import (
	"math"
	"math/rand"
	"testing"
)

// feedStream pushes src through a fresh resampler in 960-sample chunks and
// flushes, returning the full output.
func feedStream(t *testing.T, step float64, src []float64) []float64 {
	t.Helper()
	r := NewStreamResampler(step, 960)
	var out []float64
	for off := 0; off < len(src); off += 960 {
		end := off + 960
		if end > len(src) {
			end = len(src)
		}
		out = r.Process(out, src[off:end])
	}
	return r.Flush(out)
}

// Property: total output length matches the commanded ratio within one
// sample, across micro (ppm-scale) and macro ratios and input lengths
// that are not multiples of the chunk size.
func TestStreamResamplerLengthMatchesRatio(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	steps := []float64{
		1, 1 + 10e-6, 1 - 10e-6, 1 + 100e-6, 1 - 100e-6,
		1 + 200e-6, 1 - 200e-6, 1.25, 0.75, 1.001, 0.999,
	}
	lengths := []int{960, 4321, 48000, 96001}
	for _, step := range steps {
		for _, n := range lengths {
			src := make([]float64, n)
			for i := range src {
				src[i] = rng.NormFloat64()
			}
			out := feedStream(t, step, src)
			want := float64(n) / step
			if d := math.Abs(float64(len(out)) - want); d > 1 {
				t.Errorf("step=%v n=%d: got %d output samples, want %.2f (off by %.2f)",
					step, n, len(out), want, d)
			}
		}
	}
}

// toneFreq estimates a sinusoid's frequency (cycles per sample) by
// least-squares fitting crossing index against sub-sample-interpolated
// upward zero-crossing positions. Precision is far below 1 ppm over a
// couple of seconds of signal, which is what distinguishing micro ratios
// requires.
func toneFreq(x []float64) float64 {
	var xs, ys, xx, xy float64
	var k float64
	for i := 1; i < len(x); i++ {
		if x[i-1] < 0 && x[i] >= 0 {
			pos := float64(i-1) + x[i-1]/(x[i-1]-x[i])
			xs += k
			ys += pos
			xx += k * k
			xy += k * pos
			k++
		}
	}
	if k < 2 {
		return 0
	}
	period := (k*xy - xs*ys) / (k*xx - xs*xs)
	return 1 / period
}

// Property: a pure tone's frequency shifts by exactly the conversion
// ratio — consuming step input samples per output sample multiplies the
// per-output-sample phase advance by step.
func TestStreamResamplerToneFrequency(t *testing.T) {
	const n = 2 * 48000
	const f0 = 997.0 / 48000 // cycles per sample, deliberately non-bin
	src := make([]float64, n)
	for i := range src {
		src[i] = math.Sin(2 * math.Pi * f0 * float64(i))
	}
	for _, step := range []float64{1 + 100e-6, 1 - 100e-6, 1 + 200e-6, 1.25, 0.75} {
		out := feedStream(t, step, src)
		// Trim the kernel edges so only fully interior samples are fit.
		meas := toneFreq(out[100 : len(out)-100])
		want := f0 * step
		relErr := math.Abs(meas-want) / want
		if relErr > 2e-6 {
			t.Errorf("step=%v: tone at %.9f cyc/sample, want %.9f (rel err %.2g)",
				step, meas, want, relErr)
		}
	}
}

// A constant signal must pass through at exactly unit gain at every
// fractional phase (the polyphase rows are DC-normalized).
func TestStreamResamplerDCExact(t *testing.T) {
	src := make([]float64, 4800)
	for i := range src {
		src[i] = 0.5
	}
	out := feedStream(t, 1+137e-6, src)
	for i, v := range out {
		if i < 8 || i > len(out)-8 {
			continue // kernel ramp-in/out touches the zero padding
		}
		if math.Abs(v-0.5) > 1e-12 {
			t.Fatalf("DC not exact at %d: %v", i, v)
		}
	}
}

// Property: steady-state operation is allocation-free — the input buffer
// is compacted in place and output goes into caller capacity.
func TestStreamResamplerZeroAlloc(t *testing.T) {
	r := NewStreamResampler(1+100e-6, 960)
	src := make([]float64, 960)
	for i := range src {
		src[i] = math.Sin(float64(i) / 7)
	}
	dst := make([]float64, 0, 2048)
	// Warm up: reach steady state (buffer at final capacity).
	for i := 0; i < 8; i++ {
		dst = r.Process(dst[:0], src)
	}
	allocs := testing.AllocsPerRun(100, func() {
		dst = r.Process(dst[:0], src)
		r.SetStep(1 - 50e-6)
	})
	if allocs != 0 {
		t.Fatalf("steady-state Process allocates: %v allocs/run", allocs)
	}
}

// SetStep mid-stream must be phase-continuous: no sample-scale jump in
// the output around the ratio change.
func TestStreamResamplerStepChangeContinuous(t *testing.T) {
	const f0 = 440.0 / 48000
	src := make([]float64, 48000)
	for i := range src {
		src[i] = math.Sin(2 * math.Pi * f0 * float64(i))
	}
	r := NewStreamResampler(1+100e-6, 960)
	var out []float64
	for off := 0; off < len(src); off += 960 {
		if off == 24000 {
			r.SetStep(1 - 100e-6)
		}
		out = r.Process(out, src[off:off+960])
	}
	// A 440 Hz tone changes by at most 2π·f0 per sample; a phase glitch
	// would show up as a much larger sample-to-sample jump.
	maxStep := 2*math.Pi*f0 + 1e-3
	for i := 1; i < len(out); i++ {
		if d := math.Abs(out[i] - out[i-1]); d > maxStep {
			t.Fatalf("discontinuity at %d: |Δ|=%v > %v", i, d, maxStep)
		}
	}
}
