package dsp

import (
	"math/cmplx"
	"math/rand"
	"testing"
)

// The fused front-end must be numerically interchangeable with the
// textbook chain it replaces: QuadOsc.MixDown into a Decimator for
// BandDecimator, a plain ÷2 Decimator for HalfBandDecimator.

func TestBandDecimatorMatchesMixedChain(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	x := make([]float64, 5000)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	taps := LowPass(6000, 48000, 29).Taps
	for _, m := range []int{1, 2, 3, 4, 8} {
		mixed := NewQuadOsc(9000, 48000).MixDown(nil, x)
		want := NewDecimator(m, taps).Process(nil, mixed)
		got := NewBandDecimator(9000, 48000, m, taps).Process(nil, x)
		if len(got) != len(want) {
			t.Fatalf("M=%d: %d outputs want %d", m, len(got), len(want))
		}
		for i := range want {
			if e := cmplx.Abs(got[i] - want[i]); e > 1e-12 {
				t.Fatalf("M=%d output %d: fused %v chain %v (off %g)", m, i, got[i], want[i], e)
			}
		}
	}
}

func TestBandDecimatorChunkInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	x := make([]float64, 8000)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	taps := LowPass(6000, 48000, 29).Taps
	whole := NewBandDecimator(9000, 48000, 4, taps).Process(nil, x)
	st := NewBandDecimator(9000, 48000, 4, taps)
	var chunked []complex128
	for pos := 0; pos < len(x); {
		n := 1 + rng.Intn(700)
		if pos+n > len(x) {
			n = len(x) - pos
		}
		chunked = st.Process(chunked, x[pos:pos+n])
		pos += n
	}
	if len(whole) != len(chunked) {
		t.Fatalf("chunked run emitted %d outputs want %d", len(chunked), len(whole))
	}
	for i := range whole {
		if whole[i] != chunked[i] {
			t.Fatalf("output %d differs across chunkings", i)
		}
	}
}

func TestBandDecimatorSteadyStateAllocs(t *testing.T) {
	taps := LowPass(6000, 48000, 29).Taps
	st := NewBandDecimator(9000, 48000, 4, taps)
	x := make([]float64, 960)
	dst := make([]complex128, 0, 1024)
	for i := 0; i < 4; i++ {
		dst = st.Process(dst[:0], x)
	}
	allocs := testing.AllocsPerRun(50, func() {
		dst = st.Process(dst[:0], x)
	})
	if allocs > 0 {
		t.Fatalf("steady-state Process allocates %v times per frame", allocs)
	}
}

func TestHalfBandDecimatorMatchesDecimator(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	x := make([]complex128, 6000)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	// Cutoff at a quarter of the rate — the half-band condition.
	taps := LowPass(3000, 12000, 47).Taps
	want := NewDecimator(2, taps).Process(nil, x)
	got := NewHalfBandDecimator(taps).Process(nil, x)
	if len(got) != len(want) {
		t.Fatalf("%d outputs want %d", len(got), len(want))
	}
	for i := range want {
		if e := cmplx.Abs(got[i] - want[i]); e > 1e-12 {
			t.Fatalf("output %d: half-band %v reference %v (off %g)", i, got[i], want[i], e)
		}
	}
}

func TestHalfBandDecimatorRejectsNonHalfBand(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("a full-band low-pass must be rejected")
		}
	}()
	NewHalfBandDecimator(LowPass(2000, 12000, 47).Taps)
}

func TestHalfBandDecimatorChunkInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	x := make([]complex128, 6000)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	taps := LowPass(3000, 12000, 47).Taps
	whole := NewHalfBandDecimator(taps).Process(nil, x)
	st := NewHalfBandDecimator(taps)
	var chunked []complex128
	for pos := 0; pos < len(x); {
		n := 1 + rng.Intn(500)
		if pos+n > len(x) {
			n = len(x) - pos
		}
		chunked = st.Process(chunked, x[pos:pos+n])
		pos += n
	}
	if len(whole) != len(chunked) {
		t.Fatalf("chunked run emitted %d outputs want %d", len(chunked), len(whole))
	}
	for i := range whole {
		if whole[i] != chunked[i] {
			t.Fatalf("output %d differs across chunkings", i)
		}
	}
}

func TestHalfBandDecimatorSteadyStateAllocs(t *testing.T) {
	taps := LowPass(3000, 12000, 47).Taps
	st := NewHalfBandDecimator(taps)
	x := make([]complex128, 240)
	dst := make([]complex128, 0, 1024)
	for i := 0; i < 4; i++ {
		dst = st.Process(dst[:0], x)
	}
	allocs := testing.AllocsPerRun(50, func() {
		dst = st.Process(dst[:0], x)
	})
	if allocs > 0 {
		t.Fatalf("steady-state Process allocates %v times per frame", allocs)
	}
}

// BenchmarkBandFront measures one second of the fused fac-8 front-end
// (÷4 modulated stage into the ÷2 half-band) against the chain it
// replaced (mix-down into three half-band Decimator stages).

func benchFrontInput() []float64 {
	rng := rand.New(rand.NewSource(41))
	x := make([]float64, 48000)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	return x
}

func BenchmarkBandFrontFused(b *testing.B) {
	x := benchFrontInput()
	a := NewBandDecimator(9000, 48000, 4, LowPass(6000, 48000, 29).Taps)
	hb := NewHalfBandDecimator(LowPass(3000, 12000, 47).Taps)
	mid := make([]complex128, 0, len(x)/4+8)
	out := make([]complex128, 0, len(x)/8+8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mid = a.Process(mid[:0], x)
		out = hb.Process(out[:0], mid)
	}
}

func BenchmarkBandFrontChain(b *testing.B) {
	x := benchFrontInput()
	osc := NewQuadOsc(9000, 48000)
	st1 := NewDecimator(2, LowPass(12000, 48000, 11).Taps)
	st2 := NewDecimator(2, LowPass(6000, 24000, 17).Taps)
	st3 := NewDecimator(2, LowPass(3000, 12000, 47).Taps)
	mix := make([]complex128, 0, len(x))
	b1 := make([]complex128, 0, len(x)/2+8)
	b2 := make([]complex128, 0, len(x)/4+8)
	out := make([]complex128, 0, len(x)/8+8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mix = osc.MixDown(mix[:0], x)
		b1 = st1.Process(b1[:0], mix)
		b2 = st2.Process(b2[:0], b1)
		out = st3.Process(out[:0], b2)
	}
}
