package dsp

import (
	"math/cmplx"
	"math/rand"
	"testing"
)

// Plan4 must be numerically interchangeable with Plan: same DFT, same
// unscaled inverse, across every power-of-two size the detector can ask
// for (both parities of log2 n exercise the trailing radix-2 stage).

func TestPlan4MatchesPlan(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for n := 1; n <= 1<<16; n <<= 1 {
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		ref := append([]complex128(nil), x...)
		got := append([]complex128(nil), x...)
		PlanFor(n).Forward(ref)
		Plan4For(n).Forward(got)
		var maxAbs float64
		for _, v := range ref {
			if a := cmplx.Abs(v); a > maxAbs {
				maxAbs = a
			}
		}
		tol := 1e-12 * (maxAbs + 1)
		for i := range ref {
			if e := cmplx.Abs(got[i] - ref[i]); e > tol {
				t.Fatalf("n=%d forward bin %d: plan4 %v plan %v (off %g)", n, i, got[i], ref[i], e)
			}
		}
		PlanFor(n).Inverse(ref)
		Plan4For(n).Inverse(got)
		for i := range ref {
			if e := cmplx.Abs(got[i] - ref[i]); e > tol*float64(n) {
				t.Fatalf("n=%d inverse bin %d: plan4 %v plan %v (off %g)", n, i, got[i], ref[i], e)
			}
		}
	}
}

func TestPlan4RoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	for _, n := range []int{8, 16384, 32768} {
		p := Plan4For(n)
		x := make([]complex128, n)
		orig := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
			orig[i] = x[i]
		}
		p.Forward(x)
		p.Inverse(x)
		scale := complex(1/float64(n), 0)
		for i := range x {
			if e := cmplx.Abs(x[i]*scale - orig[i]); e > 1e-10 {
				t.Fatalf("n=%d sample %d: round trip %v want %v (off %g)", n, i, x[i]*scale, orig[i], e)
			}
		}
	}
}

func TestPlan4FusedEntryPointsMatchInPlace(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	for n := 1; n <= 1<<14; n <<= 1 {
		p := Plan4For(n)
		src := make([]complex128, n)
		spec := make([]complex128, n)
		for i := range src {
			src[i] = complex(rng.NormFloat64(), rng.NormFloat64())
			spec[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		srcCopy := append([]complex128(nil), src...)

		want := append([]complex128(nil), src...)
		p.Forward(want)
		got := make([]complex128, n)
		p.ForwardFrom(got, src)
		for i := range want {
			if e := cmplx.Abs(got[i] - want[i]); e > 1e-9 {
				t.Fatalf("n=%d ForwardFrom bin %d: %v want %v (off %g)", n, i, got[i], want[i], e)
			}
		}
		for i := range src {
			if src[i] != srcCopy[i] {
				t.Fatalf("n=%d ForwardFrom mutated src[%d]", n, i)
			}
		}

		wantInv := make([]complex128, n)
		for i := range wantInv {
			wantInv[i] = src[i] * spec[i]
		}
		p.Inverse(wantInv)
		gotInv := make([]complex128, n)
		p.InverseFromProduct(gotInv, src, spec)
		var maxAbs float64
		for _, v := range wantInv {
			if a := cmplx.Abs(v); a > maxAbs {
				maxAbs = a
			}
		}
		tol := 1e-12 * (maxAbs + 1)
		for i := range wantInv {
			if e := cmplx.Abs(gotInv[i] - wantInv[i]); e > tol {
				t.Fatalf("n=%d InverseFromProduct bin %d: %v want %v (off %g)", n, i, gotInv[i], wantInv[i], e)
			}
		}
	}
}

func TestPlan4TransformAllocs(t *testing.T) {
	p := Plan4For(16384)
	x := make([]complex128, p.Size())
	allocs := testing.AllocsPerRun(20, func() {
		p.Forward(x)
		p.Inverse(x)
	})
	if allocs > 0 {
		t.Fatalf("transform allocates %v times per call pair", allocs)
	}
}

func benchTransformInput(n int) []complex128 {
	rng := rand.New(rand.NewSource(53))
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return x
}

func BenchmarkPlanForward16384(b *testing.B) {
	p := PlanFor(16384)
	x := benchTransformInput(16384)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Forward(x)
	}
}

func BenchmarkPlan4Forward16384(b *testing.B) {
	p := Plan4For(16384)
	x := benchTransformInput(16384)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Forward(x)
	}
}
