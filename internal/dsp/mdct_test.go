package dsp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// naiveMDCT is the textbook O(N²) reference.
func naiveMDCT(x []float64) []float64 {
	n := len(x) / 2
	out := make([]float64, n)
	for k := 0; k < n; k++ {
		var s float64
		for i, v := range x {
			s += v * math.Cos(math.Pi/float64(n)*(float64(i)+0.5+float64(n)/2)*(float64(k)+0.5))
		}
		out[k] = s
	}
	return out
}

func naiveIMDCT(spec []float64) []float64 {
	n := len(spec)
	out := make([]float64, 2*n)
	for i := range out {
		var s float64
		for k, v := range spec {
			s += v * math.Cos(math.Pi/float64(n)*(float64(i)+0.5+float64(n)/2)*(float64(k)+0.5))
		}
		out[i] = s * 2 / float64(n)
	}
	return out
}

func TestMDCTMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{4, 8, 16, 60, 128, 480, 960} {
		x := make([]float64, 2*n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		want := naiveMDCT(x)
		got := MDCT(x)
		for k := range want {
			if math.Abs(got[k]-want[k]) > 1e-7*float64(n) {
				t.Fatalf("n=%d bin %d: got %g want %g", n, k, got[k], want[k])
			}
		}
	}
}

func TestIMDCTMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{4, 16, 60, 480} {
		spec := make([]float64, n)
		for i := range spec {
			spec[i] = rng.NormFloat64()
		}
		want := naiveIMDCT(spec)
		got := IMDCT(spec)
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-7*float64(n) {
				t.Fatalf("n=%d sample %d: got %g want %g", n, i, got[i], want[i])
			}
		}
	}
}

// sineWindow is the MDCT sine window sin(π(i+½)/L): symmetric and
// Princen-Bradley compliant (w[i]² + w[i+L/2]² = 1), the classic choice
// for TDAC codecs (MP3, CELT's family).
func sineWindow(l int) []float64 {
	w := make([]float64, l)
	for i := range w {
		w[i] = math.Sin(math.Pi * (float64(i) + 0.5) / float64(l))
	}
	return w
}

func TestTDACPerfectReconstruction(t *testing.T) {
	// Windowed MDCT → IMDCT → windowed 50% overlap-add must reconstruct
	// the interior of the signal exactly.
	const n = 480
	rng := rand.New(rand.NewSource(3))
	sig := make([]float64, 8*n)
	for i := range sig {
		sig[i] = rng.NormFloat64()
	}
	w := sineWindow(2 * n)
	recon := make([]float64, len(sig))
	for start := 0; start+2*n <= len(sig); start += n {
		block := make([]float64, 2*n)
		for i := range block {
			block[i] = sig[start+i] * w[i]
		}
		spec := MDCT(block)
		back := IMDCT(spec)
		for i := range back {
			recon[start+i] += back[i] * w[i]
		}
	}
	// Interior samples (after the first hop, before the last) are exact.
	var maxErr float64
	for i := n; i < len(sig)-2*n; i++ {
		if e := math.Abs(recon[i] - sig[i]); e > maxErr {
			maxErr = e
		}
	}
	if maxErr > 1e-9 {
		t.Fatalf("TDAC reconstruction error %g", maxErr)
	}
}

func TestTDACReconstructionProperty(t *testing.T) {
	w := sineWindow(2 * 128)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const n = 128
		sig := make([]float64, 6*n)
		for i := range sig {
			sig[i] = rng.Float64()*2 - 1
		}
		recon := make([]float64, len(sig))
		for start := 0; start+2*n <= len(sig); start += n {
			block := make([]float64, 2*n)
			for i := range block {
				block[i] = sig[start+i] * w[i]
			}
			back := IMDCT(MDCT(block))
			for i := range back {
				recon[start+i] += back[i] * w[i]
			}
		}
		for i := n; i < len(sig)-2*n; i++ {
			if math.Abs(recon[i]-sig[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestMDCTPanicsOnOddLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("odd input should panic")
		}
	}()
	MDCT(make([]float64, 7))
}

func TestMDCTEnergyCompaction(t *testing.T) {
	// A windowed sinusoid concentrates MDCT energy in few bins — the
	// property the codec's bit allocation exploits.
	const n = 960
	w := sineWindow(2 * n)
	block := make([]float64, 2*n)
	for i := range block {
		block[i] = math.Sin(2*math.Pi*3000*float64(i)/48000) * w[i]
	}
	spec := MDCT(block)
	var total float64
	for _, v := range spec {
		total += v * v
	}
	// Energy in the strongest 8 bins.
	top := append([]float64(nil), spec...)
	for i := range top {
		top[i] = top[i] * top[i]
	}
	var best8 float64
	for pass := 0; pass < 8; pass++ {
		bi := 0
		for i, v := range top {
			if v > top[bi] {
				bi = i
			}
		}
		best8 += top[bi]
		top[bi] = 0
	}
	if best8 < 0.95*total {
		t.Fatalf("energy compaction %.3f, want > 0.95", best8/total)
	}
}

func BenchmarkMDCT960(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	x := make([]float64, 1920)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MDCT(x)
	}
}
