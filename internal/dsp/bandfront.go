package dsp

// Fused band-translation front-ends for the two-stage marker detector.
//
// The textbook chain — QuadOsc.MixDown into a ÷2 half-band cascade — does
// its work in three passes over complex data, and profiles as the single
// largest line of the two-stage detector: the mix-down touches every
// 48 kHz sample, and each cascade stage runs a gathered sparse-tap FIR
// over complex inputs. The two types here compute the identical result in
// two dense passes:
//
// BandDecimator folds the heterodyne into the first (largest-factor)
// decimation stage. For a low-pass h and mix e^{-jω0·n},
//
//	y[m] = Σ_j h[j]·x[mM−j]·e^{-jω0(mM−j)}
//	     = e^{-jω0·M·m} · Σ_j (h[j]·e^{+jω0·j}) · x[mM−j]
//
// so the stage reads the *real* input directly with precomputed complex
// taps g[j] = h[j]·e^{+jω0·j} — one dense, contiguous real-by-complex dot
// per output — and applies the residual rotation e^{-jω0·M·m} from an
// exact table (for Ekho's ω0 = 2π·9000/48000 and M = 4 the table is just
// {1, +j, −1, −j}). No intermediate full-rate complex stream ever exists.
//
// HalfBandDecimator is the ÷2 tail of the chain: a symmetric half-band
// FIR over complex samples, stored as a center coefficient plus one
// coefficient per wing pair so each pair costs one multiply per component
// instead of two, with no gather indirection.
//
// Both types follow the Decimator streaming contract: output m is the
// causal convolution sampled at input index m·D with x[k<0] = 0, chunk
// boundaries never change the result, and steady-state Process allocates
// nothing when dst has capacity. Both the mic stream and the correlation
// template run through identically constructed instances, so group delays
// cancel and decimated lag τ still maps to full-rate sample τ·D exactly.

// BandDecimator mixes a real stream down by a fixed oscillator and
// decimates by M in a single fused pass (see the package comment above).
type BandDecimator struct {
	m    int
	hist int // inputs of lookback a retained output needs: len(taps)-1

	// Modulated taps g[j] = h[j]·e^{+jω0·j}, stored reversed so the inner
	// dot walks the input window forward and contiguously.
	gr, gi []float64

	// rot[k] = e^{-jω0·M·k} over one exact period.
	rot []complex128
	// When every rot entry lies on a coordinate axis (ω0·M a multiple of
	// π/2, as for Ekho's 9 kHz band center at M = 4), quad holds the power
	// of j per entry and the rotation becomes a swap/negate instead of a
	// complex multiply. Empty otherwise.
	quad []uint8

	// Sliding real input window; buf[0] is absolute input index base.
	buf  []float64
	base int
	next int // next absolute output index to emit
}

// NewBandDecimator builds a fused mix-down decimator: freq and rate define
// the oscillator e^{-j2π·freq/rate·n} (positive integers, exact period),
// factor the decimation M, taps the low-pass FIR for the mixed signal. The
// taps slice is read once and not retained.
func NewBandDecimator(freq, rate, factor int, taps []float64) *BandDecimator {
	if factor < 1 {
		panic("dsp: BandDecimator factor must be ≥ 1")
	}
	if len(taps) == 0 {
		panic("dsp: BandDecimator needs at least one tap")
	}
	osc := NewQuadOsc(freq, rate)
	n := len(taps)
	b := &BandDecimator{
		m:    factor,
		hist: n - 1,
		gr:   make([]float64, n),
		gi:   make([]float64, n),
	}
	for j, h := range taps {
		w := osc.Factor(j) // e^{-jω0·j}
		t := n - 1 - j
		b.gr[t] = h * real(w)
		b.gi[t] = -h * imag(w) // conjugate: e^{+jω0·j}
	}
	period := osc.Period() / gcd(factor, osc.Period())
	b.rot = make([]complex128, period)
	quad := make([]uint8, period)
	axis := true
	for k := range b.rot {
		w := osc.Factor(k * factor)
		b.rot[k] = w
		// Sincos leaves ~1e-16 residue on axis angles; snap so the quad
		// path and the general path agree exactly.
		re, im := real(w), imag(w)
		switch {
		case re > 0.5 && abs64(im) < 1e-9:
			quad[k] = 0
		case im < -0.5 && abs64(re) < 1e-9:
			quad[k] = 1 // e^{-jπ/2} = −j
		case re < -0.5 && abs64(im) < 1e-9:
			quad[k] = 2
		case im > 0.5 && abs64(re) < 1e-9:
			quad[k] = 3 // e^{+jπ/2} = +j
		default:
			axis = false
		}
	}
	if axis {
		b.quad = quad
		rotExact := [4]complex128{1, complex(0, -1), -1, complex(0, 1)}
		for k := range b.rot {
			b.rot[k] = rotExact[quad[k]]
		}
	}
	return b
}

// Factor returns the decimation factor M.
func (b *BandDecimator) Factor() int { return b.m }

// Process consumes real samples, appends every newly computable complex
// baseband output to dst and returns the extended slice.
func (b *BandDecimator) Process(dst []complex128, x []float64) []complex128 {
	b.buf = append(b.buf, x...)
	end := b.base + len(b.buf)
	ri := b.next % len(b.rot) // advanced by wrap, not a per-output divide
	for k := b.next * b.m; k < end; k += b.m {
		i := k - b.base
		var sr, si float64
		if lo := i - b.hist; lo >= 0 {
			// Steady state: dense unrolled dot over the full window.
			win := b.buf[lo : i+1]
			gr := b.gr[:len(win)]
			gi := b.gi[:len(win)]
			var sr0, si0, sr1, si1 float64
			t := 0
			for ; t+1 < len(gr); t += 2 {
				x0, x1 := win[t], win[t+1]
				sr0 += x0 * gr[t]
				si0 += x0 * gi[t]
				sr1 += x1 * gr[t+1]
				si1 += x1 * gi[t+1]
			}
			if t < len(gr) {
				x0 := win[t]
				sr0 += x0 * gr[t]
				si0 += x0 * gi[t]
			}
			sr, si = sr0+sr1, si0+si1
		} else {
			// Stream head: taps reaching before input 0 read zeros.
			for t := -lo; t <= b.hist; t++ {
				v := b.buf[lo+t]
				sr += v * b.gr[t]
				si += v * b.gi[t]
			}
		}
		if b.quad != nil {
			switch b.quad[ri] {
			case 0:
				dst = append(dst, complex(sr, si))
			case 1:
				dst = append(dst, complex(si, -sr))
			case 2:
				dst = append(dst, complex(-sr, -si))
			default:
				dst = append(dst, complex(-si, sr))
			}
		} else {
			w := b.rot[ri]
			dst = append(dst, complex(sr*real(w)-si*imag(w), sr*imag(w)+si*real(w)))
		}
		if ri++; ri == len(b.rot) {
			ri = 0
		}
		b.next++
	}
	// Drop inputs the next output can no longer reach.
	if drop := b.next*b.m - b.hist - b.base; drop > 0 {
		if drop > len(b.buf) {
			drop = len(b.buf)
		}
		n := copy(b.buf, b.buf[drop:])
		b.buf = b.buf[:n]
		b.base += drop
	}
	return dst
}

// HalfBandDecimator halves the rate of a complex stream through a
// symmetric half-band low-pass (cutoff at a quarter of the input rate):
// center tap plus wing pairs at odd distances, every even-distance tap
// zero by design.
type HalfBandDecimator struct {
	center float64
	wing   []float64 // wing[t] weighs the pair at distance 2t+1
	c      int       // tap index of the center coefficient
	hist   int

	// Sliding input window; buf[0] is absolute input index base.
	buf  []complex128
	base int
	next int
}

// NewHalfBandDecimator builds a ÷2 decimator from odd-length half-band
// taps (e.g. LowPass at a quarter of the input rate). Wing pairs are
// symmetrized; a design whose even-distance taps are not negligibly zero
// is rejected. The taps slice is read once and not retained.
func NewHalfBandDecimator(taps []float64) *HalfBandDecimator {
	n := len(taps)
	if n == 0 || n%2 == 0 {
		panic("dsp: HalfBandDecimator needs odd-length taps")
	}
	c := n / 2
	var maxAbs float64
	for _, h := range taps {
		if a := abs64(h); a > maxAbs {
			maxAbs = a
		}
	}
	h := &HalfBandDecimator{center: taps[c], c: c, hist: n - 1}
	for d := 1; d <= c; d++ {
		lo, hi := taps[c-d], taps[c+d]
		if d%2 == 0 {
			if abs64(lo) > 1e-9*maxAbs || abs64(hi) > 1e-9*maxAbs {
				panic("dsp: HalfBandDecimator taps are not a half-band design")
			}
			continue
		}
		h.wing = append(h.wing, (lo+hi)/2)
	}
	return h
}

// Factor returns the decimation factor, always 2.
func (h *HalfBandDecimator) Factor() int { return 2 }

// Process consumes complex samples, appends every newly computable output
// to dst and returns the extended slice.
func (h *HalfBandDecimator) Process(dst []complex128, x []complex128) []complex128 {
	h.buf = append(h.buf, x...)
	end := h.base + len(h.buf)
	for k := h.next * 2; k < end; k += 2 {
		i := k - h.base
		var sr, si float64
		if lo := i - h.hist; lo >= 0 {
			// Steady state: center plus symmetric wing pairs, two pairs per
			// iteration so each component's add chain splits across two
			// accumulators instead of serializing on FP-add latency.
			win := h.buf[lo : i+1]
			cv := win[h.c]
			sr0 := h.center * real(cv)
			si0 := h.center * imag(cv)
			var sr1, si1 float64
			wing := h.wing
			dn, up := h.c-1, h.c+1
			t := 0
			for ; t+1 < len(wing); t += 2 {
				a0, b0 := win[dn], win[up]
				a1, b1 := win[dn-2], win[up+2]
				w0, w1 := wing[t], wing[t+1]
				sr0 += w0 * (real(a0) + real(b0))
				si0 += w0 * (imag(a0) + imag(b0))
				sr1 += w1 * (real(a1) + real(b1))
				si1 += w1 * (imag(a1) + imag(b1))
				dn -= 4
				up += 4
			}
			if t < len(wing) {
				a, b := win[dn], win[up]
				sr0 += wing[t] * (real(a) + real(b))
				si0 += wing[t] * (imag(a) + imag(b))
			}
			sr, si = sr0+sr1, si0+si1
		} else {
			// Stream head: taps reaching before input 0 read zeros.
			cpos := i - h.c
			if cpos >= 0 {
				cv := h.buf[cpos]
				sr = h.center * real(cv)
				si = h.center * imag(cv)
			}
			for t, wv := range h.wing {
				d := 2*t + 1
				if j := cpos - d; j >= 0 {
					v := h.buf[j]
					sr += wv * real(v)
					si += wv * imag(v)
				}
				if j := cpos + d; j >= 0 {
					v := h.buf[j]
					sr += wv * real(v)
					si += wv * imag(v)
				}
			}
		}
		dst = append(dst, complex(sr, si))
		h.next++
	}
	// Drop inputs the next output can no longer reach.
	if drop := h.next*2 - h.hist - h.base; drop > 0 {
		if drop > len(h.buf) {
			drop = len(h.buf)
		}
		n := copy(h.buf, h.buf[drop:])
		h.buf = h.buf[:n]
		h.base += drop
	}
	return dst
}

func abs64(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
