package dsp

import "math"

// Biquad is a second-order IIR section in direct form II transposed.
// Cascades of biquads implement the A-weighting meter and the microphone
// coloration fallbacks.
type Biquad struct {
	B0, B1, B2 float64 // numerator
	A1, A2     float64 // denominator (a0 normalized to 1)
	z1, z2     float64 // state
}

// Process filters a single sample.
func (q *Biquad) Process(x float64) float64 {
	y := q.B0*x + q.z1
	q.z1 = q.B1*x - q.A1*y + q.z2
	q.z2 = q.B2*x - q.A2*y
	return y
}

// Reset clears the filter state.
func (q *Biquad) Reset() { q.z1, q.z2 = 0, 0 }

// Apply filters the whole slice, returning a new slice. State carries across
// the call, so Reset between independent signals.
func (q *Biquad) Apply(x []float64) []float64 {
	out := make([]float64, len(x))
	for i, v := range x {
		out[i] = q.Process(v)
	}
	return out
}

// ApplyInPlace filters the slice in place (no allocation), for callers
// that own the buffer — the per-frame injector/acoustic paths. State
// carries across the call like Apply.
func (q *Biquad) ApplyInPlace(x []float64) {
	for i, v := range x {
		x[i] = q.Process(v)
	}
}

// NewLowPassBiquad designs a Butterworth-style low-pass biquad (RBJ cookbook
// formulation) with the given cutoff and Q.
func NewLowPassBiquad(cutoff, sampleRate, qFactor float64) *Biquad {
	w0 := 2 * math.Pi * cutoff / sampleRate
	cw, sw := math.Cos(w0), math.Sin(w0)
	alpha := sw / (2 * qFactor)
	b0 := (1 - cw) / 2
	b1 := 1 - cw
	b2 := (1 - cw) / 2
	a0 := 1 + alpha
	a1 := -2 * cw
	a2 := 1 - alpha
	return &Biquad{B0: b0 / a0, B1: b1 / a0, B2: b2 / a0, A1: a1 / a0, A2: a2 / a0}
}

// NewHighPassBiquad designs a high-pass biquad (RBJ cookbook).
func NewHighPassBiquad(cutoff, sampleRate, qFactor float64) *Biquad {
	w0 := 2 * math.Pi * cutoff / sampleRate
	cw, sw := math.Cos(w0), math.Sin(w0)
	alpha := sw / (2 * qFactor)
	b0 := (1 + cw) / 2
	b1 := -(1 + cw)
	b2 := (1 + cw) / 2
	a0 := 1 + alpha
	a1 := -2 * cw
	a2 := 1 - alpha
	return &Biquad{B0: b0 / a0, B1: b1 / a0, B2: b2 / a0, A1: a1 / a0, A2: a2 / a0}
}

// NewPeakingBiquad designs a peaking EQ biquad boosting (or cutting, for
// negative gainDB) around center Hz with the given Q. The microphone models
// compose these to reproduce the peaks and troughs of Figure 17.
func NewPeakingBiquad(center, sampleRate, qFactor, gainDB float64) *Biquad {
	a := math.Pow(10, gainDB/40)
	w0 := 2 * math.Pi * center / sampleRate
	cw, sw := math.Cos(w0), math.Sin(w0)
	alpha := sw / (2 * qFactor)
	b0 := 1 + alpha*a
	b1 := -2 * cw
	b2 := 1 - alpha*a
	a0 := 1 + alpha/a
	a1 := -2 * cw
	a2 := 1 - alpha/a
	return &Biquad{B0: b0 / a0, B1: b1 / a0, B2: b2 / a0, A1: a1 / a0, A2: a2 / a0}
}

// Chain applies a sequence of biquads one after another.
type Chain []*Biquad

// Process runs a sample through every section in order.
func (c Chain) Process(x float64) float64 {
	for _, q := range c {
		x = q.Process(x)
	}
	return x
}

// Apply filters the whole slice through the cascade.
func (c Chain) Apply(x []float64) []float64 {
	out := make([]float64, len(x))
	for i, v := range x {
		out[i] = c.Process(v)
	}
	return out
}

// ApplyInPlace filters the slice through the cascade in place (no
// allocation), for callers that own the buffer.
func (c Chain) ApplyInPlace(x []float64) {
	for i, v := range x {
		x[i] = c.Process(v)
	}
}

// Reset clears all section states.
func (c Chain) Reset() {
	for _, q := range c {
		q.Reset()
	}
}
