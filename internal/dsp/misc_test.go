package dsp

import (
	"math"
	"testing"
)

func TestWindowShapes(t *testing.T) {
	for _, w := range []Window{Rectangular, Hann, Hamming, Blackman} {
		win := w.Make(65)
		if len(win) != 65 {
			t.Fatalf("%v: len %d", w, len(win))
		}
		// Symmetry.
		for i := 0; i < len(win)/2; i++ {
			if math.Abs(win[i]-win[len(win)-1-i]) > 1e-12 {
				t.Fatalf("%v not symmetric at %d", w, i)
			}
		}
		// Peak at center, nonnegative.
		for i, v := range win {
			if v < -1e-12 {
				t.Fatalf("%v negative at %d: %g", w, i, v)
			}
		}
		if w != Rectangular && win[32] < win[0] {
			t.Fatalf("%v: center %g below edge %g", w, win[32], win[0])
		}
	}
	if (Hann).String() != "hann" || (Rectangular).String() != "rectangular" {
		t.Error("Window.String broken")
	}
}

func TestWindowDegenerateSizes(t *testing.T) {
	if len(Hann.Make(0)) != 0 {
		t.Error("Make(0) should be empty")
	}
	if w := Hamming.Make(1); len(w) != 1 || w[0] != 1 {
		t.Error("Make(1) should be [1]")
	}
}

func TestGoertzelMatchesSpectrumPeak(t *testing.T) {
	const sr = 48000.0
	n := 4800
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Sin(2 * math.Pi * 5000 * float64(i) / sr)
	}
	at := Goertzel(x, 5000, sr)
	off := Goertzel(x, 9000, sr)
	if at < 100*off {
		t.Fatalf("Goertzel at tone %g should dwarf off-tone %g", at, off)
	}
}

func TestRMSAndMeanPower(t *testing.T) {
	if RMS(nil) != 0 || MeanPower(nil) != 0 {
		t.Error("empty inputs should be 0")
	}
	x := []float64{3, -3, 3, -3}
	if RMS(x) != 3 {
		t.Errorf("RMS=%g want 3", RMS(x))
	}
	if MeanPower(x) != 9 {
		t.Errorf("MeanPower=%g want 9", MeanPower(x))
	}
}

func TestBiquadLowPass(t *testing.T) {
	const sr = 48000.0
	q := NewLowPassBiquad(1000, sr, 0.707)
	low := q.Apply(sine(100, sr, 9600))
	q.Reset()
	high := q.Apply(sine(10000, sr, 9600))
	lp := MeanPower(low[2000:])
	hp := MeanPower(high[2000:])
	if lp < 0.3 {
		t.Fatalf("passband power %g", lp)
	}
	if hp > lp/100 {
		t.Fatalf("stopband power %g vs pass %g", hp, lp)
	}
}

func TestBiquadPeakingBoost(t *testing.T) {
	const sr = 48000.0
	q := NewPeakingBiquad(3000, sr, 1.0, 12)
	boosted := q.Apply(sine(3000, sr, 9600))
	bp := MeanPower(boosted[2000:])
	// +12 dB power gain is ~15.8x over the input's 0.5.
	if bp < 4 || bp > 10 {
		t.Fatalf("boosted power %g, want ~7.9", bp)
	}
}

func TestChain(t *testing.T) {
	const sr = 48000.0
	c := Chain{NewHighPassBiquad(500, sr, 0.707), NewLowPassBiquad(8000, sr, 0.707)}
	mid := c.Apply(sine(2000, sr, 9600))
	c.Reset()
	lo := c.Apply(sine(50, sr, 9600))
	mp := MeanPower(mid[2000:])
	lp := MeanPower(lo[2000:])
	if mp < 0.3 {
		t.Fatalf("mid power %g", mp)
	}
	if lp > mp/50 {
		t.Fatalf("low power %g should be attenuated vs %g", lp, mp)
	}
}

func TestResampleLinear(t *testing.T) {
	x := []float64{0, 1, 2, 3}
	y := ResampleLinear(x, 7)
	if len(y) != 7 {
		t.Fatalf("len %d", len(y))
	}
	if y[0] != 0 || y[6] != 3 {
		t.Fatalf("endpoints %g %g", y[0], y[6])
	}
	for i := 1; i < len(y); i++ {
		if y[i] < y[i-1] {
			t.Fatal("monotone input should stay monotone")
		}
	}
	if len(ResampleLinear(nil, 5)) != 0 {
		t.Error("empty input")
	}
	if len(ResampleLinear(x, 0)) != 0 {
		t.Error("zero output length")
	}
	one := ResampleLinear(x, 1)
	if len(one) != 1 || one[0] != 0 {
		t.Errorf("single output: %v", one)
	}
	cons := ResampleLinear([]float64{5}, 4)
	for _, v := range cons {
		if v != 5 {
			t.Fatal("constant extrapolation of single sample")
		}
	}
}

func TestFractionalDelayInteger(t *testing.T) {
	x := make([]float64, 100)
	x[10] = 1
	y := FractionalDelay(x, 5)
	if ArgMaxAbs(y) != 15 {
		t.Fatalf("peak at %d want 15", ArgMaxAbs(y))
	}
}

func TestFractionalDelaySubSample(t *testing.T) {
	// Delay a band-limited signal by 0.5 samples twice; the result should
	// align with a 1-sample integer shift.
	const sr = 48000.0
	x := sine(2000, sr, 2000)
	half := FractionalDelay(x, 0.5)
	full := FractionalDelay(half, 0.5)
	want := FractionalDelay(x, 1)
	var maxErr float64
	for i := 100; i < len(x)-100; i++ {
		if e := math.Abs(full[i] - want[i]); e > maxErr {
			maxErr = e
		}
	}
	if maxErr > 1e-3 {
		t.Fatalf("two half-sample delays differ from one full: max err %g", maxErr)
	}
}

func TestCheckLen(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	CheckLen("x", 3, 4)
}
