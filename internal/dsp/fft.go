// Package dsp provides the digital signal processing primitives that Ekho
// is built on: fast Fourier transforms, FIR filter design and application,
// cross-correlation, window functions and resampling.
//
// The paper's reference implementation uses FFTW; this package is a
// self-contained, allocation-conscious replacement built only on the Go
// standard library. Transform sizes that are powers of two use an
// iterative radix-2 Cooley-Tukey FFT driven by precomputed, package-cached
// plans (see plan.go); all other sizes are handled with Bluestein's
// chirp-z algorithm over cached chirp tables, so every length is
// supported.
package dsp

import (
	"fmt"
	"math"
	"math/bits"
	"sync"
)

// FFT computes the in-place discrete Fourier transform of x when len(x) is a
// power of two, and an out-of-place Bluestein transform otherwise. The
// returned slice aliases x in the power-of-two case.
func FFT(x []complex128) []complex128 {
	n := len(x)
	if n == 0 {
		return x
	}
	if isPow2(n) {
		fftPow2(x, false)
		return x
	}
	return bluestein(x, false)
}

// IFFT computes the inverse discrete Fourier transform with 1/N scaling.
// As with FFT, power-of-two inputs are transformed in place.
func IFFT(x []complex128) []complex128 {
	n := len(x)
	if n == 0 {
		return x
	}
	var out []complex128
	if isPow2(n) {
		fftPow2(x, true)
		out = x
	} else {
		out = bluestein(x, true)
	}
	scale := 1 / float64(n)
	for i := range out {
		out[i] = complex(real(out[i])*scale, imag(out[i])*scale)
	}
	return out
}

// FFTReal transforms a real-valued signal, returning the full complex
// spectrum of length NextPow2(len(x)) (zero padded). It is a convenience
// wrapper used by the spectral analysis paths; internally it runs the
// half-size packed real transform and mirrors the conjugate bins.
func FFTReal(x []float64) []complex128 {
	n := NextPow2(len(x))
	buf := make([]complex128, n)
	if n < 2 {
		for i, v := range x {
			buf[i] = complex(v, 0)
		}
		return buf
	}
	rp := RealPlanFor(n)
	sc := realScratchPool.Get().(*realScratch)
	f := growFloats(sc.f, n)
	spec := growComplex(sc.c, rp.HalfLen())
	copy(f, x)
	for i := len(x); i < n; i++ {
		f[i] = 0
	}
	rp.Forward(spec, f)
	copy(buf, spec)
	for k := n/2 + 1; k < n; k++ {
		c := spec[n-k]
		buf[k] = complex(real(c), -imag(c))
	}
	sc.f, sc.c = f, spec
	realScratchPool.Put(sc)
	return buf
}

// NextPow2 returns the smallest power of two >= n (and at least 1).
func NextPow2(n int) int {
	if n <= 1 {
		return 1
	}
	return 1 << bits.Len(uint(n-1))
}

func isPow2(n int) bool { return n > 0 && n&(n-1) == 0 }

// fftPow2 computes the in-place radix-2 FFT through the shared plan cache.
// inverse selects the conjugate transform (without scaling).
func fftPow2(x []complex128, inverse bool) {
	if len(x) <= 1 {
		return
	}
	p := PlanFor(len(x))
	if inverse {
		p.Inverse(x)
	} else {
		p.Forward(x)
	}
}

// blueTables is the size-dependent, immutable setup of a Bluestein
// (chirp-z) transform: the chirp, the forward FFT of the chirp kernel and
// the power-of-two plan both FFTs run on. Cached per (size, direction).
type blueTables struct {
	n     int
	m     int // NextPow2(2n-1)
	chirp []complex128
	bfft  []complex128
	plan  *Plan
}

var blueCache sync.Map // [2]int{n, sign} -> *blueTables

func blueTablesFor(n int, inverse bool) *blueTables {
	sign := 0
	if inverse {
		sign = 1
	}
	key := [2]int{n, sign}
	if t, ok := blueCache.Load(key); ok {
		return t.(*blueTables)
	}
	m := NextPow2(2*n - 1)
	t := &blueTables{n: n, m: m, plan: PlanFor(m)}
	t.chirp = make([]complex128, n)
	s := -1.0
	if inverse {
		s = 1.0
	}
	for k := 0; k < n; k++ {
		phase := s * math.Pi * float64(k) * float64(k) / float64(n)
		t.chirp[k] = complex(math.Cos(phase), math.Sin(phase))
	}
	b := make([]complex128, m)
	for k := 0; k < n; k++ {
		c := t.chirp[k]
		cc := complex(real(c), -imag(c))
		b[k] = cc
		if k > 0 {
			b[m-k] = cc
		}
	}
	t.plan.Forward(b)
	t.bfft = b
	actual, _ := blueCache.LoadOrStore(key, t)
	return actual.(*blueTables)
}

// blueTransform runs one Bluestein DFT over cached tables. a is the m-long
// work buffer (overwritten); dst receives the n outputs. dst may alias x.
func (t *blueTables) transform(dst, x, a []complex128) {
	for k := 0; k < t.n; k++ {
		a[k] = x[k] * t.chirp[k]
	}
	for k := t.n; k < t.m; k++ {
		a[k] = 0
	}
	t.plan.Forward(a)
	for i := range a {
		a[i] *= t.bfft[i]
	}
	t.plan.Inverse(a)
	scale := complex(1/float64(t.m), 0)
	for k := 0; k < t.n; k++ {
		dst[k] = a[k] * scale * t.chirp[k]
	}
}

// bluestein computes a DFT of arbitrary length via the chirp-z transform,
// using cached per-size tables and two power-of-two FFTs per call.
func bluestein(x []complex128, inverse bool) []complex128 {
	t := blueTablesFor(len(x), inverse)
	a := make([]complex128, t.m)
	out := make([]complex128, t.n)
	t.transform(out, x, a)
	return out
}

// Spectrum returns the one-sided magnitude spectrum of a real signal along
// with the frequency (Hz) of each bin, given the sample rate. The signal is
// zero-padded to the next power of two.
func Spectrum(x []float64, sampleRate float64) (mags, freqs []float64) {
	spec := FFTReal(x)
	n := len(spec)
	half := n/2 + 1
	mags = make([]float64, half)
	freqs = make([]float64, half)
	for i := 0; i < half; i++ {
		mags[i] = cmplxAbs(spec[i]) / float64(n)
		freqs[i] = float64(i) * sampleRate / float64(n)
	}
	return mags, freqs
}

// BandPower returns the mean power of x within [lo, hi) Hz, computed in the
// frequency domain. It is used by the marker amplitude tracker (Eq. 2) to
// measure game-audio energy in the 6-12 kHz marker band — once per 20 ms
// frame per session, so it runs on the cached real-input plan with pooled
// scratch and allocates nothing in steady state. The input is zero-padded
// to NextPow2(len(x)) like FFTReal.
func BandPower(x []float64, sampleRate, lo, hi float64) float64 {
	if len(x) == 0 {
		return 0
	}
	n := NextPow2(len(x))
	if n < 2 {
		n = 2
	}
	binHz := sampleRate / float64(n)
	loBin := int(math.Ceil(lo / binHz))
	hiBin := int(math.Floor(hi / binHz))
	if hiBin > n/2 {
		hiBin = n / 2
	}
	if loBin < 0 {
		loBin = 0
	}
	if loBin >= hiBin {
		return 0
	}
	rp := RealPlanFor(n)
	sc := realScratchPool.Get().(*realScratch)
	f := growFloats(sc.f, n)
	spec := growComplex(sc.c, rp.HalfLen())
	copy(f, x)
	for i := len(x); i < n; i++ {
		f[i] = 0
	}
	rp.Forward(spec, f)
	var sum float64
	for i := loBin; i < hiBin; i++ {
		re, im := real(spec[i]), imag(spec[i])
		sum += re*re + im*im
	}
	sc.f, sc.c = f, spec
	realScratchPool.Put(sc)
	// Parseval with one-sided doubling, normalized per input sample.
	return 2 * sum / (float64(n) * float64(len(x)))
}

func cmplxAbs(c complex128) float64 { return math.Hypot(real(c), imag(c)) }

// CheckLen panics with a descriptive message if got != want; used by
// internal kernels whose contracts require equal-length slices.
func CheckLen(name string, got, want int) {
	if got != want {
		panic(fmt.Sprintf("dsp: %s length %d, want %d", name, got, want))
	}
}
