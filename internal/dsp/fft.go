// Package dsp provides the digital signal processing primitives that Ekho
// is built on: fast Fourier transforms, FIR filter design and application,
// cross-correlation, window functions and resampling.
//
// The paper's reference implementation uses FFTW; this package is a
// self-contained, allocation-conscious replacement built only on the Go
// standard library. Transform sizes that are powers of two use an iterative
// radix-2 Cooley-Tukey FFT; all other sizes are handled with Bluestein's
// chirp-z algorithm, so every length is supported.
package dsp

import (
	"fmt"
	"math"
	"math/bits"
)

// FFT computes the in-place discrete Fourier transform of x when len(x) is a
// power of two, and an out-of-place Bluestein transform otherwise. The
// returned slice aliases x in the power-of-two case.
func FFT(x []complex128) []complex128 {
	n := len(x)
	if n == 0 {
		return x
	}
	if isPow2(n) {
		fftPow2(x, false)
		return x
	}
	return bluestein(x, false)
}

// IFFT computes the inverse discrete Fourier transform with 1/N scaling.
// As with FFT, power-of-two inputs are transformed in place.
func IFFT(x []complex128) []complex128 {
	n := len(x)
	if n == 0 {
		return x
	}
	var out []complex128
	if isPow2(n) {
		fftPow2(x, true)
		out = x
	} else {
		out = bluestein(x, true)
	}
	scale := 1 / float64(n)
	for i := range out {
		out[i] = complex(real(out[i])*scale, imag(out[i])*scale)
	}
	return out
}

// FFTReal transforms a real-valued signal, returning the full complex
// spectrum of length NextPow2(len(x)) (zero padded). It is a convenience
// wrapper used by the correlation and codec code paths.
func FFTReal(x []float64) []complex128 {
	n := NextPow2(len(x))
	buf := make([]complex128, n)
	for i, v := range x {
		buf[i] = complex(v, 0)
	}
	fftPow2(buf, false)
	return buf
}

// NextPow2 returns the smallest power of two >= n (and at least 1).
func NextPow2(n int) int {
	if n <= 1 {
		return 1
	}
	return 1 << bits.Len(uint(n-1))
}

func isPow2(n int) bool { return n > 0 && n&(n-1) == 0 }

// fftPow2 is an iterative radix-2 decimation-in-time FFT. inverse selects
// the conjugate transform (without scaling).
func fftPow2(x []complex128, inverse bool) {
	n := len(x)
	if n <= 1 {
		return
	}
	// Bit-reversal permutation.
	shift := 64 - uint(bits.Len(uint(n-1)))
	for i := 0; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if j > i {
			x[i], x[j] = x[j], x[i]
		}
	}
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		step := sign * 2 * math.Pi / float64(size)
		// Precompute the principal root increment and iterate by
		// multiplication; accurate enough for audio-band work and
		// much cheaper than per-butterfly sincos.
		wStep := complex(math.Cos(step), math.Sin(step))
		for start := 0; start < n; start += size {
			w := complex(1, 0)
			for k := 0; k < half; k++ {
				a := x[start+k]
				b := x[start+k+half] * w
				x[start+k] = a + b
				x[start+k+half] = a - b
				w *= wStep
			}
		}
	}
}

// bluestein computes a DFT of arbitrary length via the chirp-z transform,
// using three power-of-two FFTs.
func bluestein(x []complex128, inverse bool) []complex128 {
	n := len(x)
	m := NextPow2(2*n - 1)
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	// chirp[k] = exp(sign*i*pi*k^2/n)
	chirp := make([]complex128, n)
	for k := 0; k < n; k++ {
		// k*k may overflow for very large n; use modular phase.
		phase := sign * math.Pi * float64(k) * float64(k) / float64(n)
		chirp[k] = complex(math.Cos(phase), math.Sin(phase))
	}
	a := make([]complex128, m)
	b := make([]complex128, m)
	for k := 0; k < n; k++ {
		a[k] = x[k] * chirp[k]
		c := complex(real(chirp[k]), -imag(chirp[k])) // conj
		b[k] = c
		if k > 0 {
			b[m-k] = c
		}
	}
	fftPow2(a, false)
	fftPow2(b, false)
	for i := range a {
		a[i] *= b[i]
	}
	fftPow2(a, true)
	out := make([]complex128, n)
	scale := 1 / float64(m)
	for k := 0; k < n; k++ {
		v := a[k] * complex(scale, 0)
		out[k] = v * chirp[k]
	}
	return out
}

// Spectrum returns the one-sided magnitude spectrum of a real signal along
// with the frequency (Hz) of each bin, given the sample rate. The signal is
// zero-padded to the next power of two.
func Spectrum(x []float64, sampleRate float64) (mags, freqs []float64) {
	spec := FFTReal(x)
	n := len(spec)
	half := n/2 + 1
	mags = make([]float64, half)
	freqs = make([]float64, half)
	for i := 0; i < half; i++ {
		mags[i] = cmplxAbs(spec[i]) / float64(n)
		freqs[i] = float64(i) * sampleRate / float64(n)
	}
	return mags, freqs
}

// BandPower returns the mean power of x within [lo, hi) Hz, computed in the
// frequency domain. It is used by the marker amplitude tracker (Eq. 2) to
// measure game-audio energy in the 6-12 kHz marker band.
func BandPower(x []float64, sampleRate, lo, hi float64) float64 {
	if len(x) == 0 {
		return 0
	}
	spec := FFTReal(x)
	n := len(spec)
	binHz := sampleRate / float64(n)
	loBin := int(math.Ceil(lo / binHz))
	hiBin := int(math.Floor(hi / binHz))
	if hiBin > n/2 {
		hiBin = n / 2
	}
	if loBin < 0 {
		loBin = 0
	}
	if loBin >= hiBin {
		return 0
	}
	var sum float64
	for i := loBin; i < hiBin; i++ {
		re, im := real(spec[i]), imag(spec[i])
		sum += re*re + im*im
	}
	// Parseval with one-sided doubling, normalized per input sample.
	return 2 * sum / (float64(n) * float64(len(x)))
}

func cmplxAbs(c complex128) float64 { return math.Hypot(real(c), imag(c)) }

// CheckLen panics with a descriptive message if got != want; used by
// internal kernels whose contracts require equal-length slices.
func CheckLen(name string, got, want int) {
	if got != want {
		panic(fmt.Sprintf("dsp: %s length %d, want %d", name, got, want))
	}
}
