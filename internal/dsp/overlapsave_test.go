package dsp

import (
	"math"
	"math/rand"
	"testing"
)

func TestMarkerCorrelatorMatchesCrossCorrelate(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tmpl := make([]float64, 48000)
	for i := range tmpl {
		tmpl[i] = rng.NormFloat64()
	}
	sig := make([]float64, 300000)
	for i := range sig {
		sig[i] = rng.NormFloat64() * 0.3
	}
	want := CrossCorrelate(sig, tmpl)

	c := NewMarkerCorrelator(tmpl, 1<<17)
	if c.SegmentLen() != 1<<17 {
		t.Fatalf("segment len %d", c.SegmentLen())
	}
	step := c.Step()
	var got []float64
	for start := 0; start+c.SegmentLen() <= len(sig); start += step {
		got = append(got, c.Correlate(sig[start:start+c.SegmentLen()])...)
	}
	if len(got) < len(want)/2 {
		t.Fatalf("only %d lags from overlap-save vs %d direct", len(got), len(want))
	}
	for i := range got {
		if i >= len(want) {
			break
		}
		if math.Abs(got[i]-want[i]) > 1e-6 {
			t.Fatalf("lag %d: overlap-save %g vs direct %g", i, got[i], want[i])
		}
	}
}

func TestMarkerCorrelatorTooSmallFFTSizeUpgraded(t *testing.T) {
	tmpl := make([]float64, 1000)
	c := NewMarkerCorrelator(tmpl, 512) // smaller than template
	if c.SegmentLen() < 2*len(tmpl) {
		t.Fatalf("fft size not upgraded: %d", c.SegmentLen())
	}
	if c.Step() <= 0 {
		t.Fatal("step must be positive")
	}
}

func TestMarkerCorrelatorRejectsWrongSegment(t *testing.T) {
	c := NewMarkerCorrelator(make([]float64, 100), 1024)
	defer func() {
		if recover() == nil {
			t.Fatal("wrong segment length should panic")
		}
	}()
	c.Correlate(make([]float64, 100))
}

func BenchmarkMarkerCorrelatorPerSecond(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	tmpl := make([]float64, 48000)
	for i := range tmpl {
		tmpl[i] = rng.NormFloat64()
	}
	c := NewMarkerCorrelator(tmpl, 1<<17)
	seg := make([]float64, c.SegmentLen())
	for i := range seg {
		seg[i] = rng.NormFloat64()
	}
	// One iteration ~= the FFT work for Step() lags.
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Correlate(seg)
	}
}
