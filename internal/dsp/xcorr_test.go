package dsp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCrossCorrelateDirectSmall(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	w := []float64{1, 1}
	got := CrossCorrelate(x, w)
	want := []float64{3, 5, 7, 9}
	if len(got) != len(want) {
		t.Fatalf("len=%d want %d", len(got), len(want))
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("idx %d: got %g want %g", i, got[i], want[i])
		}
	}
}

func TestCrossCorrelateFFTMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	// Force the FFT path: n*m > 1<<16.
	x := make([]float64, 3000)
	w := make([]float64, 64)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	for i := range w {
		w[i] = rng.NormFloat64()
	}
	fftOut := CrossCorrelate(x, w)
	// direct reference
	direct := make([]float64, len(x)-len(w)+1)
	for t0 := range direct {
		var s float64
		for i := range w {
			s += x[t0+i] * w[i]
		}
		direct[t0] = s
	}
	for i := range direct {
		if math.Abs(fftOut[i]-direct[i]) > 1e-7 {
			t.Fatalf("idx %d: fft %g direct %g", i, fftOut[i], direct[i])
		}
	}
}

func TestCrossCorrelatePeakAtShiftProperty(t *testing.T) {
	// Property: embedding a noise template at a random offset inside a
	// quiet signal puts the correlation peak at that offset.
	f := func(seed int64, offSel uint16) bool {
		r := rand.New(rand.NewSource(seed))
		tmpl := make([]float64, 256)
		for i := range tmpl {
			tmpl[i] = r.NormFloat64()
		}
		sig := make([]float64, 4096)
		for i := range sig {
			sig[i] = 0.01 * r.NormFloat64()
		}
		off := int(offSel) % (len(sig) - len(tmpl))
		for i, v := range tmpl {
			sig[off+i] += v
		}
		z := CrossCorrelate(sig, tmpl)
		return ArgMaxAbs(z) == off
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestCrossCorrelateEdgeCases(t *testing.T) {
	if CrossCorrelate(nil, []float64{1}) != nil {
		t.Error("nil x should give nil")
	}
	if CrossCorrelate([]float64{1}, nil) != nil {
		t.Error("nil w should give nil")
	}
	if CrossCorrelate([]float64{1}, []float64{1, 2}) != nil {
		t.Error("template longer than signal should give nil")
	}
	out := CrossCorrelate([]float64{2}, []float64{3})
	if len(out) != 1 || out[0] != 6 {
		t.Errorf("single-sample correlation: %v", out)
	}
}

func TestNormalizedPeakLag(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	tmpl := make([]float64, 512)
	for i := range tmpl {
		tmpl[i] = rng.NormFloat64()
	}
	sig := make([]float64, 8192)
	for i := range sig {
		sig[i] = 0.05 * rng.NormFloat64()
	}
	const off = 3210
	for i, v := range tmpl {
		sig[off+i] += 0.5 * v // attenuated copy
	}
	lag, peak := NormalizedPeakLag(sig, tmpl)
	if lag != off {
		t.Fatalf("lag=%d want %d", lag, off)
	}
	if peak < 0.5 || peak > 1.0 {
		t.Fatalf("peak=%g want in (0.5, 1]", peak)
	}
}

func TestArgMaxAbs(t *testing.T) {
	if ArgMaxAbs(nil) != -1 {
		t.Error("empty should return -1")
	}
	if ArgMaxAbs([]float64{1, -5, 3}) != 1 {
		t.Error("should pick largest magnitude")
	}
}

func BenchmarkCrossCorrelate1sMarker(b *testing.B) {
	// The estimator's hot path: 5 s of recording against a 1 s marker.
	rng := rand.New(rand.NewSource(9))
	x := make([]float64, 5*48000)
	w := make([]float64, 48000)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	for i := range w {
		w[i] = rng.NormFloat64()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		CrossCorrelate(x, w)
	}
}
