package dsp

import (
	"math"
	"math/cmplx"
	"math/rand"
	"sync"
	"testing"
)

// planNaiveDFT is the O(n²) reference the plan engine is checked against.
func planNaiveDFT(x []complex128, inverse bool) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for k := 0; k < n; k++ {
		var sum complex128
		for j := 0; j < n; j++ {
			phase := sign * 2 * math.Pi * float64(k) * float64(j) / float64(n)
			sum += x[j] * cmplx.Exp(complex(0, phase))
		}
		out[k] = sum
	}
	return out
}

func planRandComplex(n int, seed int64) []complex128 {
	rng := rand.New(rand.NewSource(seed))
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return x
}

// TestPlanMatchesNaiveDFT checks the iterative plan transform against the
// direct DFT on randomized inputs across every size the system uses.
func TestPlanMatchesNaiveDFT(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8, 16, 64, 256, 1024} {
		x := planRandComplex(n, int64(n))
		want := planNaiveDFT(x, false)
		got := append([]complex128(nil), x...)
		PlanFor(n).Forward(got)
		for k := range want {
			if cmplx.Abs(got[k]-want[k]) > 1e-9*float64(n) {
				t.Fatalf("n=%d bin %d: got %v want %v", n, k, got[k], want[k])
			}
		}
		// Inverse (unscaled conjugate transform).
		wantInv := planNaiveDFT(x, true)
		gotInv := append([]complex128(nil), x...)
		PlanFor(n).Inverse(gotInv)
		for k := range wantInv {
			if cmplx.Abs(gotInv[k]-wantInv[k]) > 1e-9*float64(n) {
				t.Fatalf("n=%d inverse bin %d: got %v want %v", n, k, gotInv[k], wantInv[k])
			}
		}
	}
}

// TestRealPlanMatchesComplexFFT checks the packed real transform against a
// full complex FFT of the same signal.
func TestRealPlanMatchesComplexFFT(t *testing.T) {
	for _, n := range []int{2, 4, 8, 32, 128, 2048} {
		x := benchSignal(n, int64(n))
		full := make([]complex128, n)
		for i, v := range x {
			full[i] = complex(v, 0)
		}
		full = FFT(full)

		rp := RealPlanFor(n)
		spec := make([]complex128, rp.HalfLen())
		rp.Forward(spec, x)
		for k := 0; k <= n/2; k++ {
			if cmplx.Abs(spec[k]-full[k]) > 1e-9*float64(n) {
				t.Fatalf("n=%d bin %d: got %v want %v", n, k, spec[k], full[k])
			}
		}
	}
}

// TestRealPlanRoundTrip checks Inverse∘Forward ≈ identity.
func TestRealPlanRoundTrip(t *testing.T) {
	for _, n := range []int{2, 4, 16, 512, 4096} {
		x := benchSignal(n, int64(n)+77)
		rp := RealPlanFor(n)
		spec := make([]complex128, rp.HalfLen())
		rp.Forward(spec, x)
		back := make([]float64, n)
		rp.Inverse(back, spec)
		for i := range x {
			if math.Abs(back[i]-x[i]) > 1e-9 {
				t.Fatalf("n=%d sample %d: got %g want %g", n, i, back[i], x[i])
			}
		}
	}
}

// TestPlanCacheConcurrency hammers the package-level caches from many
// goroutines (run with -race): plan lookup, real transforms, pooled helpers
// and correlators all sharing tables.
func TestPlanCacheConcurrency(t *testing.T) {
	template := benchSignal(512, 9)
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			x := benchSignal(1024, seed)
			c := NewMarkerCorrelator(template, 2048)
			seg := benchSignal(c.SegmentLen(), seed+1)
			dst := make([]float64, 0)
			for i := 0; i < 20; i++ {
				_ = FFTReal(x)
				_ = BandPower(x, 48000, 6000, 12000)
				dst = c.CorrelateInto(dst, seg)
				_ = MDCT(benchSignal(240, seed+int64(i)))
				p := PlanFor(256)
				buf := planRandComplex(256, seed)
				p.Forward(buf)
				p.Inverse(buf)
			}
		}(int64(g))
	}
	wg.Wait()
}

// TestCorrelateIntoMatchesDirect verifies the overlap-save output against
// the O(n·m) direct correlation, and that the steady state is allocation
// free.
func TestCorrelateIntoMatchesDirect(t *testing.T) {
	template := benchSignal(300, 4)
	c := NewMarkerCorrelator(template, 1024)
	seg := benchSignal(c.SegmentLen(), 5)

	want := make([]float64, c.Step())
	for lag := range want {
		var sum float64
		for i, w := range template {
			sum += seg[lag+i] * w
		}
		want[lag] = sum
	}
	got := c.Correlate(seg)
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9*float64(len(template)) {
			t.Fatalf("lag %d: got %g want %g", i, got[i], want[i])
		}
	}

	dst := make([]float64, c.Step())
	allocs := testing.AllocsPerRun(50, func() {
		dst = c.CorrelateInto(dst, seg)
	})
	if allocs != 0 {
		t.Fatalf("CorrelateInto allocates %v per op, want 0", allocs)
	}
}

// TestBandPowerZeroAlloc asserts the per-frame marker-band probe stays off
// the heap in steady state.
func TestBandPowerZeroAlloc(t *testing.T) {
	x := benchSignal(960, 6)
	_ = BandPower(x, 48000, 6000, 12000) // warm the pool and plan cache
	allocs := testing.AllocsPerRun(50, func() {
		_ = BandPower(x, 48000, 6000, 12000)
	})
	if allocs != 0 {
		t.Fatalf("BandPower allocates %v per op, want 0", allocs)
	}
}

// TestApplyInPlaceMatchesApply checks the allocation-free biquad variants
// against the allocating ones.
func TestApplyInPlaceMatchesApply(t *testing.T) {
	x := benchSignal(480, 7)
	q1 := NewLowPassBiquad(8000, 48000, 0.707)
	q2 := NewLowPassBiquad(8000, 48000, 0.707)
	want := q1.Apply(x)
	got := append([]float64(nil), x...)
	q2.ApplyInPlace(got)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("biquad sample %d: got %g want %g", i, got[i], want[i])
		}
	}

	c1 := Chain{NewHighPassBiquad(200, 48000, 0.707), NewPeakingBiquad(3000, 48000, 1.2, 4)}
	c2 := Chain{NewHighPassBiquad(200, 48000, 0.707), NewPeakingBiquad(3000, 48000, 1.2, 4)}
	want = c1.Apply(x)
	got = append([]float64(nil), x...)
	c2.ApplyInPlace(got)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("chain sample %d: got %g want %g", i, got[i], want[i])
		}
	}
}

// TestMDCTPlanMatchesOneShot checks plan-based MDCT/IMDCT against the
// package-level helpers across pow2 and non-pow2 bin counts.
func TestMDCTPlanMatchesOneShot(t *testing.T) {
	for _, nBins := range []int{64, 240, 960} {
		x := benchSignal(2*nBins, int64(nBins))
		want := MDCT(x)
		p := NewMDCTPlan(nBins)
		got := p.Forward(nil, x)
		for k := range want {
			if math.Abs(got[k]-want[k]) > 1e-9*float64(nBins) {
				t.Fatalf("nBins=%d bin %d: got %g want %g", nBins, k, got[k], want[k])
			}
		}
		wantInv := IMDCT(want)
		gotInv := p.Inverse(nil, got)
		for i := range wantInv {
			if math.Abs(gotInv[i]-wantInv[i]) > 1e-9 {
				t.Fatalf("nBins=%d sample %d: got %g want %g", nBins, i, gotInv[i], wantInv[i])
			}
		}
		// Steady state with reused buffers allocates nothing.
		spec := make([]float64, nBins)
		td := make([]float64, 2*nBins)
		allocs := testing.AllocsPerRun(20, func() {
			spec = p.Forward(spec, x)
			td = p.Inverse(td, spec)
		})
		if allocs != 0 {
			t.Fatalf("nBins=%d: MDCTPlan allocates %v per op, want 0", nBins, allocs)
		}
	}
}
