package dsp

import (
	"math"
	"sync"
)

// Modified Discrete Cosine Transform with time-domain alias cancellation
// (TDAC) — the transform real audio codecs (CELT inside OPUS, AAC) build
// on. The codec package uses it with the Princen-Bradley sqrt-Hann window:
// windowed MDCT → quantize → windowed IMDCT → 50% overlap-add reconstructs
// the signal exactly (up to quantization).
//
//	X[k] = Σ_{n=0}^{2N-1} x[n] · cos(π/N · (n + ½ + N/2) · (k + ½))
//
// The implementation folds the 2N-point input into an N-point DCT-IV and
// evaluates the DCT-IV with one zero-padded FFT. All size-dependent setup
// — the pre/post twiddles and, for non-power-of-two lengths, the Bluestein
// chirp tables — is computed once and cached at package level; an MDCTPlan
// adds the per-instance scratch buffers so the steady-state transform
// allocates nothing.

// dct4Tables is the immutable size-dependent setup of a DCT-IV: the
// pre-rotation applied to the input and the post-rotation applied to the
// DFT output. Shared across all plans of one size.
type dct4Tables struct {
	pre  []complex128 // pre[i] = exp(-i·π·i/(2n))
	post []complex128 // post[k] = exp(-i·π·(2k+1)/(4n))
}

var dct4Cache sync.Map // int -> *dct4Tables

func dct4TablesFor(n int) *dct4Tables {
	if t, ok := dct4Cache.Load(n); ok {
		return t.(*dct4Tables)
	}
	a := math.Pi / float64(n)
	t := &dct4Tables{
		pre:  make([]complex128, n),
		post: make([]complex128, n),
	}
	for i := 0; i < n; i++ {
		s, c := math.Sincos(-a * float64(i) / 2)
		t.pre[i] = complex(c, s)
		s, c = math.Sincos(-a * (float64(i)/2 + 0.25))
		t.post[i] = complex(c, s)
	}
	actual, _ := dct4Cache.LoadOrStore(n, t)
	return actual.(*dct4Tables)
}

// MDCTPlan computes N-bin forward and inverse MDCTs over shared cached
// tables with private scratch, so repeated transforms allocate nothing.
// A plan is NOT safe for concurrent use (the scratch is shared between
// calls); give each goroutine its own — the expensive tables are shared
// underneath.
type MDCTPlan struct {
	n    int // spectral bins per block (block length 2n)
	tabs *dct4Tables
	plan *Plan       // 2n-point DFT when 2n is a power of two
	blu  *blueTables // otherwise
	buf  []complex128
	ba   []complex128 // bluestein work area (nil when plan != nil)
	fold []float64
}

// NewMDCTPlan returns a plan for nBins-bin MDCT blocks (2·nBins samples).
func NewMDCTPlan(nBins int) *MDCTPlan {
	if nBins <= 0 {
		panic("dsp: NewMDCTPlan requires nBins > 0")
	}
	p := &MDCTPlan{
		n:    nBins,
		tabs: dct4TablesFor(nBins),
		buf:  make([]complex128, 2*nBins),
		fold: make([]float64, nBins),
	}
	if isPow2(2 * nBins) {
		p.plan = PlanFor(2 * nBins)
	} else {
		p.blu = blueTablesFor(2*nBins, false)
		p.ba = make([]complex128, p.blu.m)
	}
	return p
}

// Bins returns the spectral bin count N (block length is 2N).
func (p *MDCTPlan) Bins() int { return p.n }

// Forward computes the N-point MDCT of the 2N-sample block x into dst,
// which is grown (reusing capacity) to N and returned.
func (p *MDCTPlan) Forward(dst, x []float64) []float64 {
	CheckLen("MDCT block", len(x), 2*p.n)
	foldMDCTInto(p.fold, x, p.n)
	dst = growFloats(dst, p.n)
	p.dct4Into(dst, p.fold)
	return dst
}

// Inverse computes the 2N-sample IMDCT (with time-domain aliasing) of the
// N-bin spectrum into dst, which is grown (reusing capacity) to 2N and
// returned. Overlap-adding two consecutive windowed outputs cancels the
// aliasing exactly when the window satisfies Princen-Bradley.
func (p *MDCTPlan) Inverse(dst, spec []float64) []float64 {
	CheckLen("IMDCT spectrum", len(spec), p.n)
	n := p.n
	p.dct4Into(p.fold, spec)
	d := p.fold
	dst = growFloats(dst, 2*n)
	scale := 2.0 / float64(n)
	for i := 0; i < 2*n; i++ {
		m := i + n/2
		var v float64
		switch {
		case m < n:
			v = d[m]
		case m < 2*n:
			v = -d[2*n-1-m]
		default: // m < 2n + n/2
			v = -d[m-2*n]
		}
		dst[i] = v * scale
	}
	return dst
}

// dct4Into evaluates the DCT-IV
//
//	X[k] = Σ_{n=0}^{N-1} u[n] · cos(π/N · (n+½)(k+½))
//
// via a zero-padded 2N-point DFT with cached pre/post twiddles. dst and u
// may alias.
func (p *MDCTPlan) dct4Into(dst, u []float64) {
	n := p.n
	for i, v := range u {
		p.buf[i] = p.tabs.pre[i] * complex(v, 0)
	}
	for i := n; i < 2*n; i++ {
		p.buf[i] = 0
	}
	if p.plan != nil {
		p.plan.Forward(p.buf)
	} else {
		p.blu.transform(p.buf, p.buf, p.ba)
	}
	for k := 0; k < n; k++ {
		dst[k] = real(p.tabs.post[k] * p.buf[k])
	}
}

// foldMDCTInto maps the 2N input samples onto the N-point DCT-IV domain
// using the standard TDAC boundary symmetries.
func foldMDCTInto(u, x []float64, n int) {
	half := n / 2
	for i := 0; i < half; i++ {
		u[i] = -x[3*half-1-i] - x[3*half+i]
	}
	for i := half; i < n; i++ {
		u[i] = x[i-half] - x[3*half-1-i]
	}
}

// mdctPool hands out per-size plans for the one-shot MDCT/IMDCT helpers so
// casual callers also hit the cached tables without allocating scratch
// every call.
var mdctPool sync.Map // int -> *sync.Pool

func pooledMDCTPlan(n int) (*MDCTPlan, *sync.Pool) {
	pl, ok := mdctPool.Load(n)
	if !ok {
		pl, _ = mdctPool.LoadOrStore(n, &sync.Pool{New: func() any { return NewMDCTPlan(n) }})
	}
	pool := pl.(*sync.Pool)
	return pool.Get().(*MDCTPlan), pool
}

// MDCT computes the N-point forward transform of a 2N-sample block.
func MDCT(x []float64) []float64 {
	n2 := len(x)
	if n2%2 != 0 {
		panic("dsp: MDCT input length must be even")
	}
	if n2 == 0 {
		return nil
	}
	p, pool := pooledMDCTPlan(n2 / 2)
	out := p.Forward(nil, x)
	pool.Put(p)
	return out
}

// IMDCT computes the 2N-sample inverse (with time-domain aliasing) of an
// N-bin spectrum. Overlap-adding two consecutive windowed IMDCT outputs
// cancels the aliasing exactly when the window satisfies Princen-Bradley
// (w[n]² + w[n+N]² = 1).
func IMDCT(spec []float64) []float64 {
	if len(spec) == 0 {
		return make([]float64, 0)
	}
	p, pool := pooledMDCTPlan(len(spec))
	out := p.Inverse(nil, spec)
	pool.Put(p)
	return out
}
