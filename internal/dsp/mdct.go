package dsp

import "math"

// Modified Discrete Cosine Transform with time-domain alias cancellation
// (TDAC) — the transform real audio codecs (CELT inside OPUS, AAC) build
// on. The codec package uses it with the Princen-Bradley sqrt-Hann window:
// windowed MDCT → quantize → windowed IMDCT → 50% overlap-add reconstructs
// the signal exactly (up to quantization).
//
//	X[k] = Σ_{n=0}^{2N-1} x[n] · cos(π/N · (n + ½ + N/2) · (k + ½))
//
// The implementation folds the 2N-point input into an N-point DCT-IV and
// evaluates the DCT-IV with one zero-padded FFT, so a 960-bin MDCT costs a
// single 4096-point transform.

// MDCT computes the N-point forward transform of a 2N-sample block.
func MDCT(x []float64) []float64 {
	n2 := len(x)
	if n2%2 != 0 {
		panic("dsp: MDCT input length must be even")
	}
	n := n2 / 2
	u := foldMDCT(x, n)
	return dctIV(u)
}

// IMDCT computes the 2N-sample inverse (with time-domain aliasing) of an
// N-bin spectrum. Overlap-adding two consecutive windowed IMDCT outputs
// cancels the aliasing exactly when the window satisfies Princen-Bradley
// (w[n]² + w[n+N]² = 1).
func IMDCT(spec []float64) []float64 {
	n := len(spec)
	d := dctIV(spec)
	out := make([]float64, 2*n)
	scale := 2.0 / float64(n)
	for i := 0; i < 2*n; i++ {
		m := i + n/2
		var v float64
		switch {
		case m < n:
			v = d[m]
		case m < 2*n:
			v = -d[2*n-1-m]
		default: // m < 2n + n/2
			v = -d[m-2*n]
		}
		out[i] = v * scale
	}
	return out
}

// foldMDCT maps the 2N input samples onto the N-point DCT-IV domain using
// the standard TDAC boundary symmetries.
func foldMDCT(x []float64, n int) []float64 {
	u := make([]float64, n)
	half := n / 2
	for i := 0; i < half; i++ {
		u[i] = -x[3*half-1-i] - x[3*half+i]
	}
	for i := half; i < n; i++ {
		u[i] = x[i-half] - x[3*half-1-i]
	}
	return u
}

// dctIV evaluates the DCT-IV
//
//	X[k] = Σ_{n=0}^{N-1} u[n] · cos(π/N · (n+½)(k+½))
//
// via a zero-padded 2N-point FFT with pre/post twiddles.
func dctIV(u []float64) []float64 {
	n := len(u)
	if n == 0 {
		return nil
	}
	a := math.Pi / float64(n)
	// Exact length-2n DFT (the FFT dispatches to Bluestein for non-power-
	// of-two sizes, so every n is supported).
	buf := make([]complex128, 2*n)
	for i, v := range u {
		phase := -a * float64(i) / 2
		buf[i] = complex(v*math.Cos(phase), v*math.Sin(phase))
	}
	spec := FFT(buf)
	out := make([]float64, n)
	for k := 0; k < n; k++ {
		post := -a * (float64(k)/2 + 0.25)
		c := complex(math.Cos(post), math.Sin(post))
		out[k] = real(c * spec[k])
	}
	return out
}
