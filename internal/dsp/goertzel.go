package dsp

import "math"

// Goertzel computes the power of a single frequency component of x using the
// Goertzel algorithm — cheaper than a full FFT when only a handful of bins
// are needed (e.g. chirp progress tracking in the ground-truth pipeline).
func Goertzel(x []float64, freq, sampleRate float64) float64 {
	n := len(x)
	if n == 0 {
		return 0
	}
	k := freq / sampleRate
	w := 2 * math.Pi * k
	coeff := 2 * math.Cos(w)
	var s0, s1, s2 float64
	for _, v := range x {
		s0 = v + coeff*s1 - s2
		s2 = s1
		s1 = s0
	}
	power := s1*s1 + s2*s2 - coeff*s1*s2
	return power / float64(n)
}

// RMS returns the root-mean-square level of x (0 for empty input).
func RMS(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	var sum float64
	for _, v := range x {
		sum += v * v
	}
	return math.Sqrt(sum / float64(len(x)))
}

// MeanPower returns the mean of x squared.
func MeanPower(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	var sum float64
	for _, v := range x {
		sum += v * v
	}
	return sum / float64(len(x))
}
