package dsp

import "math"

// Window identifies a tapering window function.
type Window int

// Supported window shapes.
const (
	Rectangular Window = iota
	Hann
	Hamming
	Blackman
)

// Make returns the window coefficients of length n.
func (w Window) Make(n int) []float64 {
	out := make([]float64, n)
	if n == 0 {
		return out
	}
	if n == 1 {
		out[0] = 1
		return out
	}
	den := float64(n - 1)
	for i := 0; i < n; i++ {
		t := float64(i) / den
		switch w {
		case Hann:
			out[i] = 0.5 - 0.5*math.Cos(2*math.Pi*t)
		case Hamming:
			out[i] = 0.54 - 0.46*math.Cos(2*math.Pi*t)
		case Blackman:
			out[i] = 0.42 - 0.5*math.Cos(2*math.Pi*t) + 0.08*math.Cos(4*math.Pi*t)
		default:
			out[i] = 1
		}
	}
	return out
}

// ApplyWindow multiplies x by the window in place and returns x.
func ApplyWindow(x []float64, w Window) []float64 {
	win := w.Make(len(x))
	for i := range x {
		x[i] *= win[i]
	}
	return x
}

// String implements fmt.Stringer.
func (w Window) String() string {
	switch w {
	case Hann:
		return "hann"
	case Hamming:
		return "hamming"
	case Blackman:
		return "blackman"
	default:
		return "rectangular"
	}
}
