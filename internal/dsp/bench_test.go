package dsp

import (
	"math/rand"
	"testing"
)

// benchSignal returns a deterministic pseudo-random signal.
func benchSignal(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	return x
}

// BenchmarkMarkerCorrelate measures one overlap-save correlation step at
// Ekho's production size: a 1 s (48000-sample) marker template against a
// full FFT-sized segment, the per-block cost of the streaming estimator.
func BenchmarkMarkerCorrelate(b *testing.B) {
	template := benchSignal(48000, 1)
	c := NewMarkerCorrelator(template, NextPow2(2*len(template)))
	seg := benchSignal(c.SegmentLen(), 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = c.Correlate(seg)
	}
}

// BenchmarkFFTPow2 measures the raw complex transform at the correlator's
// production size.
func BenchmarkFFTPow2(b *testing.B) {
	const n = 131072
	x := make([]complex128, n)
	src := benchSignal(n, 3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j, v := range src {
			x[j] = complex(v, 0)
		}
		fftPow2(x, false)
	}
}

// BenchmarkMarkerCorrelateInto is the steady-state variant the estimator
// actually runs: correlate into a reused destination buffer.
func BenchmarkMarkerCorrelateInto(b *testing.B) {
	template := benchSignal(48000, 1)
	c := NewMarkerCorrelator(template, NextPow2(2*len(template)))
	seg := benchSignal(c.SegmentLen(), 2)
	dst := make([]float64, c.Step())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = c.CorrelateInto(dst, seg)
	}
}

// BenchmarkBandPower measures the per-frame marker-band amplitude probe
// (Eq. 2) that the injector runs on every 20 ms tick of every session.
func BenchmarkBandPower(b *testing.B) {
	x := benchSignal(960, 5)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = BandPower(x, 48000, 6000, 12000)
	}
}
