package dsp

import (
	"hash/fnv"
	"math"
	"sync"
)

// ComplexCorrelator is the complex-signal counterpart of MarkerCorrelator:
// streaming cross-correlation against a fixed complex template using
// overlap-save with a cached conjugate template spectrum,
//
//	C[t] = Σ_i seg[t+i] · conj(w[i])   for t = 0 .. Step()-1.
//
// The band-decimated marker detector uses it on the heterodyned, decimated
// mic stream, where the signal is genuinely complex so the real-input
// packing trick does not apply — but the decimated template is ~D× shorter,
// which is where the speedup lives.
type ComplexCorrelator struct {
	n    int          // FFT size
	m    int          // template length
	p    *Plan4       // shared transform plan (radix-4: see Plan4)
	wfft []complex128 // conj(FFT(template))/n, cached (possibly shared)
	x    []complex128 // forward-spectrum scratch
	y    []complex128 // inverse-output scratch (lent out by Correlate)
}

// NewComplexCorrelator prepares a correlator for the template with a
// private spectrum. fftSize must be a power of two greater than the
// template length; Step() = fftSize − len(template) + 1 lags per call.
func NewComplexCorrelator(template []complex128, fftSize int) *ComplexCorrelator {
	if fftSize < NextPow2(len(template)+1) {
		fftSize = NextPow2(2 * len(template))
	}
	if fftSize < 2 {
		fftSize = 2
	}
	return &ComplexCorrelator{
		n:    fftSize,
		m:    len(template),
		p:    Plan4For(fftSize),
		wfft: conjSpectrumComplex(template, fftSize),
		x:    make([]complex128, fftSize),
		y:    make([]complex128, fftSize),
	}
}

// NewComplexCorrelatorShared is NewComplexCorrelator with the conjugate
// template spectrum served from the package-level cache under tag (see
// NewMarkerCorrelatorShared for the sharing contract).
func NewComplexCorrelatorShared(template []complex128, fftSize int, tag uint64) *ComplexCorrelator {
	if fftSize < NextPow2(len(template)+1) {
		fftSize = NextPow2(2 * len(template))
	}
	if fftSize < 2 {
		fftSize = 2
	}
	n := fftSize
	return &ComplexCorrelator{
		n: n,
		m: len(template),
		p: Plan4For(n),
		wfft: sharedSpectrumKind(tag, 1, n, checksumComplex(template), func() []complex128 {
			return conjSpectrumComplex(template, n)
		}),
		x: make([]complex128, n),
		y: make([]complex128, n),
	}
}

func conjSpectrumComplex(template []complex128, fftSize int) []complex128 {
	w := make([]complex128, fftSize)
	copy(w, template)
	Plan4For(fftSize).Forward(w)
	// The overlap-save round trip needs a 1/n scale; folding it into the
	// cached spectrum makes the per-block inverse output directly usable.
	s := 1 / float64(fftSize)
	for i, v := range w {
		w[i] = complex(real(v)*s, -imag(v)*s)
	}
	return w
}

// Step returns the number of correlation lags produced per Correlate call.
func (c *ComplexCorrelator) Step() int { return c.n - c.m + 1 }

// SegmentLen returns the required input length per Correlate call (the
// trailing len(template)−1 samples overlap the next call's head).
func (c *ComplexCorrelator) SegmentLen() int { return c.n }

// CorrelateInto computes the correlation of seg (exactly SegmentLen()
// samples) into dst, grown to Step() reusing capacity. With a reused dst
// the steady state allocates nothing.
func (c *ComplexCorrelator) CorrelateInto(dst, seg []complex128) []complex128 {
	lags := c.Correlate(seg)
	dst = growComplex(dst, len(lags))
	copy(dst, lags)
	return dst
}

// Correlate computes the correlation of seg (exactly SegmentLen() samples)
// and lends the Step() lags from internal scratch: the result is valid
// until the next call on this correlator, sparing the hot path a copy.
// The template spectrum carries the 1/n round-trip scale (see
// conjSpectrumComplex), and both transforms run through Plan4's fused
// gather entry points, so the whole block is three passes of transform
// butterflies and nothing else.
func (c *ComplexCorrelator) Correlate(seg []complex128) []complex128 {
	CheckLen("overlap-save segment", len(seg), c.n)
	c.p.ForwardFrom(c.x, seg)
	c.p.InverseFromProduct(c.y, c.x, c.wfft)
	return c.y[:c.Step()]
}

// CrossCorrelateComplex computes C[t] = Σ_i x[t+i]·conj(w[i]) for
// t = 0..len(x)-len(w) directly. The streaming detector only uses it for
// the Flush tail (lags short of one overlap-save block); sized work goes
// through ComplexCorrelator.
func CrossCorrelateComplex(x, w []complex128) []complex128 {
	n := len(x) - len(w) + 1
	if n <= 0 {
		return nil
	}
	out := make([]complex128, n)
	for t := 0; t < n; t++ {
		var sr, si float64
		seg := x[t : t+len(w)]
		for i, wv := range w {
			v := seg[i]
			// v · conj(wv)
			sr += real(v)*real(wv) + imag(v)*imag(wv)
			si += imag(v)*real(wv) - real(v)*imag(wv)
		}
		out[t] = complex(sr, si)
	}
	return out
}

// Shared template-spectrum cache.
//
// Every hub session correlates against the same marker sequence, but each
// session used to transform and store its own conjugate template spectrum —
// 1 MB per session at the full-rate correlator's 131072-point FFT. The
// spectra depend only on (template, FFT size), so they are cached at
// package level like the transform plans and shared across sessions.
//
// The cache key is a caller-supplied tag (Ekho uses the PN sequence seed)
// plus the FFT size; a checksum of the template contents guards against
// tag collisions — on mismatch the caller silently gets a private
// spectrum, so a colliding tag costs memory, never correctness.

type templateSpecKey struct {
	tag  uint64
	kind uint8 // 0 = real half-spectrum, 1 = complex full-spectrum
	n    int   // FFT size
}

type templateSpecEntry struct {
	sum  uint64
	spec []complex128 // immutable after publication
}

var templateSpecCache sync.Map // templateSpecKey -> *templateSpecEntry

// ChecksumFloats hashes a float slice's exact bit contents (FNV-1a); the
// template caches here and in the estimator use it to verify tag matches.
func ChecksumFloats(x []float64) uint64 {
	h := fnv.New64a()
	var b [8]byte
	for _, v := range x {
		bits := math.Float64bits(v)
		for i := range b {
			b[i] = byte(bits >> (8 * i))
		}
		h.Write(b[:])
	}
	return h.Sum64()
}

func checksumComplex(x []complex128) uint64 {
	h := fnv.New64a()
	var b [16]byte
	for _, v := range x {
		rb, ib := math.Float64bits(real(v)), math.Float64bits(imag(v))
		for i := 0; i < 8; i++ {
			b[i] = byte(rb >> (8 * i))
			b[8+i] = byte(ib >> (8 * i))
		}
		h.Write(b[:])
	}
	return h.Sum64()
}

// sharedSpectrumKind returns the cached spectrum for (tag, kind, n) when
// its checksum matches sum, computing and publishing it on first use. A
// checksum mismatch (two different templates under one tag) falls back to
// a private computation.
func sharedSpectrumKind(tag uint64, kind uint8, n int, sum uint64, compute func() []complex128) []complex128 {
	key := templateSpecKey{tag: tag, kind: kind, n: n}
	if e, ok := templateSpecCache.Load(key); ok {
		ent := e.(*templateSpecEntry)
		if ent.sum == sum {
			return ent.spec
		}
		return compute()
	}
	ent := &templateSpecEntry{sum: sum, spec: compute()}
	if prev, loaded := templateSpecCache.LoadOrStore(key, ent); loaded {
		got := prev.(*templateSpecEntry)
		if got.sum == sum {
			return got.spec
		}
	}
	return ent.spec
}
