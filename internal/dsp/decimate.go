package dsp

// Decimator low-pass filters and downsamples a complex stream by an
// integer factor, evaluating the FIR only at retained output positions
// (polyphase operation: len(taps)/D multiply-adds per input sample instead
// of len(taps)). Taps are real — the band-decimated marker front-end
// filters a heterodyned signal whose I and Q legs share one low-pass.
//
// Zero coefficients are skipped entirely. That matters because the marker
// chain decimates through half-band stages (cutoff at a quarter of the
// stage's input rate), whose windowed-sinc designs have every second tap
// exactly zero: the skip halves the filter work again.
//
// Output m is the causal convolution sampled at input index m·D:
//
//	y[m] = Σ_j h[j] · x[m·D − j],   x[k<0] = 0
//
// Both the mic stream and the correlation template run through identical
// chains, so the chains' group delays cancel and a decimated-domain
// correlation lag τ maps back to full-rate sample τ·D exactly.
type Decimator struct {
	d    int
	hist int // inputs of lookback a retained output needs: len(taps)-1

	// Nonzero taps as (lookback offset, coefficient) pairs.
	offs []int32
	taps []float64

	// Sliding input window; buf[0] is absolute input index base.
	buf  []complex128
	base int
	next int // next absolute output index to emit
}

// NewDecimator builds a decimator with the given factor and FIR taps
// (e.g. from LowPass). The taps slice is read once and not retained.
func NewDecimator(factor int, taps []float64) *Decimator {
	if factor < 1 {
		panic("dsp: Decimator factor must be ≥ 1")
	}
	if len(taps) == 0 {
		panic("dsp: Decimator needs at least one tap")
	}
	c := &Decimator{d: factor, hist: len(taps) - 1}
	for j, h := range taps {
		if h == 0 {
			continue
		}
		c.offs = append(c.offs, int32(j))
		c.taps = append(c.taps, h)
	}
	return c
}

// Factor returns the decimation factor D.
func (c *Decimator) Factor() int { return c.d }

// Process consumes x, appends every newly computable output to dst and
// returns the extended slice. Chunk boundaries never change the result:
// outputs depend only on absolute input positions. With a dst whose
// capacity covers the result it allocates nothing beyond the internal
// history window, which reaches a fixed size and stays there.
func (c *Decimator) Process(dst []complex128, x []complex128) []complex128 {
	c.buf = append(c.buf, x...)
	end := c.base + len(c.buf) // absolute input frontier
	for k := c.next * c.d; k < end; k += c.d {
		i := k - c.base
		var sr, si float64
		if k >= c.hist {
			// Steady state: the full lookback window is in buf.
			for t, off := range c.offs {
				v := c.buf[i-int(off)]
				h := c.taps[t]
				sr += real(v) * h
				si += imag(v) * h
			}
		} else {
			// Stream head: taps reaching before input 0 read zeros.
			for t, off := range c.offs {
				j := i - int(off)
				if j < 0 {
					continue
				}
				v := c.buf[j]
				h := c.taps[t]
				sr += real(v) * h
				si += imag(v) * h
			}
		}
		dst = append(dst, complex(sr, si))
		c.next++
	}
	// Drop inputs the next output can no longer reach.
	if drop := c.next*c.d - c.hist - c.base; drop > 0 {
		if drop > len(c.buf) {
			drop = len(c.buf)
		}
		n := copy(c.buf, c.buf[drop:])
		c.buf = c.buf[:n]
		c.base += drop
	}
	return dst
}

// DecimateChain runs a signal through a cascade of decimators in one call
// (offline helper for preparing decimated correlation templates; the
// streaming path feeds Process per stage instead). The stages are consumed:
// pass freshly constructed decimators, not ones mid-stream.
func DecimateChain(x []float64, mix *QuadOsc, stages ...*Decimator) []complex128 {
	mix.Reset()
	cur := mix.MixDown(make([]complex128, 0, len(x)), x)
	for _, st := range stages {
		out := make([]complex128, 0, len(cur)/st.Factor()+1)
		cur = st.Process(out, cur)
	}
	return cur
}
