package dsp

import "math"

// Streaming fractional-ratio resampler.
//
// The compensator's micro-resampling action stretches or squeezes a media
// stream by tens to hundreds of ppm to cancel a device's sample-rate
// offset. That needs a resampler that (a) runs incrementally on 20 ms
// frames, (b) allows the ratio to change between frames without phase
// discontinuities, and (c) allocates nothing in steady state. The kernel
// is the same Hann-windowed sinc as FractionalDelay, evaluated through a
// precomputed polyphase table so the per-sample cost is 2·H multiplies.

// resampleHalfWidth is the interpolation kernel half-width H: each output
// sample is a weighted sum of 2·H input samples. 4 taps per side keeps
// images below audibility for ratios within a few percent of unity (the
// micro-resampling regime is within hundreds of ppm).
const resampleHalfWidth = 4

// resamplePhases is the number of fractional phases in the polyphase
// table. Nearest-phase lookup quantizes sample positions to 1/(2·phases)
// of a sample — ~1 µs of timing error at 48 kHz, far below the
// sub-millisecond scales Ekho cares about.
const resamplePhases = 1024

var resampleTable = buildResampleTable()

// buildResampleTable tabulates the windowed-sinc kernel at resamplePhases
// fractional offsets. Row p holds the 2·H taps for reading at position
// i + p/phases; each row is normalized to unit DC gain so a constant
// input yields exactly a constant output at every phase.
func buildResampleTable() [][2 * resampleHalfWidth]float64 {
	tbl := make([][2 * resampleHalfWidth]float64, resamplePhases)
	for p := range tbl {
		frac := float64(p) / resamplePhases
		var sum float64
		for k := 0; k < 2*resampleHalfWidth; k++ {
			t := frac + float64(resampleHalfWidth-1-k)
			tbl[p][k] = sincHann(t, resampleHalfWidth)
			sum += tbl[p][k]
		}
		for k := range tbl[p] {
			tbl[p][k] /= sum
		}
	}
	return tbl
}

// InterpHalfWidth is the interpolation kernel half-width in samples:
// Interp reads taps spanning [floor(pos)-InterpHalfWidth+1,
// floor(pos)+InterpHalfWidth]. Callers that stream through a sliding
// buffer need this much history and lookahead around each read position.
const InterpHalfWidth = resampleHalfWidth

// Interp evaluates the tabulated windowed-sinc kernel at fractional
// position pos over x, treating out-of-range taps as zero. The session
// simulator uses it to model an ADC sampling the air at a skewed rate.
func Interp(x []float64, pos float64) float64 { return interpAt(x, pos) }

// interpAt evaluates the tabulated kernel at fractional position pos over
// x, treating out-of-range taps as zero. Taps span
// [floor(pos)-H+1, floor(pos)+H].
func interpAt(x []float64, pos float64) float64 {
	ip := math.Floor(pos)
	i := int(ip)
	p := int((pos-ip)*resamplePhases + 0.5)
	if p >= resamplePhases {
		// Fraction rounded up to the next integer position.
		p = 0
		i++
	}
	row := &resampleTable[p]
	var acc float64
	for k := 0; k < 2*resampleHalfWidth; k++ {
		j := i - resampleHalfWidth + 1 + k
		if j >= 0 && j < len(x) {
			acc += x[j] * row[k]
		}
	}
	return acc
}

// InterpLooped evaluates the tabulated kernel at fractional position pos
// over an infinitely looped buffer (tap indices wrap mod len(x)). The
// server streams read looping game clips this way when micro-resampling:
// the full clip is always addressable, so no history state is needed.
// pos may exceed len(x) (unlooped content positions).
func InterpLooped(x []float64, pos float64) float64 {
	n := len(x)
	if n == 0 {
		return 0
	}
	ip := math.Floor(pos)
	i := int(ip)
	p := int((pos-ip)*resamplePhases + 0.5)
	if p >= resamplePhases {
		p = 0
		i++
	}
	row := &resampleTable[p]
	var acc float64
	for k := 0; k < 2*resampleHalfWidth; k++ {
		j := (i - resampleHalfWidth + 1 + k) % n
		if j < 0 {
			j += n
		}
		acc += x[j] * row[k]
	}
	return acc
}

// StreamResampler converts a sample stream by a slowly varying ratio.
// Step is the number of input samples consumed per output sample: step > 1
// drains input faster than it produces output (content speeds up, pitch
// rises by the same ratio), step < 1 stretches it. The zero value is not
// usable; construct with NewStreamResampler.
type StreamResampler struct {
	step float64
	buf  []float64 // pending input, including kernel history
	pos  float64   // fractional read position within buf
	in   int64     // total input samples accepted (diagnostics/tests)
	out  int64     // total output samples produced
}

// NewStreamResampler returns a resampler with the given initial step,
// pre-sized so that feeding chunks of up to maxChunk samples never
// allocates after construction. The kernel is primed with leading zeros,
// so the first output sample is aligned with the first input sample.
func NewStreamResampler(step float64, maxChunk int) *StreamResampler {
	if !(step > 0) || math.IsInf(step, 0) {
		panic("dsp: StreamResampler step must be positive and finite")
	}
	if maxChunk < 1 {
		maxChunk = 1
	}
	r := &StreamResampler{
		step: step,
		buf:  make([]float64, resampleHalfWidth-1, maxChunk+4*resampleHalfWidth),
	}
	r.pos = resampleHalfWidth - 1
	return r
}

// SetStep retargets the conversion ratio. The change is phase-continuous:
// the read position is preserved, so retuning mid-stream produces no
// click. Panics on non-positive or non-finite steps.
func (r *StreamResampler) SetStep(step float64) {
	if !(step > 0) || math.IsInf(step, 0) {
		panic("dsp: StreamResampler step must be positive and finite")
	}
	r.step = step
}

// Step returns the current conversion ratio (input samples per output
// sample).
func (r *StreamResampler) Step() float64 { return r.step }

// Process feeds src into the resampler and appends every output sample
// that becomes computable to dst, returning the extended slice. Output
// lags input by the kernel half-width (H samples); Flush drains the tail
// at end of stream. dst may be nil; pass a slice with spare capacity to
// keep the call allocation-free.
func (r *StreamResampler) Process(dst, src []float64) []float64 {
	r.buf = append(r.buf, src...)
	r.in += int64(len(src))
	return r.drain(dst)
}

// Flush pads the stream with kernel-width zeros and appends the remaining
// computable output to dst. The resampler still accepts input afterwards,
// but the padding zeros will have entered the history, so Flush is meant
// for end of stream.
func (r *StreamResampler) Flush(dst []float64) []float64 {
	for i := 0; i < resampleHalfWidth; i++ {
		r.buf = append(r.buf, 0)
	}
	// Padding H zeros makes every read position within the real input
	// computable, and none beyond it: total output stays N/step ± 1.
	return r.drain(dst)
}

// InputCount and OutputCount report the cumulative stream totals.
func (r *StreamResampler) InputCount() int64  { return r.in }
func (r *StreamResampler) OutputCount() int64 { return r.out }

// drain produces every output sample whose kernel support is fully
// buffered, then compacts the buffer so it stays bounded.
func (r *StreamResampler) drain(dst []float64) []float64 {
	n := len(r.buf)
	// Producing at pos needs taps up to floor(pos)+H, so the last fully
	// supported position satisfies floor(pos)+H <= n-1.
	for int(math.Floor(r.pos))+resampleHalfWidth <= n-1 {
		dst = append(dst, interpAt(r.buf, r.pos))
		r.pos += r.step
		r.out++
	}
	// Keep H-1 history samples before the read position; drop the rest.
	drop := int(math.Floor(r.pos)) - (resampleHalfWidth - 1)
	if drop > 0 {
		if drop > n {
			drop = n
		}
		copy(r.buf, r.buf[drop:])
		r.buf = r.buf[:n-drop]
		r.pos -= float64(drop)
	}
	return dst
}
