package dsp

import "math/cmplx"

// MarkerCorrelator performs streaming cross-correlation against a fixed
// template using the overlap-save method with a cached template FFT.
// Compared to calling CrossCorrelate per chunk — which pays a forward FFT
// of the template every time and re-transforms the template-length overlap
// — a correlator amortizes to roughly two FFTs per Step() lags, an
// order-of-magnitude saving when the template is long (Ekho's 1 s marker).
type MarkerCorrelator struct {
	n    int          // FFT size
	m    int          // template length
	wfft []complex128 // conj(FFT(template)), cached
	buf  []complex128 // reusable transform buffer
}

// NewMarkerCorrelator prepares a correlator for the template. fftSize must
// be a power of two greater than the template length; larger sizes yield
// more lags per step (Step() = fftSize − len(template) + 1).
func NewMarkerCorrelator(template []float64, fftSize int) *MarkerCorrelator {
	if fftSize < NextPow2(len(template)+1) {
		fftSize = NextPow2(2 * len(template))
	}
	w := make([]complex128, fftSize)
	for i, v := range template {
		w[i] = complex(v, 0)
	}
	fftPow2(w, false)
	for i := range w {
		w[i] = cmplx.Conj(w[i])
	}
	return &MarkerCorrelator{
		n:    fftSize,
		m:    len(template),
		wfft: w,
		buf:  make([]complex128, fftSize),
	}
}

// Step returns the number of correlation lags produced per Correlate call.
func (c *MarkerCorrelator) Step() int { return c.n - c.m + 1 }

// SegmentLen returns the required input length per Correlate call: the
// segment covering lags [t0, t0+Step) must span [t0, t0+Step+m-1), i.e.
// the FFT size exactly.
func (c *MarkerCorrelator) SegmentLen() int { return c.n }

// Correlate computes Z[t] = Σ seg[t+i]·w[i] for t = 0..Step()-1. seg must
// be exactly SegmentLen() samples (the trailing m-1 samples overlap the
// next call's head). The returned slice is freshly allocated.
func (c *MarkerCorrelator) Correlate(seg []float64) []float64 {
	CheckLen("overlap-save segment", len(seg), c.n)
	for i, v := range seg {
		c.buf[i] = complex(v, 0)
	}
	fftPow2(c.buf, false)
	for i := range c.buf {
		c.buf[i] *= c.wfft[i]
	}
	fftPow2(c.buf, true)
	out := make([]float64, c.Step())
	scale := 1 / float64(c.n)
	for t := range out {
		out[t] = real(c.buf[t]) * scale
	}
	return out
}
