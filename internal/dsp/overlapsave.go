package dsp

// MarkerCorrelator performs streaming cross-correlation against a fixed
// template using the overlap-save method with a cached template FFT.
// Compared to calling CrossCorrelate per chunk — which pays a forward FFT
// of the template every time and re-transforms the template-length overlap
// — a correlator amortizes to roughly two FFTs per Step() lags, an
// order-of-magnitude saving when the template is long (Ekho's 1 s marker).
//
// Both the segment and the template are real, so the transforms run on the
// shared RealPlan (half-size complex FFT + O(n) packing): the per-step
// butterfly work is half that of the complex formulation, and the plan
// tables are shared across every correlator of the same size. With the
// Shared constructor the template spectrum is shared too, leaving each hub
// session only its scratch buffers.
type MarkerCorrelator struct {
	n    int          // FFT size
	m    int          // template length
	rp   *RealPlan    // shared transform plan
	wfft []complex128 // conj(FFT(template)) half spectrum (possibly shared)
	spec []complex128 // reusable half-spectrum scratch
	td   []float64    // reusable time-domain scratch
}

// NewMarkerCorrelator prepares a correlator for the template. fftSize must
// be a power of two greater than the template length; larger sizes yield
// more lags per step (Step() = fftSize − len(template) + 1).
func NewMarkerCorrelator(template []float64, fftSize int) *MarkerCorrelator {
	c, n := markerCorrelatorShell(template, fftSize)
	c.wfft = conjSpectrumReal(template, n)
	return c
}

// NewMarkerCorrelatorShared is NewMarkerCorrelator with the conjugate
// template spectrum served from the package-level template-spectrum cache:
// every correlator built for the same (tag, FFT size) shares one immutable
// spectrum instead of each storing its own — at Ekho's 1 s marker and
// 131072-point FFT that is ~1 MB per hub session reclaimed. The tag must
// identify the template (Ekho uses the PN sequence seed); a content
// checksum detects tag collisions and falls back to a private spectrum.
func NewMarkerCorrelatorShared(template []float64, fftSize int, tag uint64) *MarkerCorrelator {
	c, n := markerCorrelatorShell(template, fftSize)
	c.wfft = sharedSpectrumKind(tag, 0, n, ChecksumFloats(template), func() []complex128 {
		return conjSpectrumReal(template, n)
	})
	return c
}

func markerCorrelatorShell(template []float64, fftSize int) (*MarkerCorrelator, int) {
	if fftSize < NextPow2(len(template)+1) {
		fftSize = NextPow2(2 * len(template))
	}
	if fftSize < 2 {
		fftSize = 2
	}
	rp := RealPlanFor(fftSize)
	return &MarkerCorrelator{
		n:    fftSize,
		m:    len(template),
		rp:   rp,
		spec: make([]complex128, rp.HalfLen()),
		td:   make([]float64, fftSize),
	}, fftSize
}

func conjSpectrumReal(template []float64, fftSize int) []complex128 {
	rp := RealPlanFor(fftSize)
	td := make([]float64, fftSize)
	copy(td, template)
	w := make([]complex128, rp.HalfLen())
	rp.Forward(w, td)
	for i, v := range w {
		w[i] = complex(real(v), -imag(v))
	}
	return w
}

// Step returns the number of correlation lags produced per Correlate call.
func (c *MarkerCorrelator) Step() int { return c.n - c.m + 1 }

// SegmentLen returns the required input length per Correlate call: the
// segment covering lags [t0, t0+Step) must span [t0, t0+Step+m-1), i.e.
// the FFT size exactly.
func (c *MarkerCorrelator) SegmentLen() int { return c.n }

// CorrelateInto computes Z[t] = Σ seg[t+i]·w[i] for t = 0..Step()-1 into
// dst, which is grown (reusing capacity) to Step() and returned. seg must
// be exactly SegmentLen() samples (the trailing m-1 samples overlap the
// next call's head). With a reused dst the steady state allocates nothing.
func (c *MarkerCorrelator) CorrelateInto(dst, seg []float64) []float64 {
	CheckLen("overlap-save segment", len(seg), c.n)
	c.rp.Forward(c.spec, seg)
	for i := range c.spec {
		c.spec[i] *= c.wfft[i]
	}
	c.rp.Inverse(c.td, c.spec)
	dst = growFloats(dst, c.Step())
	copy(dst, c.td[:len(dst)])
	return dst
}

// Correlate is CorrelateInto with a freshly allocated result. The
// steady-state streaming path (IncrementalDetector) uses CorrelateInto
// with a reused buffer instead.
func (c *MarkerCorrelator) Correlate(seg []float64) []float64 {
	return c.CorrelateInto(make([]float64, c.Step()), seg)
}
