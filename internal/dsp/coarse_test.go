package dsp

import (
	"math"
	"math/cmplx"
	"math/rand"
	"sync"
	"testing"
)

// Tests for the band-decimation front-end primitives: the quadrature
// oscillator, the polyphase decimator and the complex overlap-save
// correlator with its shared template-spectrum cache.

func TestQuadOscExactPeriod(t *testing.T) {
	o := NewQuadOsc(9000, 48000)
	if o.Period() != 16 {
		t.Fatalf("period %d want 16 (9000/48000 = 3/16)", o.Period())
	}
	// Every table entry must be the exact unit-circle point, and Factor
	// must wrap with zero phase drift at arbitrary distances.
	for k := 0; k < 64; k++ {
		want := cmplx.Exp(complex(0, -2*math.Pi*9000*float64(k%16)/48000))
		if d := cmplx.Abs(o.Factor(k) - want); d > 1e-14 {
			t.Fatalf("Factor(%d) off by %g", k, d)
		}
	}
	far := 16 * 1_000_000_007 / 16 * 16 // huge multiple of the period
	if d := cmplx.Abs(o.Factor(far+5) - o.Factor(5)); d != 0 {
		t.Fatalf("phase drift %g at distance %d", d, far)
	}
}

func TestQuadOscMixDownChunkInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	x := make([]float64, 4096)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	whole := NewQuadOsc(9000, 48000).MixDown(nil, x)
	o := NewQuadOsc(9000, 48000)
	var chunked []complex128
	for pos := 0; pos < len(x); {
		n := 1 + rng.Intn(300)
		if pos+n > len(x) {
			n = len(x) - pos
		}
		chunked = o.MixDown(chunked, x[pos:pos+n])
		pos += n
	}
	for i := range whole {
		if d := cmplx.Abs(whole[i] - chunked[i]); d > 0 {
			t.Fatalf("sample %d differs by %g across chunkings", i, d)
		}
	}
}

// decimateDirect is the textbook reference: causal FIR at every D-th
// input position.
func decimateDirect(x []complex128, taps []float64, d int) []complex128 {
	var out []complex128
	for k := 0; k < len(x); k += d {
		var s complex128
		for j, h := range taps {
			if i := k - j; i >= 0 {
				s += x[i] * complex(h, 0)
			}
		}
		out = append(out, s)
	}
	return out
}

func TestDecimatorMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	x := make([]complex128, 2000)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	taps := LowPass(2500, 24000, 23).Taps
	for _, d := range []int{1, 2, 3, 4, 8} {
		got := NewDecimator(d, taps).Process(nil, x)
		want := decimateDirect(x, taps, d)
		if len(got) != len(want) {
			t.Fatalf("D=%d: %d outputs want %d", d, len(got), len(want))
		}
		for i := range want {
			if e := cmplx.Abs(got[i] - want[i]); e > 1e-12 {
				t.Fatalf("D=%d output %d: off by %g", d, i, e)
			}
		}
	}
}

func TestDecimatorChunkInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	x := make([]complex128, 6000)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	taps := LowPass(2400, 24000, 31).Taps
	whole := NewDecimator(4, taps).Process(nil, x)
	st := NewDecimator(4, taps)
	var chunked []complex128
	for pos := 0; pos < len(x); {
		n := 1 + rng.Intn(500)
		if pos+n > len(x) {
			n = len(x) - pos
		}
		chunked = st.Process(chunked, x[pos:pos+n])
		pos += n
	}
	if len(whole) != len(chunked) {
		t.Fatalf("chunked run emitted %d outputs want %d", len(chunked), len(whole))
	}
	for i := range whole {
		if whole[i] != chunked[i] {
			t.Fatalf("output %d differs across chunkings", i)
		}
	}
}

func TestDecimatorSteadyStateAllocs(t *testing.T) {
	taps := LowPass(2400, 24000, 31).Taps
	st := NewDecimator(4, taps)
	x := make([]complex128, 960)
	dst := make([]complex128, 0, 4096)
	// Warm the history window to steady state.
	for i := 0; i < 4; i++ {
		dst = st.Process(dst[:0], x)
	}
	allocs := testing.AllocsPerRun(50, func() {
		dst = st.Process(dst[:0], x)
	})
	if allocs > 0 {
		t.Fatalf("steady-state Process allocates %v times per frame", allocs)
	}
}

func TestComplexCorrelatorMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	w := make([]complex128, 300)
	for i := range w {
		w[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	c := NewComplexCorrelator(w, 1024)
	if c.Step() != 1024-300+1 {
		t.Fatalf("step %d want %d", c.Step(), 1024-300+1)
	}
	seg := make([]complex128, c.SegmentLen())
	for i := range seg {
		seg[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	got := c.CorrelateInto(nil, seg)
	want := CrossCorrelateComplex(seg, w)
	if len(got) != len(want) {
		t.Fatalf("%d lags want %d", len(got), len(want))
	}
	for i := range want {
		if e := cmplx.Abs(got[i] - want[i]); e > 1e-9 {
			t.Fatalf("lag %d: fft %v direct %v", i, got[i], want[i])
		}
	}
}

func TestComplexCorrelatorSteadyStateAllocs(t *testing.T) {
	w := make([]complex128, 300)
	for i := range w {
		w[i] = complex(1, -1)
	}
	c := NewComplexCorrelator(w, 1024)
	seg := make([]complex128, c.SegmentLen())
	dst := make([]complex128, 0, c.Step())
	allocs := testing.AllocsPerRun(50, func() {
		dst = c.CorrelateInto(dst[:0], seg)
	})
	if allocs > 0 {
		t.Fatalf("CorrelateInto allocates %v times per block", allocs)
	}
}

func TestSharedSpectrumIdentity(t *testing.T) {
	w := make([]complex128, 64)
	for i := range w {
		w[i] = complex(float64(i), -float64(i))
	}
	const tag = 0xc0a12e<<32 | 101
	a := NewComplexCorrelatorShared(w, 256, tag)
	b := NewComplexCorrelatorShared(w, 256, tag)
	if &a.wfft[0] != &b.wfft[0] {
		t.Fatal("same template and tag should share one cached spectrum")
	}
	// A different template under the same tag (seed collision) must not
	// be served the cached spectrum.
	w2 := make([]complex128, 64)
	copy(w2, w)
	w2[3] += 1
	c := NewComplexCorrelatorShared(w2, 256, tag)
	if &c.wfft[0] == &a.wfft[0] {
		t.Fatal("checksum mismatch must fall back to a private spectrum")
	}
	seg := make([]complex128, c.SegmentLen())
	seg[0] = 1
	got := c.CorrelateInto(nil, seg)
	want := CrossCorrelateComplex(seg, w2)
	for i := range want {
		if e := cmplx.Abs(got[i] - want[i]); e > 1e-9 {
			t.Fatalf("collision fallback correlates wrong template (lag %d)", i)
		}
	}
}

func TestSharedSpectrumConcurrent(t *testing.T) {
	w := make([]complex128, 128)
	for i := range w {
		w[i] = complex(math.Sin(float64(i)), math.Cos(float64(i)))
	}
	const tag = 0xface<<32 | 7
	var wg sync.WaitGroup
	cs := make([]*ComplexCorrelator, 16)
	for i := range cs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cs[i] = NewComplexCorrelatorShared(w, 512, tag)
		}(i)
	}
	wg.Wait()
	seg := make([]complex128, cs[0].SegmentLen())
	seg[1] = complex(0, 1)
	want := CrossCorrelateComplex(seg, w)
	for i, c := range cs {
		got := c.CorrelateInto(nil, seg)
		for k := range want {
			if e := cmplx.Abs(got[k] - want[k]); e > 1e-9 {
				t.Fatalf("correlator %d lag %d off by %g", i, k, e)
			}
		}
	}
}

func BenchmarkComplexCorrelator(b *testing.B) {
	w := make([]complex128, 6000)
	for i := range w {
		w[i] = complex(float64(i%7)-3, float64(i%5)-2)
	}
	c := NewComplexCorrelator(w, 16384)
	seg := make([]complex128, c.SegmentLen())
	for i := range seg {
		seg[i] = complex(float64(i%11), float64(i%13))
	}
	dst := make([]complex128, 0, c.Step())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = c.CorrelateInto(dst[:0], seg)
	}
}
