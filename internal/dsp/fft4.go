package dsp

import (
	"fmt"
	"math"
	"sync"
)

// Plan4 is a radix-4 variant of Plan for the same power-of-two sizes. A
// radix-2 transform makes log2(n) full passes over the data; at the coarse
// correlator's block sizes the working set falls out of L1 and those passes
// are memory-bound, so halving the pass count by combining four sub-DFTs
// per butterfly buys ~30% over Plan even though the flop count barely
// moves. When log2(n) is odd the transform runs one radix-2 stage last,
// over the full block, where it costs a single extra pass.
//
// Beyond the in-place Forward/Inverse pair, Plan4 offers out-of-place
// entry points that fuse the input traversal into the first butterfly
// stage: ForwardFrom gathers directly from a read-only source (absorbing
// both the caller's staging copy and the permutation pass), and
// InverseFromProduct additionally folds an elementwise spectrum product
// into the gather — together they cut an overlap-save convolution from
// five full-size passes per transform pair down to three.
//
// Plan4 exists for the band-decimated detector's complex correlator, which
// has no real-input structure to exploit; the real-signal paths keep
// RealPlan, whose N/2 packing is the bigger win there. Like Plan, a Plan4
// is immutable after construction, cached per size, and safe for
// concurrent use.
type Plan4 struct {
	n    int
	perm []int32 // digit-reversal permutation: stage input i is x[perm[i]]
	// The same permutation stored as sequential transpositions for the
	// in-place entry points. The mixed-radix reversal (base-4 digits, one
	// base-2 digit when log2(n) is odd) is not an involution, so unlike
	// Plan's bit-reversal the pairs here must be applied in order:
	// swapping (i0,i1),(i1,i2),… along each cycle realizes x[i] ← x[perm[i]].
	pairs []int32
	w     []complex128 // w[k] = exp(-2πik/n), full table for 3k indexing
	wi    []complex128 // conj(w), the inverse-transform table
}

var plan4Cache sync.Map // int -> *Plan4

// Plan4For returns the shared radix-4 plan for a power-of-two size n. All
// callers of the same size receive the same immutable plan.
func Plan4For(n int) *Plan4 {
	if p, ok := plan4Cache.Load(n); ok {
		return p.(*Plan4)
	}
	if !isPow2(n) {
		panic(fmt.Sprintf("dsp: Plan4For size %d is not a power of two", n))
	}
	p, _ := plan4Cache.LoadOrStore(n, newPlan4(n))
	return p.(*Plan4)
}

func newPlan4(n int) *Plan4 {
	p := &Plan4{n: n}
	if n < 2 {
		return p
	}
	p.w = make([]complex128, n)
	p.wi = make([]complex128, n)
	for k := range p.w {
		s, c := math.Sincos(-2 * math.Pi * float64(k) / float64(n))
		p.w[k] = complex(c, s)
		p.wi[k] = complex(c, -s)
	}
	// Digit-reversal for the stage order transform uses: radix-4 stages
	// from size 1 up, then one radix-2 stage when log2(n) is odd. Peeling
	// base-4 digits first matches that order.
	p.perm = make([]int32, n)
	for i := 0; i < n; i++ {
		j, rem, m := 0, i, n
		for m > 1 {
			if m%4 == 0 {
				j = j*4 + rem&3
				rem >>= 2
				m >>= 2
			} else {
				j = j*2 + rem&1
				rem >>= 1
				m >>= 1
			}
		}
		p.perm[i] = int32(j)
	}
	seen := make([]bool, n)
	for i := range p.perm {
		if seen[i] || int(p.perm[i]) == i {
			continue
		}
		at := int32(i)
		for {
			seen[at] = true
			nxt := p.perm[at]
			if seen[nxt] {
				break
			}
			p.pairs = append(p.pairs, at, nxt)
			at = nxt
		}
	}
	return p
}

// Size returns the transform length the plan was built for.
func (p *Plan4) Size() int { return p.n }

// Forward computes the in-place unscaled DFT of x. len(x) must equal the
// plan size.
func (p *Plan4) Forward(x []complex128) { p.transform(x, false) }

// Inverse computes the in-place unscaled conjugate (inverse) DFT of x;
// divide by Size() for the true inverse.
func (p *Plan4) Inverse(x []complex128) { p.transform(x, true) }

func (p *Plan4) transform(x []complex128, inverse bool) {
	CheckLen("plan4 transform input", len(x), p.n)
	n := p.n
	if n < 4 {
		if n == 2 {
			a, b := x[0], x[1]
			x[0], x[1] = a+b, a-b
		}
		return
	}
	for i := 0; i < len(p.pairs); i += 2 {
		a, b := p.pairs[i], p.pairs[i+1]
		x[a], x[b] = x[b], x[a]
	}
	// First radix-4 stage on adjacent quads: unit twiddles only.
	if inverse {
		for s := 0; s < n; s += 4 {
			a, b, c, d := x[s], x[s+1], x[s+2], x[s+3]
			t0, t1 := a+c, a-c
			t2, t3 := b+d, b-d
			jt3 := complex(imag(t3), -real(t3))
			x[s], x[s+1], x[s+2], x[s+3] = t0+t2, t1-jt3, t0-t2, t1+jt3
		}
	} else {
		for s := 0; s < n; s += 4 {
			a, b, c, d := x[s], x[s+1], x[s+2], x[s+3]
			t0, t1 := a+c, a-c
			t2, t3 := b+d, b-d
			jt3 := complex(-imag(t3), real(t3))
			x[s], x[s+1], x[s+2], x[s+3] = t0+t2, t1-jt3, t0-t2, t1+jt3
		}
	}
	p.tail(x, inverse)
}

// ForwardFrom computes the unscaled DFT of src into dst, leaving src
// untouched: the digit-reversal gather and the first butterfly stage run
// fused as a single pass over the input. dst and src must not alias.
func (p *Plan4) ForwardFrom(dst, src []complex128) {
	CheckLen("plan4 transform input", len(src), p.n)
	CheckLen("plan4 transform output", len(dst), p.n)
	n := p.n
	if n < 4 {
		copy(dst, src)
		if n == 2 {
			a, b := dst[0], dst[1]
			dst[0], dst[1] = a+b, a-b
		}
		return
	}
	pm := p.perm
	for s := 0; s < n; s += 4 {
		a := src[pm[s]]
		b := src[pm[s+1]]
		c := src[pm[s+2]]
		d := src[pm[s+3]]
		t0, t1 := a+c, a-c
		t2, t3 := b+d, b-d
		jt3 := complex(-imag(t3), real(t3))
		dst[s], dst[s+1], dst[s+2], dst[s+3] = t0+t2, t1-jt3, t0-t2, t1+jt3
	}
	p.tail(dst, false)
}

// InverseFromProduct computes the unscaled inverse DFT of the elementwise
// product u·v into dst, leaving u and v untouched: the product, the
// digit-reversal gather and the first butterfly stage run as one pass.
// Divide by Size() for the true inverse. dst must alias neither input.
func (p *Plan4) InverseFromProduct(dst, u, v []complex128) {
	CheckLen("plan4 product input", len(u), p.n)
	CheckLen("plan4 product input", len(v), p.n)
	CheckLen("plan4 transform output", len(dst), p.n)
	n := p.n
	if n < 4 {
		for i := range dst {
			dst[i] = u[i] * v[i]
		}
		if n == 2 {
			a, b := dst[0], dst[1]
			dst[0], dst[1] = a+b, a-b
		}
		return
	}
	pm := p.perm
	for s := 0; s < n; s += 4 {
		i0, i1, i2, i3 := pm[s], pm[s+1], pm[s+2], pm[s+3]
		a := u[i0] * v[i0]
		b := u[i1] * v[i1]
		c := u[i2] * v[i2]
		d := u[i3] * v[i3]
		t0, t1 := a+c, a-c
		t2, t3 := b+d, b-d
		jt3 := complex(imag(t3), -real(t3))
		dst[s], dst[s+1], dst[s+2], dst[s+3] = t0+t2, t1-jt3, t0-t2, t1+jt3
	}
	p.tail(dst, true)
}

// plan4Leaf is the largest sub-block (complex128 elements) the recursion
// hands to the iterative stage loop: 1024 elements is 16 KiB, small enough
// that a leaf's stages all run against L1 instead of streaming the full
// transform through the cache once per stage.
const plan4Leaf = 1024

// tail runs the butterfly stages above the fused/in-place first stage:
// radix-4 from size 4 up, then one radix-2 stage over the full block when
// log2(n) is odd. The radix-4 part recurses four-step style — blocks are
// contiguous and twiddles depend only on block length, so each quarter is
// finished in cache before the combining stage touches it — bottoming out
// in the iterative loop at plan4Leaf.
func (p *Plan4) tail(x []complex128, inverse bool) {
	n := p.n
	n4 := n
	if logOdd(n) {
		n4 = n / 2
		p.fourStep(x[:n4], inverse)
		p.fourStep(x[n4:], inverse)
	} else {
		p.fourStep(x, inverse)
	}
	if n4 < n {
		// Odd log2(n): one radix-2 stage over the full block closes out.
		wt := p.w
		if inverse {
			wt = p.wi
		}
		half := n / 2
		a, b := x[0], x[half]
		x[0], x[half] = a+b, a-b
		for k := 1; k < half; k++ {
			b := x[k+half] * wt[k]
			a := x[k]
			x[k], x[k+half] = a+b, a-b
		}
	}
}

// logOdd reports whether log2(n) is odd for a power-of-two n ≥ 1.
func logOdd(n int) bool {
	odd := false
	for n > 1 {
		odd = !odd
		n >>= 1
	}
	return odd
}

// fourStep finishes the radix-4 sub-transform of a contiguous block whose
// first (adjacent-quad) stage has already run. len(x) must be a power of
// four times the first stage's 4.
func (p *Plan4) fourStep(x []complex128, inverse bool) {
	L := len(x)
	if L <= plan4Leaf {
		p.stagesFrom(x, inverse, 4)
		return
	}
	q := L / 4
	p.fourStep(x[:q], inverse)
	p.fourStep(x[q:2*q], inverse)
	p.fourStep(x[2*q:3*q], inverse)
	p.fourStep(x[3*q:], inverse)
	p.stagesFrom(x, inverse, q)
}

// stagesFrom runs the radix-4 stages from size minSize up over the block x
// (twiddle strides come from the plan size, so x may be any aligned
// sub-block). The loops are duplicated per direction (as in Plan): the
// inverse conjugates the twiddles (the wi table) and flips the ±j
// rotation, and folding either into the forward loop costs measurably in
// the hot path.
func (p *Plan4) stagesFrom(x []complex128, inverse bool, minSize int) {
	n := len(x)
	wt := p.w
	if inverse {
		wt = p.wi
	}
	size := minSize
	for ; size<<2 <= n; size <<= 2 {
		quarter := size
		stride := p.n / (size << 2)
		for start := 0; start < n; start += size << 2 {
			// First butterfly of the block: unit twiddles only.
			a := x[start]
			b := x[start+quarter]
			c := x[start+2*quarter]
			d := x[start+3*quarter]
			t0, t1 := a+c, a-c
			t2, t3 := b+d, b-d
			jt3 := complex(-imag(t3), real(t3))
			if inverse {
				jt3 = -jt3
			}
			x[start] = t0 + t2
			x[start+quarter] = t1 - jt3
			x[start+2*quarter] = t0 - t2
			x[start+3*quarter] = t1 + jt3
			w1i, w2i, w3i := stride, 2*stride, 3*stride
			if inverse {
				for k := start + 1; k < start+quarter; k++ {
					w1, w2, w3 := wt[w1i], wt[w2i], wt[w3i]
					a := x[k]
					b := x[k+quarter] * w1
					c := x[k+2*quarter] * w2
					d := x[k+3*quarter] * w3
					t0, t1 := a+c, a-c
					t2, t3 := b+d, b-d
					jt3 := complex(imag(t3), -real(t3))
					x[k] = t0 + t2
					x[k+quarter] = t1 - jt3
					x[k+2*quarter] = t0 - t2
					x[k+3*quarter] = t1 + jt3
					w1i += stride
					w2i += 2 * stride
					w3i += 3 * stride
				}
			} else {
				for k := start + 1; k < start+quarter; k++ {
					w1, w2, w3 := wt[w1i], wt[w2i], wt[w3i]
					a := x[k]
					b := x[k+quarter] * w1
					c := x[k+2*quarter] * w2
					d := x[k+3*quarter] * w3
					t0, t1 := a+c, a-c
					t2, t3 := b+d, b-d
					jt3 := complex(-imag(t3), real(t3))
					x[k] = t0 + t2
					x[k+quarter] = t1 - jt3
					x[k+2*quarter] = t0 - t2
					x[k+3*quarter] = t1 + jt3
					w1i += stride
					w2i += 2 * stride
					w3i += 3 * stride
				}
			}
		}
	}
}
