package dsp

import "math"

// CrossCorrelate computes the sliding-window cross-correlation used by the
// Ekho estimator (paper Eq. 3):
//
//	Z[t] = sum_{i=0}^{len(w)-1} x[t+i] * w[i],  t = 0 .. len(x)-len(w)
//
// i.e. the correlation of x against the template w at every lag where the
// template fully overlaps the signal. For long inputs the computation runs
// in the frequency domain (O(n log n)); short inputs use the direct form.
func CrossCorrelate(x, w []float64) []float64 {
	n, m := len(x), len(w)
	if n == 0 || m == 0 || m > n {
		return nil
	}
	outLen := n - m + 1
	if n*m <= 1<<16 {
		out := make([]float64, outLen)
		for t := 0; t < outLen; t++ {
			var s float64
			for i := 0; i < m; i++ {
				s += x[t+i] * w[i]
			}
			out[t] = s
		}
		return out
	}
	// Correlation == convolution with the reversed template.
	rev := make([]float64, m)
	for i := range w {
		rev[m-1-i] = w[i]
	}
	full := fftConvolve(x, rev, n+m-1)
	out := make([]float64, outLen)
	copy(out, full[m-1:])
	return out
}

// NormalizedPeakLag returns the lag of the maximum absolute normalized
// cross-correlation of x against template w, along with that peak value.
// Normalization divides each lag's correlation by the L2 norms of the
// overlapping windows, so the result lies in [-1, 1]. Used by tests and the
// ground-truth chirp alignment.
func NormalizedPeakLag(x, w []float64) (lag int, peak float64) {
	z := CrossCorrelate(x, w)
	if len(z) == 0 {
		return 0, 0
	}
	var wNorm float64
	for _, v := range w {
		wNorm += v * v
	}
	wNorm = math.Sqrt(wNorm)
	// Prefix sums of x^2 for O(1) window norms.
	prefix := make([]float64, len(x)+1)
	for i, v := range x {
		prefix[i+1] = prefix[i] + v*v
	}
	best := math.Inf(-1)
	bestLag := 0
	m := len(w)
	for t, v := range z {
		xNorm := math.Sqrt(prefix[t+m] - prefix[t])
		if xNorm == 0 || wNorm == 0 {
			continue
		}
		nv := math.Abs(v) / (xNorm * wNorm)
		if nv > best {
			best = nv
			bestLag = t
		}
	}
	return bestLag, best
}

// ArgMaxAbs returns the index of the element with the largest absolute
// value, or -1 for an empty slice.
func ArgMaxAbs(x []float64) int {
	if len(x) == 0 {
		return -1
	}
	best, idx := math.Abs(x[0]), 0
	for i := 1; i < len(x); i++ {
		if a := math.Abs(x[i]); a > best {
			best, idx = a, i
		}
	}
	return idx
}
