package dsp

import (
	"fmt"
	"math"
	"math/bits"
	"sync"
)

// This file is the plan-based transform engine. A Plan holds everything a
// power-of-two FFT needs that depends only on the size — the bit-reversal
// permutation and the twiddle-factor table — so the per-call work is pure
// butterflies over precomputed tables. Plans are immutable after
// construction and cached at package level (PlanFor / RealPlanFor): every
// hub session correlating against the same marker length, and every codec
// instance of the same profile, shares one set of tables instead of paying
// setup cost per call or per session.
//
// RealPlan adds the standard N/2 complex-packing trick for real-valued
// input: the N-point real transform runs as one N/2-point complex
// transform plus an O(N) unpacking pass, halving the butterfly work for
// the correlator and the MDCT codec whose signals are always real.

// Plan is a precomputed power-of-two FFT: bit-reversal swap pairs plus the
// twiddle table w[k] = exp(-2πik/n). Plans are stateless (no scratch), so
// one cached instance is safe for concurrent use from many goroutines.
type Plan struct {
	n     int
	pairs []int32      // bit-reversal swaps, flattened (i, j) pairs with i < j
	w     []complex128 // w[k] = exp(-2πik/n) for k < n/2
}

var planCache sync.Map // int -> *Plan

// PlanFor returns the shared plan for a power-of-two size n. All callers
// of the same size receive the same immutable plan.
func PlanFor(n int) *Plan {
	if p, ok := planCache.Load(n); ok {
		return p.(*Plan)
	}
	if !isPow2(n) {
		panic(fmt.Sprintf("dsp: PlanFor size %d is not a power of two", n))
	}
	p, _ := planCache.LoadOrStore(n, newPlan(n))
	return p.(*Plan)
}

func newPlan(n int) *Plan {
	p := &Plan{n: n}
	if n < 2 {
		return p
	}
	shift := 64 - uint(bits.Len(uint(n-1)))
	for i := 0; i < n; i++ {
		if j := int(bits.Reverse64(uint64(i)) >> shift); j > i {
			p.pairs = append(p.pairs, int32(i), int32(j))
		}
	}
	p.w = make([]complex128, n/2)
	for k := range p.w {
		s, c := math.Sincos(-2 * math.Pi * float64(k) / float64(n))
		p.w[k] = complex(c, s)
	}
	return p
}

// Size returns the transform length the plan was built for.
func (p *Plan) Size() int { return p.n }

// Forward computes the in-place unscaled DFT of x. len(x) must equal the
// plan size.
func (p *Plan) Forward(x []complex128) { p.transform(x, false) }

// Inverse computes the in-place unscaled conjugate (inverse) DFT of x;
// divide by Size() for the true inverse.
func (p *Plan) Inverse(x []complex128) { p.transform(x, true) }

func (p *Plan) transform(x []complex128, inverse bool) {
	CheckLen("plan transform input", len(x), p.n)
	n := p.n
	if n < 2 {
		return
	}
	for i := 0; i < len(p.pairs); i += 2 {
		a, b := p.pairs[i], p.pairs[i+1]
		x[a], x[b] = x[b], x[a]
	}
	// First stage (size 2): unit twiddles only.
	for i := 0; i < n; i += 2 {
		a, b := x[i], x[i+1]
		x[i], x[i+1] = a+b, a-b
	}
	// Remaining stages share the n/2-entry twiddle table with stride
	// n/size: w_size^k = w_n^(k·n/size).
	for size := 4; size <= n; size <<= 1 {
		half := size >> 1
		stride := n / size
		for start := 0; start < n; start += size {
			a, b := x[start], x[start+half]
			x[start], x[start+half] = a+b, a-b
			ti := stride
			if inverse {
				for k := start + 1; k < start+half; k++ {
					w := p.w[ti]
					b := x[k+half] * complex(real(w), -imag(w))
					a := x[k]
					x[k], x[k+half] = a+b, a-b
					ti += stride
				}
			} else {
				for k := start + 1; k < start+half; k++ {
					b := x[k+half] * p.w[ti]
					a := x[k]
					x[k], x[k+half] = a+b, a-b
					ti += stride
				}
			}
		}
	}
}

// RealPlan transforms real-valued signals of power-of-two length n (≥ 2)
// using one n/2-point complex transform plus O(n) packing, roughly halving
// the work of a full complex FFT. Like Plan it is stateless, cached and
// safe for concurrent use.
type RealPlan struct {
	n    int
	half *Plan        // complex plan of size n/2
	rt   []complex128 // rt[k] = exp(-2πik/n) for k ≤ n/4
}

var realPlanCache sync.Map // int -> *RealPlan

// RealPlanFor returns the shared real-input plan for a power-of-two size
// n ≥ 2.
func RealPlanFor(n int) *RealPlan {
	if p, ok := realPlanCache.Load(n); ok {
		return p.(*RealPlan)
	}
	if !isPow2(n) || n < 2 {
		panic(fmt.Sprintf("dsp: RealPlanFor size %d is not a power of two ≥ 2", n))
	}
	m := n / 2
	p := &RealPlan{n: n, half: PlanFor(m)}
	p.rt = make([]complex128, m/2+1)
	for k := range p.rt {
		s, c := math.Sincos(-2 * math.Pi * float64(k) / float64(n))
		p.rt[k] = complex(c, s)
	}
	actual, _ := realPlanCache.LoadOrStore(n, p)
	return actual.(*RealPlan)
}

// Size returns the real input length n.
func (p *RealPlan) Size() int { return p.n }

// HalfLen returns the half-spectrum length n/2 + 1 (bins 0..n/2; the
// remaining bins of the full spectrum are the conjugate mirror).
func (p *RealPlan) HalfLen() int { return p.n/2 + 1 }

// Forward computes the half spectrum X[0..n/2] of the real signal src
// into dst. len(src) must be Size() and len(dst) HalfLen(). Bins 0 and
// n/2 are purely real.
func (p *RealPlan) Forward(dst []complex128, src []float64) {
	CheckLen("real plan input", len(src), p.n)
	CheckLen("real plan spectrum", len(dst), p.HalfLen())
	m := p.n / 2
	z := dst[:m]
	for j := 0; j < m; j++ {
		z[j] = complex(src[2*j], src[2*j+1])
	}
	p.half.Forward(z)
	z0 := z[0]
	dst[m] = complex(real(z0)-imag(z0), 0)
	dst[0] = complex(real(z0)+imag(z0), 0)
	for k := 1; k <= m/2; k++ {
		zk, zmk := z[k], z[m-k]
		cz := complex(real(zmk), -imag(zmk))
		fe := (zk + cz) * 0.5
		fo := (zk - cz) * complex(0, -0.5) // (zk - conj(zmk)) / 2i
		v := p.rt[k] * fo
		u := fe + v
		d := fe - v
		dst[k] = u
		dst[m-k] = complex(real(d), -imag(d))
	}
}

// Inverse recovers the real signal from its half spectrum, applying the
// full 1/n scaling so Inverse∘Forward is the identity. len(dst) must be
// Size() and len(spec) HalfLen(). spec is used as scratch and destroyed.
func (p *RealPlan) Inverse(dst []float64, spec []complex128) {
	CheckLen("real plan output", len(dst), p.n)
	CheckLen("real plan spectrum", len(spec), p.HalfLen())
	m := p.n / 2
	x0, xm := real(spec[0]), real(spec[m])
	spec[0] = complex((x0+xm)/2, (x0-xm)/2)
	for k := 1; k <= m/2; k++ {
		xk, xmk := spec[k], spec[m-k]
		cx := complex(real(xmk), -imag(xmk))
		fe := (xk + cx) * 0.5
		v := (xk - cx) * 0.5 // = rt[k]·Fo[k]
		w := p.rt[k]
		fo := complex(real(w), -imag(w)) * v
		spec[k] = fe + complex(0, 1)*fo
		spec[m-k] = complex(real(fe), -imag(fe)) + complex(0, 1)*complex(real(fo), -imag(fo))
	}
	z := spec[:m]
	p.half.Inverse(z)
	scale := 1 / float64(m)
	for j := 0; j < m; j++ {
		dst[2*j] = real(z[j]) * scale
		dst[2*j+1] = imag(z[j]) * scale
	}
}

// realScratch bundles the padded-input and spectrum buffers the pooled
// real-transform helpers (BandPower) reuse across calls.
type realScratch struct {
	f []float64
	c []complex128
}

var realScratchPool = sync.Pool{New: func() any { return new(realScratch) }}

// growFloats returns s resized to n, reusing capacity when possible.
func growFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

// growComplex returns s resized to n, reusing capacity when possible.
func growComplex(s []complex128, n int) []complex128 {
	if cap(s) < n {
		return make([]complex128, n)
	}
	return s[:n]
}
