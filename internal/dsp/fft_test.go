package dsp

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// naiveDFT is the O(n^2) reference used to validate the FFT kernels.
func naiveDFT(x []complex128, inverse bool) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for k := 0; k < n; k++ {
		var sum complex128
		for t := 0; t < n; t++ {
			phase := sign * 2 * math.Pi * float64(k) * float64(t) / float64(n)
			sum += x[t] * cmplx.Exp(complex(0, phase))
		}
		out[k] = sum
	}
	return out
}

func randComplex(n int, rng *rand.Rand) []complex128 {
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return x
}

func TestFFTMatchesNaiveDFTPow2(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 4, 8, 16, 64, 256} {
		x := randComplex(n, rng)
		want := naiveDFT(x, false)
		got := make([]complex128, n)
		copy(got, x)
		got = FFT(got)
		for i := range want {
			if cmplx.Abs(want[i]-got[i]) > 1e-8*float64(n) {
				t.Fatalf("n=%d bin %d: got %v want %v", n, i, got[i], want[i])
			}
		}
	}
}

func TestFFTMatchesNaiveDFTNonPow2(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{3, 5, 6, 7, 12, 17, 100, 960} {
		x := randComplex(n, rng)
		want := naiveDFT(x, false)
		got := FFT(append([]complex128(nil), x...))
		for i := range want {
			if cmplx.Abs(want[i]-got[i]) > 1e-6*float64(n) {
				t.Fatalf("n=%d bin %d: got %v want %v", n, i, got[i], want[i])
			}
		}
	}
}

func TestIFFTInvertsFFT(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{1, 2, 7, 8, 48, 64, 100, 1024} {
		x := randComplex(n, rng)
		y := FFT(append([]complex128(nil), x...))
		back := IFFT(append([]complex128(nil), y...))
		for i := range x {
			if cmplx.Abs(x[i]-back[i]) > 1e-8*float64(n) {
				t.Fatalf("n=%d sample %d: got %v want %v", n, i, back[i], x[i])
			}
		}
	}
}

func TestFFTRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	f := func(seed int64, sizeSel uint8) bool {
		n := 1 << (sizeSel%9 + 1) // 2..512
		r := rand.New(rand.NewSource(seed))
		x := randComplex(n, r)
		y := FFT(append([]complex128(nil), x...))
		back := IFFT(y)
		for i := range x {
			if cmplx.Abs(x[i]-back[i]) > 1e-7*float64(n) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 50, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestFFTLinearityProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 128
		a := randComplex(n, r)
		b := randComplex(n, r)
		alpha := complex(r.NormFloat64(), 0)
		sum := make([]complex128, n)
		for i := range sum {
			sum[i] = a[i] + alpha*b[i]
		}
		fa := FFT(append([]complex128(nil), a...))
		fb := FFT(append([]complex128(nil), b...))
		fsum := FFT(sum)
		for i := range fsum {
			want := fa[i] + alpha*fb[i]
			if cmplx.Abs(fsum[i]-want) > 1e-7*float64(n) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestParsevalProperty(t *testing.T) {
	// Energy in time domain equals energy in frequency domain / N.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 256
		x := randComplex(n, r)
		var et float64
		for _, v := range x {
			et += real(v)*real(v) + imag(v)*imag(v)
		}
		y := FFT(append([]complex128(nil), x...))
		var ef float64
		for _, v := range y {
			ef += real(v)*real(v) + imag(v)*imag(v)
		}
		return almostEqual(et, ef/float64(n), 1e-6*et+1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestNextPow2(t *testing.T) {
	cases := map[int]int{0: 1, 1: 1, 2: 2, 3: 4, 4: 4, 5: 8, 1000: 1024, 1024: 1024, 1025: 2048}
	for in, want := range cases {
		if got := NextPow2(in); got != want {
			t.Errorf("NextPow2(%d)=%d want %d", in, got, want)
		}
	}
}

func TestSpectrumSinusoid(t *testing.T) {
	const sr = 48000.0
	const freq = 3000.0
	n := 4096
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Sin(2 * math.Pi * freq * float64(i) / sr)
	}
	mags, freqs := Spectrum(x, sr)
	best := 0
	for i := 1; i < len(mags); i++ {
		if mags[i] > mags[best] {
			best = i
		}
	}
	if math.Abs(freqs[best]-freq) > sr/float64(n)*1.5 {
		t.Fatalf("peak at %.1f Hz, want ~%.1f Hz", freqs[best], freq)
	}
}

func TestBandPowerConcentration(t *testing.T) {
	const sr = 48000.0
	n := 9600
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Sin(2 * math.Pi * 9000 * float64(i) / sr)
	}
	in := BandPower(x, sr, 6000, 12000)
	out := BandPower(x, sr, 0, 5000)
	if in <= 0 {
		t.Fatal("in-band power should be positive")
	}
	if out > in/100 {
		t.Fatalf("out-of-band power %g too large vs in-band %g", out, in)
	}
	// A 9 kHz unit sinusoid has mean power 0.5; allow window leakage.
	if !almostEqual(in, 0.5, 0.1) {
		t.Fatalf("in-band power %g, want ~0.5", in)
	}
}

func TestBandPowerEmptyAndDegenerate(t *testing.T) {
	if BandPower(nil, 48000, 6000, 12000) != 0 {
		t.Error("empty signal should have zero band power")
	}
	x := make([]float64, 100)
	if BandPower(x, 48000, 12000, 6000) != 0 {
		t.Error("inverted band should have zero power")
	}
}

func BenchmarkFFT48k(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	x := randComplex(65536, rng)
	buf := make([]complex128, len(x))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(buf, x)
		FFT(buf)
	}
}
