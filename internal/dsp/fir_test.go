package dsp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func sine(freq, sr float64, n int) []float64 {
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Sin(2 * math.Pi * freq * float64(i) / sr)
	}
	return x
}

func TestLowPassAttenuatesStopBand(t *testing.T) {
	const sr = 48000.0
	f := LowPass(6000, sr, 255)
	pass := f.Apply(sine(1000, sr, 9600))
	stop := f.Apply(sine(15000, sr, 9600))
	pp := MeanPower(pass[1000 : len(pass)-1000])
	sp := MeanPower(stop[1000 : len(stop)-1000])
	if pp < 0.3 {
		t.Fatalf("passband power %g too low", pp)
	}
	if sp > pp/1000 {
		t.Fatalf("stopband power %g not attenuated (pass %g)", sp, pp)
	}
}

func TestHighPassAttenuatesLowBand(t *testing.T) {
	const sr = 48000.0
	f := HighPass(6000, sr, 255)
	low := f.Apply(sine(1000, sr, 9600))
	high := f.Apply(sine(10000, sr, 9600))
	lp := MeanPower(low[1000 : len(low)-1000])
	hp := MeanPower(high[1000 : len(high)-1000])
	if hp < 0.3 {
		t.Fatalf("passband power %g too low", hp)
	}
	if lp > hp/1000 {
		t.Fatalf("low band power %g not attenuated", lp)
	}
}

func TestBandPassSelectsMarkerBand(t *testing.T) {
	const sr = 48000.0
	f := BandPass(6000, 12000, sr, 511)
	in := f.Apply(sine(9000, sr, 9600))
	below := f.Apply(sine(3000, sr, 9600))
	above := f.Apply(sine(18000, sr, 9600))
	ip := MeanPower(in[1000 : len(in)-1000])
	bp := MeanPower(below[1000 : len(below)-1000])
	ap := MeanPower(above[1000 : len(above)-1000])
	if ip < 0.3 {
		t.Fatalf("in-band power %g too low", ip)
	}
	if bp > ip/500 || ap > ip/500 {
		t.Fatalf("out-of-band power not attenuated: below=%g above=%g in=%g", bp, ap, ip)
	}
}

func TestBandPassPanicsOnInvertedBand(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for lo >= hi")
		}
	}()
	BandPass(12000, 6000, 48000, 101)
}

func TestFIRLinearityProperty(t *testing.T) {
	fir := BandPass(6000, 12000, 48000, 101)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 512
		a := make([]float64, n)
		b := make([]float64, n)
		for i := range a {
			a[i] = r.NormFloat64()
			b[i] = r.NormFloat64()
		}
		alpha := r.NormFloat64()
		mix := make([]float64, n)
		for i := range mix {
			mix[i] = a[i] + alpha*b[i]
		}
		fa := fir.Apply(a)
		fb := fir.Apply(b)
		fm := fir.Apply(mix)
		for i := range fm {
			want := fa[i] + alpha*fb[i]
			if math.Abs(fm[i]-want) > 1e-9*(1+math.Abs(want)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestApplyFullMatchesDirectConvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	taps := make([]float64, 33)
	for i := range taps {
		taps[i] = rng.NormFloat64()
	}
	fir := NewFIR(taps)
	// Long enough to force the FFT path (n*m > 1<<16).
	x := make([]float64, 4096)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	got := fir.ApplyFull(x)
	want := make([]float64, len(x)+len(taps)-1)
	for i := range x {
		for j := range taps {
			want[i+j] += x[i] * taps[j]
		}
	}
	if len(got) != len(want) {
		t.Fatalf("length %d want %d", len(got), len(want))
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-8 {
			t.Fatalf("sample %d: got %g want %g", i, got[i], want[i])
		}
	}
}

func TestApplyPreservesAlignment(t *testing.T) {
	// An impulse through a linear-phase filter must stay at its position
	// after group-delay compensation.
	fir := LowPass(6000, 48000, 201)
	x := make([]float64, 1000)
	x[500] = 1
	y := fir.Apply(x)
	peak := ArgMaxAbs(y)
	if peak != 500 {
		t.Fatalf("impulse moved to %d, want 500", peak)
	}
}

func TestResponsePassStop(t *testing.T) {
	fir := BandPass(6000, 12000, 48000, 511)
	if r := fir.Response(9000, 48000); r < -1 {
		t.Fatalf("passband response %f dB, want ~0", r)
	}
	if r := fir.Response(1000, 48000); r > -40 {
		t.Fatalf("stopband response %f dB, want < -40", r)
	}
}

func TestOddify(t *testing.T) {
	if oddify(2) != 3 || oddify(3) != 3 || oddify(100) != 101 || oddify(0) != 3 {
		t.Fatal("oddify broken")
	}
}

func TestEmptyInputs(t *testing.T) {
	fir := LowPass(6000, 48000, 101)
	if out := fir.Apply(nil); len(out) != 0 {
		t.Fatal("Apply(nil) should be empty")
	}
	if out := fir.ApplyFull(nil); len(out) != 0 {
		t.Fatal("ApplyFull(nil) should be empty")
	}
}

func BenchmarkBandPassApply1s(b *testing.B) {
	fir := BandPass(6000, 12000, 48000, 511)
	rng := rand.New(rand.NewSource(5))
	x := make([]float64, 48000)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fir.Apply(x)
	}
}
