package perceptual

import (
	"math"
	"testing"

	"ekho/internal/audio"
	"ekho/internal/gamesynth"
)

func TestEchoAnnoyanceShape(t *testing.T) {
	cats := []gamesynth.Category{gamesynth.Speech_, gamesynth.Music_, gamesynth.SFX_}
	for _, cat := range cats {
		ref := EchoAnnoyance(cat, 0)
		if ref < 4.5 {
			t.Fatalf("%v reference score %g", cat, ref)
		}
		// 10 ms already perceptible and slightly distracting (~3).
		at10 := EchoAnnoyance(cat, 10)
		if at10 > 3.6 || at10 < 2.4 {
			t.Fatalf("%v at 10 ms: %g want ~3", cat, at10)
		}
		// Monotone non-increasing in delay.
		prev := ref
		for _, d := range []float64{10, 20, 40, 60, 80, 160, 300} {
			cur := EchoAnnoyance(cat, d)
			if cur > prev+1e-9 {
				t.Fatalf("%v not monotone at %g ms: %g > %g", cat, d, cur, prev)
			}
			prev = cur
		}
	}
	// Speech keeps degrading; music/SFX plateau: compare the drop between
	// 40 and 300 ms.
	speechDrop := EchoAnnoyance(gamesynth.Speech_, 40) - EchoAnnoyance(gamesynth.Speech_, 300)
	musicDrop := EchoAnnoyance(gamesynth.Music_, 40) - EchoAnnoyance(gamesynth.Music_, 300)
	sfxDrop := EchoAnnoyance(gamesynth.SFX_, 40) - EchoAnnoyance(gamesynth.SFX_, 300)
	if float64(speechDrop) < 2*float64(musicDrop) || float64(speechDrop) < 2*float64(sfxDrop) {
		t.Fatalf("speech should degrade much more beyond 40 ms: %g vs %g/%g",
			speechDrop, musicDrop, sfxDrop)
	}
	if EchoAnnoyance(gamesynth.Speech_, 300) < 1 {
		t.Fatal("score below scale")
	}
}

func TestMarkerAudibilityShape(t *testing.T) {
	// C <= 1.0: indistinguishable from reference (within 0.4 DCR).
	ref := MarkerAudibility(0)
	for _, c := range []float64{0.1, 0.25, 0.5, 1.0} {
		s := MarkerAudibility(c)
		if float64(ref)-float64(s) > 0.4 {
			t.Fatalf("C=%g score %g too far below reference %g", c, s, ref)
		}
	}
	// C = 2.5: slightly distracting (~3).
	s25 := MarkerAudibility(2.5)
	if s25 > 3.6 || s25 < 2.4 {
		t.Fatalf("C=2.5 score %g want ~3", s25)
	}
	// C = 5: worse than C = 2.5.
	if MarkerAudibility(5) >= s25 {
		t.Fatal("C=5 should score below C=2.5")
	}
	// Monotone non-increasing in C.
	prev := ref
	for _, c := range []float64{0.1, 0.25, 0.5, 1.0, 2.5, 5.0} {
		cur := MarkerAudibility(c)
		if cur > prev+1e-9 {
			t.Fatalf("not monotone at C=%g", c)
		}
		prev = cur
	}
}

func TestDCRLabels(t *testing.T) {
	if Inaudible.Label() != "Inaudible" ||
		Audible.Label() != "Audible" ||
		SlightlyDistracting.Label() != "Slightly Distracting" ||
		Distracting.Label() != "Distracting" ||
		VeryDistracting.Label() != "Very Distracting" {
		t.Fatal("labels")
	}
	if DCR(3.2).Label() != "Slightly Distracting" {
		t.Fatal("rounding label")
	}
}

func TestRaterPoolStatistics(t *testing.T) {
	p := NewRaterPool(1)
	ratings := p.Rate(3.0, 500)
	if len(ratings) != 500 {
		t.Fatal("count")
	}
	mean, ci := Score(ratings)
	if math.Abs(mean-3.0) > 0.15 {
		t.Fatalf("pool mean %g want ~3.0", mean)
	}
	if ci <= 0 || ci > 0.2 {
		t.Fatalf("ci %g", ci)
	}
	for _, r := range ratings {
		if r < 1 || r > 5 {
			t.Fatalf("rating %d out of scale", r)
		}
	}
	// Determinism.
	p2 := NewRaterPool(1)
	r2 := p2.Rate(3.0, 500)
	for i := range ratings {
		if ratings[i] != r2[i] {
			t.Fatal("pool not deterministic")
		}
	}
}

func TestScoreEmpty(t *testing.T) {
	m, ci := Score(nil)
	if !math.IsNaN(m) || !math.IsNaN(ci) {
		t.Fatal("empty score should be NaN")
	}
}

func TestMarkerBandLoudnessMonotone(t *testing.T) {
	quiet := audio.Tone(audio.SampleRate, 9000, 0.5, 0.001)
	loud := audio.Tone(audio.SampleRate, 9000, 0.5, 0.01)
	lq := MarkerBandLoudness(quiet)
	ll := MarkerBandLoudness(loud)
	if math.Abs((ll-lq)-20) > 1 {
		t.Fatalf("10x amplitude should be +20 dBA: %g", ll-lq)
	}
	// Out-of-band content contributes almost nothing.
	low := audio.Tone(audio.SampleRate, 500, 0.5, 0.5)
	if MarkerBandLoudness(low) > lq {
		t.Fatal("low-frequency content should not register in marker band")
	}
}

func TestAmbientAnchorsOrdering(t *testing.T) {
	if !(RecordingStudioDBA < QuietLibraryDBA &&
		QuietLibraryDBA < AirConditionerDBA &&
		AirConditionerDBA < NormalConversationDBA) {
		t.Fatal("ambient anchor ordering")
	}
}
