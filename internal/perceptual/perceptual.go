// Package perceptual provides psychoacoustic opinion-score models standing
// in for the paper's crowdsourced ITU-T P.808 Degradation Category Rating
// (DCR) studies (Figures 2 and 10). Human raters cannot be sourced in this
// reproduction, so each study is replaced by a deterministic annoyance
// model plus a simulated rater pool that adds response noise and yields
// mean scores with confidence intervals.
//
// The models are calibrated to the published curves' documented shape —
// they are models of the paper's findings, not new measurements:
//
//   - Echo (Fig. 2): a 10 ms echo is already perceptible and "slightly
//     distracting" in all categories; annoyance grows steadily with delay
//     for speech but plateaus for music and game SFX.
//   - Marker audibility (Fig. 10): markers with relative power C ≤ 1.0 are
//     statistically indistinguishable from the reference; C = 2.5 is
//     audible and slightly distracting; C = 5 is distracting.
package perceptual

import (
	"math"
	"math/rand"

	"ekho/internal/audio"
	"ekho/internal/dsp"
	"ekho/internal/gamesynth"
)

// DCR is the 5-point Degradation Category Rating scale.
type DCR float64

// Scale anchors (5 = degradation inaudible .. 1 = very distracting).
const (
	Inaudible           DCR = 5
	Audible             DCR = 4
	SlightlyDistracting DCR = 3
	Distracting         DCR = 2
	VeryDistracting     DCR = 1
)

// Label renders the nearest category name.
func (d DCR) Label() string {
	switch {
	case d >= 4.5:
		return "Inaudible"
	case d >= 3.5:
		return "Audible"
	case d >= 2.5:
		return "Slightly Distracting"
	case d >= 1.5:
		return "Distracting"
	default:
		return "Very Distracting"
	}
}

// EchoAnnoyance returns the model's mean DCR for a clip of the given
// category played with an echo of delayMs milliseconds.
//
// Shape calibration (Fig. 2): 0 ms → ~5 (reference); 10 ms → ~3.2
// ("slightly distracting"); speech keeps degrading toward ~1.5 at 300 ms;
// music and SFX flatten near 2.6-2.8 beyond ~40 ms.
func EchoAnnoyance(cat gamesynth.Category, delayMs float64) DCR {
	if delayMs <= 0 {
		return 4.85 // reference-level score (raters are imperfect)
	}
	// Common fast onset: half-saturation around 8 ms.
	onset := delayMs / (delayMs + 8)
	switch cat {
	case gamesynth.Speech_:
		// Continued degradation with delay (log term) toward the bottom
		// of the scale at 300 ms.
		drop := 2.8*onset + 0.72*math.Max(0, math.Log10(delayMs/10))
		return clampDCR(4.85 - drop)
	case gamesynth.Music_:
		drop := 2.6*onset + 0.08*math.Max(0, math.Log10(delayMs/10))
		return clampDCR(4.85 - drop)
	default: // game SFX
		drop := 2.7*onset + 0.06*math.Max(0, math.Log10(delayMs/10))
		return clampDCR(4.85 - drop)
	}
}

// MarkerAudibility returns the model's mean DCR for a clip with markers at
// relative power C. The model is driven by the marker-to-game loudness
// ratio: by construction (Eq. 2) the in-band ratio is exactly C, and
// auditory masking hides the marker until it approaches the masker level.
//
// Shape calibration (Fig. 10): C ≤ 1.0 ≈ reference; C = 2.5 ≈ 3 (slightly
// distracting); C = 5 ≈ 2.2.
func MarkerAudibility(c float64) DCR {
	if c <= 0 {
		return 4.85
	}
	// Masking threshold: markers below ~6 dB above the tracked game-band
	// level are inaudible. c is an amplitude ratio; audibility grows with
	// log of the excess over the masked threshold of ~1.2.
	excess := c / 1.2
	if excess <= 1 {
		return clampDCR(4.85 - 0.1*excess)
	}
	drop := 2.75 * math.Log2(excess) / math.Log2(5/1.2)
	return clampDCR(4.7 - drop)
}

// clampDCR bounds a score to the scale.
func clampDCR(v float64) DCR {
	if v > 5 {
		v = 5
	}
	if v < 1 {
		v = 1
	}
	return DCR(v)
}

// RaterPool simulates a P.808 respondent pool: each rating adds zero-mean
// response noise and quantizes to the 1-5 scale, mirroring the variance
// visible in the paper's confidence intervals.
type RaterPool struct {
	rng *rand.Rand
	// NoiseStd is the per-rating response noise (default 0.55, fitted to
	// the published CI widths with ~10 votes per clip).
	NoiseStd float64
}

// NewRaterPool creates a deterministic pool.
func NewRaterPool(seed int64) *RaterPool {
	return &RaterPool{rng: rand.New(rand.NewSource(seed)), NoiseStd: 0.55}
}

// Rate produces n individual ratings around the model mean.
func (p *RaterPool) Rate(mean DCR, n int) []int {
	out := make([]int, n)
	for i := range out {
		v := float64(mean) + p.rng.NormFloat64()*p.NoiseStd
		r := int(math.Round(v))
		if r < 1 {
			r = 1
		}
		if r > 5 {
			r = 5
		}
		out[i] = r
	}
	return out
}

// Score aggregates ratings into a mean opinion score and a 95% confidence
// half-width.
func Score(ratings []int) (mean, ci95 float64) {
	if len(ratings) == 0 {
		return math.NaN(), math.NaN()
	}
	var sum float64
	for _, r := range ratings {
		sum += float64(r)
	}
	mean = sum / float64(len(ratings))
	var ss float64
	for _, r := range ratings {
		d := float64(r) - mean
		ss += d * d
	}
	if len(ratings) > 1 {
		std := math.Sqrt(ss / float64(len(ratings)-1))
		ci95 = 1.96 * std / math.Sqrt(float64(len(ratings)))
	}
	return mean, ci95
}

// SoundLevelDBA measures the calibrated A-weighted level of a buffer —
// exposed here because the Figure 13 "quiet library" comparison is a
// perceptual statement. Reference anchors follow common charts.
func SoundLevelDBA(b *audio.Buffer) float64 { return audio.DBA(b) }

// Ambient reference levels used in Figure 13's horizontal guide lines.
const (
	RecordingStudioDBA    = 20.0
	QuietLibraryDBA       = 40.0
	AirConditionerDBA     = 50.0
	NormalConversationDBA = 60.0
)

// MarkerBandLoudness returns the dBA level of just the 6-12 kHz band of a
// buffer, the quantity the Figure 13 sound-level meter effectively reads
// for a muted screen playing only PN markers.
func MarkerBandLoudness(b *audio.Buffer) float64 {
	fir := dsp.BandPass(6000, 12000, float64(b.Rate), 255)
	filtered := audio.FromSamples(b.Rate, fir.Apply(b.Samples))
	return audio.DBA(filtered)
}
