package live

import (
	"container/list"
	"sync"
	"time"

	"ekho"
	"ekho/internal/audio"
	"ekho/internal/codec"
	"ekho/internal/jitterbuf"
	"ekho/internal/transport"
)

// ScreenConfig configures the live screen-device role: playback is
// emulated by forwarding played frames over UDP to the client's "air"
// port after a configurable extra delay.
type ScreenConfig struct {
	Server       string
	Air          string
	ExtraDelay   time.Duration
	JitterFrames int
	Duration     time.Duration
	Logf         Logf
}

// ScreenStats summarizes a screen run.
type ScreenStats struct {
	Played, Forwarded int
}

type delayed struct {
	at    time.Time
	media transport.Media
}

// RunScreen executes the screen role.
func RunScreen(cfg ScreenConfig) (ScreenStats, error) {
	var stats ScreenStats
	logf := cfg.Logf
	if logf == nil {
		logf = nopLog
	}
	if cfg.JitterFrames == 0 {
		cfg.JitterFrames = 4
	}
	conn, err := transport.Listen("127.0.0.1:0")
	if err != nil {
		return stats, err
	}
	defer conn.Close()
	serverAddr, err := transport.ResolveUDP(cfg.Server)
	if err != nil {
		return stats, err
	}
	airAddr, err := transport.ResolveUDP(cfg.Air)
	if err != nil {
		return stats, err
	}
	if err := conn.SendTo(transport.EncodeHello(transport.Hello{Role: transport.RoleScreen}), serverAddr); err != nil {
		return stats, err
	}
	logf("screen up; media from %s, playing into %s with +%s lag", cfg.Server, cfg.Air, cfg.ExtraDelay)

	buf := jitterbuf.New(cfg.JitterFrames)
	metaBySeq := map[int]transport.Media{}
	queue := list.New()

	media := make(chan transport.Media, 64)
	go func() {
		for {
			msg, err := conn.Recv(time.Now().Add(cfg.Duration + 5*time.Second))
			if err != nil {
				close(media)
				return
			}
			if msg.Type == transport.TypeMedia {
				media <- msg.Media
			}
		}
	}()

	tick := time.NewTicker(20 * time.Millisecond)
	defer tick.Stop()
	deadline := time.Now().Add(cfg.Duration)
	for time.Now().Before(deadline) {
		select {
		case m, ok := <-media:
			if !ok {
				return stats, nil
			}
			metaBySeq[int(m.Seq)] = m
			buf.Push(jitterbuf.Frame{Seq: int(m.Seq), Samples: nil})
		case now := <-tick.C:
			// A starved buffer still emits silence — the speaker's DAC
			// keeps running, so the overheard waveform clock never
			// stalls (Ekho's chat timeline depends on that).
			_, ev := buf.Pop()
			var out transport.Media
			if ev == jitterbuf.Waiting {
				out = transport.Media{ContentStart: -1, Samples: make([]int16, ekho.FrameSamples)}
			} else {
				seq := buf.NextSeq() - 1
				if m, ok := metaBySeq[seq]; ok {
					delete(metaBySeq, seq)
					out = m
					stats.Played++
				} else {
					out = transport.Media{ContentStart: -1, Samples: make([]int16, ekho.FrameSamples)}
				}
			}
			queue.PushBack(delayed{at: now.Add(cfg.ExtraDelay), media: out})
			for e := queue.Front(); e != nil; {
				d := e.Value.(delayed)
				if now.Before(d.at) {
					break
				}
				next := e.Next()
				queue.Remove(e)
				e = next
				if err := conn.SendTo(transport.EncodeMedia(d.media), airAddr); err == nil {
					stats.Forwarded++
				}
			}
		}
	}
	logf("done: played %d frames, forwarded %d to the air", stats.Played, stats.Forwarded)
	return stats, nil
}

// ClientConfig configures the live controller/headset role.
type ClientConfig struct {
	Server       string
	AirListen    string
	ClockOffset  time.Duration
	Attenuation  float64
	JitterFrames int
	Duration     time.Duration
	Logf         Logf
	// AirReady, if non-nil, receives the bound air address.
	AirReady chan<- string
}

// ClientStats summarizes a client run.
type ClientStats struct {
	ChatPackets int
}

// mic emulates a sound card capturing the overheard screen playback: air
// frames are laid out contiguously on a timeline anchored at the first
// frame's arrival, and the reader consumes the oldest 20 ms whenever at
// least that much is buffered (see cmd/ekho-client's history for why
// free-running either side fragments or starves the waveform).
type mic struct {
	mu       sync.Mutex
	buf      []float64
	consumed int
	anchor   time.Time
	anchored bool
}

func (m *mic) write(at time.Time, samples []int16, gain float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.anchored {
		m.anchor = at
		m.anchored = true
	}
	for _, v := range samples {
		m.buf = append(m.buf, audio.Int16ToFloat(v)*gain)
	}
	const maxBacklog = 4 * ekho.SampleRate / 10
	if len(m.buf) > maxBacklog {
		drop := len(m.buf) - maxBacklog/2
		m.buf = m.buf[drop:]
		m.consumed += drop
	}
}

func (m *mic) capture(n int) ([]float64, time.Time, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.anchored || len(m.buf) < n {
		return nil, time.Time{}, false
	}
	out := make([]float64, n)
	copy(out, m.buf[:n])
	m.buf = m.buf[n:]
	ts := m.anchor.Add(time.Duration(m.consumed) * time.Second / ekho.SampleRate)
	m.consumed += n
	return out, ts, true
}

// RunClient executes the controller/headset role.
func RunClient(cfg ClientConfig) (ClientStats, error) {
	var stats ClientStats
	logf := cfg.Logf
	if logf == nil {
		logf = nopLog
	}
	if cfg.Attenuation == 0 {
		cfg.Attenuation = 0.1
	}
	if cfg.JitterFrames == 0 {
		cfg.JitterFrames = 2
	}
	conn, err := transport.Listen("127.0.0.1:0")
	if err != nil {
		return stats, err
	}
	defer conn.Close()
	airConn, err := transport.Listen(cfg.AirListen)
	if err != nil {
		return stats, err
	}
	defer airConn.Close()
	if cfg.AirReady != nil {
		cfg.AirReady <- airConn.LocalAddr().String()
	}
	serverAddr, err := transport.ResolveUDP(cfg.Server)
	if err != nil {
		return stats, err
	}
	if err := conn.SendTo(transport.EncodeHello(transport.Hello{Role: transport.RoleController}), serverAddr); err != nil {
		return stats, err
	}
	logf("controller up; air on %s, clock offset %s", airConn.LocalAddr(), cfg.ClockOffset)

	localMicros := func(t time.Time) int64 { return t.Add(cfg.ClockOffset).UnixMicro() }

	m := &mic{}
	buf := jitterbuf.New(cfg.JitterFrames)
	samplesBySeq := map[int]transport.Media{}
	var mu sync.Mutex
	var pendingRecords []transport.PlaybackRecord

	media := make(chan transport.Media, 64)
	go func() {
		for {
			msg, err := conn.Recv(time.Now().Add(cfg.Duration + 5*time.Second))
			if err != nil {
				close(media)
				return
			}
			if msg.Type == transport.TypeMedia {
				media <- msg.Media
			}
		}
	}()
	go func() {
		for {
			msg, err := airConn.Recv(time.Now().Add(cfg.Duration + 5*time.Second))
			if err != nil {
				return
			}
			if msg.Type == transport.TypeMedia {
				m.write(time.Now(), msg.Media.Samples, cfg.Attenuation)
			}
		}
	}()

	enc := codec.NewEncoder(codec.SWB32)
	chatSeq := uint32(0)
	tick := time.NewTicker(20 * time.Millisecond)
	defer tick.Stop()
	deadline := time.Now().Add(cfg.Duration)
	for now := range tick.C {
		if now.After(deadline) {
			break
		}
	drain:
		for {
			select {
			case md, ok := <-media:
				if !ok {
					break drain
				}
				samplesBySeq[int(md.Seq)] = md
				buf.Push(jitterbuf.Frame{Seq: int(md.Seq), Samples: nil})
			default:
				break drain
			}
		}
		if _, ev := buf.Pop(); ev != jitterbuf.Waiting {
			seq := buf.NextSeq() - 1
			if md, ok := samplesBySeq[seq]; ok {
				delete(samplesBySeq, seq)
				if md.ContentStart >= 0 {
					mu.Lock()
					pendingRecords = append(pendingRecords, transport.PlaybackRecord{
						ContentStart: md.ContentStart,
						LocalMicros:  localMicros(now),
						N:            uint16(len(md.Samples)) - md.ContentOff,
					})
					mu.Unlock()
				}
			}
		}
		for burst := 0; burst < 2; burst++ {
			captured, capturedAt, ok := m.capture(ekho.FrameSamples)
			if !ok {
				break
			}
			pkt, err := enc.Encode(captured)
			if err != nil {
				break
			}
			adc := localMicros(capturedAt)
			mu.Lock()
			recs := pendingRecords
			pendingRecords = nil
			mu.Unlock()
			chat := transport.Chat{Seq: chatSeq, ADCMicros: adc, Records: recs, Encoded: pkt}
			chatSeq++
			_ = conn.SendTo(transport.EncodeChat(chat), serverAddr)
		}
	}
	stats.ChatPackets = int(chatSeq)
	logf("done: sent %d chat packets", chatSeq)
	return stats, nil
}
