package live

import (
	"container/list"
	"errors"
	"fmt"
	"net"
	"os"
	"sync"
	"time"

	"ekho"
	"ekho/internal/audio"
	"ekho/internal/codec"
	"ekho/internal/jitterbuf"
	"ekho/internal/rtp"
	"ekho/internal/transport"
)

// wireEnc maps a device's configured wire framing onto its stateless
// encoder. The air hop between screen and headset always stays on v2
// framing — it emulates sound through a room, not a production link.
func wireEnc(w transport.Wire) transport.WireEncoder {
	if w == transport.WireRTP {
		return rtp.Encoder{}
	}
	return transport.V2{}
}

// cleanRecvErr reports whether a socket error marks an expected end of a
// run (our own close, or a read deadline expiring after the stream went
// quiet) rather than a failure that must surface to the caller.
func cleanRecvErr(err error) bool {
	if errors.Is(err, net.ErrClosed) || errors.Is(err, os.ErrDeadlineExceeded) {
		return true
	}
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// busyErr converts a TypeBusy reject into the error returned to callers.
func busyErr(b transport.Busy) error {
	return fmt.Errorf("live: server busy: %d/%d sessions active", b.Active, b.Capacity)
}

// ScreenConfig configures the live screen-device role: playback is
// emulated by forwarding played frames over UDP to the client's "air"
// port after a configurable extra delay.
type ScreenConfig struct {
	Server string
	// Session is the wire session identifier to join (0 joins a v1
	// single-session server).
	Session      uint32
	Air          string
	ExtraDelay   time.Duration
	JitterFrames int
	Duration     time.Duration
	// Wire selects the framing spoken with the server (default v2; the
	// air forwarding hop is always v2).
	Wire transport.Wire
	Logf Logf
}

// ScreenStats summarizes a screen run.
type ScreenStats struct {
	Played, Forwarded int
}

type delayed struct {
	at    time.Time
	media transport.Media
}

// RunScreen executes the screen role. It returns an error if the server
// rejects the session as busy or the sockets fail mid-run; running out
// the configured duration is a clean exit (announced to the server with
// a Bye).
func RunScreen(cfg ScreenConfig) (ScreenStats, error) {
	var stats ScreenStats
	logf := cfg.Logf
	if logf == nil {
		logf = nopLog
	}
	if cfg.JitterFrames == 0 {
		cfg.JitterFrames = 4
	}
	conn, err := transport.Listen("127.0.0.1:0")
	if err != nil {
		return stats, err
	}
	defer conn.Close()
	conn.SetDecoder(rtp.NewCodec()) // server replies in the helloed framing
	wenc := wireEnc(cfg.Wire)
	serverAddr, err := transport.ResolveUDP(cfg.Server)
	if err != nil {
		return stats, err
	}
	airAddr, err := transport.ResolveUDP(cfg.Air)
	if err != nil {
		return stats, err
	}
	hello := transport.Hello{Session: cfg.Session, Role: transport.RoleScreen}
	if err := conn.SendTo(wenc.AppendHello(nil, hello), serverAddr); err != nil {
		return stats, fmt.Errorf("live: hello: %w", err)
	}
	logf("screen up; media from %s (session %d), playing into %s with +%s lag",
		cfg.Server, cfg.Session, cfg.Air, cfg.ExtraDelay)

	buf := jitterbuf.New(cfg.JitterFrames)
	metaBySeq := map[int]transport.Media{}
	queue := list.New()

	media := make(chan transport.Media, 64)
	errCh := make(chan error, 1)
	go func() {
		defer close(media)
		for {
			msg, err := conn.Recv(time.Now().Add(cfg.Duration + 5*time.Second))
			if err != nil {
				if !cleanRecvErr(err) {
					errCh <- fmt.Errorf("live: screen receive: %w", err)
				}
				return
			}
			switch {
			case msg.Type == transport.TypeBusy:
				errCh <- busyErr(msg.Busy)
				return
			case msg.Type == transport.TypeMedia && msg.Session == cfg.Session:
				select {
				case media <- msg.Media:
				default: // main loop lagging: drop like a real NIC queue
				}
			}
		}
	}()

	tick := time.NewTicker(20 * time.Millisecond)
	defer tick.Stop()
	deadline := time.Now().Add(cfg.Duration)
	for time.Now().Before(deadline) {
		select {
		case err := <-errCh:
			return stats, err
		case m, ok := <-media:
			if !ok {
				return stats, nil
			}
			metaBySeq[int(m.Seq)] = m
			buf.Push(jitterbuf.Frame{Seq: int(m.Seq), Samples: nil})
		case now := <-tick.C:
			// A starved buffer still emits silence — the speaker's DAC
			// keeps running, so the overheard waveform clock never
			// stalls (Ekho's chat timeline depends on that).
			_, ev := buf.Pop()
			var out transport.Media
			if ev == jitterbuf.Waiting {
				out = transport.Media{ContentStart: -1, Samples: make([]int16, ekho.FrameSamples)}
			} else {
				seq := buf.NextSeq() - 1
				if m, ok := metaBySeq[seq]; ok {
					delete(metaBySeq, seq)
					out = m
					stats.Played++
				} else {
					out = transport.Media{ContentStart: -1, Samples: make([]int16, ekho.FrameSamples)}
				}
			}
			queue.PushBack(delayed{at: now.Add(cfg.ExtraDelay), media: out})
			for e := queue.Front(); e != nil; {
				d := e.Value.(delayed)
				if now.Before(d.at) {
					break
				}
				next := e.Next()
				queue.Remove(e)
				e = next
				b, err := transport.EncodeMedia(d.media)
				if err != nil {
					return stats, fmt.Errorf("live: encode air frame: %w", err)
				}
				if err := conn.SendTo(b, airAddr); err != nil {
					return stats, fmt.Errorf("live: forward to air: %w", err)
				}
				stats.Forwarded++
			}
		}
	}
	if err := conn.SendTo(wenc.AppendBye(nil, transport.Bye{Session: cfg.Session}), serverAddr); err != nil {
		return stats, fmt.Errorf("live: bye: %w", err)
	}
	logf("done: played %d frames, forwarded %d to the air", stats.Played, stats.Forwarded)
	return stats, nil
}

// ClientConfig configures the live controller/headset role.
type ClientConfig struct {
	Server string
	// Session is the wire session identifier to join (0 joins a v1
	// single-session server).
	Session      uint32
	AirListen    string
	ClockOffset  time.Duration
	Attenuation  float64
	JitterFrames int
	Duration     time.Duration
	// Wire selects the framing spoken with the server (default v2).
	Wire transport.Wire
	Logf Logf
	// AirReady, if non-nil, receives the bound air address.
	AirReady chan<- string
}

// ClientStats summarizes a client run.
type ClientStats struct {
	ChatPackets int
}

// mic emulates a sound card capturing the overheard screen playback: air
// frames are laid out contiguously on a timeline anchored at the first
// frame's arrival, and the reader consumes the oldest 20 ms whenever at
// least that much is buffered (see cmd/ekho-client's history for why
// free-running either side fragments or starves the waveform).
type mic struct {
	mu       sync.Mutex
	buf      []float64
	consumed int
	anchor   time.Time
	anchored bool
}

func (m *mic) write(at time.Time, samples []int16, gain float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.anchored {
		m.anchor = at
		m.anchored = true
	}
	for _, v := range samples {
		m.buf = append(m.buf, audio.Int16ToFloat(v)*gain)
	}
	const maxBacklog = 4 * ekho.SampleRate / 10
	if len(m.buf) > maxBacklog {
		drop := len(m.buf) - maxBacklog/2
		m.buf = m.buf[drop:]
		m.consumed += drop
	}
}

func (m *mic) capture(n int) ([]float64, time.Time, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.anchored || len(m.buf) < n {
		return nil, time.Time{}, false
	}
	out := make([]float64, n)
	copy(out, m.buf[:n])
	m.buf = m.buf[n:]
	ts := m.anchor.Add(time.Duration(m.consumed) * time.Second / ekho.SampleRate)
	m.consumed += n
	return out, ts, true
}

// RunClient executes the controller/headset role. Like RunScreen it
// surfaces busy rejects and socket failures as errors and sends a Bye on
// clean exit.
func RunClient(cfg ClientConfig) (ClientStats, error) {
	var stats ClientStats
	logf := cfg.Logf
	if logf == nil {
		logf = nopLog
	}
	if cfg.Attenuation == 0 {
		cfg.Attenuation = 0.1
	}
	if cfg.JitterFrames == 0 {
		cfg.JitterFrames = 2
	}
	conn, err := transport.Listen("127.0.0.1:0")
	if err != nil {
		return stats, err
	}
	defer conn.Close()
	conn.SetDecoder(rtp.NewCodec()) // server replies in the helloed framing
	wenc := wireEnc(cfg.Wire)
	airConn, err := transport.Listen(cfg.AirListen)
	if err != nil {
		return stats, err
	}
	defer airConn.Close()
	if cfg.AirReady != nil {
		cfg.AirReady <- airConn.LocalAddr().String()
	}
	serverAddr, err := transport.ResolveUDP(cfg.Server)
	if err != nil {
		return stats, err
	}
	hello := transport.Hello{Session: cfg.Session, Role: transport.RoleController}
	if err := conn.SendTo(wenc.AppendHello(nil, hello), serverAddr); err != nil {
		return stats, fmt.Errorf("live: hello: %w", err)
	}
	logf("controller up (session %d); air on %s, clock offset %s",
		cfg.Session, airConn.LocalAddr(), cfg.ClockOffset)

	localMicros := func(t time.Time) int64 { return t.Add(cfg.ClockOffset).UnixMicro() }

	m := &mic{}
	buf := jitterbuf.New(cfg.JitterFrames)
	samplesBySeq := map[int]transport.Media{}
	var mu sync.Mutex
	var pendingRecords []transport.PlaybackRecord

	media := make(chan transport.Media, 64)
	errCh := make(chan error, 2)
	go func() {
		defer close(media)
		for {
			msg, err := conn.Recv(time.Now().Add(cfg.Duration + 5*time.Second))
			if err != nil {
				if !cleanRecvErr(err) {
					errCh <- fmt.Errorf("live: controller receive: %w", err)
				}
				return
			}
			switch {
			case msg.Type == transport.TypeBusy:
				errCh <- busyErr(msg.Busy)
				return
			case msg.Type == transport.TypeMedia && msg.Session == cfg.Session:
				select {
				case media <- msg.Media:
				default:
				}
			}
		}
	}()
	go func() {
		for {
			msg, err := airConn.Recv(time.Now().Add(cfg.Duration + 5*time.Second))
			if err != nil {
				if !cleanRecvErr(err) {
					errCh <- fmt.Errorf("live: air receive: %w", err)
				}
				return
			}
			if msg.Type == transport.TypeMedia {
				m.write(time.Now(), msg.Media.Samples, cfg.Attenuation)
			}
		}
	}()

	enc := codec.NewEncoder(codec.SWB32)
	chatSeq := uint32(0)
	tick := time.NewTicker(20 * time.Millisecond)
	defer tick.Stop()
	deadline := time.Now().Add(cfg.Duration)
	for now := range tick.C {
		if now.After(deadline) {
			break
		}
		select {
		case err := <-errCh:
			return stats, err
		default:
		}
	drain:
		for {
			select {
			case md, ok := <-media:
				if !ok {
					break drain
				}
				samplesBySeq[int(md.Seq)] = md
				buf.Push(jitterbuf.Frame{Seq: int(md.Seq), Samples: nil})
			default:
				break drain
			}
		}
		if _, ev := buf.Pop(); ev != jitterbuf.Waiting {
			seq := buf.NextSeq() - 1
			if md, ok := samplesBySeq[seq]; ok {
				delete(samplesBySeq, seq)
				if md.ContentStart >= 0 {
					mu.Lock()
					pendingRecords = append(pendingRecords, transport.PlaybackRecord{
						ContentStart: md.ContentStart,
						LocalMicros:  localMicros(now),
						N:            uint16(len(md.Samples)) - md.ContentOff,
					})
					mu.Unlock()
				}
			}
		}
		for burst := 0; burst < 2; burst++ {
			captured, capturedAt, ok := m.capture(ekho.FrameSamples)
			if !ok {
				break
			}
			pkt, err := enc.Encode(captured)
			if err != nil {
				break
			}
			adc := localMicros(capturedAt)
			mu.Lock()
			recs := pendingRecords
			pendingRecords = nil
			mu.Unlock()
			chat := transport.Chat{
				Seq: chatSeq, Session: cfg.Session, ADCMicros: adc, Records: recs, Encoded: pkt}
			b, err := wenc.AppendChat(nil, chat)
			if err != nil {
				return stats, fmt.Errorf("live: encode chat: %w", err)
			}
			chatSeq++
			if err := conn.SendTo(b, serverAddr); err != nil {
				return stats, fmt.Errorf("live: send chat: %w", err)
			}
		}
	}
	if err := conn.SendTo(wenc.AppendBye(nil, transport.Bye{Session: cfg.Session}), serverAddr); err != nil {
		return stats, fmt.Errorf("live: bye: %w", err)
	}
	stats.ChatPackets = int(chatSeq)
	logf("done: sent %d chat packets", chatSeq)
	return stats, nil
}
