package live

import (
	"math"
	"net"
	"sync"
	"testing"
	"time"
)

// TestLiveLoopbackSynchronizes runs all three roles over real UDP loopback
// sockets for several wall-clock seconds: the server must measure the
// screen's extra delay and converge after compensating. This is the
// integration test behind the cmd/ demo binaries.
func TestLiveLoopbackSynchronizes(t *testing.T) {
	if testing.Short() {
		t.Skip("live loopback test needs ~20 s of wall time")
	}
	const runFor = 18 * time.Second

	ready := make(chan net.Addr, 1)
	airReady := make(chan string, 1)

	var (
		wg          sync.WaitGroup
		serverStats ServerStats
		serverErr   error
		clientErr   error
		screenErr   error
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		serverStats, serverErr = RunServer(ServerConfig{
			Listen:   "127.0.0.1:0",
			Duration: runFor,
			Ready:    ready,
		})
	}()
	serverAddr := (<-ready).String()

	wg.Add(1)
	go func() {
		defer wg.Done()
		_, clientErr = RunClient(ClientConfig{
			Server:      serverAddr,
			AirListen:   "127.0.0.1:0",
			ClockOffset: 3200 * time.Millisecond,
			Duration:    runFor + 2*time.Second,
			AirReady:    airReady,
		})
	}()
	airAddr := <-airReady

	wg.Add(1)
	go func() {
		defer wg.Done()
		_, screenErr = RunScreen(ScreenConfig{
			Server:     serverAddr,
			Air:        airAddr,
			ExtraDelay: 180 * time.Millisecond,
			Duration:   runFor + 2*time.Second,
		})
	}()

	wg.Wait()
	if serverErr != nil {
		t.Fatalf("server: %v", serverErr)
	}
	if clientErr != nil {
		t.Fatalf("client: %v", clientErr)
	}
	if screenErr != nil {
		t.Fatalf("screen: %v", screenErr)
	}

	if serverStats.Measurements < 5 {
		t.Fatalf("only %d measurements in %s", serverStats.Measurements, runFor)
	}
	if serverStats.Actions < 1 {
		t.Fatal("no compensation action")
	}
	// The startup gap is dominated by the 180 ms extra delay plus jitter
	// buffers; the first correction must be in that ballpark.
	if serverStats.FirstActionFrames < 8 || serverStats.FirstActionFrames > 18 {
		t.Fatalf("first correction %d frames, want ~12 for a ~240 ms gap", serverStats.FirstActionFrames)
	}
	// After the correction the residual must sit inside one frame.
	var tail []float64
	for i, isd := range serverStats.ISDs {
		if i >= len(serverStats.ISDs)/2 {
			tail = append(tail, math.Abs(isd))
		}
	}
	if len(tail) == 0 {
		t.Fatal("no post-correction measurements")
	}
	within := 0
	for _, v := range tail {
		if v <= 0.025 {
			within++
		}
	}
	if frac := float64(within) / float64(len(tail)); frac < 0.7 {
		t.Fatalf("only %.0f%% of late measurements within 25 ms: %v", frac*100, tail)
	}
}
