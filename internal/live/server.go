// Package live implements the real-UDP Ekho deployment used by the demo
// binaries (cmd/ekho-server, cmd/ekho-screen, cmd/ekho-client) and by the
// loopback integration test: the same server/screen/controller roles as
// the virtual-time simulator, but running in wall-clock time over
// net.PacketConn sockets with the transport wire protocol.
//
// The server role is a thin wrapper over internal/hub: RunServer hosts a
// capacity-1 hub, so the single-session demo and the multi-tenant
// cmd/ekho-server share one session pipeline implementation.
package live

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"ekho/internal/hub"
	"ekho/internal/rtp"
	"ekho/internal/transport"
)

// Logf is a printf-style sink for role progress output.
type Logf func(format string, args ...any)

func nopLog(string, ...any) {}

// ServerConfig configures the live Ekho server role.
type ServerConfig struct {
	// Listen is the UDP address to bind (e.g. "127.0.0.1:9000").
	Listen string
	// Duration bounds the streaming phase (after both endpoints joined).
	Duration time.Duration
	// MarkerC is the relative marker volume (0 = paper default).
	MarkerC float64
	// Clip selects the corpus clip to loop.
	Clip int
	// Logf receives progress lines (nil silences them).
	Logf Logf
	// Ready, if non-nil, is closed once the socket is bound (tests use it
	// to sequence startup).
	Ready chan<- net.Addr
}

// ServerStats summarizes a server run.
type ServerStats struct {
	Measurements int
	Actions      int
	// ISDs holds every measured ISD in seconds, in order.
	ISDs []float64
	// FirstActionFrames is the insert size of the first compensation.
	FirstActionFrames int
}

// RunServer executes the server role: a capacity-1 hub that streams for
// Duration once both endpoints have joined.
func RunServer(cfg ServerConfig) (ServerStats, error) {
	var stats ServerStats
	logf := cfg.Logf
	if logf == nil {
		logf = nopLog
	}
	conn, err := transport.Listen(cfg.Listen)
	if err != nil {
		return stats, err
	}
	// Accept both wire framings; each session replies in whatever framing
	// its Hello arrived in, so the demo server is wire-agnostic.
	conn.SetDecoder(rtp.NewCodec())
	if cfg.Ready != nil {
		cfg.Ready <- conn.LocalAddr()
	}
	logf("listening on %s; waiting for screen and controller hellos", conn.LocalAddr())

	var (
		statsMu  sync.Mutex
		haveStat bool
		ready    = make(chan struct{})
		onceRdy  sync.Once
	)
	h := hub.New(hub.Config{
		Capacity: 1,
		Shards:   1,
		MarkerC:  cfg.MarkerC,
		Clip:     cfg.Clip,
		Logf:     hub.Logf(logf),
		OnSessionReady: func(id uint32) {
			onceRdy.Do(func() { close(ready) })
		},
		OnSessionEnd: func(id uint32, r hub.SessionResult) {
			statsMu.Lock()
			defer statsMu.Unlock()
			if haveStat {
				return
			}
			haveStat = true
			stats = ServerStats{
				Measurements:      r.Measurements,
				Actions:           r.Actions,
				ISDs:              r.ISDs,
				FirstActionFrames: r.FirstActionFrames,
			}
		},
	}, conn)

	// The duration clock starts when both endpoints have joined; a run
	// where no session comes up within a minute is aborted.
	var timedOut atomic.Bool
	stop := make(chan struct{})
	go func() {
		select {
		case <-ready:
			logf("both endpoints joined; streaming for %s", cfg.Duration)
			select {
			case <-time.After(cfg.Duration):
				h.Close()
			case <-stop:
			}
		case <-time.After(time.Minute):
			timedOut.Store(true)
			h.Close()
		case <-stop:
		}
	}()

	err = h.Serve()
	close(stop)
	if timedOut.Load() {
		return stats, fmt.Errorf("live: waiting for endpoints: no session within 1 minute")
	}
	if err != nil {
		return stats, err
	}
	logf("done: %d measurements, %d compensation actions", stats.Measurements, stats.Actions)
	return stats, nil
}
