// Package live implements the real-UDP Ekho deployment used by the demo
// binaries (cmd/ekho-server, cmd/ekho-screen, cmd/ekho-client) and by the
// loopback integration test: the same server/screen/controller roles as
// the virtual-time simulator, but running in wall-clock time over
// net.PacketConn sockets with the transport wire protocol.
package live

import (
	"fmt"
	"net"
	"time"

	"ekho"
	"ekho/internal/audio"
	"ekho/internal/codec"
	"ekho/internal/gamesynth"
	"ekho/internal/transport"
)

// Logf is a printf-style sink for role progress output.
type Logf func(format string, args ...any)

func nopLog(string, ...any) {}

// ServerConfig configures the live Ekho server role.
type ServerConfig struct {
	// Listen is the UDP address to bind (e.g. "127.0.0.1:9000").
	Listen string
	// Duration bounds the streaming phase (after both endpoints joined).
	Duration time.Duration
	// MarkerC is the relative marker volume (0 = paper default).
	MarkerC float64
	// Clip selects the corpus clip to loop.
	Clip int
	// Logf receives progress lines (nil silences them).
	Logf Logf
	// Ready, if non-nil, is closed once the socket is bound (tests use it
	// to sequence startup).
	Ready chan<- net.Addr
}

// ServerStats summarizes a server run.
type ServerStats struct {
	Measurements int
	Actions      int
	// ISDs holds every measured ISD in seconds, in order.
	ISDs []float64
	// FirstActionFrames is the insert size of the first compensation.
	FirstActionFrames int
}

// stream is a minimal content-tracked frame source with compensation
// (the live twin of the simulator's streamScheduler).
type stream struct {
	game        *audio.Buffer
	pos         int
	silenceDebt int
	seq         uint32
}

func (s *stream) apply(a *ekho.Action) {
	s.silenceDebt += a.InsertFrames*ekho.FrameSamples + a.InsertSamples
	skip := a.SkipFrames*ekho.FrameSamples + a.SkipSamples
	if skip > 0 {
		if s.silenceDebt >= skip {
			s.silenceDebt -= skip
			skip = 0
		} else {
			skip -= s.silenceDebt
			s.silenceDebt = 0
		}
		s.pos += skip
	}
}

func (s *stream) next() (samples []float64, contentStart int64, off uint16) {
	f := make([]float64, ekho.FrameSamples)
	if s.silenceDebt >= ekho.FrameSamples {
		s.silenceDebt -= ekho.FrameSamples
		return f, -1, 0
	}
	o := s.silenceDebt
	s.silenceDebt = 0
	start := s.pos
	for i := o; i < ekho.FrameSamples; i++ {
		f[i] = s.game.Samples[s.pos%s.game.Len()]
		s.pos++
	}
	return f, int64(start), uint16(o)
}

// RunServer executes the server role until Duration elapses.
func RunServer(cfg ServerConfig) (ServerStats, error) {
	var stats ServerStats
	logf := cfg.Logf
	if logf == nil {
		logf = nopLog
	}
	if cfg.MarkerC == 0 {
		cfg.MarkerC = ekho.DefaultMarkerVolume
	}
	conn, err := transport.Listen(cfg.Listen)
	if err != nil {
		return stats, err
	}
	defer conn.Close()
	if cfg.Ready != nil {
		cfg.Ready <- conn.LocalAddr()
	}
	logf("listening on %s; waiting for screen and controller hellos", conn.LocalAddr())

	screenAddr, controllerAddr, err := awaitEndpoints(conn, logf)
	if err != nil {
		return stats, err
	}
	logf("screen=%s controller=%s; streaming for %s", screenAddr, controllerAddr, cfg.Duration)

	game := gamesynth.Generate(gamesynth.Catalog()[cfg.Clip%30], gamesynth.ClipSeconds)
	seq := ekho.NewMarkerSequence(4242)
	injector := ekho.NewInjector(seq, cfg.MarkerC)
	screen := &stream{game: game}
	accessory := &stream{game: game}
	est := ekho.NewEstimator(seq)
	comp := ekho.NewCompensator(ekho.CompensatorConfig{})
	dec := codec.NewDecoder(codec.SWB32)

	var markerContent []int64
	var records []transport.PlaybackRecord
	chatNext := uint32(0)
	chatStarted := false
	lastChatEnd := 0.0

	chats := make(chan transport.Chat, 64)
	go func() {
		for {
			msg, err := conn.Recv(time.Now().Add(cfg.Duration + 5*time.Second))
			if err != nil {
				close(chats)
				return
			}
			if msg.Type == transport.TypeChat {
				chats <- msg.Chat
			}
		}
	}()

	tick := time.NewTicker(20 * time.Millisecond)
	defer tick.Stop()
	deadline := time.Now().Add(cfg.Duration)
	for time.Now().Before(deadline) {
		select {
		case <-tick.C:
			sf, sc, so := screen.next()
			if markerStarted(injector, sf) {
				mc := sc
				if mc < 0 {
					mc = int64(screen.pos)
				}
				markerContent = append(markerContent, mc)
			}
			af, ac, ao := accessory.next()
			send(conn, screenAddr, transport.Media{Seq: screen.seq, ContentStart: sc, ContentOff: so, Samples: toInt16(sf)})
			send(conn, controllerAddr, transport.Media{Seq: accessory.seq, ContentStart: ac, ContentOff: ao, Samples: toInt16(af)})
			screen.seq++
			accessory.seq++
		case chat, ok := <-chats:
			if !ok {
				return stats, fmt.Errorf("live: receive loop ended early")
			}
			records = append(records, chat.Records...)
			if len(records) > 400 {
				records = records[len(records)-200:]
			}
			markerContent = matchMarkers(est, markerContent, records)
			if !chatStarted {
				chatStarted = true
				chatNext = chat.Seq
			}
			for chat.Seq > chatNext {
				est.AddChat(dec.Conceal(), lastChatEnd)
				lastChatEnd += 0.02
				chatNext++
			}
			if chat.Seq < chatNext {
				continue
			}
			decoded, err := dec.Decode(chat.Encoded)
			if err != nil {
				decoded = dec.Conceal()
			}
			ts := float64(chat.ADCMicros)/1e6 - float64(codec.SWB32.Delay())/ekho.SampleRate
			ms := est.AddChat(decoded, ts)
			lastChatEnd = ts + float64(len(decoded))/ekho.SampleRate
			chatNext++
			now := float64(time.Now().UnixMicro()) / 1e6
			for _, m := range ms {
				stats.Measurements++
				stats.ISDs = append(stats.ISDs, m.ISDSeconds)
				logf("ISD measurement: %+.1f ms (strength %.0f)", m.ISDSeconds*1000, m.Strength)
				if act := comp.Offer(now, m.ISDSeconds); act != nil {
					stats.Actions++
					if stats.Actions == 1 {
						stats.FirstActionFrames = act.InsertFrames
					}
					target := accessory
					if act.Stream == ekho.ScreenStream {
						target = screen
					}
					target.apply(act)
					logf("compensation: %v stream insert=%d skip=%d frames",
						act.Stream, act.InsertFrames, act.SkipFrames)
				}
			}
		}
	}
	logf("done: %d measurements, %d compensation actions", stats.Measurements, stats.Actions)
	return stats, nil
}

// awaitEndpoints blocks until both roles have said hello.
func awaitEndpoints(conn *transport.Conn, logf Logf) (screen, controller net.Addr, err error) {
	for screen == nil || controller == nil {
		msg, err := conn.Recv(time.Now().Add(time.Minute))
		if err != nil {
			return nil, nil, fmt.Errorf("live: waiting for endpoints: %w", err)
		}
		if msg.Type != transport.TypeHello {
			continue
		}
		switch msg.Hello.Role {
		case transport.RoleScreen:
			screen = msg.From
			logf("screen registered from %s", msg.From)
		case transport.RoleController:
			controller = msg.From
			logf("controller registered from %s", msg.From)
		}
	}
	return screen, controller, nil
}

// markerStarted runs the injector on the frame and reports whether a new
// marker began.
func markerStarted(in *ekho.Injector, frame []float64) bool {
	before := len(in.Log())
	in.ProcessFrame(frame)
	return len(in.Log()) > before
}

// matchMarkers emits marker local times for contents covered by records.
func matchMarkers(est *ekho.Estimator, pending []int64, records []transport.PlaybackRecord) []int64 {
	var rest []int64
	for _, mc := range pending {
		matched := false
		for _, r := range records {
			if mc >= r.ContentStart && mc < r.ContentStart+int64(r.N) {
				t := float64(r.LocalMicros)/1e6 + float64(mc-r.ContentStart)/ekho.SampleRate
				est.AddMarkerTime(t)
				matched = true
				break
			}
		}
		if !matched {
			rest = append(rest, mc)
		}
	}
	return rest
}

func toInt16(f []float64) []int16 {
	out := make([]int16, len(f))
	for i, v := range f {
		out[i] = audio.FloatToInt16(v)
	}
	return out
}

func send(conn *transport.Conn, to net.Addr, m transport.Media) {
	_ = conn.SendTo(transport.EncodeMedia(m), to)
}
