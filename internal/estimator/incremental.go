package estimator

import (
	"math"

	"ekho/internal/dsp"
)

// IncrementalDetector is the streaming form of the Eq. 3-7 pipeline: audio
// arrives in arbitrary chunks and confirmed detections are emitted as soon
// as the equations' lookaheads allow (about one marker interval after the
// marker starts, dominated by the Eq. 7 companion requirement).
//
// Two implementations sit behind it, selected by Config.Detector:
//
//   - DetectorTwoStage (default): a coarse stage heterodynes the 6-12 kHz
//     marker band to complex baseband, decimates it D× and correlates
//     against a once-decimated template; a fine stage re-examines a small
//     full-rate window around each coarse candidate to recover the
//     sample-accurate position. See twostage.go.
//   - DetectorFullRate: every correlation lag computed exactly once at the
//     full 48 kHz rate — the bit-exact streaming form of the batch
//     pipeline, kept as the reference.
//
// Differences from the batch DetectMarkers pipeline are limited to
// causality: the Eq. 4 silence floor uses the running (not whole-file)
// correlation RMS, and a marker's first appearance can only confirm once
// its companion one interval away has been seen.
type IncrementalDetector struct {
	fr *fullRateDetector
	ts *twoStageDetector
}

// NewIncrementalDetector returns a streaming detector for the config.
func NewIncrementalDetector(cfg Config) *IncrementalDetector {
	c := cfg.withDefaults()
	d := &IncrementalDetector{}
	if c.Detector == DetectorFullRate || c.Seq == nil {
		d.fr = newFullRateDetector(c)
	} else {
		d.ts = newTwoStageDetector(c)
	}
	return d
}

// Feed appends recording samples and returns newly confirmed detections.
// Detection.Sample is the absolute sample index since the first Feed.
func (d *IncrementalDetector) Feed(samples []float64) []Detection {
	if d.fr != nil {
		return d.fr.feed(samples)
	}
	return d.ts.feed(samples)
}

// Flush processes everything buffered regardless of batch thresholds and
// returns any final detections (peaks whose companions were already seen).
func (d *IncrementalDetector) Flush() []Detection {
	if d.fr != nil {
		return d.fr.flush()
	}
	return d.ts.flush()
}

// peakScan runs the Eq. 4-6 stages — running power normalization,
// peak-hold envelope and dominant-local-max candidate pick — over a
// streaming correlation sequence. It is domain-neutral: the full-rate
// detector feeds it signed 48 kHz correlation lags, the two-stage detector
// feeds decimated correlation magnitudes, with the window, decay and
// dominance parameters scaled to the lag rate by the caller.
type peakScan struct {
	normWindow int
	beta       float64
	theta      float64
	delta      int
	// powScale weights squared values in the Eq. 4 power terms: 1 for
	// real correlation lags, ½ for complex-envelope magnitudes (a
	// narrowband real signal of envelope |C| has mean square |C|²/2, so
	// the coarse normalization lands in the same σ units as Z*).
	powScale float64

	// Correlation buffer; z[0] is absolute lag zBase. zPrefix has
	// len(z)+1 entries with zPrefix[k+1]-zPrefix[k] = powScale·z[k]².
	z       []float64
	zPrefix []float64
	zBase   int
	nmNext  int // next absolute lag to normalize (Eq. 4)
	sumSq   float64
	count   int

	// Envelope state; env[0] is absolute position envBase.
	env      []float64
	envBase  int
	envState float64
	envSeen  bool
	peakNext int // next absolute position to peak-check

	cands []scanPeak // Eq. 6 candidates awaiting the caller
}

// scanPeak is one Eq. 6 candidate: a dominant local envelope max at an
// absolute lag position in the scan's own domain.
type scanPeak struct {
	pos int
	val float64
}

// append integrates freshly computed correlation values whose first entry
// sits at absolute lag start (which must equal the current frontier).
func (s *peakScan) append(start int, vals []float64) {
	if len(s.zPrefix) == 0 {
		s.zBase = start
		s.nmNext = start
		s.zPrefix = append(s.zPrefix, 0)
	}
	for _, v := range vals {
		s.z = append(s.z, v)
		s.zPrefix = append(s.zPrefix, s.zPrefix[len(s.zPrefix)-1]+v*v*s.powScale)
		s.sumSq += v * v * s.powScale
		s.count++
	}
}

// advance runs Eq. 4-6 over every position whose lookahead is satisfied,
// leaving new candidates in cands for the caller to drain.
func (s *peakScan) advance() {
	S := s.normWindow
	zEnd := s.zBase + len(s.z)
	floor := 0.0
	if s.count > 0 {
		floor = 0.02 * math.Sqrt(s.sumSq/float64(s.count))
	}
	for s.nmNext+S <= zEnd {
		i := s.nmNext - s.zBase
		den := math.Sqrt((s.zPrefix[i+S] - s.zPrefix[i]) / float64(S))
		if den < floor {
			den = floor
		}
		var nv float64
		if den > 0 {
			nv = math.Abs(s.z[i]) / den
		}
		s.pushEnvelope(s.nmNext, nv)
		s.nmNext++
	}
	s.trimZ()
	s.checkPeaks()
}

// pushEnvelope advances Eq. 5.
func (s *peakScan) pushEnvelope(abs int, nv float64) {
	s.envState *= s.beta
	if nv > s.envState {
		s.envState = nv
	}
	if !s.envSeen {
		s.envBase = abs
		// Match the batch pipeline's boundary handling: a peak at the very
		// first correlation lag (abs 0) is eligible with only a right
		// neighbor; elsewhere peak checks start one position in.
		s.peakNext = abs
		if abs != 0 {
			s.peakNext = abs + 1
		}
		s.envSeen = true
	}
	s.env = append(s.env, s.envState)
}

// checkPeaks evaluates Eq. 6 plus the ±δ dominance rule for positions with
// full δ lookahead.
func (s *peakScan) checkPeaks() {
	delta := s.delta
	theta := s.theta
	envEnd := s.envBase + len(s.env)
	for s.peakNext+delta+1 < envEnd {
		t := s.peakNext
		s.peakNext++
		i := t - s.envBase
		if i < 0 || (i < 1 && t != 0) {
			continue
		}
		v := s.env[i]
		if v < theta || s.env[i+1] >= v {
			continue
		}
		if i >= 1 && s.env[i-1] > v {
			continue
		}
		dominant := true
		for j := max(0, i-delta); j <= i+delta && j < len(s.env); j++ {
			if s.env[j] > v {
				dominant = false
				break
			}
		}
		if !dominant {
			continue
		}
		s.cands = append(s.cands, scanPeak{pos: t, val: v})
	}
	// Trim envelope history: only δ of lookbehind is ever needed again.
	if cut := s.peakNext - delta - 2 - s.envBase; cut > 8*delta {
		n := copy(s.env, s.env[cut:])
		s.env = s.env[:n]
		s.envBase += cut
	}
}

// trimZ drops correlation history that can no longer be read.
func (s *peakScan) trimZ() {
	cut := s.nmNext - s.zBase
	if cut <= s.normWindow {
		return
	}
	cut -= s.normWindow // keep the live normalization window
	base := s.zPrefix[cut]
	n := copy(s.z, s.z[cut:])
	s.z = s.z[:n]
	for j := 0; j+cut < len(s.zPrefix); j++ {
		s.zPrefix[j] = s.zPrefix[cut+j] - base
	}
	s.zPrefix = s.zPrefix[:len(s.zPrefix)-cut]
	s.zBase += cut
}

// peakConfirm applies Eq. 7 over full-rate peak positions: a peak is
// confirmed once a companion peak exists one marker interval away (±δ) in
// either direction; expired peaks are dropped. Both detectors share it —
// the two-stage detector refines coarse candidates to full-rate samples
// before they enter, so confirmation semantics are identical.
type peakConfirm struct {
	interval int // marker period L, full-rate samples
	delta    int
	pending  []pendingPeak
	out      []Detection
}

type pendingPeak struct {
	det       Detection
	confirmed bool
	emitted   bool
}

// add registers one peak (full-rate Sample) for confirmation.
func (c *peakConfirm) add(det Detection) {
	c.pending = append(c.pending, pendingPeak{det: det})
}

// confirm re-evaluates Eq. 7 against the given full-rate peak-scan
// frontier, queuing newly confirmed detections on out.
func (c *peakConfirm) confirm(frontier int) {
	L := c.interval
	delta := c.delta
	for i := range c.pending {
		p := &c.pending[i]
		if p.confirmed {
			continue
		}
		if c.hasPeakNear(p.det.Sample-L, delta) || c.hasPeakNear(p.det.Sample+L, delta) {
			p.confirmed = true
		}
	}
	// Emit newly confirmed in order; drop entries that are both expired
	// as candidates and too old to serve as companions.
	cutoff := frontier - 2*(L+delta)
	kept := c.pending[:0]
	for _, p := range c.pending {
		if p.confirmed && !p.emitted {
			c.out = append(c.out, p.det)
			p.emitted = true
		}
		expiredCandidate := !p.confirmed && p.det.Sample+L+delta < frontier
		tooOldCompanion := p.det.Sample < cutoff
		if (p.confirmed || expiredCandidate) && tooOldCompanion {
			continue
		}
		if expiredCandidate && p.det.Sample+2*(L+delta) < frontier {
			continue
		}
		kept = append(kept, p)
	}
	c.pending = kept
}

// hasPeakNear reports whether any pending/confirmed peak lies within
// ±delta of center.
func (c *peakConfirm) hasPeakNear(center, delta int) bool {
	for _, q := range c.pending {
		if q.det.Sample >= center-delta && q.det.Sample <= center+delta {
			return true
		}
	}
	return false
}

// take returns and clears the emitted detections.
func (c *peakConfirm) take() []Detection {
	out := c.out
	c.out = nil
	return out
}

// fullRateDetector is the reference streaming path: Eq. 3 at 48 kHz via
// overlap-save against the full 1 s template, Eq. 4-7 per full-rate lag.
type fullRateDetector struct {
	cfg Config

	// Recording buffer; rec[0] is absolute sample recBase.
	rec     []float64
	recBase int
	zNext   int // next absolute lag to correlate
	corr    *dsp.MarkerCorrelator

	scan peakScan
	conf peakConfirm

	zbuf []float64 // reused overlap-save output block
}

func newFullRateDetector(c Config) *fullRateDetector {
	d := &fullRateDetector{
		cfg:  c,
		scan: peakScan{normWindow: c.NormWindow, beta: c.Beta, theta: c.Theta, delta: c.Delta, powScale: 1},
		conf: peakConfirm{interval: c.IntervalSamples, delta: c.Delta},
	}
	if c.Seq != nil {
		// Overlap-save with a cached marker FFT: ~2 FFTs per Step() lags
		// instead of 3 per chunk plus a re-transformed marker. The
		// conjugate template spectrum is shared across sessions.
		d.corr = dsp.NewMarkerCorrelatorShared(c.Seq.Samples, dsp.NextPow2(2*c.Seq.Len()), uint64(c.Seq.Seed))
		// Pre-size every steady-state buffer so no session allocates on
		// its first correlation block mid-stream (the loadgen ramp showed
		// up as exactly this lazy growth).
		step := d.corr.Step()
		d.zbuf = make([]float64, 0, step)
		d.rec = make([]float64, 0, d.corr.SegmentLen()+2*c.NormWindow)
		d.scan.z = make([]float64, 0, step+c.NormWindow+1)
		d.scan.zPrefix = make([]float64, 0, step+c.NormWindow+2)
		d.scan.env = make([]float64, 0, step+9*c.Delta+2)
		d.scan.cands = make([]scanPeak, 0, 8)
		d.conf.pending = make([]pendingPeak, 0, 8)
	}
	return d
}

func (d *fullRateDetector) feed(samples []float64) []Detection {
	d.rec = append(d.rec, samples...)
	d.correlate(false)
	d.advance()
	return d.conf.take()
}

func (d *fullRateDetector) flush() []Detection {
	d.correlate(true)
	d.advance()
	return d.conf.take()
}

// correlate extends Z as far as the audio allows. Full overlap-save
// blocks carry the bulk of the work (cached marker FFT, ~2 transforms per
// Step() lags); Flush falls back to a one-off correlation for the tail.
func (d *fullRateDetector) correlate(force bool) {
	recEnd := d.recBase + len(d.rec)
	// Process as many full overlap-save blocks as available.
	for d.corr != nil && recEnd-d.zNext >= d.corr.SegmentLen() {
		off := d.zNext - d.recBase
		d.zbuf = d.corr.CorrelateInto(d.zbuf, d.rec[off:off+d.corr.SegmentLen()])
		d.scan.append(d.zNext, d.zbuf)
		d.zNext += len(d.zbuf)
		d.dropCoveredAudio()
	}
	if !force || d.cfg.Seq == nil {
		return
	}
	// Flush: correlate whatever tail remains.
	L := d.cfg.Seq.Len()
	if avail := recEnd - L + 1 - d.zNext; avail > 0 {
		seg := d.rec[d.zNext-d.recBase:]
		tail := dsp.CrossCorrelate(seg, d.cfg.Seq.Samples)
		d.scan.append(d.zNext, tail)
		d.zNext += len(tail)
		d.dropCoveredAudio()
	}
}

// dropCoveredAudio discards recording samples already consumed by the
// correlation frontier (the next block still needs L-1 of overlap).
func (d *fullRateDetector) dropCoveredAudio() {
	if drop := d.zNext - d.recBase; drop > 0 {
		if drop > len(d.rec) {
			drop = len(d.rec)
		}
		n := copy(d.rec, d.rec[drop:])
		d.rec = d.rec[:n]
		d.recBase += drop
	}
}

// advance runs Eq. 4-7 over every position whose lookahead is satisfied.
func (d *fullRateDetector) advance() {
	d.scan.advance()
	for _, p := range d.scan.cands {
		d.conf.add(Detection{Sample: p.pos, Strength: p.val})
	}
	d.scan.cands = d.scan.cands[:0]
	d.conf.confirm(d.scan.peakNext)
}
