package estimator

import (
	"math"

	"ekho/internal/dsp"
)

// IncrementalDetector is the streaming form of the Eq. 3-7 pipeline: audio
// arrives in arbitrary chunks and confirmed detections are emitted as soon
// as the equations' lookaheads allow (about one marker interval after the
// marker starts, dominated by the Eq. 7 companion requirement).
//
// Unlike a windowed re-scan, every correlation lag is computed exactly
// once, cutting the steady-state FFT work by the window/hop ratio (~4x) —
// this is what brings the server-side estimator below the paper's
// 2.5%-of-a-core C++ reference.
//
// Differences from the batch DetectMarkers pipeline are limited to
// causality: the Eq. 4 silence floor uses the running (not whole-file)
// correlation RMS, and a marker's first appearance can only confirm once
// its companion one interval away has been seen.
type IncrementalDetector struct {
	cfg Config

	// Recording buffer; rec[0] is absolute sample recBase.
	rec     []float64
	recBase int
	zNext   int // next absolute lag to correlate
	corr    *dsp.MarkerCorrelator

	// Correlation buffer; z[0] is absolute lag zBase. zPrefix has
	// len(z)+1 entries with zPrefix[k+1]-zPrefix[k] = z[k]^2.
	z       []float64
	zPrefix []float64
	zBase   int
	nmNext  int // next absolute lag to normalize (Eq. 4)
	zSumSq  float64
	zCount  int

	// Envelope state; env[0] is absolute position envBase.
	env      []float64
	envBase  int
	envState float64
	envSeen  bool
	peakNext int // next absolute position to peak-check

	// Peak bookkeeping for Eq. 7.
	pending []pendingPeak
	out     []Detection

	zbuf []float64 // reused overlap-save output block
}

type pendingPeak struct {
	det       Detection
	confirmed bool
	emitted   bool
}

// NewIncrementalDetector returns a streaming detector for the config.
func NewIncrementalDetector(cfg Config) *IncrementalDetector {
	c := cfg.withDefaults()
	d := &IncrementalDetector{cfg: c}
	if c.Seq != nil {
		// Overlap-save with a cached marker FFT: ~2 FFTs per Step() lags
		// instead of 3 per chunk plus a re-transformed marker.
		d.corr = dsp.NewMarkerCorrelator(c.Seq.Samples, dsp.NextPow2(2*c.Seq.Len()))
	}
	return d
}

// Feed appends recording samples and returns newly confirmed detections.
// Detection.Sample is the absolute sample index since the first Feed.
func (d *IncrementalDetector) Feed(samples []float64) []Detection {
	d.rec = append(d.rec, samples...)
	d.correlate(false)
	d.advance()
	out := d.out
	d.out = nil
	return out
}

// Flush processes everything buffered regardless of batch thresholds and
// returns any final detections (peaks whose companions were already seen).
func (d *IncrementalDetector) Flush() []Detection {
	d.correlate(true)
	d.advance()
	out := d.out
	d.out = nil
	return out
}

// correlate extends Z as far as the audio allows. Full overlap-save
// blocks carry the bulk of the work (cached marker FFT, ~2 transforms per
// Step() lags); Flush falls back to a one-off correlation for the tail.
func (d *IncrementalDetector) correlate(force bool) {
	L := d.cfg.Seq.Len()
	recEnd := d.recBase + len(d.rec)
	// Process as many full overlap-save blocks as available.
	for d.corr != nil && recEnd-d.zNext >= d.corr.SegmentLen() {
		off := d.zNext - d.recBase
		d.zbuf = d.corr.CorrelateInto(d.zbuf, d.rec[off:off+d.corr.SegmentLen()])
		d.appendZ(d.zbuf)
		d.dropCoveredAudio()
	}
	if !force {
		return
	}
	// Flush: correlate whatever tail remains.
	if avail := recEnd - L + 1 - d.zNext; avail > 0 {
		seg := d.rec[d.zNext-d.recBase:]
		d.appendZ(dsp.CrossCorrelate(seg, d.cfg.Seq.Samples))
		d.dropCoveredAudio()
	}
}

// appendZ integrates freshly computed correlation lags.
func (d *IncrementalDetector) appendZ(zNew []float64) {
	if len(d.z) == 0 && len(d.zPrefix) == 0 {
		d.zBase = d.zNext
		d.nmNext = d.zNext
		d.zPrefix = append(d.zPrefix, 0)
	}
	for _, v := range zNew {
		d.z = append(d.z, v)
		d.zPrefix = append(d.zPrefix, d.zPrefix[len(d.zPrefix)-1]+v*v)
		d.zSumSq += v * v
		d.zCount++
	}
	d.zNext += len(zNew)
}

// dropCoveredAudio discards recording samples already consumed by the
// correlation frontier (the next block still needs L-1 of overlap).
func (d *IncrementalDetector) dropCoveredAudio() {
	if drop := d.zNext - d.recBase; drop > 0 {
		if drop > len(d.rec) {
			drop = len(d.rec)
		}
		n := copy(d.rec, d.rec[drop:])
		d.rec = d.rec[:n]
		d.recBase += drop
	}
}

// advance runs Eq. 4-7 over every position whose lookahead is satisfied.
func (d *IncrementalDetector) advance() {
	S := d.cfg.NormWindow
	zEnd := d.zBase + len(d.z)
	floor := 0.0
	if d.zCount > 0 {
		floor = 0.02 * math.Sqrt(d.zSumSq/float64(d.zCount))
	}
	for d.nmNext+S <= zEnd {
		i := d.nmNext - d.zBase
		den := math.Sqrt((d.zPrefix[i+S] - d.zPrefix[i]) / float64(S))
		if den < floor {
			den = floor
		}
		var nv float64
		if den > 0 {
			nv = math.Abs(d.z[i]) / den
		}
		d.pushEnvelope(d.nmNext, nv)
		d.nmNext++
	}
	d.trimZ()
	d.checkPeaks()
	d.confirm()
}

// pushEnvelope advances Eq. 5.
func (d *IncrementalDetector) pushEnvelope(abs int, nv float64) {
	d.envState *= d.cfg.Beta
	if nv > d.envState {
		d.envState = nv
	}
	if !d.envSeen {
		d.envBase = abs
		// Match the batch pipeline's boundary handling: a peak at the very
		// first correlation lag (abs 0) is eligible with only a right
		// neighbor; elsewhere peak checks start one position in.
		d.peakNext = abs
		if abs != 0 {
			d.peakNext = abs + 1
		}
		d.envSeen = true
	}
	d.env = append(d.env, d.envState)
}

// checkPeaks evaluates Eq. 6 plus the ±δ dominance rule for positions with
// full δ lookahead.
func (d *IncrementalDetector) checkPeaks() {
	delta := d.cfg.Delta
	theta := d.cfg.Theta
	envEnd := d.envBase + len(d.env)
	for d.peakNext+delta+1 < envEnd {
		t := d.peakNext
		d.peakNext++
		i := t - d.envBase
		if i < 0 || (i < 1 && t != 0) {
			continue
		}
		v := d.env[i]
		if v < theta || d.env[i+1] >= v {
			continue
		}
		if i >= 1 && d.env[i-1] > v {
			continue
		}
		dominant := true
		for j := max(0, i-delta); j <= i+delta && j < len(d.env); j++ {
			if d.env[j] > v {
				dominant = false
				break
			}
		}
		if !dominant {
			continue
		}
		d.pending = append(d.pending, pendingPeak{det: Detection{Sample: t, Strength: v}})
	}
	// Trim envelope history: only δ of lookbehind is ever needed again.
	if cut := d.peakNext - delta - 2 - d.envBase; cut > 8*delta {
		n := copy(d.env, d.env[cut:])
		d.env = d.env[:n]
		d.envBase += cut
	}
}

// confirm applies Eq. 7: a peak is confirmed once a companion peak exists
// one interval away (±δ) in either direction; expired peaks are dropped.
func (d *IncrementalDetector) confirm() {
	L := d.cfg.IntervalSamples
	delta := d.cfg.Delta
	frontier := d.peakNext
	for i := range d.pending {
		p := &d.pending[i]
		if p.confirmed {
			continue
		}
		if d.hasPeakNear(p.det.Sample-L, delta) || d.hasPeakNear(p.det.Sample+L, delta) {
			p.confirmed = true
		}
	}
	// Emit newly confirmed in order; drop entries that are both expired
	// as candidates and too old to serve as companions.
	cutoff := frontier - 2*(L+delta)
	kept := d.pending[:0]
	for _, p := range d.pending {
		if p.confirmed && !p.emitted {
			d.out = append(d.out, p.det)
			p.emitted = true
		}
		expiredCandidate := !p.confirmed && p.det.Sample+L+delta < frontier
		tooOldCompanion := p.det.Sample < cutoff
		if (p.confirmed || expiredCandidate) && tooOldCompanion {
			continue
		}
		if expiredCandidate && p.det.Sample+2*(L+delta) < frontier {
			continue
		}
		kept = append(kept, p)
	}
	d.pending = kept
}

// hasPeakNear reports whether any pending/confirmed peak lies within
// ±delta of center.
func (d *IncrementalDetector) hasPeakNear(center, delta int) bool {
	for _, q := range d.pending {
		if q.det.Sample >= center-delta && q.det.Sample <= center+delta {
			return true
		}
	}
	return false
}

// trimZ drops correlation history that can no longer be read.
func (d *IncrementalDetector) trimZ() {
	cut := d.nmNext - d.zBase
	if cut <= d.cfg.NormWindow {
		return
	}
	cut -= d.cfg.NormWindow // keep the live normalization window
	base := d.zPrefix[cut]
	n := copy(d.z, d.z[cut:])
	d.z = d.z[:n]
	for j := 0; j+cut < len(d.zPrefix); j++ {
		d.zPrefix[j] = d.zPrefix[cut+j] - base
	}
	d.zPrefix = d.zPrefix[:len(d.zPrefix)-cut]
	d.zBase += cut
}
