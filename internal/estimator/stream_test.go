package estimator

import (
	"math"
	"testing"

	"ekho/internal/audio"
	"ekho/internal/gamesynth"
)

func TestStreamerEmitsMeasurementsOnce(t *testing.T) {
	marked, log := makeMarked(t, 8, 0.5, 1)
	s := NewStreamer(Config{Seq: testSeq})
	for _, inj := range log {
		s.AddMarkerTime(float64(inj.StartSample) / audio.SampleRate)
	}
	var all []Measurement
	// Feed 20 ms frames with their capture timestamps.
	for i := 0; i+audio.FrameSamples <= marked.Len(); i += audio.FrameSamples {
		start := float64(i) / audio.SampleRate
		ms := s.AddChat(marked.Samples[i:i+audio.FrameSamples], start)
		all = append(all, ms...)
	}
	if len(all) < len(log)-2 {
		t.Fatalf("measurements %d want >= %d", len(all), len(log)-2)
	}
	// Zero ISD workload: every measurement should be ~0.
	for _, m := range all {
		if math.Abs(m.ISDSeconds) > 0.001 {
			t.Fatalf("ISD %g want ~0", m.ISDSeconds)
		}
	}
	// No duplicate detections.
	for i := 1; i < len(all); i++ {
		if math.Abs(all[i].DetectionTime-all[i-1].DetectionTime) < 0.5 {
			t.Fatalf("duplicate emission at %g and %g", all[i-1].DetectionTime, all[i].DetectionTime)
		}
	}
}

func TestStreamerRecoversShiftedStream(t *testing.T) {
	marked, log := makeMarked(t, 6, 0.5, 3)
	const isdMs = 87.0
	s := NewStreamer(Config{Seq: testSeq})
	for _, inj := range log {
		s.AddMarkerTime(float64(inj.StartSample) / audio.SampleRate)
	}
	// The recording's local clock runs ahead: sample i captured at
	// i/fs + isd, meaning the screen audio arrives isd late.
	var all []Measurement
	for i := 0; i+audio.FrameSamples <= marked.Len(); i += audio.FrameSamples {
		start := float64(i)/audio.SampleRate + isdMs/1000
		all = append(all, s.AddChat(marked.Samples[i:i+audio.FrameSamples], start)...)
	}
	if len(all) == 0 {
		t.Fatal("no measurements")
	}
	for _, m := range all {
		if math.Abs(m.ISDSeconds-isdMs/1000) > 0.001 {
			t.Fatalf("ISD %g want %g", m.ISDSeconds, isdMs/1000)
		}
	}
}

func TestStreamerNoMarkersNoMeasurements(t *testing.T) {
	clip := gamesynth.Generate(gamesynth.Catalog()[5], 5)
	s := NewStreamer(Config{Seq: testSeq})
	s.AddMarkerTime(1.0)
	var all []Measurement
	for i := 0; i+audio.FrameSamples <= clip.Len(); i += audio.FrameSamples {
		all = append(all, s.AddChat(clip.Samples[i:i+audio.FrameSamples], float64(i)/audio.SampleRate)...)
	}
	if len(all) != 0 {
		t.Fatalf("unmarked audio produced %d measurements", len(all))
	}
}

func TestStreamerReset(t *testing.T) {
	marked, log := makeMarked(t, 4, 0.5, 2)
	s := NewStreamer(Config{Seq: testSeq})
	for _, inj := range log {
		s.AddMarkerTime(float64(inj.StartSample) / audio.SampleRate)
	}
	for i := 0; i+audio.FrameSamples <= marked.Len()/2; i += audio.FrameSamples {
		s.AddChat(marked.Samples[i:i+audio.FrameSamples], float64(i)/audio.SampleRate)
	}
	s.Reset()
	if s.started || s.totalSamples != 0 || len(s.markerTimes) != 0 || len(s.held) != 0 {
		t.Fatal("reset should clear state")
	}
}

func TestStreamerBoundsMemory(t *testing.T) {
	marked, _ := makeMarked(t, 10, 0.5, 0)
	s := NewStreamer(Config{Seq: testSeq})
	for i := 0; i+audio.FrameSamples <= marked.Len(); i += audio.FrameSamples {
		s.AddChat(marked.Samples[i:i+audio.FrameSamples], float64(i)/audio.SampleRate)
	}
	// The incremental detector (two-stage by default) must not retain
	// more than one coarse FFT window of audio or a few normalization
	// windows of decimated correlation history.
	d := s.det.ts
	fac := s.cfg.DecimateBy
	if maxRec := (d.corr.SegmentLen()+s.cfg.NormWindow/fac+2*s.cfg.Delta)*fac + 16384; len(d.rec) > maxRec {
		t.Fatalf("recording buffer grew to %d > %d", len(d.rec), maxRec)
	}
	if len(d.scan.z) > 3*s.cfg.NormWindow/fac+2*testSeq.Len()/fac {
		t.Fatalf("correlation buffer grew to %d", len(d.scan.z))
	}
}
