package estimator

import (
	"testing"

	"ekho/internal/audio"
	"ekho/internal/gamesynth"
)

// The two-stage detector's steady state — heterodyne, decimate, coarse
// correlation blocks, peak scan, buffer trims — must run allocation-free:
// the hub feeds hundreds of concurrent sessions frame by frame, and any
// per-frame garbage multiplies across them. Detections themselves may
// allocate (a short emission slice roughly once per second per session);
// marker-free audio has none, so the bound here is exactly zero even
// across coarse FFT block boundaries.
func TestTwoStageFeedSteadyStateAllocs(t *testing.T) {
	clip := gamesynth.Generate(gamesynth.Catalog()[2], 8)
	d := NewIncrementalDetector(Config{Seq: testSeq})
	// Warm past several correlation blocks so every buffer reaches its
	// steady size.
	pos := 0
	feedFrame := func() {
		if pos+audio.FrameSamples > clip.Len() {
			pos = 0
		}
		d.Feed(clip.Samples[pos : pos+audio.FrameSamples])
		pos += audio.FrameSamples
	}
	for i := 0; i < 5*audio.SampleRate/audio.FrameSamples; i++ {
		feedFrame()
	}
	// 200 frames = 4 s of audio: covers two full coarse FFT blocks.
	if allocs := testing.AllocsPerRun(200, feedFrame); allocs > 0 {
		t.Fatalf("steady-state Feed allocates %v times per frame", allocs)
	}
}
