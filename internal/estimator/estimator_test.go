package estimator

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"ekho/internal/acoustic"
	"ekho/internal/audio"
	"ekho/internal/gamesynth"
	"ekho/internal/pn"
)

var testSeq = pn.NewSequence(100, pn.DefaultLength)

// makeMarked builds seconds of game audio with markers at C. As in any
// real capture, the recording continues for a moment after the clip ends
// (1.2 s of silence) so the final marker's correlation and normalization
// windows are fully contained.
func makeMarked(t testing.TB, seconds float64, c float64, clipIdx int) (*audio.Buffer, []pn.Injection) {
	t.Helper()
	clip := gamesynth.Generate(gamesynth.Catalog()[clipIdx], seconds)
	marked, log := pn.Mark(clip, testSeq, c)
	marked.Samples = append(marked.Samples, make([]float64, int(1.2*audio.SampleRate))...)
	return marked, log
}

func TestDetectMarkersCleanSignal(t *testing.T) {
	marked, log := makeMarked(t, 5, 0.5, 0)
	dets := DetectMarkers(marked.Samples, Config{Seq: testSeq})
	if len(dets) != len(log) {
		t.Fatalf("detections %d want %d", len(dets), len(log))
	}
	for i, d := range dets {
		// Normalization asymmetry can skew the peak by a few samples;
		// anything below ~0.1 ms honors the sub-millisecond claim.
		if abs(d.Sample-log[i].StartSample) > 5 {
			t.Fatalf("detection %d at %d want %d", i, d.Sample, log[i].StartSample)
		}
		if d.Strength < 5 {
			t.Fatalf("strength %g below theta", d.Strength)
		}
	}
}

func TestDetectMarkersThroughChannel(t *testing.T) {
	marked, log := makeMarked(t, 5, 0.5, 2)
	ch := acoustic.DefaultChannel()
	recv := ch.Transmit(marked)
	dets := DetectMarkers(recv.Samples, Config{Seq: testSeq})
	if len(dets) < len(log)-1 {
		t.Fatalf("detections %d want >= %d", len(dets), len(log)-1)
	}
	// Channel delay is 6 ms = 288 samples.
	for _, d := range dets {
		// Find nearest injection.
		bestErr := math.MaxInt64
		for _, inj := range log {
			if e := abs(d.Sample - (inj.StartSample + 288)); e < bestErr {
				bestErr = e
			}
		}
		if bestErr > 48 { // within 1 ms
			t.Fatalf("detection offset %d samples from expected", bestErr)
		}
	}
}

func TestNoFalsePositivesWithoutMarkers(t *testing.T) {
	// Clean game audio with NO markers must produce zero detections —
	// spurious peaks cause large estimation errors (paper §4.2).
	for idx := 0; idx < 4; idx++ {
		clip := gamesynth.Generate(gamesynth.Catalog()[idx], 5)
		dets := DetectMarkers(clip.Samples, Config{Seq: testSeq})
		if len(dets) != 0 {
			t.Fatalf("clip %d: %d false detections", idx, len(dets))
		}
	}
}

func TestNoFalsePositivesOnNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	noise := audio.NewBuffer(audio.SampleRate, 5*audio.SampleRate)
	for i := range noise.Samples {
		noise.Samples[i] = rng.NormFloat64() * 0.3
	}
	if dets := DetectMarkers(noise.Samples, Config{Seq: testSeq}); len(dets) != 0 {
		t.Fatalf("%d false detections on white noise", len(dets))
	}
}

func TestDetectShortRecording(t *testing.T) {
	if dets := DetectMarkers(make([]float64, 100), Config{Seq: testSeq}); dets != nil {
		t.Fatal("recording shorter than the marker should give nil")
	}
	if dets := DetectMarkers(make([]float64, 100), Config{}); dets != nil {
		t.Fatal("nil sequence should give nil")
	}
}

func TestSubMillisecondAccuracyProperty(t *testing.T) {
	// Inject a known fractional delay into the recording path; the
	// estimator must recover it to sub-millisecond accuracy (§6.3 claim).
	marked, log := makeMarked(t, 4, 0.5, 4)
	f := func(delaySel uint16) bool {
		delayMs := float64(delaySel%300) - 150 // -150 .. +149 ms
		delaySamples := delayMs / 1000 * audio.SampleRate
		shifted := shiftSignal(marked.Samples, int(delaySamples))
		dets := DetectMarkers(shifted, Config{Seq: testSeq})
		if len(dets) == 0 {
			return false
		}
		// markerLocalTimes: accessory carried markers at their injection
		// times (local clock = recording clock here).
		var mts []float64
		for _, inj := range log {
			mts = append(mts, float64(inj.StartSample)/audio.SampleRate)
		}
		ms := MatchISD(dets, 0, audio.SampleRate, mts, Config{Seq: testSeq})
		if len(ms) == 0 {
			return false
		}
		for _, m := range ms {
			if math.Abs(m.ISDSeconds-float64(int(delaySamples))/audio.SampleRate) > 0.001 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12, Rand: rand.New(rand.NewSource(2))}); err != nil {
		t.Fatal(err)
	}
}

func TestMatchISDNegativeAndPositive(t *testing.T) {
	dets := []Detection{{Sample: 48000, Strength: 10}}
	cfg := Config{Seq: testSeq}
	// Detection at local time 1.0; marker at 1.2 → ISD = -0.2.
	ms := MatchISD(dets, 0, audio.SampleRate, []float64{1.2}, cfg)
	if len(ms) != 1 || math.Abs(ms[0].ISDSeconds-(-0.2)) > 1e-9 {
		t.Fatalf("negative ISD: %+v", ms)
	}
	// Marker at 0.7 → ISD = +0.3.
	ms = MatchISD(dets, 0, audio.SampleRate, []float64{0.7}, cfg)
	if len(ms) != 1 || math.Abs(ms[0].ISDSeconds-0.3) > 1e-9 {
		t.Fatalf("positive ISD: %+v", ms)
	}
}

func TestMatchISDRejectsBeyondMax(t *testing.T) {
	dets := []Detection{{Sample: 0, Strength: 10}}
	cfg := Config{Seq: testSeq}
	ms := MatchISD(dets, 0, audio.SampleRate, []float64{0.8}, cfg)
	if len(ms) != 0 {
		t.Fatalf("|ISD| 0.8 s beyond 0.5 s bound should be rejected: %+v", ms)
	}
	if MatchISD(dets, 0, audio.SampleRate, nil, cfg) != nil {
		t.Fatal("no marker times should give nil")
	}
}

func TestMatchISDPicksNearestMarker(t *testing.T) {
	dets := []Detection{{Sample: 2 * 48000, Strength: 10}} // t=2.0
	cfg := Config{Seq: testSeq}
	ms := MatchISD(dets, 0, audio.SampleRate, []float64{1.0, 1.9, 3.0}, cfg)
	if len(ms) != 1 || math.Abs(ms[0].ISDSeconds-0.1) > 1e-9 {
		t.Fatalf("nearest matching: %+v", ms)
	}
	if ms[0].MarkerTime != 1.9 {
		t.Fatalf("marker time %g", ms[0].MarkerTime)
	}
}

func TestComputeStagesShapes(t *testing.T) {
	marked, log := makeMarked(t, 3, 0.5, 6)
	st := ComputeStages(marked.Samples, Config{Seq: testSeq})
	if len(st.Raw) == 0 || len(st.Normalized) != len(st.Raw) || len(st.Envelope) != len(st.Raw) {
		t.Fatal("stage lengths inconsistent")
	}
	if len(st.Confirmed) != len(log) {
		t.Fatalf("confirmed %d want %d", len(st.Confirmed), len(log))
	}
	// Normalized correlation should have ~unit off-peak std (App. A).
	var sum, sum2 float64
	n := 0
	for i, v := range st.Normalized {
		if nearAnyMarker(i, log) {
			continue
		}
		sum += v
		sum2 += v * v
		n++
	}
	std := math.Sqrt(sum2 / float64(n))
	if std < 0.5 || std > 2.0 {
		t.Fatalf("off-peak normalized RMS %g, want ~1 (folded normal)", std)
	}
	// Degenerate input.
	if st := ComputeStages(nil, Config{Seq: testSeq}); st.Raw != nil {
		t.Fatal("nil recording should give empty stages")
	}
}

func nearAnyMarker(i int, log []pn.Injection) bool {
	for _, inj := range log {
		if abs(i-inj.StartSample) < 2000 {
			return true
		}
	}
	return false
}

func TestEnvelopeDecay(t *testing.T) {
	x := make([]float64, 48000)
	x[0] = 10
	env := envelope(x, 0.99995)
	// After 1 s the envelope of an impulse should decay to ~0.09 of the
	// peak (0.99995^48000 ≈ 0.0907), per the paper's design rationale.
	ratio := env[47999] / env[0]
	if math.Abs(ratio-0.0907) > 0.01 {
		t.Fatalf("decay ratio %g want ~0.09", ratio)
	}
	// Envelope is always >= the signal and monotone between peaks.
	for i := 1; i < len(env); i++ {
		if env[i] > env[i-1] && x[i] == 0 {
			t.Fatal("envelope rose without signal")
		}
	}
}

func TestPickPeaksThreshold(t *testing.T) {
	env := []float64{0, 1, 6, 1, 0, 4, 9, 4, 0}
	peaks := pickPeaks(env, 5)
	if len(peaks) != 2 || peaks[0] != 2 || peaks[1] != 6 {
		t.Fatalf("peaks %v", peaks)
	}
	if got := pickPeaks(env, 100); len(got) != 0 {
		t.Fatalf("high threshold should kill peaks: %v", got)
	}
}

func TestFilterPeaksRequiresCompanion(t *testing.T) {
	cfg := Config{Seq: testSeq}.withDefaults()
	env := make([]float64, 200000)
	// Lone peak: must be rejected.
	env[50000] = 8
	out := filterPeaks([]int{50000}, env, cfg)
	if len(out) != 0 {
		t.Fatalf("lone peak survived: %+v", out)
	}
	// Pair separated by L: both survive.
	env2 := make([]float64, 200000)
	env2[50000], env2[50000+cfg.IntervalSamples] = 8, 7
	out = filterPeaks([]int{50000, 50000 + cfg.IntervalSamples}, env2, cfg)
	if len(out) != 2 {
		t.Fatalf("aligned pair should survive: %+v", out)
	}
	// Pair separated by L+delta+1: rejected.
	env3 := make([]float64, 200000)
	off := cfg.IntervalSamples + cfg.Delta + 1
	env3[50000], env3[50000+off] = 8, 7
	out = filterPeaks([]int{50000, 50000 + off}, env3, cfg)
	if len(out) != 0 {
		t.Fatalf("misaligned pair should be rejected: %+v", out)
	}
}

func TestFilterPeaksDominance(t *testing.T) {
	cfg := Config{Seq: testSeq}.withDefaults()
	env := make([]float64, 200000)
	l := cfg.IntervalSamples
	// Two peaks 10 samples apart; the smaller must be suppressed, and the
	// larger kept (companion at +L).
	env[50000], env[50010] = 8, 9
	env[50010+l] = 7
	out := filterPeaks([]int{50000, 50010, 50010 + l}, env, cfg)
	for _, d := range out {
		if d.Sample == 50000 {
			t.Fatal("dominated peak survived")
		}
	}
	found := false
	for _, d := range out {
		if d.Sample == 50010 {
			found = true
		}
	}
	if !found {
		t.Fatalf("dominant peak missing: %+v", out)
	}
}

func TestNormalizeUnitVariance(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	z := make([]float64, 100000)
	for i := range z {
		z[i] = rng.NormFloat64() * 37 // arbitrary scale
	}
	zn := normalize(z, 4800)
	var sum2 float64
	for _, v := range zn[:90000] {
		sum2 += v * v
	}
	rms := math.Sqrt(sum2 / 90000)
	if math.Abs(rms-1) > 0.05 {
		t.Fatalf("normalized RMS %g want ~1", rms)
	}
	if out := normalize(nil, 100); len(out) != 0 {
		t.Fatal("nil input")
	}
}

func TestEstimateEndToEndOffline(t *testing.T) {
	// Full §6.3-style offline methodology: marked clip through channel,
	// known ground-truth x, timestamps as in the paper.
	marked, log := makeMarked(t, 6, 0.5, 8)
	ch := acoustic.Channel{Mic: acoustic.XboxHeadset, Attenuation: 0.1, AmbientLevel: 0.0005, NoiseSeed: 3}
	const xMs = 123.0 // ground truth ISD
	recv := ch.Transmit(marked)
	shifted := audio.FromSamples(audio.SampleRate, shiftSignal(recv.Samples, int(xMs/1000*audio.SampleRate)))
	var mts []float64
	for _, inj := range log {
		mts = append(mts, float64(inj.StartSample)/audio.SampleRate)
	}
	ms := Estimate(shifted, 0, mts, Config{Seq: testSeq})
	if len(ms) < len(log)-1 {
		t.Fatalf("measurements %d want >= %d", len(ms), len(log)-1)
	}
	for _, m := range ms {
		if math.Abs(m.ISDSeconds-xMs/1000) > 0.001 {
			t.Fatalf("ISD %g want %g ± 1ms", m.ISDSeconds, xMs/1000)
		}
	}
}

func shiftSignal(x []float64, shift int) []float64 {
	out := make([]float64, len(x))
	for i := range out {
		src := i - shift
		if src >= 0 && src < len(x) {
			out[i] = x[src]
		}
	}
	return out
}

func abs(a int) int {
	if a < 0 {
		return -a
	}
	return a
}

func BenchmarkDetectMarkers5s(b *testing.B) {
	clip := gamesynth.Generate(gamesynth.Catalog()[0], 5)
	marked, _ := pn.Mark(clip, testSeq, 0.5)
	cfg := Config{Seq: testSeq}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		DetectMarkers(marked.Samples, cfg)
	}
}

func TestMatchISDOnePerMarkerProperty(t *testing.T) {
	// Property: no matter how many detections cluster around a marker,
	// at most one measurement per marker is emitted, and it prefers the
	// earliest strong arrival (direct path over echo).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := Config{Seq: testSeq}
		markers := []float64{1, 2, 3}
		var dets []Detection
		for _, mt := range markers {
			n := 1 + rng.Intn(4)
			for k := 0; k < n; k++ {
				offset := rng.Float64()*0.2 - 0.1
				dets = append(dets, Detection{
					Sample:   int((mt + offset) * audio.SampleRate),
					Strength: 5 + rng.Float64()*40,
				})
			}
		}
		ms := MatchISD(dets, 0, audio.SampleRate, markers, cfg)
		if len(ms) > len(markers) {
			return false
		}
		seen := map[float64]bool{}
		for _, m := range ms {
			if seen[m.MarkerTime] {
				return false
			}
			seen[m.MarkerTime] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestMatchISDPrefersDirectPathOverEcho(t *testing.T) {
	cfg := Config{Seq: testSeq}
	// Direct path at +6 ms (strength 20), echo at +14 ms (strength 28).
	dets := []Detection{
		{Sample: int(1.006 * audio.SampleRate), Strength: 20},
		{Sample: int(1.014 * audio.SampleRate), Strength: 28},
	}
	ms := MatchISD(dets, 0, audio.SampleRate, []float64{1.0}, cfg)
	if len(ms) != 1 {
		t.Fatalf("measurements %d", len(ms))
	}
	if math.Abs(ms[0].ISDSeconds-0.006) > 1e-6 {
		t.Fatalf("picked %.4f, want the earlier direct path at 0.006", ms[0].ISDSeconds)
	}
	// But a dominant late peak (early one is noise-weak) wins.
	dets = []Detection{
		{Sample: int(1.006 * audio.SampleRate), Strength: 6},
		{Sample: int(1.014 * audio.SampleRate), Strength: 40},
	}
	ms = MatchISD(dets, 0, audio.SampleRate, []float64{1.0}, cfg)
	if len(ms) != 1 || math.Abs(ms[0].ISDSeconds-0.014) > 1e-6 {
		t.Fatalf("weak early peak should lose: %+v", ms)
	}
}
