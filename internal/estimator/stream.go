package estimator

import (
	"math"
	"sort"

	"ekho/internal/audio"
)

// Streamer is the incremental form of the estimator used by Ekho-Server:
// chat-audio frames and accessory marker timestamps arrive continuously
// and measurements are emitted once per detected marker.
//
// Internally it runs the IncrementalDetector (every correlation lag is
// computed exactly once) and applies the §4.3 matching with a short
// hold-back so that, when a strong room reflection is detected alongside
// the direct path, the per-marker arrival selection (see betterArrival)
// can still pick the direct path.
//
// The paper notes Ekho-Estimator needs 2-5 seconds of recording before a
// robust ISD is available; the detector's Eq. 7 companion wait (one marker
// interval) plus the hold-back put this implementation at the low end of
// that range.
type Streamer struct {
	cfg Config
	det *IncrementalDetector

	rate         int
	startLocal   float64 // local time of the first chat sample
	started      bool
	totalSamples int

	markerTimes []float64

	// held holds the best candidate measurement per marker during the
	// echo hold-back window; done records markers already emitted.
	held map[float64]heldMeasurement
	done map[float64]bool
}

type heldMeasurement struct {
	m Measurement
	// flushAfter is the absolute sample position after which the held
	// measurement is final.
	flushAfter int
}

// holdBackSamples covers the latest plausible room reflection (~120 ms in
// the simulated rooms) plus margin.
const holdBackSamples = 18000 // 375 ms

// NewStreamer returns a streaming estimator.
func NewStreamer(cfg Config) *Streamer {
	c := cfg.withDefaults()
	return &Streamer{
		cfg:  c,
		det:  NewIncrementalDetector(c),
		rate: audio.SampleRate,
		held: make(map[float64]heldMeasurement),
		done: make(map[float64]bool),
	}
}

// AddMarkerTime records that the accessory stream carried a marker at the
// given local playback time (from Ekho-Compensator's frame-ID log joined
// with the client's playback timestamps).
func (s *Streamer) AddMarkerTime(localTime float64) {
	s.markerTimes = append(s.markerTimes, localTime)
	sort.Float64s(s.markerTimes)
	// Trim history far behind the audio frontier to bound memory.
	cutoff := s.frontierLocal() - 10
	trim := 0
	for trim < len(s.markerTimes) && s.markerTimes[trim] < cutoff {
		trim++
	}
	if trim > 0 {
		n := copy(s.markerTimes, s.markerTimes[trim:])
		s.markerTimes = s.markerTimes[:n]
	}
}

// frontierLocal is the local time of the newest chat sample.
func (s *Streamer) frontierLocal() float64 {
	return s.startLocal + float64(s.totalSamples)/float64(s.rate)
}

// AddChat appends captured chat-audio samples whose first sample was taken
// at local time startLocal. Frames must arrive in order; the caller fills
// uplink loss with concealment so the timeline stays contiguous. Any
// measurements that became final are returned.
func (s *Streamer) AddChat(samples []float64, startLocal float64) []Measurement {
	if !s.started {
		s.startLocal = startLocal
		s.started = true
	}
	dets := s.det.Feed(samples)
	s.totalSamples += len(samples)
	for _, det := range dets {
		s.offer(det)
	}
	return s.flush()
}

// offer matches one detection against the marker schedule and keeps the
// best arrival per marker.
func (s *Streamer) offer(det Detection) {
	if len(s.markerTimes) == 0 {
		return
	}
	td := s.startLocal + float64(det.Sample)/float64(s.rate)
	i := sort.SearchFloat64s(s.markerTimes, td)
	best := math.Inf(1)
	bestTime := 0.0
	for _, j := range []int{i - 1, i} {
		if j < 0 || j >= len(s.markerTimes) {
			continue
		}
		if diff := td - s.markerTimes[j]; math.Abs(diff) < math.Abs(best) {
			best = diff
			bestTime = s.markerTimes[j]
		}
	}
	if math.Abs(best) > s.cfg.MaxISDSeconds || s.done[bestTime] {
		return
	}
	m := Measurement{ISDSeconds: best, DetectionTime: td, MarkerTime: bestTime, Strength: det.Strength}
	if prev, ok := s.held[bestTime]; !ok || betterArrival(m, prev.m) {
		s.held[bestTime] = heldMeasurement{m: m, flushAfter: det.Sample + holdBackSamples}
	}
}

// flush finalizes held measurements whose hold-back has elapsed.
func (s *Streamer) flush() []Measurement {
	var out []Measurement
	for mt, h := range s.held {
		if s.totalSamples > h.flushAfter {
			out = append(out, h.m)
			s.done[mt] = true
			delete(s.held, mt)
		}
	}
	// Bound the done set: forget markers far behind the frontier.
	if len(s.done) > 64 {
		cutoff := s.frontierLocal() - 10
		for mt := range s.done {
			if mt < cutoff {
				delete(s.done, mt)
			}
		}
	}
	// The sort (and its closure) only runs when something was emitted, so
	// the no-detection steady state stays allocation-free.
	if len(out) > 1 {
		sort.Slice(out, func(i, j int) bool { return out[i].DetectionTime < out[j].DetectionTime })
	}
	return out
}

// Reset clears all buffered audio and marker history (used when stale
// measurements must be discarded, e.g. after a long uplink outage).
func (s *Streamer) Reset() {
	s.det = NewIncrementalDetector(s.cfg)
	s.markerTimes = nil
	s.started = false
	s.totalSamples = 0
	s.held = make(map[float64]heldMeasurement)
	s.done = make(map[float64]bool)
}
