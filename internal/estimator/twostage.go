package estimator

import (
	"math"
	"sync"

	"ekho/internal/audio"
	"ekho/internal/dsp"
	"ekho/internal/pn"
)

// Two-stage (coarse-to-fine) marker detection.
//
// Ekho's markers occupy 6-12 kHz only (pn.BandLowHz..BandHighHz), yet the
// reference detector correlates at the full 48 kHz rate against a 48000-
// sample template. The two-stage detector exploits the band-limited
// structure:
//
// Coarse stage. The mic stream is multiplied by e^{-jω0·n} (ω0 at the
// 9 kHz band center — exact, the oscillator period is 16 samples), which
// translates the marker band to complex baseband ±3 kHz. A cascade of
// half-band polyphase decimators brings the rate down by D (default 8, to
// 6 kHz), and an overlap-save ComplexCorrelator correlates against the
// identically-processed template — D× fewer lags against a D× shorter
// template. Writing the full-rate analytic correlation as C(t), the
// correlation of the mixed signals satisfies
//
//	C_dec[τ] = e^{-jω0·D·τ} · A(τ),   A(τ) ≈ C(τ·D)/D (filter-shaped),
//
// because both legs pass through the same filter chain: group delays
// cancel and coarse lag τ maps to full-rate sample τ·D exactly. |C_dec| is
// carrier-free, so the Eq. 4-7 peak logic runs on it unchanged with
// parameters scaled to the lag rate: S/D, β^D, ⌈δ/D⌉ — and a ½ weight on
// squared magnitudes in the power terms, which lands the coarse normalized
// envelope in the same σ units as the full-rate Z* (a narrowband real
// signal with envelope |C| has mean square |C|²/2), so θ transfers.
//
// Fine stage. A coarse candidate localizes the marker to ±(D/2) samples,
// plus up to a ~carrier half-cycle of skew between the envelope max and
// the real correlation's argmax. The refiner scores a contiguous span of
// lags around τ·D with exact 48 kHz template dot products under the same
// Eq. 4 normalization as the reference (den's baseline comes from the
// de-rotated baseband, calibrated into full-rate units; den *differences*
// between span lags come from the exact dots), growing the span whenever
// the argmax rides its edge — the sample-accurate position the
// compensator needs, at the cost of a dozen-odd 48000-MAC dots per
// detection instead of any full-rate streaming work. See refine for the
// numerics.
//
// Confirmation (Eq. 7 companion pairing) runs on the refined full-rate
// positions via the shared peakConfirm, so emission semantics match the
// reference exactly.

// coarseThetaScale relaxes the Eq. 6 threshold at the coarse stage. The
// decimated envelope reads a few percent low against the full-rate Z*
// (band-edge loss through the decimation chain), so the coarse scan
// admits candidates slightly under θ and the fine stage re-applies the
// threshold to its exact, calibrated score — threshold decisions then
// track the reference's rather than the coarse approximation's.
const coarseThetaScale = 0.9

// interpHalfWidth is the windowed-sinc half-width (taps per side) for
// reconstructing the baseband correlation between decimated lags.
const interpHalfWidth = 8

// twoStageDetector implements the coarse-to-fine pipeline behind
// IncrementalDetector.
type twoStageDetector struct {
	cfg  Config
	fac  int // decimation factor D
	refR int // fine-stage half-width, full-rate samples
	mdec int // decimated template length

	// Full-rate audio retained for the fine stage; rec[0] is absolute
	// sample recBase.
	rec     []float64
	recBase int

	osc   *dsp.QuadOsc // band-center mix-down oscillator
	derot *dsp.QuadOsc // carrier at the decimated rate: e^{-jω0·D·τ}

	// Fused front-end for even factors ≥ 4: a modulated ÷(D/2) stage
	// reading the real stream directly, then a half-band ÷2. Odd factors
	// fall back to the generic mix-down cascade in stages.
	fastA  *dsp.BandDecimator
	fastB  *dsp.HalfBandDecimator
	stages []*dsp.Decimator // fallback ÷2 half-band cascade (plus odd residue)
	mixBuf []complex128     // per-feed scratch, one per chain link
	stgBuf [][]complex128

	// Decimated baseband; bb[0] is absolute decimated index bbBase.
	bb     []complex128
	bbBase int
	cNext  int // next absolute decimated lag to correlate
	corr   *dsp.ComplexCorrelator
	wdec   []complex128 // decimated template (shared, immutable)
	magBuf []float64

	// De-rotated correlation A[τ] retained around the peak-scan frontier
	// for the fine stage's interpolation; cz[0] is absolute lag czBase.
	cz     []complex128
	czBase int

	// kern[p] interpolates A at fractional position m + p/D.
	kern [][]float64

	scan coarseScan
	conf peakConfirm

	refZt   []float64 // reconstructed Z̃ over the refinement window
	refPz   []float64 // prefix sums of Z̃²
	refBp   []float64 // prefix sums of the coarse block power (fac/2)·|A|²
	refEx   []float64 // exact Z cache across the refinement window
	refExOk []bool    // which refEx entries hold a computed dot

	// Cumulative unit calibration between exact Z and the reconstruction,
	// accumulated at phase-0 lags only (where Z̃ carries no interpolation
	// error): gEx/gRec estimates the constant A-unit → Z-unit power ratio.
	gEx, gRec float64
}

// coarseKey identifies a decimated template: sequence seed and length plus
// the decimation factor. A checksum of the source samples guards against
// seed collisions (see dsp's template-spectrum cache for the same
// contract).
type coarseKey struct {
	seed   int64
	length int
	fac    int
}

type coarseEntry struct {
	sum  uint64
	wdec []complex128
}

var coarseTemplateCache sync.Map // coarseKey -> *coarseEntry

// bandCenterHz is the heterodyne frequency: the middle of the marker band.
func bandCenterHz() int { return int((pn.BandLowHz + pn.BandHighHz) / 2) }

// decimStages designs the decimation cascade for factor d at the given
// input rate: ÷2 stages (half-band: cutoff at a quarter of the stage's
// input rate, every second tap exactly zero) plus one generic stage for an
// odd residue. Early stages only protect the full ±bandHalf baseband from
// aliases and stay short; the final stage, whose output Nyquist may sit
// inside the band, rolls the outer edge off between 0.85 and 1.15 of the
// output Nyquist — the few-percent band-energy loss is far below the
// marker's ~39 dB correlation processing gain.
func decimStages(d int, rate, bandHalf float64) []*dsp.Decimator {
	var out []*dsp.Decimator
	r := rate
	for d > 1 {
		m := 2
		if d%2 != 0 {
			m = d
		}
		rOut := r / float64(m)
		pass := math.Min(bandHalf, 0.85*rOut/2)
		stop := rOut - pass
		taps := int(math.Ceil(3.3*r/(stop-pass))) + 2
		out = append(out, dsp.NewDecimator(m, dsp.LowPass((pass+stop)/2, r, taps).Taps))
		r = rOut
		d /= m
	}
	return out
}

// fastFrontEnd designs the fused two-link chain for even factors ≥ 4: a
// BandDecimator folding the band-center mix into the ÷(D/2) stage (its
// stop band at the first alias fold, rOut − pass) and a half-band ÷2 to
// the final rate, with the same edge placement decimStages uses — so the
// composite passband matches the cascade it replaces to within design
// ripple. Returns nils when the factor has no even split.
func fastFrontEnd(fac, rate int, bandHalf float64) (*dsp.BandDecimator, *dsp.HalfBandDecimator) {
	if fac%2 != 0 || fac < 4 {
		return nil, nil
	}
	m1 := fac / 2
	r1 := float64(rate) / float64(m1)
	pass1 := math.Min(bandHalf, 0.85*r1/2)
	stop1 := r1 - pass1
	// The first link tolerates a transition running ~15% past the fold
	// edge: only the outermost slice of the folded image lands in band,
	// and it arrives tens of dB down — the same early-stage relaxation
	// decimStages applies to its opening ÷2 (whose folds onto the band
	// carry comparable residuals). The fine stage's exact dots are
	// unaffected; only the coarse gate sees the slightly higher noise
	// floor, inside the coarseThetaScale margin.
	taps1 := int(math.Ceil(2.6 * float64(rate) / (stop1 - pass1)))
	a := dsp.NewBandDecimator(bandCenterHz(), rate, m1,
		dsp.LowPass((pass1+stop1)/2, float64(rate), taps1).Taps)
	r2 := r1 / 2
	// The final link runs at the critical rate, so its transition band is
	// the tightest in the chain and dominates the front-end's tap budget;
	// 0.75·Nyquist instead of decimStages' 0.85 trades a slightly earlier
	// roll-off (the template sees the identical response, so correlation
	// shape is unaffected) for ~40% fewer wing taps.
	pass2 := math.Min(bandHalf, 0.75*r2/2)
	stop2 := r2 - pass2
	taps2 := int(math.Ceil(3.3 * r1 / (stop2 - pass2)))
	b := dsp.NewHalfBandDecimator(dsp.LowPass((pass2+stop2)/2, r1, taps2).Taps)
	return a, b
}

// coarseTemplateFor returns the decimated complex template for seq at
// factor fac, shared across sessions via the package cache.
func coarseTemplateFor(seq *pn.Sequence, fac, rate int) []complex128 {
	key := coarseKey{seed: seq.Seed, length: seq.Len(), fac: fac}
	sum := dsp.ChecksumFloats(seq.Samples)
	if e, ok := coarseTemplateCache.Load(key); ok {
		ent := e.(*coarseEntry)
		if ent.sum == sum {
			return ent.wdec
		}
		return buildCoarseTemplate(seq, fac, rate)
	}
	ent := &coarseEntry{sum: sum, wdec: buildCoarseTemplate(seq, fac, rate)}
	if prev, loaded := coarseTemplateCache.LoadOrStore(key, ent); loaded {
		got := prev.(*coarseEntry)
		if got.sum == sum {
			return got.wdec
		}
	}
	return ent.wdec
}

func buildCoarseTemplate(seq *pn.Sequence, fac, rate int) []complex128 {
	bandHalf := (pn.BandHighHz - pn.BandLowHz) / 2
	var w []complex128
	// The template must pass through a chain identical to the stream's so
	// the group delays cancel; pick the same variant the detector will use.
	if a, b := fastFrontEnd(fac, rate, bandHalf); a != nil {
		mid := a.Process(make([]complex128, 0, len(seq.Samples)/a.Factor()+1), seq.Samples)
		w = b.Process(make([]complex128, 0, len(mid)/2+1), mid)
	} else {
		osc := dsp.NewQuadOsc(bandCenterHz(), rate)
		stages := decimStages(fac, float64(rate), bandHalf)
		w = dsp.DecimateChain(seq.Samples, osc, stages...)
	}
	mdec := (seq.Len() + fac - 1) / fac
	if len(w) > mdec {
		w = w[:mdec]
	}
	return w
}

// interpKernel tabulates a windowed-sinc interpolator for the fac
// fractional phases p/fac, each row spanning offsets
// [-interpHalfWidth+1, interpHalfWidth] and normalized to unit DC gain.
// Phase 0 is the exact identity.
func interpKernel(fac int) [][]float64 {
	h := interpHalfWidth
	kern := make([][]float64, fac)
	for p := range kern {
		row := make([]float64, 2*h)
		frac := float64(p) / float64(fac)
		var sum float64
		for k := range row {
			x := float64(k-(h-1)) - frac
			var v float64
			if x == 0 {
				v = 1
			} else {
				v = math.Sin(math.Pi*x) / (math.Pi * x)
			}
			// Hamming window over the kernel span keeps the
			// near-Nyquist response usable at 16 taps.
			v *= 0.54 + 0.46*math.Cos(math.Pi*x/float64(h))
			row[k] = v
			sum += v
		}
		for k := range row {
			row[k] /= sum
		}
		kern[p] = row
	}
	return kern
}

func newTwoStageDetector(c Config) *twoStageDetector {
	fac := c.DecimateBy
	L := c.Seq.Len()
	mdec := (L + fac - 1) / fac
	sDec := c.NormWindow / fac
	if sDec < 1 {
		sDec = 1
	}
	dDec := (c.Delta + fac - 1) / fac
	rate := audio.SampleRate
	bandHalf := (pn.BandHighHz - pn.BandLowHz) / 2
	d := &twoStageDetector{
		cfg:   c,
		fac:   fac,
		refR:  c.RefineRadius,
		mdec:  mdec,
		osc:   dsp.NewQuadOsc(bandCenterHz(), rate),
		derot: dsp.NewQuadOsc(bandCenterHz()*fac, rate),
		wdec:  coarseTemplateFor(c.Seq, fac, rate),
		kern:  interpKernel(fac),
		scan: coarseScan{
			normWindow: sDec,
			beta2:      math.Pow(c.Beta, float64(2*fac)),
			theta2:     (c.Theta * coarseThetaScale) * (c.Theta * coarseThetaScale),
			delta:      dDec,
			powScale:   0.5,
		},
		conf: peakConfirm{interval: c.IntervalSamples, delta: c.Delta},
	}
	d.fastA, d.fastB = fastFrontEnd(fac, rate, bandHalf)
	if d.fastA == nil {
		d.stages = decimStages(fac, float64(rate), bandHalf)
	}
	d.corr = dsp.NewComplexCorrelatorShared(d.wdec, dsp.NextPow2(2*mdec), coarseTag(c.Seq.Seed, fac))
	// Pre-size every steady-state buffer (see newFullRateDetector): the
	// hub admits sessions mid-ramp, and lazy growth on the first
	// correlation block would show up as allocation noise there.
	step := d.corr.Step()
	n := d.corr.SegmentLen()
	d.magBuf = make([]float64, 0, step)
	d.bb = make([]complex128, 0, n+4096)
	d.cz = make([]complex128, 0, step+4*(dDec+interpHalfWidth))
	d.rec = make([]float64, 0, (n+sDec+dDec+8)*fac+2*d.refR)
	d.scan.z = make([]float64, 0, step+sDec+1)
	d.scan.zPrefix = make([]float64, 0, step+sDec+2)
	d.scan.env = make([]float64, 0, step+9*dDec+2)
	d.scan.cands = make([]scanPeak, 0, 8)
	d.conf.pending = make([]pendingPeak, 0, 8)
	d.refZt = make([]float64, 0, 4*c.RefineRadius+2*fac+8)
	d.refPz = make([]float64, 0, 4*c.RefineRadius+2*fac+9)
	d.refBp = make([]float64, 0, sDec+8)
	d.refEx = make([]float64, 0, 2*c.RefineRadius+2)
	d.refExOk = make([]bool, 0, 2*c.RefineRadius+2)
	d.mixBuf = make([]complex128, 0, 2048)
	d.stgBuf = make([][]complex128, len(d.stages))
	for i := range d.stgBuf {
		d.stgBuf[i] = make([]complex128, 0, 2048)
	}
	return d
}

// coarseTag keys the shared decimated-template spectrum: the PN seed in
// the low bits, the decimation factor up high (full-rate spectra use the
// bare seed as their tag; the kind byte in the dsp cache also separates
// real from complex entries).
func coarseTag(seed int64, fac int) uint64 {
	return uint64(seed) ^ uint64(fac)<<56
}

func (d *twoStageDetector) feed(samples []float64) []Detection {
	d.rec = append(d.rec, samples...)
	// Heterodyne and decimate the new audio down to complex baseband.
	if d.fastA != nil {
		// Fused chain: the modulated ÷(D/2) stage reads the real samples
		// directly — no full-rate complex stream is ever materialized.
		mid := d.fastA.Process(d.mixBuf[:0], samples)
		d.mixBuf = mid[:0]
		d.bb = d.fastB.Process(d.bb, mid)
	} else {
		cur := d.osc.MixDown(d.mixBuf[:0], samples)
		d.mixBuf = cur[:0]
		for i, st := range d.stages {
			if i == len(d.stages)-1 {
				d.bb = st.Process(d.bb, cur)
				break
			}
			out := st.Process(d.stgBuf[i][:0], cur)
			d.stgBuf[i] = out[:0]
			cur = out
		}
		if len(d.stages) == 0 {
			d.bb = append(d.bb, cur...)
		}
	}
	d.correlate(false)
	d.advance()
	return d.conf.take()
}

func (d *twoStageDetector) flush() []Detection {
	d.correlate(true)
	d.advance()
	return d.conf.take()
}

// correlate extends the coarse correlation as far as the decimated stream
// allows; Flush computes the sub-block tail directly.
func (d *twoStageDetector) correlate(force bool) {
	for {
		bbEnd := d.bbBase + len(d.bb)
		if bbEnd-d.cNext < d.corr.SegmentLen() {
			break
		}
		off := d.cNext - d.bbBase
		d.appendC(d.corr.Correlate(d.bb[off : off+d.corr.SegmentLen()]))
		d.dropCoveredBB()
	}
	if !force {
		return
	}
	bbEnd := d.bbBase + len(d.bb)
	if avail := bbEnd - d.mdec + 1 - d.cNext; avail > 0 {
		tail := dsp.CrossCorrelateComplex(d.bb[d.cNext-d.bbBase:], d.wdec)
		d.appendC(tail)
		d.dropCoveredBB()
	}
}

// appendC integrates freshly correlated coarse lags: the carrier
// e^{-jω0·D·τ} is removed (A[τ] is what the fine stage interpolates) and
// the squared magnitudes feed the squared-domain Eq. 4-6 scan — the
// de-rotation is unit-modulus, so |A| = |C_dec| and the scan input never
// needs a root.
func (d *twoStageDetector) appendC(c []complex128) {
	d.magBuf = d.magBuf[:0]
	if d.derot.Period() <= 2 {
		// ω0·D lands on 0 or π (it does for Ekho's 9 kHz center at D=8):
		// the de-rotation degenerates to a sign the magnitudes never see.
		for i, v := range c {
			a := v
			if real(d.derot.Factor(d.cNext+i)) < 0 {
				a = -v
			}
			d.cz = append(d.cz, a)
			d.magBuf = append(d.magBuf, real(v)*real(v)+imag(v)*imag(v))
		}
	} else {
		for i, v := range c {
			// A[τ] = C_dec[τ]·e^{+jω0·D·τ} = C_dec[τ]·conj(Factor(τ)).
			f := d.derot.Factor(d.cNext + i)
			a := complex(real(v)*real(f)+imag(v)*imag(f), imag(v)*real(f)-real(v)*imag(f))
			d.cz = append(d.cz, a)
			d.magBuf = append(d.magBuf, real(v)*real(v)+imag(v)*imag(v))
		}
	}
	d.scan.append(d.cNext, d.magBuf)
	d.cNext += len(c)
}

// dropCoveredBB discards decimated samples already consumed by the coarse
// frontier (the next block still needs the template-length overlap).
func (d *twoStageDetector) dropCoveredBB() {
	if drop := d.cNext - d.bbBase; drop > 0 {
		if drop > len(d.bb) {
			drop = len(d.bb)
		}
		n := copy(d.bb, d.bb[drop:])
		d.bb = d.bb[:n]
		d.bbBase += drop
	}
}

// advance runs the scaled Eq. 4-6 scan, refines each coarse candidate to
// a full-rate sample and confirms via the shared Eq. 7 logic.
func (d *twoStageDetector) advance() {
	d.scan.advance()
	for _, p := range d.scan.cands {
		if det, ok := d.refine(p); ok {
			d.conf.add(det)
		}
	}
	d.scan.cands = d.scan.cands[:0]
	d.conf.confirm(d.scan.peakNext * d.fac)
	d.trimCZ()
	d.trimRec()
}

// reconstructA interpolates the de-rotated baseband correlation Ã at the
// full-rate lag t from the retained decimated samples.
func (d *twoStageDetector) reconstructA(t int) (ar, ai float64) {
	m := t / d.fac
	ph := t - m*d.fac
	row := d.kern[ph]
	base := m - (interpHalfWidth - 1) - d.czBase
	for k, kv := range row {
		j := base + k
		if j < 0 || j >= len(d.cz) {
			continue
		}
		a := d.cz[j]
		ar += real(a) * kv
		ai += imag(a) * kv
	}
	return ar, ai
}

// blockPower returns the coarse estimate of the correlation power summed
// over one decimated block: Σ_{k=τD}^{(τ+1)D-1} Z[k]² ≈ (D/2)·|A[τ]|². The
// second-harmonic term cancels exactly over a block (2ω0·D spans whole
// turns), so the estimate only errs by A's variation within the block.
func (d *twoStageDetector) blockPower(tau int) float64 {
	j := tau - d.czBase
	if j < 0 {
		j = 0
	}
	if j >= len(d.cz) {
		j = len(d.cz) - 1
	}
	a := d.cz[j]
	return 0.5 * float64(d.fac) * (real(a)*real(a) + imag(a)*imag(a))
}

// refine recovers the sample-accurate marker position for one coarse
// candidate. The full-rate detector's peak is the argmax of the
// *normalized* correlation Z*[t] = |Z[t]|/den[t] (Eq. 4), and den's
// trailing window [t, t+S) drops steeply as its left edge crosses the
// peak cluster — the argmax typically sits a half carrier cycle after the
// raw |Z| maximum, so matching the reference to ±1 sample requires
// scoring candidates with the same normalization.
//
// The baseband is critically sampled (±3 kHz at rate·D⁻¹ = 6 kHz), so a
// per-sample reconstruction Z̃[t] from the decimated correlation is only
// reliable at phase-0 lags — between them the interpolation error runs to
// tens of percent and cannot rank carrier extrema. The refiner therefore
// scores a small *contiguous* span of lags around the coarse position with
// exact 48 kHz template dots: numerators are exact, and the den drop
// between any two span lags — the decisive quantity — telescopes out of
// the exact span power alone. The reconstruction supplies only the den
// baseline (per-sample Z̃² to the span's right edge, then (D/2)·|A[τ]|²
// block sums), bridged into full-rate units by a per-call least-squares
// calibration over the span; any residual baseline error is common to
// every candidate and cancels to first order in the score ratios. If the
// argmax lands at a span edge the span grows and rescoring repeats (cached
// dots are not recomputed), so the winner is always interior or pinned at
// the window bound.
//
// The refined score is the full-rate Z* estimate in σ units, so the
// Eq. 6 threshold is re-applied here exactly where the reference applies
// it; the coarse stage's relaxed gate only selects which lags get
// refined.
func (d *twoStageDetector) refine(p scanPeak) (Detection, bool) {
	t0 := p.pos * d.fac
	lo := t0 - d.refR
	if lo < 0 {
		lo = 0
	}
	hi := t0 + d.refR
	L := d.cfg.Seq.Len()
	recEnd := d.recBase + len(d.rec)
	if m := recEnd - L; hi > m {
		hi = m
	}
	if lo < d.recBase {
		lo = d.recBase
	}
	if hi < lo {
		return Detection{Sample: t0, Strength: p.val}, p.val >= d.cfg.Theta
	}
	// Reconstruct Z̃ from lo through the end of the block containing
	// hi+fac, so every candidate's per-sample head [t, rEnd) is covered.
	mHead := hi/d.fac + 2
	rEnd := mHead * d.fac
	d.refZt = d.refZt[:0]
	d.refPz = append(d.refPz[:0], 0)
	for t := lo; t < rEnd; t++ {
		ar, ai := d.reconstructA(t)
		f := d.osc.Factor(t)
		// Z̃[t] = Re{conj(Factor(t))·Ã} — the exact carrier at t.
		zt := real(f)*ar + imag(f)*ai
		d.refZt = append(d.refZt, zt)
		d.refPz = append(d.refPz, d.refPz[len(d.refPz)-1]+zt*zt)
	}
	// Block-power prefix over the coarse lags covering the rest of the
	// normalization window, [mHead, mHead + S/D + 1].
	S := d.cfg.NormWindow
	nb := S/d.fac + 2
	d.refBp = append(d.refBp[:0], 0)
	for j := 0; j < nb; j++ {
		d.refBp = append(d.refBp, d.refBp[len(d.refBp)-1]+d.blockPower(mHead+j))
	}
	// denSum(t) = S·den²[t]: per-sample head to rEnd, whole blocks
	// beyond, and a proportional share of the final straddled block
	// (keeps den smooth in t rather than quantized to block boundaries).
	denSum := func(t int) float64 {
		sum := d.refPz[rEnd-lo] - d.refPz[t-lo]
		remain := S - (rEnd - t)
		whole := remain / d.fac
		if whole > nb-1 {
			whole = nb - 1
		}
		sum += d.refBp[whole]
		if fr := remain - whole*d.fac; fr > 0 && whole < nb {
			sum += float64(fr) / float64(d.fac) * (d.refBp[whole+1] - d.refBp[whole])
		}
		return sum
	}
	// Exact dot cache across the window; entries computed on demand as the
	// span grows.
	w := d.cfg.Seq.Samples
	win := hi - lo + 1
	d.refEx = d.refEx[:0]
	d.refExOk = d.refExOk[:0]
	for i := 0; i < win; i++ {
		d.refEx = append(d.refEx, 0)
		d.refExOk = append(d.refExOk, false)
	}
	exact := func(t int) float64 {
		i := t - lo
		if !d.refExOk[i] {
			// Four independent accumulators keep the 48000-MAC dot at the
			// load-port limit instead of the FP-add latency limit.
			seg := d.rec[t-d.recBase : t-d.recBase+L]
			ww := w[:len(seg)]
			var s0, s1, s2, s3 float64
			k := 0
			for ; k+3 < len(ww); k += 4 {
				s0 += seg[k] * ww[k]
				s1 += seg[k+1] * ww[k+1]
				s2 += seg[k+2] * ww[k+2]
				s3 += seg[k+3] * ww[k+3]
			}
			for ; k < len(ww); k++ {
				s0 += seg[k] * ww[k]
			}
			d.refEx[i] = (s0 + s1) + (s2 + s3)
			d.refExOk[i] = true
		}
		return d.refEx[i]
	}
	// exactRun fills the dot cache over [a, b]. A lone dot streams the
	// 48000-sample template and window through the cache and is memory-
	// bound, so runs of uncached adjacent lags are computed four at a time
	// in a single traversal — the four accumulators read a sliding
	// four-sample window of rec, amortizing the streaming cost that
	// dominates the single-lag form.
	exactRun := func(a, b int) {
		for t := a; t <= b; t++ {
			if d.refExOk[t-lo] {
				continue
			}
			r := t
			for r < b && !d.refExOk[r+1-lo] {
				r++
			}
			base := t
			for ; base+3 <= r; base += 4 {
				seg := d.rec[base-d.recBase : base-d.recBase+L+3]
				var a0, a1, a2, a3 float64
				for k := 0; k < len(w); k++ {
					v := w[k]
					a0 += v * seg[k]
					a1 += v * seg[k+1]
					a2 += v * seg[k+2]
					a3 += v * seg[k+3]
				}
				i := base - lo
				d.refEx[i], d.refEx[i+1], d.refEx[i+2], d.refEx[i+3] = a0, a1, a2, a3
				d.refExOk[i], d.refExOk[i+1], d.refExOk[i+2], d.refExOk[i+3] = true, true, true, true
			}
			for ; base <= r; base++ {
				exact(base)
			}
			t = r
		}
	}
	// Initial span: the interpolated coarse peak localizes the envelope max
	// to a few samples, and the normalization skews the argmax roughly half
	// a carrier cycle (≈2.7 samples) later, so the span leans right of t0.
	// Measured over the parity suite the winner lands in [t0−3, t0+4] with
	// the mode at +3; this span keeps that mode interior while the adaptive
	// extension below covers the tails.
	s0 := t0 - d.fac/4
	if s0 < lo {
		s0 = lo
	}
	s1 := t0 + d.fac/2 + 1
	if s1 > hi {
		s1 = hi
	}
	if s1 < s0 {
		s0, s1 = lo, hi
	}
	// Unit calibration: g² bridges the A-unit den baseline into full-rate
	// Z units. Only phase-0 lags contribute — their Z̃ reads the exact
	// grid A[τ], so Zex²/Z̃² there is the pure unit ratio, free of the
	// interpolation attenuation that biases the other phases (the den
	// baseline is dominated by exact-grid block powers, so an attenuated
	// calibration would inflate it and systematically depress the score).
	// The ratio is a constant of the decimation chain; it accumulates
	// across calls for stability.
	var sumEx, sumRec float64
	exactRun(s0, s1)
	for t := s0; t <= s1; t++ {
		ze := d.refEx[t-lo]
		zr := d.refZt[t-lo]
		sumEx += ze * ze
		sumRec += zr * zr
		if t%d.fac == 0 {
			d.gEx += ze * ze
			d.gRec += zr * zr
		}
	}
	best, bestScore := t0, -1.0
	for {
		exactRun(s0, s1)
		g2 := 1.0
		if d.gRec > 0 && d.gEx > 0 {
			g2 = d.gEx / d.gRec
		} else if sumRec > 0 && sumEx > 0 {
			g2 = sumEx / sumRec
		}
		// Score every span lag: den²·S = g²·(baseline − its span part
		// [t, s1]) + exact span power. Inter-candidate den differences are
		// exact; the calibrated baseline is common mode.
		best, bestScore = t0, -1.0
		var exTail, recTail float64
		for t := s1; t >= s0; t-- {
			ze := d.refEx[t-lo]
			zr := d.refZt[t-lo]
			exTail += ze * ze
			recTail += zr * zr
			ds := g2*(denSum(t)-recTail) + exTail
			if ds <= 0 {
				continue
			}
			zs := math.Abs(ze) / math.Sqrt(ds/float64(S))
			if zs > bestScore {
				best, bestScore = t, zs
			}
		}
		// Grow toward an edge-riding argmax so the emitted lag is an
		// interior winner (or pinned at the window bound).
		grew := false
		if best-s0 <= 1 && s0 > lo {
			if s0 -= d.fac / 2; s0 < lo {
				s0 = lo
			}
			grew = true
		}
		if s1-best <= 1 && s1 < hi {
			if s1 += d.fac / 2; s1 > hi {
				s1 = hi
			}
			grew = true
		}
		if !grew {
			break
		}
	}
	if bestScore < 0 {
		return Detection{Sample: t0, Strength: p.val}, p.val >= d.cfg.Theta
	}
	return Detection{Sample: best, Strength: bestScore}, bestScore >= d.cfg.Theta
}

// trimCZ drops de-rotated correlation history the fine stage can no
// longer need (future candidates sit at or past the peak-scan frontier).
func (d *twoStageDetector) trimCZ() {
	keep := d.refR/d.fac + interpHalfWidth + 4
	cut := d.scan.peakNext - keep - d.czBase
	// Batching the cut keeps the copy-back amortized well under the scan's
	// cost; the retained tail is `keep` either way.
	if cut <= 4096 {
		return
	}
	n := copy(d.cz, d.cz[cut:])
	d.cz = d.cz[:n]
	d.czBase += cut
}

// trimRec drops full-rate audio behind every possible future refinement
// window.
func (d *twoStageDetector) trimRec() {
	cutoff := d.scan.peakNext*d.fac - d.refR - 2*d.fac
	drop := cutoff - d.recBase
	// The retained span behind the scan frontier is large (roughly one
	// correlator segment at the full rate), so the copy-back is batched
	// coarsely: ~64k samples of extra lookback buys a 4× cut in bytes
	// moved per fed second.
	if drop <= 65536 {
		return
	}
	if drop > len(d.rec) {
		drop = len(d.rec)
	}
	n := copy(d.rec, d.rec[drop:])
	d.rec = d.rec[:n]
	d.recBase += drop
}

// coarseScan is peakScan transported to the squared domain for the coarse
// stage's envelope magnitudes: callers feed |C|² and every Eq. 4-6
// quantity is kept squared — the normalization denominator (a mean of
// squares needs no root), the silence floor, the peak-hold envelope
// (max and the β decay commute with squaring) and the θ gate. All the
// comparisons the equations make are between non-negative values, so the
// squared scan picks the identical candidate set while dropping the two
// per-lag square roots the linear form pays at the decimated rate; the
// one root left runs per emitted candidate, whose val stays in linear
// normalized-correlation units. Kept separate from peakScan — which the
// full-rate reference feeds signed lags — so coarse-path tuning never
// touches the reference's cost or numerics.
type coarseScan struct {
	normWindow int
	beta2      float64 // β², the squared-envelope decay
	theta2     float64 // θ², the squared candidate gate
	delta      int
	powScale   float64 // weight on |C|² in the power terms (½, see peakScan)

	// Squared correlation magnitudes; z[0] is absolute lag zBase. zPrefix
	// has len(z)+1 entries with zPrefix[k+1]-zPrefix[k] = powScale·z[k].
	z       []float64
	zPrefix []float64
	zBase   int
	nmNext  int
	sumSq   float64
	count   int

	// Squared envelope; env[0] is absolute position envBase.
	env      []float64
	envBase  int
	envState float64
	envSeen  bool
	peakNext int

	cands []scanPeak
}

// append integrates freshly squared correlation magnitudes starting at
// absolute lag start (the current frontier).
func (s *coarseScan) append(start int, sq []float64) {
	if len(s.zPrefix) == 0 {
		s.zBase = start
		s.nmNext = start
		s.zPrefix = append(s.zPrefix, 0)
	}
	for _, v := range sq {
		s.z = append(s.z, v)
		s.zPrefix = append(s.zPrefix, s.zPrefix[len(s.zPrefix)-1]+v*s.powScale)
		s.sumSq += v * s.powScale
		s.count++
	}
}

// advance runs Eq. 4-6 (squared) over every position with full lookahead.
func (s *coarseScan) advance() {
	S := s.normWindow
	zEnd := s.zBase + len(s.z)
	floor2 := 0.0
	if s.count > 0 {
		floor2 = 0.0004 * (s.sumSq / float64(s.count)) // (0.02·RMS)²
	}
	for s.nmNext+S <= zEnd {
		i := s.nmNext - s.zBase
		den2 := (s.zPrefix[i+S] - s.zPrefix[i]) / float64(S)
		if den2 < floor2 {
			den2 = floor2
		}
		var nv2 float64
		if den2 > 0 {
			nv2 = s.z[i] / den2
		}
		s.pushEnvelope(s.nmNext, nv2)
		s.nmNext++
	}
	s.trimZ()
	s.checkPeaks()
}

func (s *coarseScan) pushEnvelope(abs int, nv2 float64) {
	s.envState *= s.beta2
	if nv2 > s.envState {
		s.envState = nv2
	}
	if !s.envSeen {
		s.envBase = abs
		// Same boundary handling as peakScan: abs 0 is eligible with only
		// a right neighbor.
		s.peakNext = abs
		if abs != 0 {
			s.peakNext = abs + 1
		}
		s.envSeen = true
	}
	s.env = append(s.env, s.envState)
}

func (s *coarseScan) checkPeaks() {
	delta := s.delta
	envEnd := s.envBase + len(s.env)
	for s.peakNext+delta+1 < envEnd {
		t := s.peakNext
		s.peakNext++
		i := t - s.envBase
		if i < 0 || (i < 1 && t != 0) {
			continue
		}
		v := s.env[i]
		if v < s.theta2 || s.env[i+1] >= v {
			continue
		}
		if i >= 1 && s.env[i-1] > v {
			continue
		}
		dominant := true
		for j := max(0, i-delta); j <= i+delta && j < len(s.env); j++ {
			if s.env[j] > v {
				dominant = false
				break
			}
		}
		if !dominant {
			continue
		}
		s.cands = append(s.cands, scanPeak{pos: t, val: math.Sqrt(v)})
	}
	if cut := s.peakNext - delta - 2 - s.envBase; cut > 8*delta {
		n := copy(s.env, s.env[cut:])
		s.env = s.env[:n]
		s.envBase += cut
	}
}

func (s *coarseScan) trimZ() {
	cut := s.nmNext - s.zBase
	if cut <= s.normWindow {
		return
	}
	cut -= s.normWindow
	base := s.zPrefix[cut]
	n := copy(s.z, s.z[cut:])
	s.z = s.z[:n]
	for j := 0; j+cut < len(s.zPrefix); j++ {
		s.zPrefix[j] = s.zPrefix[cut+j] - base
	}
	s.zPrefix = s.zPrefix[:len(s.zPrefix)-cut]
	s.zBase += cut
}
