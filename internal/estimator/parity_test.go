package estimator

import (
	"fmt"
	"math/rand"
	"testing"

	"ekho/internal/acoustic"
	"ekho/internal/audio"
	"ekho/internal/codec"
	"ekho/internal/gamesynth"
)

// Two-stage vs full-rate parity: the band-decimated coarse-to-fine
// detector must reproduce the reference detector's detection set with
// sample-accurate timestamps (±1 sample) across every scenario family the
// system meets in practice — clean signals, acoustic channels, ambient
// noise sweeps, voice babble, codec compression at several bitrates,
// faint markers, far couches and heavy reverb.

// parityTol is the allowed timestamp disagreement between the two
// detection pipelines, in full-rate samples.
const parityTol = 1

// throughCodec round-trips a recording through the chat codec frame by
// frame — the compression the estimator's input has always survived by
// the time it reaches the server.
func throughCodec(t *testing.T, rec []float64, p codec.Profile) []float64 {
	t.Helper()
	enc, dec := codec.NewEncoder(p), codec.NewDecoder(p)
	out := make([]float64, 0, len(rec))
	for pos := 0; pos+audio.FrameSamples <= len(rec); pos += audio.FrameSamples {
		pkt, err := enc.Encode(rec[pos : pos+audio.FrameSamples])
		if err != nil {
			t.Fatalf("encode: %v", err)
		}
		frame, err := dec.Decode(pkt)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		out = append(out, frame...)
	}
	return out
}

type parityScenario struct {
	name string
	rec  func(t *testing.T) []float64
}

// parityScenarios spans the eight scenario families of the parity
// property, several with internal sweeps (ambient SNR, codec bitrate).
func parityScenarios() []parityScenario {
	var scs []parityScenario

	// 1. Clean marked game audio, straight into the detector.
	scs = append(scs, parityScenario{"clean", func(t *testing.T) []float64 {
		marked, _ := makeMarked(t, 8, 0.5, 0)
		return marked.Samples
	}})

	// 2. The default acoustic channel (Xbox headset, 6 ft, living room).
	scs = append(scs, parityScenario{"channel", func(t *testing.T) []float64 {
		marked, _ := makeMarked(t, 8, 0.5, 2)
		return acoustic.DefaultChannel().Transmit(marked).Samples
	}})

	// 3. Ambient-noise SNR sweep over the channel.
	for _, level := range []float64{0.002, 0.005, 0.01} {
		level := level
		scs = append(scs, parityScenario{fmt.Sprintf("ambient-%g", level), func(t *testing.T) []float64 {
			marked, _ := makeMarked(t, 8, 0.5, 3)
			ch := acoustic.DefaultChannel()
			ch.AmbientLevel = level
			return ch.Transmit(marked).Samples
		}})
	}

	// 4. Near-field voice babble: teammates chattering into the same mic,
	// an order of magnitude louder than the overheard screen.
	scs = append(scs, parityScenario{"babble", func(t *testing.T) []float64 {
		marked, _ := makeMarked(t, 8, 0.5, 4)
		rng := rand.New(rand.NewSource(21))
		chatter := gamesynth.Babble(rng, marked.Duration(), 2)
		return acoustic.DefaultChannel().TransmitMixed(marked, chatter, 0.5).Samples
	}})

	// 5. Codec bitrate sweep: the chat uplink's compression artifacts.
	for _, p := range []codec.Profile{codec.SWB32, codec.SWB24, codec.SWB24Low0} {
		p := p
		scs = append(scs, parityScenario{"codec-" + p.Name, func(t *testing.T) []float64 {
			marked, _ := makeMarked(t, 8, 0.5, 5)
			recv := acoustic.DefaultChannel().Transmit(marked)
			return throughCodec(t, recv.Samples, p)
		}})
	}

	// 6. Faint markers (C well below the paper's 0.5 default).
	scs = append(scs, parityScenario{"faint-markers", func(t *testing.T) []float64 {
		marked, _ := makeMarked(t, 8, 0.3, 6)
		return acoustic.DefaultChannel().Transmit(marked).Samples
	}})

	// 7. Far couch: 15 ft, extra attenuation.
	scs = append(scs, parityScenario{"far-couch", func(t *testing.T) []float64 {
		marked, _ := makeMarked(t, 8, 0.5, 7)
		ch := acoustic.DefaultChannel()
		ch.DistanceFt = 15
		ch.Attenuation = 0.05
		return ch.Transmit(marked).Samples
	}})

	// 8. Reverberant living room with a pronounced tail. (Harder rooms —
	// RT60 ≳ 0.8 with dense late reflections — put θ-marginal echo peaks
	// a few hundred samples apart; which micro-peak wins the ±δ dominance
	// there is knife-edge even for the reference, and the decimated
	// envelope can rank them differently. The parity property covers the
	// paper's deployment rooms, not that degenerate regime.)
	scs = append(scs, parityScenario{"reverberant", func(t *testing.T) []float64 {
		marked, _ := makeMarked(t, 8, 0.5, 8)
		ch := acoustic.DefaultChannel()
		ch.Room = acoustic.Room{RT60: 0.5, Reflections: 40, Seed: 3}
		return ch.Transmit(marked).Samples
	}})

	return scs
}

func TestTwoStageParity(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, sc := range parityScenarios() {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			rec := sc.rec(t)
			ref := feedInChunks(rec, Config{Seq: testSeq, Detector: DetectorFullRate}, 9)
			two := feedInChunks(rec, Config{Seq: testSeq, Detector: DetectorTwoStage}, 9)
			if len(ref) == 0 {
				t.Fatal("reference detector found nothing — scenario is vacuous")
			}
			if len(two) != len(ref) {
				t.Fatalf("detection sets differ: two-stage %v vs full-rate %v",
					samplesOf(two), samplesOf(ref))
			}
			for i := range ref {
				if d := absInt(two[i].Sample - ref[i].Sample); d > parityTol {
					t.Errorf("detection %d: two-stage %d vs full-rate %d (Δ=%d samples)",
						i, two[i].Sample, ref[i].Sample, d)
				}
			}
		})
	}
}
