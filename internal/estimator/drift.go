package estimator

import "math"

// Drift tracking.
//
// The base estimator treats ISD as a level: each measurement stands alone
// and the compensator corrects the latest value. Real device chains carry
// sample-rate offsets of tens of ppm ("Sample Rate Offset Compensated AEC
// for Multi-Device Scenarios", arXiv:2507.05399), which turn ISD into a
// ramp: d(t) = level + slope·t, with slope ≈ the accessory/screen clock
// skew in seconds per second. DriftTracker fits that line over a sliding
// window of ISD measurements so the compensator can cancel the slope with
// continuous micro-resampling instead of chasing the ramp with discrete
// silence/skip steps.

// DriftConfig tunes the sliding-window line fit.
type DriftConfig struct {
	// Window is the maximum number of measurements retained (default 32).
	Window int
	// SpanSec is the maximum age of a retained measurement relative to
	// the newest one (default 30 s). Older points are evicted so a slope
	// change is forgotten within one span.
	SpanSec float64
	// MinPoints is the minimum number of points for a valid fit
	// (default 6; a two-parameter fit needs well more than 2 points
	// before its standard error means anything).
	MinPoints int
	// MinSpanSec is the minimum time span for a valid fit (default 4 s);
	// slope estimated over a short baseline is dominated by measurement
	// noise.
	MinSpanSec float64
}

// withDefaults fills zero fields.
func (c DriftConfig) withDefaults() DriftConfig {
	if c.Window <= 0 {
		c.Window = 32
	}
	if c.SpanSec <= 0 {
		c.SpanSec = 30
	}
	if c.MinPoints <= 0 {
		c.MinPoints = 6
	}
	if c.MinSpanSec <= 0 {
		c.MinSpanSec = 4
	}
	return c
}

// DriftFit is one windowed least-squares fit of ISD against time.
type DriftFit struct {
	// LevelSeconds is the fitted ISD at the newest retained measurement's
	// time — what the discrete compensator should correct now.
	LevelSeconds float64
	// SlopeSecPerSec is the fitted drift rate (seconds of ISD per second;
	// multiply by 1e6 for ppm).
	SlopeSecPerSec float64
	// SlopeStdErr is the standard error of the slope estimate; a slope is
	// trustworthy when |SlopeSecPerSec| exceeds a few SlopeStdErr.
	SlopeStdErr float64
	// ResidualRMS is the RMS of the fit residuals (seconds).
	ResidualRMS float64
	// Points and SpanSec describe the window the fit used.
	Points  int
	SpanSec float64
	// Valid reports whether the window met the minimum point count and
	// time span. Invalid fits carry the latest raw ISD as LevelSeconds
	// and a zero slope.
	Valid bool
}

// driftPoint is one retained (time, ISD) observation.
type driftPoint struct {
	t, isd float64
}

// DriftTracker maintains the sliding window and produces fits. The zero
// value is not usable; construct with NewDriftTracker.
type DriftTracker struct {
	cfg  DriftConfig
	ring []driftPoint // fixed capacity cfg.Window
	head int          // index of oldest point
	n    int          // points in window
}

// NewDriftTracker returns a tracker with the given configuration (zero
// fields take defaults).
func NewDriftTracker(cfg DriftConfig) *DriftTracker {
	cfg = cfg.withDefaults()
	return &DriftTracker{cfg: cfg, ring: make([]driftPoint, cfg.Window)}
}

// Reset discards the window. Callers reset after every applied
// compensation: a discrete insert/skip or a resample-rate change moves the
// ISD trajectory, so pre-action points would corrupt the next fit.
func (d *DriftTracker) Reset() { d.head, d.n = 0, 0 }

// Len reports the number of retained points.
func (d *DriftTracker) Len() int { return d.n }

// Add appends one ISD measurement stamped with its detection time (the
// same clock for every point; the serverpipe uses the server's session
// clock). Non-monotonic timestamps reset the window — the clock it fits
// against must not step backwards.
func (d *DriftTracker) Add(t, isd float64) {
	if d.n > 0 {
		newest := d.ring[(d.head+d.n-1)%len(d.ring)].t
		if t < newest {
			d.Reset()
		}
	}
	if d.n == len(d.ring) {
		d.head = (d.head + 1) % len(d.ring)
		d.n--
	}
	d.ring[(d.head+d.n)%len(d.ring)] = driftPoint{t: t, isd: isd}
	d.n++
	d.evictOld(t)
}

// evictOld drops points older than the span limit behind the newest.
func (d *DriftTracker) evictOld(newest float64) {
	for d.n > 0 && newest-d.ring[d.head].t > d.cfg.SpanSec {
		d.head = (d.head + 1) % len(d.ring)
		d.n--
	}
}

// Fit runs the windowed least squares. With too few points or too short a
// baseline the fit is marked invalid and degrades to the latest raw
// measurement with zero slope, which reproduces the level-only behavior.
func (d *DriftTracker) Fit() DriftFit {
	if d.n == 0 {
		return DriftFit{}
	}
	newest := d.ring[(d.head+d.n-1)%len(d.ring)]
	oldest := d.ring[d.head]
	fit := DriftFit{
		LevelSeconds: newest.isd,
		Points:       d.n,
		SpanSec:      newest.t - oldest.t,
	}
	if d.n < d.cfg.MinPoints || fit.SpanSec < d.cfg.MinSpanSec {
		return fit
	}
	// Two-pass least squares around the centroid for numerical stability
	// (session times reach thousands of seconds; ISDs are milliseconds).
	var tMean, yMean float64
	for i := 0; i < d.n; i++ {
		p := d.ring[(d.head+i)%len(d.ring)]
		tMean += p.t
		yMean += p.isd
	}
	tMean /= float64(d.n)
	yMean /= float64(d.n)
	var stt, sty float64
	for i := 0; i < d.n; i++ {
		p := d.ring[(d.head+i)%len(d.ring)]
		dt := p.t - tMean
		stt += dt * dt
		sty += dt * (p.isd - yMean)
	}
	if stt == 0 {
		return fit
	}
	slope := sty / stt
	var rss float64
	for i := 0; i < d.n; i++ {
		p := d.ring[(d.head+i)%len(d.ring)]
		r := p.isd - (yMean + slope*(p.t-tMean))
		rss += r * r
	}
	fit.SlopeSecPerSec = slope
	fit.LevelSeconds = yMean + slope*(newest.t-tMean)
	fit.ResidualRMS = math.Sqrt(rss / float64(d.n))
	if d.n > 2 {
		fit.SlopeStdErr = math.Sqrt(rss / float64(d.n-2) / stt)
	}
	fit.Valid = true
	return fit
}
