package estimator

import (
	"math/rand"
	"testing"

	"ekho/internal/acoustic"
	"ekho/internal/audio"
)

// feedInChunks pushes a recording through the incremental detector in
// random chunk sizes and returns all detections.
func feedInChunks(rec []float64, cfg Config, seed int64) []Detection {
	d := NewIncrementalDetector(cfg)
	rng := rand.New(rand.NewSource(seed))
	var out []Detection
	pos := 0
	for pos < len(rec) {
		n := 480 + rng.Intn(4*audio.FrameSamples)
		if pos+n > len(rec) {
			n = len(rec) - pos
		}
		out = append(out, d.Feed(rec[pos:pos+n])...)
		pos += n
	}
	out = append(out, d.Flush()...)
	return out
}

func TestIncrementalMatchesBatchCleanSignal(t *testing.T) {
	marked, _ := makeMarked(t, 6, 0.5, 1)
	cfg := Config{Seq: testSeq}
	batch := DetectMarkers(marked.Samples, cfg)
	inc := feedInChunks(marked.Samples, cfg, 1)
	if len(batch) == 0 {
		t.Fatal("batch found nothing")
	}
	assertDetectionsMatch(t, batch, inc, 5)
}

func TestIncrementalMatchesBatchThroughChannel(t *testing.T) {
	marked, _ := makeMarked(t, 6, 0.5, 3)
	recv := acoustic.DefaultChannel().Transmit(marked)
	cfg := Config{Seq: testSeq}
	batch := DetectMarkers(recv.Samples, cfg)
	inc := feedInChunks(recv.Samples, cfg, 2)
	if len(batch) < 4 {
		t.Fatalf("batch only found %d", len(batch))
	}
	assertDetectionsMatch(t, batch, inc, 5)
}

// assertDetectionsMatch requires every batch detection to appear in the
// incremental output within tol samples (and no large spurious extras).
func assertDetectionsMatch(t *testing.T, batch, inc []Detection, tol int) {
	t.Helper()
	for _, b := range batch {
		found := false
		for _, g := range inc {
			if absInt(g.Sample-b.Sample) <= tol {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("batch detection at %d missing from incremental output %v", b.Sample, samplesOf(inc))
		}
	}
	if len(inc) > len(batch)+1 {
		t.Fatalf("incremental produced %d detections vs batch %d: %v vs %v",
			len(inc), len(batch), samplesOf(inc), samplesOf(batch))
	}
}

func samplesOf(d []Detection) []int {
	out := make([]int, len(d))
	for i, x := range d {
		out[i] = x.Sample
	}
	return out
}

func absInt(a int) int {
	if a < 0 {
		return -a
	}
	return a
}

func TestIncrementalNoFalsePositives(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	noise := make([]float64, 6*audio.SampleRate)
	for i := range noise {
		noise[i] = rng.NormFloat64() * 0.2
	}
	if dets := feedInChunks(noise, Config{Seq: testSeq}, 3); len(dets) != 0 {
		t.Fatalf("%d false detections on noise", len(dets))
	}
}

func TestIncrementalEmissionLatency(t *testing.T) {
	// A marker should be emitted roughly one interval after its start
	// (the Eq. 7 companion wait), not arbitrarily later.
	marked, log := makeMarked(t, 6, 0.5, 5)
	cfg := Config{Seq: testSeq}
	d := NewIncrementalDetector(cfg)
	firstEmit := -1
	for pos := 0; pos+audio.FrameSamples <= marked.Len(); pos += audio.FrameSamples {
		dets := d.Feed(marked.Samples[pos : pos+audio.FrameSamples])
		if len(dets) > 0 && firstEmit < 0 {
			firstEmit = pos
		}
	}
	if firstEmit < 0 {
		t.Fatal("nothing emitted")
	}
	// First marker at log[0] confirms when the second appears (+1 s),
	// plus normalization/peak lookaheads — well under 3 s total.
	latency := firstEmit - log[0].StartSample
	if latency > 3*audio.SampleRate {
		t.Fatalf("first emission %d samples (%.1f s) after the marker", latency, float64(latency)/audio.SampleRate)
	}
}

func TestIncrementalStateBounded(t *testing.T) {
	// Long stream: internal buffers must stay bounded in both modes.
	marked, _ := makeMarked(t, 12, 0.5, 7)
	t.Run("full-rate", func(t *testing.T) {
		cfg := Config{Seq: testSeq, Detector: DetectorFullRate}
		det := NewIncrementalDetector(cfg)
		for pos := 0; pos+audio.FrameSamples <= marked.Len(); pos += audio.FrameSamples {
			det.Feed(marked.Samples[pos : pos+audio.FrameSamples])
		}
		d := det.fr
		if len(d.rec) > d.corr.SegmentLen()+4*audio.FrameSamples {
			t.Fatalf("rec buffer %d", len(d.rec))
		}
		if len(d.scan.z) > 3*cfg.withDefaults().NormWindow+2*testSeq.Len() {
			t.Fatalf("z buffer %d", len(d.scan.z))
		}
		if len(d.scan.env) > 20*cfg.withDefaults().Delta {
			t.Fatalf("env buffer %d", len(d.scan.env))
		}
		if len(d.conf.pending) > 16 {
			t.Fatalf("pending peaks %d", len(d.conf.pending))
		}
	})
	t.Run("two-stage", func(t *testing.T) {
		cfg := Config{Seq: testSeq}
		det := NewIncrementalDetector(cfg)
		for pos := 0; pos+audio.FrameSamples <= marked.Len(); pos += audio.FrameSamples {
			det.Feed(marked.Samples[pos : pos+audio.FrameSamples])
		}
		d := det.ts
		c := cfg.withDefaults()
		// Full-rate audio retained for refinement: at most one coarse
		// FFT window of un-correlated audio plus the scan's lag behind
		// the frontier and the trim hysteresis.
		if maxRec := (d.corr.SegmentLen()+c.NormWindow/c.DecimateBy+2*c.Delta)*c.DecimateBy + 16384; len(d.rec) > maxRec {
			t.Fatalf("rec buffer %d > %d", len(d.rec), maxRec)
		}
		if len(d.bb) > d.corr.SegmentLen()+4096 {
			t.Fatalf("baseband buffer %d", len(d.bb))
		}
		if len(d.scan.z) > 3*c.NormWindow/c.DecimateBy+2*testSeq.Len()/c.DecimateBy {
			t.Fatalf("coarse z buffer %d", len(d.scan.z))
		}
		if len(d.cz) > d.corr.Step()+2048 {
			t.Fatalf("derotated buffer %d", len(d.cz))
		}
		if len(d.scan.env) > 20*c.Delta {
			t.Fatalf("env buffer %d", len(d.scan.env))
		}
		if len(d.conf.pending) > 16 {
			t.Fatalf("pending peaks %d", len(d.conf.pending))
		}
	})
}

func TestIncrementalFlushOnShortInput(t *testing.T) {
	d := NewIncrementalDetector(Config{Seq: testSeq})
	if dets := d.Feed(make([]float64, 100)); len(dets) != 0 {
		t.Fatal("tiny input should not detect")
	}
	if dets := d.Flush(); len(dets) != 0 {
		t.Fatal("flush on tiny input should be empty")
	}
}

func BenchmarkIncrementalDetector1s(b *testing.B) {
	marked, _ := makeMarked(b, 10, 0.5, 0)
	cfg := Config{Seq: testSeq}
	b.ReportAllocs()
	b.ResetTimer()
	d := NewIncrementalDetector(cfg)
	pos := 0
	for i := 0; i < b.N; i++ {
		// One second of streaming per iteration.
		for k := 0; k < 50; k++ {
			if pos+audio.FrameSamples > marked.Len() {
				pos = 0
				d = NewIncrementalDetector(cfg)
			}
			d.Feed(marked.Samples[pos : pos+audio.FrameSamples])
			pos += audio.FrameSamples
		}
	}
}
