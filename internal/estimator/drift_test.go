package estimator

import (
	"math"
	"math/rand"
	"testing"
)

// TestDriftTrackerRamps feeds synthetic ISD ramps shaped like real drift
// scenarios — one measurement every ~1.5 s, like the marker cadence — and
// checks the fitted level and slope against the generator.
func TestDriftTrackerRamps(t *testing.T) {
	const dt = 1.5 // seconds between measurements, marker-cadence-like

	cases := []struct {
		name  string
		level float64 // seconds at t=0
		slope float64 // seconds per second
		// slope2, when non-zero, replaces slope from switchAt onward
		// (continuing continuously from the value reached).
		slope2   float64
		switchAt float64
		noise    float64 // measurement noise sigma, seconds
		points   int
		// tolerances on the final fit
		levelTol float64
		slopeTol float64
		// convergeWithin asserts slope is within slopeTol of truth after
		// at most this many points past the validity minimum.
		convergeWithin int
	}{
		{
			name:  "level-only",
			level: 0.012, slope: 0,
			points: 24, levelTol: 1e-9, slopeTol: 1e-9, convergeWithin: 6,
		},
		{
			name:  "slope-only-100ppm",
			level: 0, slope: 100e-6,
			points: 24, levelTol: 1e-9, slopeTol: 1e-9, convergeWithin: 6,
		},
		{
			name:  "level-plus-slope",
			level: -0.008, slope: -50e-6,
			points: 24, levelTol: 1e-9, slopeTol: 1e-9, convergeWithin: 6,
		},
		{
			name:  "slope-change-midstream",
			level: 0, slope: 200e-6, slope2: -200e-6, switchAt: 30,
			points: 60, levelTol: 1e-4, slopeTol: 5e-6, convergeWithin: 22,
		},
		{
			name:  "noisy-ramp",
			level: 0.005, slope: 100e-6, noise: 0.0005,
			points: 40, levelTol: 1e-3, slopeTol: 25e-6, convergeWithin: 10,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(7))
			tr := NewDriftTracker(DriftConfig{})
			truth := func(now float64) (isd, slope float64) {
				if tc.slope2 != 0 && now >= tc.switchAt {
					atSwitch := tc.level + tc.slope*tc.switchAt
					return atSwitch + tc.slope2*(now-tc.switchAt), tc.slope2
				}
				return tc.level + tc.slope*now, tc.slope
			}
			var fit DriftFit
			firstValid, converged := -1, -1
			lastRegime := 0 // index of first point in the current slope regime
			for i := 0; i < tc.points; i++ {
				now := float64(i) * dt
				if tc.slope2 != 0 && now >= tc.switchAt && float64(lastRegime)*dt < tc.switchAt {
					lastRegime = i
				}
				isd, slopeNow := truth(now)
				tr.Add(now, isd+tc.noise*rng.NormFloat64())
				fit = tr.Fit()
				if fit.Valid && firstValid < 0 {
					firstValid = i
				}
				if fit.Valid && converged < 0 && i >= lastRegime &&
					math.Abs(fit.SlopeSecPerSec-slopeNow) <= tc.slopeTol {
					converged = i
				}
				if fit.Valid && converged >= 0 && i < lastRegime {
					converged = -1 // slope switch invalidated convergence
				}
			}
			if !fit.Valid {
				t.Fatalf("fit never became valid after %d points", tc.points)
			}
			wantISD, wantSlope := truth(float64(tc.points-1) * dt)
			if d := math.Abs(fit.LevelSeconds - wantISD); d > tc.levelTol {
				t.Errorf("level = %.6f s, want %.6f s (|err| %.2g > %.2g)",
					fit.LevelSeconds, wantISD, d, tc.levelTol)
			}
			if d := math.Abs(fit.SlopeSecPerSec - wantSlope); d > tc.slopeTol {
				t.Errorf("slope = %.3f ppm, want %.3f ppm (|err| %.2g > %.2g)",
					fit.SlopeSecPerSec*1e6, wantSlope*1e6, d, tc.slopeTol)
			}
			if converged < 0 {
				t.Errorf("slope never converged within ±%.2g", tc.slopeTol)
			} else if limit := lastRegime + max(tr.cfg.MinPoints, 2) + tc.convergeWithin; converged > limit {
				t.Errorf("slope converged at point %d, want ≤ %d", converged, limit)
			}
		})
	}
}

// A noiseless line must be recovered exactly (to float precision) and the
// reported standard error must be ~0; a noisy line's standard error must
// bracket the true slope at a few sigma.
func TestDriftTrackerStdErr(t *testing.T) {
	tr := NewDriftTracker(DriftConfig{})
	for i := 0; i < 20; i++ {
		tr.Add(float64(i)*1.5, 0.001+75e-6*float64(i)*1.5)
	}
	fit := tr.Fit()
	if !fit.Valid {
		t.Fatal("fit invalid")
	}
	if fit.SlopeStdErr > 1e-12 {
		t.Errorf("noiseless stderr = %g, want ~0", fit.SlopeStdErr)
	}
	if fit.ResidualRMS > 1e-12 {
		t.Errorf("noiseless residual RMS = %g, want ~0", fit.ResidualRMS)
	}

	rng := rand.New(rand.NewSource(3))
	tr.Reset()
	const trueSlope = 100e-6
	for i := 0; i < 32; i++ {
		tr.Add(float64(i)*1.5, trueSlope*float64(i)*1.5+0.0003*rng.NormFloat64())
	}
	fit = tr.Fit()
	if fit.SlopeStdErr <= 0 {
		t.Fatal("noisy stderr not positive")
	}
	if math.Abs(fit.SlopeSecPerSec-trueSlope) > 4*fit.SlopeStdErr {
		t.Errorf("slope %.2f ppm outside 4σ of truth %.2f ppm (σ=%.2f ppm)",
			fit.SlopeSecPerSec*1e6, trueSlope*1e6, fit.SlopeStdErr*1e6)
	}
}

// Window behavior: old points age out by span, capacity is bounded, and a
// backwards timestamp resets the window.
func TestDriftTrackerWindow(t *testing.T) {
	tr := NewDriftTracker(DriftConfig{Window: 8, SpanSec: 10, MinPoints: 3, MinSpanSec: 2})
	for i := 0; i < 50; i++ {
		tr.Add(float64(i), float64(i)*1e-5)
	}
	if tr.Len() > 8 {
		t.Fatalf("window holds %d points, cap 8", tr.Len())
	}
	fit := tr.Fit()
	if fit.SpanSec > 10 {
		t.Fatalf("span %.1f s exceeds limit", fit.SpanSec)
	}
	if !fit.Valid || math.Abs(fit.SlopeSecPerSec-1e-5) > 1e-12 {
		t.Fatalf("bad fit on clean line: %+v", fit)
	}

	// A long silence followed by one point leaves only that point.
	tr.Add(1000, 0)
	if tr.Len() != 1 {
		t.Fatalf("after span gap: %d points, want 1", tr.Len())
	}
	// Backwards time resets.
	tr.Add(999, 0)
	if tr.Len() != 1 {
		t.Fatalf("after clock step back: %d points, want 1", tr.Len())
	}
	tr.Reset()
	if tr.Len() != 0 || tr.Fit().Valid {
		t.Fatal("reset did not clear window")
	}
}

// Invalid fits (too few points / short span) must degrade to the latest
// raw measurement with zero slope — the level-only behavior.
func TestDriftTrackerDegradesToLevel(t *testing.T) {
	tr := NewDriftTracker(DriftConfig{})
	tr.Add(0, 0.015)
	tr.Add(1.5, 0.017)
	fit := tr.Fit()
	if fit.Valid {
		t.Fatal("fit valid with 2 points")
	}
	if fit.LevelSeconds != 0.017 || fit.SlopeSecPerSec != 0 {
		t.Fatalf("degraded fit = %+v, want latest raw level and zero slope", fit)
	}
}
