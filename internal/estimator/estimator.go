// Package estimator implements Ekho-Estimator (paper §4.2-§4.3): detection
// of PN markers in the chat-audio recording and conversion of detections
// into Inter-Stream Delay (ISD) measurements using local timestamps only.
//
// The detection pipeline follows the paper's equations exactly:
//
//	Eq. 3  Z[t]  = Σ_i x_rec[t+i]·w[i]          (cross-correlation)
//	Eq. 4  Z*[τ] = |Z[τ]| / sqrt(mean_S Z²)      (power normalization)
//	Eq. 5  R[t]  = max(Z*[t], β·R[t-1])          (envelope, β=0.99995)
//	Eq. 6  P[t]  = R[t] if local max and ≥ θ     (peak pick, θ=5)
//	Eq. 7  P*[t] = P[t] if dominant within ±δ and a companion peak exists
//	               one marker interval away (±δ)
//
// One deliberate deviation from the literal text of Eq. 7: the paper keeps
// a peak only if another peak follows L samples later, which would always
// discard the final marker of a recording and cap the measurement rate at
// (n-1)/n — yet the paper reports all 450 markers detected (§6.3). We
// therefore accept a companion peak either L samples later or L samples
// earlier, which preserves the false-positive suppression (two aligned
// peaks are still required) without the boundary loss.
package estimator

import (
	"math"
	"sort"

	"ekho/internal/audio"
	"ekho/internal/dsp"
	"ekho/internal/pn"
)

// Config carries the detection parameters; zero fields take the paper's
// defaults via (*Config).withDefaults.
type Config struct {
	// Seq is the PN sequence shared with the injector. Required.
	Seq *pn.Sequence
	// NormWindow is S in Eq. 4, in samples (default 4800 = 100 ms).
	NormWindow int
	// Beta is the envelope decay (default 0.99995).
	Beta float64
	// Theta is the minimum peak threshold in normalized-correlation units
	// (default 5, derived in Appendix A).
	Theta float64
	// Delta is the peak-dominance / companion-alignment slack in samples
	// (default 100, ~2 ms; see Appendix A's (2δ+1)p² false-peak model).
	Delta int
	// IntervalSamples is the marker period L (default 48000 = 1 s).
	IntervalSamples int
	// MaxISDSeconds bounds |ISD| during matching (default 0.5 s, half the
	// marker interval; §4.3).
	MaxISDSeconds float64
	// Detector selects the streaming detector implementation (see
	// DetectorMode); the batch DetectMarkers pipeline always runs the
	// full-rate reference regardless.
	Detector DetectorMode
	// DecimateBy is the two-stage detector's coarse decimation factor D
	// (default 8: the 6-12 kHz marker band heterodyned to a 6 kHz complex
	// baseband). Factors whose prime decomposition is 2s and at most one
	// odd residue are supported.
	DecimateBy int
	// RefineRadius is the fine stage's search half-width around a coarse
	// candidate, in full-rate samples (default 2·DecimateBy, covering the
	// coarse stage's localization error plus carrier-phase skew).
	RefineRadius int
}

// DetectorMode selects between the streaming detector implementations.
type DetectorMode uint8

const (
	// DetectorTwoStage (the default) runs the band-decimated coarse
	// correlation front-end with full-rate peak refinement: ~D× less
	// steady-state work for detections within ±1 sample of the reference.
	DetectorTwoStage DetectorMode = iota
	// DetectorFullRate runs Eq. 3-7 entirely at the 48 kHz rate — the
	// bit-exact streaming form of the batch pipeline, kept as the
	// config-selectable reference.
	DetectorFullRate
)

// String names the mode the way flags and trace dumps spell it.
func (m DetectorMode) String() string {
	switch m {
	case DetectorFullRate:
		return "full-rate"
	default:
		return "two-stage"
	}
}

// ParseDetectorMode converts a flag/config spelling into a DetectorMode.
func ParseDetectorMode(s string) (DetectorMode, bool) {
	switch s {
	case "two-stage", "twostage", "2stage", "":
		return DetectorTwoStage, true
	case "full-rate", "fullrate", "full":
		return DetectorFullRate, true
	}
	return DetectorTwoStage, false
}

func (c Config) withDefaults() Config {
	if c.NormWindow == 0 {
		c.NormWindow = 4800
	}
	if c.Beta == 0 {
		c.Beta = 0.99995
	}
	if c.Theta == 0 {
		c.Theta = 5
	}
	if c.Delta == 0 {
		c.Delta = 100
	}
	if c.IntervalSamples == 0 {
		c.IntervalSamples = audio.SampleRate
	}
	if c.MaxISDSeconds == 0 {
		c.MaxISDSeconds = 0.5
	}
	if c.DecimateBy == 0 {
		c.DecimateBy = 8
	}
	if c.RefineRadius == 0 {
		c.RefineRadius = 2 * c.DecimateBy
	}
	return c
}

// Detection is one confirmed marker found in the recording.
type Detection struct {
	// Sample is the index in the recording where the marker starts.
	Sample int
	// Strength is the normalized correlation peak height (σ units).
	Strength float64
}

// DetectMarkers runs the full Eq. 3-7 pipeline over a recording and returns
// the confirmed marker detections in ascending sample order.
func DetectMarkers(rec []float64, cfg Config) []Detection {
	cfg = cfg.withDefaults()
	if cfg.Seq == nil || len(rec) < cfg.Seq.Len() {
		return nil
	}
	z := dsp.CrossCorrelate(rec, cfg.Seq.Samples) // Eq. 3
	zn := normalize(z, cfg.NormWindow)            // Eq. 4
	env := envelope(zn, cfg.Beta)                 // Eq. 5
	peaks := pickPeaks(env, cfg.Theta)            // Eq. 6
	return filterPeaks(peaks, env, cfg)           // Eq. 7
}

// normalize implements Eq. 4: divide each lag by the RMS of the correlation
// over the following S samples, and take absolute values. Prefix sums give
// O(n) total cost.
//
// One robustness addition over the paper's formula: the per-window RMS is
// floored at a small fraction of the whole recording's correlation RMS.
// Over digital silence (no microphone noise floor) the denominator would
// otherwise collapse and amplify numerical residue into spurious peaks.
func normalize(z []float64, s int) []float64 {
	n := len(z)
	out := make([]float64, n)
	if n == 0 {
		return out
	}
	prefix := make([]float64, n+1)
	for i, v := range z {
		prefix[i+1] = prefix[i] + v*v
	}
	// Global RMS sets the silence floor (-34 dB relative).
	floor := 0.02 * math.Sqrt(prefix[n]/float64(n))
	for t := 0; t < n; t++ {
		hi := t + s
		if hi > n {
			hi = n
		}
		w := float64(hi - t)
		if w <= 0 {
			out[t] = 0
			continue
		}
		den := math.Sqrt((prefix[hi] - prefix[t]) / w)
		if den < floor {
			den = floor
		}
		if den <= 0 {
			out[t] = 0
			continue
		}
		out[t] = math.Abs(z[t]) / den
	}
	return out
}

// envelope implements Eq. 5: a peak-hold envelope with exponential decay.
func envelope(zn []float64, beta float64) []float64 {
	out := make([]float64, len(zn))
	var r float64
	for i, v := range zn {
		r *= beta
		if v > r {
			r = v
		}
		out[i] = r
	}
	return out
}

// pickPeaks implements Eq. 6: indices where the envelope is a local maximum
// and at least theta.
func pickPeaks(env []float64, theta float64) []int {
	var peaks []int
	if len(env) > 1 && env[0] >= theta && env[1] < env[0] {
		peaks = append(peaks, 0)
	}
	for t := 1; t < len(env)-1; t++ {
		if env[t] >= theta && env[t-1] <= env[t] && env[t+1] < env[t] {
			peaks = append(peaks, t)
		}
	}
	return peaks
}

// filterPeaks implements Eq. 7: keep peaks that dominate their ±δ
// neighborhood in the envelope and have a companion peak one marker
// interval away (either direction, ±δ slack).
func filterPeaks(peaks []int, env []float64, cfg Config) []Detection {
	if len(peaks) == 0 {
		return nil
	}
	l, delta := cfg.IntervalSamples, cfg.Delta
	sorted := append([]int(nil), peaks...)
	sort.Ints(sorted)
	hasPeakNear := func(center int) bool {
		lo := sort.SearchInts(sorted, center-delta)
		return lo < len(sorted) && sorted[lo] <= center+delta
	}
	var out []Detection
	for _, t := range peaks {
		// Dominance: no larger envelope value within ±δ.
		dominant := true
		for j := max(0, t-delta); j <= min(len(env)-1, t+delta); j++ {
			if env[j] > env[t] {
				dominant = false
				break
			}
		}
		if !dominant {
			continue
		}
		if hasPeakNear(t+l) || hasPeakNear(t-l) {
			out = append(out, Detection{Sample: t, Strength: env[t]})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Sample < out[j].Sample })
	return dedupeDetections(out, delta)
}

// dedupeDetections collapses detections closer than delta samples, keeping
// the strongest (flat envelope tops can yield adjacent local maxima).
func dedupeDetections(d []Detection, delta int) []Detection {
	if len(d) == 0 {
		return d
	}
	out := []Detection{d[0]}
	for _, cur := range d[1:] {
		last := &out[len(out)-1]
		if cur.Sample-last.Sample <= delta {
			if cur.Strength > last.Strength {
				*last = cur
			}
			continue
		}
		out = append(out, cur)
	}
	return out
}

// Measurement is one ISD estimate produced by matching a detection against
// the accessory stream's hypothetical marker times (§4.3).
type Measurement struct {
	// ISDSeconds is the estimated inter-stream delay: positive when the
	// screen audio (as heard at the microphone) lags the accessory audio.
	ISDSeconds float64
	// DetectionTime is the local (headset clock) time the marker was heard.
	DetectionTime float64
	// MarkerTime is the local time the accessory stream carried the same
	// marker position.
	MarkerTime float64
	// Strength is the detection's correlation peak height.
	Strength float64
}

// MatchISD aligns detections with the accessory-stream marker times.
// recStartLocal is the local time of recording sample 0 (T_0^chat);
// markerLocalTimes are the local playback times of the accessory-stream
// frames that carry each marker start (T_j^accessory for logged frame IDs).
// A detection yields a measurement when the nearest marker time is within
// MaxISDSeconds (§4.3: the interval must exceed twice the maximum ISD, so
// the nearest candidate is unambiguous). At most one measurement is
// emitted per marker ("for each marker, we could potentially have one ISD
// measurement", §6.3) — when several detections claim the same marker
// (e.g. a strong room reflection alongside the direct path), only the
// strongest survives.
func MatchISD(dets []Detection, recStartLocal float64, sampleRate int, markerLocalTimes []float64, cfg Config) []Measurement {
	cfg = cfg.withDefaults()
	if len(markerLocalTimes) == 0 {
		return nil
	}
	times := append([]float64(nil), markerLocalTimes...)
	sort.Float64s(times)
	// Strongest measurement per marker time.
	byMarker := make(map[float64]Measurement)
	for _, d := range dets {
		td := recStartLocal + float64(d.Sample)/float64(sampleRate)
		// Nearest marker time.
		i := sort.SearchFloat64s(times, td)
		best := math.Inf(1)
		bestTime := 0.0
		for _, j := range []int{i - 1, i} {
			if j < 0 || j >= len(times) {
				continue
			}
			if diff := td - times[j]; math.Abs(diff) < math.Abs(best) {
				best = diff
				bestTime = times[j]
			}
		}
		if math.Abs(best) > cfg.MaxISDSeconds {
			continue
		}
		m := Measurement{
			ISDSeconds:    best,
			DetectionTime: td,
			MarkerTime:    bestTime,
			Strength:      d.Strength,
		}
		if prev, ok := byMarker[bestTime]; !ok || betterArrival(m, prev) {
			byMarker[bestTime] = m
		}
	}
	out := make([]Measurement, 0, len(byMarker))
	for _, m := range byMarker {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].DetectionTime < out[j].DetectionTime })
	return out
}

// betterArrival decides between two detections claiming the same marker.
// A room reflection can be nearly as strong as the direct path, so pure
// strongest-peak selection occasionally locks onto an echo several ms
// late. As in acoustic ranging, prefer the EARLIEST detection that is at
// least a substantial fraction of the strongest — the direct path always
// arrives first.
func betterArrival(candidate, incumbent Measurement) bool {
	const fraction = 0.6
	switch {
	case candidate.Strength >= incumbent.Strength:
		// Stronger and earlier always wins; stronger but later only wins
		// if the incumbent is comparatively weak (likely noise).
		return candidate.DetectionTime <= incumbent.DetectionTime ||
			incumbent.Strength < fraction*candidate.Strength
	case candidate.Strength >= fraction*incumbent.Strength:
		// Weaker but strong enough: wins if it arrives earlier (direct
		// path preceding an echo).
		return candidate.DetectionTime < incumbent.DetectionTime
	default:
		return false
	}
}

// Estimate is the one-call convenience used by the offline experiments:
// detect markers in rec and match them against markerLocalTimes.
func Estimate(rec *audio.Buffer, recStartLocal float64, markerLocalTimes []float64, cfg Config) []Measurement {
	dets := DetectMarkers(rec.Samples, cfg)
	return MatchISD(dets, recStartLocal, rec.Rate, markerLocalTimes, cfg)
}

// Stages exposes every intermediate signal of the pipeline for a recording;
// used to regenerate Figure 5 and by diagnostic tooling.
type Stages struct {
	Raw        []float64   // Eq. 3 cross-correlation Z
	Normalized []float64   // Eq. 4 Z*
	Envelope   []float64   // Eq. 5 R
	Peaks      []int       // Eq. 6 candidate peak indices
	Confirmed  []Detection // Eq. 7 surviving detections
}

// ComputeStages runs the pipeline retaining intermediates.
func ComputeStages(rec []float64, cfg Config) Stages {
	cfg = cfg.withDefaults()
	if cfg.Seq == nil || len(rec) < cfg.Seq.Len() {
		return Stages{}
	}
	z := dsp.CrossCorrelate(rec, cfg.Seq.Samples)
	zn := normalize(z, cfg.NormWindow)
	env := envelope(zn, cfg.Beta)
	peaks := pickPeaks(env, cfg.Theta)
	return Stages{
		Raw:        z,
		Normalized: zn,
		Envelope:   env,
		Peaks:      peaks,
		Confirmed:  filterPeaks(peaks, env, cfg),
	}
}
