package audio

import (
	"math"

	"ekho/internal/dsp"
)

// A-weighting and sound-pressure-level utilities. The paper reports chatter
// and marker loudness in dBA (ISO 226-style A-weighting, §6.3-§6.5); the
// simulator needs the same meter to calibrate "Low/Med/Loud Chat" and the
// Figure 13 marker sound levels.

// AWeight returns the A-weighting magnitude gain (linear, not dB) at the
// given frequency in Hz, per the IEC 61672 analog prototype.
func AWeight(f float64) float64 {
	if f <= 0 {
		return 0
	}
	f2 := f * f
	num := 12194.0 * 12194.0 * f2 * f2
	den := (f2 + 20.6*20.6) *
		math.Sqrt((f2+107.7*107.7)*(f2+737.9*737.9)) *
		(f2 + 12194.0*12194.0)
	ra := num / den
	// Normalize to 0 dB at 1 kHz (the +2.0 dB constant in the standard).
	return ra * math.Pow(10, 2.0/20)
}

// AWeightedPower returns the A-weighted mean power of the signal, computed
// in the frequency domain.
func AWeightedPower(b *Buffer) float64 {
	n := len(b.Samples)
	if n == 0 {
		return 0
	}
	// FFTReal zero-pads to NextPow2(n): the returned spectrum has
	// len(spec) = NextPow2(n) bins, so bin spacing and the Parseval
	// normalization below must use that padded length, not n.
	spec := dsp.FFTReal(b.Samples)
	m := len(spec)
	half := m / 2
	binHz := float64(b.Rate) / float64(m)
	var sum float64
	for i := 1; i <= half; i++ {
		w := AWeight(float64(i) * binHz)
		re, im := real(spec[i]), imag(spec[i])
		sum += w * w * (re*re + im*im)
	}
	return 2 * sum / (float64(m) * float64(n))
}

// calibrationOffset maps digital full scale to an assumed acoustic level.
// It is chosen so the corpus clips play at a median of ~60-70 dBA, the
// "typical volume in gaming sessions" the paper configures (§6.3); a
// full-scale sine then reads ~75 dB SPL.
const calibrationOffset = 78.0

// DBA returns the calibrated A-weighted sound level of the buffer in dBA.
// Silence maps to -inf.
func DBA(b *Buffer) float64 {
	p := AWeightedPower(b)
	if p <= 0 {
		return math.Inf(-1)
	}
	return 10*math.Log10(p) + calibrationOffset
}

// MedianFrameDBA measures dBA per 100 ms window and returns the median —
// the statistic the paper uses to calibrate chatter loudness ("the median
// sound level of the speech clip is 5 dBA lower than the game audio").
func MedianFrameDBA(b *Buffer) float64 {
	win := b.Rate / 10
	if win == 0 || b.Len() == 0 {
		return math.Inf(-1)
	}
	var levels []float64
	for start := 0; start+win <= b.Len(); start += win {
		l := DBA(b.Slice(start, start+win))
		if !math.IsInf(l, -1) {
			levels = append(levels, l)
		}
	}
	if len(levels) == 0 {
		return math.Inf(-1)
	}
	return median(levels)
}

func median(x []float64) float64 {
	s := append([]float64(nil), x...)
	// insertion sort; level arrays are small
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// GainForDBA returns the linear gain to apply to b so that its median frame
// level becomes target dBA. Returns 1 for silent buffers.
func GainForDBA(b *Buffer, target float64) float64 {
	cur := MedianFrameDBA(b)
	if math.IsInf(cur, -1) {
		return 1
	}
	return math.Pow(10, (target-cur)/20)
}
