package audio

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWAVRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	b := NewBuffer(SampleRate, 4800)
	for i := range b.Samples {
		b.Samples[i] = rng.Float64()*1.8 - 0.9
	}
	var buf bytes.Buffer
	if err := WriteWAV(&buf, b); err != nil {
		t.Fatal(err)
	}
	back, err := ReadWAV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Rate != SampleRate || back.Len() != b.Len() {
		t.Fatalf("rate %d len %d", back.Rate, back.Len())
	}
	for i := range b.Samples {
		if math.Abs(back.Samples[i]-b.Samples[i]) > 1.0/32768+1e-9 {
			t.Fatalf("sample %d: %g vs %g", i, back.Samples[i], b.Samples[i])
		}
	}
}

func TestWAVRoundTripProperty(t *testing.T) {
	f := func(seed int64, lenSel uint16) bool {
		r := rand.New(rand.NewSource(seed))
		n := int(lenSel) % 2000
		b := NewBuffer(SampleRate, n)
		for i := range b.Samples {
			b.Samples[i] = r.Float64()*2 - 1
		}
		var buf bytes.Buffer
		if err := WriteWAV(&buf, b); err != nil {
			return false
		}
		back, err := ReadWAV(&buf)
		if err != nil {
			return false
		}
		if back.Len() != n {
			return false
		}
		for i := range b.Samples {
			if math.Abs(back.Samples[i]-b.Samples[i]) > 1.0/32768+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestReadWAVRejectsGarbage(t *testing.T) {
	if _, err := ReadWAV(bytes.NewReader([]byte("not a wav file at all....."))); err == nil {
		t.Fatal("expected error")
	}
	// Correct RIFF magic but stereo content must be rejected.
	var buf bytes.Buffer
	b := NewBuffer(SampleRate, 10)
	if err := WriteWAV(&buf, b); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[22] = 2 // channels = 2
	_, err := ReadWAV(bytes.NewReader(raw))
	if err == nil || !errors.Is(err, ErrBadWAV) {
		t.Fatalf("want ErrBadWAV, got %v", err)
	}
}

func TestInt16Conversions(t *testing.T) {
	if FloatToInt16(2.0) != 32767 {
		t.Fatal("positive clamp")
	}
	if FloatToInt16(-2.0) != -32768 {
		t.Fatal("negative clamp")
	}
	if FloatToInt16(0) != 0 {
		t.Fatal("zero")
	}
	b := FromInt16(SampleRate, []int16{0, 16384, -32768})
	if b.Samples[0] != 0 || math.Abs(b.Samples[1]-0.5) > 1e-9 || b.Samples[2] != -1 {
		t.Fatalf("FromInt16: %v", b.Samples)
	}
	round := b.ToInt16()
	if round[1] != 16384 || round[2] != -32768 {
		t.Fatalf("ToInt16: %v", round)
	}
}
