package audio

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// WAV I/O: 16-bit mono PCM, the least common denominator every tool reads.
// Used by the example binaries and the corpus exporter so that generated
// clips can be inspected with standard audio tooling.

var (
	// ErrBadWAV reports a malformed or unsupported WAV stream.
	ErrBadWAV = errors.New("audio: malformed or unsupported WAV")
)

// WriteWAV encodes the buffer as a 16-bit mono PCM WAV file.
func WriteWAV(w io.Writer, b *Buffer) error {
	n := len(b.Samples)
	dataSize := uint32(n * 2)
	var hdr [44]byte
	copy(hdr[0:4], "RIFF")
	binary.LittleEndian.PutUint32(hdr[4:8], 36+dataSize)
	copy(hdr[8:12], "WAVE")
	copy(hdr[12:16], "fmt ")
	binary.LittleEndian.PutUint32(hdr[16:20], 16)
	binary.LittleEndian.PutUint16(hdr[20:22], 1) // PCM
	binary.LittleEndian.PutUint16(hdr[22:24], 1) // mono
	binary.LittleEndian.PutUint32(hdr[24:28], uint32(b.Rate))
	binary.LittleEndian.PutUint32(hdr[28:32], uint32(b.Rate*2))
	binary.LittleEndian.PutUint16(hdr[32:34], 2)
	binary.LittleEndian.PutUint16(hdr[34:36], 16)
	copy(hdr[36:40], "data")
	binary.LittleEndian.PutUint32(hdr[40:44], dataSize)
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("audio: writing WAV header: %w", err)
	}
	buf := make([]byte, 2*n)
	for i, v := range b.Samples {
		binary.LittleEndian.PutUint16(buf[2*i:], uint16(FloatToInt16(v)))
	}
	if _, err := w.Write(buf); err != nil {
		return fmt.Errorf("audio: writing WAV data: %w", err)
	}
	return nil
}

// ReadWAV decodes a 16-bit mono PCM WAV stream.
func ReadWAV(r io.Reader) (*Buffer, error) {
	var hdr [12]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("audio: reading RIFF header: %w", err)
	}
	if string(hdr[0:4]) != "RIFF" || string(hdr[8:12]) != "WAVE" {
		return nil, ErrBadWAV
	}
	var rate int
	var bits, channels int
	for {
		var chunk [8]byte
		if _, err := io.ReadFull(r, chunk[:]); err != nil {
			return nil, fmt.Errorf("audio: reading chunk header: %w", err)
		}
		id := string(chunk[0:4])
		size := binary.LittleEndian.Uint32(chunk[4:8])
		switch id {
		case "fmt ":
			body := make([]byte, size)
			if _, err := io.ReadFull(r, body); err != nil {
				return nil, fmt.Errorf("audio: reading fmt chunk: %w", err)
			}
			if len(body) < 16 {
				return nil, ErrBadWAV
			}
			format := binary.LittleEndian.Uint16(body[0:2])
			channels = int(binary.LittleEndian.Uint16(body[2:4]))
			rate = int(binary.LittleEndian.Uint32(body[4:8]))
			bits = int(binary.LittleEndian.Uint16(body[14:16]))
			if format != 1 || channels != 1 || bits != 16 {
				return nil, fmt.Errorf("%w: need 16-bit mono PCM, got format=%d channels=%d bits=%d",
					ErrBadWAV, format, channels, bits)
			}
		case "data":
			if rate == 0 {
				return nil, fmt.Errorf("%w: data before fmt", ErrBadWAV)
			}
			body := make([]byte, size)
			if _, err := io.ReadFull(r, body); err != nil {
				return nil, fmt.Errorf("audio: reading data chunk: %w", err)
			}
			n := int(size) / 2
			out := NewBuffer(rate, n)
			for i := 0; i < n; i++ {
				out.Samples[i] = Int16ToFloat(int16(binary.LittleEndian.Uint16(body[2*i:])))
			}
			return out, nil
		default:
			// Skip unknown chunks (LIST, fact, ...).
			if _, err := io.CopyN(io.Discard, r, int64(size)); err != nil {
				return nil, fmt.Errorf("audio: skipping %q chunk: %w", id, err)
			}
		}
	}
}

// FloatToInt16 converts a [-1, 1] sample to int16 with clamping. The scale
// is symmetric with Int16ToFloat (32768) so round trips are exact to within
// half an LSB everywhere except at positive full scale, which clamps.
func FloatToInt16(v float64) int16 {
	s := math.Round(v * 32768)
	if s > 32767 {
		s = 32767
	}
	if s < -32768 {
		s = -32768
	}
	return int16(s)
}

// Int16ToFloat converts an int16 sample to [-1, 1).
func Int16ToFloat(v int16) float64 { return float64(v) / 32768 }

// ToInt16 converts the whole buffer to int16 PCM.
func (b *Buffer) ToInt16() []int16 {
	out := make([]int16, len(b.Samples))
	for i, v := range b.Samples {
		out[i] = FloatToInt16(v)
	}
	return out
}

// FromInt16 builds a buffer from int16 PCM.
func FromInt16(rate int, s []int16) *Buffer {
	out := NewBuffer(rate, len(s))
	for i, v := range s {
		out.Samples[i] = Int16ToFloat(v)
	}
	return out
}
