package audio

import "math"

// Chirp generates a linear frequency sweep from f0 to f1 Hz lasting the
// given number of seconds, with a short raised-cosine fade at both ends to
// avoid clicks. The end-to-end ground-truth methodology (paper §6.1) plays
// a 2→5 kHz chirp on the screen and a 5→2 kHz chirp on the controller and
// aligns both against a third recording; §6.3 uses a 0→20 kHz chirp as a
// start-of-clip marker.
func Chirp(rate int, f0, f1, seconds, amplitude float64) *Buffer {
	n := int(math.Round(seconds * float64(rate)))
	b := NewBuffer(rate, n)
	if n == 0 {
		return b
	}
	k := (f1 - f0) / seconds // sweep rate Hz/s
	fade := rate / 100       // 10 ms fades
	if fade*2 > n {
		fade = n / 4
	}
	for i := 0; i < n; i++ {
		t := float64(i) / float64(rate)
		phase := 2 * math.Pi * (f0*t + 0.5*k*t*t)
		v := amplitude * math.Sin(phase)
		switch {
		case i < fade && fade > 0:
			v *= 0.5 - 0.5*math.Cos(math.Pi*float64(i)/float64(fade))
		case i >= n-fade && fade > 0:
			v *= 0.5 - 0.5*math.Cos(math.Pi*float64(n-1-i)/float64(fade))
		}
		b.Samples[i] = v
	}
	return b
}

// Tone generates a pure sinusoid.
func Tone(rate int, freq, seconds, amplitude float64) *Buffer {
	n := int(math.Round(seconds * float64(rate)))
	b := NewBuffer(rate, n)
	for i := 0; i < n; i++ {
		b.Samples[i] = amplitude * math.Sin(2*math.Pi*freq*float64(i)/float64(rate))
	}
	return b
}
