package audio

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBufferBasics(t *testing.T) {
	b := NewBuffer(SampleRate, 48000)
	if b.Duration() != 1.0 {
		t.Fatalf("duration %g want 1", b.Duration())
	}
	if b.Len() != 48000 {
		t.Fatalf("len %d", b.Len())
	}
	if b.SecondsToSamples(0.02) != FrameSamples {
		t.Fatalf("20 ms should be %d samples", FrameSamples)
	}
	if b.SamplesToSeconds(FrameSamples) != 0.02 {
		t.Fatal("960 samples should be 20 ms")
	}
}

func TestCloneIndependence(t *testing.T) {
	b := FromSamples(SampleRate, []float64{1, 2, 3})
	c := b.Clone()
	c.Samples[0] = 99
	if b.Samples[0] != 1 {
		t.Fatal("Clone must not share storage")
	}
}

func TestSliceClamping(t *testing.T) {
	b := FromSamples(SampleRate, []float64{1, 2, 3, 4})
	if s := b.Slice(-5, 100); s.Len() != 4 {
		t.Fatalf("clamped slice len %d", s.Len())
	}
	if s := b.Slice(3, 1); s.Len() != 0 {
		t.Fatalf("inverted slice should be empty, got %d", s.Len())
	}
	s := b.Slice(1, 3)
	if s.Len() != 2 || s.Samples[0] != 2 {
		t.Fatalf("slice content wrong: %v", s.Samples)
	}
}

func TestFramesPadding(t *testing.T) {
	b := FromSamples(SampleRate, make([]float64, 2500))
	frames := b.Frames(960)
	if len(frames) != 3 {
		t.Fatalf("frame count %d want 3", len(frames))
	}
	for i, f := range frames {
		if len(f) != 960 {
			t.Fatalf("frame %d len %d", i, len(f))
		}
	}
	if b.Frames(0) != nil {
		t.Fatal("nonpositive frameLen should give nil")
	}
}

func TestFramesRoundTripProperty(t *testing.T) {
	f := func(seed int64, lenSel uint16) bool {
		r := rand.New(rand.NewSource(seed))
		n := int(lenSel)%5000 + 1
		b := NewBuffer(SampleRate, n)
		for i := range b.Samples {
			b.Samples[i] = r.Float64()*2 - 1
		}
		out := NewBuffer(SampleRate, 0)
		for _, fr := range b.Frames(FrameSamples) {
			out.AppendFrame(fr)
		}
		// Reassembled stream must reproduce the original with zero pad.
		if out.Len() < n {
			return false
		}
		for i := 0; i < n; i++ {
			if out.Samples[i] != b.Samples[i] {
				return false
			}
		}
		for i := n; i < out.Len(); i++ {
			if out.Samples[i] != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMixIntoOffsets(t *testing.T) {
	b := NewBuffer(SampleRate, 5)
	b.MixInto([]float64{1, 1, 1}, 3, 2) // extends past end
	if b.Samples[3] != 2 || b.Samples[4] != 2 {
		t.Fatalf("tail mix wrong: %v", b.Samples)
	}
	b2 := NewBuffer(SampleRate, 5)
	b2.MixInto([]float64{1, 1, 1}, -2, 1) // head dropped
	if b2.Samples[0] != 1 || b2.Samples[1] != 0 {
		t.Fatalf("negative offset mix wrong: %v", b2.Samples)
	}
}

func TestMixLengthsAndPanic(t *testing.T) {
	a := FromSamples(SampleRate, []float64{1, 1})
	b := FromSamples(SampleRate, []float64{1, 1, 1})
	m := Mix(a, b)
	if m.Len() != 3 || m.Samples[0] != 2 || m.Samples[2] != 1 {
		t.Fatalf("mix wrong: %v", m.Samples)
	}
	if Mix().Len() != 0 {
		t.Fatal("empty mix")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("rate mismatch should panic")
		}
	}()
	Mix(a, FromSamples(44100, []float64{1}))
}

func TestGainClipNormalize(t *testing.T) {
	b := FromSamples(SampleRate, []float64{0.5, -0.5})
	b.Gain(4)
	if n := b.Clip(); n != 2 {
		t.Fatalf("clipped %d want 2", n)
	}
	if b.Samples[0] != 1 || b.Samples[1] != -1 {
		t.Fatalf("clip values: %v", b.Samples)
	}
	c := FromSamples(SampleRate, []float64{0.2, -0.1})
	c.Normalize(0.9)
	if math.Abs(c.PeakAbs()-0.9) > 1e-12 {
		t.Fatalf("normalized peak %g", c.PeakAbs())
	}
	s := NewBuffer(SampleRate, 4)
	s.Normalize(0.9) // silent: no change, no NaN
	if s.PeakAbs() != 0 {
		t.Fatal("silent normalize should stay silent")
	}
}

func TestRMSAndDBFS(t *testing.T) {
	tone := Tone(SampleRate, 1000, 0.5, 1.0)
	if math.Abs(tone.RMS()-math.Sqrt(0.5)) > 0.01 {
		t.Fatalf("sine RMS %g want %g", tone.RMS(), math.Sqrt(0.5))
	}
	if math.Abs(tone.DBFS()-(-3.01)) > 0.2 {
		t.Fatalf("sine dBFS %g want ~-3", tone.DBFS())
	}
	if !math.IsInf(NewBuffer(SampleRate, 10).DBFS(), -1) {
		t.Fatal("silence should be -inf dBFS")
	}
}

func TestSilence(t *testing.T) {
	s := Silence(SampleRate, 0.1)
	if s.Len() != 4800 {
		t.Fatalf("len %d", s.Len())
	}
	if s.RMS() != 0 {
		t.Fatal("silence should be zero")
	}
}

func TestStringIncludesRate(t *testing.T) {
	s := Tone(SampleRate, 440, 0.01, 0.5).String()
	if len(s) == 0 {
		t.Fatal("empty String()")
	}
}
