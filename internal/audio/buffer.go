// Package audio provides the PCM audio primitives shared by all of Ekho:
// mono float64 sample buffers, 20 ms framing at 48 kHz, WAV import/export,
// level measurement (dBFS and A-weighted dBA), chirp generation and mixing.
//
// Conventions: samples are float64 in [-1, 1]; the canonical sample rate is
// 48 kHz; the canonical frame is 20 ms (960 samples), matching the OPUS
// packetization used by the paper's implementation.
package audio

import (
	"fmt"
	"math"
)

// Canonical stream constants (paper §4.2: 48 kHz, 20 ms packets, 1 s markers).
const (
	SampleRate      = 48000            // samples per second
	FrameSamples    = 960              // 20 ms at 48 kHz (T in Eq. 2)
	FrameDuration   = 20 * Millisecond // duration of one frame
	MarkerLength    = 48000            // L: 1 s PN marker
	MarkerIntervalS = 1.0              // markers are injected every second
)

// Millisecond is a convenience duration unit in seconds.
const Millisecond = 1e-3

// Buffer is a mono PCM signal at a fixed sample rate.
type Buffer struct {
	Rate    int       // sample rate in Hz
	Samples []float64 // PCM samples, nominally in [-1, 1]
}

// NewBuffer allocates a zeroed buffer of n samples at the given rate.
func NewBuffer(rate, n int) *Buffer {
	return &Buffer{Rate: rate, Samples: make([]float64, n)}
}

// FromSamples wraps an existing slice (no copy).
func FromSamples(rate int, s []float64) *Buffer {
	return &Buffer{Rate: rate, Samples: s}
}

// Len returns the number of samples.
func (b *Buffer) Len() int { return len(b.Samples) }

// Duration returns the buffer length in seconds.
func (b *Buffer) Duration() float64 {
	if b.Rate == 0 {
		return 0
	}
	return float64(len(b.Samples)) / float64(b.Rate)
}

// Clone returns a deep copy.
func (b *Buffer) Clone() *Buffer {
	s := make([]float64, len(b.Samples))
	copy(s, b.Samples)
	return &Buffer{Rate: b.Rate, Samples: s}
}

// Slice returns a view of samples [from, to) sharing underlying storage.
// Bounds are clamped to the buffer.
func (b *Buffer) Slice(from, to int) *Buffer {
	if from < 0 {
		from = 0
	}
	if to > len(b.Samples) {
		to = len(b.Samples)
	}
	if from > to {
		from = to
	}
	return &Buffer{Rate: b.Rate, Samples: b.Samples[from:to]}
}

// Frames splits the buffer into consecutive frames of frameLen samples.
// A trailing partial frame is zero-padded into a full one so that stream
// pipelines always see uniform packets.
func (b *Buffer) Frames(frameLen int) [][]float64 {
	if frameLen <= 0 {
		return nil
	}
	n := len(b.Samples)
	count := (n + frameLen - 1) / frameLen
	out := make([][]float64, count)
	for i := 0; i < count; i++ {
		start := i * frameLen
		end := start + frameLen
		if end <= n {
			out[i] = b.Samples[start:end]
			continue
		}
		padded := make([]float64, frameLen)
		copy(padded, b.Samples[start:])
		out[i] = padded
	}
	return out
}

// AppendFrame appends a frame's samples.
func (b *Buffer) AppendFrame(frame []float64) {
	b.Samples = append(b.Samples, frame...)
}

// Gain scales every sample by g in place and returns the buffer.
func (b *Buffer) Gain(g float64) *Buffer {
	for i := range b.Samples {
		b.Samples[i] *= g
	}
	return b
}

// Clip hard-limits samples to [-1, 1] in place, returning the count of
// clipped samples (useful for detecting marker volumes that would distort).
func (b *Buffer) Clip() int {
	n := 0
	for i, v := range b.Samples {
		if v > 1 {
			b.Samples[i] = 1
			n++
		} else if v < -1 {
			b.Samples[i] = -1
			n++
		}
	}
	return n
}

// MixInto adds src (scaled by gain) into b starting at the given sample
// offset. Out-of-range parts of src are ignored; negative offsets shift src
// earlier (dropping its head).
func (b *Buffer) MixInto(src []float64, offset int, gain float64) {
	for i, v := range src {
		j := offset + i
		if j < 0 {
			continue
		}
		if j >= len(b.Samples) {
			break
		}
		b.Samples[j] += v * gain
	}
}

// RMS returns the root-mean-square level.
func (b *Buffer) RMS() float64 {
	if len(b.Samples) == 0 {
		return 0
	}
	var sum float64
	for _, v := range b.Samples {
		sum += v * v
	}
	return math.Sqrt(sum / float64(len(b.Samples)))
}

// PeakAbs returns the maximum absolute sample value.
func (b *Buffer) PeakAbs() float64 {
	var p float64
	for _, v := range b.Samples {
		if a := math.Abs(v); a > p {
			p = a
		}
	}
	return p
}

// DBFS returns the RMS level in dB relative to full scale (a full-scale
// sine is about -3 dBFS RMS). Returns -inf for silence.
func (b *Buffer) DBFS() float64 {
	r := b.RMS()
	if r <= 0 {
		return math.Inf(-1)
	}
	return 20 * math.Log10(r)
}

// SamplesToSeconds converts a sample count at the buffer's rate to seconds.
func (b *Buffer) SamplesToSeconds(n int) float64 { return float64(n) / float64(b.Rate) }

// SecondsToSamples converts seconds to a sample count at the buffer's rate.
func (b *Buffer) SecondsToSamples(sec float64) int {
	return int(math.Round(sec * float64(b.Rate)))
}

// String summarizes the buffer for debugging.
func (b *Buffer) String() string {
	return fmt.Sprintf("audio.Buffer{%d Hz, %d samples, %.2fs, %.1f dBFS}",
		b.Rate, len(b.Samples), b.Duration(), b.DBFS())
}

// Mix sums any number of equal-rate buffers into a new buffer whose length
// is the longest input.
func Mix(bufs ...*Buffer) *Buffer {
	if len(bufs) == 0 {
		return NewBuffer(SampleRate, 0)
	}
	rate := bufs[0].Rate
	maxLen := 0
	for _, b := range bufs {
		if b.Rate != rate {
			panic(fmt.Sprintf("audio: Mix rate mismatch %d vs %d", b.Rate, rate))
		}
		if b.Len() > maxLen {
			maxLen = b.Len()
		}
	}
	out := NewBuffer(rate, maxLen)
	for _, b := range bufs {
		for i, v := range b.Samples {
			out.Samples[i] += v
		}
	}
	return out
}

// Silence returns a zeroed buffer lasting the given number of seconds.
func Silence(rate int, seconds float64) *Buffer {
	return NewBuffer(rate, int(math.Round(seconds*float64(rate))))
}

// Normalize scales the buffer so its peak is the given absolute level
// (e.g. 0.9). Silent buffers are returned unchanged.
func (b *Buffer) Normalize(peak float64) *Buffer {
	p := b.PeakAbs()
	if p <= 0 {
		return b
	}
	return b.Gain(peak / p)
}
