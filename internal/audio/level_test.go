package audio

import (
	"math"
	"testing"
)

func TestAWeightShape(t *testing.T) {
	// 0 dB at 1 kHz, strong attenuation at low frequency, mild dip high.
	at1k := 20 * math.Log10(AWeight(1000))
	if math.Abs(at1k) > 0.2 {
		t.Fatalf("A-weight at 1 kHz = %g dB, want ~0", at1k)
	}
	at100 := 20 * math.Log10(AWeight(100))
	if at100 > -15 || at100 < -25 {
		t.Fatalf("A-weight at 100 Hz = %g dB, want ~-19", at100)
	}
	at10k := 20 * math.Log10(AWeight(10000))
	if math.Abs(at10k-(-2.5)) > 1.5 {
		t.Fatalf("A-weight at 10 kHz = %g dB, want ~-2.5", at10k)
	}
	if AWeight(0) != 0 || AWeight(-5) != 0 {
		t.Fatal("nonpositive frequency should weight 0")
	}
}

func TestDBARelativeLevels(t *testing.T) {
	// Same amplitude at 1 kHz vs 100 Hz: the 100 Hz tone must read much
	// quieter in dBA.
	a := DBA(Tone(SampleRate, 1000, 0.5, 0.5))
	b := DBA(Tone(SampleRate, 100, 0.5, 0.5))
	if a-b < 15 {
		t.Fatalf("1 kHz should be >=15 dBA above 100 Hz: %g vs %g", a, b)
	}
	if math.IsInf(a, -1) {
		t.Fatal("tone should have finite dBA")
	}
	if !math.IsInf(DBA(NewBuffer(SampleRate, 100)), -1) {
		t.Fatal("silence should be -inf dBA")
	}
}

func TestDBAGainMonotonic(t *testing.T) {
	quiet := Tone(SampleRate, 2000, 0.5, 0.05)
	loud := Tone(SampleRate, 2000, 0.5, 0.5)
	dq, dl := DBA(quiet), DBA(loud)
	if math.Abs((dl-dq)-20) > 0.5 {
		t.Fatalf("10x gain should be +20 dBA, got %g", dl-dq)
	}
}

func TestMedianFrameDBA(t *testing.T) {
	// Half silence, half tone: the median of frames should track the tone
	// frames only if they are the majority; build 70% tone.
	tone := Tone(SampleRate, 1000, 0.7, 0.5)
	sig := Mix(tone, Silence(SampleRate, 1.0))
	m := MedianFrameDBA(sig)
	full := DBA(tone)
	if math.Abs(m-full) > 3 {
		t.Fatalf("median %g vs tone level %g", m, full)
	}
	if !math.IsInf(MedianFrameDBA(NewBuffer(SampleRate, 0)), -1) {
		t.Fatal("empty buffer median should be -inf")
	}
}

func TestGainForDBA(t *testing.T) {
	tone := Tone(SampleRate, 1000, 0.5, 0.2)
	target := MedianFrameDBA(tone) - 5
	g := GainForDBA(tone, target)
	adjusted := tone.Clone().Gain(g)
	got := MedianFrameDBA(adjusted)
	if math.Abs(got-target) > 0.5 {
		t.Fatalf("adjusted level %g want %g", got, target)
	}
	if GainForDBA(NewBuffer(SampleRate, 10), 40) != 1 {
		t.Fatal("silent buffer gain should be 1")
	}
}

func TestMedianHelper(t *testing.T) {
	if median([]float64{3, 1, 2}) != 2 {
		t.Fatal("odd median")
	}
	if median([]float64{4, 1, 2, 3}) != 2.5 {
		t.Fatal("even median")
	}
}

func TestChirpSweep(t *testing.T) {
	c := Chirp(SampleRate, 2000, 5000, 1.0, 0.8)
	if c.Len() != SampleRate {
		t.Fatalf("len %d", c.Len())
	}
	// Instantaneous frequency rises: early window dominated by ~2 kHz,
	// late window by ~5 kHz.
	early := c.Slice(2400, 7200)
	late := c.Slice(c.Len()-7200, c.Len()-2400)
	fEarly := dominantFreq(early)
	fLate := dominantFreq(late)
	if fEarly > 3200 || fLate < 3800 {
		t.Fatalf("chirp sweep wrong: early %g late %g", fEarly, fLate)
	}
	if Chirp(SampleRate, 100, 200, 0, 1).Len() != 0 {
		t.Fatal("zero-length chirp")
	}
}

func dominantFreq(b *Buffer) float64 {
	bestF, bestP := 0.0, -1.0
	for f := 500.0; f <= 8000; f += 100 {
		p := goertzelPower(b, f)
		if p > bestP {
			bestP, bestF = p, f
		}
	}
	return bestF
}

func goertzelPower(b *Buffer, freq float64) float64 {
	w := 2 * math.Pi * freq / float64(b.Rate)
	coeff := 2 * math.Cos(w)
	var s1, s2 float64
	for _, v := range b.Samples {
		s0 := v + coeff*s1 - s2
		s2, s1 = s1, s0
	}
	return s1*s1 + s2*s2 - coeff*s1*s2
}
