package gccphat

import (
	"math"
	"math/rand"
	"testing"

	"ekho/internal/acoustic"
	"ekho/internal/audio"
	"ekho/internal/gamesynth"
)

func shiftBuffer(b *audio.Buffer, samples int) *audio.Buffer {
	out := audio.NewBuffer(b.Rate, b.Len())
	for i := range out.Samples {
		src := i - samples
		if src >= 0 && src < b.Len() {
			out.Samples[i] = b.Samples[src]
		}
	}
	return out
}

func TestEstimateRecoversKnownDelay(t *testing.T) {
	clip := gamesynth.Generate(gamesynth.Catalog()[0], 3)
	for _, delayMs := range []float64{0, 10, 50, -30, 120} {
		shift := int(delayMs / 1000 * audio.SampleRate)
		rec := shiftBuffer(clip, shift)
		got := Estimate(clip, rec)
		if math.Abs(got-delayMs/1000) > 0.001 {
			t.Fatalf("delay %g ms: estimated %g s", delayMs, got)
		}
	}
}

func TestEstimateCleanChannelAccuracy(t *testing.T) {
	// Paper: "Whenever Ekho and GCC-PHAT are able to measure ISD ... they
	// achieve good accuracy (< 2 ms ISD error)."
	clip := gamesynth.Generate(gamesynth.Catalog()[2], 3)
	ch := acoustic.Channel{Mic: acoustic.StudioMic, Attenuation: 0.2, AmbientLevel: 0.0001, NoiseSeed: 1}
	rec := ch.Transmit(clip) // 0 extra delay beyond channel's own
	got := Estimate(clip, rec)
	if math.Abs(got) > 0.002 {
		t.Fatalf("estimated %g s on clean channel, want ~0 (propagation excluded)", got)
	}
}

func TestChatterBreaksGCCPHAT(t *testing.T) {
	// With chatter as loud as the game audio, GCC-PHAT's phase is
	// dominated by the near-field voice and estimates become garbage for
	// at least some windows — the Figure 12 effect.
	rng := rand.New(rand.NewSource(4))
	clip := gamesynth.Generate(gamesynth.Catalog()[0], 6)
	chatter := gamesynth.Babble(rng, 6, 3)
	ch := acoustic.Channel{Mic: acoustic.XboxHeadset, Attenuation: 0.1, AmbientLevel: 0.001, NoiseSeed: 2}
	rec := ch.TransmitMixed(clip, chatter, 0.5)

	ms := EstimateWindowed(clip, rec, 1)
	if len(ms) == 0 {
		t.Fatal("no windows")
	}
	bad := 0
	for _, m := range ms {
		// Channel delay is 0 ft here; good estimates are ~0.
		if !m.Plausible || math.Abs(m.ISDSeconds) > 0.005 {
			bad++
		}
	}
	if bad == 0 {
		t.Fatal("loud chatter should corrupt at least one GCC-PHAT window")
	}
}

func TestEstimateWindowedBasics(t *testing.T) {
	clip := gamesynth.Generate(gamesynth.Catalog()[4], 4)
	rec := shiftBuffer(clip, 480) // 10 ms
	ms := EstimateWindowed(clip, rec, 1)
	if len(ms) != 4 {
		t.Fatalf("windows %d want 4", len(ms))
	}
	for i, m := range ms {
		if m.WindowStart != float64(i) {
			t.Fatalf("window %d start %g", i, m.WindowStart)
		}
	}
	if EstimateWindowed(clip, rec, 0) != nil {
		t.Fatal("zero window should give nil")
	}
}

func TestPlausibilityRule(t *testing.T) {
	m := Measurement{ISDSeconds: 0.4, Plausible: math.Abs(0.4) <= MaxPlausibleISDSeconds}
	if m.Plausible {
		t.Fatal("400 ms should be implausible")
	}
	clip := gamesynth.Generate(gamesynth.Catalog()[1], 2)
	// Completely unrelated recording: estimates are arbitrary; the rule
	// just flags big ones. Verify the field is consistent.
	other := gamesynth.Generate(gamesynth.Catalog()[9], 2)
	for _, mm := range EstimateWindowed(clip, other, 1) {
		if mm.Plausible != (math.Abs(mm.ISDSeconds) <= MaxPlausibleISDSeconds) {
			t.Fatal("plausibility flag inconsistent")
		}
	}
}

func TestEstimateEmpty(t *testing.T) {
	e := Estimate(audio.NewBuffer(audio.SampleRate, 0), audio.NewBuffer(audio.SampleRate, 0))
	if e != 0 {
		t.Fatalf("empty estimate %g", e)
	}
}

func BenchmarkEstimate1s(b *testing.B) {
	clip := gamesynth.Generate(gamesynth.Catalog()[0], 1)
	rec := shiftBuffer(clip, 480)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Estimate(clip, rec)
	}
}

func TestEstimateGrowingRecoversDelay(t *testing.T) {
	clip := gamesynth.Generate(gamesynth.Catalog()[3], 4)
	rec := shiftBuffer(clip, 960) // 20 ms
	ms := EstimateGrowing(clip, rec, 1)
	if len(ms) != 4 {
		t.Fatalf("estimates %d want 4", len(ms))
	}
	for i, m := range ms {
		if m.WindowStart != float64(i) {
			t.Fatalf("window %d start %g", i, m.WindowStart)
		}
		if !m.Plausible || math.Abs(m.ISDSeconds-0.02) > 0.001 {
			t.Fatalf("estimate %d: %+v", i, m)
		}
	}
	if EstimateGrowing(clip, rec, 0) != nil {
		t.Fatal("zero step should give nil")
	}
	if EstimateGrowing(clip, audio.NewBuffer(audio.SampleRate, 0), 1) != nil {
		t.Fatal("empty recording should give nil")
	}
}

func TestEstimateSegmentsRecoversDelay(t *testing.T) {
	clip := gamesynth.Generate(gamesynth.Catalog()[5], 4)
	rec := shiftBuffer(clip, 2400) // 50 ms
	ms := EstimateSegments(clip, rec, 1)
	if len(ms) != 4 {
		t.Fatalf("estimates %d want 4", len(ms))
	}
	good := 0
	for _, m := range ms {
		if m.Plausible && math.Abs(m.ISDSeconds-0.05) < 0.001 {
			good++
		}
	}
	if good < 3 {
		t.Fatalf("only %d/4 segments recovered the 50 ms delay", good)
	}
	if EstimateSegments(clip, rec, 0) != nil {
		t.Fatal("zero segment should give nil")
	}
}

func TestEstimateSegmentsGarbageOnUnrelatedAudio(t *testing.T) {
	// A reference unrelated to the recording yields wide-lag garbage that
	// the 300 ms rule mostly rejects — the Figure 12 collapse mechanism.
	ref := gamesynth.Generate(gamesynth.Catalog()[7], 6)
	other := gamesynth.Generate(gamesynth.Catalog()[11], 6)
	ms := EstimateSegments(ref, other, 1)
	if len(ms) == 0 {
		t.Fatal("no segments")
	}
	accepted := 0
	for _, m := range ms {
		if m.Plausible {
			accepted++
		}
	}
	if float64(accepted)/float64(len(ms)) > 0.5 {
		t.Fatalf("unrelated audio accepted %d/%d segments", accepted, len(ms))
	}
}
