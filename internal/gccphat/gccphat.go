// Package gccphat implements the Generalized Cross-Correlation PHAse
// Transform baseline that Ekho is compared against in §6.4 (paper Eq. 8):
//
//	R(τ) = ∫ X(ω)·conj(X_rec(ω)) / |X(ω)·conj(X_rec(ω))| · e^{jωτ} dω
//	ISD  = argmax_τ R(τ)
//
// GCC-PHAT whitens the cross-spectrum so every frequency contributes only
// phase, which sharpens correlation peaks for signals without good
// autocorrelation — but it has no embedded marker, so background chatter
// and compression noise corrupt the phase and detections collapse (the
// effect Figure 12 quantifies).
//
// As in the paper, the implementation always produces an estimate; callers
// apply the 300 ms plausibility rule via EstimateWithRejection, treating
// larger values as missed detections.
package gccphat

import (
	"math"
	"math/cmplx"

	"ekho/internal/audio"
	"ekho/internal/dsp"
)

// MaxPlausibleISDSeconds is the paper's outlier rule: measurements beyond
// 300 ms are flagged as erroneous and treated as missed detections.
const MaxPlausibleISDSeconds = 0.3

// Estimate returns the delay (in seconds, positive = rec lags ref) that
// maximizes the PHAT-weighted cross-correlation between the reference
// stream and the recording. Both buffers must share a sample rate; the
// search considers circular lags up to ±len/2.
func Estimate(ref, rec *audio.Buffer) float64 {
	n := max(ref.Len(), rec.Len())
	if n == 0 {
		return 0
	}
	size := dsp.NextPow2(2 * n)
	fa := make([]complex128, size)
	fb := make([]complex128, size)
	for i, v := range ref.Samples {
		fa[i] = complex(v, 0)
	}
	for i, v := range rec.Samples {
		fb[i] = complex(v, 0)
	}
	dsp.FFT(fa)
	dsp.FFT(fb)
	// Whitened cross-spectrum.
	for i := range fa {
		c := fb[i] * cmplx.Conj(fa[i])
		mag := cmplx.Abs(c)
		if mag > 1e-12 {
			fa[i] = c / complex(mag, 0)
		} else {
			fa[i] = 0
		}
	}
	r := dsp.IFFT(fa)
	// Peak over lags in (-size/2, size/2]; positive lags first half.
	bestVal := math.Inf(-1)
	bestLag := 0
	half := size / 2
	for i := 0; i < size; i++ {
		v := real(r[i])
		if v > bestVal {
			lag := i
			if i > half {
				lag = i - size
			}
			bestVal = v
			bestLag = lag
		}
	}
	return float64(bestLag) / float64(ref.Rate)
}

// Measurement is one windowed GCC-PHAT estimate.
type Measurement struct {
	// ISDSeconds is the estimated delay for this window.
	ISDSeconds float64
	// WindowStart is the window's start time in the stream (seconds).
	WindowStart float64
	// Plausible reports whether the estimate passed the 300 ms rule.
	Plausible bool
}

// EstimateWindowed runs GCC-PHAT over consecutive windows of the streams
// (the way a live system would produce periodic measurements) and applies
// the plausibility rejection. windowSeconds of 1 matches Ekho's one
// measurement opportunity per second.
func EstimateWindowed(ref, rec *audio.Buffer, windowSeconds float64) []Measurement {
	win := int(windowSeconds * float64(ref.Rate))
	if win <= 0 {
		return nil
	}
	n := min(ref.Len(), rec.Len())
	var out []Measurement
	for start := 0; start+win <= n; start += win {
		r := Estimate(ref.Slice(start, start+win), rec.Slice(start, start+win))
		out = append(out, Measurement{
			ISDSeconds:  r,
			WindowStart: float64(start) / float64(ref.Rate),
			Plausible:   math.Abs(r) <= MaxPlausibleISDSeconds,
		})
	}
	return out
}

// EstimateGrowing produces one estimate per stepSeconds using ALL audio
// accumulated so far (reference and recording from time zero) — the way a
// live system with the full session history would run GCC-PHAT. The wide
// lag space makes the 300 ms plausibility rule an effective garbage filter:
// when chatter destroys the correlation, the argmax lands almost anywhere
// in ±t and is rejected, reproducing the paper's collapse in measurement
// rate (§6.4).
func EstimateGrowing(ref, rec *audio.Buffer, stepSeconds float64) []Measurement {
	step := int(stepSeconds * float64(ref.Rate))
	if step <= 0 {
		return nil
	}
	n := min(ref.Len(), rec.Len())
	var out []Measurement
	for end := step; end <= n; end += step {
		r := Estimate(ref.Slice(0, end), rec.Slice(0, end))
		out = append(out, Measurement{
			ISDSeconds:  r,
			WindowStart: float64(end-step) / float64(ref.Rate),
			Plausible:   math.Abs(r) <= MaxPlausibleISDSeconds,
		})
	}
	return out
}

// EstimateSegments produces one estimate per second the way the paper's
// comparison does: each one-second segment of the reference (accessory)
// audio is PHAT-correlated against the ENTIRE recording, and the implied
// delay is the argmax lag. The lag space spans the whole recording, so a
// segment whose content is quiet, repetitive or masked by chatter yields a
// near-uniform garbage lag that the 300 ms plausibility rule rejects —
// which is how GCC-PHAT's measurement rate collapses in Figure 12 while
// distinctive segments still measure accurately.
func EstimateSegments(ref, rec *audio.Buffer, segSeconds float64) []Measurement {
	seg := int(segSeconds * float64(ref.Rate))
	if seg <= 0 || rec.Len() == 0 {
		return nil
	}
	size := dsp.NextPow2(rec.Len() + seg)
	frec := make([]complex128, size)
	for i, v := range rec.Samples {
		frec[i] = complex(v, 0)
	}
	dsp.FFT(frec)
	var out []Measurement
	for start := 0; start+seg <= ref.Len(); start += seg {
		fseg := make([]complex128, size)
		for i, v := range ref.Samples[start : start+seg] {
			fseg[i] = complex(v, 0)
		}
		dsp.FFT(fseg)
		for i := range fseg {
			c := frec[i] * cmplx.Conj(fseg[i])
			mag := cmplx.Abs(c)
			if mag > 1e-12 {
				fseg[i] = c / complex(mag, 0)
			} else {
				fseg[i] = 0
			}
		}
		r := dsp.IFFT(fseg)
		// The segment starting at `start` appears in the recording at
		// position start+delay; correlation peak index == that position.
		bestVal := math.Inf(-1)
		bestPos := 0
		for i := 0; i < rec.Len(); i++ {
			if v := real(r[i]); v > bestVal {
				bestVal = v
				bestPos = i
			}
		}
		delay := float64(bestPos-start) / float64(ref.Rate)
		out = append(out, Measurement{
			ISDSeconds:  delay,
			WindowStart: float64(start) / float64(ref.Rate),
			Plausible:   math.Abs(delay) <= MaxPlausibleISDSeconds,
		})
	}
	return out
}
