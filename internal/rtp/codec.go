package rtp

import (
	"encoding/binary"
	"fmt"

	"ekho/internal/transport"
)

// Encoder is the RTP wire encoder (transport.WireEncoder): each Ekho
// packet becomes one RTP packet whose sequence number is the low 16 bits
// of the packet's own Ekho sequence and whose timestamp is the session
// frame clock (seq × 960 samples). Deriving both from the payload keeps
// the encoder stateless and shareable across sessions, and makes the
// wire bytes a pure function of the packet — the property the RTP↔v2
// equivalence and replay tests rely on.
type Encoder struct{}

// Wire implements transport.WireEncoder.
func (Encoder) Wire() transport.Wire { return transport.WireRTP }

// AppendMedia implements transport.WireEncoder.
func (Encoder) AppendMedia(dst []byte, m transport.Media) ([]byte, error) {
	if len(m.Samples) > transport.MaxCount {
		return dst, fmt.Errorf("%w: %d samples > %d", transport.ErrOversize, len(m.Samples), transport.MaxCount)
	}
	if HeaderLen+transport.MediaBodyLen(m) > transport.MaxDatagram {
		return dst, fmt.Errorf("%w: media datagram with %d samples > %d bytes",
			transport.ErrOversize, len(m.Samples), transport.MaxDatagram)
	}
	dst = AppendHeader(dst, Header{
		PayloadType: PTMedia, Seq: uint16(m.Seq), Timestamp: mediaTimestamp(m.Seq), SSRC: m.Session})
	dst, _ = transport.AppendMediaBody(dst, m) // counts pre-checked
	return dst, nil
}

// AppendChat implements transport.WireEncoder.
func (Encoder) AppendChat(dst []byte, c transport.Chat) ([]byte, error) {
	if len(c.Records) > transport.MaxCount {
		return dst, fmt.Errorf("%w: %d playback records > %d", transport.ErrOversize, len(c.Records), transport.MaxCount)
	}
	if len(c.Encoded) > transport.MaxCount {
		return dst, fmt.Errorf("%w: %d encoded bytes > %d", transport.ErrOversize, len(c.Encoded), transport.MaxCount)
	}
	if HeaderLen+transport.ChatBodyLen(c) > transport.MaxDatagram {
		return dst, fmt.Errorf("%w: chat datagram > %d bytes", transport.ErrOversize, transport.MaxDatagram)
	}
	dst = AppendHeader(dst, Header{
		PayloadType: PTChat, Seq: uint16(c.Seq), Timestamp: mediaTimestamp(c.Seq), SSRC: c.Session})
	dst, _ = transport.AppendChatBody(dst, c)
	return dst, nil
}

// AppendHello implements transport.WireEncoder.
func (Encoder) AppendHello(dst []byte, h transport.Hello) []byte {
	dst = AppendHeader(dst, Header{
		PayloadType: PTHello, Seq: uint16(h.Seq), Timestamp: mediaTimestamp(h.Seq), SSRC: h.Session})
	return append(dst, byte(h.Role))
}

// AppendBye implements transport.WireEncoder.
func (Encoder) AppendBye(dst []byte, b transport.Bye) []byte {
	return AppendHeader(dst, Header{
		PayloadType: PTBye, Seq: uint16(b.Seq), Timestamp: mediaTimestamp(b.Seq), SSRC: b.Session})
}

// AppendBusy implements transport.WireEncoder.
func (Encoder) AppendBusy(dst []byte, b transport.Busy) []byte {
	dst = AppendHeader(dst, Header{
		PayloadType: PTBusy, Seq: uint16(b.Seq), Timestamp: mediaTimestamp(b.Seq), SSRC: b.Session})
	dst = binary.LittleEndian.AppendUint32(dst, b.Active)
	return binary.LittleEndian.AppendUint32(dst, b.Capacity)
}

// maxStreams bounds the per-socket depacketizer map so hostile SSRC
// churn cannot grow the heap. Packets past the cap still decode, with a
// stateless (cycle-0) sequence extension.
const maxStreams = 8192

// Codec is a per-socket transport.WireCodec: the stateless RTP Encoder
// plus a sniffing decoder that demultiplexes inbound datagrams by
// framing — RTP version bits versus the Ekho v2 magic — and, for RTP,
// onto per-(SSRC, payload type) AudioDepacketizers for sequence
// reconstruction. A Codec belongs to one receive loop (stateful, not
// locked). With both framings accepted (the default) a server socket
// serves v2 and RTP clients side by side.
type Codec struct {
	Encoder
	// AcceptV2 / AcceptRTP gate which framings decode; disabling one
	// turns its datagrams into decode errors (dropped as strays).
	AcceptV2  bool
	AcceptRTP bool

	v2       transport.V2
	streams  map[uint64]*AudioDepacketizer
	overflow uint64 // packets decoded statelessly past maxStreams
}

// NewCodec returns a mux accepting both framings.
func NewCodec() *Codec {
	return &Codec{AcceptV2: true, AcceptRTP: true, streams: make(map[uint64]*AudioDepacketizer)}
}

// NewCodecFor returns a mux accepting only the given framing (still
// encoding RTP; use transport.V2 for a v2-only endpoint).
func NewCodecFor(w transport.Wire) *Codec {
	c := NewCodec()
	c.AcceptV2 = w == transport.WireV2
	c.AcceptRTP = w == transport.WireRTP
	return c
}

// DecodeInto implements transport.Decoder with the arena contract:
// payload slice capacity in msg is reused, nothing aliases b, and on
// error the retained capacity is parked back in msg.
func (c *Codec) DecodeInto(msg *transport.Message, b []byte) error {
	if len(b) >= 2 && binary.LittleEndian.Uint16(b) == transport.Magic {
		if !c.AcceptV2 {
			return fmt.Errorf("%w: v2 framing disabled", transport.ErrBadPacket)
		}
		return c.v2.DecodeInto(msg, b)
	}
	if !c.AcceptRTP {
		return fmt.Errorf("%w: rtp framing disabled", transport.ErrBadPacket)
	}
	return c.decodeRTP(msg, b)
}

func (c *Codec) decodeRTP(msg *transport.Message, b []byte) error {
	samples := msg.Media.Samples[:0]
	records := msg.Chat.Records[:0]
	encoded := msg.Chat.Encoded[:0]
	*msg = transport.Message{}
	park := func() {
		msg.Media.Samples, msg.Chat.Records, msg.Chat.Encoded = samples, records, encoded
	}
	h, payload, err := ParseHeader(b)
	if err != nil {
		park()
		return err
	}
	seq := uint32(h.Seq)
	if h.PayloadType == PTMedia || h.PayloadType == PTChat {
		if d := c.stream(h.SSRC, h.PayloadType); d != nil {
			if seq, err = d.Observe(h); err != nil {
				park()
				return err
			}
		} else {
			c.overflow++
		}
	}
	msg.Session, msg.Wire = h.SSRC, transport.WireRTP
	switch h.PayloadType {
	case PTMedia:
		msg.Type = transport.TypeMedia
		msg.Media, err = transport.DecodeMediaBody(samples, seq, h.SSRC, payload)
		msg.Chat.Records, msg.Chat.Encoded = records, encoded
	case PTChat:
		msg.Type = transport.TypeChat
		msg.Chat, err = transport.DecodeChatBody(records, encoded, seq, h.SSRC, payload)
		msg.Media.Samples = samples
	default:
		park()
		switch h.PayloadType {
		case PTHello:
			msg.Type = transport.TypeHello
			msg.Hello, err = transport.DecodeHello(seq, h.SSRC, payload)
		case PTBye:
			msg.Type = transport.TypeBye
			msg.Bye = transport.Bye{Seq: seq, Session: h.SSRC}
		case PTBusy:
			msg.Type = transport.TypeBusy
			msg.Busy, err = transport.DecodeBusy(seq, h.SSRC, payload)
		default:
			err = fmt.Errorf("%w: unknown payload type %d", ErrBadPacket, h.PayloadType)
		}
	}
	return err
}

// stream returns the depacketizer for one (SSRC, payload type) flow,
// creating it on first sight. Control payload types carry no stream
// state (their sequence numbers are effectively constant), so only media
// and chat flows occupy map entries. Returns nil past the stream cap.
func (c *Codec) stream(ssrc uint32, pt uint8) *AudioDepacketizer {
	key := uint64(ssrc)<<8 | uint64(pt)
	if d, ok := c.streams[key]; ok {
		return d
	}
	if len(c.streams) >= maxStreams {
		return nil
	}
	d := NewAudioDepacketizer(ssrc)
	c.streams[key] = d
	return d
}

// Forget drops the per-stream state for a session's flows (both payload
// types); servers call it when a session ends so long-lived sockets do
// not accumulate dead streams.
func (c *Codec) Forget(ssrc uint32) {
	delete(c.streams, uint64(ssrc)<<8|uint64(PTMedia))
	delete(c.streams, uint64(ssrc)<<8|uint64(PTChat))
}

// Stats aggregates the depacketizer counters across every live stream,
// plus the count of packets decoded past the stream cap.
func (c *Codec) Stats() (agg DepacketizerStats, overflow uint64) {
	for _, d := range c.streams {
		s := d.Stats()
		agg.Packets += s.Packets
		agg.Reordered += s.Reordered
		agg.Lost += s.Lost
		agg.Duplicates += s.Duplicates
		agg.WrongSSRC += s.WrongSSRC
	}
	return agg, c.overflow
}
