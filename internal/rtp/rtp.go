// Package rtp implements the standards-shaped wire codec: Ekho payload
// bodies carried in RFC 3550 RTP packets instead of the native v2
// framing. The shape follows the ToxAV RTP module — an AudioPacketizer /
// AudioDepacketizer pair around a fixed 12-byte header — trimmed to what
// a datagram media server needs: no CSRC lists or header extensions are
// emitted (both are skipped on receive), and every Ekho packet fits one
// datagram, so there is no fragmentation layer.
//
// Mapping onto RTP:
//
//   - SSRC            = Ekho session id (one media session per player);
//   - payload type    = Ekho packet kind (dynamic range 96-127: media 96,
//     chat 97, and the control kinds below);
//   - sequence number = low 16 bits of the Ekho sequence; the
//     depacketizer reconstructs the full 32-bit value from rollover
//     cycles, tolerating reordering;
//   - timestamp       = media clock: sequence × 960 samples (20 ms
//     frames at 48 kHz), for media and chat alike.
//
// Wire interop with the v2 framing is sniffable: an RTP packet starts
// with version bits 10 in the top of byte 0, while an Ekho v2 datagram
// starts with the little-endian magic 0xE509 (byte 0 = 0x09, top bits
// 00), so one socket can serve both codecs (see Codec).
package rtp

import (
	"encoding/binary"
	"errors"
	"fmt"

	"ekho"
)

// Version is the only RTP version in existence.
const Version = 2

// HeaderLen is the fixed RTP header size (no CSRCs, no extension).
const HeaderLen = 12

// Dynamic payload types (RFC 3551 §6 reserves 96-127 for dynamic
// assignment) carrying each Ekho packet kind.
const (
	PTMedia uint8 = 96
	PTChat  uint8 = 97
	PTHello uint8 = 100
	PTBye   uint8 = 101
	PTBusy  uint8 = 102
)

// ErrNotRTP reports a datagram whose version bits are not RTP's.
var ErrNotRTP = errors.New("rtp: not an RTP packet")

// ErrBadPacket reports a structurally invalid RTP packet.
var ErrBadPacket = errors.New("rtp: bad packet")

// ErrWrongSource reports a packet whose SSRC does not match the
// depacketizer's stream.
var ErrWrongSource = errors.New("rtp: wrong SSRC")

// Header is the fixed part of an RTP packet.
type Header struct {
	Padding     bool
	Marker      bool
	PayloadType uint8
	// Seq is the 16-bit wire sequence number.
	Seq uint16
	// Timestamp is the media-clock sampling instant.
	Timestamp uint32
	// SSRC identifies the synchronization source (the Ekho session).
	SSRC uint32
}

// AppendHeader appends the 12-byte encoding of h to dst.
func AppendHeader(dst []byte, h Header) []byte {
	b0 := byte(Version << 6)
	if h.Padding {
		b0 |= 0x20
	}
	b1 := h.PayloadType & 0x7F
	if h.Marker {
		b1 |= 0x80
	}
	dst = append(dst, b0, b1)
	dst = binary.BigEndian.AppendUint16(dst, h.Seq)
	dst = binary.BigEndian.AppendUint32(dst, h.Timestamp)
	return binary.BigEndian.AppendUint32(dst, h.SSRC)
}

// ParseHeader parses an RTP packet, returning the header and the payload
// with CSRC list, header extension and padding stripped. The payload
// aliases b.
func ParseHeader(b []byte) (Header, []byte, error) {
	if len(b) < HeaderLen {
		return Header{}, nil, fmt.Errorf("%w: %d bytes < header", ErrBadPacket, len(b))
	}
	if b[0]>>6 != Version {
		return Header{}, nil, ErrNotRTP
	}
	h := Header{
		Padding:     b[0]&0x20 != 0,
		Marker:      b[1]&0x80 != 0,
		PayloadType: b[1] & 0x7F,
		Seq:         binary.BigEndian.Uint16(b[2:]),
		Timestamp:   binary.BigEndian.Uint32(b[4:]),
		SSRC:        binary.BigEndian.Uint32(b[8:]),
	}
	p := b[HeaderLen:]
	if cc := int(b[0] & 0x0F); cc > 0 {
		if len(p) < 4*cc {
			return Header{}, nil, fmt.Errorf("%w: truncated CSRC list", ErrBadPacket)
		}
		p = p[4*cc:]
	}
	if b[0]&0x10 != 0 { // header extension (RFC 3550 §5.3.1)
		if len(p) < 4 {
			return Header{}, nil, fmt.Errorf("%w: truncated extension header", ErrBadPacket)
		}
		words := int(binary.BigEndian.Uint16(p[2:]))
		p = p[4:]
		if len(p) < 4*words {
			return Header{}, nil, fmt.Errorf("%w: truncated extension body", ErrBadPacket)
		}
		p = p[4*words:]
	}
	if h.Padding {
		if len(p) == 0 {
			return Header{}, nil, fmt.Errorf("%w: padded packet with empty payload", ErrBadPacket)
		}
		pad := int(p[len(p)-1])
		if pad == 0 || pad > len(p) {
			return Header{}, nil, fmt.Errorf("%w: bad padding count %d", ErrBadPacket, pad)
		}
		p = p[:len(p)-pad]
	}
	return h, p, nil
}

// mediaTimestamp maps an Ekho sequence number onto the RTP media clock:
// packets are one 20 ms frame apart, 960 samples at 48 kHz.
func mediaTimestamp(seq uint32) uint32 { return seq * uint32(ekho.FrameSamples) }

// AudioPacketizer emits a free-running RTP stream: one SSRC, one payload
// type, automatic sequence numbering and a timestamp that advances by
// the sample count of each packet. Ekho's own encoders (Encoder) instead
// pin sequence and timestamp to the session frame clock so encoding
// stays stateless and deterministic; the packetizer is the
// general-purpose producer for streams without such a clock.
type AudioPacketizer struct {
	// SSRC identifies the stream; PT is its payload type.
	SSRC uint32
	PT   uint8

	seq uint16
	ts  uint32
}

// NewAudioPacketizer returns a packetizer starting at sequence 0,
// timestamp 0.
func NewAudioPacketizer(ssrc uint32, pt uint8) *AudioPacketizer {
	return &AudioPacketizer{SSRC: ssrc, PT: pt}
}

// Packetize appends one RTP packet carrying payload to dst and advances
// the stream clock by samples.
func (p *AudioPacketizer) Packetize(dst, payload []byte, samples uint32) []byte {
	dst = AppendHeader(dst, Header{PayloadType: p.PT, Seq: p.seq, Timestamp: p.ts, SSRC: p.SSRC})
	p.seq++
	p.ts += samples
	return append(dst, payload...)
}

// DepacketizerStats counts what one stream's depacketizer observed.
type DepacketizerStats struct {
	// Packets counts accepted packets (including reordered arrivals).
	Packets uint64
	// Reordered counts packets that arrived behind the newest sequence
	// seen; Lost counts sequence-gap packets never seen when the stream
	// advanced past them (a later reordered arrival is not subtracted);
	// Duplicates counts re-deliveries of the newest sequence.
	Reordered  uint64
	Lost       uint64
	Duplicates uint64
	// WrongSSRC counts packets rejected for a foreign source.
	WrongSSRC uint64
}

// AudioDepacketizer consumes one RTP stream: it validates the source,
// reconstructs full 32-bit Ekho sequence numbers from the 16-bit wire
// field across rollovers, and counts reorder/loss/duplicate anomalies
// for the receiver's jitter machinery to act on.
type AudioDepacketizer struct {
	// SSRC is the accepted source; 0 means learn it from the first
	// packet.
	SSRC uint32

	learned bool
	started bool
	last    uint16 // newest wire sequence seen
	cycles  uint32 // rollover count of `last`
	stats   DepacketizerStats
}

// NewAudioDepacketizer returns a depacketizer locked to ssrc (0 = learn
// from the first packet).
func NewAudioDepacketizer(ssrc uint32) *AudioDepacketizer {
	return &AudioDepacketizer{SSRC: ssrc, learned: ssrc != 0}
}

// Observe validates a parsed header against the stream and returns the
// reconstructed 32-bit sequence number.
func (d *AudioDepacketizer) Observe(h Header) (uint32, error) {
	if !d.learned {
		d.SSRC = h.SSRC
		d.learned = true
	} else if h.SSRC != d.SSRC {
		d.stats.WrongSSRC++
		return 0, fmt.Errorf("%w: got %08x want %08x", ErrWrongSource, h.SSRC, d.SSRC)
	}
	d.stats.Packets++
	return d.extend(h.Seq), nil
}

// Depacketize parses one datagram and runs it through Observe, returning
// the payload (aliasing b), the header and the extended sequence.
func (d *AudioDepacketizer) Depacketize(b []byte) (payload []byte, h Header, seq uint32, err error) {
	h, payload, err = ParseHeader(b)
	if err != nil {
		return nil, h, 0, err
	}
	seq, err = d.Observe(h)
	if err != nil {
		return nil, h, 0, err
	}
	return payload, h, seq, nil
}

// Stats returns the stream's cumulative anomaly counters.
func (d *AudioDepacketizer) Stats() DepacketizerStats { return d.stats }

// extend reconstructs the full 32-bit sequence from a 16-bit wire value
// using the standard RFC 3550 rollover heuristic: a forward step smaller
// than half the sequence space advances the stream (wrapping bumps the
// cycle count); anything else is a reordered packet from the current or
// previous cycle.
func (d *AudioDepacketizer) extend(s uint16) uint32 {
	if !d.started {
		d.started = true
		d.last = s
		return uint32(s)
	}
	delta := s - d.last // uint16 arithmetic: wraps
	switch {
	case delta == 0:
		d.stats.Duplicates++
		return d.cycles<<16 | uint32(s)
	case delta < 0x8000: // forward
		d.stats.Lost += uint64(delta - 1)
		if s < d.last {
			d.cycles++
		}
		d.last = s
		return d.cycles<<16 | uint32(s)
	default: // behind the newest: late arrival
		d.stats.Reordered++
		c := d.cycles
		if s > d.last && c > 0 {
			c-- // e.g. 0xFFF0 arriving just after the wrap to 0x0005
		}
		return c<<16 | uint32(s)
	}
}
