package rtp

import (
	"errors"
	"reflect"
	"testing"

	"ekho/internal/transport"
)

func testMedia() transport.Media {
	samples := make([]int16, 960)
	for i := range samples {
		samples[i] = int16(i - 480)
	}
	return transport.Media{Seq: 7, Session: 3, ContentStart: 6720, ContentOff: 12, Samples: samples}
}

func testChat() transport.Chat {
	return transport.Chat{
		Seq: 9, Session: 3, ADCMicros: 1234567,
		Records: []transport.PlaybackRecord{
			{ContentStart: 100, LocalMicros: 5000, N: 960},
			{ContentStart: 1060, LocalMicros: 25000, N: 948},
		},
		Encoded: []byte{1, 2, 3, 4, 5},
	}
}

// TestCodecRoundTripMatchesV2 encodes every packet kind with both wire
// encoders and decodes both datagrams through one sniffing Codec: the
// resulting Messages must be identical except for the Wire tag. This is
// the bit-level half of the RTP↔v2 equivalence story (the hub-level half
// lives in internal/hub's loopback equivalence test).
func TestCodecRoundTripMatchesV2(t *testing.T) {
	var v2 transport.V2
	var r Encoder
	type enc func(transport.WireEncoder) ([]byte, error)
	cases := []struct {
		name string
		enc  enc
	}{
		{"hello", func(w transport.WireEncoder) ([]byte, error) {
			return w.AppendHello(nil, transport.Hello{Seq: 1, Session: 3, Role: transport.RoleScreen}), nil
		}},
		{"media", func(w transport.WireEncoder) ([]byte, error) {
			return w.AppendMedia(nil, testMedia())
		}},
		{"chat", func(w transport.WireEncoder) ([]byte, error) {
			return w.AppendChat(nil, testChat())
		}},
		{"bye", func(w transport.WireEncoder) ([]byte, error) {
			return w.AppendBye(nil, transport.Bye{Seq: 2, Session: 3}), nil
		}},
		{"busy", func(w transport.WireEncoder) ([]byte, error) {
			return w.AppendBusy(nil, transport.Busy{Seq: 0, Session: 3, Active: 8, Capacity: 8}), nil
		}},
	}
	c := NewCodec()
	for _, tc := range cases {
		bv2, err := tc.enc(v2)
		if err != nil {
			t.Fatalf("%s: v2 encode: %v", tc.name, err)
		}
		brtp, err := tc.enc(r)
		if err != nil {
			t.Fatalf("%s: rtp encode: %v", tc.name, err)
		}
		var mv2, mrtp transport.Message
		if err := c.DecodeInto(&mv2, bv2); err != nil {
			t.Fatalf("%s: decode v2: %v", tc.name, err)
		}
		if err := c.DecodeInto(&mrtp, brtp); err != nil {
			t.Fatalf("%s: decode rtp: %v", tc.name, err)
		}
		if mv2.Wire != transport.WireV2 || mrtp.Wire != transport.WireRTP {
			t.Fatalf("%s: wire tags %v / %v", tc.name, mv2.Wire, mrtp.Wire)
		}
		mv2.Wire, mrtp.Wire = 0, 0
		normalize(&mv2)
		normalize(&mrtp)
		if !reflect.DeepEqual(mv2, mrtp) {
			t.Fatalf("%s: messages differ:\n v2: %+v\nrtp: %+v", tc.name, mv2, mrtp)
		}
	}
}

// normalize empties zero-length payload slices so reflect.DeepEqual
// ignores nil-vs-empty capacity differences between decode paths.
func normalize(m *transport.Message) {
	if len(m.Media.Samples) == 0 {
		m.Media.Samples = nil
	}
	if len(m.Chat.Records) == 0 {
		m.Chat.Records = nil
	}
	if len(m.Chat.Encoded) == 0 {
		m.Chat.Encoded = nil
	}
}

func TestCodecFramingGates(t *testing.T) {
	v2Only := NewCodecFor(transport.WireV2)
	rtpOnly := NewCodecFor(transport.WireRTP)
	bv2 := transport.EncodeHello(transport.Hello{Session: 1, Role: transport.RoleScreen})
	brtp := Encoder{}.AppendHello(nil, transport.Hello{Session: 1, Role: transport.RoleScreen})

	var msg transport.Message
	if err := v2Only.DecodeInto(&msg, bv2); err != nil {
		t.Fatalf("v2-only rejects v2: %v", err)
	}
	if err := v2Only.DecodeInto(&msg, brtp); err == nil {
		t.Fatal("v2-only accepted RTP")
	}
	if err := rtpOnly.DecodeInto(&msg, brtp); err != nil {
		t.Fatalf("rtp-only rejects RTP: %v", err)
	}
	if err := rtpOnly.DecodeInto(&msg, bv2); err == nil {
		t.Fatal("rtp-only accepted v2")
	}
}

func TestCodecTracksStreamsAndForgets(t *testing.T) {
	c := NewCodec()
	var msg transport.Message
	m := testMedia()
	for seq := uint32(0); seq < 3; seq++ {
		m.Seq = seq
		b, err := Encoder{}.AppendMedia(nil, m)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.DecodeInto(&msg, b); err != nil {
			t.Fatal(err)
		}
	}
	// Re-deliver the last datagram: the per-stream depacketizer sees it.
	b, _ := Encoder{}.AppendMedia(nil, m)
	if err := c.DecodeInto(&msg, b); err != nil {
		t.Fatal(err)
	}
	agg, overflow := c.Stats()
	if agg.Packets != 4 || agg.Duplicates != 1 || overflow != 0 {
		t.Fatalf("stats %+v overflow %d", agg, overflow)
	}
	c.Forget(m.Session)
	if agg, _ := c.Stats(); agg.Packets != 0 {
		t.Fatalf("stats after Forget: %+v", agg)
	}
}

// TestCodecDecodeExtendsSequence checks the wire path reconstructs full
// 32-bit Ekho sequence numbers: media past seq 65535 round-trips.
func TestCodecDecodeExtendsSequence(t *testing.T) {
	c := NewCodec()
	var msg transport.Message
	m := testMedia()
	for _, seq := range []uint32{0xFFFE, 0xFFFF, 0x10000, 0x10001} {
		m.Seq = seq
		b, err := Encoder{}.AppendMedia(nil, m)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.DecodeInto(&msg, b); err != nil {
			t.Fatal(err)
		}
		if msg.Media.Seq != seq {
			t.Fatalf("seq %#x decoded as %#x", seq, msg.Media.Seq)
		}
	}
}

func TestEncoderRejectsOversize(t *testing.T) {
	big := transport.Media{Samples: make([]int16, transport.MaxCount+1)}
	if _, err := (Encoder{}).AppendMedia(nil, big); !errors.Is(err, transport.ErrOversize) {
		t.Fatalf("oversize media: err %v", err)
	}
	bigChat := transport.Chat{Encoded: make([]byte, transport.MaxCount+1)}
	if _, err := (Encoder{}).AppendChat(nil, bigChat); !errors.Is(err, transport.ErrOversize) {
		t.Fatalf("oversize chat: err %v", err)
	}
}

// TestHotPathAllocFree locks in the packet-path allocation contract for
// the RTP wire: steady-state encode into a reused buffer and decode into
// a reused Message allocate nothing.
func TestHotPathAllocFree(t *testing.T) {
	m := testMedia()
	ch := testChat()
	c := NewCodec()
	var buf []byte
	var msg transport.Message
	var err error
	// Warm the reused capacities and the codec's stream map.
	warm := func() {
		if buf, err = (Encoder{}).AppendMedia(buf[:0], m); err != nil {
			t.Fatal(err)
		}
		if err = c.DecodeInto(&msg, buf); err != nil {
			t.Fatal(err)
		}
		if buf, err = (Encoder{}).AppendChat(buf[:0], ch); err != nil {
			t.Fatal(err)
		}
		if err = c.DecodeInto(&msg, buf); err != nil {
			t.Fatal(err)
		}
	}
	warm()
	if allocs := testing.AllocsPerRun(200, warm); allocs != 0 {
		t.Fatalf("RTP encode+decode hot path allocates %.1f per round", allocs)
	}
}
