package rtp

import (
	"encoding/binary"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestHeaderRoundTrip(t *testing.T) {
	in := Header{Marker: true, PayloadType: PTMedia, Seq: 0xBEEF, Timestamp: 123456789, SSRC: 0xCAFEBABE}
	b := AppendHeader(nil, in)
	if len(b) != HeaderLen {
		t.Fatalf("header length %d, want %d", len(b), HeaderLen)
	}
	if b[0]>>6 != Version {
		t.Fatalf("version bits %d", b[0]>>6)
	}
	out, payload, err := ParseHeader(b)
	if err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("round trip: got %+v want %+v", out, in)
	}
	if len(payload) != 0 {
		t.Fatalf("payload %d bytes, want 0", len(payload))
	}
}

// TestParseHeaderSkipsCSRCAndExtension builds a packet with features the
// encoder never emits — a CSRC list, a header extension and padding —
// and checks the parser strips all three.
func TestParseHeaderSkipsCSRCAndExtension(t *testing.T) {
	b := AppendHeader(nil, Header{PayloadType: PTMedia, Seq: 7, SSRC: 9})
	b[0] |= 0x02 | 0x10 | 0x20            // cc=2, extension, padding
	b = append(b, 1, 1, 1, 1, 2, 2, 2, 2) // two CSRCs
	// Extension: profile id, length=1 word, then 4 bytes.
	b = binary.BigEndian.AppendUint16(b, 0xBEDE)
	b = binary.BigEndian.AppendUint16(b, 1)
	b = append(b, 9, 9, 9, 9)
	b = append(b, 'p', 'a', 'y')
	b = append(b, 0, 0, 3) // 3 bytes of padding, count in the last byte
	h, payload, err := ParseHeader(b)
	if err != nil {
		t.Fatal(err)
	}
	if !h.Padding || h.Seq != 7 || h.SSRC != 9 {
		t.Fatalf("header %+v", h)
	}
	if string(payload) != "pay" {
		t.Fatalf("payload %q, want \"pay\"", payload)
	}
}

func TestParseHeaderErrors(t *testing.T) {
	valid := AppendHeader(nil, Header{PayloadType: PTMedia})
	cases := []struct {
		name string
		b    []byte
		want error
	}{
		{"short", valid[:HeaderLen-1], ErrBadPacket},
		{"wrong version", append([]byte{0x00}, valid[1:]...), ErrNotRTP},
		{"truncated csrc", func() []byte {
			b := append([]byte(nil), valid...)
			b[0] |= 0x01 // cc=1 but no CSRC bytes
			return b
		}(), ErrBadPacket},
		{"truncated extension", func() []byte {
			b := append([]byte(nil), valid...)
			b[0] |= 0x10
			return append(b, 0, 0) // half an extension header
		}(), ErrBadPacket},
		{"padding count zero", func() []byte {
			b := append([]byte(nil), valid...)
			b[0] |= 0x20
			return append(b, 0)
		}(), ErrBadPacket},
		{"padding past payload", func() []byte {
			b := append([]byte(nil), valid...)
			b[0] |= 0x20
			return append(b, 1, 2, 200)
		}(), ErrBadPacket},
	}
	for _, tc := range cases {
		if _, _, err := ParseHeader(tc.b); !errors.Is(err, tc.want) {
			t.Errorf("%s: err %v, want %v", tc.name, err, tc.want)
		}
	}
}

func TestPacketizerFreeRunningClock(t *testing.T) {
	p := NewAudioPacketizer(42, PTMedia)
	var buf []byte
	for i := 0; i < 3; i++ {
		buf = p.Packetize(buf[:0], []byte{byte(i)}, 960)
		h, payload, err := ParseHeader(buf)
		if err != nil {
			t.Fatal(err)
		}
		if h.Seq != uint16(i) || h.Timestamp != uint32(i)*960 || h.SSRC != 42 {
			t.Fatalf("packet %d: header %+v", i, h)
		}
		if len(payload) != 1 || payload[0] != byte(i) {
			t.Fatalf("packet %d: payload %v", i, payload)
		}
	}
}

func TestDepacketizerExtendsAcrossRollover(t *testing.T) {
	d := NewAudioDepacketizer(1)
	feed := []uint16{0xFFFE, 0xFFFF, 0x0000, 0x0001}
	want := []uint32{0xFFFE, 0xFFFF, 0x10000, 0x10001}
	for i, s := range feed {
		got, err := d.Observe(Header{SSRC: 1, Seq: s})
		if err != nil {
			t.Fatal(err)
		}
		if got != want[i] {
			t.Fatalf("seq %#x: extended %#x, want %#x", s, got, want[i])
		}
	}
}

func TestDepacketizerReorderAcrossWrap(t *testing.T) {
	d := NewAudioDepacketizer(1)
	mustObserve(t, d, 0xFFFE) // sync
	mustObserve(t, d, 0x0003) // forward across the wrap: cycle 1
	// A straggler from before the wrap must extend into cycle 0.
	if got := mustObserve(t, d, 0xFFFF); got != 0xFFFF {
		t.Fatalf("pre-wrap straggler extended to %#x, want 0xFFFF", got)
	}
	// A reordered packet from after the wrap stays in cycle 1.
	if got := mustObserve(t, d, 0x0001); got != 0x10001 {
		t.Fatalf("post-wrap straggler extended to %#x, want 0x10001", got)
	}
	st := d.Stats()
	if st.Reordered != 2 {
		t.Fatalf("reordered %d, want 2", st.Reordered)
	}
	if st.Lost != 4 { // 0xFFFF..0x0002 skipped on the forward step
		t.Fatalf("lost %d, want 4", st.Lost)
	}
}

func mustObserve(t *testing.T, d *AudioDepacketizer, s uint16) uint32 {
	t.Helper()
	got, err := d.Observe(Header{SSRC: 1, Seq: s})
	if err != nil {
		t.Fatal(err)
	}
	return got
}

func TestDepacketizerAnomalyCounters(t *testing.T) {
	d := NewAudioDepacketizer(0) // learn SSRC from the first packet
	if _, err := d.Observe(Header{SSRC: 5, Seq: 0}); err != nil {
		t.Fatal(err)
	}
	mustObserveSSRC(t, d, 5, 1)
	mustObserveSSRC(t, d, 5, 1) // duplicate
	mustObserveSSRC(t, d, 5, 4) // gap: 2, 3 lost
	mustObserveSSRC(t, d, 5, 3) // one arrives late after all
	if _, err := d.Observe(Header{SSRC: 6, Seq: 7}); !errors.Is(err, ErrWrongSource) {
		t.Fatalf("foreign SSRC: err %v", err)
	}
	st := d.Stats()
	want := DepacketizerStats{Packets: 5, Reordered: 1, Lost: 2, Duplicates: 1, WrongSSRC: 1}
	if st != want {
		t.Fatalf("stats %+v, want %+v", st, want)
	}
}

func mustObserveSSRC(t *testing.T, d *AudioDepacketizer, ssrc uint32, s uint16) {
	t.Helper()
	if _, err := d.Observe(Header{SSRC: ssrc, Seq: s}); err != nil {
		t.Fatal(err)
	}
}

// TestExtendRecoversShuffledStream is the reorder/loss/duplicate property
// test: a 32-bit sequence stream shuffled within a bounded window, with
// random drops and duplicates, must always extend back to the original
// 32-bit values — including across 16-bit rollovers.
func TestExtendRecoversShuffledStream(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		// Start below the 16-bit boundary so the stream straddles a
		// rollover (the first-seen packet must still be in cycle 0).
		base := uint32(0xFE00) + uint32(rng.Intn(0x100))
		const n = 600
		type pkt struct{ seq uint32 }
		var stream []pkt
		for i := 0; i < n; i++ {
			seq := base + uint32(i)
			if rng.Float64() < 0.05 {
				continue // lost
			}
			stream = append(stream, pkt{seq})
			if rng.Float64() < 0.03 {
				stream = append(stream, pkt{seq}) // duplicated
			}
		}
		// Shuffle within a window far below the 0x8000 ambiguity bound.
		const window = 16
		for i := range stream {
			j := i + rng.Intn(window)
			if j >= len(stream) {
				j = len(stream) - 1
			}
			stream[i], stream[j] = stream[j], stream[i]
		}
		d := NewAudioDepacketizer(1)
		for _, p := range stream {
			got, err := d.Observe(Header{SSRC: 1, Seq: uint16(p.seq)})
			if err != nil {
				return false
			}
			if got != p.seq {
				t.Logf("seed %d: wire %#x extended to %#x, want %#x", seed, uint16(p.seq), got, p.seq)
				return false
			}
		}
		return d.Stats().Packets == uint64(len(stream))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
