package rtp

import (
	"testing"

	"ekho/internal/transport"
)

// FuzzParseHeader throws arbitrary bytes at the RTP header parser: it
// must never panic, and whatever it accepts must re-encode to a header
// that parses back identically.
func FuzzParseHeader(f *testing.F) {
	f.Add(AppendHeader(nil, Header{PayloadType: PTMedia, Seq: 1, Timestamp: 960, SSRC: 7}))
	f.Add(AppendHeader(nil, Header{Marker: true, PayloadType: PTChat, Seq: 0xFFFF, SSRC: 1}))
	f.Add([]byte{0x80})
	f.Add([]byte(nil))
	f.Fuzz(func(t *testing.T, b []byte) {
		h, payload, err := ParseHeader(b)
		if err != nil {
			return
		}
		if len(payload) > len(b) {
			t.Fatalf("payload %d bytes from %d-byte packet", len(payload), len(b))
		}
		// Re-encode (the encoder never emits CSRCs, extensions or padding,
		// so clear the padding flag) and parse back.
		h2 := h
		h2.Padding = false
		h3, p3, err := ParseHeader(append(AppendHeader(nil, h2), payload...))
		if err != nil {
			t.Fatalf("re-encoded header rejected: %v", err)
		}
		if h3 != h2 || string(p3) != string(payload) {
			t.Fatalf("round trip drifted: %+v/%q -> %+v/%q", h2, payload, h3, p3)
		}
	})
}

// FuzzCodecDecode drives the sniffing codec with arbitrary datagrams:
// decode must never panic regardless of framing, and a success must
// label the message with a known wire.
func FuzzCodecDecode(f *testing.F) {
	f.Add(transport.EncodeHello(transport.Hello{Session: 1, Role: transport.RoleScreen}))
	f.Add(Encoder{}.AppendHello(nil, transport.Hello{Session: 1, Role: transport.RoleController}))
	if b, err := (Encoder{}).AppendMedia(nil, transport.Media{Seq: 1, Session: 2, ContentStart: -1, Samples: []int16{1, 2, 3}}); err == nil {
		f.Add(b)
	}
	f.Fuzz(func(t *testing.T, b []byte) {
		c := NewCodec()
		var msg transport.Message
		if err := c.DecodeInto(&msg, b); err != nil {
			return
		}
		if msg.Wire != transport.WireV2 && msg.Wire != transport.WireRTP {
			t.Fatalf("decoded message has unknown wire %v", msg.Wire)
		}
	})
}
