package vclock

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestClockOffsetAndDrift(t *testing.T) {
	c := &Clock{Offset: 1.5, DriftPPM: 100}
	local := c.Local(10)
	// 10 s of true time gains 1 ms at 100 ppm, plus the 1.5 s offset.
	want := Time(10*1.0001 + 1.5)
	if math.Abs(float64(local-want)) > 1e-12 {
		t.Fatalf("local %v want %v", local, want)
	}
}

func TestClockInverseProperty(t *testing.T) {
	f := func(offMilli int16, driftSel int8, tSel uint32) bool {
		c := &Clock{Offset: float64(offMilli) / 1000, DriftPPM: float64(driftSel)}
		tt := Time(float64(tSel%360000) / 100) // up to 1 hour
		back := c.TrueTime(c.Local(tt))
		return math.Abs(float64(back-tt)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestClockMonotonicProperty(t *testing.T) {
	// Local time must be strictly increasing in true time for any sane
	// drift (|drift| << 1e6 ppm).
	f := func(driftSel int8, aSel, bSel uint32) bool {
		c := &Clock{DriftPPM: float64(driftSel) * 3}
		a := Time(float64(aSel) / 1000)
		b := a + Time(float64(bSel%100000+1)/1e6)
		return c.Local(b) > c.Local(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestADCDACStamps(t *testing.T) {
	c := &Clock{Offset: 2, ADCLatency: 0.001, DACLatency: 0.002}
	// Sound arriving at true t=5 is stamped at local(5.001).
	if got, want := c.StampADC(5), c.Local(5.001); got != want {
		t.Fatalf("ADC stamp %v want %v", got, want)
	}
	// A sample scheduled for local time L plays at true(L)+DACLatency.
	local := c.Local(5)
	if got, want := c.StampDAC(local), Time(5.002); math.Abs(float64(got-want)) > 1e-12 {
		t.Fatalf("DAC stamp %v want %v", got, want)
	}
}

func TestSchedulerOrdering(t *testing.T) {
	s := NewScheduler()
	var order []int
	s.At(3, func() { order = append(order, 3) })
	s.At(1, func() { order = append(order, 1) })
	s.At(2, func() { order = append(order, 2) })
	s.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order %v", order)
	}
	if s.Now() != 3 {
		t.Fatalf("now %v", s.Now())
	}
}

func TestSchedulerFIFOAtSameTime(t *testing.T) {
	s := NewScheduler()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(1, func() { order = append(order, i) })
	}
	s.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events reordered: %v", order)
		}
	}
}

func TestSchedulerCascade(t *testing.T) {
	s := NewScheduler()
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < 100 {
			s.After(0.02, tick)
		}
	}
	s.After(0.02, tick)
	s.Run()
	if count != 100 {
		t.Fatalf("ticks %d", count)
	}
	if math.Abs(float64(s.Now())-2.0) > 1e-9 {
		t.Fatalf("now %v want 2.0", s.Now())
	}
}

func TestSchedulerRunUntil(t *testing.T) {
	s := NewScheduler()
	fired := 0
	s.At(1, func() { fired++ })
	s.At(5, func() { fired++ })
	s.RunUntil(3)
	if fired != 1 {
		t.Fatalf("fired %d want 1", fired)
	}
	if s.Now() != 3 {
		t.Fatalf("now %v want 3", s.Now())
	}
	if s.Pending() != 1 {
		t.Fatalf("pending %d", s.Pending())
	}
	s.RunUntil(10)
	if fired != 2 || s.Now() != 10 {
		t.Fatalf("fired %d now %v", fired, s.Now())
	}
}

func TestSchedulerPastPanics(t *testing.T) {
	s := NewScheduler()
	s.At(5, func() {})
	s.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past should panic")
		}
	}()
	s.At(1, func() {})
}

func TestSchedulerNegativeDelayPanics(t *testing.T) {
	s := NewScheduler()
	defer func() {
		if recover() == nil {
			t.Fatal("negative delay should panic")
		}
	}()
	s.After(-1, func() {})
}

func TestSchedulerStressRandomOrder(t *testing.T) {
	s := NewScheduler()
	rng := rand.New(rand.NewSource(42))
	var last Time = -1
	ok := true
	for i := 0; i < 5000; i++ {
		at := Time(rng.Float64() * 100)
		s.At(at, func() {
			if s.Now() < last {
				ok = false
			}
			last = s.Now()
		})
	}
	s.Run()
	if !ok {
		t.Fatal("events fired out of time order")
	}
}
