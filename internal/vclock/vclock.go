// Package vclock provides the virtual time base used by the simulator:
// a discrete-event scheduler and per-device local clocks with offset,
// frequency drift and converter (ADC/DAC) latency.
//
// The paper's problem statement hinges on devices NOT sharing a clock
// (§3.2): each endpoint timestamps media with its own local clock, which is
// offset from true time by an unknown amount and drifts slowly. The
// simulator models this explicitly so that Ekho's claim — ISD estimation
// without any clock synchronization — is actually exercised: the estimator
// only ever sees local timestamps.
package vclock

import (
	"container/heap"
	"fmt"
	"math"
)

// Time is simulation time in seconds since the start of the run.
// float64 keeps the math (sub-sample delays, drift) simple; at audio time
// scales (minutes) the 53-bit mantissa gives sub-nanosecond resolution.
type Time float64

// Duration is a span of simulation time in seconds.
type Duration = float64

// Clock converts true simulation time to a device's local time. Local time
// is what the device stamps on ADC captures and DAC playbacks.
type Clock struct {
	// Offset is the constant difference between local and true time at
	// t=0 (local = true + Offset at zero drift).
	Offset Duration
	// DriftPPM is the frequency error in parts per million. A clock with
	// +50 ppm gains 50 µs of local time per true second.
	DriftPPM float64
	// ADCLatency is the fixed hardware delay between sound hitting the
	// transducer and the sample being timestamped ("no variation" class
	// in §3.3).
	ADCLatency Duration
	// DACLatency is the fixed delay between a sample being scheduled and
	// it actually leaving the speaker.
	DACLatency Duration
}

// Local converts true time to this device's local time.
func (c *Clock) Local(t Time) Time {
	return Time(float64(t)*(1+c.DriftPPM*1e-6) + c.Offset)
}

// TrueTime inverts Local.
func (c *Clock) TrueTime(local Time) Time {
	return Time((float64(local) - c.Offset) / (1 + c.DriftPPM*1e-6))
}

// StampADC returns the local timestamp a capture at true time t receives.
func (c *Clock) StampADC(t Time) Time { return c.Local(t + Time(c.ADCLatency)) }

// StampDAC returns the true time at which a sample scheduled for local
// time local actually plays.
func (c *Clock) StampDAC(local Time) Time {
	return c.TrueTime(local) + Time(c.DACLatency)
}

// event is a scheduled callback in the discrete-event queue.
type event struct {
	at    Time
	seq   uint64 // tie-breaker preserving schedule order
	fn    func()
	index int
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}
func (q *eventQueue) Push(x any) {
	e := x.(*event)
	e.index = len(*q)
	*q = append(*q, e)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// Scheduler is a deterministic discrete-event simulation loop. Events fire
// in timestamp order (FIFO among equal timestamps). All of netsim and the
// end-to-end session run on one Scheduler, which is what lets "30 minutes
// of streaming" complete in well under a second of wall time.
type Scheduler struct {
	now   Time
	queue eventQueue
	seq   uint64
}

// NewScheduler returns a scheduler at time zero.
func NewScheduler() *Scheduler {
	s := &Scheduler{}
	heap.Init(&s.queue)
	return s
}

// Now returns the current simulation time.
func (s *Scheduler) Now() Time { return s.now }

// At schedules fn to run at absolute time t. Scheduling in the past (or
// exactly now) panics: it indicates a causality bug in the caller.
func (s *Scheduler) At(t Time, fn func()) {
	if t < s.now {
		panic(fmt.Sprintf("vclock: scheduling event at %v before now %v", t, s.now))
	}
	s.seq++
	heap.Push(&s.queue, &event{at: t, seq: s.seq, fn: fn})
}

// After schedules fn to run d seconds from now.
func (s *Scheduler) After(d Duration, fn func()) {
	if d < 0 || math.IsNaN(d) {
		panic(fmt.Sprintf("vclock: negative or NaN delay %v", d))
	}
	s.At(s.now+Time(d), fn)
}

// Step runs the next pending event, returning false when the queue is empty.
func (s *Scheduler) Step() bool {
	if s.queue.Len() == 0 {
		return false
	}
	e := heap.Pop(&s.queue).(*event)
	s.now = e.at
	e.fn()
	return true
}

// RunUntil processes events until the queue is empty or the next event is
// after deadline; time then advances to the deadline.
func (s *Scheduler) RunUntil(deadline Time) {
	for s.queue.Len() > 0 && s.queue[0].at <= deadline {
		s.Step()
	}
	if s.now < deadline {
		s.now = deadline
	}
}

// Run drains the whole event queue.
func (s *Scheduler) Run() {
	for s.Step() {
	}
}

// Pending reports the number of queued events.
func (s *Scheduler) Pending() int { return s.queue.Len() }
