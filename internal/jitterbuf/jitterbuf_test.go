package jitterbuf

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func frame(seq int) Frame {
	return Frame{Seq: seq, Samples: []float64{float64(seq)}}
}

func TestWaitsUntilThreshold(t *testing.T) {
	b := New(3)
	if _, ev := b.Pop(); ev != Waiting {
		t.Fatal("empty buffer should wait")
	}
	b.Push(frame(0))
	b.Push(frame(1))
	if _, ev := b.Pop(); ev != Waiting {
		t.Fatal("below threshold should wait")
	}
	b.Push(frame(2))
	s, ev := b.Pop()
	if ev != Played || s[0] != 0 {
		t.Fatalf("expected frame 0, got %v %v", s, ev)
	}
}

func TestPlaysInSequence(t *testing.T) {
	b := New(2)
	// Out-of-order arrival.
	b.Push(frame(1))
	b.Push(frame(0))
	b.Push(frame(2))
	for want := 0; want < 3; want++ {
		s, ev := b.Pop()
		if ev != Played || int(s[0]) != want {
			t.Fatalf("pop %d: %v %v", want, s, ev)
		}
	}
}

func TestConcealOnGap(t *testing.T) {
	b := New(2)
	b.Push(frame(0))
	b.Push(frame(1))
	b.Push(frame(3)) // frame 2 lost
	if _, ev := b.Pop(); ev != Played {
		t.Fatal("frame 0")
	}
	if _, ev := b.Pop(); ev != Played {
		t.Fatal("frame 1")
	}
	// Frame 2 missing: playback jumps ahead to frame 3 immediately.
	s, ev := b.Pop()
	if ev != Concealed || int(s[0]) != 3 {
		t.Fatalf("gap should jump ahead to frame 3, got %v %v", s, ev)
	}
	st := b.Stats()
	if st.Concealed != 1 || st.Played != 2 {
		t.Fatalf("stats %+v", st)
	}
}

func TestDepletionForcesRebuffering(t *testing.T) {
	b := New(2)
	b.Push(frame(0))
	b.Push(frame(1))
	b.Pop()
	b.Pop()
	// Now empty: should wait, and wait again until threshold re-reached.
	if _, ev := b.Pop(); ev != Waiting {
		t.Fatal("depleted buffer should wait")
	}
	b.Push(frame(2))
	if _, ev := b.Pop(); ev != Waiting {
		t.Fatal("still below threshold after depletion")
	}
	b.Push(frame(3))
	s, ev := b.Pop()
	if ev != Played || int(s[0]) != 2 {
		t.Fatalf("resume at frame 2, got %v %v", s, ev)
	}
}

func TestLateAndDuplicateFramesDropped(t *testing.T) {
	b := New(1)
	b.Push(frame(0))
	b.Pop()
	b.Push(frame(0)) // late
	if b.Level() != 0 {
		t.Fatal("late frame should be dropped")
	}
	b.Push(frame(5))
	b.Push(Frame{Seq: 5, Samples: []float64{99}}) // duplicate
	if b.Level() != 1 {
		t.Fatal("duplicate should be ignored")
	}
	// Frames 1-4 were never pushed: playback jumps straight to frame 5,
	// and the original frame (not the duplicate) plays.
	s, ev := b.Pop()
	if ev != Concealed || s[0] != 5 {
		t.Fatalf("original frame should win via jump-ahead: %v %v", s, ev)
	}
}

func TestThresholdClamp(t *testing.T) {
	b := New(0)
	if b.ThresholdFrames != 1 {
		t.Fatal("threshold should clamp to 1")
	}
}

func TestEventString(t *testing.T) {
	if Played.String() != "played" || Concealed.String() != "concealed" || Waiting.String() != "waiting" {
		t.Fatal("event names")
	}
}

func TestConservationProperty(t *testing.T) {
	// Property: frames in = played + still buffered + dropped-late, and
	// pops = played + concealed + waits.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b := New(3)
		pushed := 0
		pops := 0
		seq := 0
		for step := 0; step < 500; step++ {
			if rng.Float64() < 0.55 {
				if rng.Float64() > 0.05 { // 5% loss: seq skipped entirely
					b.Push(frame(seq))
					pushed++
				}
				seq++
			} else {
				b.Pop()
				pops++
			}
		}
		st := b.Stats()
		if st.Played+st.Concealed+st.Waits != pops {
			return false
		}
		return st.Played+b.Level() <= pushed
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestNextSeqAdvancesMonotonically(t *testing.T) {
	b := New(2)
	rng := rand.New(rand.NewSource(1))
	seq := 0
	last := -1
	for step := 0; step < 1000; step++ {
		if rng.Float64() < 0.6 {
			if rng.Float64() > 0.1 {
				b.Push(frame(seq))
			}
			seq++
		} else {
			b.Pop()
			if b.NextSeq() < last {
				t.Fatal("NextSeq went backwards")
			}
			last = b.NextSeq()
		}
	}
}
