// Package jitterbuf implements the threshold jitter buffer described in
// §3.3 of the paper: frames arriving from the network are buffered, and
// playout starts only once the buffered duration exceeds a threshold.
// Fluctuations below the threshold are absorbed; a loss or delay spike that
// depletes the buffer shifts the playout clock — the "high-frequency"
// source of ISD change that forces Ekho to re-synchronize.
//
// The buffer is deliberately device-like rather than ideal: when a frame
// misses its playout deadline the device plays concealment (or silence)
// and the stream's effective latency changes, exactly the behaviour seen
// in Figure 9 where single losses bump ISD by one 20 ms frame.
package jitterbuf

import "sort"

// Frame is one buffered media frame.
type Frame struct {
	// Seq is the sender's frame sequence number.
	Seq int
	// Samples is the decoded PCM payload.
	Samples []float64
}

// Event describes what the buffer produced for one playout tick.
type Event int

// Playout outcomes.
const (
	// Played: the expected frame was present and consumed.
	Played Event = iota
	// Concealed: the expected frame was missing, so playback jumped ahead
	// to the next buffered frame — that frame's samples are returned and
	// all subsequent content now plays earlier ("the playback missing one
	// frame and jumping ahead by 20 ms", §6.1). This is the jitter-buffer
	// behaviour that changes ISD on loss.
	Concealed
	// Waiting: the buffer has not yet reached its startup threshold (or
	// re-buffering after depletion); nothing is consumed.
	Waiting
)

// String implements fmt.Stringer.
func (e Event) String() string {
	switch e {
	case Played:
		return "played"
	case Concealed:
		return "concealed"
	default:
		return "waiting"
	}
}

// Buffer is a sequence-ordered threshold jitter buffer.
type Buffer struct {
	// ThresholdFrames is how many frames must accumulate before playout
	// starts (e.g. 3 frames = 60 ms as in §3.3's example).
	ThresholdFrames int

	frames   map[int]Frame
	nextSeq  int  // next sequence number to play
	started  bool // reached threshold at least once since last depletion
	played   int
	conceals int
	waits    int
}

// New returns a buffer requiring thresholdFrames before playout.
func New(thresholdFrames int) *Buffer {
	if thresholdFrames < 1 {
		thresholdFrames = 1
	}
	return &Buffer{
		ThresholdFrames: thresholdFrames,
		frames:          make(map[int]Frame),
	}
}

// Push inserts a received frame. Late frames (seq already played) are
// dropped; duplicates are ignored.
func (b *Buffer) Push(f Frame) {
	if f.Seq < b.nextSeq {
		return // too late, playout has moved past it
	}
	if _, ok := b.frames[f.Seq]; ok {
		return
	}
	b.frames[f.Seq] = f
}

// Pop is called once per frame interval by the playout clock. It returns
// the samples to play (nil for Waiting) and the event describing what
// happened.
func (b *Buffer) Pop() ([]float64, Event) {
	if !b.started {
		if len(b.frames) >= b.ThresholdFrames {
			b.started = true
			// Align playout to the oldest buffered frame.
			b.nextSeq = b.oldestSeq()
		} else {
			b.waits++
			return nil, Waiting
		}
	}
	if f, ok := b.frames[b.nextSeq]; ok {
		delete(b.frames, b.nextSeq)
		b.nextSeq++
		b.played++
		return f.Samples, Played
	}
	// Expected frame missing. If the buffer holds later frames, playback
	// jumps ahead to the oldest one (content now plays earlier — the ISD
	// shift the paper observes per loss); if the buffer is fully depleted
	// we fall back to re-buffering.
	if len(b.frames) == 0 {
		b.started = false
		b.waits++
		return nil, Waiting
	}
	jump := b.oldestSeq()
	f := b.frames[jump]
	delete(b.frames, jump)
	b.nextSeq = jump + 1
	b.conceals++
	return f.Samples, Concealed
}

// oldestSeq returns the smallest buffered sequence number.
func (b *Buffer) oldestSeq() int {
	keys := make([]int, 0, len(b.frames))
	for k := range b.frames {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys[0]
}

// Level returns the number of buffered frames.
func (b *Buffer) Level() int { return len(b.frames) }

// NextSeq returns the sequence number the buffer expects to play next.
func (b *Buffer) NextSeq() int { return b.nextSeq }

// Stats summarizes playout history.
type Stats struct {
	Played, Concealed, Waits int
}

// Stats returns cumulative playout counters.
func (b *Buffer) Stats() Stats {
	return Stats{Played: b.played, Concealed: b.conceals, Waits: b.waits}
}
