// Package jitterbuf implements the threshold jitter buffer described in
// §3.3 of the paper: frames arriving from the network are buffered, and
// playout starts only once the buffered duration exceeds a threshold.
// Fluctuations below the threshold are absorbed; a loss or delay spike that
// depletes the buffer shifts the playout clock — the "high-frequency"
// source of ISD change that forces Ekho to re-synchronize.
//
// The buffer is deliberately device-like rather than ideal: when a frame
// misses its playout deadline the device plays concealment (or silence)
// and the stream's effective latency changes, exactly the behaviour seen
// in Figure 9 where single losses bump ISD by one 20 ms frame.
package jitterbuf

import "sort"

// Frame is one buffered media frame.
type Frame struct {
	// Seq is the sender's frame sequence number.
	Seq int
	// Samples is the decoded PCM payload.
	Samples []float64
}

// Event describes what the buffer produced for one playout tick.
type Event int

// Playout outcomes.
const (
	// Played: the expected frame was present and consumed.
	Played Event = iota
	// Concealed: the expected frame was missing, so playback jumped ahead
	// to the next buffered frame — that frame's samples are returned and
	// all subsequent content now plays earlier ("the playback missing one
	// frame and jumping ahead by 20 ms", §6.1). This is the jitter-buffer
	// behaviour that changes ISD on loss.
	Concealed
	// Waiting: the buffer has not yet reached its startup threshold (or
	// re-buffering after depletion); nothing is consumed.
	Waiting
)

// String implements fmt.Stringer.
func (e Event) String() string {
	switch e {
	case Played:
		return "played"
	case Concealed:
		return "concealed"
	default:
		return "waiting"
	}
}

// DefaultMaxFrames caps a buffer when the caller does not choose a
// bound: ~5 s of 20 ms frames, far beyond any sane playout threshold
// but small enough that a stalled session cannot grow the heap.
const DefaultMaxFrames = 256

// Buffer is a sequence-ordered threshold jitter buffer.
type Buffer struct {
	// ThresholdFrames is how many frames must accumulate before playout
	// starts (e.g. 3 frames = 60 ms as in §3.3's example).
	ThresholdFrames int
	// MaxFrames caps how many frames the buffer holds; arrivals beyond
	// it are dropped (Stats.Overflows). A consumer that stops calling
	// Pop — a stalled playout clock — therefore bounds its memory at
	// MaxFrames instead of buffering the rest of the stream.
	MaxFrames int

	frames    map[int]Frame
	nextSeq   int  // next sequence number to play
	started   bool // reached threshold at least once since last depletion
	played    int
	conceals  int
	waits     int
	overflows int
}

// New returns a buffer requiring thresholdFrames before playout,
// holding at most DefaultMaxFrames.
func New(thresholdFrames int) *Buffer {
	if thresholdFrames < 1 {
		thresholdFrames = 1
	}
	return &Buffer{
		ThresholdFrames: thresholdFrames,
		MaxFrames:       DefaultMaxFrames,
		frames:          make(map[int]Frame),
	}
}

// Push inserts a received frame and reports whether it was kept. Late
// frames (seq already played), duplicates, and arrivals into a full
// buffer (the overflow-drop event counted in Stats.Overflows) are
// dropped.
func (b *Buffer) Push(f Frame) bool {
	if f.Seq < b.nextSeq {
		return false // too late, playout has moved past it
	}
	if _, ok := b.frames[f.Seq]; ok {
		return false
	}
	if b.MaxFrames > 0 && len(b.frames) >= b.MaxFrames {
		b.overflows++
		return false
	}
	b.frames[f.Seq] = f
	return true
}

// Pop is called once per frame interval by the playout clock. It returns
// the samples to play (nil for Waiting) and the event describing what
// happened.
func (b *Buffer) Pop() ([]float64, Event) {
	if !b.started {
		if len(b.frames) >= b.ThresholdFrames {
			b.started = true
			// Align playout to the oldest buffered frame.
			b.nextSeq = b.oldestSeq()
		} else {
			b.waits++
			return nil, Waiting
		}
	}
	if f, ok := b.frames[b.nextSeq]; ok {
		delete(b.frames, b.nextSeq)
		b.nextSeq++
		b.played++
		return f.Samples, Played
	}
	// Expected frame missing. If the buffer holds later frames, playback
	// jumps ahead to the oldest one (content now plays earlier — the ISD
	// shift the paper observes per loss); if the buffer is fully depleted
	// we fall back to re-buffering.
	if len(b.frames) == 0 {
		b.started = false
		b.waits++
		return nil, Waiting
	}
	jump := b.oldestSeq()
	f := b.frames[jump]
	delete(b.frames, jump)
	b.nextSeq = jump + 1
	b.conceals++
	return f.Samples, Concealed
}

// oldestSeq returns the smallest buffered sequence number.
func (b *Buffer) oldestSeq() int {
	keys := make([]int, 0, len(b.frames))
	for k := range b.frames {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys[0]
}

// Level returns the number of buffered frames.
func (b *Buffer) Level() int { return len(b.frames) }

// NextSeq returns the sequence number the buffer expects to play next.
func (b *Buffer) NextSeq() int { return b.nextSeq }

// Stats summarizes playout history. Overflows counts frames dropped on
// arrival because the buffer was at MaxFrames.
type Stats struct {
	Played, Concealed, Waits, Overflows int
}

// Stats returns cumulative playout counters.
func (b *Buffer) Stats() Stats {
	return Stats{Played: b.played, Concealed: b.conceals, Waits: b.waits, Overflows: b.overflows}
}
