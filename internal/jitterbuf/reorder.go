package jitterbuf

// Reorder is a bounded resequencing stage for a uint32-sequenced packet
// stream: the server-side counterpart of the playout Buffer, sized for
// the hub's chat uplink. In-order packets pass straight through (the
// common case costs two compares and no allocation); out-of-order
// arrivals are parked in one of `window` caller-owned slots until the
// gap fills or the window overflows, at which point the gap is abandoned
// and the held packets drain — the downstream sequencer sees the jump
// and runs its existing loss-concealment path.
//
// The stage tracks only sequence numbers. Payload storage lives with the
// caller, indexed by the slot numbers this type hands out: Offer returns
// the slot to stash a held packet in, Pop returns the slot whose payload
// is now deliverable. A popped slot is immediately reusable, so the
// caller must consume (or copy out) its payload before the next Offer.
//
// The zero window is clamped to 1. All methods are single-goroutine.
type Reorder struct {
	window int
	next   uint32
	synced bool
	held   []heldSeq
	free   []int
	stats  ReorderStats
}

type heldSeq struct {
	seq  uint32
	slot int
}

// ReorderVerdict is Offer's routing decision for one packet.
type ReorderVerdict uint8

// Offer outcomes.
const (
	// RDeliver: the packet is in order; process it now.
	RDeliver ReorderVerdict = iota
	// RHold: the packet is ahead of a gap; stash its payload in the
	// returned slot and drain Pop.
	RHold
	// RDropLate: the packet is behind the cursor (already passed or
	// concealed); drop it.
	RDropLate
	// RDropDup: a copy of this sequence is already held; drop it.
	RDropDup
	// RDropOverflow: the hold window is exhausted and no slot is free;
	// drop the packet. (Unreachable for callers that drain Pop after
	// every Offer — Pop force-flushes a full window — but kept as a
	// guarantee that Offer never blocks or grows.)
	RDropOverflow
)

// ReorderStats counts the stage's routing decisions.
type ReorderStats struct {
	// Delivered counts packets released in order (straight through or
	// after resequencing); Held counts out-of-order arrivals parked.
	Delivered uint64
	Held      uint64
	// Late / Duplicates / Overflows count dropped packets by cause.
	Late       uint64
	Duplicates uint64
	Overflows  uint64
	// Flushed counts abandoned gaps: the window filled while waiting, so
	// the cursor jumped to the oldest held packet and the downstream
	// sequencer concealed the hole.
	Flushed uint64
}

// NewReorder returns a stage holding at most window out-of-order
// packets.
func NewReorder(window int) *Reorder {
	if window < 1 {
		window = 1
	}
	r := &Reorder{
		window: window,
		held:   make([]heldSeq, 0, window),
		free:   make([]int, 0, window),
	}
	for i := window - 1; i >= 0; i-- {
		r.free = append(r.free, i)
	}
	return r
}

// Offer routes one arriving sequence number. For RHold the returned slot
// index is where the caller stashes the payload; every other verdict
// returns -1. After any Offer the caller drains Pop.
func (r *Reorder) Offer(seq uint32) (ReorderVerdict, int) {
	if !r.synced {
		// Sync to the stream like ChatSequencer does: the first packet
		// seen defines the cursor.
		r.synced = true
		r.next = seq + 1
		r.stats.Delivered++
		return RDeliver, -1
	}
	if seq == r.next {
		r.next++
		r.stats.Delivered++
		return RDeliver, -1
	}
	if int32(seq-r.next) < 0 {
		r.stats.Late++
		return RDropLate, -1
	}
	for i := range r.held {
		if r.held[i].seq == seq {
			r.stats.Duplicates++
			return RDropDup, -1
		}
	}
	if len(r.free) == 0 {
		r.stats.Overflows++
		return RDropOverflow, -1
	}
	slot := r.free[len(r.free)-1]
	r.free = r.free[:len(r.free)-1]
	r.held = append(r.held, heldSeq{seq: seq, slot: slot})
	r.stats.Held++
	return RHold, slot
}

// Pop releases the next deliverable held packet: the one matching the
// cursor or — when the window is exhausted — the oldest held packet,
// jumping the cursor past the abandoned gap. It returns ok=false when
// nothing is deliverable. Callers loop until false.
func (r *Reorder) Pop() (slot int, seq uint32, ok bool) {
	if len(r.held) == 0 {
		return -1, 0, false
	}
	for i := range r.held {
		if r.held[i].seq == r.next {
			h := r.held[i]
			r.next++
			r.release(i)
			r.stats.Delivered++
			return h.slot, h.seq, true
		}
	}
	if len(r.free) == 0 {
		i := r.oldestIdx()
		h := r.held[i]
		r.next = h.seq + 1
		r.release(i)
		r.stats.Flushed++
		r.stats.Delivered++
		return h.slot, h.seq, true
	}
	return -1, 0, false
}

// release removes held entry i and returns its slot to the free list.
func (r *Reorder) release(i int) {
	r.free = append(r.free, r.held[i].slot)
	r.held[i] = r.held[len(r.held)-1]
	r.held = r.held[:len(r.held)-1]
}

// oldestIdx returns the index of the smallest held sequence (wraparound-
// aware).
func (r *Reorder) oldestIdx() int {
	oldest := 0
	for i := 1; i < len(r.held); i++ {
		if int32(r.held[i].seq-r.held[oldest].seq) < 0 {
			oldest = i
		}
	}
	return oldest
}

// Pending returns how many packets are currently held.
func (r *Reorder) Pending() int { return len(r.held) }

// Stats returns the stage's cumulative counters.
func (r *Reorder) Stats() ReorderStats { return r.stats }
