package jitterbuf

import (
	"math/rand"
	"testing"
)

func offer(t *testing.T, r *Reorder, seq uint32, want ReorderVerdict) int {
	t.Helper()
	v, slot := r.Offer(seq)
	if v != want {
		t.Fatalf("Offer(%d) = %v, want %v", seq, v, want)
	}
	return slot
}

func TestReorderInOrderPassThrough(t *testing.T) {
	r := NewReorder(4)
	for seq := uint32(10); seq < 15; seq++ {
		offer(t, r, seq, RDeliver)
		if _, _, ok := r.Pop(); ok {
			t.Fatal("nothing should be held")
		}
	}
	st := r.Stats()
	if st.Delivered != 5 || st.Held != 0 {
		t.Fatalf("stats %+v", st)
	}
}

func TestReorderResequencesSwap(t *testing.T) {
	r := NewReorder(4)
	offer(t, r, 0, RDeliver)
	slot := offer(t, r, 2, RHold) // gap: 1 missing
	if slot < 0 || slot >= 4 {
		t.Fatalf("hold slot %d", slot)
	}
	if _, _, ok := r.Pop(); ok {
		t.Fatal("gap unfilled: nothing deliverable")
	}
	offer(t, r, 1, RDeliver) // gap fills
	got, seq, ok := r.Pop()
	if !ok || got != slot || seq != 2 {
		t.Fatalf("Pop = (%d, %d, %v), want (%d, 2, true)", got, seq, ok, slot)
	}
	if _, _, ok := r.Pop(); ok {
		t.Fatal("drained")
	}
	offer(t, r, 3, RDeliver) // stream continues in order
}

func TestReorderDropsLateAndDuplicate(t *testing.T) {
	r := NewReorder(4)
	offer(t, r, 5, RDeliver)
	offer(t, r, 6, RDeliver)
	offer(t, r, 5, RDropLate)
	offer(t, r, 8, RHold)
	offer(t, r, 8, RDropDup)
	st := r.Stats()
	if st.Late != 1 || st.Duplicates != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestReorderForceFlushOnFullWindow(t *testing.T) {
	r := NewReorder(2)
	offer(t, r, 0, RDeliver)
	s3 := offer(t, r, 3, RHold)
	s2 := offer(t, r, 2, RHold) // window now full; 1 still missing
	// Pop force-flushes the oldest held packet, abandoning the gap.
	slot, seq, ok := r.Pop()
	if !ok || seq != 2 || slot != s2 {
		t.Fatalf("flush Pop = (%d, %d, %v), want (%d, 2, true)", slot, seq, ok, s2)
	}
	// Cursor jumped past the gap: 3 is now in order.
	slot, seq, ok = r.Pop()
	if !ok || seq != 3 || slot != s3 {
		t.Fatalf("second Pop = (%d, %d, %v), want (%d, 3, true)", slot, seq, ok, s3)
	}
	if _, _, ok := r.Pop(); ok {
		t.Fatal("drained")
	}
	st := r.Stats()
	if st.Flushed != 1 {
		t.Fatalf("stats %+v", st)
	}
	// The abandoned packet 1 arriving now is late.
	offer(t, r, 1, RDropLate)
	offer(t, r, 4, RDeliver)
}

func TestReorderWindowClamp(t *testing.T) {
	r := NewReorder(0)
	offer(t, r, 0, RDeliver)
	offer(t, r, 2, RHold)
	// Window of 1 is full; Pop must flush rather than deadlock.
	if _, seq, ok := r.Pop(); !ok || seq != 2 {
		t.Fatalf("clamped window did not flush (seq %d ok %v)", seq, ok)
	}
}

// TestReorderDeliversEveryKeptPacket is the conservation property: over
// a randomly shuffled, lossy, duplicated stream, every packet not
// dropped by Offer is eventually released by exactly one Deliver, and
// delivered sequence numbers never move backwards.
func TestReorderDeliversEveryKeptPacket(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		r := NewReorder(4)
		delivered := 0
		lastSeq := int64(-1)
		checkSeq := func(seq uint32) {
			if int64(seq) <= lastSeq {
				t.Fatalf("seed %d: seq %d delivered after %d", seed, seq, lastSeq)
			}
			lastSeq = int64(seq)
			delivered++
		}
		offered := 0
		for i := 0; i < 400; i++ {
			seq := uint32(i)
			if rng.Float64() < 0.08 {
				continue // lost upstream
			}
			// Displace some arrivals by re-offering a nearby future seq.
			if rng.Float64() < 0.2 {
				seq += uint32(1 + rng.Intn(3))
			}
			offered++
			v, _ := r.Offer(seq)
			if v == RDeliver {
				checkSeq(seq)
			}
			for {
				_, s, ok := r.Pop()
				if !ok {
					break
				}
				checkSeq(s)
			}
		}
		st := r.Stats()
		if got := st.Delivered; uint64(delivered) != got {
			t.Fatalf("seed %d: delivered %d, stats say %d", seed, delivered, got)
		}
		if uint64(offered) != st.Delivered+st.Late+st.Duplicates+st.Overflows+uint64(r.Pending()) {
			t.Fatalf("seed %d: conservation: offered %d vs stats %+v pending %d",
				seed, offered, st, r.Pending())
		}
	}
}

// TestReorderFastPathAllocFree locks in the in-order hot path: two
// compares, no allocation.
func TestReorderFastPathAllocFree(t *testing.T) {
	r := NewReorder(4)
	r.Offer(0)
	seq := uint32(1)
	if allocs := testing.AllocsPerRun(1000, func() {
		r.Offer(seq)
		seq++
	}); allocs != 0 {
		t.Fatalf("in-order Offer allocates %.1f", allocs)
	}
}

func TestBufferOverflowDrop(t *testing.T) {
	b := New(2)
	b.MaxFrames = 3
	for i := 0; i < 5; i++ {
		kept := b.Push(Frame{Seq: i, Samples: []float64{float64(i)}})
		if kept != (i < 3) {
			t.Fatalf("push %d: kept %v", i, kept)
		}
	}
	if b.Level() != 3 {
		t.Fatalf("level %d, want 3", b.Level())
	}
	if st := b.Stats(); st.Overflows != 2 {
		t.Fatalf("stats %+v, want 2 overflows", st)
	}
	// Draining makes room again.
	b.Pop()
	if !b.Push(Frame{Seq: 5, Samples: []float64{5}}) {
		t.Fatal("push after drain should succeed")
	}
}
