// Package pn implements Ekho's pseudo-noise markers (paper §4.2):
// generation of band-limited PN sequences, the game-audio amplitude tracker
// of Eq. 2, and the injector that periodically embeds markers into the
// screen audio stream while logging where they were added.
//
// A marker is a length-L vector of Gaussian samples band-pass filtered to
// 6-12 kHz: chat uplinks are encoded at super-wide-band (content up to
// 12 kHz) while most game-audio energy sits below 6 kHz, so this band
// survives compression yet is easily masked below audibility.
package pn

import (
	"math"
	"math/rand"

	"ekho/internal/audio"
	"ekho/internal/dsp"
)

// Canonical marker parameters from the paper.
const (
	// BandLowHz / BandHighHz bound the marker spectrum.
	BandLowHz  = 6000.0
	BandHighHz = 12000.0
	// DefaultLength is L = 48000 samples (1 s at 48 kHz).
	DefaultLength = audio.MarkerLength
	// DefaultGamma is the amplitude-tracker smoothing factor (Eq. 2).
	DefaultGamma = 0.4
	// TrackerWindow is T = 960 samples (20 ms), one OPUS packet.
	TrackerWindow = audio.FrameSamples
	// DefaultC is the relative marker volume chosen in §6.3.
	DefaultC = 0.5
)

// Sequence is a reusable PN marker template.
type Sequence struct {
	Samples []float64 // band-limited, unit-RMS PN samples
	Seed    int64     // generator seed (shared by server and estimator)
}

// NewSequence generates a PN sequence of the given length: length Gaussian
// variables band-pass filtered to 6-12 kHz, normalized to unit RMS so the
// injected amplitude is controlled entirely by C·a_k.
func NewSequence(seed int64, length int) *Sequence {
	rng := rand.New(rand.NewSource(seed))
	raw := make([]float64, length)
	for i := range raw {
		raw[i] = rng.NormFloat64()
	}
	fir := dsp.BandPass(BandLowHz, BandHighHz, audio.SampleRate, 511)
	filtered := fir.Apply(raw)
	rms := dsp.RMS(filtered)
	if rms > 0 {
		for i := range filtered {
			filtered[i] /= rms
		}
	}
	return &Sequence{Samples: filtered, Seed: seed}
}

// Len returns the marker length L.
func (s *Sequence) Len() int { return len(s.Samples) }

// AmplitudeTracker implements the moving-average band-power tracker of
// Eq. 2: a_k = γ·a_{k−1} + (1−γ)·p(x[(k−1)T : kT]) where p is the signal
// amplitude in the 6-12 kHz band measured over T samples (20 ms).
//
// "Amplitude" here is the RMS of the band-limited signal (not power):
// the injected marker is C·a_k·w with w unit-RMS, so equal C means equal
// marker-to-game loudness ratio in the marker band.
type AmplitudeTracker struct {
	Gamma float64
	a     float64
	init  bool
}

// NewAmplitudeTracker returns a tracker with γ = DefaultGamma.
func NewAmplitudeTracker() *AmplitudeTracker {
	return &AmplitudeTracker{Gamma: DefaultGamma}
}

// Update consumes one T-sample window of game audio and returns the new
// smoothed amplitude a_k.
func (t *AmplitudeTracker) Update(window []float64) float64 {
	p := bandRMS(window)
	if !t.init {
		// Seed the average with the first observation instead of zero so
		// the first marker after stream start is not silent.
		t.a = p
		t.init = true
		return t.a
	}
	t.a = t.Gamma*t.a + (1-t.Gamma)*p
	return t.a
}

// Amplitude returns the current smoothed amplitude.
func (t *AmplitudeTracker) Amplitude() float64 { return t.a }

// bandRMS measures RMS amplitude in the 6-12 kHz band over the window.
// BandPower zero-pads the 960-sample window to NextPow2 = 1024 internally
// (finer bins than the window warrants, but identical for every frame, so
// the tracker's smoothed estimate is unaffected) and runs on the cached
// real-input plan — this is the hot per-frame spectral probe of every
// session, and it allocates nothing in steady state.
func bandRMS(window []float64) float64 {
	return math.Sqrt(dsp.BandPower(window, audio.SampleRate, BandLowHz, BandHighHz))
}

// MinAmplitude is the floor applied to the tracked amplitude so markers
// remain detectable through near-silent game passages. It corresponds to
// roughly -52 dBFS, far below audibility.
const MinAmplitude = 0.0025

// Injection records one marker added to the stream.
type Injection struct {
	// StartSample is the sample index in the stream where the marker's
	// first sample was written.
	StartSample int
	// FrameID is StartSample/TrackerWindow: the audio packet carrying the
	// marker start (the ID Ekho-Compensator logs for Ekho-Estimator).
	FrameID int
	// Amplitude is the C·a_k scale actually applied.
	Amplitude float64
}

// Injector embeds markers into a screen-audio stream every IntervalSamples
// samples, scaling each marker by C times the tracked game-audio amplitude.
// It operates frame by frame (20 ms) to mirror the per-packet processing of
// the server implementation.
type Injector struct {
	Seq      *Sequence
	C        float64
	Interval int // samples between marker starts
	tracker  *AmplitudeTracker

	pos        int // absolute sample position of the next frame
	nextMarker int // absolute sample position of the next marker start
	active     []activeMarker
	log        []Injection
	logLimit   int // 0 = unlimited; otherwise retain only the newest entries
	dropped    int // log entries trimmed so far (keeps InjectionCount exact)
}

type activeMarker struct {
	start int
}

// NewInjector returns an injector with the paper's defaults (1 s interval).
func NewInjector(seq *Sequence, c float64) *Injector {
	return &Injector{
		Seq:      seq,
		C:        c,
		Interval: audio.SampleRate, // 1 s
		tracker:  NewAmplitudeTracker(),
	}
}

// ProcessFrame adds marker content to one 20 ms frame in place and advances
// the stream position. Markers are started on frame boundaries (as in the
// paper, where the server logs the audio frame ID containing the marker
// start). Per Eq. 2, the marker's amplitude is re-scaled every window by
// the *current* C·a_k — a_k keeps adapting while the 1 s marker plays, so
// the marker-to-game loudness ratio stays constant through transients.
func (in *Injector) ProcessFrame(frame []float64) {
	if len(frame) != TrackerWindow {
		panic("pn: ProcessFrame requires 20 ms frames")
	}
	amp := in.tracker.Update(frame)
	if amp < MinAmplitude {
		amp = MinAmplitude
	}
	scaled := in.C * amp
	// Start a new marker if its start time falls within this frame.
	if in.pos >= in.nextMarker {
		in.active = append(in.active, activeMarker{start: in.pos})
		in.log = append(in.log, Injection{
			StartSample: in.pos,
			FrameID:     in.pos / TrackerWindow,
			Amplitude:   scaled,
		})
		in.nextMarker = in.pos + in.Interval
		in.trimLog()
	}
	// Mix every active marker's overlap with this frame at the current
	// tracked amplitude.
	w := in.Seq.Samples
	kept := in.active[:0]
	for _, m := range in.active {
		offset := in.pos - m.start // marker sample index at frame start
		for i := 0; i < len(frame); i++ {
			mi := offset + i
			if mi < 0 || mi >= len(w) {
				continue
			}
			frame[i] += scaled * w[mi]
		}
		if offset+len(frame) < len(w) {
			kept = append(kept, m)
		}
	}
	in.active = kept
	in.pos += len(frame)
}

// Log returns the retained injections (all of them unless SetLogLimit
// bounded the log), oldest first.
func (in *Injector) Log() []Injection { return append([]Injection(nil), in.log...) }

// InjectionCount returns how many markers have started so far without
// copying the log — the per-tick marker check reads it twice per frame.
// Trimmed entries still count.
func (in *Injector) InjectionCount() int { return in.dropped + len(in.log) }

// SetLogLimit bounds the retained injection log to the newest n entries
// (0 restores the default: unlimited). Long-running servers set a limit
// so per-session memory stays flat; InjectionCount keeps counting every
// marker ever started.
func (in *Injector) SetLogLimit(n int) {
	in.logLimit = n
	in.trimLog()
}

// LogLimit returns the configured log bound (0 = unlimited). The
// capture/replay recorder persists it so a replayed session applies the
// same trimming and reconstructs identical ledger state.
func (in *Injector) LogLimit() int { return in.logLimit }

// trimLog drops the oldest log entries beyond the limit, in place.
func (in *Injector) trimLog() {
	if in.logLimit <= 0 || len(in.log) <= in.logLimit {
		return
	}
	drop := len(in.log) - in.logLimit
	in.dropped += drop
	n := copy(in.log, in.log[drop:])
	in.log = in.log[:n]
}

// Pos returns the absolute stream position in samples.
func (in *Injector) Pos() int { return in.pos }

// Mark is a one-shot helper: injects markers into a copy of b with the
// given C and returns the marked buffer plus the injection log. The buffer
// is padded to a whole number of frames internally; the returned buffer has
// the original length.
func Mark(b *audio.Buffer, seq *Sequence, c float64) (*audio.Buffer, []Injection) {
	padded := b.Clone()
	rem := padded.Len() % TrackerWindow
	if rem != 0 {
		padded.Samples = append(padded.Samples, make([]float64, TrackerWindow-rem)...)
	}
	inj := NewInjector(seq, c)
	for i := 0; i+TrackerWindow <= padded.Len(); i += TrackerWindow {
		inj.ProcessFrame(padded.Samples[i : i+TrackerWindow])
	}
	padded.Samples = padded.Samples[:b.Len()]
	return padded, inj.Log()
}

// ConstantMark injects markers at a fixed absolute amplitude instead of
// tracking game audio — the muted-screen mode of §6.5 where the screen
// plays only faint PN pulses for video-to-audio synchronization.
// amplitudeDB is relative to the MinAmplitude floor (so 0 dB = floor).
func ConstantMark(length int, seq *Sequence, amplitudeDB float64) (*audio.Buffer, []Injection) {
	b := audio.NewBuffer(audio.SampleRate, length)
	amp := MinAmplitude * math.Pow(10, amplitudeDB/20)
	var log []Injection
	for start := 0; start+seq.Len() <= length; start += audio.SampleRate {
		b.MixInto(seq.Samples, start, amp)
		log = append(log, Injection{StartSample: start, FrameID: start / TrackerWindow, Amplitude: amp})
	}
	return b, log
}
