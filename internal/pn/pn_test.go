package pn

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"ekho/internal/audio"
	"ekho/internal/dsp"
)

func TestSequenceBandLimited(t *testing.T) {
	seq := NewSequence(1, DefaultLength)
	if seq.Len() != DefaultLength {
		t.Fatalf("len %d", seq.Len())
	}
	inBand := dsp.BandPower(seq.Samples, audio.SampleRate, BandLowHz, BandHighHz)
	below := dsp.BandPower(seq.Samples, audio.SampleRate, 0, 5000)
	above := dsp.BandPower(seq.Samples, audio.SampleRate, 13000, 24000)
	if inBand <= 0 {
		t.Fatal("no in-band energy")
	}
	if below > inBand/200 || above > inBand/200 {
		t.Fatalf("out-of-band leakage: below=%g above=%g in=%g", below, above, inBand)
	}
	if math.Abs(dsp.RMS(seq.Samples)-1) > 1e-9 {
		t.Fatalf("RMS %g want 1", dsp.RMS(seq.Samples))
	}
}

func TestSequenceDeterministicPerSeed(t *testing.T) {
	a := NewSequence(42, 4800)
	b := NewSequence(42, 4800)
	c := NewSequence(43, 4800)
	diff := false
	for i := range a.Samples {
		if a.Samples[i] != b.Samples[i] {
			t.Fatal("same seed must match")
		}
		if a.Samples[i] != c.Samples[i] {
			diff = true
		}
	}
	if !diff {
		t.Fatal("different seeds must differ")
	}
}

func TestSequenceSharpAutocorrelation(t *testing.T) {
	// The whole point of PN markers: the autocorrelation peak must dwarf
	// all off-peak values (paper contrasts this with game audio).
	seq := NewSequence(2, DefaultLength)
	// Correlate the sequence against a padded copy of itself.
	sig := make([]float64, 3*DefaultLength)
	copy(sig[DefaultLength:], seq.Samples)
	z := dsp.CrossCorrelate(sig, seq.Samples)
	peakIdx := dsp.ArgMaxAbs(z)
	if peakIdx != DefaultLength {
		t.Fatalf("peak at %d want %d", peakIdx, DefaultLength)
	}
	peak := math.Abs(z[peakIdx])
	var offMax float64
	for i, v := range z {
		if i > peakIdx-100 && i < peakIdx+100 {
			continue
		}
		if a := math.Abs(v); a > offMax {
			offMax = a
		}
	}
	if peak < 10*offMax {
		t.Fatalf("autocorrelation not sharp: peak %g offMax %g", peak, offMax)
	}
}

func TestAmplitudeTrackerEq2(t *testing.T) {
	tr := &AmplitudeTracker{Gamma: 0.4}
	// Window with known band RMS: a 9 kHz sine of amplitude 0.4 has band
	// RMS ~0.283.
	win := audio.Tone(audio.SampleRate, 9000, 0.02, 0.4).Samples
	a1 := tr.Update(win)
	want := 0.4 / math.Sqrt2
	if math.Abs(a1-want) > 0.03 {
		t.Fatalf("first update %g want ~%g", a1, want)
	}
	// Silence: a_k decays by gamma each step (first update seeds, so now
	// the recursion applies).
	sil := make([]float64, TrackerWindow)
	a2 := tr.Update(sil)
	if math.Abs(a2-0.4*a1) > 1e-9 {
		t.Fatalf("decay: %g want %g", a2, 0.4*a1)
	}
	a3 := tr.Update(sil)
	if math.Abs(a3-0.4*a2) > 1e-9 {
		t.Fatalf("decay2: %g want %g", a3, 0.4*a2)
	}
	if tr.Amplitude() != a3 {
		t.Fatal("Amplitude() mismatch")
	}
}

func TestTrackerConvergesToSteadyState(t *testing.T) {
	tr := NewAmplitudeTracker()
	win := audio.Tone(audio.SampleRate, 8000, 0.02, 0.5).Samples
	var a float64
	for i := 0; i < 50; i++ {
		a = tr.Update(win)
	}
	want := bandRMS(win)
	if math.Abs(a-want) > 1e-6 {
		t.Fatalf("steady state %g want %g", a, want)
	}
}

func TestTrackerIgnoresOutOfBandAudio(t *testing.T) {
	tr := NewAmplitudeTracker()
	// Loud 500 Hz content has almost no energy in the 6-12 kHz band.
	win := audio.Tone(audio.SampleRate, 500, 0.02, 0.9).Samples
	a := tr.Update(win)
	if a > 0.02 {
		t.Fatalf("tracker should ignore low-frequency energy, got %g", a)
	}
}

func TestMarkInjectionSchedule(t *testing.T) {
	seq := NewSequence(3, DefaultLength)
	clip := audio.Tone(audio.SampleRate, 8000, 5.0, 0.3)
	marked, log := Mark(clip, seq, 0.5)
	if marked.Len() != clip.Len() {
		t.Fatalf("length changed: %d vs %d", marked.Len(), clip.Len())
	}
	if len(log) != 5 {
		t.Fatalf("%d markers in 5 s, want 5", len(log))
	}
	for i, inj := range log {
		if inj.StartSample != i*audio.SampleRate {
			t.Fatalf("marker %d at %d, want %d", i, inj.StartSample, i*audio.SampleRate)
		}
		if inj.FrameID != inj.StartSample/TrackerWindow {
			t.Fatalf("frame id %d inconsistent", inj.FrameID)
		}
		if inj.Amplitude <= 0 {
			t.Fatalf("marker %d amplitude %g", i, inj.Amplitude)
		}
	}
}

func TestMarkedAudioContainsDetectableMarker(t *testing.T) {
	seq := NewSequence(4, DefaultLength)
	clip := audio.Tone(audio.SampleRate, 8000, 3.0, 0.3)
	marked, log := Mark(clip, seq, 0.5)
	// The difference signal is exactly the injected markers; correlating
	// the marked signal against the sequence must peak at each injection.
	z := dsp.CrossCorrelate(marked.Samples, seq.Samples)
	for _, inj := range log {
		if inj.StartSample >= len(z) {
			continue
		}
		// Find the local argmax within +-50 samples.
		best, bestIdx := 0.0, -1
		for i := max(0, inj.StartSample-50); i < min(len(z), inj.StartSample+50); i++ {
			if a := math.Abs(z[i]); a > best {
				best, bestIdx = a, i
			}
		}
		if bestIdx != inj.StartSample {
			t.Fatalf("correlation peak at %d, want %d", bestIdx, inj.StartSample)
		}
	}
}

func TestMarkerAmplitudeTracksGameAudio(t *testing.T) {
	seq := NewSequence(5, DefaultLength)
	// Loud then quiet 8 kHz content.
	loud := audio.Tone(audio.SampleRate, 8000, 2.0, 0.6)
	quiet := audio.Tone(audio.SampleRate, 8000, 2.0, 0.06)
	clip := audio.NewBuffer(audio.SampleRate, 0)
	clip.Samples = append(clip.Samples, loud.Samples...)
	clip.Samples = append(clip.Samples, quiet.Samples...)
	_, log := Mark(audio.FromSamples(audio.SampleRate, clip.Samples), seq, 0.5)
	if len(log) != 4 {
		t.Fatalf("markers %d", len(log))
	}
	// Marker 1 (injected during loud content, tracker warmed) must be
	// louder than marker 3 (quiet content, tracker settled).
	if log[1].Amplitude < 5*log[3].Amplitude {
		t.Fatalf("amplitude not tracking: loud %g quiet %g", log[1].Amplitude, log[3].Amplitude)
	}
}

func TestMinAmplitudeFloor(t *testing.T) {
	seq := NewSequence(6, DefaultLength)
	silence := audio.NewBuffer(audio.SampleRate, 2*audio.SampleRate)
	marked, log := Mark(silence, seq, 0.5)
	if len(log) == 0 {
		t.Fatal("no markers")
	}
	for _, inj := range log {
		if inj.Amplitude < MinAmplitude*0.5-1e-12 {
			t.Fatalf("amplitude %g below floor", inj.Amplitude)
		}
	}
	if marked.RMS() == 0 {
		t.Fatal("marked silence should contain marker energy")
	}
}

func TestProcessFramePanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewInjector(NewSequence(7, 4800), 0.5).ProcessFrame(make([]float64, 100))
}

func TestConstantMark(t *testing.T) {
	seq := NewSequence(8, DefaultLength)
	b, log := ConstantMark(3*audio.SampleRate, seq, 6)
	if len(log) != 3 { // markers at 0, 1 and 2 s all fit fully in 3 s
		t.Fatalf("markers %d want 3", len(log))
	}
	wantAmp := MinAmplitude * math.Pow(10, 6.0/20)
	for _, inj := range log {
		if math.Abs(inj.Amplitude-wantAmp) > 1e-12 {
			t.Fatalf("amplitude %g want %g", inj.Amplitude, wantAmp)
		}
	}
	if b.RMS() <= 0 {
		t.Fatal("constant-marked buffer silent")
	}
}

func TestInjectionPropertyMarkerEnergyScalesWithC(t *testing.T) {
	seq := NewSequence(9, DefaultLength)
	clip := audio.Tone(audio.SampleRate, 8000, 2.0, 0.3)
	f := func(cSel uint8) bool {
		c := 0.1 + float64(cSel%50)/10 // 0.1 .. 5.0
		marked, _ := Mark(clip, seq, c)
		var diff float64
		for i := range clip.Samples {
			d := marked.Samples[i] - clip.Samples[i]
			diff += d * d
		}
		// Energy of injected content scales with c^2; check within 2x.
		ref, _ := Mark(clip, seq, 0.5)
		var refDiff float64
		for i := range clip.Samples {
			d := ref.Samples[i] - clip.Samples[i]
			refDiff += d * d
		}
		ratio := diff / refDiff
		want := (c / 0.5) * (c / 0.5)
		return ratio > want/2 && ratio < want*2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Fatal(err)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func BenchmarkProcessFrame(b *testing.B) {
	seq := NewSequence(10, DefaultLength)
	inj := NewInjector(seq, 0.5)
	frame := audio.Tone(audio.SampleRate, 8000, 0.02, 0.3).Samples
	work := make([]float64, len(frame))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(work, frame)
		inj.ProcessFrame(work)
	}
}
