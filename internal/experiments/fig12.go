package experiments

import (
	"math"
	"math/rand"

	"ekho/internal/acoustic"
	"ekho/internal/analysis"
	"ekho/internal/audio"
	"ekho/internal/codec"
	"ekho/internal/gamesynth"
	"ekho/internal/gccphat"
)

func init() { register("fig12", runFig12) }

// runFig12 reproduces Figure 12: Ekho vs GCC-PHAT measurement rate under
// background chatter. The paper's findings: even without chatter GCC-PHAT
// yields no measurement for a third of the corpus; with chatter it fails on
// more than 75% of clips, while Ekho sees only a modest drop and stays
// above 90% overall.
//
// Values: "ekho_nodetect_pct_<level>", "gcc_nodetect_pct_<level>",
// "ekho_full_pct_<level>", "gcc_accurate_err_ms" (levels: no/low/med/loud).
func runFig12(s Scale) *Report {
	r := &Report{ID: "fig12", Title: "Ekho vs GCC-PHAT measurement rate under chatter"}
	levels := []ChatterLevel{NoChat, LowChat, MedChat, LoudChat}
	if s == Quick {
		levels = []ChatterLevel{NoChat, MedChat}
	}
	clips := corpusSubset(clipCount(s))
	secs := clipSeconds(s)
	rng := rand.New(rand.NewSource(55))
	truths := make([]float64, len(clips))
	for i := range truths {
		truths[i] = rng.Float64()*0.4 - 0.2
	}

	var gccGoodErrs []float64
	r.addf("%-10s %8s %18s %18s %18s", "method", "chatter", "no detection %", "mean rate", "100% clips %")
	for _, lvl := range levels {
		var ekhoRates, gccRates []float64
		for i, spec := range clips {
			clip := gamesynth.Generate(spec, secs)
			// Ekho path.
			res := runDetection(clip, recordingSetup{
				Mic:         acoustic.XboxHeadset,
				Profile:     codec.SWB32,
				C:           0.5,
				TruthISDSec: truths[i],
				Chatter:     lvl,
				Seed:        int64(2000*i) + 3,
				DriftPPM:    defaultDriftPPM(int64(2000*i) + 3),
			})
			ekhoRates = append(ekhoRates, res.Rate)

			// GCC-PHAT path: same channel and chatter, no markers. The
			// reference is the accessory audio (the clean clip).
			gr, errs := gccRate(clip, truths[i], lvl, int64(2000*i)+3)
			gccRates = append(gccRates, gr)
			gccGoodErrs = append(gccGoodErrs, errs...)
		}
		key := chatterKey(lvl)
		for _, m := range []struct {
			name  string
			rates []float64
		}{{"Ekho", ekhoRates}, {"GCC-PHAT", gccRates}} {
			none := analysis.Fraction(m.rates, func(v float64) bool { return v <= 0 }) * 100
			full := analysis.Fraction(m.rates, func(v float64) bool { return v >= 0.999 }) * 100
			r.addf("%-10s %8s %17.0f%% %18.2f %17.0f%%",
				m.name, lvl, none, analysis.Mean(m.rates), full)
			b := bucketCounts(m.rates)
			r.addf("  %s/%s buckets: %s=%.0f%% %s=%.0f%% %s=%.0f%% %s=%.0f%% %s=%.0f%%",
				m.name, lvl,
				rateBucketLabels[0], b[0], rateBucketLabels[1], b[1],
				rateBucketLabels[2], b[2], rateBucketLabels[3], b[3],
				rateBucketLabels[4], b[4])
		}
		r.set("ekho_nodetect_pct_"+key, analysis.Fraction(ekhoRates, func(v float64) bool { return v <= 0 })*100)
		r.set("gcc_nodetect_pct_"+key, analysis.Fraction(gccRates, func(v float64) bool { return v <= 0 })*100)
		r.set("ekho_full_pct_"+key, analysis.Fraction(ekhoRates, func(v float64) bool { return v >= 0.999 })*100)
		r.set("ekho_rate_mean_"+key, analysis.Mean(ekhoRates))
		r.set("gcc_rate_mean_"+key, analysis.Mean(gccRates))
	}
	if len(gccGoodErrs) > 0 {
		r.addf("GCC-PHAT accepted-measurement mean error: %.2f ms (paper: < 2 ms when it works)",
			analysis.Mean(gccGoodErrs)*1000)
		r.set("gcc_accurate_err_ms", analysis.Mean(gccGoodErrs)*1000)
	}
	return r
}

func chatterKey(l ChatterLevel) string {
	switch l {
	case LowChat:
		return "low"
	case MedChat:
		return "med"
	case LoudChat:
		return "loud"
	default:
		return "no"
	}
}

// gccRate runs segment-based GCC-PHAT through the same acoustic/chatter/
// codec pipeline and returns the accepted-measurement rate plus the errors
// of accepted, near-truth windows.
//
// Two paper-documented handicaps apply to GCC-PHAT but not Ekho (§4.1):
// the accessory stream it uses as reference is itself "mixed with chat
// audio from other players" (content absent from the room recording), and
// the overheard audio is degraded by the room, microphone and compression.
// Ekho only consumes accessory *timestamps*, so teammate chat is harmless
// to it.
func gccRate(clip *audio.Buffer, truth float64, lvl ChatterLevel, seed int64) (float64, []float64) {
	// Reference = accessory audio = game + teammates' chat.
	teammates := gamesynth.Babble(rand.New(rand.NewSource(seed+9)), clip.Duration(), 2)
	tgain := audio.GainForDBA(teammates, audio.MedianFrameDBA(clip))
	ref := audio.Mix(clip, teammates.Clone().Gain(tgain))
	ch := acoustic.Channel{
		Mic:          acoustic.XboxHeadset,
		DistanceFt:   6,
		Attenuation:  0.1,
		Room:         acoustic.Room{RT60: 0.35, Reflections: 30, Seed: seed},
		AmbientLevel: 0.0006,
		NoiseSeed:    seed + 1,
	}
	var recv *audio.Buffer
	if lvl != NoChat {
		rng := rand.New(rand.NewSource(seed + 2))
		chatter := gamesynth.Babble(rng, clip.Duration(), 2)
		target := audio.MedianFrameDBA(clip) + lvl.offsetDBA()
		gain := audio.GainForDBA(chatter, target)
		recv = ch.TransmitMixed(clip, chatter.Clone().Gain(gain), nearFieldCoupling)
	} else {
		recv = ch.Transmit(clip)
	}
	// The same ADC clock drift the Ekho path sees: it smears GCC-PHAT's
	// long coherent integration but barely moves Ekho's 1 s markers.
	recv = applyDrift(recv, defaultDriftPPM(seed))
	coded, err := codec.RoundTripAligned(recv, codec.SWB32)
	if err != nil {
		panic("experiments: codec: " + err.Error())
	}
	// For GCC-PHAT the ground-truth audio delay between reference and
	// recording is just the acoustic channel's own delay: the ±x of the
	// Ekho methodology lives in timestamps, which GCC-PHAT doesn't use.
	_ = truth
	want := ch.TotalDelaySec()
	ms := gccphat.EstimateSegments(ref, coded, 1)
	if len(ms) == 0 {
		return 0, nil
	}
	accepted := 0
	var errs []float64
	for _, m := range ms {
		if !m.Plausible {
			continue
		}
		accepted++
		if e := math.Abs(m.ISDSeconds - want); e < 0.005 {
			errs = append(errs, e)
		}
	}
	return float64(accepted) / float64(len(ms)), errs
}
