package experiments

import (
	"ekho/internal/analysis"
	"ekho/internal/audio"
	"ekho/internal/codec"
	"ekho/internal/netsim"
	"ekho/internal/ntp"
	"ekho/internal/vclock"
)

func init() { register("table1", runTable1) }

// runTable1 reproduces Table 1: the latency breakdown in cloud gaming and
// the measurement-error sources that motivate Ekho. Network-path delays are
// measured on the simulated links; decoding/buffering combines the codec's
// algorithmic delay with jitter-buffer thresholds; hardware scheduling and
// sound propagation use the configured device/physics ranges; and the
// RTT-asymmetry row measures actual NTP/RTT-based clock error over
// asymmetric paths.
//
// Values: "net_lo_ms"/"net_hi_ms", "dec_lo_ms"/"dec_hi_ms",
// "rtt_err_hi_ms" (max observed clock error), "prop_hi_ms".
func runTable1(s Scale) *Report {
	r := &Report{ID: "table1", Title: "Latency breakdown and measurement error ranges"}
	polls := 200
	if s == Quick {
		polls = 40
	}

	// Network path: sample one-way delays across the presets.
	netLo, netHi := linkDelayRange(netsim.Ethernet, polls)
	_, cellHi := linkDelayRange(netsim.Cellular, polls)
	if cellHi > netHi {
		netHi = cellHi
	}
	// Include a long-haul path-change component (up to +150 ms).
	far := netsim.Cellular
	far.BaseDelay += 0.15
	if _, hi := linkDelayRange(far, polls); hi > netHi {
		netHi = hi
	}

	// Decoding + buffering: codec delay plus jitter-buffer thresholds
	// (2-4 frames here; devices in the wild buffer up to 80 ms).
	decLo := float64(codec.SWB24ULL.Delay())/audio.SampleRate + 2*0.020
	decHi := float64(codec.SWB32.Delay())/audio.SampleRate + 4*0.020
	decLo *= 1000
	decHi *= 1000

	// Hardware scheduling (device playback latency range used in the
	// end-to-end scenarios) and propagation (2-19 ft).
	hwLo, hwHi := 0.0, 60.0
	propLo, propHi := 2.0, 18.0

	// RTT/2 and NTP error under asymmetry 0..120 ms.
	var errs []float64
	for _, asym := range []float64{0, 0.030, 0.060, 0.120} {
		sched := vclock.NewScheduler()
		down := netsim.LinkConfig{BaseDelay: 0.030, JitterStd: 0.002, Seed: 11}
		up := netsim.Asymmetric(down, asym, 31)
		c := ntp.NewClient(sched, up, down, &vclock.Clock{Offset: 0.8})
		c.Run(polls/4+4, 0.25)
		errs = append(errs, c.OffsetError()*1000)
	}
	rttErrHi := analysis.Max(errs)

	r.addf("%-28s %12s %12s", "latency part", "low (ms)", "high (ms)")
	r.addf("%-28s %12.0f %12.0f", "Network Path", netLo*1000, netHi*1000)
	r.addf("%-28s %12.0f %12.0f", "Decoding and Buffering", decLo, decHi)
	r.addf("%-28s %12.0f %12.0f", "Hardware Scheduling", hwLo, hwHi)
	r.addf("%-28s %12.0f %12.0f", "Sound Propagation", propLo, propHi)
	r.addf("%-28s %12.0f %12.0f", "RTT-asymmetry clock error", errs[0], rttErrHi)
	r.set("net_lo_ms", netLo*1000)
	r.set("net_hi_ms", netHi*1000)
	r.set("dec_lo_ms", decLo)
	r.set("dec_hi_ms", decHi)
	r.set("prop_hi_ms", propHi)
	r.set("rtt_err_hi_ms", rttErrHi)
	return r
}

// linkDelayRange samples min/max one-way delay on a link.
func linkDelayRange(cfg netsim.LinkConfig, n int) (lo, hi float64) {
	sched := vclock.NewScheduler()
	sent := map[int]vclock.Time{}
	lo, hi = 1e9, 0
	cfg.LossProb = 0
	link := netsim.NewLink(cfg, sched, func(p netsim.Packet) {
		d := float64(sched.Now() - sent[p.Seq])
		if d < lo {
			lo = d
		}
		if d > hi {
			hi = d
		}
	})
	for i := 0; i < n; i++ {
		sent[link.Send(nil)] = sched.Now()
		sched.RunUntil(sched.Now() + 0.02)
	}
	sched.Run()
	return lo, hi
}
