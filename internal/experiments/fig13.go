package experiments

import (
	"ekho/internal/acoustic"
	"ekho/internal/analysis"
	"ekho/internal/audio"
	"ekho/internal/codec"
	"ekho/internal/perceptual"
	"ekho/internal/pn"
)

func init() { register("fig13", runFig13) }

// runFig13 reproduces Figure 13: video-to-audio sync with the screen audio
// muted (§6.5). The screen plays only constant-amplitude PN markers; the
// experiment sweeps the marker amplitude and reports, per microphone, the
// detection rate, the max ISD error, and the marker's acoustic level in
// dBA against ambient anchors. Paper: amplitudes of 6 dB and above detect
// on all microphones, and up to 15 dB the level stays below a quiet
// library's 40 dBA.
//
// Values: "min_detect_amp_<mic>" (smallest amplitude with full detection),
// "dba_at_15db", "max_err_us_<mic>_<amp>".
func runFig13(s Scale) *Report {
	r := &Report{ID: "fig13", Title: "Muted-screen sync: detection and loudness vs marker amplitude"}
	amps := []float64{3, 6, 9, 12, 15, 18, 21, 24, 27}
	if s == Quick {
		amps = []float64{3, 9, 15}
	}
	mics := []acoustic.Microphone{acoustic.StudioMic, acoustic.XboxHeadset, acoustic.SamsungIG955}
	secs := clipSeconds(s)

	// Loudness of the raw marker playback (speaker side), measured once
	// per amplitude with the A-weighted meter.
	r.addf("%-10s %14s", "amp (dB)", "marker dBA")
	dbaByAmp := map[float64]float64{}
	for _, a := range amps {
		b, _ := pn.ConstantMark(int(secs*audio.SampleRate), sharedSeq, a)
		l := perceptual.MarkerBandLoudness(b)
		dbaByAmp[a] = l
		r.addf("%-10.0f %14.1f", a, l)
	}
	r.addf("anchors: library %.0f dBA, A/C %.0f dBA, conversation %.0f dBA",
		perceptual.QuietLibraryDBA, perceptual.AirConditionerDBA, perceptual.NormalConversationDBA)
	if v, ok := dbaByAmp[15]; ok {
		r.set("dba_at_15db", v)
	}

	r.addf("%-26s %10s %14s %14s", "microphone", "amp (dB)", "detect rate", "max err (us)")
	silence := audio.NewBuffer(audio.SampleRate, int(secs*audio.SampleRate))
	for _, mic := range mics {
		minFull := -1.0
		for _, a := range amps {
			res := runDetection(silence, recordingSetup{
				Mic:           mic,
				Profile:       codec.SWB32,
				TruthISDSec:   0.040,
				Seed:          int64(a*100) + int64(mic),
				DriftPPM:      defaultDriftPPM(int64(a*100) + int64(mic)),
				ConstantAmpDB: a,
				MutedScreen:   true,
			})
			maxErr := analysis.Max(res.AbsErrorsSec) * 1e6
			r.addf("%-26s %10.0f %14.2f %14.0f", mic, a, res.Rate, maxErr)
			if res.Rate >= 0.999 && minFull < 0 {
				minFull = a
			}
			r.set(keyf("max_err_us_%d_%.0f", int(mic), a), maxErr)
		}
		r.set(keyf("min_detect_amp_%d", int(mic)), minFull)
	}
	return r
}
