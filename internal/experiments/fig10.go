package experiments

import "ekho/internal/perceptual"

func init() { register("fig10", runFig10) }

// runFig10 reproduces Figure 10: DCR opinion scores for marker audibility
// across relative marker powers C. The paper's finding: up to C = 1.0 the
// experience is comparable to the reference; C = 2.5 is audible and
// slightly distracting.
//
// The human study is replaced by the perceptual masking model plus a rater
// pool (~186 votes per level in the paper).
//
// Values: "c_<C>" mean DCR per level (e.g. "c_0.5"), "ref".
func runFig10(s Scale) *Report {
	r := &Report{ID: "fig10", Title: "Marker audibility DCR vs relative power C"}
	votes := 62
	if s == Quick {
		votes = 20
	}
	pool := perceptual.NewRaterPool(808)
	levels := []float64{0, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0}
	r.addf("%-8s %8s %8s  %s", "C", "mean", "ci95", "label")
	for _, c := range levels {
		model := perceptual.MarkerAudibility(c)
		mean, ci := perceptual.Score(pool.Rate(model, votes))
		name := "ref"
		if c > 0 {
			name = trimFloat(c)
		}
		r.addf("%-8s %8.2f %8.2f  %s", name, mean, ci, perceptual.DCR(mean).Label())
		if c == 0 {
			r.set("ref", mean)
		} else {
			r.set("c_"+trimFloat(c), mean)
		}
	}
	return r
}

func trimFloat(v float64) string {
	s := keyf("%g", v)
	return s
}
