package experiments

import (
	"fmt"
	"math"

	"ekho/internal/analysis"
	"ekho/internal/session"
)

func init() { register("drift", runDrift) }

// driftArm summarizes one (SRO, regime) session.
type driftArm struct {
	sroPPM   float64
	comp     bool // drift compensation on
	inSync   float64
	convSec  float64 // first time after which |ISD| stays ≤ 10 ms; duration if never
	tailPPM  float64 // residual ISD slope over the tail window, ppm
	tailP95  float64 // tail |ISD| p95, ms
	tailMax  float64 // tail |ISD| max, ms
	actions  int
	retunes  int
	finalPPM float64 // last commanded resample rate
}

// runDriftArm executes one scenario arm and extracts the drift metrics.
func runDriftArm(sro float64, comp bool, dur, tailSec float64) driftArm {
	sc := session.DriftScenario(sro)
	sc.DriftCompensation = comp
	sc.DurationSec = dur
	res := session.Run(sc)

	a := driftArm{sroPPM: sro, comp: comp, inSync: res.InSyncFraction,
		actions: len(res.Actions), retunes: len(res.Resamples)}
	if n := len(res.Resamples); n > 0 {
		a.finalPPM = res.Resamples[n-1].Resample.PPM
	}

	// Convergence: the time of the last post-warmup excursion beyond the
	// 10 ms in-sync bound (everything after stays in sync). A session
	// that never settles is censored at the duration.
	a.convSec = 0
	for _, p := range res.Trace {
		if p.TimeSec < sc.WarmupIgnoreSec {
			continue
		}
		if math.Abs(p.ISDSeconds) > 0.010 {
			a.convSec = p.TimeSec
		}
	}

	// Tail window |ISD| distribution (includes any sawtooth excursions).
	var abs []float64
	for _, p := range res.Trace {
		if p.TimeSec < dur-tailSec {
			continue
		}
		abs = append(abs, math.Abs(p.ISDSeconds)*1000)
	}
	a.tailP95 = analysis.Percentile(abs, 0.95)
	for _, v := range abs {
		if v > a.tailMax {
			a.tailMax = v
		}
	}

	// Residual slope: least squares over the ground-truth ISD *after* the
	// last correction settled (a discrete step inside the fit window
	// would read as hundreds of ppm of phantom slope). Falls back to the
	// tail window when the last correction is too close to the end.
	fitFrom := dur - tailSec
	lastT := 0.0
	for _, ac := range res.Actions {
		if ac.TimeSec > lastT {
			lastT = ac.TimeSec
		}
	}
	for _, rs := range res.Resamples {
		if rs.TimeSec > lastT {
			lastT = rs.TimeSec
		}
	}
	if t := lastT + 2; t > fitFrom && t < dur-5 {
		fitFrom = t
	}
	var ts, isds []float64
	for _, p := range res.Trace {
		if p.TimeSec < fitFrom {
			continue
		}
		ts = append(ts, p.TimeSec)
		isds = append(isds, p.ISDSeconds)
	}
	a.tailPPM = fitSlope(ts, isds) * 1e6
	return a
}

// fitSlope is a plain least-squares slope of y over x.
func fitSlope(x, y []float64) float64 {
	if len(x) < 2 {
		return 0
	}
	var mx, my float64
	for i := range x {
		mx += x[i]
		my += y[i]
	}
	mx /= float64(len(x))
	my /= float64(len(x))
	var sxx, sxy float64
	for i := range x {
		dx := x[i] - mx
		sxx += dx * dx
		sxy += dx * (y[i] - my)
	}
	if sxx == 0 {
		return 0
	}
	return sxy / sxx
}

// runDrift sweeps controller sample-rate offsets (clock-drift scenarios)
// and compares the micro-resampling drift regime against the discrete
// level-only loop. Under an SRO the ISD is a ramp: the level-only loop
// can only chase it with a whole-frame sawtooth, while the drift regime
// fits the slope and cancels it at the source by retuning the accessory
// stream's content rate.
//
// Values (per SRO, keys use the signed ppm value): "insync_drift_<sro>",
// "insync_level_<sro>", "conv_sec_drift_<sro>", "resid_ppm_drift_<sro>",
// "tail_p95_ms_drift_<sro>", "tail_max_ms_drift_<sro>",
// "final_rate_ppm_<sro>", "retunes_<sro>"; plus the headline
// "tail_max_ms_drift_100" acceptance metric (steady-state |ISD| with
// +100 ppm SRO, must sit below the 10 ms in-sync bound).
func runDrift(s Scale) *Report {
	r := &Report{ID: "drift", Title: "Clock drift: micro-resampling vs level-only compensation"}

	dur, tail := 120.0, 30.0
	sros := []float64{-200, -100, -50, -10, 10, 50, 100, 200}
	switch s {
	case Quick:
		dur, tail = 60, 20
		sros = []float64{100}
	case Full:
		dur = 180
	}

	r.addf("%8s  %-10s %8s %9s %10s %9s %9s %8s", "sro ppm", "regime", "in-sync", "conv s", "resid ppm", "p95 ms", "max ms", "rate ppm")
	for _, sro := range sros {
		d := runDriftArm(sro, true, dur, tail)
		l := runDriftArm(sro, false, dur, tail)
		for _, a := range []driftArm{d, l} {
			regime := "level-only"
			if a.comp {
				regime = "drift"
			}
			r.addf("%+8.0f  %-10s %7.1f%% %9.1f %10.1f %9.2f %9.2f %+8.1f",
				a.sroPPM, regime, a.inSync*100, a.convSec, a.tailPPM, a.tailP95, a.tailMax, a.finalPPM)
		}
		key := func(prefix string) string { return fmt.Sprintf("%s%d", prefix, int(sro)) }
		r.set(key("insync_drift_"), d.inSync)
		r.set(key("insync_level_"), l.inSync)
		r.set(key("conv_sec_drift_"), d.convSec)
		r.set(key("resid_ppm_drift_"), d.tailPPM)
		r.set(key("resid_ppm_level_"), l.tailPPM)
		r.set(key("tail_p95_ms_drift_"), d.tailP95)
		r.set(key("tail_p95_ms_level_"), l.tailP95)
		r.set(key("tail_max_ms_drift_"), d.tailMax)
		r.set(key("final_rate_ppm_"), d.finalPPM)
		r.set(key("retunes_"), float64(d.retunes))
	}
	return r
}
