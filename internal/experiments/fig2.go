package experiments

import (
	"fmt"

	"ekho/internal/gamesynth"
	"ekho/internal/perceptual"
)

func init() { register("fig2", runFig2) }

// runFig2 reproduces Figure 2: crowdsourced opinion scores for how echoes
// affect user experience, per stimulus category and echo delay.
//
// The human study is replaced by the perceptual echo-annoyance model plus a
// simulated rater pool (see internal/perceptual); the paper collected ~296
// votes per delay level across 30 clips.
//
// Values: "<cat>_<delay>" mean DCR (e.g. "speech_10"), plus
// "speech_drop_40_300" and "music_drop_40_300" for the shape check.
func runFig2(s Scale) *Report {
	r := &Report{ID: "fig2", Title: "Echo-threshold DCR scores (speech / music / game SFX)"}
	delays := []float64{0, 10, 20, 40, 60, 80, 160, 300}
	votes := 100
	if s == Quick {
		votes = 30
	}
	pool := perceptual.NewRaterPool(2023)
	cats := []struct {
		name string
		cat  gamesynth.Category
	}{
		{"speech", gamesynth.Speech_},
		{"music", gamesynth.Music_},
		{"sfx", gamesynth.SFX_},
	}
	r.addf("%-8s %8s %8s %8s  %s", "category", "delay_ms", "mean", "ci95", "label")
	for _, c := range cats {
		for _, d := range delays {
			model := perceptual.EchoAnnoyance(c.cat, d)
			mean, ci := perceptual.Score(pool.Rate(model, votes))
			r.addf("%-8s %8.0f %8.2f %8.2f  %s", c.name, d, mean, ci, perceptual.DCR(mean).Label())
			r.set(keyf("%s_%.0f", c.name, d), mean)
			r.set(keyf("%s_%.0f_model", c.name, d), float64(model))
		}
	}
	r.set("speech_drop_40_300", r.Values["speech_40_model"]-r.Values["speech_300_model"])
	r.set("music_drop_40_300", r.Values["music_40_model"]-r.Values["music_300_model"])
	r.set("sfx_drop_40_300", r.Values["sfx_40_model"]-r.Values["sfx_300_model"])
	return r
}

func keyf(format string, args ...any) string {
	return fmt.Sprintf(format, args...)
}
