package experiments

import (
	"math/rand"

	"ekho/internal/acoustic"
	"ekho/internal/analysis"
	"ekho/internal/codec"
	"ekho/internal/gamesynth"
)

func init() {
	register("fig14", runFig14)
	register("fig15", runFig15)
	register("fig17", runFig17)
}

// runFig14 reproduces Figure 14 (Appendix B): the microphone-quality
// ablation. At C = 0.5, Ekho should keep ~100% marker detection and
// sub-millisecond error across all three microphones despite their wildly
// different frequency responses.
//
// Values: "rate_mean_<mic>", "err_p99_us_<mic>", "full_pct_<mic>" (mic =
// int enum value).
func runFig14(s Scale) *Report {
	r := &Report{ID: "fig14", Title: "Microphone ablation: detection rate and ISD error"}
	mics := []acoustic.Microphone{acoustic.StudioMic, acoustic.XboxHeadset, acoustic.SamsungIG955}
	clips := corpusSubset(clipCount(s))
	secs := clipSeconds(s)
	rng := rand.New(rand.NewSource(14))
	truths := make([]float64, len(clips))
	for i := range truths {
		truths[i] = rng.Float64()*0.4 - 0.2
	}
	r.addf("%-26s %12s %12s %14s", "microphone", "mean rate", "100% clips", "err p99 (us)")
	for _, mic := range mics {
		var rates []float64
		var errs []float64
		for i, spec := range clips {
			clip := gamesynth.Generate(spec, secs)
			res := runDetection(clip, recordingSetup{
				Mic:         mic,
				Profile:     codec.SWB32,
				C:           0.5,
				TruthISDSec: truths[i],
				Seed:        int64(3000*i) + int64(mic),
				DriftPPM:    defaultDriftPPM(int64(3000*i) + int64(mic)),
			})
			rates = append(rates, res.Rate)
			errs = append(errs, res.AbsErrorsSec...)
		}
		full := analysis.Fraction(rates, func(v float64) bool { return v >= 0.999 }) * 100
		_, p99 := summarizeErrors(errs)
		r.addf("%-26s %12.2f %11.0f%% %14.0f", mic, analysis.Mean(rates), full, p99)
		r.set(keyf("rate_mean_%d", int(mic)), analysis.Mean(rates))
		r.set(keyf("err_p99_us_%d", int(mic)), p99)
		r.set(keyf("full_pct_%d", int(mic)), full)
	}
	return r
}

// runFig15 reproduces Figure 15 (Appendix C): the encoding ablation. The
// four operating points of the paper — lossless, SWB 32 kbps, SWB 24 kbps
// and SWB 24 kbps ultra-low-latency — should all keep a satisfiable
// detection level, with harsher encodes slightly harder.
//
// Values: "rate_mean_<profile>", "err_p99_us_<profile>" (profile index in
// the order below).
func runFig15(s Scale) *Report {
	r := &Report{ID: "fig15", Title: "Encoding ablation: detection rate and ISD error"}
	profiles := []codec.Profile{codec.Lossless, codec.SWB32, codec.SWB24, codec.SWB24ULL}
	clips := corpusSubset(clipCount(s))
	secs := clipSeconds(s)
	rng := rand.New(rand.NewSource(15))
	truths := make([]float64, len(clips))
	for i := range truths {
		truths[i] = rng.Float64()*0.4 - 0.2
	}
	r.addf("%-28s %12s %12s %14s", "profile", "mean rate", "100% clips", "err p99 (us)")
	for pi, prof := range profiles {
		var rates []float64
		var errs []float64
		for i, spec := range clips {
			clip := gamesynth.Generate(spec, secs)
			res := runDetection(clip, recordingSetup{
				Mic:         acoustic.XboxHeadset,
				Profile:     prof,
				C:           0.5,
				TruthISDSec: truths[i],
				Seed:        int64(4000*i) + int64(pi),
				DriftPPM:    defaultDriftPPM(int64(4000*i) + int64(pi)),
			})
			rates = append(rates, res.Rate)
			errs = append(errs, res.AbsErrorsSec...)
		}
		full := analysis.Fraction(rates, func(v float64) bool { return v >= 0.999 }) * 100
		_, p99 := summarizeErrors(errs)
		r.addf("%-28s %12.2f %11.0f%% %14.0f", prof.Name, analysis.Mean(rates), full, p99)
		r.set(keyf("rate_mean_%d", pi), analysis.Mean(rates))
		r.set(keyf("err_p99_us_%d", pi), p99)
	}
	return r
}

// runFig17 reproduces Figure 17 (Appendix E): the frequency responses of
// the three microphone models, probed with sinusoids. Paper: the studio
// microphone is ~flat, the Xbox headset has several-dB peaks and troughs,
// and the Samsung earphone swings more than 30 dB.
//
// Values: "swing_db_<mic>".
func runFig17(s Scale) *Report {
	r := &Report{ID: "fig17", Title: "Microphone frequency responses"}
	freqs := []float64{200, 400, 800, 1500, 3000, 5500, 7000, 9000, 10500, 12000, 15000}
	if s == Quick {
		freqs = []float64{400, 3000, 9000, 12000}
	}
	mics := []acoustic.Microphone{acoustic.StudioMic, acoustic.XboxHeadset, acoustic.SamsungIG955}
	header := "freq(Hz)"
	r.addf("%-10s %22s %22s %22s", header, mics[0], mics[1], mics[2])
	swings := make([]float64, len(mics))
	mins := []float64{1e9, 1e9, 1e9}
	maxs := []float64{-1e9, -1e9, -1e9}
	for _, f := range freqs {
		var vals [3]float64
		for i, m := range mics {
			v := m.ResponseDB(f)
			vals[i] = v
			if v < mins[i] {
				mins[i] = v
			}
			if v > maxs[i] {
				maxs[i] = v
			}
		}
		r.addf("%-10.0f %22.1f %22.1f %22.1f", f, vals[0], vals[1], vals[2])
	}
	for i, m := range mics {
		swings[i] = maxs[i] - mins[i]
		r.addf("%s swing: %.1f dB", m, swings[i])
		r.set(keyf("swing_db_%d", int(m)), swings[i])
	}
	return r
}
