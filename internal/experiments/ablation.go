package experiments

import (
	"math"

	"ekho/internal/acoustic"
	"ekho/internal/analysis"
	"ekho/internal/audio"
	"ekho/internal/codec"
	"ekho/internal/dsp"
	"ekho/internal/estimator"
	"ekho/internal/gamesynth"
	"ekho/internal/pn"
)

func init() { register("ablation", runAblation) }

// runAblation probes the design choices the paper fixes by construction
// (DESIGN.md calls these out for ablation benches):
//
//   - Marker band: 6-12 kHz (the paper's choice, below the SWB ceiling and
//     above most game-audio/speech energy) vs a 1-5 kHz low-band variant
//     that collides with chatter — the low band must lose detections.
//   - Marker length L: 1 s vs 0.5 s vs 0.25 s — "the longer the
//     PN-sequence, the higher its detection rate" (§4.2): shorter markers
//     must show weaker correlation peaks.
//   - Peak threshold θ: detection rate vs the analytic false-positive
//     budget of Appendix A (θ=5 is the knee).
//
// Values: "band_low_rate", "band_paper_rate", "len_strength_<L>",
// "theta_rate_<θ>", "theta_fp_<θ>".
func runAblation(s Scale) *Report {
	r := &Report{ID: "ablation", Title: "Design-choice ablations (marker band, length, threshold)"}
	nClips := 4
	secs := 8.0
	if s == Quick {
		nClips = 2
		secs = 6
	}
	clips := corpusSubset(nClips)

	// --- Marker band ablation, under medium chatter. ---
	bandRate := func(lo, hi float64) float64 {
		seq := bandSequence(lo, hi)
		var rates []float64
		for i, spec := range clips {
			clip := gamesynth.Generate(spec, secs)
			rates = append(rates, bandDetectionRate(clip, seq, int64(7000+i)))
		}
		return analysis.Mean(rates)
	}
	paperRate := bandRate(pn.BandLowHz, pn.BandHighHz)
	lowRate := bandRate(1000, 5000)
	r.addf("marker band under Med Chat: 6-12 kHz rate %.2f vs 1-5 kHz rate %.2f", paperRate, lowRate)
	r.set("band_paper_rate", paperRate)
	r.set("band_low_rate", lowRate)

	// --- Marker length ablation: peak strength vs L. ---
	r.addf("%-12s %18s", "marker L (s)", "median peak (sigma)")
	for _, lsec := range []float64{0.25, 0.5, 1.0} {
		strength := lengthStrength(clips[0], lsec, secs)
		r.addf("%-12.2f %18.1f", lsec, strength)
		r.set(keyf("len_strength_%g", lsec), strength)
	}

	// --- Threshold ablation: θ sweep of detection rate + analytic FP. ---
	clip := gamesynth.Generate(clips[1%len(clips)], secs)
	marked, log := pn.Mark(clip, sharedSeq, 0.25) // low volume stresses θ
	ch := acoustic.Channel{Mic: acoustic.SamsungIG955, DistanceFt: 6, Attenuation: 0.1,
		Room: acoustic.Room{RT60: 0.35, Reflections: 30, Seed: 5}, AmbientLevel: 0.002, NoiseSeed: 6}
	recv := ch.Transmit(marked)
	recv.Samples = append(recv.Samples, make([]float64, int(1.2*audio.SampleRate))...)
	coded, err := codec.RoundTripAligned(recv, codec.SWB24)
	if err != nil {
		panic(err)
	}
	r.addf("%-8s %14s %18s", "theta", "detect rate", "analytic FP/sample")
	for _, theta := range []float64{3, 4, 5, 7, 10} {
		dets := estimator.DetectMarkers(coded.Samples, estimator.Config{Seq: sharedSeq, Theta: theta})
		rate := float64(len(dets)) / float64(len(log))
		if rate > 1 {
			rate = 1
		}
		fp := analysis.FalsePositiveRate(theta)
		r.addf("%-8.0f %14.2f %18.2e", theta, rate, fp)
		r.set(keyf("theta_rate_%g", theta), rate)
		r.set(keyf("theta_fp_%g", theta), fp)
	}

	// --- Marker interval vs maximum ISD: §4.2 requires the interval to
	// exceed twice the largest possible ISD or matching aliases to the
	// wrong marker. Demonstrate with a 350 ms true ISD: a 1 s interval
	// resolves it; a 0.5 s interval (max |ISD| 250 ms) aliases to -150 ms.
	const bigISD = 0.350
	aliasErr := func(intervalSec float64) float64 {
		var dets []estimator.Detection
		var markers []float64
		for k := 1; k <= 6; k++ {
			mt := float64(k) * intervalSec
			markers = append(markers, mt)
			dets = append(dets, estimator.Detection{
				Sample: int((mt + bigISD) * audio.SampleRate), Strength: 10,
			})
		}
		cfg := estimator.Config{Seq: sharedSeq,
			IntervalSamples: int(intervalSec * audio.SampleRate),
			MaxISDSeconds:   intervalSec / 2}
		ms := estimator.MatchISD(dets, 0, audio.SampleRate, markers, cfg)
		if len(ms) == 0 {
			return math.Inf(1)
		}
		var worst float64
		for _, m := range ms {
			if e := math.Abs(m.ISDSeconds - bigISD); e > worst {
				worst = e
			}
		}
		return worst
	}
	e1 := aliasErr(1.0)
	e05 := aliasErr(0.5)
	r.addf("interval vs 350 ms ISD: 1 s interval err %.1f ms; 0.5 s interval err %.1f ms (aliases)",
		e1*1000, e05*1000)
	r.set("interval_1s_err_ms", e1*1000)
	r.set("interval_05s_err_ms", e05*1000)
	return r
}

// bandSequence builds a PN sequence band-limited to [lo, hi] Hz (the
// paper's generator with a different band).
func bandSequence(lo, hi float64) *pn.Sequence {
	base := pn.NewSequence(1337, pn.DefaultLength)
	if lo == pn.BandLowHz && hi == pn.BandHighHz {
		return base
	}
	// Generate directly: Gaussian noise filtered to [lo, hi].
	seq := &pn.Sequence{Seed: 1337}
	noise := make([]float64, pn.DefaultLength)
	rng := newMCRand()
	for i := range noise {
		noise[i] = rng.NormFloat64()
	}
	fir := dsp.BandPass(lo, hi, audio.SampleRate, 511)
	filtered := fir.Apply(noise)
	rms := dsp.RMS(filtered)
	for i := range filtered {
		filtered[i] /= rms
	}
	seq.Samples = filtered
	return seq
}

// bandDetectionRate runs the §6.4 medium-chatter condition with markers
// injected from the given sequence.
func bandDetectionRate(clip *audio.Buffer, seq *pn.Sequence, seed int64) float64 {
	marked, log := pn.Mark(clip, seq, 0.5)
	ch := acoustic.Channel{Mic: acoustic.XboxHeadset, DistanceFt: 6, Attenuation: 0.1,
		Room: acoustic.Room{RT60: 0.35, Reflections: 30, Seed: seed}, AmbientLevel: 0.0006, NoiseSeed: seed + 1}
	chatter := gamesynth.Babble(newSeededRand(seed+2), clip.Duration(), 2)
	gain := audio.GainForDBA(chatter, audio.MedianFrameDBA(clip))
	recv := ch.TransmitMixed(marked, chatter.Clone().Gain(gain), nearFieldCoupling)
	recv.Samples = append(recv.Samples, make([]float64, int(1.2*audio.SampleRate))...)
	coded, err := codec.RoundTripAligned(recv, codec.SWB32)
	if err != nil {
		panic(err)
	}
	dets := estimator.DetectMarkers(coded.Samples, estimator.Config{Seq: seq})
	rate := float64(len(dets)) / float64(len(log))
	return math.Min(rate, 1)
}

// lengthStrength reports the median confirmed-peak strength for markers of
// the given length (seconds) on a clean channel.
func lengthStrength(spec gamesynth.ClipSpec, lsec, clipSecs float64) float64 {
	seq := pn.NewSequence(777, int(lsec*audio.SampleRate))
	clip := gamesynth.Generate(spec, clipSecs)
	marked, _ := pn.Mark(clip, seq, 0.5)
	ch := acoustic.Channel{Mic: acoustic.XboxHeadset, DistanceFt: 6, Attenuation: 0.1,
		Room: acoustic.Room{RT60: 0.35, Reflections: 30, Seed: 9}, AmbientLevel: 0.0006, NoiseSeed: 10}
	recv := ch.Transmit(marked)
	recv.Samples = append(recv.Samples, make([]float64, int(1.2*audio.SampleRate))...)
	// Detect with matching L (interval stays 1 s).
	dets := estimator.DetectMarkers(recv.Samples, estimator.Config{Seq: seq})
	if len(dets) == 0 {
		return 0
	}
	var strengths []float64
	for _, d := range dets {
		strengths = append(strengths, d.Strength)
	}
	return analysis.Percentile(strengths, 0.5)
}
