package experiments

import (
	"math"

	"ekho/internal/analysis"
	"ekho/internal/netsim"
	"ekho/internal/session"
)

func init() { register("providers", runProviders) }

// providerSessions maps scale to (sessions per provider, duration seconds).
func providerSessions(s Scale) (int, float64) {
	switch s {
	case Quick:
		return 1, 30
	case Standard:
		return 2, 90
	default:
		return 4, 300
	}
}

// runProviders runs the end-to-end session over the named provider-shaped
// network profiles (netsim.Providers: Stadia / GeForce Now / PS Now, per
// the arXiv:2012.06774 measurement study) and reports how well Ekho holds
// sync on each. The expectation is monotone in path quality: the edge-
// hosted Stadia shape converges fastest and stays tightest, PS Now — the
// slowest, jitteriest, lossiest of the three — is the stress case.
//
// Values per provider: "<name>_insync_pct", "<name>_median_ms",
// "<name>_p95_ms", "<name>_measurements".
func runProviders(s Scale) *Report {
	r := &Report{ID: "providers", Title: "Ekho sync quality across provider network profiles"}
	n, dur := providerSessions(s)
	r.addf("%-8s %12s %12s %12s %14s %10s", "profile", "in-sync %", "median ms", "p95 ms", "measurements", "loss %")
	for _, p := range netsim.Providers() {
		var abs []float64
		inSync, total := 0, 0
		meas := 0
		lost, sent := 0, 0
		for i := 0; i < n; i++ {
			sc := session.DefaultScenario()
			sc.Seed = int64(i + 1)
			sc.DurationSec = dur
			sc.ClipIndex = i * 7
			sc.Provider = p.Name
			res := session.Run(sc)
			meas += len(res.Measurements)
			lost += res.ScreenLoss.Lost + res.AccessLoss.Lost
			sent += res.ScreenLoss.Sent + res.AccessLoss.Sent
			for _, pt := range res.Trace {
				if pt.TimeSec < sc.WarmupIgnoreSec {
					continue
				}
				v := math.Abs(pt.ISDSeconds) * 1000
				abs = append(abs, v)
				total++
				if v <= 10 {
					inSync++
				}
			}
		}
		sync := 0.0
		if total > 0 {
			sync = float64(inSync) / float64(total) * 100
		}
		lossPct := 0.0
		if sent > 0 {
			lossPct = float64(lost) / float64(sent) * 100
		}
		median := analysis.Percentile(abs, 0.5)
		p95 := analysis.Percentile(abs, 0.95)
		r.addf("%-8s %11.1f%% %12.2f %12.2f %14d %9.2f%%",
			p.Name, sync, median, p95, meas, lossPct)
		r.set(p.Name+"_insync_pct", sync)
		r.set(p.Name+"_median_ms", median)
		r.set(p.Name+"_p95_ms", p95)
		r.set(p.Name+"_measurements", float64(meas))
	}
	return r
}
