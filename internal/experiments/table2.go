package experiments

import (
	"strings"

	"ekho/internal/analysis"
	"ekho/internal/audio"
	"ekho/internal/gamesynth"
)

func init() {
	register("table2", runTable2)
	register("appa", runAppA)
}

// runTable2 reproduces Table 2: the evaluation corpus — 15 game titles,
// two 15-second clips each, annotated with genre and stimulus categories.
//
// Values: "clips", "games".
func runTable2(s Scale) *Report {
	r := &Report{ID: "table2", Title: "Evaluation corpus (synthetic equivalents of Table 2)"}
	cat := gamesynth.Catalog()
	games := map[string]bool{}
	r.addf("%-32s %-30s %-4s %s", "game", "genre", "clip", "audio categories")
	for _, c := range cat {
		games[c.Game] = true
		var cats []string
		for _, cc := range c.Categories {
			cats = append(cats, cc.String())
		}
		r.addf("%-32s %-30s #%-3d %s", c.Game, c.Genre, c.Index, strings.Join(cats, ", "))
	}
	r.addf("total: %d clips from %d games, %.0f s each", len(cat), len(games), gamesynth.ClipSeconds)
	r.set("clips", float64(len(cat)))
	r.set("games", float64(len(games)))
	_ = s
	return r
}

// runAppA reproduces Appendix A: the analytic reliability model for the
// peak-detection thresholds, cross-checked against Monte-Carlo simulation.
// The paper's numbers: at θ = 5 the per-sample false-positive rate is tiny
// but still one spurious sample every ~10 s at 48 kHz; requiring a second
// aligned peak (Eq. 7) pushes the false-peak interval to hours.
//
// Values: "fp_theta5", "fpeak_theta5_delta100", "mtbf_hours_theta5",
// "mc_ratio_theta3" (Monte-Carlo / analytic at θ=3).
func runAppA(s Scale) *Report {
	r := &Report{ID: "appa", Title: "Reliability model: false-positive and false-peak rates"}
	r.addf("%-8s %16s %20s %22s", "theta", "FP/sample", "false-peak/sample", "mean time to false peak")
	for _, theta := range []float64{3, 4, 5, 6} {
		fp := analysis.FalsePositiveRate(theta)
		fpk := analysis.FalsePeakRate(theta, 100)
		mtbf := analysis.MeanTimeBetweenFalsePositives(fpk, audio.SampleRate)
		r.addf("%-8.0f %16.3e %20.3e %19.1f h", theta, fp, fpk, mtbf/3600)
	}
	fp5 := analysis.FalsePositiveRate(5)
	r.set("fp_theta5", fp5)
	r.set("fpeak_theta5_delta100", analysis.FalsePeakRate(5, 100))
	r.set("mtbf_hours_theta5",
		analysis.MeanTimeBetweenFalsePositives(analysis.FalsePeakRate(5, 100), audio.SampleRate)/3600)

	// Monte-Carlo validation at θ=3 (tractable tail).
	n := 2_000_000
	if s == Quick {
		n = 300_000
	}
	count := 0
	rng := newMCRand()
	for i := 0; i < n; i++ {
		if absF(rng.NormFloat64()) > 3 {
			count++
		}
	}
	mc := float64(count) / float64(n)
	an := analysis.FalsePositiveRate(3)
	r.addf("Monte-Carlo check at theta=3: simulated %.3e vs analytic %.3e (ratio %.2f)",
		mc, an, mc/an)
	r.set("mc_ratio_theta3", mc/an)
	return r
}

func absF(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
