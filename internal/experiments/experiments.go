// Package experiments regenerates every table and figure of the paper's
// evaluation. Each experiment is a registered function that runs the
// workload at a chosen scale and returns a Report: structured numbers plus
// pre-formatted rows matching what the paper prints.
//
// Scales:
//
//   - Quick    — a few clips / short sessions; used by unit tests.
//   - Standard — reduced but representative; used by `go test -bench`.
//   - Full     — the paper's full workload (30 clips, 6×5 min sessions);
//     used by `ekho-bench -scale full`.
package experiments

import (
	"fmt"
	"sort"
	"strings"
)

// Scale selects the workload size.
type Scale int

// Workload sizes.
const (
	Quick Scale = iota
	Standard
	Full
)

// ParseScale maps a flag string to a Scale.
func ParseScale(s string) (Scale, error) {
	switch strings.ToLower(s) {
	case "quick":
		return Quick, nil
	case "standard", "std", "":
		return Standard, nil
	case "full":
		return Full, nil
	}
	return 0, fmt.Errorf("experiments: unknown scale %q (quick|standard|full)", s)
}

// Report is an experiment's output.
type Report struct {
	// ID is the experiment identifier (e.g. "fig11").
	ID string
	// Title describes the paper element reproduced.
	Title string
	// Rows are formatted output lines (the table rows / figure series).
	Rows []string
	// Values holds key numeric results for programmatic checks; keys are
	// experiment-specific (documented per experiment).
	Values map[string]float64
}

// addf appends a formatted row.
func (r *Report) addf(format string, args ...any) {
	r.Rows = append(r.Rows, fmt.Sprintf(format, args...))
}

// set records a named value.
func (r *Report) set(key string, v float64) {
	if r.Values == nil {
		r.Values = make(map[string]float64)
	}
	r.Values[key] = v
}

// String renders the report.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	for _, row := range r.Rows {
		b.WriteString(row)
		b.WriteByte('\n')
	}
	return b.String()
}

// Runner is an experiment entry point.
type Runner func(Scale) *Report

var registry = map[string]Runner{}
var registryOrder []string

func register(id string, r Runner) {
	if _, dup := registry[id]; dup {
		panic("experiments: duplicate id " + id)
	}
	registry[id] = r
	registryOrder = append(registryOrder, id)
}

// Get returns the runner for an experiment ID.
func Get(id string) (Runner, bool) {
	r, ok := registry[id]
	return r, ok
}

// IDs lists all experiment IDs in registration order.
func IDs() []string {
	out := append([]string(nil), registryOrder...)
	sort.Strings(out)
	return out
}
