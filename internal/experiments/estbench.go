package experiments

import (
	"math"
	"runtime"
	"time"

	"ekho/internal/acoustic"
	"ekho/internal/audio"
	"ekho/internal/estimator"
	"ekho/internal/gamesynth"
	"ekho/internal/pn"
)

func init() { register("estbench", runEstBench) }

// runEstBench measures the estimator front-end's steady-state cost in the
// unit the hub budgets by: nanoseconds of CPU per second of fed mic audio.
// Both detector pipelines run over the same overheard recording — the
// band-decimated two-stage detector (the default) and the full-rate
// reference — and the report pairs the speedup with a detection-parity
// check so a faster front-end that drops or displaces markers cannot pass.
//
// Values: "ns_per_fed_sec_two_stage", "ns_per_fed_sec_full_rate",
// "speedup", "detections_two_stage", "detections_full_rate",
// "parity_max_delta_samples" (-1 when the detection sets differ in size,
// which is itself a parity failure).
func runEstBench(s Scale) *Report {
	r := &Report{ID: "estbench", Title: "Estimator front-end cost: two-stage vs full-rate detection"}
	seconds, reps := 30.0, 3
	switch s {
	case Quick:
		seconds, reps = 10, 2
	case Full:
		seconds, reps = 60, 5
	}

	// One overheard recording for both pipelines: marked game audio through
	// the default living-room channel (Xbox headset, 6 ft).
	clip := gamesynth.Generate(gamesynth.Catalog()[2], seconds)
	marked, _ := pn.Mark(clip, sharedSeq, pn.DefaultC)
	marked.Samples = append(marked.Samples, make([]float64, int(1.2*audio.SampleRate))...)
	rec := acoustic.DefaultChannel().Transmit(marked).Samples
	fedSec := float64(len(rec)/audio.FrameSamples*audio.FrameSamples) / audio.SampleRate

	// run feeds the recording frame by frame, as the hub's uplink does, and
	// returns the detections plus the best-of-reps ns per fed second (min
	// over repetitions rejects scheduler noise; see BENCH_hub methodology).
	run := func(mode estimator.DetectorMode) ([]estimator.Detection, float64) {
		var dets []estimator.Detection
		best := math.Inf(1)
		for rep := 0; rep < reps; rep++ {
			d := estimator.NewIncrementalDetector(estimator.Config{Seq: sharedSeq, Detector: mode})
			var out []estimator.Detection
			runtime.GC()
			start := time.Now()
			for pos := 0; pos+audio.FrameSamples <= len(rec); pos += audio.FrameSamples {
				out = append(out, d.Feed(rec[pos:pos+audio.FrameSamples])...)
			}
			elapsed := time.Since(start).Seconds()
			out = append(out, d.Flush()...) // drain, untimed: steady-state cost only
			if elapsed < best {
				best = elapsed
			}
			dets = out
		}
		return dets, best / fedSec * 1e9
	}

	full, fullNs := run(estimator.DetectorFullRate)
	two, twoNs := run(estimator.DetectorTwoStage)

	speedup := fullNs / twoNs
	maxDelta := 0.0
	if len(two) != len(full) {
		maxDelta = -1
	} else {
		for i := range full {
			if d := math.Abs(float64(two[i].Sample - full[i].Sample)); d > maxDelta {
				maxDelta = d
			}
		}
	}

	r.addf("full-rate reference: %8.0f ns per fed second (%.2f%% of one core)", fullNs, fullNs/1e9*100)
	r.addf("two-stage detector:  %8.0f ns per fed second (%.2f%% of one core)", twoNs, twoNs/1e9*100)
	r.addf("speedup: %.2fx (acceptance floor: 3x)", speedup)
	r.addf("detections: two-stage %d, full-rate %d, max timestamp delta %.0f samples",
		len(two), len(full), maxDelta)
	r.set("ns_per_fed_sec_two_stage", twoNs)
	r.set("ns_per_fed_sec_full_rate", fullNs)
	r.set("speedup", speedup)
	r.set("detections_two_stage", float64(len(two)))
	r.set("detections_full_rate", float64(len(full)))
	r.set("parity_max_delta_samples", maxDelta)
	return r
}
