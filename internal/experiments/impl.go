package experiments

import (
	"runtime"
	"time"

	"ekho/internal/acoustic"
	"ekho/internal/audio"
	"ekho/internal/estimator"
	"ekho/internal/gamesynth"
	"ekho/internal/pn"
)

func init() { register("impl", runImpl) }

// runImpl reproduces the §5.2 implementation profile: the paper's C++
// Ekho-Server uses ~2.5% of one 2.3 GHz core and peaks at 83 MiB. This
// experiment measures the Go implementation's equivalent numbers: the
// wall time the streaming estimator (the compute-dominant component)
// spends per second of real-time audio, expressed as a core fraction, and
// the allocation high-water mark while processing.
//
// Values: "cpu_core_pct" (percent of one core for real-time operation),
// "peak_alloc_mib", "injector_cpu_pct".
func runImpl(s Scale) *Report {
	r := &Report{ID: "impl", Title: "Implementation profile: CPU and memory (§5.2)"}
	seconds := 30.0
	if s == Quick {
		seconds = 10
	}

	// Build a realistic chat recording: marked game audio through the
	// default channel.
	clip := gamesynth.Generate(gamesynth.Catalog()[2], gamesynth.ClipSeconds)
	looped := audio.NewBuffer(audio.SampleRate, int(seconds*audio.SampleRate))
	for i := range looped.Samples {
		looped.Samples[i] = clip.Samples[i%clip.Len()]
	}
	marked, log := pn.Mark(looped, sharedSeq, pn.DefaultC)
	recvBuf := acoustic.DefaultChannel().Transmit(marked)

	var m0, m1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&m0)

	// Streaming estimation, frame by frame, as Ekho-Server runs it.
	est := estimator.NewStreamer(estimator.Config{Seq: sharedSeq})
	for _, inj := range log {
		est.AddMarkerTime(float64(inj.StartSample) / audio.SampleRate)
	}
	measurements := 0
	start := time.Now()
	for i := 0; i+audio.FrameSamples <= recvBuf.Len(); i += audio.FrameSamples {
		ms := est.AddChat(recvBuf.Samples[i:i+audio.FrameSamples], float64(i)/audio.SampleRate)
		measurements += len(ms)
	}
	estElapsed := time.Since(start).Seconds()
	runtime.ReadMemStats(&m1)

	// Marker injection cost (server-side hot path).
	inj := pn.NewInjector(sharedSeq, pn.DefaultC)
	frames := looped.Frames(audio.FrameSamples)
	start = time.Now()
	for _, f := range frames {
		cp := make([]float64, len(f))
		copy(cp, f)
		inj.ProcessFrame(cp)
	}
	injElapsed := time.Since(start).Seconds()

	cpuPct := estElapsed / seconds * 100
	injPct := injElapsed / seconds * 100
	peakMiB := float64(m1.TotalAlloc-m0.TotalAlloc) / (1 << 20) / (seconds / 4) // rough per-window footprint
	heapMiB := float64(m1.HeapAlloc) / (1 << 20)

	r.addf("streaming estimator: %.2f s of CPU per %.0f s of audio = %.1f%% of one core", estElapsed, seconds, cpuPct)
	r.addf("marker injector:     %.3f s per %.0f s of audio = %.2f%% of one core", injElapsed, seconds, injPct)
	r.addf("heap in use after run: %.1f MiB (paper: 83 MiB peak)", heapMiB)
	r.addf("measurements produced: %d over %d markers", measurements, len(log))
	r.addf("(paper's C++ reference: ~2.5%% of a 2.3 GHz core)")
	r.set("cpu_core_pct", cpuPct)
	r.set("injector_cpu_pct", injPct)
	r.set("peak_alloc_mib", peakMiB)
	r.set("heap_mib", heapMiB)
	r.set("measurements", float64(measurements))
	return r
}
