package experiments

import (
	"runtime"
	"time"

	"ekho/internal/acoustic"
	"ekho/internal/audio"
	"ekho/internal/codec"
	"ekho/internal/compensator"
	"ekho/internal/estimator"
	"ekho/internal/gamesynth"
	"ekho/internal/serverpipe"
)

func init() { register("impl", runImpl) }

// countingSink tallies pipeline events for the profile report.
type countingSink struct {
	serverpipe.NopSink
	markers      int
	measurements int
}

func (c *countingSink) MarkerInjected(int64)                          { c.markers++ }
func (c *countingSink) ISDMeasurement(float64, estimator.Measurement) { c.measurements++ }

// runImpl reproduces the §5.2 implementation profile: the paper's C++
// Ekho-Server uses ~2.5% of one 2.3 GHz core and peaks at 83 MiB. This
// experiment profiles the same per-session server core every hosting layer
// runs — a serverpipe.Pipeline — split into its two halves: the downlink
// side (stream scheduling + marker injection) and the uplink side (chat
// decode, marker resolution, streaming estimation), each expressed as the
// fraction of one core needed for real-time operation.
//
// Values: "cpu_core_pct" (uplink side), "injector_cpu_pct" (downlink
// side), "peak_alloc_mib", "heap_mib", "measurements".
func runImpl(s Scale) *Report {
	r := &Report{ID: "impl", Title: "Implementation profile: CPU and memory (§5.2)"}
	seconds := 30.0
	if s == Quick {
		seconds = 10
	}
	profile := codec.SWB32

	clip := gamesynth.Generate(gamesynth.Catalog()[2], gamesynth.ClipSeconds)
	sink := &countingSink{}
	pipe := serverpipe.New(serverpipe.Config{
		Game:  clip,
		Seq:   sharedSeq,
		Codec: profile,
		// The chat recording is pre-rendered below, so compensation must
		// not shift the accessory timeline mid-run: disable it by pushing
		// the hysteresis threshold out of reach.
		Compensator: compensator.Config{MinCorrectionSec: 1e9},
		Sink:        sink,
	})

	nFrames := int(seconds * audio.SampleRate / audio.FrameSamples)

	// Downlink side: produce the marked screen stream and the accessory
	// stream frame by frame, exactly as the hub's tick does.
	marked := audio.NewBuffer(audio.SampleRate, nFrames*audio.FrameSamples)
	frame := make([]float64, audio.FrameSamples)
	records := make([]serverpipe.Record, 0, nFrames)
	start := time.Now()
	for i := 0; i < nFrames; i++ {
		pipe.NextScreenFrame(marked.Samples[i*audio.FrameSamples : (i+1)*audio.FrameSamples])
		fi := pipe.NextAccessoryFrame(frame)
		if fi.ContentStart >= 0 {
			// Identity playback timing: accessory content n plays at local
			// time n/rate (no compensation shifts it; see above).
			records = append(records, serverpipe.Record{
				ContentStart: fi.ContentStart,
				N:            audio.FrameSamples - fi.ContentOff,
				LocalTime:    float64(fi.ContentStart) / audio.SampleRate,
			})
		}
	}
	injElapsed := time.Since(start).Seconds()

	// Overheard chat: the marked stream through the default room, encoded
	// with the paper's uplink codec (pre-rendered so only the server-side
	// uplink path is timed below).
	recvBuf := acoustic.DefaultChannel().Transmit(marked)
	enc := codec.NewEncoder(profile)
	packets := make([][]byte, 0, nFrames)
	for i := 0; i+audio.FrameSamples <= recvBuf.Len(); i += audio.FrameSamples {
		pkt, err := enc.Encode(recvBuf.Samples[i : i+audio.FrameSamples])
		if err != nil {
			panic(err)
		}
		packets = append(packets, pkt)
	}

	var m0, m1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&m0)

	// Uplink side: per-packet record delivery, marker resolution, decode
	// and streaming estimation, as Ekho-Server runs it.
	ri := 0
	start = time.Now()
	for i, pkt := range packets {
		// Piggyback each record on the chat packet that follows its frame
		// (the client batches records per uplink packet).
		for ri < len(records) && records[ri].ContentStart < int64((i+1)*audio.FrameSamples) {
			pipe.OfferRecord(records[ri])
			ri++
		}
		pipe.OfferChat(uint32(i), float64(i)*float64(audio.FrameSamples)/audio.SampleRate, pkt)
	}
	chatElapsed := time.Since(start).Seconds()
	runtime.ReadMemStats(&m1)

	cpuPct := chatElapsed / seconds * 100
	injPct := injElapsed / seconds * 100
	peakMiB := float64(m1.TotalAlloc-m0.TotalAlloc) / (1 << 20) / (seconds / 4) // rough per-window footprint
	heapMiB := float64(m1.HeapAlloc) / (1 << 20)

	r.addf("uplink path (decode+resolve+estimate): %.2f s of CPU per %.0f s of audio = %.1f%% of one core", chatElapsed, seconds, cpuPct)
	r.addf("downlink path (streams+injector):      %.3f s per %.0f s of audio = %.2f%% of one core", injElapsed, seconds, injPct)
	r.addf("heap in use after run: %.1f MiB (paper: 83 MiB peak)", heapMiB)
	r.addf("measurements produced: %d over %d markers", sink.measurements, sink.markers)
	r.addf("(paper's C++ reference: ~2.5%% of a 2.3 GHz core)")
	r.set("cpu_core_pct", cpuPct)
	r.set("injector_cpu_pct", injPct)
	r.set("peak_alloc_mib", peakMiB)
	r.set("heap_mib", heapMiB)
	r.set("measurements", float64(sink.measurements))
	return r
}
