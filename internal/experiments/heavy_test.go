package experiments

import (
	"math"
	"testing"
)

// The detection-sweep and end-to-end experiments are heavier; they run at
// Quick scale here and at Standard scale in the benchmarks.

func TestFig11Shape(t *testing.T) {
	r := mustRun(t, "fig11")
	// C = 0.5 detects everything with sub-ms p99 error.
	if r.Values["rate_mean_0.5"] < 0.95 {
		t.Fatalf("C=0.5 mean rate %g", r.Values["rate_mean_0.5"])
	}
	if r.Values["err_p99_us_0.5"] > 1000 {
		t.Fatalf("C=0.5 p99 error %g us", r.Values["err_p99_us_0.5"])
	}
	// C = 0.1 is worse than C = 0.5 on detection rate.
	if r.Values["rate_mean_0.1"] > r.Values["rate_mean_0.5"]+1e-9 {
		t.Fatalf("C=0.1 rate %g should not beat C=0.5 %g",
			r.Values["rate_mean_0.1"], r.Values["rate_mean_0.5"])
	}
}

func TestFig12Shape(t *testing.T) {
	r := mustRun(t, "fig12")
	// Ekho must dominate GCC-PHAT under chatter.
	if r.Values["ekho_rate_mean_med"] <= r.Values["gcc_rate_mean_med"] {
		t.Fatalf("ekho %g vs gcc %g under med chat",
			r.Values["ekho_rate_mean_med"], r.Values["gcc_rate_mean_med"])
	}
	if r.Values["ekho_rate_mean_med"] < 0.7 {
		t.Fatalf("ekho rate under chatter %g too low", r.Values["ekho_rate_mean_med"])
	}
	// GCC-PHAT loses most clips under chatter (paper: >75% no detection;
	// require a substantial fraction here).
	if r.Values["gcc_rate_mean_med"] > 0.6 {
		t.Fatalf("gcc rate under med chat %g suspiciously high", r.Values["gcc_rate_mean_med"])
	}
}

func TestFig13Shape(t *testing.T) {
	r := mustRun(t, "fig13")
	// Every mic reaches full detection at some amplitude <= 9 dB.
	for mic := 0; mic < 3; mic++ {
		min := r.Values[keyf("min_detect_amp_%d", mic)]
		if min < 0 || min > 9 {
			t.Fatalf("mic %d min detect amplitude %g", mic, min)
		}
	}
	// At 15 dB the marker stays below a quiet library's 40 dBA (paper).
	if v, ok := r.Values["dba_at_15db"]; ok && v >= 40 {
		t.Fatalf("marker at 15 dB reads %g dBA, want < 40", v)
	}
}

func TestFig14Shape(t *testing.T) {
	r := mustRun(t, "fig14")
	for mic := 0; mic < 3; mic++ {
		if r.Values[keyf("rate_mean_%d", mic)] < 0.95 {
			t.Fatalf("mic %d rate %g", mic, r.Values[keyf("rate_mean_%d", mic)])
		}
		if r.Values[keyf("err_p99_us_%d", mic)] > 1000 {
			t.Fatalf("mic %d p99 %g us", mic, r.Values[keyf("err_p99_us_%d", mic)])
		}
	}
}

func TestFig15Shape(t *testing.T) {
	r := mustRun(t, "fig15")
	for pi := 0; pi < 4; pi++ {
		if r.Values[keyf("rate_mean_%d", pi)] < 0.85 {
			t.Fatalf("profile %d rate %g", pi, r.Values[keyf("rate_mean_%d", pi)])
		}
	}
	// Lossless should not be worse than 24 kbps ULL.
	if r.Values["rate_mean_0"] < r.Values["rate_mean_3"]-1e-9 {
		t.Fatalf("lossless %g vs ULL %g", r.Values["rate_mean_0"], r.Values["rate_mean_3"])
	}
}

func TestFig8Shape(t *testing.T) {
	r := mustRun(t, "fig8")
	if r.Values["on_below_10ms_pct"] < 60 {
		t.Fatalf("Ekho ON below-10ms %g%% (quick scale)", r.Values["on_below_10ms_pct"])
	}
	if r.Values["off_below_50ms_pct"] > 5 {
		t.Fatalf("Ekho OFF below-50ms %g%% should be ~0", r.Values["off_below_50ms_pct"])
	}
	if r.Values["off_min_ms"] < 50 {
		t.Fatalf("Ekho OFF min ISD %g ms should never reach 50", r.Values["off_min_ms"])
	}
}

func TestFig9Shape(t *testing.T) {
	r := mustRun(t, "fig9")
	if math.Abs(r.Values["initial_isd_ms"]) < 100 {
		t.Fatalf("initial ISD %g ms should be large", r.Values["initial_isd_ms"])
	}
	if r.Values["first_action_frames"] < 5 {
		t.Fatalf("first correction %g frames", r.Values["first_action_frames"])
	}
	if math.Abs(r.Values["jump1_ms"]-20) > 10 {
		t.Fatalf("loss1 jump %g ms want ~20", r.Values["jump1_ms"])
	}
	if math.Abs(r.Values["jump2_ms"]+40) > 15 {
		t.Fatalf("loss2 jump %g ms want ~-40", r.Values["jump2_ms"])
	}
	if math.IsNaN(r.Values["resync1_s"]) || r.Values["resync1_s"] > 12 {
		t.Fatalf("resync1 %g s", r.Values["resync1_s"])
	}
	if math.IsNaN(r.Values["resync2_s"]) || r.Values["resync2_s"] > 12 {
		t.Fatalf("resync2 %g s", r.Values["resync2_s"])
	}
	if math.Abs(r.Values["final_isd_ms"]) > 10 {
		t.Fatalf("final ISD %g ms", r.Values["final_isd_ms"])
	}
}

func TestAblationShape(t *testing.T) {
	r := mustRun(t, "ablation")
	// The paper's band choice must beat the low-band variant under chatter.
	if r.Values["band_paper_rate"] < r.Values["band_low_rate"]+0.2 {
		t.Fatalf("6-12 kHz rate %g should clearly beat 1-5 kHz %g",
			r.Values["band_paper_rate"], r.Values["band_low_rate"])
	}
	// Longer markers give stronger peaks (§4.2).
	if !(r.Values["len_strength_0.25"] < r.Values["len_strength_1"]) {
		t.Fatalf("peak strength not monotone in L: %g vs %g",
			r.Values["len_strength_0.25"], r.Values["len_strength_1"])
	}
	// θ=5 retains detections; θ=10 loses most.
	if r.Values["theta_rate_5"] < 0.8 {
		t.Fatalf("theta=5 rate %g", r.Values["theta_rate_5"])
	}
	if r.Values["theta_rate_10"] > r.Values["theta_rate_5"] {
		t.Fatal("theta=10 should not beat theta=5")
	}
}

func TestImplShape(t *testing.T) {
	r := mustRun(t, "impl")
	// Real-time headroom: the estimator must use well under one core
	// (the paper's C++ uses 2.5%; allow 50% for unoptimized Go + CI).
	if r.Values["cpu_core_pct"] > 50 {
		t.Fatalf("estimator CPU %g%% of a core — not real-time capable", r.Values["cpu_core_pct"])
	}
	if r.Values["injector_cpu_pct"] > 5 {
		t.Fatalf("injector CPU %g%%", r.Values["injector_cpu_pct"])
	}
	if r.Values["heap_mib"] > 200 {
		t.Fatalf("heap %g MiB", r.Values["heap_mib"])
	}
	if r.Values["measurements"] < 5 {
		t.Fatalf("only %g measurements", r.Values["measurements"])
	}
}

func TestAblationIntervalAliasing(t *testing.T) {
	r := mustRun(t, "ablation")
	if r.Values["interval_1s_err_ms"] > 1 {
		t.Fatalf("1 s interval should resolve 350 ms ISD: err %g ms", r.Values["interval_1s_err_ms"])
	}
	if r.Values["interval_05s_err_ms"] < 100 {
		t.Fatalf("0.5 s interval should alias badly on 350 ms ISD: err %g ms", r.Values["interval_05s_err_ms"])
	}
}

func TestExtensionsShape(t *testing.T) {
	r := mustRun(t, "ext")
	if r.Values["haptic_skew_p95_ms"] > 24 {
		t.Fatalf("haptic skew p95 %g ms above the perception threshold", r.Values["haptic_skew_p95_ms"])
	}
	if r.Values["haptic_matched_pct"] < 50 {
		t.Fatalf("haptic matched %g%%", r.Values["haptic_matched_pct"])
	}
	if r.Values["multi_insync_min_pct"] < 70 {
		t.Fatalf("multi-screen worst in-sync %g%%", r.Values["multi_insync_min_pct"])
	}
	if r.Values["plc_jump_ratio"] > 1.0 {
		t.Fatalf("interpolated insertion jump ratio %g should be <= 1", r.Values["plc_jump_ratio"])
	}
}
