package experiments

import (
	"math"

	"ekho/internal/analysis"
	"ekho/internal/session"
)

func init() {
	register("fig8", runFig8)
	register("fig9", runFig9)
}

// fig8Sessions maps scale to (session count, duration seconds). The paper
// runs 6 sessions of 5 minutes each.
func fig8Sessions(s Scale) (int, float64) {
	switch s {
	case Quick:
		return 1, 45
	case Standard:
		return 2, 90
	default:
		return 6, 300
	}
}

// runFig8 reproduces Figure 8: the CDF of |ISD| across end-to-end WebRTC-
// style sessions over cellular + WiFi links, with and without Ekho. The
// paper reports 86.8% of time below 10 ms with Ekho and never below 50 ms
// without.
//
// Values: "on_below_10ms_pct", "off_below_50ms_pct", "on_median_ms",
// "off_min_ms".
func runFig8(s Scale) *Report {
	r := &Report{ID: "fig8", Title: "End-to-end |ISD| CDF, Ekho ON vs OFF"}
	n, dur := fig8Sessions(s)
	var on, off []float64
	for i := 0; i < n; i++ {
		sc := session.DefaultScenario()
		sc.Seed = int64(i + 1)
		sc.DurationSec = dur
		sc.ClipIndex = i * 5
		sc.EkhoEnabled = true
		ron := session.Run(sc)
		for _, p := range ron.Trace {
			if p.TimeSec >= sc.WarmupIgnoreSec {
				on = append(on, math.Abs(p.ISDSeconds)*1000)
			}
		}
		sc.EkhoEnabled = false
		roff := session.Run(sc)
		for _, p := range roff.Trace {
			if p.TimeSec >= sc.WarmupIgnoreSec {
				off = append(off, math.Abs(p.ISDSeconds)*1000)
			}
		}
	}
	probes := []float64{1, 2, 5, 10, 20, 50, 100, 200, 300, 500}
	onCDF := analysis.CDF(on, probes)
	offCDF := analysis.CDF(off, probes)
	r.addf("%-10s %14s %14s", "ISD (ms)", "Ekho ON (%)", "Ekho OFF (%)")
	for i, p := range probes {
		r.addf("%-10.0f %14.1f %14.1f", p, onCDF[i]*100, offCDF[i]*100)
	}
	below10 := analysis.Fraction(on, func(v float64) bool { return v <= 10 }) * 100
	offBelow50 := analysis.Fraction(off, func(v float64) bool { return v <= 50 }) * 100
	r.addf("Ekho ON:  %.1f%% of time below 10 ms (paper: 86.8%%)", below10)
	r.addf("Ekho OFF: %.1f%% of time below 50 ms (paper: 0%%)", offBelow50)
	r.set("on_below_10ms_pct", below10)
	r.set("off_below_50ms_pct", offBelow50)
	r.set("on_median_ms", analysis.Percentile(on, 0.5))
	r.set("off_min_ms", minOf(off))
	return r
}

func minOf(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, v := range xs[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// runFig9 reproduces Figure 9: one example session trace with scripted
// packet-loss events. The paper's session starts ~436 ms out of sync
// (corrected with 22 inserted frames), then a controller-side loss bumps
// ISD by ~20 ms (fixed in ~6 s) and a 2-frame screen-side loss bumps it by
// ~40 ms the other way (fixed in ~4 s).
//
// Values: "initial_isd_ms", "first_action_frames", "jump1_ms", "jump2_ms",
// "resync1_s", "resync2_s", "final_isd_ms".
func runFig9(s Scale) *Report {
	r := &Report{ID: "fig9", Title: "Example session trace with loss events"}
	dur := 130.0
	loss1, loss2 := 57.6, 98.4
	if s == Quick {
		dur, loss1, loss2 = 75, 35, 55
	}
	sc := session.DefaultScenario()
	sc.Seed = 7
	sc.DurationSec = dur
	// Deterministic: disable random loss; the scripted events drive the
	// dynamics. Deep controller buffer so losses jump (not rebuffer).
	sc.ScreenLink.LossProb = 0
	sc.ControllerLink.LossProb = 0
	sc.ControllerUplink.LossProb = 0
	sc.ControllerJitterFrames = 3
	// The paper's session starts 436 ms out of sync: a slow cellular path
	// to a TV with heavy post-processing and a deep jitter buffer.
	sc.ScreenLink.BaseDelay = 0.250
	sc.ScreenJitterFrames = 8
	sc.ScreenDeviceLatency = 0.100
	sc.ScriptedLosses = []session.ScriptedLoss{
		{AtSec: loss1, Stream: session.Accessory, Frames: 1},
		{AtSec: loss2, Stream: session.Screen, Frames: 2},
	}
	res := session.Run(sc)

	seg := func(lo, hi float64) float64 {
		var v []float64
		for _, p := range res.Trace {
			if p.TimeSec >= lo && p.TimeSec <= hi {
				v = append(v, p.ISDSeconds*1000)
			}
		}
		return analysis.Mean(v)
	}
	initial := seg(1.5, 2.5)
	// Post-loss windows open after the dropped frame reaches playout
	// (the deep screen buffer adds ~0.5 s) and close before the
	// compensator can react (the estimator needs ~2 s to see the shift).
	preL1 := seg(loss1-4, loss1-0.5)
	postL1 := seg(loss1+0.8, loss1+1.8)
	preL2 := seg(loss2-4, loss2-0.5)
	postL2 := seg(loss2+0.8, loss2+1.8)
	final := seg(dur-8, dur)

	resync1 := resyncTime(res, loss1)
	resync2 := resyncTime(res, loss2)

	r.addf("initial ISD: %.0f ms (paper: 436 ms gap at start)", initial)
	if len(res.Actions) > 0 {
		a := res.Actions[0]
		r.addf("first correction at t=%.1fs: insert %d frames into %v stream (paper: 22 frames)",
			a.TimeSec, a.Action.InsertFrames, a.Action.Stream)
		r.set("first_action_frames", float64(a.Action.InsertFrames))
	}
	r.addf("loss@%.1fs (accessory, 1 frame): ISD %.1f -> %.1f ms (jump %.1f; paper: +20 ms)",
		loss1, preL1, postL1, postL1-preL1)
	r.addf("  resynchronized after %.1f s (paper: ~6 s)", resync1)
	r.addf("loss@%.1fs (screen, 2 frames):   ISD %.1f -> %.1f ms (jump %.1f; paper: -40 ms)",
		loss2, preL2, postL2, postL2-preL2)
	r.addf("  resynchronized after %.1f s (paper: ~4 s)", resync2)
	r.addf("final ISD: %.1f ms", final)
	r.set("initial_isd_ms", initial)
	r.set("jump1_ms", postL1-preL1)
	r.set("jump2_ms", postL2-preL2)
	r.set("resync1_s", resync1)
	r.set("resync2_s", resync2)
	r.set("final_isd_ms", final)
	return r
}

// resyncTime returns how long after the event the |ISD| stays below 10 ms.
func resyncTime(res *session.Result, event float64) float64 {
	// Find the first time >= event+0.5 from which |ISD| <= 10 ms holds
	// for at least 2 s.
	const hold = 2.0
	for i, p := range res.Trace {
		if p.TimeSec < event+0.5 || math.Abs(p.ISDSeconds) > 0.010 {
			continue
		}
		good := true
		for j := i; j < len(res.Trace) && res.Trace[j].TimeSec <= p.TimeSec+hold; j++ {
			if math.Abs(res.Trace[j].ISDSeconds) > 0.010 {
				good = false
				break
			}
		}
		if good {
			return p.TimeSec - event
		}
	}
	return math.NaN()
}
