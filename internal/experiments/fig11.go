package experiments

import (
	"math/rand"

	"ekho/internal/acoustic"
	"ekho/internal/analysis"
	"ekho/internal/codec"
	"ekho/internal/gamesynth"
)

func init() { register("fig11", runFig11) }

// runFig11 reproduces Figure 11: marker detection across marker volumes C.
// Every corpus clip is marked at each C, played through the Xbox-headset
// channel, compressed at SWB 32 kbps, and measured against a per-clip
// ground-truth ISD drawn from ±300 ms. The paper's findings: C ≥ 0.25
// keeps ISD error under ~1 ms; C ≥ 0.5 detects all markers; C = 0.1
// occasionally misses everything and shows >10 ms errors.
//
// Values per C (suffix = C without dot, e.g. "05"): "rate_mean_<C>",
// "full_detect_pct_<C>" (clips with 100% rate), "nodetect_pct_<C>",
// "err_p99_us_<C>", "err_gt10ms_pct_<C>".
func runFig11(s Scale) *Report {
	r := &Report{ID: "fig11", Title: "Marker detection and ISD error vs marker volume C"}
	cs := []float64{0.1, 0.25, 0.5, 1.0, 2.5, 5.0}
	if s == Quick {
		cs = []float64{0.1, 0.5, 2.5}
	}
	clips := corpusSubset(clipCount(s))
	secs := clipSeconds(s)
	rng := rand.New(rand.NewSource(99))
	truths := make([]float64, len(clips))
	for i := range truths {
		truths[i] = rng.Float64()*0.6 - 0.3 // ±300 ms
	}

	r.addf("%-6s %10s %12s %12s %12s %14s", "C", "mean rate", "100%% clips", "no detect", "err p99 us", ">10ms errs %%")
	for _, c := range cs {
		var rates []float64
		var allErrs []float64
		for i, spec := range clips {
			clip := gamesynth.Generate(spec, secs)
			res := runDetection(clip, recordingSetup{
				Mic:         acoustic.XboxHeadset,
				Profile:     codec.SWB32,
				C:           c,
				TruthISDSec: truths[i],
				Seed:        int64(1000*i) + 7,
				DriftPPM:    defaultDriftPPM(int64(1000*i) + 7),
			})
			rates = append(rates, res.Rate)
			allErrs = append(allErrs, res.AbsErrorsSec...)
		}
		full := analysis.Fraction(rates, func(v float64) bool { return v >= 0.999 }) * 100
		none := analysis.Fraction(rates, func(v float64) bool { return v <= 0 }) * 100
		_, p99 := summarizeErrors(allErrs)
		big := analysis.Fraction(allErrs, func(v float64) bool { return v > 0.010 }) * 100
		r.addf("%-6.2f %10.2f %11.0f%% %11.0f%% %12.0f %13.1f%%",
			c, analysis.Mean(rates), full, none, p99, big)
		buckets := bucketCounts(rates)
		r.addf("       rate histogram: %s=%.0f%% %s=%.0f%% %s=%.0f%% %s=%.0f%% %s=%.0f%%",
			rateBucketLabels[0], buckets[0], rateBucketLabels[1], buckets[1],
			rateBucketLabels[2], buckets[2], rateBucketLabels[3], buckets[3],
			rateBucketLabels[4], buckets[4])
		suffix := trimFloat(c)
		r.set("rate_mean_"+suffix, analysis.Mean(rates))
		r.set("full_detect_pct_"+suffix, full)
		r.set("nodetect_pct_"+suffix, none)
		r.set("err_p99_us_"+suffix, p99)
		r.set("err_gt10ms_pct_"+suffix, big)
	}
	return r
}
