package experiments

import (
	"math"
	"strings"
	"testing"
)

func mustRun(t *testing.T, id string) *Report {
	t.Helper()
	run, ok := Get(id)
	if !ok {
		t.Fatalf("experiment %q not registered", id)
	}
	r := run(Quick)
	if r.ID != id {
		t.Fatalf("report id %q", r.ID)
	}
	if len(r.Rows) == 0 {
		t.Fatalf("%s produced no rows", id)
	}
	return r
}

func TestRegistryComplete(t *testing.T) {
	want := []string{"fig2", "table1", "fig5", "fig6", "fig8", "fig9", "fig10",
		"fig11", "fig12", "fig13", "fig14", "fig15", "fig17", "table2", "appa"}
	for _, id := range want {
		if _, ok := Get(id); !ok {
			t.Errorf("missing experiment %q", id)
		}
	}
	if len(IDs()) < len(want) {
		t.Fatalf("registry has %d ids", len(IDs()))
	}
	if _, ok := Get("nope"); ok {
		t.Fatal("unknown id should miss")
	}
}

func TestParseScale(t *testing.T) {
	for in, want := range map[string]Scale{"quick": Quick, "standard": Standard, "": Standard, "full": Full} {
		got, err := ParseScale(in)
		if err != nil || got != want {
			t.Fatalf("ParseScale(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseScale("bogus"); err == nil {
		t.Fatal("bogus scale should error")
	}
}

func TestFig2Shape(t *testing.T) {
	r := mustRun(t, "fig2")
	// 10 ms echo already below 4 ("audible or worse") in every category.
	for _, cat := range []string{"speech", "music", "sfx"} {
		if r.Values[cat+"_0"] < 4.3 {
			t.Fatalf("%s reference score %g", cat, r.Values[cat+"_0"])
		}
		if r.Values[cat+"_10"] > 3.8 {
			t.Fatalf("%s at 10 ms %g should be noticeably degraded", cat, r.Values[cat+"_10"])
		}
	}
	// Speech keeps dropping beyond 40 ms; music/SFX plateau.
	if r.Values["speech_drop_40_300"] < 1.5*r.Values["music_drop_40_300"] {
		t.Fatalf("speech drop %g vs music drop %g", r.Values["speech_drop_40_300"], r.Values["music_drop_40_300"])
	}
}

func TestTable1Shape(t *testing.T) {
	r := mustRun(t, "table1")
	if r.Values["net_lo_ms"] < 5 || r.Values["net_hi_ms"] > 400 {
		t.Fatalf("network range [%g, %g] implausible", r.Values["net_lo_ms"], r.Values["net_hi_ms"])
	}
	if r.Values["net_hi_ms"] < 100 {
		t.Fatalf("network high %g should reach cellular territory", r.Values["net_hi_ms"])
	}
	if r.Values["dec_lo_ms"] < 20 || r.Values["dec_hi_ms"] > 120 {
		t.Fatalf("decode range [%g, %g]", r.Values["dec_lo_ms"], r.Values["dec_hi_ms"])
	}
	// Asymmetric paths must produce tens of ms of clock error.
	if r.Values["rtt_err_hi_ms"] < 20 {
		t.Fatalf("RTT asymmetry error %g ms too small to motivate Ekho", r.Values["rtt_err_hi_ms"])
	}
}

func TestFig5Shape(t *testing.T) {
	r := mustRun(t, "fig5")
	if r.Values["norm_peak_to_bg"] < 5 {
		t.Fatalf("normalized peak/bg %g too weak", r.Values["norm_peak_to_bg"])
	}
	if r.Values["confirmed"] < r.Values["markers"]-1 {
		t.Fatalf("confirmed %g of %g markers", r.Values["confirmed"], r.Values["markers"])
	}
}

func TestFig6Shape(t *testing.T) {
	r := mustRun(t, "fig6")
	if r.Values["max_abs_err_ms"] > 0.1 {
		t.Fatalf("matching error %g ms", r.Values["max_abs_err_ms"])
	}
}

func TestFig10Shape(t *testing.T) {
	r := mustRun(t, "fig10")
	if r.Values["ref"]-r.Values["c_1"] > 0.5 {
		t.Fatalf("C=1.0 score %g too far below reference %g", r.Values["c_1"], r.Values["ref"])
	}
	if r.Values["c_2.5"] > 3.6 {
		t.Fatalf("C=2.5 score %g should be slightly distracting", r.Values["c_2.5"])
	}
	if r.Values["c_5"] >= r.Values["c_2.5"] {
		t.Fatal("C=5 should be worse than C=2.5")
	}
}

func TestFig17Shape(t *testing.T) {
	r := mustRun(t, "fig17")
	studio := r.Values["swing_db_0"]
	xbox := r.Values["swing_db_1"]
	samsung := r.Values["swing_db_2"]
	if !(studio < xbox && xbox < samsung) {
		t.Fatalf("swing ordering: %g %g %g", studio, xbox, samsung)
	}
	if samsung < 25 {
		t.Fatalf("samsung swing %g should exceed 25 dB", samsung)
	}
}

func TestTable2Shape(t *testing.T) {
	r := mustRun(t, "table2")
	if r.Values["clips"] != 30 || r.Values["games"] != 15 {
		t.Fatalf("corpus %g clips %g games", r.Values["clips"], r.Values["games"])
	}
}

func TestAppAShape(t *testing.T) {
	r := mustRun(t, "appa")
	if r.Values["mtbf_hours_theta5"] < 1 {
		t.Fatalf("false-peak MTBF %g h", r.Values["mtbf_hours_theta5"])
	}
	if math.Abs(r.Values["mc_ratio_theta3"]-1) > 0.25 {
		t.Fatalf("Monte-Carlo ratio %g", r.Values["mc_ratio_theta3"])
	}
}

func TestReportString(t *testing.T) {
	r := mustRun(t, "table2")
	s := r.String()
	if !strings.Contains(s, "table2") || !strings.Contains(s, "Halo Infinite") {
		t.Fatal("report string content")
	}
}
