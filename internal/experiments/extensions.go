package experiments

import (
	"math"

	"ekho/internal/analysis"
	"ekho/internal/audio"
	"ekho/internal/compensator"
	"ekho/internal/session"
)

func init() { register("ext", runExtensions) }

// runExtensions exercises the features this implementation adds beyond the
// paper's evaluation (each is motivated or deferred by the paper itself):
//
//   - haptic feedback skew (§3.1 thresholds: 24 ms to audio, 30 ms to
//     video): with Ekho running, controller rumble fires within a frame of
//     the screen playback of the anchoring content;
//   - multi-endpoint sync (Figure 1's plural "screens"): two screens with
//     independent PN seeds converge against one accessory stream;
//   - PLC-style insertion (§4.4 future work): inserted delay synthesized
//     from surrounding audio has a far smaller worst-case waveform jump
//     than hard silence.
//
// Values: "haptic_skew_p95_ms", "haptic_matched_pct",
// "multi_insync_min_pct", "plc_jump_ratio".
func runExtensions(s Scale) *Report {
	r := &Report{ID: "ext", Title: "Extensions: haptics, multi-screen, PLC insertion"}

	// --- Haptics skew under Ekho. ---
	dur := 60.0
	if s == Quick {
		dur = 40
	}
	sc := session.DefaultScenario()
	sc.DurationSec = dur
	sc.HapticsEnabled = true
	res := session.Run(sc)
	var skews []float64
	matched := 0
	for _, h := range res.Haptics {
		if !h.Matched {
			continue
		}
		matched++
		if h.PlayedAt > dur/2 {
			skews = append(skews, math.Abs(h.SkewToScreen)*1000)
		}
	}
	p95 := analysis.Percentile(skews, 0.95)
	matchedPct := 100 * float64(matched) / float64(max(len(res.Haptics), 1))
	r.addf("haptics: %d events, %.0f%% matched; post-convergence |skew| p95 = %.1f ms (perception threshold 24 ms)",
		len(res.Haptics), matchedPct, p95)
	r.set("haptic_skew_p95_ms", p95)
	r.set("haptic_matched_pct", matchedPct)

	// --- Multi-screen convergence. ---
	msc := session.DefaultMultiScenario()
	msc.DurationSec = dur
	mres := session.RunMulti(msc)
	minIn := 1.0
	for _, f := range mres.InSyncFractions {
		if f < minIn {
			minIn = f
		}
	}
	r.addf("multi-screen: %d screens, %d joint corrections, worst in-sync fraction %.0f%%",
		len(mres.Traces), mres.Actions, minIn*100)
	r.set("multi_insync_min_pct", minIn*100)

	// --- PLC insertion quality: worst sample-to-sample jump at insertion
	// boundaries, silence vs interpolated, on tonal content. ---
	jump := func(mode compensator.InsertMode) float64 {
		e := &compensator.FrameEditor{}
		e.SetInsertMode(mode)
		var out []float64
		for f := 0; f < 16; f++ {
			frame := make([]float64, audio.FrameSamples)
			for i := range frame {
				t := float64(f*audio.FrameSamples+i) / audio.SampleRate
				frame[i] = 0.5 * math.Sin(2*math.Pi*220*t)
			}
			if f == 8 {
				e.Apply(compensator.Action{InsertFrames: 2})
			}
			out = append(out, e.NextFrame(frame)...)
		}
		var worst float64
		for i := 1; i < len(out); i++ {
			if d := math.Abs(out[i] - out[i-1]); d > worst {
				worst = d
			}
		}
		return worst
	}
	silence := jump(compensator.InsertSilence)
	interp := jump(compensator.InsertInterpolated)
	ratio := interp / silence
	r.addf("PLC insertion: worst waveform jump %.3f (silence) vs %.3f (interpolated) — ratio %.2f",
		silence, interp, ratio)
	r.set("plc_jump_ratio", ratio)
	return r
}
