package experiments

import (
	"math"

	"ekho/internal/acoustic"
	"ekho/internal/analysis"
	"ekho/internal/audio"
	"ekho/internal/estimator"
	"ekho/internal/gamesynth"
	"ekho/internal/pn"
)

func init() {
	register("fig5", runFig5)
	register("fig6", runFig6)
}

// runFig5 reproduces Figure 5: the three stages of the marker-detection
// pipeline — raw cross-correlation Z (peaks buried where game audio is
// quiet), normalized correlation Z* (constant envelope, pronounced peaks)
// and the decayed envelope with threshold-crossing peaks.
//
// Values: "raw_peak_to_bg", "norm_peak_to_bg" (peak-to-background ratios —
// normalization must raise it), "peaks_above_theta", "markers".
func runFig5(s Scale) *Report {
	r := &Report{ID: "fig5", Title: "Cross-correlation stages (raw, normalized, envelope)"}
	secs := clipSeconds(s)
	clip := gamesynth.Generate(gamesynth.Catalog()[1], secs)
	marked, log := pn.Mark(clip, sharedSeq, pn.DefaultC)
	ch := acoustic.Channel{Mic: acoustic.XboxHeadset, DistanceFt: 6, Attenuation: 0.1,
		Room: acoustic.Room{RT60: 0.35, Reflections: 30, Seed: 5}, AmbientLevel: 0.0006, NoiseSeed: 6}
	recv := ch.Transmit(marked)
	recv.Samples = append(recv.Samples, make([]float64, int(1.2*audio.SampleRate))...)

	st := estimator.ComputeStages(recv.Samples, estimator.Config{Seq: sharedSeq})
	rawBG := offPeakRMS(st.Raw, log)
	normBG := offPeakRMS(st.Normalized, log)
	rawPk := peakMax(st.Raw, log)
	normPk := peakMax(st.Normalized, log)

	r.addf("%-22s %10s %10s %12s", "stage", "peak", "background", "peak/bg")
	r.addf("%-22s %10.4f %10.4f %12.1f", "raw Z (Eq.3)", rawPk, rawBG, rawPk/rawBG)
	r.addf("%-22s %10.2f %10.2f %12.1f", "normalized Z* (Eq.4)", normPk, normBG, normPk/normBG)
	r.addf("envelope peaks above theta=5: %d (markers injected: %d)", len(st.Peaks), len(log))
	r.addf("confirmed after Eq.7 filter: %d", len(st.Confirmed))
	r.set("raw_peak_to_bg", rawPk/rawBG)
	r.set("norm_peak_to_bg", normPk/normBG)
	r.set("peaks_above_theta", float64(len(st.Peaks)))
	r.set("confirmed", float64(len(st.Confirmed)))
	r.set("markers", float64(len(log)))
	return r
}

// offPeakRMS measures |signal| RMS away from marker neighborhoods.
func offPeakRMS(x []float64, log []pn.Injection) float64 {
	var vals []float64
	for i, v := range x {
		near := false
		for _, inj := range log {
			d := i - inj.StartSample
			if d > -2000 && d < 2000 {
				near = true
				break
			}
		}
		if !near {
			vals = append(vals, v*v)
		}
	}
	if len(vals) == 0 {
		return 0
	}
	return sqrt(analysis.Mean(vals))
}

func peakMax(x []float64, log []pn.Injection) float64 {
	var best float64
	for _, inj := range log {
		for i := inj.StartSample - 400; i <= inj.StartSample+400; i++ {
			if i < 0 || i >= len(x) {
				continue
			}
			if a := abs(x[i]); a > best {
				best = a
			}
		}
	}
	return best
}

// runFig6 reproduces Figure 6: marker matching. With markers every 1 s and
// |ISD| < 500 ms, the smallest time shift aligning detections with the
// accessory marker schedule is exactly the ISD, for positive and negative
// values alike.
//
// Values: "max_abs_err_ms", "cases".
func runFig6(s Scale) *Report {
	r := &Report{ID: "fig6", Title: "Marker matching: smallest alignment shift equals ISD"}
	isds := []float64{-0.450, -0.250, -0.125, -0.010, 0, 0.010, 0.125, 0.250, 0.450}
	if s == Quick {
		isds = []float64{-0.250, 0, 0.250}
	}
	// Synthetic detections at 1 s marks, shifted by the ISD.
	cfg := estimator.Config{Seq: sharedSeq}
	var maxErr float64
	r.addf("%-12s %-14s %-10s", "true ISD", "estimated", "err (ms)")
	for _, isd := range isds {
		var dets []estimator.Detection
		var markers []float64
		for k := 1; k <= 5; k++ {
			markers = append(markers, float64(k))
			dets = append(dets, estimator.Detection{
				Sample:   int((float64(k) + isd) * audio.SampleRate),
				Strength: 10,
			})
		}
		ms := estimator.MatchISD(dets, 0, audio.SampleRate, markers, cfg)
		if len(ms) == 0 {
			r.addf("%-12.3f %-14s %-10s", isd, "NO MATCH", "-")
			maxErr = 1e9
			continue
		}
		err := abs(ms[0].ISDSeconds-isd) * 1000
		if err > maxErr {
			maxErr = err
		}
		r.addf("%-12.3f %-14.4f %-10.4f", isd, ms[0].ISDSeconds, err)
	}
	r.set("max_abs_err_ms", maxErr)
	r.set("cases", float64(len(isds)))
	return r
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

func sqrt(v float64) float64 { return math.Sqrt(v) }
