package experiments

import (
	"math"
	"math/rand"

	"ekho/internal/acoustic"
	"ekho/internal/analysis"
	"ekho/internal/audio"
	"ekho/internal/codec"
	"ekho/internal/dsp"
	"ekho/internal/estimator"
	"ekho/internal/gamesynth"
	"ekho/internal/pn"
)

// sharedSeq is the PN sequence used by all offline experiments (server and
// estimator must agree on it, as in the real system).
var sharedSeq = pn.NewSequence(1337, pn.DefaultLength)

// ChatterLevel reproduces the §6.4 background-chatter conditions.
type ChatterLevel int

// Chatter conditions: median speech level relative to the game audio.
const (
	NoChat   ChatterLevel = iota
	LowChat               // 5 dBA below the game audio
	MedChat               // as loud as the game audio
	LoudChat              // 5 dBA above the game audio
)

// String implements fmt.Stringer.
func (c ChatterLevel) String() string {
	switch c {
	case LowChat:
		return "Low Chat"
	case MedChat:
		return "Med Chat"
	case LoudChat:
		return "Loud Chat"
	default:
		return "No Chat"
	}
}

// offsetDBA returns the chatter level relative to game audio in dBA.
func (c ChatterLevel) offsetDBA() float64 {
	switch c {
	case LowChat:
		return -5
	case MedChat:
		return 0
	case LoudChat:
		return +5
	}
	return math.Inf(-1)
}

// recordingSetup describes one offline §6.3-style run.
type recordingSetup struct {
	Mic     acoustic.Microphone
	Profile codec.Profile
	C       float64
	// TruthISDSec is x, the ground-truth ISD the estimator must measure
	// (applied by shifting the accessory timestamps, as in §6.3).
	TruthISDSec float64
	Chatter     ChatterLevel
	Seed        int64
	// ConstantAmpDB, when >= 0 with muted game audio, switches to the
	// §6.5 constant-amplitude marker mode. Negative disables.
	ConstantAmpDB float64
	MutedScreen   bool
	// DriftPPM models the frequency error between the screen device DAC
	// clock and the headset ADC clock. Consumer crystals drift by tens of
	// ppm; over a 15 s recording that is a fraction of a millisecond --
	// harmless to Ekho 1 s markers, fatal to correlators that integrate
	// the whole recording coherently.
	DriftPPM float64
}

// defaultDriftPPM draws a clip clock drift in +-60 ppm from its seed.
func defaultDriftPPM(seed int64) float64 {
	r := rand.New(rand.NewSource(seed ^ 0x5eed))
	return (r.Float64()*2 - 1) * 60
}

// applyDrift resamples a recording as captured by an ADC running at
// (1+ppm*1e-6) times the nominal rate.
func applyDrift(b *audio.Buffer, ppm float64) *audio.Buffer {
	if ppm == 0 {
		return b
	}
	newLen := int(math.Round(float64(b.Len()) * (1 + ppm*1e-6)))
	return audio.FromSamples(b.Rate, dsp.ResampleLinear(b.Samples, newLen))
}

// detectionResult summarizes one run.
type detectionResult struct {
	Markers      int
	Measurements int
	// Rate = Measurements / Markers.
	Rate float64
	// AbsErrorsSec are |measured − truth| for each measurement.
	AbsErrorsSec []float64
	// RecordingDBA is the sound level of what the room heard (Fig. 13).
	RecordingDBA float64
}

// runDetection executes the offline §6.3 methodology for one clip: add
// markers (Eq. 2), play through the speaker/room/microphone channel with
// optional near-field chatter, compress the recording (OPUS-like), then
// run Ekho-Estimator with timestamps offset by the ground-truth ISD and
// measure error and measurement rate.
func runDetection(clip *audio.Buffer, setup recordingSetup) detectionResult {
	var marked *audio.Buffer
	var log []pn.Injection
	if setup.MutedScreen {
		marked, log = pn.ConstantMark(clip.Len(), sharedSeq, setup.ConstantAmpDB)
	} else {
		marked, log = pn.Mark(clip, sharedSeq, setup.C)
	}
	if len(log) == 0 {
		return detectionResult{}
	}

	ch := acoustic.Channel{
		Mic:          setup.Mic,
		DistanceFt:   6,
		Attenuation:  0.1,
		Room:         acoustic.Room{RT60: 0.35, Reflections: 30, Seed: setup.Seed},
		AmbientLevel: 0.0006,
		NoiseSeed:    setup.Seed + 1,
	}

	var recv *audio.Buffer
	if setup.Chatter != NoChat {
		rng := rand.New(rand.NewSource(setup.Seed + 2))
		chatter := gamesynth.Babble(rng, clip.Duration(), 2)
		// Calibrate: chatter median dBA = game median + offset. The
		// chatter is near-field (spoken into the mic) while the game
		// audio is overheard at ~0.1 gain, so apply the offset against
		// the *overheard* level as the player experiences both in-room.
		// Chatter plays in the room at the configured dBA offset from the
		// game audio, but its sources (people near the player) couple to
		// the headset microphone more strongly than the distant TV: the
		// room level calibration applies at the sources, and the chatter
		// reaches the mic at nearFieldCoupling instead of the overheard
		// path's 0.1 attenuation.
		target := audio.MedianFrameDBA(clip) + setup.Chatter.offsetDBA()
		gain := audio.GainForDBA(chatter, target)
		recv = ch.TransmitMixed(marked, chatter.Clone().Gain(gain), nearFieldCoupling)
	} else {
		recv = ch.Transmit(marked)
	}

	// The capture keeps rolling briefly after the clip ends, and the ADC
	// clock drifts relative to the playback clock.
	recv.Samples = append(recv.Samples, make([]float64, int(1.2*audio.SampleRate))...)
	recv = applyDrift(recv, setup.DriftPPM)
	dba := audio.DBA(recv)

	// Lossy uplink compression.
	coded, err := codec.RoundTripAligned(recv, setup.Profile)
	if err != nil {
		panic("experiments: codec: " + err.Error())
	}

	// Timestamps per §6.3: T_chat_i = i·20ms; T_accessory marker times are
	// the injection times minus x. The channel's own deterministic delay
	// is part of the measured end-to-end ISD, so fold it into the truth.
	var markerTimes []float64
	for _, inj := range log {
		markerTimes = append(markerTimes, float64(inj.StartSample)/audio.SampleRate-setup.TruthISDSec)
	}
	truth := setup.TruthISDSec + ch.TotalDelaySec()

	ms := estimator.Estimate(coded, 0, markerTimes, estimator.Config{Seq: sharedSeq})
	res := detectionResult{
		Markers:      len(log),
		Measurements: len(ms),
		RecordingDBA: dba,
	}
	if res.Markers > 0 {
		res.Rate = float64(res.Measurements) / float64(res.Markers)
	}
	for _, m := range ms {
		// Drift stretches the recording timeline, so the expected
		// measurement grows linearly with the detection time.
		want := truth + setup.DriftPPM*1e-6*m.DetectionTime
		res.AbsErrorsSec = append(res.AbsErrorsSec, math.Abs(m.ISDSeconds-want))
	}
	return res
}

// corpusSubset returns the first n corpus clips (n<=0 means all 30).
func corpusSubset(n int) []gamesynth.ClipSpec {
	cat := gamesynth.Catalog()
	if n <= 0 || n >= len(cat) {
		return cat
	}
	return cat[:n]
}

// clipCount maps a scale to a corpus size.
func clipCount(s Scale) int {
	switch s {
	case Quick:
		return 4
	case Standard:
		return 10
	default:
		return 30
	}
}

// clipSeconds maps a scale to a clip length (the paper uses 15 s).
func clipSeconds(s Scale) float64 {
	switch s {
	case Quick:
		return 6
	case Standard:
		return 10
	default:
		return gamesynth.ClipSeconds
	}
}

// rateBuckets formats a measurement-rate histogram like Figures 11/12/14/15:
// "No Detection", then quartile buckets.
var rateBucketLabels = []string{"No Detection", "0-25%", "25-50%", "50-75%", "75-100%"}

func rateBucket(rate float64) int {
	switch {
	case rate <= 0:
		return 0
	case rate <= 0.25:
		return 1
	case rate <= 0.50:
		return 2
	case rate <= 0.75:
		return 3
	default:
		return 4
	}
}

// bucketCounts aggregates per-clip rates into the five buckets (percent).
func bucketCounts(rates []float64) [5]float64 {
	var out [5]float64
	if len(rates) == 0 {
		return out
	}
	for _, r := range rates {
		out[rateBucket(r)]++
	}
	for i := range out {
		out[i] = out[i] / float64(len(rates)) * 100
	}
	return out
}

// summarizeErrors returns the mean and p99 of absolute errors in µs.
func summarizeErrors(errs []float64) (meanUs, p99Us float64) {
	if len(errs) == 0 {
		return math.NaN(), math.NaN()
	}
	return analysis.Mean(errs) * 1e6, analysis.Percentile(errs, 0.99) * 1e6
}

// nearFieldCoupling is the microphone coupling of in-room chatter sources
// relative to digital full scale; the overheard TV path is 0.1, and people
// chatting beside the player are several times closer.
const nearFieldCoupling = 0.6

// newMCRand returns the RNG used by Monte-Carlo validations.
func newMCRand() *rand.Rand { return rand.New(rand.NewSource(31337)) }

// newSeededRand returns a deterministic RNG for a seed.
func newSeededRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
