// Package netsim provides the discrete-event network substrate for the
// end-to-end evaluation (§6.1): unidirectional packet links with
// configurable base delay, jitter, loss and reordering, composed into
// asymmetric bidirectional paths. Links run on a shared vclock.Scheduler,
// so simulated minutes complete in milliseconds of wall time.
//
// Presets model the paper's testbed: the screen device on a cellular
// connection, the controller on campus WiFi, and an Ethernet-connected
// reference. Loss follows a Gilbert-Elliott two-state model so that rare
// loss events arrive in short bursts, as observed on real wireless paths.
package netsim

import (
	"math"
	"math/rand"

	"ekho/internal/vclock"
)

// Packet is an opaque payload traversing a link.
type Packet struct {
	// Seq is the sender's sequence number.
	Seq int
	// SentAt is the true simulation time the packet entered the link.
	SentAt vclock.Time
	// Payload carries arbitrary application data.
	Payload any
}

// LinkConfig describes one direction of a network path.
type LinkConfig struct {
	// BaseDelay is the fixed one-way propagation+forwarding delay (s).
	BaseDelay float64
	// JitterStd is the standard deviation of a Gamma-distributed queuing
	// delay added per packet (s). Gamma keeps delays positive and skewed,
	// matching access-network queues.
	JitterStd float64
	// LossProb is the stationary packet loss probability.
	LossProb float64
	// BurstFactor shapes Gilbert-Elliott loss: the mean burst length in
	// packets (1 = independent losses).
	BurstFactor float64
	// ReorderProb is the chance a delayed packet is further delayed past
	// its successor (simple reordering model).
	ReorderProb float64
	// BandwidthBps, when positive, models the link's transmission rate:
	// packets serialize one after another (PacketBytes each) and queueing
	// delay emerges when the offered load approaches capacity.
	BandwidthBps float64
	// PacketBytes is the modelled datagram size (default 600: 20 ms of
	// compressed audio plus headers).
	PacketBytes int
	// QueueLimit bounds the FIFO in packets (0 = unbounded); packets
	// arriving at a full queue are tail-dropped.
	QueueLimit int
	// Seed drives the link's private RNG.
	Seed int64
}

// Typical path presets (one-way). Delay magnitudes follow Table 1 and §3.2.
var (
	// Ethernet: stable, fast, nearly lossless.
	Ethernet = LinkConfig{BaseDelay: 0.015, JitterStd: 0.001, LossProb: 0.00001, BurstFactor: 1}
	// WiFi: campus/home access point with moderate jitter.
	WiFi = LinkConfig{BaseDelay: 0.025, JitterStd: 0.004, LossProb: 0.0003, BurstFactor: 2}
	// Cellular: high delay, heavy jitter.
	Cellular = LinkConfig{BaseDelay: 0.060, JitterStd: 0.010, LossProb: 0.0005, BurstFactor: 3}
	// CongestedWiFi: public AP with many users (§5.1's rare exception).
	CongestedWiFi = LinkConfig{BaseDelay: 0.045, JitterStd: 0.015, LossProb: 0.002, BurstFactor: 4}
)

// Link is one unidirectional packet pipe.
type Link struct {
	cfg     LinkConfig
	sched   *vclock.Scheduler
	rng     *rand.Rand
	deliver func(Packet)

	inBadState   bool
	lastArrival  vclock.Time
	seq          int
	sent, lost   int
	delaySum     float64
	delayCount   int
	extraLatency float64     // dynamic additive latency (path changes)
	forcedDrops  int         // scripted losses still to apply
	busyUntil    vclock.Time // transmitter FIFO frontier (bandwidth model)
}

// NewLink creates a link delivering packets via the given callback.
func NewLink(cfg LinkConfig, sched *vclock.Scheduler, deliver func(Packet)) *Link {
	if cfg.BurstFactor < 1 {
		cfg.BurstFactor = 1
	}
	return &Link{
		cfg:     cfg,
		sched:   sched,
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		deliver: deliver,
	}
}

// Send enqueues a payload. Returns the assigned sequence number.
func (l *Link) Send(payload any) int {
	seq := l.seq
	l.seq++
	l.sent++
	if l.forcedDrops > 0 {
		l.forcedDrops--
		l.lost++
		return seq
	}
	if l.dropped() {
		l.lost++
		return seq
	}
	// Bandwidth/queueing model: serialize through the FIFO transmitter.
	var queueWait float64
	if l.cfg.BandwidthBps > 0 {
		bytes := l.cfg.PacketBytes
		if bytes <= 0 {
			bytes = 600
		}
		txTime := float64(bytes*8) / l.cfg.BandwidthBps
		now := l.sched.Now()
		if l.busyUntil > now {
			queueWait = float64(l.busyUntil - now)
		}
		if l.cfg.QueueLimit > 0 && queueWait > float64(l.cfg.QueueLimit)*txTime {
			l.lost++ // tail drop at a full queue
			return seq
		}
		l.busyUntil = now + vclock.Time(queueWait+txTime)
		queueWait += txTime
	}
	delay := queueWait + l.sampleDelay()
	p := Packet{Seq: seq, SentAt: l.sched.Now(), Payload: payload}
	arrival := l.sched.Now() + vclock.Time(delay)
	// Optionally keep FIFO order (no reordering unless configured).
	if l.cfg.ReorderProb <= 0 || l.rng.Float64() >= l.cfg.ReorderProb {
		if arrival < l.lastArrival {
			arrival = l.lastArrival
		}
	}
	l.lastArrival = arrival
	l.delaySum += float64(arrival - p.SentAt)
	l.delayCount++
	l.sched.At(arrival, func() { l.deliver(p) })
	return seq
}

// dropped advances the Gilbert-Elliott loss chain and reports whether the
// current packet is lost.
func (l *Link) dropped() bool {
	p, burst := l.cfg.LossProb, l.cfg.BurstFactor
	if p <= 0 {
		return false
	}
	// Two-state chain: good->bad with rate pGB, bad->good with 1/burst.
	// Stationary loss = pGB*burst/(1+pGB*burst) ≈ p for small p.
	pGB := p / (burst * (1 - p))
	if l.inBadState {
		if l.rng.Float64() < 1/burst {
			l.inBadState = false
			return false
		}
		return true
	}
	if l.rng.Float64() < pGB {
		l.inBadState = true
		return true
	}
	return false
}

// sampleDelay draws the one-way delay for a packet.
func (l *Link) sampleDelay() float64 {
	d := l.cfg.BaseDelay + l.extraLatency
	if l.cfg.JitterStd > 0 {
		d += gammaJitter(l.rng, l.cfg.JitterStd)
	}
	if d < 0 {
		d = 0
	}
	return d
}

// gammaJitter draws a positive skewed jitter with the given std using a
// Gamma(k=2) shape.
func gammaJitter(rng *rand.Rand, std float64) float64 {
	// Gamma with shape 2: sum of two exponentials; std = theta*sqrt(2).
	theta := std / math.Sqrt2
	return theta * (rng.ExpFloat64() + rng.ExpFloat64())
}

// SetExtraLatency adds (or removes) a path-change latency component — the
// "low-frequency variation" class of §3.3.
func (l *Link) SetExtraLatency(sec float64) { l.extraLatency = sec }

// ForceDrop schedules the next n packets to be lost — used to script the
// deterministic loss events of the Figure 9 session trace.
func (l *Link) ForceDrop(n int) { l.forcedDrops += n }

// SetBandwidth changes the modelled link capacity at runtime (0 disables
// the bandwidth model) — cross-traffic bursts and throttling scenarios.
func (l *Link) SetBandwidth(bps float64) { l.cfg.BandwidthBps = bps }

// Stats reports cumulative link statistics.
type Stats struct {
	Sent, Lost int
	MeanDelay  float64
}

// Stats returns the link's counters so far.
func (l *Link) Stats() Stats {
	s := Stats{Sent: l.sent, Lost: l.lost}
	if l.delayCount > 0 {
		s.MeanDelay = l.delaySum / float64(l.delayCount)
	}
	return s
}

// Path is a bidirectional, possibly asymmetric pair of links.
type Path struct {
	Down *Link // server -> device
	Up   *Link // device -> server
}

// NewPath builds a path from two directional configs.
func NewPath(down, up LinkConfig, sched *vclock.Scheduler, deliverDown, deliverUp func(Packet)) *Path {
	return &Path{
		Down: NewLink(down, sched, deliverDown),
		Up:   NewLink(up, sched, deliverUp),
	}
}

// Asymmetric derives an upstream config whose base delay differs by
// asymmetrySec from the downstream config (positive = slower upstream),
// modelling the forward/backward path asymmetry that breaks RTT/2
// estimation (§3.2).
func Asymmetric(down LinkConfig, asymmetrySec float64, seedOffset int64) LinkConfig {
	up := down
	up.BaseDelay += asymmetrySec
	if up.BaseDelay < 0 {
		up.BaseDelay = 0
	}
	up.Seed += seedOffset
	return up
}
