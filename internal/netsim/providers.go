package netsim

import "strings"

// ProviderProfile is a named bidirectional path shape modeled on the
// measured behavior of a commercial cloud-gaming provider. The built-in
// profiles follow the Stadia / GeForce Now / PlayStation Now measurement
// study (arXiv:2012.06774): Stadia serves from nearby edge PoPs with the
// lowest and most stable delay, GeForce Now sits in the middle, and
// PS Now shows the highest latency, jitter and loss of the three.
// Magnitudes are one-way figures consistent with the study's RTT
// distributions; the relative ordering — not the exact milliseconds — is
// what the profiles preserve.
type ProviderProfile struct {
	// Name is the canonical profile name ("stadia", "gfn", "psnow").
	Name string
	// Down is the server→device link shape; Up is device→server. Both
	// downlinks of a session (screen and accessory) use Down with
	// distinct seeds.
	Down LinkConfig
	Up   LinkConfig
}

// Built-in provider profiles (one-way shapes).
var (
	// Stadia: edge-hosted, lowest delay, tight jitter, near-zero loss.
	Stadia = ProviderProfile{
		Name: "stadia",
		Down: LinkConfig{BaseDelay: 0.012, JitterStd: 0.0015, LossProb: 0.00005, BurstFactor: 1.5},
		Up:   LinkConfig{BaseDelay: 0.014, JitterStd: 0.002, LossProb: 0.0001, BurstFactor: 1.5},
	}
	// GeForceNow: regional data centers, moderate delay and jitter.
	GeForceNow = ProviderProfile{
		Name: "gfn",
		Down: LinkConfig{BaseDelay: 0.020, JitterStd: 0.004, LossProb: 0.0004, BurstFactor: 2},
		Up:   LinkConfig{BaseDelay: 0.024, JitterStd: 0.005, LossProb: 0.0006, BurstFactor: 2},
	}
	// PSNow: farthest infrastructure of the three — highest base delay,
	// heavy jitter, visible bursty loss.
	PSNow = ProviderProfile{
		Name: "psnow",
		Down: LinkConfig{BaseDelay: 0.038, JitterStd: 0.009, LossProb: 0.0015, BurstFactor: 3},
		Up:   LinkConfig{BaseDelay: 0.044, JitterStd: 0.011, LossProb: 0.002, BurstFactor: 3},
	}
)

// Providers returns the built-in provider profiles in a stable order.
func Providers() []ProviderProfile {
	return []ProviderProfile{Stadia, GeForceNow, PSNow}
}

// ProviderByName resolves a profile by canonical name or alias,
// case-insensitively.
func ProviderByName(name string) (ProviderProfile, bool) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "stadia":
		return Stadia, true
	case "gfn", "geforce-now", "geforcenow":
		return GeForceNow, true
	case "psnow", "ps-now":
		return PSNow, true
	}
	return ProviderProfile{}, false
}

// ProviderNames lists the canonical built-in profile names.
func ProviderNames() []string {
	ps := Providers()
	names := make([]string, len(ps))
	for i, p := range ps {
		names[i] = p.Name
	}
	return names
}
