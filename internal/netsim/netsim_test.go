package netsim

import (
	"math"
	"testing"

	"ekho/internal/vclock"
)

func TestLinkDeliversInOrderWithDelay(t *testing.T) {
	sched := vclock.NewScheduler()
	var got []Packet
	l := NewLink(LinkConfig{BaseDelay: 0.05, Seed: 1}, sched, func(p Packet) { got = append(got, p) })
	for i := 0; i < 10; i++ {
		l.Send(i)
		sched.RunUntil(sched.Now() + 0.02)
	}
	sched.Run()
	if len(got) != 10 {
		t.Fatalf("delivered %d want 10", len(got))
	}
	for i, p := range got {
		if p.Seq != i {
			t.Fatalf("out of order: %v", got)
		}
		if p.Payload.(int) != i {
			t.Fatalf("payload %v", p.Payload)
		}
	}
}

func TestLinkDelayStatistics(t *testing.T) {
	sched := vclock.NewScheduler()
	count := 0
	var totalObserved float64
	sendTimes := map[int]vclock.Time{}
	l := NewLink(LinkConfig{BaseDelay: 0.05, JitterStd: 0.005, Seed: 2}, sched, func(p Packet) {
		count++
		totalObserved += float64(sched.Now() - sendTimes[p.Seq])
	})
	for i := 0; i < 2000; i++ {
		sendTimes[l.Send(nil)] = sched.Now()
		sched.RunUntil(sched.Now() + 0.02)
	}
	sched.Run()
	mean := totalObserved / float64(count)
	// Mean = base + jitter mean (Gamma k=2: mean = std*sqrt(2)).
	want := 0.05 + 0.005*math.Sqrt2
	if math.Abs(mean-want) > 0.002 {
		t.Fatalf("mean delay %g want ~%g", mean, want)
	}
	st := l.Stats()
	if st.Sent != 2000 {
		t.Fatalf("sent %d", st.Sent)
	}
	if math.Abs(st.MeanDelay-mean) > 1e-9 {
		t.Fatalf("stats mean %g vs observed %g", st.MeanDelay, mean)
	}
}

func TestLossRateConvergesToConfig(t *testing.T) {
	sched := vclock.NewScheduler()
	delivered := 0
	l := NewLink(LinkConfig{BaseDelay: 0.01, LossProb: 0.02, BurstFactor: 3, Seed: 3}, sched, func(Packet) { delivered++ })
	const n = 50000
	for i := 0; i < n; i++ {
		l.Send(nil)
		sched.RunUntil(sched.Now() + 0.001)
	}
	sched.Run()
	lossRate := float64(n-delivered) / n
	if lossRate < 0.01 || lossRate > 0.03 {
		t.Fatalf("loss rate %g want ~0.02", lossRate)
	}
	if l.Stats().Lost != n-delivered {
		t.Fatal("stats lost mismatch")
	}
}

func TestBurstyLossClusters(t *testing.T) {
	sched := vclock.NewScheduler()
	var lostSeqs []int
	deliveredSet := map[int]bool{}
	l := NewLink(LinkConfig{BaseDelay: 0.001, LossProb: 0.02, BurstFactor: 5, Seed: 4}, sched, func(p Packet) { deliveredSet[p.Seq] = true })
	const n = 30000
	for i := 0; i < n; i++ {
		l.Send(nil)
		sched.RunUntil(sched.Now() + 0.001)
	}
	sched.Run()
	for i := 0; i < n; i++ {
		if !deliveredSet[i] {
			lostSeqs = append(lostSeqs, i)
		}
	}
	if len(lostSeqs) < 100 {
		t.Fatalf("too few losses (%d) to assess burstiness", len(lostSeqs))
	}
	// Mean run length of consecutive losses should exceed 1.5 with
	// burst factor 5 (independent losses would give ~1.02).
	runs, runLen := 0, 0
	prev := -10
	for _, s := range lostSeqs {
		if s == prev+1 {
			runLen++
		} else {
			runs++
			runLen = 1
		}
		prev = s
	}
	meanRun := float64(len(lostSeqs)) / float64(runs)
	if meanRun < 1.5 {
		t.Fatalf("mean loss burst %g, want >= 1.5", meanRun)
	}
}

func TestZeroLossLink(t *testing.T) {
	sched := vclock.NewScheduler()
	delivered := 0
	l := NewLink(LinkConfig{BaseDelay: 0.01, Seed: 5}, sched, func(Packet) { delivered++ })
	for i := 0; i < 1000; i++ {
		l.Send(nil)
	}
	sched.Run()
	if delivered != 1000 {
		t.Fatalf("delivered %d want 1000 (no loss configured)", delivered)
	}
}

func TestExtraLatencyShiftsDelay(t *testing.T) {
	sched := vclock.NewScheduler()
	var arrivals []vclock.Time
	l := NewLink(LinkConfig{BaseDelay: 0.02, Seed: 6}, sched, func(Packet) { arrivals = append(arrivals, sched.Now()) })
	l.Send(nil)
	sched.Run()
	l.SetExtraLatency(0.1)
	base := sched.Now()
	l.Send(nil)
	sched.Run()
	d := float64(arrivals[1] - base)
	if math.Abs(d-0.12) > 1e-9 {
		t.Fatalf("delay with extra latency %g want 0.12", d)
	}
}

func TestAsymmetricPath(t *testing.T) {
	up := Asymmetric(WiFi, 0.03, 100)
	if math.Abs(up.BaseDelay-(WiFi.BaseDelay+0.03)) > 1e-12 {
		t.Fatalf("asymmetric base %g", up.BaseDelay)
	}
	if up.Seed == WiFi.Seed {
		t.Fatal("asymmetric seed should differ")
	}
	if down := Asymmetric(WiFi, -1, 1); down.BaseDelay != 0 {
		t.Fatal("negative base should clamp to 0")
	}
}

func TestPathBothDirections(t *testing.T) {
	sched := vclock.NewScheduler()
	var down, up int
	p := NewPath(WiFi, Asymmetric(WiFi, 0.02, 1), sched,
		func(Packet) { down++ }, func(Packet) { up++ })
	p.Down.Send(nil)
	p.Up.Send(nil)
	sched.Run()
	if down != 1 || up != 1 {
		t.Fatalf("down %d up %d", down, up)
	}
}

func TestPresetsSanity(t *testing.T) {
	if !(Ethernet.BaseDelay < WiFi.BaseDelay && WiFi.BaseDelay < Cellular.BaseDelay) {
		t.Fatal("preset delay ordering")
	}
	if !(Ethernet.JitterStd < WiFi.JitterStd && WiFi.JitterStd < Cellular.JitterStd) {
		t.Fatal("preset jitter ordering")
	}
	if CongestedWiFi.LossProb <= WiFi.LossProb {
		t.Fatal("congested wifi should lose more")
	}
}

func TestDeterministicForSeed(t *testing.T) {
	run := func() []float64 {
		sched := vclock.NewScheduler()
		var at []float64
		l := NewLink(LinkConfig{BaseDelay: 0.02, JitterStd: 0.01, LossProb: 0.05, Seed: 7}, sched,
			func(Packet) { at = append(at, float64(sched.Now())) })
		for i := 0; i < 200; i++ {
			l.Send(nil)
			sched.RunUntil(sched.Now() + 0.005)
		}
		sched.Run()
		return at
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("nondeterministic delivery count")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("nondeterministic arrival times")
		}
	}
}

func TestReorderingProducesOutOfOrderDelivery(t *testing.T) {
	sched := vclock.NewScheduler()
	var seqs []int
	l := NewLink(LinkConfig{BaseDelay: 0.02, JitterStd: 0.015, ReorderProb: 0.5, Seed: 8}, sched,
		func(p Packet) { seqs = append(seqs, p.Seq) })
	for i := 0; i < 2000; i++ {
		l.Send(nil)
		sched.RunUntil(sched.Now() + 0.002)
	}
	sched.Run()
	if len(seqs) != 2000 {
		t.Fatalf("delivered %d", len(seqs))
	}
	ooo := 0
	for i := 1; i < len(seqs); i++ {
		if seqs[i] < seqs[i-1] {
			ooo++
		}
	}
	if ooo == 0 {
		t.Fatal("reorder probability 0.5 with heavy jitter should reorder packets")
	}
}

func TestForceDrop(t *testing.T) {
	sched := vclock.NewScheduler()
	delivered := map[int]bool{}
	l := NewLink(LinkConfig{BaseDelay: 0.01, Seed: 9}, sched, func(p Packet) { delivered[p.Seq] = true })
	l.Send(nil) // seq 0
	l.ForceDrop(2)
	l.Send(nil) // seq 1 dropped
	l.Send(nil) // seq 2 dropped
	l.Send(nil) // seq 3
	sched.Run()
	if !delivered[0] || delivered[1] || delivered[2] || !delivered[3] {
		t.Fatalf("forced drops wrong: %v", delivered)
	}
	if l.Stats().Lost != 2 {
		t.Fatalf("lost %d want 2", l.Stats().Lost)
	}
}

func TestBandwidthQueueingDelay(t *testing.T) {
	sched := vclock.NewScheduler()
	var delays []float64
	sent := map[int]vclock.Time{}
	// 600-byte packets at 50/s = 240 kbps offered; 300 kbps capacity →
	// utilization 0.8, bounded queue; halve capacity later to overload.
	l := NewLink(LinkConfig{BaseDelay: 0.01, BandwidthBps: 300_000, PacketBytes: 600, Seed: 10}, sched,
		func(p Packet) { delays = append(delays, float64(sched.Now()-sent[p.Seq])) })
	for i := 0; i < 200; i++ {
		sent[l.Send(nil)] = sched.Now()
		sched.RunUntil(sched.Now() + 0.02)
	}
	underLoad := delays[len(delays)-1]
	// 80% utilization with deterministic arrivals: tx time 16 ms fits in
	// the 20 ms interval, so no standing queue — delay ≈ base + tx.
	if underLoad < 0.025 || underLoad > 0.030 {
		t.Fatalf("delay at 80%% load %g want ~0.026", underLoad)
	}
	// Overload: 120 kbps capacity for 240 kbps offered → queue grows.
	l.SetBandwidth(120_000)
	for i := 0; i < 100; i++ {
		sent[l.Send(nil)] = sched.Now()
		sched.RunUntil(sched.Now() + 0.02)
	}
	sched.Run()
	overloaded := delays[len(delays)-1]
	if overloaded < 1.5*underLoad {
		t.Fatalf("overload delay %g should exceed %g substantially", overloaded, underLoad)
	}
}

func TestQueueTailDrop(t *testing.T) {
	sched := vclock.NewScheduler()
	delivered := 0
	l := NewLink(LinkConfig{BaseDelay: 0.001, BandwidthBps: 48_000, PacketBytes: 600, QueueLimit: 5, Seed: 11}, sched,
		func(Packet) { delivered++ })
	// Burst of 50 packets at once: tx time 100 ms each, queue limit 5.
	for i := 0; i < 50; i++ {
		l.Send(nil)
	}
	sched.Run()
	if delivered >= 50 {
		t.Fatal("tail drop never engaged")
	}
	if delivered < 5 {
		t.Fatalf("only %d delivered; queue should hold ~5", delivered)
	}
	if l.Stats().Lost != 50-delivered {
		t.Fatalf("lost %d delivered %d", l.Stats().Lost, delivered)
	}
}

func TestZeroBandwidthMeansNoQueueing(t *testing.T) {
	sched := vclock.NewScheduler()
	var maxDelay float64
	sent := map[int]vclock.Time{}
	l := NewLink(LinkConfig{BaseDelay: 0.02, Seed: 12}, sched, func(p Packet) {
		if d := float64(sched.Now() - sent[p.Seq]); d > maxDelay {
			maxDelay = d
		}
	})
	for i := 0; i < 100; i++ {
		sent[l.Send(nil)] = sched.Now()
	}
	sched.Run()
	if maxDelay > 0.0201 {
		t.Fatalf("no-bandwidth link delayed %g", maxDelay)
	}
}
