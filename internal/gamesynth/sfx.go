package gamesynth

import (
	"math"
	"math/rand"

	"ekho/internal/audio"
	"ekho/internal/dsp"
)

// SFX synthesizes game sound effects: sparse broadband transients
// (gunshots, impacts), sustained machinery (engines), and occasional
// explosions. These are the "sudden sharp sounds" for which echo
// perception is most acute (§2).
func SFX(rng *rand.Rand, seconds float64) *audio.Buffer {
	const rate = audio.SampleRate
	n := int(seconds * rate)
	out := audio.NewBuffer(rate, n)

	// A sustained engine bed under everything, at low level.
	engine(rng, out.Samples, 0.06)

	// Transient events at 1-4 per second.
	t := 0.0
	for {
		t += 0.25 + rng.ExpFloat64()*0.5
		pos := int(t * rate)
		if pos >= n {
			break
		}
		switch rng.Intn(4) {
		case 0, 1:
			gunshot(rng, out.Samples[pos:min(pos+rate/4, n)])
		case 2:
			impact(rng, out.Samples[pos:min(pos+rate/6, n)])
		case 3:
			explosion(rng, out.Samples[pos:min(pos+rate, n)])
		}
	}
	return out.Normalize(0.75)
}

// gunshot: a sharp broadband noise burst with a very fast attack and an
// exponential decay of ~60 ms, plus a low-frequency thump.
func gunshot(rng *rand.Rand, dst []float64) {
	const rate = audio.SampleRate
	n := len(dst)
	lp := dsp.NewLowPassBiquad(9000, rate, 0.707)
	for i := 0; i < n; i++ {
		env := math.Exp(-float64(i) / (0.06 * rate))
		dst[i] += 0.9 * env * lp.Process(rng.NormFloat64())
		// thump at ~90 Hz
		dst[i] += 0.4 * env * math.Sin(2*math.Pi*90*float64(i)/rate)
	}
}

// impact: a band-passed click (metal/footstep-like).
func impact(rng *rand.Rand, dst []float64) {
	const rate = audio.SampleRate
	n := len(dst)
	center := 800 + rng.Float64()*3000
	bp := dsp.NewPeakingBiquad(center, rate, 4, 20)
	for i := 0; i < n; i++ {
		env := math.Exp(-float64(i) / (0.025 * rate))
		dst[i] += 0.5 * env * bp.Process(rng.NormFloat64()) * 0.1
	}
}

// explosion: a long low-passed rumble with slow decay.
func explosion(rng *rand.Rand, dst []float64) {
	const rate = audio.SampleRate
	n := len(dst)
	lp := dsp.NewLowPassBiquad(400, rate, 0.707)
	for i := 0; i < n; i++ {
		env := math.Exp(-float64(i) / (0.35 * rate))
		dst[i] += 1.2 * env * lp.Process(rng.NormFloat64())
	}
}

// engine: sum of low harmonics with random amplitude modulation,
// approximating car/machinery beds in racing games.
func engine(rng *rand.Rand, dst []float64, amp float64) {
	const rate = audio.SampleRate
	base := 55 + rng.Float64()*60
	mod := 0.2 + rng.Float64()*0.3
	phase := rng.Float64() * 2 * math.Pi
	for i := range dst {
		t := float64(i) / rate
		rpm := base * (1 + 0.15*math.Sin(2*math.Pi*mod*t+phase))
		var v float64
		for h := 1; h <= 6; h++ {
			v += math.Sin(2*math.Pi*rpm*float64(h)*t) / float64(h)
		}
		dst[i] += amp * v
	}
}
