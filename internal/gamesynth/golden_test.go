package gamesynth

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"testing"
)

// clipDigest hashes a clip's quantized samples; a change means the
// workload every experiment runs on silently changed.
func clipDigest(spec ClipSpec) string {
	b := Generate(spec, 2)
	h := sha256.New()
	var buf [2]byte
	for _, v := range b.Samples {
		binary.LittleEndian.PutUint16(buf[:], uint16(int16(v*32767)))
		h.Write(buf[:])
	}
	return hex.EncodeToString(h.Sum(nil))[:16]
}

func TestGoldenDigestsPrint(t *testing.T) {
	// Helper for regenerating the table below after an intentional
	// synthesizer change: go test -run TestGoldenDigestsPrint -v
	if !testing.Verbose() {
		t.Skip("run with -v to print digests")
	}
	for _, spec := range Catalog()[:4] {
		fmt.Printf("%q: %q,\n", spec.ID(), clipDigest(spec))
	}
}

func TestCorpusGoldenDigests(t *testing.T) {
	golden := map[string]string{}
	for _, spec := range Catalog()[:4] {
		golden[spec.ID()] = clipDigest(spec)
	}
	// Digests must be stable across repeated generation in-process...
	for _, spec := range Catalog()[:4] {
		if d := clipDigest(spec); d != golden[spec.ID()] {
			t.Fatalf("%s digest changed within one process: %s vs %s", spec.ID(), d, golden[spec.ID()])
		}
	}
	// ...and across clips (no two clips identical).
	seen := map[string]string{}
	for id, d := range golden {
		if prev, dup := seen[d]; dup {
			t.Fatalf("clips %s and %s have identical audio", id, prev)
		}
		seen[d] = id
	}
}
