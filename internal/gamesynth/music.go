package gamesynth

import (
	"math"
	"math/rand"

	"ekho/internal/audio"
)

// Music synthesizes game-soundtrack-like audio: a chord pad, a bass line
// and a plucked melody over a minor-pentatonic scale at a game-typical
// tempo. Harmonic content spans roughly 80 Hz - 8 kHz.
func Music(rng *rand.Rand, seconds float64) *audio.Buffer {
	const rate = audio.SampleRate
	n := int(seconds * rate)
	out := audio.NewBuffer(rate, n)
	root := 110 * math.Pow(2, float64(rng.Intn(12))/12) // A2 .. G#3
	scale := []float64{0, 3, 5, 7, 10, 12, 15, 17}      // minor pentatonic degrees
	bpm := 96 + rng.Float64()*40
	beat := 60 / bpm
	beatSamples := int(beat * rate)

	// Chord pad: root+third+fifth, new chord every 4 beats.
	chordRoots := []float64{0, 5, 7, 3}
	for b := 0; b*beatSamples < n; b += 4 {
		start := b * beatSamples
		length := 4 * beatSamples
		if start+length > n {
			length = n - start
		}
		deg := chordRoots[(b/4)%len(chordRoots)]
		base := root * math.Pow(2, deg/12)
		renderNote(out.Samples[start:start+length], rate, base, 0.10, 0.9, 5)
		renderNote(out.Samples[start:start+length], rate, base*math.Pow(2, 3.0/12), 0.07, 0.9, 4)
		renderNote(out.Samples[start:start+length], rate, base*math.Pow(2, 7.0/12), 0.07, 0.9, 4)
	}
	// Bass: root an octave down, each bar.
	for b := 0; b*beatSamples < n; b += 2 {
		start := b * beatSamples
		length := beatSamples
		if start+length > n {
			length = n - start
		}
		deg := chordRoots[(b/4)%len(chordRoots)]
		renderNote(out.Samples[start:start+length], rate, root/2*math.Pow(2, deg/12), 0.18, 0.5, 3)
	}
	// Melody: one plucked note per beat (with rests).
	for b := 0; b*beatSamples < n; b++ {
		if rng.Float64() < 0.25 {
			continue // rest
		}
		start := b * beatSamples
		length := beatSamples * 3 / 4
		if start+length > n {
			length = n - start
		}
		deg := scale[rng.Intn(len(scale))]
		freq := 2 * root * math.Pow(2, deg/12)
		renderNote(out.Samples[start:start+length], rate, freq, 0.22, 0.25, 6)
	}
	return out.Normalize(0.7)
}

// renderNote adds a decaying harmonic tone into dst. decay is the fraction
// of the note length over which the envelope falls to ~5%.
func renderNote(dst []float64, rate int, freq, amp, sustain float64, harmonics int) {
	n := len(dst)
	if n == 0 || freq <= 0 {
		return
	}
	attack := rate * 5 / 1000
	if attack > n/4 {
		attack = n / 4
	}
	decayRate := 3.0 / (sustain * float64(n))
	for i := 0; i < n; i++ {
		t := float64(i) / float64(rate)
		var v float64
		for h := 1; h <= harmonics; h++ {
			f := freq * float64(h)
			if f > 16000 {
				break
			}
			v += math.Sin(2*math.Pi*f*t) / float64(h)
		}
		env := math.Exp(-decayRate * float64(i))
		if attack > 0 && i < attack {
			env *= float64(i) / float64(attack)
		}
		dst[i] += amp * env * v
	}
}
