// Package gamesynth synthesizes the audio workloads of the paper's
// evaluation: a 30-clip corpus of game audio in three stimulus categories
// (speech, music, game sound effects) mirroring Table 2, plus the background
// voice chatter ("babble") used in the GCC-PHAT comparison (§6.4).
//
// The paper sampled commercial games; that audio is proprietary, so this
// package generates synthetic equivalents with the properties that matter
// to Ekho: realistic spectral occupancy (speech formants below ~5 kHz,
// music harmonics, broadband SFX transients) and strong amplitude dynamics
// on the tens-of-milliseconds timescale (which drive the Eq. 2 amplitude
// tracker). Every generator is deterministic given its seed.
package gamesynth

import (
	"math"
	"math/rand"

	"ekho/internal/audio"
	"ekho/internal/dsp"
)

// Speech synthesizes seconds of speech-like audio: a glottal pulse train
// shaped by slowly wandering vowel formants, interleaved with unvoiced
// fricative segments and phrase pauses. Spectral energy is concentrated
// below 5 kHz like real speech.
func Speech(rng *rand.Rand, seconds float64) *audio.Buffer {
	const rate = audio.SampleRate
	n := int(seconds * rate)
	out := audio.NewBuffer(rate, n)
	pitch := 90 + rng.Float64()*80 // speaker fundamental 90-170 Hz
	pos := 0
	for pos < n {
		// Phrase of 1-3 s followed by a 0.2-0.6 s pause.
		phraseLen := int((1 + 2*rng.Float64()) * rate)
		if pos+phraseLen > n {
			phraseLen = n - pos
		}
		synthPhrase(rng, out.Samples[pos:pos+phraseLen], pitch)
		pos += phraseLen
		pos += int((0.2 + 0.4*rng.Float64()) * rate)
	}
	return out.Normalize(0.7)
}

// vowelFormants holds (F1, F2, F3) center frequencies for a handful of
// vowels; the synthesizer hops between them per syllable.
var vowelFormants = [][3]float64{
	{730, 1090, 2440}, // /a/
	{270, 2290, 3010}, // /i/
	{300, 870, 2240},  // /u/
	{530, 1840, 2480}, // /e/
	{570, 840, 2410},  // /o/
	{660, 1720, 2410}, // /ae/
}

func synthPhrase(rng *rand.Rand, dst []float64, pitch float64) {
	const rate = audio.SampleRate
	n := len(dst)
	pos := 0
	for pos < n {
		sylLen := int((0.12 + 0.15*rng.Float64()) * rate)
		if pos+sylLen > n {
			sylLen = n - pos
		}
		if sylLen <= 0 {
			break
		}
		seg := dst[pos : pos+sylLen]
		if rng.Float64() < 0.75 {
			synthVowel(rng, seg, pitch*(0.9+0.2*rng.Float64()))
		} else {
			synthFricative(rng, seg)
		}
		pos += sylLen
	}
}

// synthVowel renders a voiced segment: an impulse-ish glottal source
// filtered by three formant resonators, with an attack/decay envelope.
func synthVowel(rng *rand.Rand, dst []float64, pitch float64) {
	const rate = audio.SampleRate
	v := vowelFormants[rng.Intn(len(vowelFormants))]
	resonators := dsp.Chain{
		dsp.NewPeakingBiquad(v[0], rate, 5, 18),
		dsp.NewPeakingBiquad(v[1], rate, 7, 14),
		dsp.NewPeakingBiquad(v[2], rate, 8, 8),
		dsp.NewLowPassBiquad(4500, rate, 0.707),
		dsp.NewLowPassBiquad(5000, rate, 0.707),
	}
	period := float64(rate) / pitch
	next := 0.0
	n := len(dst)
	src := make([]float64, n)
	for i := 0; i < n; i++ {
		if float64(i) >= next {
			src[i] = 1
			// slight jitter for naturalness
			next += period * (0.98 + 0.04*rng.Float64())
		}
	}
	y := resonators.Apply(src)
	// Envelope: 15 ms attack, exponential-ish release.
	attack := rate * 15 / 1000
	for i := range y {
		env := 1.0
		if i < attack {
			env = float64(i) / float64(attack)
		}
		tail := n - i
		if tail < attack {
			env *= float64(tail) / float64(attack)
		}
		dst[i] = y[i] * env * 0.25
	}
}

// synthFricative renders an unvoiced segment: shaped noise band-passed
// in the 2-6 kHz sibilance region.
func synthFricative(rng *rand.Rand, dst []float64) {
	const rate = audio.SampleRate
	shaper := dsp.Chain{
		dsp.NewHighPassBiquad(2000, rate, 0.707),
		dsp.NewLowPassBiquad(6000, rate, 0.707),
		dsp.NewLowPassBiquad(6000, rate, 0.707),
	}
	n := len(dst)
	for i := 0; i < n; i++ {
		v := shaper.Process(rng.NormFloat64())
		env := math.Sin(math.Pi * float64(i) / float64(n))
		dst[i] = v * env * 0.12
	}
}

// Babble mixes several independent synthetic voices into the diffuse
// background chatter used for the Low/Med/Loud Chat conditions. More
// voices make a denser, more speech-shaped masker.
func Babble(rng *rand.Rand, seconds float64, voices int) *audio.Buffer {
	if voices < 1 {
		voices = 1
	}
	bufs := make([]*audio.Buffer, voices)
	for i := range bufs {
		sub := rand.New(rand.NewSource(rng.Int63()))
		bufs[i] = Speech(sub, seconds).Gain(1 / math.Sqrt(float64(voices)))
	}
	return audio.Mix(bufs...).Normalize(0.7)
}
