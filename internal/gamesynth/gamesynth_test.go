package gamesynth

import (
	"math"
	"math/rand"
	"testing"

	"ekho/internal/audio"
	"ekho/internal/dsp"
)

func TestSpeechSpectralOccupancy(t *testing.T) {
	s := Speech(rand.New(rand.NewSource(1)), 5)
	low := dsp.BandPower(s.Samples, audio.SampleRate, 100, 5000)
	high := dsp.BandPower(s.Samples, audio.SampleRate, 8000, 16000)
	if low <= 0 {
		t.Fatal("speech should have energy below 5 kHz")
	}
	if high > low/10 {
		t.Fatalf("speech energy above 8 kHz too strong: %g vs %g", high, low)
	}
}

func TestSpeechHasPauses(t *testing.T) {
	s := Speech(rand.New(rand.NewSource(2)), 10)
	// Count 100 ms windows that are near-silent.
	win := audio.SampleRate / 10
	quiet := 0
	total := 0
	for start := 0; start+win <= s.Len(); start += win {
		total++
		if s.Slice(start, start+win).RMS() < 0.01 {
			quiet++
		}
	}
	if quiet == 0 {
		t.Fatal("speech should contain pauses")
	}
	if quiet == total {
		t.Fatal("speech should not be all silence")
	}
}

func TestSpeechDeterministic(t *testing.T) {
	a := Speech(rand.New(rand.NewSource(7)), 2)
	b := Speech(rand.New(rand.NewSource(7)), 2)
	for i := range a.Samples {
		if a.Samples[i] != b.Samples[i] {
			t.Fatal("same seed must give identical audio")
		}
	}
}

func TestMusicHarmonicContent(t *testing.T) {
	m := Music(rand.New(rand.NewSource(3)), 5)
	if m.Len() != 5*audio.SampleRate {
		t.Fatalf("len %d", m.Len())
	}
	mid := dsp.BandPower(m.Samples, audio.SampleRate, 80, 4000)
	if mid <= 0 {
		t.Fatal("music should have energy in 80-4000 Hz")
	}
	if m.PeakAbs() > 0.76 {
		t.Fatalf("normalized peak %g", m.PeakAbs())
	}
}

func TestSFXHasTransientDynamics(t *testing.T) {
	s := SFX(rand.New(rand.NewSource(4)), 10)
	// Frame powers must vary a lot (transients): max/median ratio high.
	win := audio.SampleRate / 50 // 20 ms
	var powers []float64
	for start := 0; start+win <= s.Len(); start += win {
		powers = append(powers, s.Slice(start, start+win).RMS())
	}
	maxP, sum := 0.0, 0.0
	for _, p := range powers {
		if p > maxP {
			maxP = p
		}
		sum += p
	}
	mean := sum / float64(len(powers))
	if maxP < 3*mean {
		t.Fatalf("SFX lacks transients: max %g mean %g", maxP, mean)
	}
}

func TestBabbleDenser(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	b := Babble(rng, 5, 4)
	if b.Len() != 5*audio.SampleRate {
		t.Fatalf("len %d", b.Len())
	}
	// Babble with 4 voices should have fewer quiet windows than a single
	// speech stream.
	win := audio.SampleRate / 10
	quiet := func(x *audio.Buffer) int {
		q := 0
		for start := 0; start+win <= x.Len(); start += win {
			if x.Slice(start, start+win).RMS() < 0.01 {
				q++
			}
		}
		return q
	}
	single := Speech(rand.New(rand.NewSource(6)), 5)
	if quiet(b) > quiet(single) {
		t.Fatalf("babble quieter than single voice: %d vs %d", quiet(b), quiet(single))
	}
	if Babble(rng, 1, 0).Len() != audio.SampleRate {
		t.Fatal("voices<1 should clamp to 1")
	}
}

func TestCatalogMatchesTable2(t *testing.T) {
	cat := Catalog()
	if len(cat) != 30 {
		t.Fatalf("catalog has %d clips, want 30", len(cat))
	}
	games := map[string]int{}
	seeds := map[int64]bool{}
	ids := map[string]bool{}
	for _, c := range cat {
		games[c.Game]++
		if seeds[c.Seed] {
			t.Fatalf("duplicate seed %d", c.Seed)
		}
		seeds[c.Seed] = true
		if ids[c.ID()] {
			t.Fatalf("duplicate id %s", c.ID())
		}
		ids[c.ID()] = true
		if len(c.Categories) == 0 {
			t.Fatalf("%s has no categories", c.ID())
		}
		if c.Index != 1 && c.Index != 2 {
			t.Fatalf("%s index %d", c.ID(), c.Index)
		}
	}
	if len(games) != 15 {
		t.Fatalf("%d games, want 15", len(games))
	}
	for g, n := range games {
		if n != 2 {
			t.Fatalf("game %q has %d clips", g, n)
		}
	}
	// All three categories must be represented as primaries.
	prim := map[Category]int{}
	for _, c := range cat {
		prim[c.Primary()]++
	}
	for _, want := range []Category{Speech_, Music_, SFX_} {
		if prim[want] == 0 {
			t.Fatalf("no clips with primary category %v", want)
		}
	}
}

func TestGenerateDeterministicAndBounded(t *testing.T) {
	spec := Catalog()[0]
	a := Generate(spec, 3)
	b := Generate(spec, 3)
	if a.Len() != 3*audio.SampleRate {
		t.Fatalf("len %d", a.Len())
	}
	for i := range a.Samples {
		if a.Samples[i] != b.Samples[i] {
			t.Fatal("Generate must be deterministic")
		}
	}
	if a.PeakAbs() > 0.76 || a.PeakAbs() < 0.1 {
		t.Fatalf("peak %g out of range", a.PeakAbs())
	}
}

func TestGenerateDiffersAcrossClips(t *testing.T) {
	cat := Catalog()
	a := Generate(cat[0], 1)
	b := Generate(cat[1], 1)
	same := 0
	for i := range a.Samples {
		if a.Samples[i] == b.Samples[i] {
			same++
		}
	}
	if same > a.Len()/2 {
		t.Fatal("different clips should differ")
	}
}

func TestSlug(t *testing.T) {
	if slug("Death's Door") != "deaths-door" {
		t.Fatalf("slug %q", slug("Death's Door"))
	}
	if slug("Forza Horizon 5") != "forza-horizon-5" {
		t.Fatalf("slug %q", slug("Forza Horizon 5"))
	}
}

func TestCategoryString(t *testing.T) {
	if Speech_.String() != "Speech" || Music_.String() != "Music" || SFX_.String() != "Game SFX" {
		t.Fatal("category names")
	}
	if Category(99).String() == "" {
		t.Fatal("unknown category should still print")
	}
}

func TestAmplitudeDynamics(t *testing.T) {
	// Paper: "game audio amplitude is dynamic and varies significantly on
	// the timescale of few tens of ms" — verify for every category.
	for _, gen := range []func() *audio.Buffer{
		func() *audio.Buffer { return Speech(rand.New(rand.NewSource(8)), 5) },
		func() *audio.Buffer { return Music(rand.New(rand.NewSource(8)), 5) },
		func() *audio.Buffer { return SFX(rand.New(rand.NewSource(8)), 5) },
	} {
		b := gen()
		win := audio.SampleRate / 50
		minP, maxP := math.Inf(1), 0.0
		for start := 0; start+win <= b.Len(); start += win {
			p := b.Slice(start, start+win).RMS()
			if p < minP {
				minP = p
			}
			if p > maxP {
				maxP = p
			}
		}
		if maxP < 2*minP+1e-9 {
			t.Fatalf("flat amplitude: min %g max %g", minP, maxP)
		}
	}
}
