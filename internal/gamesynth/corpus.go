package gamesynth

import (
	"fmt"
	"math/rand"

	"ekho/internal/audio"
)

// Category classifies the dominant stimulus content of a clip, matching the
// three groupings of Figures 2 and 10.
type Category int

// Stimulus categories.
const (
	Speech_ Category = iota // named with a trailing underscore to avoid clashing with the Speech generator
	Music_
	SFX_
)

// String implements fmt.Stringer.
func (c Category) String() string {
	switch c {
	case Speech_:
		return "Speech"
	case Music_:
		return "Music"
	case SFX_:
		return "Game SFX"
	default:
		return fmt.Sprintf("Category(%d)", int(c))
	}
}

// ClipSpec identifies one corpus clip: a game title, its genre, the clip
// index within the game, and the stimulus categories the clip contains.
// The first category is the primary one used for result grouping.
type ClipSpec struct {
	Game       string
	Genre      string
	Index      int // 1 or 2
	Categories []Category
	Seed       int64
}

// ID returns a short stable identifier such as "halo-infinite#1".
func (c ClipSpec) ID() string { return fmt.Sprintf("%s#%d", slug(c.Game), c.Index) }

// Primary returns the clip's primary (first-listed) category.
func (c ClipSpec) Primary() Category { return c.Categories[0] }

func slug(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z' || r >= '0' && r <= '9':
			out = append(out, r)
		case r >= 'A' && r <= 'Z':
			out = append(out, r+('a'-'A'))
		case r == ' ' || r == '-':
			if len(out) > 0 && out[len(out)-1] != '-' {
				out = append(out, '-')
			}
			// apostrophes and other punctuation are dropped entirely
		}
	}
	return string(out)
}

// Catalog returns the 30-clip corpus mirroring Table 2 of the paper:
// 15 titles spanning FPS, racing, horror, platformer and RPG genres with
// two 15-second clips each.
func Catalog() []ClipSpec {
	type entry struct {
		game, genre string
		c1, c2      []Category
	}
	entries := []entry{
		{"CrossFireX", "First Person Shooter", []Category{SFX_}, []Category{SFX_, Speech_}},
		{"GRID Legends", "Racing Simulator", []Category{SFX_, Speech_}, []Category{SFX_}},
		{"Resident Evil Village", "Survival Horror", []Category{Speech_}, []Category{SFX_}},
		{"Death's Door", "Isometric Action-Adventure", []Category{Music_}, []Category{Music_, SFX_}},
		{"Halo Infinite", "First Person Shooter", []Category{SFX_}, []Category{Speech_, SFX_}},
		{"Sable", "Adventure & Exploration", []Category{Music_, SFX_}, []Category{Music_}},
		{"Dying Light 2", "Action Role Playing Game", []Category{Speech_}, []Category{Speech_}},
		{"OlliOlli World", "Sports Action Platformer", []Category{Music_, SFX_}, []Category{Music_, SFX_}},
		{"Tales of Arise", "Action Role Playing Game", []Category{Speech_, Music_}, []Category{Speech_, Music_}},
		{"Elden Ring", "Soulsborne Role Playing Game", []Category{SFX_}, []Category{SFX_}},
		{"Ori and the Will of the Wisps", "Metroidvania Platformer", []Category{SFX_, Music_}, []Category{SFX_, Music_}},
		{"The Artful Escape", "Adventure Platformer", []Category{Speech_, Music_}, []Category{Speech_, Music_}},
		{"Forza Horizon 5", "Racing Simulator", []Category{Music_, Speech_}, []Category{SFX_, Music_, Speech_}},
		{"Psychonauts 2", "Adventure Platformer", []Category{Speech_}, []Category{Speech_}},
		{"Tormented Souls", "Psychological Horror Shooter", []Category{Speech_, Music_}, []Category{SFX_, Music_}},
	}
	var out []ClipSpec
	for gi, e := range entries {
		out = append(out,
			ClipSpec{Game: e.game, Genre: e.genre, Index: 1, Categories: e.c1, Seed: int64(1000 + gi*2)},
			ClipSpec{Game: e.game, Genre: e.genre, Index: 2, Categories: e.c2, Seed: int64(1001 + gi*2)},
		)
	}
	return out
}

// ClipSeconds is the corpus clip length used throughout the evaluation.
const ClipSeconds = 15.0

// Generate renders the clip described by spec: each listed category is
// synthesized and mixed, the primary category loudest. Deterministic for a
// given spec.
func Generate(spec ClipSpec, seconds float64) *audio.Buffer {
	rng := rand.New(rand.NewSource(spec.Seed))
	var parts []*audio.Buffer
	for i, cat := range spec.Categories {
		gain := 1.0
		if i > 0 {
			gain = 0.55 // secondary content mixed under the primary
		}
		sub := rand.New(rand.NewSource(rng.Int63()))
		var b *audio.Buffer
		switch cat {
		case Speech_:
			b = Speech(sub, seconds)
		case Music_:
			b = Music(sub, seconds)
		default:
			b = SFX(sub, seconds)
		}
		parts = append(parts, b.Gain(gain))
	}
	return audio.Mix(parts...).Normalize(0.75)
}

// GenerateAll renders the full corpus at the canonical clip length.
func GenerateAll() map[string]*audio.Buffer {
	out := make(map[string]*audio.Buffer)
	for _, spec := range Catalog() {
		out[spec.ID()] = Generate(spec, ClipSeconds)
	}
	return out
}
