// Package serverpipe is the transport-agnostic per-session server core of
// Ekho: one Pipeline owns everything the paper's server does per session —
// the two compensable downlink streams (silence-debt scheduling), PN
// marker injection with a pending-marker ledger, marker↔playback-record
// matching (§4.3), chat uplink sequencing (loss concealment, reorder
// drop, codec-delay timestamp correction), the streaming estimator and
// the compensator (§4.4).
//
// Every hosting layer drives the same core: the multi-tenant hub feeds it
// from UDP datagrams, the discrete-event simulator from virtual-time
// callbacks, and the experiments harness directly. The host supplies the
// transport, the content-time clock and an EventSink; the pipeline
// supplies identical measurement behavior everywhere.
//
// The steady-state hot path (NextScreenFrame / NextAccessoryFrame /
// OfferChat without detections) allocates nothing: scratch buffers live
// in the Pipeline, the record book and marker ledger mutate in place, and
// the injector's log is bounded.
package serverpipe

import (
	"math"

	"ekho/internal/audio"
	"ekho/internal/codec"
	"ekho/internal/compensator"
	"ekho/internal/estimator"
	"ekho/internal/pn"
)

// frameSec is the content-time advance of one 20 ms frame.
const frameSec = float64(audio.FrameSamples) / audio.SampleRate

// injectorLogKeep bounds the retained injection log; the pipeline only
// needs the start count, so a short tail (for debugging) suffices.
const injectorLogKeep = 16

// Config assembles one per-session pipeline.
type Config struct {
	// Game is the looping game clip both streams transmit (shared,
	// read-only across sessions).
	Game *audio.Buffer
	// Seq is the session's PN marker template (shared with the
	// estimator; per-session seeds keep concurrent sessions orthogonal).
	Seq *pn.Sequence
	// MarkerC is the relative marker volume (0 = paper default 0.5).
	MarkerC float64
	// Codec is the chat uplink profile (zero value = SWB32, the paper's
	// uplink).
	Codec codec.Profile
	// Compensator tunes the correction loop (zero value = paper
	// defaults: 5 ms hysteresis, 6 s settling).
	Compensator compensator.Config
	// Drift tunes the micro-resampling regime for clock-drift (SRO)
	// scenarios. Disabled by default: with Drift.Enabled false the
	// pipeline is structurally identical to the level-only loop and its
	// behavior stays bit-exact with pre-drift sessions.
	Drift compensator.DriftConfig
	// DriftTracker tunes the sliding-window slope fit feeding the drift
	// regime (zero value = estimator defaults; ignored unless
	// Drift.Enabled).
	DriftTracker estimator.DriftConfig
	// Detector selects the marker-detection pipeline (zero value =
	// DetectorTwoStage, the band-decimated coarse-to-fine detector;
	// DetectorFullRate is the reference full-rate correlator).
	Detector estimator.DetectorMode
	// Now is the pluggable content-time clock used for compensator
	// settling and event timestamps. Nil uses the built-in clock: the
	// count of produced screen frames times 20 ms, which holds whether
	// the host is paced by a wall-clock ticker or driven flat-out.
	Now func() float64
	// Sink receives lifecycle events (nil = NopSink).
	Sink EventSink
	// DisableMarkers turns injection off (the Ekho-disabled baseline).
	DisableMarkers bool
	// InterpolatedInsert synthesizes inserted delay from surrounding
	// audio (PLC-style) instead of hard silence.
	InterpolatedInsert bool
	// MutedScreen enables the §6.5 mode: screen game audio is silenced
	// and markers are mixed at a constant faint amplitude instead of
	// tracking the (absent) game audio.
	MutedScreen bool
	// MutedMarkerAmpDB is the constant marker amplitude for MutedScreen,
	// in dB above the injector floor (0 = 9 dB).
	MutedMarkerAmpDB float64
	// ChatStartsAtZero pins the first expected chat sequence number to
	// zero (the simulator's convention) instead of syncing to the first
	// packet seen (the hub's convention for clients joining mid-stream).
	ChatStartsAtZero bool
	// InjectorLogLimit bounds the injector's retained injection log
	// (0 = the default short debugging tail, negative = unlimited). The
	// capture/replay recorder persists this value in the trace header so
	// a replayed session reconstructs identical injector ledger state.
	InjectorLogLimit int
}

// Normalized returns cfg with every defaulted field made explicit — the
// exact configuration New assembles. The trace recorder captures the
// normalized form so replay rebuilds an identical pipeline.
func (cfg Config) Normalized() Config { return cfg.withDefaults() }

func (cfg Config) withDefaults() Config {
	if cfg.MarkerC == 0 {
		cfg.MarkerC = pn.DefaultC
	}
	if cfg.Codec.Name == "" {
		cfg.Codec = codec.SWB32
	}
	if cfg.Sink == nil {
		cfg.Sink = NopSink{}
	}
	if cfg.MutedMarkerAmpDB == 0 {
		cfg.MutedMarkerAmpDB = 9
	}
	if cfg.InjectorLogLimit == 0 {
		cfg.InjectorLogLimit = injectorLogKeep
	}
	return cfg
}

// Pipeline is one session's server core. It is not safe for concurrent
// use: the host serializes calls (the hub's shard worker, the simulator's
// event loop).
type Pipeline struct {
	cfg Config

	screen    *Stream
	accessory *Stream
	injector  *pn.Injector
	est       *estimator.Streamer
	comp      *compensator.Compensator
	dec       *codec.Decoder

	// Drift regime (nil unless Config.Drift.Enabled): tracker fits the
	// ISD slope across measurements, drift wraps comp with the
	// micro-resampling policy.
	tracker *estimator.DriftTracker
	drift   *compensator.DriftLoop
	// lastDetection is the newest measurement detection time seen;
	// trackerBlankUntil suppresses tracker feeding for measurements
	// detected before the latest correction propagated (Drift.BlankSec,
	// on the detection-time axis — late-delivered pre-correction
	// measurements are excluded no matter when they arrive).
	lastDetection     float64
	trackerBlankUntil float64

	ledger MarkerLedger
	book   RecordBook
	seqr   ChatSequencer
	sink   EventSink

	codecDelaySec float64
	lastChatEnd   float64
	frames        int // produced screen frames (the default clock)

	mutedAmp float64
	mutedPos int

	chatBuf []float64 // decode/conceal scratch
}

// New assembles a pipeline. Config.Game and Config.Seq are required.
func New(cfg Config) *Pipeline {
	cfg = cfg.withDefaults()
	if cfg.Game == nil || cfg.Seq == nil {
		panic("serverpipe: Config.Game and Config.Seq are required")
	}
	p := &Pipeline{
		cfg:           cfg,
		screen:        NewStream(cfg.Game),
		accessory:     NewStream(cfg.Game),
		injector:      pn.NewInjector(cfg.Seq, cfg.MarkerC),
		est:           estimator.NewStreamer(estimator.Config{Seq: cfg.Seq, Detector: cfg.Detector}),
		comp:          compensator.New(cfg.Compensator),
		dec:           codec.NewDecoder(cfg.Codec),
		seqr:          NewChatSequencer(cfg.ChatStartsAtZero),
		sink:          cfg.Sink,
		codecDelaySec: float64(cfg.Codec.Delay()) / audio.SampleRate,
		mutedAmp:      pn.MinAmplitude * math.Pow(10, cfg.MutedMarkerAmpDB/20),
	}
	if cfg.InjectorLogLimit > 0 {
		p.injector.SetLogLimit(cfg.InjectorLogLimit)
	}
	if cfg.Drift.Enabled {
		p.tracker = estimator.NewDriftTracker(cfg.DriftTracker)
		p.drift = compensator.NewDriftLoop(cfg.Drift, p.comp)
	}
	if cfg.InterpolatedInsert {
		p.screen.EnableInterpolation()
		p.accessory.EnableInterpolation()
	}
	return p
}

// Now returns the session's content time in seconds.
func (p *Pipeline) Now() float64 {
	if p.cfg.Now != nil {
		return p.cfg.Now()
	}
	return float64(p.frames) * frameSec
}

// NextScreenFrame fills dst with the next marked screen frame and
// advances the built-in content clock. Markers that start here are
// registered in the pending ledger under the frame's content identity
// (for all-gap frames, the upcoming content position).
func (p *Pipeline) NextScreenFrame(dst []float64) FrameInfo {
	fi := p.screen.Next(dst)
	if p.cfg.MutedScreen {
		// §6.5: the screen's game audio is muted; only faint markers at
		// a constant amplitude are transmitted (content bookkeeping is
		// retained — it represents the on-screen video frames).
		for i := range dst {
			dst[i] = 0
		}
		if !p.cfg.DisableMarkers && p.injectMutedMarker(dst) {
			p.noteMarker(fi)
		}
	} else if !p.cfg.DisableMarkers {
		before := p.injector.InjectionCount()
		p.injector.ProcessFrame(dst)
		if p.injector.InjectionCount() > before {
			p.noteMarker(fi)
		}
	}
	p.frames++
	return fi
}

// NextAccessoryFrame fills dst with the next accessory frame.
func (p *Pipeline) NextAccessoryFrame(dst []float64) FrameInfo {
	return p.accessory.Next(dst)
}

// noteMarker records a marker that started at this frame's first sample.
// Its content identity: the frame's first content sample, or — for an
// all-gap frame — the upcoming content position.
func (p *Pipeline) noteMarker(fi FrameInfo) {
	mc := fi.ContentStart
	if mc < 0 {
		mc = p.screen.NextContent()
	}
	p.ledger.Add(mc)
	p.sink.MarkerInjected(mc)
}

// injectMutedMarker mixes the PN sequence at a constant amplitude into
// the outgoing muted-screen frame; markers start every second of
// transmitted stream. Reports whether a marker started at this frame's
// first sample.
func (p *Pipeline) injectMutedMarker(dst []float64) bool {
	started := p.mutedPos%audio.SampleRate == 0
	w := p.cfg.Seq.Samples
	for i := range dst {
		mi := (p.mutedPos + i) % audio.SampleRate
		if mi < len(w) {
			dst[i] += p.mutedAmp * w[mi]
		}
	}
	p.mutedPos += len(dst)
	return started
}

// OfferRecord adds one accessory playback record. Matching against
// pending markers happens on the next OfferChat (hosts deliver records
// piggybacked on chat packets, so the record book is always current when
// chat audio arrives).
func (p *Pipeline) OfferRecord(r Record) { p.book.Add(r) }

// OfferRecords adds a batch of accessory playback records.
func (p *Pipeline) OfferRecords(rs []Record) {
	for _, r := range rs {
		p.book.Add(r)
	}
}

// OfferChat runs the server's uplink path on one chat packet: resolve
// pending markers against the record book, conceal lost packets so the
// estimator's timeline stays contiguous, drop stale reorders, decode,
// correct the capture timestamp for the codec's lookahead delay, feed the
// estimator and route any resulting compensation.
func (p *Pipeline) OfferChat(seq uint32, adcLocal float64, encoded []byte) {
	p.ledger.Resolve(&p.book, p.est, p.sink)
	p.book.Evict(p.ledger.MinPending())

	lost, fresh := p.seqr.Offer(seq)
	for i := lost; i > 0; i-- {
		// AddChat copies the samples, so the scratch is safe to reuse.
		p.chatBuf = p.dec.ConcealTo(p.chatBuf[:0])
		p.sink.ChatGapConcealed(seq-uint32(i), p.lastChatEnd)
		p.feedChat(p.chatBuf, p.lastChatEnd)
	}
	if !fresh {
		return // stale duplicate/reorder
	}
	decoded, err := p.dec.DecodeTo(p.chatBuf[:0], encoded)
	if err != nil {
		decoded = p.dec.ConcealTo(p.chatBuf[:0])
	}
	p.chatBuf = decoded
	// Decoder output lags capture by one codec hop; correct the stamp.
	p.feedChat(decoded, adcLocal-p.codecDelaySec)
}

// feedChat pushes decoded chat audio into the streaming estimator and
// acts on any resulting measurements.
func (p *Pipeline) feedChat(samples []float64, startLocal float64) {
	ms := p.est.AddChat(samples, startLocal)
	p.lastChatEnd = startLocal + float64(len(samples))/audio.SampleRate
	if len(ms) == 0 {
		return
	}
	now := p.Now()
	for _, m := range ms {
		p.sink.ISDMeasurement(now, m)
		if p.drift == nil {
			if act := p.comp.Offer(now, m.ISDSeconds); act != nil {
				p.sink.CompensationAction(now, *act)
				p.route(*act)
			}
			continue
		}
		// Drift regime: fit the slope across measurements (keyed on the
		// marker's detection time — carried in the measurement, so replay
		// reconstructs the identical fit), then let the drift loop pick
		// between a rate retune and a discrete level correction. Either
		// correction moves the ISD trajectory, so the window restarts —
		// and stays blanked while measurements still reflecting the
		// pre-correction trajectory drain through the playout pipeline
		// (those would seed the fresh window with a step that reads as
		// enormous slope).
		if m.DetectionTime > p.lastDetection {
			p.lastDetection = m.DetectionTime
		}
		if m.DetectionTime >= p.trackerBlankUntil {
			p.tracker.Add(m.DetectionTime, m.ISDSeconds)
		}
		act, rs := p.drift.Offer(now, m.ISDSeconds, p.tracker.Fit())
		if rs != nil {
			p.routeResample(*rs)
			p.sink.ResampleApplied(now, *rs)
			p.tracker.Reset()
			p.trackerBlankUntil = p.lastDetection + p.drift.BlankSec()
		}
		if act != nil {
			p.sink.CompensationAction(now, *act)
			p.route(*act)
			p.tracker.Reset()
			p.trackerBlankUntil = p.lastDetection + p.drift.BlankSec()
		}
	}
}

// route applies a compensation action to the owning stream.
func (p *Pipeline) route(a compensator.Action) {
	if a.Stream == compensator.ScreenStream {
		p.screen.Apply(a)
		return
	}
	p.accessory.Apply(a)
}

// routeResample applies a rate retune to the owning stream.
func (p *Pipeline) routeResample(r compensator.Resample) {
	if r.Stream == compensator.ScreenStream {
		p.screen.SetResamplePPM(r.PPM)
		return
	}
	p.accessory.SetResamplePPM(r.PPM)
}

// Apply routes an externally decided compensation action (hosts with
// their own policy, e.g. the multi-screen joint alignment, use the
// component types directly instead).
func (p *Pipeline) Apply(a compensator.Action) { p.route(a) }

// ApplyResample routes an externally decided rate retune.
func (p *Pipeline) ApplyResample(r compensator.Resample) { p.routeResample(r) }

// ResamplePPM reports the rate currently commanded on the accessory
// stream (0 when the drift regime never engaged).
func (p *Pipeline) ResamplePPM() float64 { return p.accessory.ResamplePPM() }

// PendingMarkers reports how many injected markers await a covering
// playback record.
func (p *Pipeline) PendingMarkers() int { return p.ledger.Pending() }

// RecordCount reports how many playback records are retained.
func (p *Pipeline) RecordCount() int { return p.book.Len() }
