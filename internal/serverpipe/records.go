package serverpipe

import (
	"math"
	"sort"

	"ekho/internal/audio"
)

// Record reports that accessory content [ContentStart, ContentStart+N)
// started playing at the given accessory-local time (seconds). Records
// for distinct packets cover disjoint content ranges: the accessory plays
// each unlooped content position at most once (skips drop content, they
// never replay it).
type Record struct {
	ContentStart int64
	N            int
	LocalTime    float64
}

// Record retention bounds. Eviction triggers when the book exceeds the
// high-water mark and drops the oldest records down to the low-water
// mark — except records that may still cover a pending marker, which are
// always retained (a delayed chat packet must still be able to resolve
// an old marker; see MarkerLedger for the expiry that keeps this bounded).
const (
	RecordHighWater = 400
	RecordLowWater  = 200
)

// RecordBook holds playback records sorted by ContentStart so marker
// matching is a binary search instead of a linear scan. Appends are O(1)
// for in-order arrival (the common case) and binary-insert for delayed
// packets. All mutation is in place: steady state allocates nothing once
// the backing array has grown to the retention bound.
type RecordBook struct {
	recs   []Record
	maxEnd int64 // highest ContentStart+N ever added (survives eviction)
}

// Add inserts one record, keeping the book sorted by ContentStart.
func (b *RecordBook) Add(r Record) {
	if end := r.ContentStart + int64(r.N); end > b.maxEnd {
		b.maxEnd = end
	}
	n := len(b.recs)
	if n == 0 || b.recs[n-1].ContentStart <= r.ContentStart {
		b.recs = append(b.recs, r)
		return
	}
	i := sort.Search(n, func(j int) bool { return b.recs[j].ContentStart > r.ContentStart })
	b.recs = append(b.recs, Record{})
	copy(b.recs[i+1:], b.recs[i:])
	b.recs[i] = r
}

// Len reports the number of retained records.
func (b *RecordBook) Len() int { return len(b.recs) }

// MaxCovered returns the highest content position any record has ever
// covered (exclusive); it keeps advancing even after eviction, so marker
// expiry can tell "record not yet arrived" from "record long gone".
func (b *RecordBook) MaxCovered() int64 { return b.maxEnd }

// Lookup resolves a content position to the accessory-local time it
// played. Because record ranges are disjoint, at most one record covers
// the position; binary search finds it in O(log n).
func (b *RecordBook) Lookup(content int64) (float64, bool) {
	i := sort.Search(len(b.recs), func(j int) bool { return b.recs[j].ContentStart > content })
	if i == 0 {
		return 0, false
	}
	r := b.recs[i-1]
	if content >= r.ContentStart+int64(r.N) {
		return 0, false
	}
	return r.LocalTime + float64(content-r.ContentStart)/audio.SampleRate, true
}

// Evict bounds the book: when it exceeds RecordHighWater, the oldest
// records are dropped down to RecordLowWater — but never a record that
// could still cover a pending marker at or beyond minPending (pass
// math.MaxInt64 when nothing is pending).
func (b *RecordBook) Evict(minPending int64) {
	if len(b.recs) <= RecordHighWater {
		return
	}
	drop := 0
	for len(b.recs)-drop > RecordLowWater {
		r := b.recs[drop]
		if minPending != math.MaxInt64 && r.ContentStart+int64(r.N) > minPending {
			break // still (potentially) covers a pending marker
		}
		drop++
	}
	if drop > 0 {
		n := copy(b.recs, b.recs[drop:])
		b.recs = b.recs[:n]
	}
}
