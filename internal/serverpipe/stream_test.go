package serverpipe

import (
	"testing"

	"ekho/internal/audio"
	"ekho/internal/compensator"
)

func TestStreamContentTracking(t *testing.T) {
	game := audio.FromSamples(audio.SampleRate, make([]float64, 4800))
	for i := range game.Samples {
		game.Samples[i] = float64(i % 4800)
	}
	st := NewStream(game)
	f := make([]float64, audio.FrameSamples)
	fi := st.Next(f)
	if fi.Seq != 0 || fi.ContentStart != 0 || fi.ContentOff != 0 || f[0] != 0 || f[959] != 959 {
		t.Fatalf("first frame: %+v", fi)
	}
	// Insert one frame of silence.
	st.Apply(compensator.Action{InsertFrames: 1})
	fi = st.Next(f)
	if fi.ContentStart != -1 || f[0] != 0 {
		t.Fatalf("silence frame: c=%d", fi.ContentStart)
	}
	fi = st.Next(f)
	if fi.ContentStart != 960 || fi.ContentOff != 0 || f[0] != 960 {
		t.Fatalf("content resumes: c=%d f0=%g", fi.ContentStart, f[0])
	}
	// Skip reverts pending silence first.
	st.Apply(compensator.Action{InsertFrames: 2})
	st.Apply(compensator.Action{SkipFrames: 1})
	fi = st.Next(f)
	if fi.ContentStart != -1 {
		t.Fatal("one silence frame should remain")
	}
	fi = st.Next(f)
	if fi.ContentStart != 1920 {
		t.Fatalf("content after revert: c=%d want 1920", fi.ContentStart)
	}
	// Skip without pending silence drops content.
	st.Apply(compensator.Action{SkipFrames: 1})
	fi = st.Next(f)
	if fi.ContentStart != 1920+2*960 {
		t.Fatalf("content after drop: c=%d want %d", fi.ContentStart, 1920+2*960)
	}
	// Content loops over the game buffer (position 3840 % 4800 = 3840).
	if f[0] != float64((1920+2*960)%4800) {
		t.Fatalf("loop value %g", f[0])
	}
	// Seq advanced once per frame regardless of compensation.
	if fi.Seq != 5 {
		t.Fatalf("seq %d want 5", fi.Seq)
	}
}

func TestStreamSubFrame(t *testing.T) {
	game := audio.FromSamples(audio.SampleRate, make([]float64, 9600))
	for i := range game.Samples {
		game.Samples[i] = 1
	}
	st := NewStream(game)
	st.Apply(compensator.Action{InsertSamples: 100})
	f := make([]float64, audio.FrameSamples)
	fi := st.Next(f)
	if fi.ContentOff != 100 || fi.ContentStart != 0 {
		t.Fatalf("off=%d c=%d", fi.ContentOff, fi.ContentStart)
	}
	for i := 0; i < 100; i++ {
		if f[i] != 0 {
			t.Fatal("leading silence expected")
		}
	}
	if f[100] != 1 {
		t.Fatal("content should follow silence")
	}
	// Position advanced by only 860 content samples.
	if st.NextContent() != 860 {
		t.Fatalf("pos %d want 860", st.NextContent())
	}
}
