package serverpipe

import (
	"ekho/internal/audio"
	"ekho/internal/compensator"
)

// FrameInfo describes one produced downlink frame: its sequence number,
// the content position of its first content sample (-1 for all-gap
// frames) and the in-frame offset where content begins.
type FrameInfo struct {
	Seq          uint32
	ContentStart int64
	ContentOff   int
}

// Stream produces the per-tick downlink frames for one compensable
// stream, tracking the mapping between transmitted frames and game-content
// positions. Compensation actions (silence insertion, content skip) are
// applied here; content positions are "unlooped" sample indices into an
// infinite repetition of the game clip.
type Stream struct {
	game        *audio.Buffer
	pos         int // next content sample to transmit
	silenceDebt int // gap samples still to insert
	seq         uint32
	// interp, when set, synthesizes inserted gaps from the surrounding
	// audio (PLC-style) instead of hard silence — the §4.4 future-work
	// enhancement.
	interp *compensator.Interpolator
}

// NewStream returns a stream over the (shared, read-only) game clip.
func NewStream(game *audio.Buffer) *Stream {
	return &Stream{game: game}
}

// EnableInterpolation switches inserted delay from silence to PLC-style
// synthesized audio.
func (st *Stream) EnableInterpolation() {
	st.interp = compensator.NewInterpolator()
}

// Apply registers a compensation action with this stream.
func (st *Stream) Apply(a compensator.Action) {
	st.silenceDebt += a.InsertFrames*audio.FrameSamples + a.InsertSamples
	skip := a.SkipFrames*audio.FrameSamples + a.SkipSamples
	if skip > 0 {
		// Skipping drains pending silence first (reverting an earlier
		// correction); any remainder drops content.
		if st.silenceDebt >= skip {
			st.silenceDebt -= skip
			skip = 0
		} else {
			skip -= st.silenceDebt
			st.silenceDebt = 0
		}
		st.pos += skip
	}
}

// Next fills dst (FrameSamples long; callers reuse one buffer to keep
// the path off the heap) with the next 20 ms frame and returns its frame
// info. Gap audio is silence by default, or synthesized continuation when
// interpolation is enabled.
func (st *Stream) Next(dst []float64) FrameInfo {
	if len(dst) != audio.FrameSamples {
		panic("serverpipe: Stream.Next requires 20 ms frames")
	}
	fi := FrameInfo{Seq: st.seq}
	st.seq++
	if st.silenceDebt >= audio.FrameSamples {
		st.silenceDebt -= audio.FrameSamples
		if st.interp != nil {
			copy(dst, st.interp.Synthesize(audio.FrameSamples))
		} else {
			for i := range dst {
				dst[i] = 0
			}
		}
		fi.ContentStart = -1
		return fi
	}
	off := st.silenceDebt
	st.silenceDebt = 0
	if off > 0 {
		if st.interp != nil {
			copy(dst[:off], st.interp.Synthesize(off))
		} else {
			for i := 0; i < off; i++ {
				dst[i] = 0
			}
		}
	}
	fi.ContentStart = int64(st.pos)
	fi.ContentOff = off
	for i := off; i < audio.FrameSamples; i++ {
		dst[i] = st.game.Samples[st.pos%st.game.Len()]
		st.pos++
	}
	if st.interp != nil {
		st.interp.Observe(dst[off:])
	}
	return fi
}

// NextContent returns the content position the next content sample will
// have (used to tie markers that begin during inserted silence).
func (st *Stream) NextContent() int64 { return int64(st.pos) }
