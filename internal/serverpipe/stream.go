package serverpipe

import (
	"ekho/internal/audio"
	"ekho/internal/compensator"
	"ekho/internal/dsp"
)

// FrameInfo describes one produced downlink frame: its sequence number,
// the content position of its first content sample (-1 for all-gap
// frames) and the in-frame offset where content begins.
type FrameInfo struct {
	Seq          uint32
	ContentStart int64
	ContentOff   int
}

// Stream produces the per-tick downlink frames for one compensable
// stream, tracking the mapping between transmitted frames and game-content
// positions. Compensation actions (silence insertion, content skip) are
// applied here; content positions are "unlooped" sample indices into an
// infinite repetition of the game clip.
type Stream struct {
	game        *audio.Buffer
	pos         int // next content sample to transmit
	silenceDebt int // gap samples still to insert
	seq         uint32
	// interp, when set, synthesizes inserted gaps from the surrounding
	// audio (PLC-style) instead of hard silence — the §4.4 future-work
	// enhancement.
	interp *compensator.Interpolator
	// Micro-resampling state (the drift regime's continuous action). The
	// fractional path engages on the first non-zero SetResamplePPM and
	// stays engaged; zero-drift sessions never touch it, so the integer
	// path above remains bit-identical to the pre-drift behavior.
	frac    bool
	posF    float64 // fractional content position (valid when frac)
	stepPPM float64 // commanded rate offset, ppm
}

// NewStream returns a stream over the (shared, read-only) game clip.
func NewStream(game *audio.Buffer) *Stream {
	return &Stream{game: game}
}

// EnableInterpolation switches inserted delay from silence to PLC-style
// synthesized audio.
func (st *Stream) EnableInterpolation() {
	st.interp = compensator.NewInterpolator()
}

// Apply registers a compensation action with this stream.
func (st *Stream) Apply(a compensator.Action) {
	st.silenceDebt += a.InsertFrames*audio.FrameSamples + a.InsertSamples
	skip := a.SkipFrames*audio.FrameSamples + a.SkipSamples
	if skip > 0 {
		// Skipping drains pending silence first (reverting an earlier
		// correction); any remainder drops content.
		if st.silenceDebt >= skip {
			st.silenceDebt -= skip
			skip = 0
		} else {
			skip -= st.silenceDebt
			st.silenceDebt = 0
		}
		st.pos += skip
		st.posF += float64(skip)
	}
}

// SetResamplePPM retunes the stream's content-consumption rate: each
// output sample advances the content position by 1 + ppm·1e-6 samples
// (positive = continuous skip, negative = continuous stretch). The first
// non-zero rate switches the stream onto the fractional read path
// permanently; a commanded rate of 0 before that is a no-op, preserving
// the integer path bit-exactly.
func (st *Stream) SetResamplePPM(ppm float64) {
	if !st.frac {
		if ppm == 0 {
			return
		}
		st.frac = true
		st.posF = float64(st.pos)
	}
	st.stepPPM = ppm
}

// ResamplePPM reports the commanded rate offset.
func (st *Stream) ResamplePPM() float64 { return st.stepPPM }

// Next fills dst (FrameSamples long; callers reuse one buffer to keep
// the path off the heap) with the next 20 ms frame and returns its frame
// info. Gap audio is silence by default, or synthesized continuation when
// interpolation is enabled.
func (st *Stream) Next(dst []float64) FrameInfo {
	if len(dst) != audio.FrameSamples {
		panic("serverpipe: Stream.Next requires 20 ms frames")
	}
	fi := FrameInfo{Seq: st.seq}
	st.seq++
	if st.silenceDebt >= audio.FrameSamples {
		st.silenceDebt -= audio.FrameSamples
		if st.interp != nil {
			copy(dst, st.interp.Synthesize(audio.FrameSamples))
		} else {
			for i := range dst {
				dst[i] = 0
			}
		}
		fi.ContentStart = -1
		return fi
	}
	off := st.silenceDebt
	st.silenceDebt = 0
	if off > 0 {
		if st.interp != nil {
			copy(dst[:off], st.interp.Synthesize(off))
		} else {
			for i := 0; i < off; i++ {
				dst[i] = 0
			}
		}
	}
	fi.ContentStart = int64(st.pos)
	fi.ContentOff = off
	if st.frac {
		// Fractional path: read the looped clip at posF through the
		// windowed-sinc kernel, advancing by the commanded rate. The
		// frame's content identity is the rounded start position —
		// within one sample of truth at micro-resampling rates.
		step := 1 + st.stepPPM*1e-6
		fi.ContentStart = int64(st.posF + 0.5)
		for i := off; i < audio.FrameSamples; i++ {
			dst[i] = dsp.InterpLooped(st.game.Samples, st.posF)
			st.posF += step
		}
		st.pos = int(st.posF + 0.5)
	} else {
		for i := off; i < audio.FrameSamples; i++ {
			dst[i] = st.game.Samples[st.pos%st.game.Len()]
			st.pos++
		}
	}
	if st.interp != nil {
		st.interp.Observe(dst[off:])
	}
	return fi
}

// NextContent returns the content position the next content sample will
// have (used to tie markers that begin during inserted silence).
func (st *Stream) NextContent() int64 { return int64(st.pos) }
