package serverpipe

// ChatSequencer orders the uplink chat packet stream: it reports how many
// packets were lost before the offered one (the caller conceals them to
// keep the estimator's timeline contiguous) and whether the packet is
// fresh (stale duplicates and reordered packets behind the cursor are
// dropped — their audio was already concealed).
type ChatSequencer struct {
	next   uint32
	synced bool
}

// NewChatSequencer returns a sequencer. startsAtZero pins the expected
// first sequence number to zero (the simulator's convention); otherwise
// the sequencer syncs to the first sequence number it sees (a hub client
// may join mid-stream).
func NewChatSequencer(startsAtZero bool) ChatSequencer {
	return ChatSequencer{synced: startsAtZero}
}

// Offer advances the cursor for one incoming packet.
func (q *ChatSequencer) Offer(seq uint32) (lost int, fresh bool) {
	if !q.synced {
		q.synced = true
		q.next = seq
	}
	if seq < q.next {
		return 0, false
	}
	lost = int(seq - q.next)
	q.next = seq + 1
	return lost, true
}
