package serverpipe

import (
	"math"

	"ekho/internal/audio"
)

// MarkerTimeSink receives resolved accessory-local marker playback times.
// estimator.Streamer implements it; benchmarks and tests can substitute a
// counting stub.
type MarkerTimeSink interface {
	AddMarkerTime(localTime float64)
}

// MarkerExpireSlack is how far (in content samples) accessory playback
// may run past a pending marker's content before the marker is abandoned.
// Ten seconds is far beyond any plausible uplink reorder, so expiry only
// removes markers that can never match — content the accessory skipped
// over, whose playback record will never exist. Without expiry such
// markers would pin the record book's eviction floor forever.
const MarkerExpireSlack = 10 * audio.SampleRate

// MarkerLedger tracks injected markers awaiting a covering playback
// record. Content positions are appended in increasing order (the screen
// stream's content position is monotonic).
type MarkerLedger struct {
	pending []int64
}

// Add registers a marker injected at the given content position.
func (l *MarkerLedger) Add(content int64) {
	l.pending = append(l.pending, content)
}

// Pending reports how many markers await resolution.
func (l *MarkerLedger) Pending() int { return len(l.pending) }

// MinPending returns the lowest pending marker content, or math.MaxInt64
// when nothing is pending (the record book's eviction floor).
func (l *MarkerLedger) MinPending() int64 {
	if len(l.pending) == 0 {
		return math.MaxInt64
	}
	return l.pending[0]
}

// Resolve matches pending markers against the record book: matched
// markers emit their accessory-local playback time to the sink; markers
// whose content lies MarkerExpireSlack behind the newest covered record
// are expired. Both paths filter the pending list in place (no
// allocation in steady state).
func (l *MarkerLedger) Resolve(book *RecordBook, times MarkerTimeSink, sink EventSink) {
	if len(l.pending) == 0 {
		return
	}
	remaining := l.pending[:0]
	for _, mc := range l.pending {
		if t, ok := book.Lookup(mc); ok {
			times.AddMarkerTime(t)
			sink.MarkerMatched(mc, t)
			continue
		}
		if book.MaxCovered() > mc+MarkerExpireSlack {
			sink.MarkerExpired(mc)
			continue
		}
		remaining = append(remaining, mc)
	}
	l.pending = remaining
}
