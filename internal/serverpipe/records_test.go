package serverpipe

import (
	"fmt"
	"testing"

	"ekho/internal/audio"
)

func TestRecordBookLookup(t *testing.T) {
	var b RecordBook
	b.Add(Record{ContentStart: 0, N: 960, LocalTime: 10})
	b.Add(Record{ContentStart: 960, N: 960, LocalTime: 10.02})
	got, ok := b.Lookup(1000)
	want := 10.02 + float64(1000-960)/audio.SampleRate
	if !ok || got != want {
		t.Fatalf("Lookup(1000) = %v,%v want %v,true", got, ok, want)
	}
	if _, ok := b.Lookup(5000); ok {
		t.Fatal("Lookup past coverage should miss")
	}
	if _, ok := b.Lookup(-1); ok {
		t.Fatal("Lookup before coverage should miss")
	}
}

func TestRecordBookOutOfOrderAdd(t *testing.T) {
	var b RecordBook
	b.Add(Record{ContentStart: 1920, N: 960, LocalTime: 3})
	b.Add(Record{ContentStart: 0, N: 960, LocalTime: 1})
	b.Add(Record{ContentStart: 960, N: 960, LocalTime: 2})
	for i, want := range []int64{0, 960, 1920} {
		if b.recs[i].ContentStart != want {
			t.Fatalf("recs[%d].ContentStart = %d want %d", i, b.recs[i].ContentStart, want)
		}
	}
	if got, ok := b.Lookup(960); !ok || got != 2 {
		t.Fatalf("Lookup(960) = %v,%v", got, ok)
	}
}

// TestEvictionProtectsPendingMarkers is the regression test for the hub
// truncation bug: a marker whose covering playback record is delayed (the
// chat packet carrying it arrives hundreds of packets late) must still
// match — eviction may not drop records that cover a pending marker, no
// matter how many newer records have piled up since.
func TestEvictionProtectsPendingMarkers(t *testing.T) {
	var (
		b      RecordBook
		ledger MarkerLedger
		sink   countingTimes
	)
	const markerContent = 10 * 960
	ledger.Add(markerContent)

	// The record covering the marker arrives, followed by far more than
	// RecordHighWater later records before the ledger next resolves
	// (delayed uplink: the chat audio that would resolve it is stuck).
	b.Add(Record{ContentStart: markerContent, N: 960, LocalTime: 42})
	for i := 0; i < RecordHighWater+300; i++ {
		c := int64(markerContent + (i+1)*960)
		b.Add(Record{ContentStart: c, N: 960, LocalTime: 42 + float64(i+1)*0.02})
		b.Evict(ledger.MinPending())
	}
	if b.Len() <= RecordLowWater {
		t.Fatalf("book over-evicted to %d records", b.Len())
	}

	ledger.Resolve(&b, &sink, NopSink{})
	if ledger.Pending() != 0 {
		t.Fatal("marker still pending: covering record was evicted")
	}
	if len(sink.times) != 1 || sink.times[0] != 42 {
		t.Fatalf("marker time %v want [42]", sink.times)
	}

	// With the marker resolved, eviction may now shrink the book.
	b.Evict(ledger.MinPending())
	if b.Len() != RecordLowWater {
		t.Fatalf("post-resolve eviction left %d records, want %d", b.Len(), RecordLowWater)
	}
}

func TestMarkerExpiry(t *testing.T) {
	var (
		b      RecordBook
		ledger MarkerLedger
		sink   countingTimes
		events eventCounter
	)
	// A marker injected into content the accessory skipped: no record will
	// ever cover it. Once playback runs MarkerExpireSlack past it, the
	// ledger must abandon it so the eviction floor is released.
	ledger.Add(1000)
	b.Add(Record{ContentStart: 2000, N: 960, LocalTime: 1})
	ledger.Resolve(&b, &sink, &events)
	if ledger.Pending() != 1 {
		t.Fatal("marker should still be pending within the slack window")
	}
	b.Add(Record{ContentStart: 1000 + MarkerExpireSlack + 1, N: 960, LocalTime: 2})
	ledger.Resolve(&b, &sink, &events)
	if ledger.Pending() != 0 || events.expired != 1 || len(sink.times) != 0 {
		t.Fatalf("pending=%d expired=%d times=%v", ledger.Pending(), events.expired, sink.times)
	}
}

func TestChatSequencer(t *testing.T) {
	q := NewChatSequencer(true)
	if lost, fresh := q.Offer(0); lost != 0 || !fresh {
		t.Fatalf("seq 0: lost=%d fresh=%v", lost, fresh)
	}
	if lost, fresh := q.Offer(3); lost != 2 || !fresh {
		t.Fatalf("seq 3: lost=%d fresh=%v", lost, fresh)
	}
	if _, fresh := q.Offer(2); fresh {
		t.Fatal("reordered packet behind cursor must be stale")
	}
	if lost, fresh := q.Offer(4); lost != 0 || !fresh {
		t.Fatalf("seq 4: lost=%d fresh=%v", lost, fresh)
	}

	mid := NewChatSequencer(false)
	if lost, fresh := mid.Offer(100); lost != 0 || !fresh {
		t.Fatalf("mid-stream join: lost=%d fresh=%v", lost, fresh)
	}
	if lost, _ := mid.Offer(102); lost != 1 {
		t.Fatalf("after join: lost=%d want 1", lost)
	}
}

// countingTimes is a MarkerTimeSink stub.
type countingTimes struct{ times []float64 }

func (c *countingTimes) AddMarkerTime(t float64) { c.times = append(c.times, t) }

// eventCounter counts EventSink callbacks.
type eventCounter struct {
	NopSink
	matched, expired int
}

func (e *eventCounter) MarkerMatched(int64, float64) { e.matched++ }
func (e *eventCounter) MarkerExpired(int64)          { e.expired++ }

// BenchmarkMatchMarkers measures marker↔record resolution against books of
// increasing size: binary-search lookup keeps the per-resolve cost
// logarithmic in the book size (the old linear scan was O(markers·records)
// per chat packet).
func BenchmarkMatchMarkers(b *testing.B) {
	for _, size := range []int{100, 400, 1600} {
		b.Run(fmt.Sprintf("book%d", size), func(b *testing.B) {
			var book RecordBook
			for i := 0; i < size; i++ {
				book.Add(Record{ContentStart: int64(i * 960), N: 960, LocalTime: float64(i) * 0.02})
			}
			var sink countingTimes
			var ledger MarkerLedger
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// Eight in-flight markers spread across the covered range —
				// a generous steady-state pending count.
				for j := 0; j < 8; j++ {
					ledger.Add(int64(j * size * 960 / 8))
				}
				sink.times = sink.times[:0]
				ledger.Resolve(&book, &sink, NopSink{})
				if ledger.Pending() != 0 {
					b.Fatal("unresolved markers")
				}
			}
		})
	}
}
