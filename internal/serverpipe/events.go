package serverpipe

import (
	"ekho/internal/compensator"
	"ekho/internal/estimator"
)

// EventSink receives the pipeline's lifecycle events — the uniform
// instrumentation seam every consumer (hub, simulator, experiments,
// future metrics/tracing) hooks into. Implementations must be cheap:
// events fire on the per-frame hot path. Embed NopSink to implement only
// the events of interest.
type EventSink interface {
	// MarkerInjected fires when a PN marker starts in the screen stream
	// at the given content position.
	MarkerInjected(content int64)
	// MarkerMatched fires when a pending marker's content was found in an
	// accessory playback record, yielding its local playback time.
	MarkerMatched(content int64, localTime float64)
	// MarkerExpired fires when a pending marker is abandoned because
	// accessory playback ran MarkerExpireSlack past its content (the
	// content was skipped and will never play).
	MarkerExpired(content int64)
	// ChatGapConcealed fires once per lost uplink packet concealed to
	// keep the chat timeline contiguous.
	ChatGapConcealed(seq uint32, startLocal float64)
	// ISDMeasurement fires for every finalized estimator measurement.
	ISDMeasurement(now float64, m estimator.Measurement)
	// CompensationAction fires when the compensator issues a correction
	// (the pipeline has already routed it to the owning stream).
	CompensationAction(now float64, a compensator.Action)
	// ResampleApplied fires when the drift regime retunes a stream's
	// content-consumption rate (the pipeline has already applied it).
	// Never fires unless Config.Drift.Enabled.
	ResampleApplied(now float64, r compensator.Resample)
}

// NopSink is an EventSink that ignores everything; embed it to implement
// a subset of the interface.
type NopSink struct{}

// MarkerInjected implements EventSink.
func (NopSink) MarkerInjected(int64) {}

// MarkerMatched implements EventSink.
func (NopSink) MarkerMatched(int64, float64) {}

// MarkerExpired implements EventSink.
func (NopSink) MarkerExpired(int64) {}

// ChatGapConcealed implements EventSink.
func (NopSink) ChatGapConcealed(uint32, float64) {}

// ISDMeasurement implements EventSink.
func (NopSink) ISDMeasurement(float64, estimator.Measurement) {}

// CompensationAction implements EventSink.
func (NopSink) CompensationAction(float64, compensator.Action) {}

// ResampleApplied implements EventSink.
func (NopSink) ResampleApplied(float64, compensator.Resample) {}
