package serverpipe

import (
	"testing"

	"ekho/internal/audio"
	"ekho/internal/codec"
	"ekho/internal/pn"
)

// newTestPipeline builds a pipeline over a bland sine clip with the paper's
// uplink codec, plus a matching encoder for synthesizing chat packets.
func newTestPipeline(tb testing.TB) (*Pipeline, *codec.Encoder) {
	tb.Helper()
	game := audio.FromSamples(audio.SampleRate, make([]float64, 4*audio.SampleRate))
	for i := range game.Samples {
		game.Samples[i] = 0.1 * float64(i%97) / 97
	}
	p := New(Config{
		Game: game,
		Seq:  pn.NewSequence(7, pn.DefaultLength),
	})
	return p, codec.NewEncoder(codec.SWB32)
}

// TestPipelineSteadyStateZeroAlloc asserts the per-frame server hot path —
// frame production with marker injection, and the chat uplink path through
// decode, marker resolution and estimation — allocates nothing once warm.
// This is the property that lets one hub process host hundreds of sessions
// without GC pressure (mirrors internal/codec/alloc_test.go).
func TestPipelineSteadyStateZeroAlloc(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second warmup")
	}
	p, enc := newTestPipeline(t)
	frame := make([]float64, audio.FrameSamples)
	silence := make([]float64, audio.FrameSamples)
	pkt, err := enc.EncodeTo(nil, silence)
	if err != nil {
		t.Fatal(err)
	}

	// Warm up ~15 s of session time: the detector's overlap-save blocks
	// (~2.7 s each) cycle several times, the record book reaches its
	// eviction bound, the injector log hits its limit and every scratch
	// buffer reaches steady capacity. Chat audio is silence, so no
	// detections fire (a detection path measurement would allocate, and
	// rightly so — it is not steady state).
	seq := uint32(0)
	at := 0.0
	for tick := 0; tick < 750; tick++ {
		p.NextScreenFrame(frame)
		fi := p.NextAccessoryFrame(frame)
		if fi.ContentStart >= 0 {
			p.OfferRecord(Record{
				ContentStart: fi.ContentStart,
				N:            audio.FrameSamples - fi.ContentOff,
				LocalTime:    float64(fi.ContentStart) / audio.SampleRate,
			})
		}
		p.OfferChat(seq, at, pkt)
		seq++
		at += frameSec
	}
	if p.PendingMarkers() != 0 {
		t.Fatalf("warmup left %d unresolved markers", p.PendingMarkers())
	}

	allocs := testing.AllocsPerRun(100, func() {
		p.NextScreenFrame(frame)
	})
	if allocs != 0 {
		t.Fatalf("NextScreenFrame allocates %v per frame, want 0", allocs)
	}
	allocs = testing.AllocsPerRun(100, func() {
		p.NextAccessoryFrame(frame)
	})
	if allocs != 0 {
		t.Fatalf("NextAccessoryFrame allocates %v per frame, want 0", allocs)
	}
	allocs = testing.AllocsPerRun(100, func() {
		p.OfferChat(seq, at, pkt)
		seq++
		at += frameSec
	})
	if allocs != 0 {
		t.Fatalf("OfferChat allocates %v per packet, want 0", allocs)
	}
}
