package compensator

import (
	"math"
	"testing"

	"ekho/internal/audio"
)

func toneFrames(freq float64, frames int) [][]float64 {
	out := make([][]float64, frames)
	for f := range out {
		fr := make([]float64, audio.FrameSamples)
		for i := range fr {
			t := float64(f*audio.FrameSamples+i) / audio.SampleRate
			fr[i] = 0.5 * math.Sin(2*math.Pi*freq*t)
		}
		out[f] = fr
	}
	return out
}

func TestInsertModeString(t *testing.T) {
	if InsertSilence.String() != "silence" || InsertInterpolated.String() != "interpolated" {
		t.Fatal("mode names")
	}
}

func TestInterpolatorContinuesPeriodicSignal(t *testing.T) {
	ip := NewInterpolator()
	for _, fr := range toneFrames(200, 4) { // 200 Hz → 240-sample period
		ip.Observe(fr)
	}
	syn := ip.Synthesize(audio.FrameSamples)
	// Synthesized audio must carry energy comparable to the source (the
	// decay makes it slightly quieter) and have the same dominant period.
	var p float64
	for _, v := range syn {
		p += v * v
	}
	p /= float64(len(syn))
	if p < 0.01 {
		t.Fatalf("synthesized power %g too low", p)
	}
	period := dominantPeriod(syn)
	if period < 200 || period > 280 {
		t.Fatalf("synthesized period %d, want ~240", period)
	}
}

func TestInterpolatorSilenceWithoutContext(t *testing.T) {
	ip := NewInterpolator()
	syn := ip.Synthesize(audio.FrameSamples)
	for _, v := range syn {
		if v != 0 {
			t.Fatal("no context should synthesize silence")
		}
	}
	// Silence context also yields silence (period 0).
	ip.Observe(make([]float64, 4*audio.FrameSamples))
	syn = ip.Synthesize(audio.FrameSamples)
	for _, v := range syn {
		if v != 0 {
			t.Fatal("silent context should synthesize silence")
		}
	}
}

func TestInterpolatorDecays(t *testing.T) {
	ip := NewInterpolator()
	for _, fr := range toneFrames(300, 4) {
		ip.Observe(fr)
	}
	long := ip.Synthesize(4 * audio.FrameSamples)
	first := rms(long[:audio.FrameSamples])
	last := rms(long[3*audio.FrameSamples:])
	if last >= first {
		t.Fatalf("sustained synthesis should decay: %g then %g", first, last)
	}
}

func TestEditorInterpolatedInsertionQuieterDiscontinuity(t *testing.T) {
	// Compare the worst sample-to-sample jump at insertion boundaries for
	// silence vs interpolated modes on a tonal stream.
	run := func(mode InsertMode) float64 {
		e := &FrameEditor{}
		e.SetInsertMode(mode)
		frames := toneFrames(250, 12)
		var out []float64
		for i, fr := range frames {
			if i == 6 {
				e.Apply(Action{InsertFrames: 2})
			}
			out = append(out, e.NextFrame(fr)...)
		}
		var maxJump float64
		for i := 1; i < len(out); i++ {
			if d := math.Abs(out[i] - out[i-1]); d > maxJump {
				maxJump = d
			}
		}
		return maxJump
	}
	silence := run(InsertSilence)
	interp := run(InsertInterpolated)
	if interp > silence {
		t.Fatalf("interpolated insertion jump %g should not exceed silence %g", interp, silence)
	}
}

func TestEditorModeDefaultsToSilence(t *testing.T) {
	e := &FrameEditor{}
	if e.InsertMode() != InsertSilence {
		t.Fatal("default mode")
	}
	e.Apply(Action{InsertFrames: 1})
	out := e.NextFrame(toneFrames(200, 1)[0])
	if rms(out) != 0 {
		t.Fatal("default insertion should be silence")
	}
}

func TestEditorInterpolatedPreservesFrameAccounting(t *testing.T) {
	e := &FrameEditor{}
	e.SetInsertMode(InsertInterpolated)
	frames := toneFrames(200, 8)
	e.Apply(Action{InsertFrames: 2})
	n := 0
	for _, fr := range frames {
		out := e.NextFrame(fr)
		if len(out) != audio.FrameSamples {
			t.Fatalf("frame %d length %d", n, len(out))
		}
		n++
	}
	if e.Buffered() != 2*audio.FrameSamples {
		t.Fatalf("buffered %d want 2 frames", e.Buffered())
	}
}

func TestDominantPeriodRange(t *testing.T) {
	// Pure 100 Hz → period 480.
	fr := toneFrames(100, 4)
	var h []float64
	for _, f := range fr {
		h = append(h, f...)
	}
	p := dominantPeriod(h)
	if p < 440 || p > 520 {
		t.Fatalf("period %d want ~480", p)
	}
	if dominantPeriod(make([]float64, 100)) != 0 {
		t.Fatal("silence period should be 0")
	}
}
