package compensator

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"ekho/internal/audio"
)

func TestHysteresisBelowThreshold(t *testing.T) {
	c := New(Config{})
	if a := c.Offer(0, 0.004); a != nil {
		t.Fatalf("4 ms below 5 ms threshold should not act: %+v", a)
	}
	if a := c.Offer(0, -0.004); a != nil {
		t.Fatal("negative small ISD should not act")
	}
	if c.Stats().Actions != 0 {
		t.Fatal("no actions expected")
	}
}

func TestPositiveISDDelaysAccessory(t *testing.T) {
	c := New(Config{})
	a := c.Offer(0, 0.060) // screen lags by 60 ms
	if a == nil {
		t.Fatal("expected action")
	}
	if a.Stream != AccessoryStream {
		t.Fatalf("stream %v want accessory", a.Stream)
	}
	if a.InsertFrames != 3 || a.SkipFrames != 0 {
		t.Fatalf("action %+v want insert 3 frames", a)
	}
	if math.Abs(a.TotalDelaySeconds()-0.060) > 1e-9 {
		t.Fatalf("delay %g", a.TotalDelaySeconds())
	}
}

func TestNegativeISDDelaysScreen(t *testing.T) {
	c := New(Config{})
	a := c.Offer(0, -0.436) // the Figure 9 startup case: controller leads by 436 ms
	if a == nil {
		t.Fatal("expected action")
	}
	if a.Stream != ScreenStream {
		t.Fatalf("stream %v want screen", a.Stream)
	}
	// 436 ms / 20 ms = 21.8 → 22 frames, matching the paper's "Ekho adds
	// 22 frames of 20 ms length".
	if a.InsertFrames != 22 {
		t.Fatalf("frames %d want 22", a.InsertFrames)
	}
}

func TestFrameQuantizationRounding(t *testing.T) {
	c := New(Config{})
	a := c.Offer(0, 0.024) // 24 ms → nearest frame is 1 (20 ms)
	if a == nil || a.InsertFrames != 1 {
		t.Fatalf("24 ms: %+v", a)
	}
	c2 := New(Config{})
	a2 := c2.Offer(0, 0.031) // 31 ms → 2 frames (40 ms) is nearest
	if a2 == nil || a2.InsertFrames != 2 {
		t.Fatalf("31 ms: %+v", a2)
	}
	// 7 ms: above hysteresis but rounds to 0 frames → no action in
	// whole-frame mode.
	c3 := New(Config{})
	if a3 := c3.Offer(0, 0.007); a3 != nil {
		t.Fatalf("7 ms whole-frame: %+v", a3)
	}
}

func TestSubFrameMode(t *testing.T) {
	c := New(Config{SubFrame: true})
	a := c.Offer(0, 0.0075) // 7.5 ms = 360 samples
	if a == nil {
		t.Fatal("sub-frame mode should act on 7.5 ms")
	}
	if a.InsertFrames != 0 || a.InsertSamples != 360 {
		t.Fatalf("action %+v want 360 samples", a)
	}
	if math.Abs(a.TotalDelaySeconds()-0.0075) > 1e-9 {
		t.Fatalf("delay %g", a.TotalDelaySeconds())
	}
}

func TestSettlingWindowIgnoresMeasurements(t *testing.T) {
	c := New(Config{SettleSec: 4})
	if c.Offer(10, 0.1) == nil {
		t.Fatal("first measurement should act")
	}
	if !c.Settling(11) {
		t.Fatal("should be settling")
	}
	if a := c.Offer(12, 0.5); a != nil {
		t.Fatalf("measurement during settling should be ignored: %+v", a)
	}
	if c.Stats().IgnoredMeasurements != 1 {
		t.Fatalf("ignored %d", c.Stats().IgnoredMeasurements)
	}
	if c.Offer(14.5, 0.1) == nil {
		t.Fatal("after settling should act again")
	}
}

func TestAppliedScreenDelayBookkeeping(t *testing.T) {
	c := New(Config{})
	c.Offer(0, -0.1) // delay screen by 100 ms
	if math.Abs(c.AppliedScreenDelay()-0.1) > 1e-9 {
		t.Fatalf("applied %g want 0.1", c.AppliedScreenDelay())
	}
	c.Offer(100, 0.04) // delay accessory by 40 ms → screen relatively -40
	if math.Abs(c.AppliedScreenDelay()-0.06) > 1e-9 {
		t.Fatalf("applied %g want 0.06", c.AppliedScreenDelay())
	}
}

func TestFrameEditorInsertDelaysContent(t *testing.T) {
	e := &FrameEditor{}
	e.Apply(Action{Stream: AccessoryStream, InsertFrames: 2})
	frames := make([][]float64, 6)
	for i := range frames {
		frames[i] = constFrame(float64(i + 1))
	}
	var outs [][]float64
	for _, f := range frames {
		outs = append(outs, e.NextFrame(f))
	}
	// First two outputs are silence; then content resumes from frame 1.
	for i := 0; i < 2; i++ {
		if rms(outs[i]) != 0 {
			t.Fatalf("output %d should be silence", i)
		}
	}
	for i := 2; i < 6; i++ {
		want := float64(i - 1)
		if outs[i][0] != want {
			t.Fatalf("output %d starts with %g want %g", i, outs[i][0], want)
		}
	}
	if e.Buffered() != 2*audio.FrameSamples {
		t.Fatalf("buffered %d", e.Buffered())
	}
}

func TestFrameEditorSkipDrainsInsertedDelay(t *testing.T) {
	e := &FrameEditor{}
	e.Apply(Action{InsertFrames: 2})
	for i := 0; i < 4; i++ {
		e.NextFrame(constFrame(float64(i + 1)))
	}
	// Two frames queued. Skip one: the next output should jump ahead.
	e.Apply(Action{SkipFrames: 1})
	out := e.NextFrame(constFrame(5))
	// Queue was [3,4]; skip removes 3; output should be 4.
	if out[0] != 4 {
		t.Fatalf("after skip, output starts with %g want 4", out[0])
	}
	if e.Buffered() != audio.FrameSamples {
		t.Fatalf("buffered %d want one frame", e.Buffered())
	}
}

func TestFrameEditorSkipWithoutQueueDropsContent(t *testing.T) {
	e := &FrameEditor{}
	e.Apply(Action{SkipFrames: 1})
	out := e.NextFrame(constFrame(1))
	if rms(out) != 0 {
		t.Fatal("skip without queue should emit silence")
	}
	out = e.NextFrame(constFrame(2))
	if out[0] != 2 {
		t.Fatalf("content should resume at next frame, got %g", out[0])
	}
}

func TestFrameEditorSubFrameInsert(t *testing.T) {
	e := &FrameEditor{}
	e.Apply(Action{InsertSamples: 100})
	out := e.NextFrame(constFrame(7))
	// First 100 samples silence, then content.
	for i := 0; i < 100; i++ {
		if out[i] != 0 {
			t.Fatalf("sample %d should be silence", i)
		}
	}
	if out[100] != 7 {
		t.Fatalf("content should start at 100, got %g", out[100])
	}
	if e.Buffered() != 100 {
		t.Fatalf("buffered %d want 100", e.Buffered())
	}
}

func TestFrameEditorSubFrameTrim(t *testing.T) {
	e := &FrameEditor{}
	e.Apply(Action{InsertSamples: 300})
	e.NextFrame(constFrame(1))
	e.Apply(Action{SkipSamples: 200})
	out := e.NextFrame(constFrame(2))
	// Queue held the last 300 samples of frame 1; trimming 200 leaves
	// 100 samples of frame 1 then frame 2 content.
	if out[0] != 1 || out[99] != 1 {
		t.Fatal("remaining frame-1 samples should lead")
	}
	if out[100] != 2 {
		t.Fatalf("frame-2 content should follow, got %g", out[100])
	}
}

func TestFrameEditorIdentityWhenIdle(t *testing.T) {
	e := &FrameEditor{}
	in := constFrame(3)
	out := e.NextFrame(in)
	if &out[0] != &in[0] {
		t.Fatal("idle editor should pass frames through without copying")
	}
}

func TestEditorConservationProperty(t *testing.T) {
	// Property: content samples out = content samples in + silence
	// inserted - content dropped. We track totals over random actions.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := &FrameEditor{}
		contentIn := 0
		var outFrames int
		for step := 0; step < 200; step++ {
			switch rng.Intn(10) {
			case 0:
				e.Apply(Action{InsertFrames: 1 + rng.Intn(3)})
			case 1:
				e.Apply(Action{SkipFrames: 1 + rng.Intn(2)})
			default:
				out := e.NextFrame(constFrame(1))
				if len(out) != audio.FrameSamples {
					return false
				}
				contentIn++
				outFrames++
			}
		}
		// Frames out must equal frames in (rate preserved), regardless of
		// edits.
		return outFrames == contentIn
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestStreamString(t *testing.T) {
	if ScreenStream.String() != "screen" || AccessoryStream.String() != "accessory" {
		t.Fatal("stream names")
	}
}

func constFrame(v float64) []float64 {
	f := make([]float64, audio.FrameSamples)
	for i := range f {
		f[i] = v
	}
	return f
}

func rms(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v * v
	}
	return math.Sqrt(s / float64(len(x)))
}
