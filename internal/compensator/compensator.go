// Package compensator implements Ekho-Compensator (paper §4.4 and §5.1):
// the server-side feedback loop that consumes ISD measurements from
// Ekho-Estimator and re-aligns the screen and accessory streams by
// inserting silence frames into the leading stream or skipping frames of
// the lagging one.
//
// Stability rules from §5.1:
//   - a correction is only initiated when |ISD| exceeds a minimum
//     threshold (5 ms suggested), since small wander is normal;
//   - once a correction starts, several seconds pass before it reflects in
//     measurements, so new ISD measurements are ignored during a settling
//     window;
//   - corrections are quantized to whole 20 ms frames in the baseline
//     implementation (matching §6.1: "we can have errors up to 10 ms"),
//     with an optional sub-frame mode that trims fractions of a frame.
package compensator

import (
	"math"

	"ekho/internal/audio"
)

// Stream identifies which stream a compensation action applies to.
type Stream int

// The two downlink streams.
const (
	ScreenStream Stream = iota
	AccessoryStream
)

// String implements fmt.Stringer.
func (s Stream) String() string {
	if s == ScreenStream {
		return "screen"
	}
	return "accessory"
}

// Action is a compensation command for the stream schedulers.
type Action struct {
	// Stream is the stream to modify.
	Stream Stream
	// InsertFrames > 0 inserts that many silence frames (delaying the
	// stream); SkipFrames > 0 drops that many frames (advancing it).
	InsertFrames int
	SkipFrames   int
	// InsertSamples/SkipSamples carry the sub-frame remainder when
	// sub-frame mode is enabled.
	InsertSamples int
	SkipSamples   int
}

// TotalDelaySeconds returns the signed latency change the action applies to
// its stream (positive = stream delayed).
func (a Action) TotalDelaySeconds() float64 {
	ins := float64(a.InsertFrames*audio.FrameSamples + a.InsertSamples)
	skp := float64(a.SkipFrames*audio.FrameSamples + a.SkipSamples)
	return (ins - skp) / audio.SampleRate
}

// Config tunes the compensation loop.
type Config struct {
	// MinCorrectionSec is the hysteresis threshold (default 5 ms).
	MinCorrectionSec float64
	// SettleSec is how long new measurements are ignored after a
	// correction is issued (default 6 s: the estimator's sliding window
	// plus uplink delay; the paper observes a 4-6 s response time).
	SettleSec float64
	// SubFrame enables fractional-frame corrections ("a more involved
	// implementation could add or skip fractions of frames, and
	// synchronize below the 10 ms bound", §6.1).
	SubFrame bool
}

func (c Config) withDefaults() Config {
	if c.MinCorrectionSec == 0 {
		c.MinCorrectionSec = 0.005
	}
	if c.SettleSec == 0 {
		c.SettleSec = 6
	}
	return c
}

// Compensator turns ISD measurements into frame insert/skip actions.
type Compensator struct {
	cfg Config
	// settleUntil is the local time before which measurements are ignored.
	settleUntil float64
	// appliedScreenDelay tracks cumulative extra delay added to the screen
	// stream (negative = screen advanced), for introspection/tests.
	appliedScreenDelay float64
	actions            int
	ignored            int
}

// New returns a compensator with the given configuration.
func New(cfg Config) *Compensator {
	return &Compensator{cfg: cfg.withDefaults(), settleUntil: math.Inf(-1)}
}

// Offer presents one ISD measurement taken at local time now (seconds).
// If a correction is warranted, the action to apply is returned; otherwise
// nil. Sign convention: positive ISD means the screen audio is heard
// *after* the accessory audio (screen lags), so the accessory stream is
// delayed by inserting silence; negative ISD delays the screen stream.
func (c *Compensator) Offer(now, isdSeconds float64) *Action {
	if now < c.settleUntil {
		c.ignored++
		return nil
	}
	if math.Abs(isdSeconds) < c.cfg.MinCorrectionSec {
		return nil
	}
	act := c.quantize(isdSeconds)
	if act == nil {
		return nil
	}
	c.actions++
	c.settleUntil = now + c.cfg.SettleSec
	c.appliedScreenDelay += screenDelayOf(*act)
	return act
}

// quantize converts an ISD into a frame-granular action.
func (c *Compensator) quantize(isd float64) *Action {
	mag := math.Abs(isd)
	frames := int(mag*audio.SampleRate) / audio.FrameSamples
	rem := int(math.Round(mag*audio.SampleRate)) - frames*audio.FrameSamples
	if !c.cfg.SubFrame {
		// Round to the nearest whole frame.
		if rem >= audio.FrameSamples/2 {
			frames++
		}
		rem = 0
		if frames == 0 {
			return nil
		}
	}
	a := &Action{}
	if isd > 0 {
		// Screen lags: delay the accessory stream.
		a.Stream = AccessoryStream
		a.InsertFrames = frames
		a.InsertSamples = rem
	} else {
		// Screen leads (rare, §5.1): delay the screen stream.
		a.Stream = ScreenStream
		a.InsertFrames = frames
		a.InsertSamples = rem
	}
	return a
}

func screenDelayOf(a Action) float64 {
	d := a.TotalDelaySeconds()
	if a.Stream == ScreenStream {
		return d
	}
	return -d
}

// Settling reports whether the compensator is inside its settling window.
func (c *Compensator) Settling(now float64) bool { return now < c.settleUntil }

// AppliedScreenDelay returns the cumulative delay added to the screen
// stream relative to the accessory stream (negative values mean the
// accessory stream has been delayed more).
func (c *Compensator) AppliedScreenDelay() float64 { return c.appliedScreenDelay }

// Stats reports loop counters.
type Stats struct {
	Actions, IgnoredMeasurements int
}

// Stats returns cumulative counters.
func (c *Compensator) Stats() Stats {
	return Stats{Actions: c.actions, IgnoredMeasurements: c.ignored}
}

// FrameEditor applies actions to a live frame stream. Each downlink stream
// owns one editor; the session scheduler calls NextFrame with the next
// game-audio frame and receives the frame to actually transmit (possibly a
// silence frame, with the input deferred, or a skip).
type FrameEditor struct {
	pendingInsert int // silence frames still to emit
	pendingSkip   int // input frames still to drop
	pendingTrim   int // samples to trim from queued audio (sub-frame skip)
	queue         [][]float64
	insertMode    InsertMode    // silence (default) or interpolated
	interp        *Interpolator // PLC-style gap synthesis state
	blendNext     bool          // cross-fade the next content frame after a gap
}

// Apply registers an action with the editor (insert and skip may both be
// present for sub-frame corrections; sub-frame remainders are rounded into
// the sample-level trim below).
func (e *FrameEditor) Apply(a Action) {
	e.pendingInsert += a.InsertFrames
	e.pendingSkip += a.SkipFrames
	// Sub-frame remainders are applied as partial silence prepend/trim on
	// the next frame.
	if a.InsertSamples > 0 {
		e.queue = append(e.queue, make([]float64, a.InsertSamples))
	}
	if a.SkipSamples > 0 {
		e.pendingTrim += a.SkipSamples
	}
}

// NextFrame feeds one 20 ms input frame through the editor and returns the
// frame to transmit. The returned slice is always FrameSamples long.
//
// Skips preferentially drain previously inserted delay (queued samples) so
// that reverting an earlier correction is artifact-free; if no delay is
// queued, the input frame's content is dropped and a silence frame fills
// the tick — the audible equivalent of the paper's "skipping frames (or
// temporarily faster playback) at the streaming device".
func (e *FrameEditor) NextFrame(in []float64) []float64 {
	for e.pendingSkip > 0 {
		e.pendingSkip--
		if e.Buffered() >= audio.FrameSamples {
			e.pendingTrim += audio.FrameSamples
			continue
		}
		// Nothing queued: drop this input's content.
		return make([]float64, audio.FrameSamples)
	}
	if e.pendingInsert > 0 {
		e.pendingInsert--
		e.stash(in)
		if e.insertMode == InsertInterpolated {
			e.blendNext = true
		}
		return e.gapFrame()
	}
	out := e.dequeue(in)
	if e.interp != nil {
		if e.blendNext {
			// Copy-on-write: out may alias the caller's frame.
			blended := make([]float64, len(out))
			copy(blended, out)
			e.interp.BlendIn(blended)
			out = blended
			e.blendNext = false
		}
		// History tracks the TRANSMITTED stream (what the listener
		// hears), so a later gap continues seamlessly from it.
		e.interp.Observe(out)
	}
	return out
}

// gapFrame produces one frame of inserted delay: silence in the baseline
// mode, or PLC-style synthesized audio in interpolated mode (§4.4's
// future-work enhancement).
func (e *FrameEditor) gapFrame() []float64 {
	if e.insertMode == InsertInterpolated && e.interp != nil {
		return e.interp.Synthesize(audio.FrameSamples)
	}
	return make([]float64, audio.FrameSamples)
}

// stash queues an input frame displaced by an inserted silence frame.
func (e *FrameEditor) stash(in []float64) {
	cp := make([]float64, len(in))
	copy(cp, in)
	e.queue = append(e.queue, cp)
}

// dequeue returns queued samples ahead of the current input, maintaining
// FIFO order and frame alignment.
func (e *FrameEditor) dequeue(in []float64) []float64 {
	if len(e.queue) == 0 && e.pendingTrim == 0 {
		return in
	}
	// Append the new input to the queue and emit exactly one frame from
	// the front, applying any pending sample trim.
	e.stash(in)
	out := make([]float64, 0, audio.FrameSamples)
	for len(out) < audio.FrameSamples {
		if len(e.queue) == 0 {
			out = append(out, make([]float64, audio.FrameSamples-len(out))...)
			break
		}
		head := e.queue[0]
		if e.pendingTrim > 0 {
			n := e.pendingTrim
			if n > len(head) {
				n = len(head)
			}
			head = head[n:]
			e.pendingTrim -= n
			if len(head) == 0 {
				e.queue = e.queue[1:]
				continue
			}
		}
		need := audio.FrameSamples - len(out)
		if len(head) <= need {
			out = append(out, head...)
			e.queue = e.queue[1:]
		} else {
			out = append(out, head[:need]...)
			e.queue[0] = head[need:]
		}
	}
	return out
}

// Buffered returns the number of samples currently queued in the editor.
func (e *FrameEditor) Buffered() int {
	n := 0
	for _, q := range e.queue {
		n += len(q)
	}
	return n
}
