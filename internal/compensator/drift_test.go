package compensator

import (
	"math"
	"math/rand"
	"testing"

	"ekho/internal/estimator"
)

// driftSim closes the loop analytically: a device with a true SRO
// produces ISD measurements whose slope is sro + appliedPPM·1e-6, and the
// DriftLoop retunes until the residual slope vanishes.
type driftSim struct {
	sroPPM  float64
	isd     float64 // current ISD, seconds
	applied float64 // commanded rate, ppm
	noise   float64
	rng     *rand.Rand
}

func (s *driftSim) step(dt float64) float64 {
	s.isd += (s.sroPPM + s.applied) * 1e-6 * dt
	v := s.isd
	if s.noise > 0 {
		v += s.noise * s.rng.NormFloat64()
	}
	return v
}

// runLoop drives tracker + loop for d seconds at the marker cadence and
// returns the last commanded rate plus counters.
func runLoop(t *testing.T, loop *DriftLoop, sim *driftSim, seconds float64) (actions, resamples int) {
	t.Helper()
	tr := estimator.NewDriftTracker(estimator.DriftConfig{})
	const dt = 1.5
	for now := 0.0; now < seconds; now += dt {
		isd := sim.step(dt)
		tr.Add(now, isd)
		act, rs := loop.Offer(now, isd, tr.Fit())
		if act != nil && rs != nil {
			t.Fatal("both discrete and resample action in one offer")
		}
		if rs != nil {
			if rs.Stream != AccessoryStream {
				t.Fatalf("resample on %v, want accessory", rs.Stream)
			}
			sim.applied = rs.PPM
			tr.Reset()
			resamples++
		}
		if act != nil {
			// Apply the discrete correction to the simulated ISD.
			if act.Stream == AccessoryStream {
				sim.isd -= act.TotalDelaySeconds()
			} else {
				sim.isd += act.TotalDelaySeconds()
			}
			tr.Reset()
			actions++
		}
	}
	return actions, resamples
}

// The loop must converge on the cancelling rate for a true SRO and hold
// the residual slope inside the release band.
func TestDriftLoopConvergesOnSRO(t *testing.T) {
	for _, sro := range []float64{100, -100, 200, -50} {
		loop := NewDriftLoop(DriftConfig{Enabled: true}, New(Config{}))
		sim := &driftSim{sroPPM: sro}
		_, resamples := runLoop(t, loop, sim, 120)
		if resamples == 0 {
			t.Fatalf("sro=%v: never engaged", sro)
		}
		residual := sro + loop.AppliedPPM()
		if math.Abs(residual) > loop.cfg.ReleasePPM {
			t.Errorf("sro=%v ppm: applied %.1f ppm leaves residual %.1f ppm (> release band %v)",
				sro, loop.AppliedPPM(), residual, loop.cfg.ReleasePPM)
		}
		if !loop.Engaged() {
			t.Errorf("sro=%v: loop not engaged after convergence", sro)
		}
	}
}

// Zero drift with realistic measurement noise must never engage the
// resampling regime (the t-statistic gate) — and with the regime disabled
// the loop must be a bit-exact passthrough to the level compensator.
func TestDriftLoopNoFalseEngage(t *testing.T) {
	loop := NewDriftLoop(DriftConfig{Enabled: true}, New(Config{}))
	sim := &driftSim{sroPPM: 0, noise: 0.0004, rng: rand.New(rand.NewSource(11))}
	_, resamples := runLoop(t, loop, sim, 300)
	if resamples != 0 {
		t.Fatalf("engaged %d times on a drift-free noisy stream", resamples)
	}
	if loop.AppliedPPM() != 0 || loop.Engaged() {
		t.Fatal("rate commanded without drift")
	}
}

// Disabled drift must defer to the level compensator with the RAW
// measurement — identical offers must yield identical actions.
func TestDriftLoopDisabledPassthrough(t *testing.T) {
	direct := New(Config{})
	wrapped := NewDriftLoop(DriftConfig{}, New(Config{}))
	tr := estimator.NewDriftTracker(estimator.DriftConfig{})
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 100; i++ {
		now := float64(i) * 1.5
		isd := 0.012*math.Sin(float64(i)/9) + 0.002*rng.NormFloat64()
		tr.Add(now, isd)
		want := direct.Offer(now, isd)
		got, rs := wrapped.Offer(now, isd, tr.Fit())
		if rs != nil {
			t.Fatal("resample issued while disabled")
		}
		if (want == nil) != (got == nil) {
			t.Fatalf("offer %d: passthrough diverged (want %v, got %v)", i, want, got)
		}
		if want != nil && *want != *got {
			t.Fatalf("offer %d: action diverged: want %+v got %+v", i, *want, *got)
		}
	}
}

// Hysteresis: a slope between the release and engage thresholds retunes
// only an already-engaged loop.
func TestDriftLoopHysteresis(t *testing.T) {
	mk := func() estimator.DriftFit {
		return estimator.DriftFit{
			Valid:          true,
			SlopeSecPerSec: 20e-6, // between release (10) and engage (30)
			SlopeStdErr:    1e-6,
			LevelSeconds:   0,
			Points:         16,
			SpanSec:        20,
		}
	}
	fresh := NewDriftLoop(DriftConfig{Enabled: true}, New(Config{}))
	if _, rs := fresh.Offer(0, 0, mk()); rs != nil {
		t.Fatal("mid-band slope engaged a fresh loop")
	}
	engaged := NewDriftLoop(DriftConfig{Enabled: true}, New(Config{}))
	big := mk()
	big.SlopeSecPerSec = 100e-6
	if _, rs := engaged.Offer(0, 0, big); rs == nil {
		t.Fatal("large significant slope did not engage")
	}
	// Past the settle window, the mid-band slope now retunes.
	if _, rs := engaged.Offer(100, 0, mk()); rs == nil {
		t.Fatal("mid-band slope did not retune an engaged loop")
	}
	// Below the release band it holds the rate.
	small := mk()
	small.SlopeSecPerSec = 5e-6
	before := engaged.AppliedPPM()
	if _, rs := engaged.Offer(200, 0, small); rs != nil {
		t.Fatal("slope inside release band still retuned")
	}
	if engaged.AppliedPPM() != before {
		t.Fatal("released loop changed its rate")
	}
}

// The commanded rate must clamp at MaxPPM even when the fits keep
// demanding more, and engaged retunes may move at most MaxStepPPM per
// settle window.
func TestDriftLoopClampsRate(t *testing.T) {
	loop := NewDriftLoop(DriftConfig{Enabled: true}, New(Config{}))
	fit := func(ppm float64) estimator.DriftFit {
		return estimator.DriftFit{
			Valid: true, SlopeSecPerSec: ppm * 1e-6, SlopeStdErr: 1e-6,
			Points: 16, SpanSec: 20,
		}
	}
	// First engagement jumps straight to the estimate (just inside the
	// sanity gate).
	_, rs := loop.Offer(0, 0, fit(loop.cfg.MaxPPM-10))
	if rs == nil {
		t.Fatal("no engagement retune")
	}
	if got := rs.PPM; got != -(loop.cfg.MaxPPM - 10) {
		t.Fatalf("engagement rate %v, want %v", got, -(loop.cfg.MaxPPM - 10))
	}
	// Once engaged, a retune moves at most MaxStepPPM...
	_, rs = loop.Offer(100, 0, fit(loop.cfg.MaxPPM-10))
	if rs == nil {
		t.Fatal("no engaged retune")
	}
	if want := -(loop.cfg.MaxPPM - 10) - loop.cfg.MaxStepPPM; math.Abs(rs.PPM-want) > 1e-9 && rs.PPM != -loop.cfg.MaxPPM {
		t.Fatalf("engaged retune %v, want step-clamped %v or rate-clamped %v", rs.PPM, want, -loop.cfg.MaxPPM)
	}
	// ...and the commanded rate never exceeds ±MaxPPM no matter how many
	// rounds demand more.
	for i := 0; i < 10; i++ {
		loop.Offer(200+float64(i)*100, 0, fit(loop.cfg.MaxPPM-10))
	}
	if math.Abs(loop.AppliedPPM()) != loop.cfg.MaxPPM {
		t.Fatalf("rate %v not clamped to ±%v", loop.AppliedPPM(), loop.cfg.MaxPPM)
	}
}

// A fit steeper than MaxPPM is a polluted window (a correction step read
// as slope), not a plausible oscillator: the loop must ignore it.
func TestDriftLoopRejectsImplausibleSlope(t *testing.T) {
	loop := NewDriftLoop(DriftConfig{Enabled: true}, New(Config{}))
	junk := estimator.DriftFit{
		Valid: true, SlopeSecPerSec: 5000e-6, SlopeStdErr: 1e-6,
		Points: 16, SpanSec: 20,
	}
	if _, rs := loop.Offer(0, 0, junk); rs != nil {
		t.Fatalf("implausible %.0f ppm slope engaged the loop (%+.1f ppm)", 5000.0, rs.PPM)
	}
}

// RateScale converts ppm to the content step used by the stream reader.
func TestResampleRateScale(t *testing.T) {
	r := Resample{Stream: AccessoryStream, PPM: 100}
	if got := r.RateScale(); math.Abs(got-1.0001) > 1e-12 {
		t.Fatalf("RateScale = %v, want 1.0001", got)
	}
}
