package compensator

import (
	"math"

	"ekho/internal/audio"
)

// The paper leaves one enhancement to future work (§4.4): "Since injecting
// silence periods can deteriorate audio quality, a better alternative is
// to use packet loss concealment techniques and add interpolated audio
// instead of silence periods." This file implements that enhancement: a
// waveform-similarity overlap-add (WSOLA-style) stretcher that synthesizes
// the inserted delay from the surrounding game audio, so corrections are
// far less audible than hard silence gaps.

// InsertMode selects how inserted delay is synthesized.
type InsertMode int

// Insertion strategies.
const (
	// InsertSilence inserts zero samples (the paper's baseline).
	InsertSilence InsertMode = iota
	// InsertInterpolated synthesizes the gap by overlap-adding repeated
	// pitch-length segments of the preceding audio (PLC-style).
	InsertInterpolated
)

// String implements fmt.Stringer.
func (m InsertMode) String() string {
	if m == InsertInterpolated {
		return "interpolated"
	}
	return "silence"
}

// Interpolator synthesizes gap audio from recent history. Synthesis is
// stateful: consecutive Synthesize calls continue the same waveform
// (phase and decay carry over) until Observe sees real audio again.
type Interpolator struct {
	// history holds the most recent real samples.
	history []float64
	// maxHistory bounds memory (default 4 frames).
	maxHistory int

	// Active synthesis state (nil template = re-derive on next call).
	synTmpl []float64
	synPos  int
	synGain float64
}

// NewInterpolator returns an interpolator with 4 frames of context.
func NewInterpolator() *Interpolator {
	return &Interpolator{maxHistory: 4 * audio.FrameSamples}
}

// Observe feeds real stream audio into the history and ends any active
// synthesis run.
func (ip *Interpolator) Observe(samples []float64) {
	ip.history = append(ip.history, samples...)
	if len(ip.history) > ip.maxHistory {
		ip.history = append([]float64(nil), ip.history[len(ip.history)-ip.maxHistory:]...)
	}
	ip.synTmpl = nil
}

// Synthesize produces n samples continuing the history plausibly: it finds
// the waveform period by autocorrelation over the recent frames, then
// repeats period-length chunks with a raised-cosine seam cross-fade and a
// gentle decay (as PLC algorithms do for sustained loss). Consecutive
// calls continue seamlessly.
func (ip *Interpolator) Synthesize(n int) []float64 {
	out := make([]float64, n)
	if ip.synTmpl == nil {
		h := ip.history
		if len(h) < audio.FrameSamples {
			return out // not enough context: silence
		}
		period := dominantPeriod(h)
		if period <= 0 {
			return out
		}
		ip.synTmpl = append([]float64(nil), h[len(h)-period:]...)
		ip.synPos = 0
		ip.synGain = 1.0
	}
	tmpl := ip.synTmpl
	period := len(tmpl)
	if period == 0 {
		return out
	}
	// Repeating the last period continues the waveform with at most the
	// period-estimation error at each seam; the energy decays smoothly
	// per sample (0.85 per repeat, as PLC algorithms do for sustained
	// loss) so there are no stepwise gain jumps.
	decayStep := math.Pow(0.85, 1/float64(period))
	for pos := 0; pos < n; pos++ {
		out[pos] = tmpl[ip.synPos%period] * ip.synGain
		ip.synPos++
		ip.synGain *= decayStep
	}
	return out
}

// dominantPeriod estimates the strongest repetition period of the signal
// tail in samples (bounded to 2.5-20 ms, i.e. 50-400 Hz fundamentals and
// their audible textures), with a coarse scan refined to single-sample
// resolution. Returns 0 for silence.
func dominantPeriod(h []float64) int {
	const lo, hi = 120, 960 // 2.5 ms .. 20 ms at 48 kHz
	n := len(h)
	window := 2 * hi
	if n < window+hi {
		window = n / 2
	}
	seg := h[n-window:]
	var energy float64
	for _, v := range seg {
		energy += v * v
	}
	if energy < 1e-9 {
		return 0
	}
	score := func(lag int) float64 {
		var sc float64
		for i := 0; i < window-lag; i++ {
			sc += seg[i] * seg[i+lag]
		}
		return sc / float64(window-lag)
	}
	bestLag, bestScore := 0, math.Inf(-1)
	for lag := lo; lag <= hi && lag < window; lag += 4 {
		if sc := score(lag); sc > bestScore {
			bestScore, bestLag = sc, lag
		}
	}
	// Refine around the coarse winner.
	for lag := maxOf(lo, bestLag-3); lag <= bestLag+3 && lag < window; lag++ {
		if sc := score(lag); sc > bestScore {
			bestScore, bestLag = sc, lag
		}
	}
	return bestLag
}

func maxOf(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// blendFadeSamples is the cross-fade length used when real content resumes
// after a synthesized gap (5 ms).
const blendFadeSamples = 240

// BlendIn cross-fades the interpolator's continuation into the head of
// dst, hiding the phase discontinuity where real (delayed) content resumes
// after a synthesized gap.
func (ip *Interpolator) BlendIn(dst []float64) {
	n := blendFadeSamples
	if n > len(dst) {
		n = len(dst)
	}
	if n == 0 {
		return
	}
	syn := ip.Synthesize(n)
	for i := 0; i < n; i++ {
		w := 0.5 - 0.5*math.Cos(math.Pi*float64(i)/float64(n)) // 0 → 1
		dst[i] = dst[i]*w + syn[i]*(1-w)
	}
}

// SetInsertMode switches the editor's insertion strategy. The interpolated
// mode requires the editor to see the real stream content via NextFrame,
// which it already does.
func (e *FrameEditor) SetInsertMode(m InsertMode) {
	e.insertMode = m
	if m == InsertInterpolated && e.interp == nil {
		e.interp = NewInterpolator()
	}
}

// InsertMode reports the current insertion strategy.
func (e *FrameEditor) InsertMode() InsertMode { return e.insertMode }
