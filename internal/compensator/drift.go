package compensator

import (
	"math"

	"ekho/internal/estimator"
)

// Micro-resampling regime.
//
// Discrete silence/skip corrections assume ISD is a level: fix it once
// and it stays fixed. Under a sample-rate offset the ISD is a ramp, and a
// whole-frame loop can only chase it with a ±10 ms sawtooth (corrections
// below half a frame round to nothing, so the ramp must reach ~10 ms
// before each step). The drift regime cancels the ramp at its source:
// a continuous micro-resampling action retunes the accessory stream's
// content rate by the fitted drift in ppm, leaving only a level for the
// discrete loop to correct. Hysteresis keeps the two regimes from
// fighting: micro-resampling engages only when the fitted slope is both
// large and statistically significant, and releases (holding its last
// rate) once the residual slope is small.

// Resample is the continuous compensation action: retune the content
// consumption rate of one stream by PPM parts per million. Positive PPM
// consumes content faster (a continuous skip, advancing the stream);
// negative PPM stretches it (a continuous insert). The rate replaces any
// previously commanded rate on that stream — it is absolute, not a delta.
type Resample struct {
	Stream Stream
	PPM    float64
}

// RateScale returns the content-samples-per-output-sample step the action
// commands: 1 + PPM·1e-6.
func (r Resample) RateScale() float64 { return 1 + r.PPM*1e-6 }

// DriftConfig tunes the micro-resampling regime. The zero value of
// Enabled keeps the compensator byte-identical to the level-only loop.
type DriftConfig struct {
	// Enabled turns the drift regime on. Off by default: every zero-drift
	// code path must be bit-identical to the pre-drift behavior.
	Enabled bool
	// EngagePPM is the fitted-slope magnitude (ppm) above which
	// micro-resampling engages (default 30).
	EngagePPM float64
	// ReleasePPM is the residual-slope magnitude (ppm) below which the
	// loop stops retuning and holds its current rate (default 10).
	// Between Release and Engage an already-engaged loop keeps adjusting
	// — that asymmetry is the regime hysteresis.
	ReleasePPM float64
	// MaxPPM clamps the commanded rate (default 400). Real device SROs
	// are tens of ppm; a fit demanding more than this is distrusted.
	MaxPPM float64
	// MaxStepPPM clamps how far one retune may move an already-engaged
	// rate (default 2·EngagePPM). The first engagement jumps straight to
	// the fitted slope, but once the loop has converged the true offset
	// only wanders slowly — a fit demanding a large swing is almost
	// always a transient (a network excursion read as slope), and the
	// clamp bounds the damage to one settle period of small error
	// instead of a rate flip.
	MaxStepPPM float64
	// SettleSec is the minimum time between rate updates (default 8 s):
	// after a retune the tracker needs a fresh window before its slope
	// means anything.
	SettleSec float64
	// TStat is the significance gate: the fitted slope must exceed
	// TStat · SlopeStdErr to act (default 2.5), so measurement noise on
	// a drift-free stream cannot engage the regime.
	TStat float64
	// BlankSec is how long after an applied correction the drift tracker
	// ignores incoming measurements (default 2.5 s), measured on the
	// tracker's own x-axis (marker detection time). A correction changes
	// the ISD trajectory only after it propagates through jitter buffers
	// and playout; measurements detected before that still show the old
	// trajectory, and letting them seed the freshly reset window makes
	// the next fit see a step or kink that is not drift. Blanking on
	// detection time rather than arrival time also excludes measurements
	// that were detected pre-correction but delivered late (uplink and
	// correlation latency run to seconds).
	BlankSec float64
}

func (c DriftConfig) withDefaults() DriftConfig {
	if c.EngagePPM == 0 {
		c.EngagePPM = 30
	}
	if c.ReleasePPM == 0 {
		c.ReleasePPM = 10
	}
	if c.MaxPPM == 0 {
		c.MaxPPM = 400
	}
	if c.MaxStepPPM == 0 {
		c.MaxStepPPM = 2 * c.EngagePPM
	}
	if c.SettleSec == 0 {
		c.SettleSec = 8
	}
	if c.TStat == 0 {
		c.TStat = 2.5
	}
	if c.BlankSec == 0 {
		c.BlankSec = 2.5
	}
	return c
}

// DriftLoop layers the micro-resampling regime over the discrete level
// compensator. At most one of the two returned actions is non-nil per
// offer: a rate retune consumes the measurement that triggered it.
type DriftLoop struct {
	cfg   DriftConfig
	level *Compensator
	// appliedPPM is the rate currently commanded on the accessory stream.
	appliedPPM float64
	engaged    bool
	// rateSettleUntil blocks retunes until the tracker has re-observed.
	rateSettleUntil float64
	resamples       int
}

// NewDriftLoop wraps the discrete compensator. With cfg.Enabled false the
// loop is a pure passthrough to level.Offer.
func NewDriftLoop(cfg DriftConfig, level *Compensator) *DriftLoop {
	return &DriftLoop{cfg: cfg.withDefaults(), level: level, rateSettleUntil: math.Inf(-1)}
}

// Offer presents one ISD measurement at local time now together with the
// drift tracker's current fit. It returns either a discrete action, a
// resample retune, or neither. The caller must reset its drift tracker
// after applying either kind of correction — both move the ISD trajectory
// out from under the fitted window.
func (l *DriftLoop) Offer(now, isdSeconds float64, fit estimator.DriftFit) (*Action, *Resample) {
	if !l.cfg.Enabled {
		return l.level.Offer(now, isdSeconds), nil
	}
	if rs := l.maybeRetune(now, fit); rs != nil {
		return nil, rs
	}
	// No retune this epoch: correct the level. The fitted level is less
	// noisy than the raw measurement once the window is valid.
	level := isdSeconds
	if fit.Valid {
		level = fit.LevelSeconds
	}
	return l.level.Offer(now, level), nil
}

// maybeRetune decides whether the fitted slope warrants a rate change.
func (l *DriftLoop) maybeRetune(now float64, fit estimator.DriftFit) *Resample {
	if !fit.Valid || now < l.rateSettleUntil {
		return nil
	}
	slopePPM := fit.SlopeSecPerSec * 1e6
	threshold := l.cfg.EngagePPM
	if l.engaged {
		threshold = l.cfg.ReleasePPM
	}
	if math.Abs(slopePPM) <= threshold {
		return nil
	}
	if math.Abs(fit.SlopeSecPerSec) <= l.cfg.TStat*fit.SlopeStdErr {
		return nil
	}
	if math.Abs(slopePPM) > l.cfg.MaxPPM {
		// Real oscillator offsets are tens of ppm; a fit steeper than the
		// rate clamp itself is a polluted window (a discrete-correction
		// step that leaked past the blanking), not drift. Acting on it
		// would slam the rate to the clamp.
		return nil
	}
	// The observed slope is the residual with the current rate applied:
	// accessory content-time rate ≈ 1 + sro + applied·1e-6, so the rate
	// that zeroes the ramp is applied − slope.
	delta := -slopePPM
	if l.engaged && math.Abs(delta) > l.cfg.MaxStepPPM {
		if delta > 0 {
			delta = l.cfg.MaxStepPPM
		} else {
			delta = -l.cfg.MaxStepPPM
		}
	}
	next := l.appliedPPM + delta
	if next > l.cfg.MaxPPM {
		next = l.cfg.MaxPPM
	} else if next < -l.cfg.MaxPPM {
		next = -l.cfg.MaxPPM
	}
	l.appliedPPM = next
	l.engaged = true
	l.rateSettleUntil = now + l.cfg.SettleSec
	l.resamples++
	return &Resample{Stream: AccessoryStream, PPM: next}
}

// AppliedPPM returns the currently commanded accessory rate offset.
func (l *DriftLoop) AppliedPPM() float64 { return l.appliedPPM }

// BlankSec returns the resolved post-correction tracker blanking period.
func (l *DriftLoop) BlankSec() float64 { return l.cfg.BlankSec }

// Engaged reports whether micro-resampling has taken over slope control.
func (l *DriftLoop) Engaged() bool { return l.engaged }

// Level exposes the wrapped discrete compensator (stats, settling state).
func (l *DriftLoop) Level() *Compensator { return l.level }

// DriftStats reports drift-regime counters.
type DriftStats struct {
	// Resamples counts rate retunes issued.
	Resamples int
}

// DriftStats returns cumulative drift-regime counters.
func (l *DriftLoop) DriftStats() DriftStats { return DriftStats{Resamples: l.resamples} }
