// Package acoustic simulates the physical path between the screen device's
// speakers and the player's headset microphone: speaker coloration, room
// reverberation, sound propagation delay, microphone frequency response and
// ambient noise. This is the channel over which Ekho "overhears" the screen
// audio (paper §4.1), and the place where the Figure 14/17 microphone
// ablations and the Figure 13 sound-level study live.
//
// The paper measured three physical microphones (a studio microphone, an
// Xbox Stereo Headset and a Samsung IG955 earphone, Figure 17). We model
// each as a cascade of peaking/shelving sections fitted to the published
// response shapes: the studio mic nearly flat, the Xbox headset with
// several-dB peaks and troughs, the Samsung earphone with a >30 dB swing.
package acoustic

import (
	"math"
	"math/rand"

	"ekho/internal/audio"
	"ekho/internal/dsp"
)

// SpeedOfSoundFtPerSec is the propagation speed used for distance delays
// (the paper rounds to 1 ms/foot).
const SpeedOfSoundFtPerSec = 1000.0

// Microphone identifies one of the modelled capture devices.
type Microphone int

// The three microphones of Appendix B / Figure 16.
const (
	StudioMic    Microphone = iota // ~flat response
	XboxHeadset                    // typical gaming headset, peaks and troughs
	SamsungIG955                   // low-quality earphone, >30 dB swing
)

// String implements fmt.Stringer.
func (m Microphone) String() string {
	switch m {
	case StudioMic:
		return "Studio Microphone"
	case XboxHeadset:
		return "Xbox Stereo Headset"
	case SamsungIG955:
		return "Samsung IG955 Earphone"
	default:
		return "Unknown Microphone"
	}
}

// response returns the biquad cascade modelling the microphone's frequency
// response (Figure 17 shapes).
func (m Microphone) response(rate float64) dsp.Chain {
	switch m {
	case XboxHeadset:
		return dsp.Chain{
			dsp.NewHighPassBiquad(70, rate, 0.707),
			dsp.NewPeakingBiquad(250, rate, 1.2, 4),
			dsp.NewPeakingBiquad(1200, rate, 1.5, -5),
			dsp.NewPeakingBiquad(3500, rate, 2.0, 6),
			dsp.NewPeakingBiquad(7000, rate, 2.0, -7),
			dsp.NewPeakingBiquad(10500, rate, 2.5, 5),
			dsp.NewLowPassBiquad(15000, rate, 0.707),
		}
	case SamsungIG955:
		return dsp.Chain{
			dsp.NewHighPassBiquad(150, rate, 0.707),
			dsp.NewPeakingBiquad(400, rate, 1.2, 12),
			dsp.NewPeakingBiquad(1500, rate, 1.8, -16),
			dsp.NewPeakingBiquad(3000, rate, 2.0, 13),
			dsp.NewPeakingBiquad(5200, rate, 3.0, -16),
			dsp.NewPeakingBiquad(5800, rate, 3.0, -16),
			dsp.NewPeakingBiquad(9000, rate, 2.5, 11),
			dsp.NewPeakingBiquad(12000, rate, 3.0, -18),
			dsp.NewLowPassBiquad(13000, rate, 0.9),
		}
	default: // StudioMic: gentle band edges only
		return dsp.Chain{
			dsp.NewHighPassBiquad(40, rate, 0.707),
			dsp.NewLowPassBiquad(20000, rate, 0.707),
		}
	}
}

// MicChain returns a fresh stateful biquad cascade implementing the
// microphone's frequency response, for callers that filter streams
// incrementally (the live session loop) rather than whole buffers.
func MicChain(m Microphone, rate float64) dsp.Chain { return m.response(rate) }

// ResponseDB measures the microphone model's magnitude response at freq Hz
// by probing the cascade with a sinusoid (used to regenerate Figure 17).
func (m Microphone) ResponseDB(freq float64) float64 {
	const rate = audio.SampleRate
	chain := m.response(rate)
	n := 9600
	probe := make([]float64, n)
	for i := range probe {
		probe[i] = math.Sin(2 * math.Pi * freq * float64(i) / rate)
	}
	// The probe is discarded afterwards, but its input RMS is needed
	// before filtering overwrites it.
	in := dsp.RMS(probe[n/2:])
	chain.ApplyInPlace(probe)
	o := dsp.RMS(probe[n/2:])
	if o <= 0 || in <= 0 {
		return math.Inf(-1)
	}
	return 20 * math.Log10(o/in)
}

// Room describes the reverberant environment between speaker and mic.
type Room struct {
	// RT60 is the reverberation time in seconds (time for reflections to
	// decay by 60 dB). Living rooms are typically 0.3-0.6 s.
	RT60 float64
	// Reflections is the number of discrete echo taps to synthesize.
	Reflections int
	// Seed makes the tap pattern deterministic.
	Seed int64
}

// DefaultRoom is a typical living-room configuration.
func DefaultRoom() Room { return Room{RT60: 0.4, Reflections: 40, Seed: 7} }

// impulse builds the room's sparse impulse response (direct path excluded).
func (r Room) impulse(rate int) []float64 {
	if r.RT60 <= 0 || r.Reflections <= 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(r.Seed))
	n := int(r.RT60 * float64(rate))
	h := make([]float64, n)
	// -60 dB at RT60: amplitude decay constant.
	decay := math.Log(1000) / float64(n)
	for i := 0; i < r.Reflections; i++ {
		// Early reflections cluster sooner; use a squared uniform draw.
		u := rng.Float64()
		pos := int(u * u * float64(n-1))
		amp := 0.4 * math.Exp(-decay*float64(pos))
		if rng.Intn(2) == 0 {
			amp = -amp
		}
		h[pos] += amp
	}
	return h
}

// Channel is the full speaker→air→microphone path.
type Channel struct {
	// Mic selects the capture device model.
	Mic Microphone
	// DistanceFt is the player's distance from the screen in feet
	// (1 ms/ft propagation delay; §3.2 allows 2-19 ft).
	DistanceFt float64
	// Attenuation is the linear gain of the overheard path. The paper
	// notes the overheard audio is "an order of magnitude fainter" than
	// direct speech into the mic; 0.1 is the default.
	Attenuation float64
	// Room adds reverberation.
	Room Room
	// AmbientLevel is the RMS of added white ambient noise (0 disables).
	AmbientLevel float64
	// NoiseSeed makes the ambient noise deterministic.
	NoiseSeed int64
	// ExtraDelaySec adds arbitrary extra delay (device playback lag used
	// by experiment setups); may be fractional samples.
	ExtraDelaySec float64
	// SROPPM is the capture device's sample-rate offset in parts per
	// million: its ADC oscillator runs at rate·(1+SROPPM·1e-6), so the
	// captured buffer holds the air signal stretched (positive SRO) or
	// squeezed (negative) by that ratio. Tens of ppm are typical for
	// consumer audio chains (arXiv:2507.05399); 0 disables resampling
	// and keeps Transmit bit-identical to the SRO-free model.
	SROPPM float64
}

// DefaultChannel is the standard evaluation setup: Xbox headset, 6 ft from
// the screen, 10x attenuation, a typical room and a quiet noise floor.
func DefaultChannel() Channel {
	return Channel{
		Mic:          XboxHeadset,
		DistanceFt:   6,
		Attenuation:  0.1,
		Room:         DefaultRoom(),
		AmbientLevel: 0.001,
		NoiseSeed:    11,
	}
}

// TotalDelaySec returns the deterministic delay the channel imposes
// (propagation plus any configured extra delay).
func (c Channel) TotalDelaySec() float64 {
	return c.DistanceFt/SpeedOfSoundFtPerSec + c.ExtraDelaySec
}

// Transmit plays the buffer through the channel and returns what the
// microphone captures: delayed, attenuated, reverberated, colored by the
// mic response and overlaid with ambient noise. The output has the same
// length as the input (content shifted later by the propagation delay).
func (c Channel) Transmit(b *audio.Buffer) *audio.Buffer {
	rate := b.Rate
	samples := append([]float64(nil), b.Samples...)

	// Room reverberation (applied at the source side).
	if h := c.Room.impulse(rate); len(h) > 0 {
		wet := dsp.NewFIR(h).ApplyFull(samples)
		for i := range samples {
			samples[i] += wet[i]
		}
	}

	// Propagation and configured delay (fractional samples supported).
	delay := c.TotalDelaySec() * float64(rate)
	if delay > 0 {
		samples = dsp.FractionalDelay(samples, delay)
	}

	// Attenuation of the overheard path.
	att := c.Attenuation
	if att == 0 {
		att = 1
	}
	for i := range samples {
		samples[i] *= att
	}

	// Microphone coloration (samples is already this call's private copy).
	c.Mic.response(float64(rate)).ApplyInPlace(samples)

	// Ambient noise floor.
	if c.AmbientLevel > 0 {
		rng := rand.New(rand.NewSource(c.NoiseSeed))
		for i := range samples {
			samples[i] += rng.NormFloat64() * c.AmbientLevel
		}
	}

	// Sample-rate offset: the ADC samples the (analog) mic signal at a
	// skewed rate, reading one true-rate sample every 1/(1+sro·1e-6)
	// positions. Same output length; content drifts by sro µs per second.
	if c.SROPPM != 0 {
		step := 1 / (1 + c.SROPPM*1e-6)
		skewed := make([]float64, len(samples))
		for i := range skewed {
			skewed[i] = dsp.Interp(samples, float64(i)*step)
		}
		samples = skewed
	}
	return audio.FromSamples(rate, samples)
}

// TransmitMixed transmits screen audio through the channel and mixes in a
// near-field source (the player's own voice / chatter) that does NOT pass
// through the room or attenuation — it is spoken directly into the mic.
func (c Channel) TransmitMixed(screen, nearField *audio.Buffer, nearGain float64) *audio.Buffer {
	out := c.Transmit(screen)
	if nearField != nil {
		// The near-field source is still colored by the microphone.
		near := c.Mic.response(float64(out.Rate)).Apply(nearField.Samples)
		out.MixInto(near, 0, nearGain)
	}
	return out
}
