package acoustic

import (
	"math"
	"testing"

	"ekho/internal/audio"
	"ekho/internal/dsp"
)

func TestMicrophoneNames(t *testing.T) {
	if StudioMic.String() != "Studio Microphone" ||
		XboxHeadset.String() != "Xbox Stereo Headset" ||
		SamsungIG955.String() != "Samsung IG955 Earphone" {
		t.Fatal("microphone names")
	}
	if Microphone(42).String() != "Unknown Microphone" {
		t.Fatal("unknown name")
	}
}

func TestMicResponseShapes(t *testing.T) {
	// Studio: flat within a few dB across 100 Hz - 15 kHz.
	var studioMin, studioMax = math.Inf(1), math.Inf(-1)
	for f := 200.0; f <= 15000; f *= 1.5 {
		r := StudioMic.ResponseDB(f)
		if r < studioMin {
			studioMin = r
		}
		if r > studioMax {
			studioMax = r
		}
	}
	if studioMax-studioMin > 6 {
		t.Fatalf("studio mic swing %g dB, want < 6", studioMax-studioMin)
	}
	// Samsung: swing must exceed 25 dB (paper: >30 dB from lowest to
	// highest; our probe grid is coarse so allow 25).
	var sMin, sMax = math.Inf(1), math.Inf(-1)
	for f := 200.0; f <= 13000; f *= 1.3 {
		r := SamsungIG955.ResponseDB(f)
		if r < sMin {
			sMin = r
		}
		if r > sMax {
			sMax = r
		}
	}
	if sMax-sMin < 25 {
		t.Fatalf("samsung swing %g dB, want >= 25", sMax-sMin)
	}
	// Xbox sits between the two.
	var xMin, xMax = math.Inf(1), math.Inf(-1)
	for f := 200.0; f <= 14000; f *= 1.3 {
		r := XboxHeadset.ResponseDB(f)
		if r < xMin {
			xMin = r
		}
		if r > xMax {
			xMax = r
		}
	}
	swing := xMax - xMin
	if swing <= studioMax-studioMin || swing >= sMax-sMin {
		t.Fatalf("xbox swing %g should sit between studio %g and samsung %g",
			swing, studioMax-studioMin, sMax-sMin)
	}
}

func TestChannelDelay(t *testing.T) {
	c := Channel{Mic: StudioMic, DistanceFt: 6, Attenuation: 1, AmbientLevel: 0}
	if math.Abs(c.TotalDelaySec()-0.006) > 1e-12 {
		t.Fatalf("6 ft should be 6 ms, got %g", c.TotalDelaySec())
	}
	// An impulse must arrive ~288 samples (6 ms) later.
	b := audio.NewBuffer(audio.SampleRate, 9600)
	b.Samples[1000] = 1
	out := c.Transmit(b)
	peak := dsp.ArgMaxAbs(out.Samples)
	want := 1000 + 288
	if abs(peak-want) > 2 {
		t.Fatalf("impulse at %d want ~%d", peak, want)
	}
}

func TestChannelAttenuation(t *testing.T) {
	c := Channel{Mic: StudioMic, Attenuation: 0.1, AmbientLevel: 0}
	tone := audio.Tone(audio.SampleRate, 1000, 0.5, 0.8)
	out := c.Transmit(tone)
	ratio := out.RMS() / tone.RMS()
	if math.Abs(ratio-0.1) > 0.03 {
		t.Fatalf("attenuation ratio %g want ~0.1", ratio)
	}
}

func TestRoomAddsReverbTail(t *testing.T) {
	dry := Channel{Mic: StudioMic, Attenuation: 1, AmbientLevel: 0}
	wet := Channel{Mic: StudioMic, Attenuation: 1, AmbientLevel: 0, Room: DefaultRoom()}
	b := audio.NewBuffer(audio.SampleRate, 48000)
	// A burst in the first 100 ms.
	for i := 0; i < 4800; i++ {
		b.Samples[i] = math.Sin(2 * math.Pi * 800 * float64(i) / audio.SampleRate)
	}
	dryOut := dry.Transmit(b)
	wetOut := wet.Transmit(b)
	// Tail energy 200-400 ms after the burst must be higher with reverb.
	tail := func(x *audio.Buffer) float64 {
		return dsp.MeanPower(x.Samples[14400:19200])
	}
	if tail(wetOut) <= tail(dryOut)+1e-12 {
		t.Fatalf("reverb tail %g not above dry %g", tail(wetOut), tail(dryOut))
	}
}

func TestRoomImpulseDecays(t *testing.T) {
	h := DefaultRoom().impulse(audio.SampleRate)
	if len(h) == 0 {
		t.Fatal("default room should have an impulse response")
	}
	early := maxAbs(h[:len(h)/4])
	late := maxAbs(h[3*len(h)/4:])
	if late >= early {
		t.Fatalf("reflections should decay: early %g late %g", early, late)
	}
	if r := (Room{}); r.impulse(audio.SampleRate) != nil {
		t.Fatal("zero room should have nil impulse")
	}
}

func TestAmbientNoiseFloor(t *testing.T) {
	c := Channel{Mic: StudioMic, Attenuation: 1, AmbientLevel: 0.01, NoiseSeed: 3}
	silence := audio.NewBuffer(audio.SampleRate, 9600)
	out := c.Transmit(silence)
	if out.RMS() < 0.005 || out.RMS() > 0.02 {
		t.Fatalf("ambient floor RMS %g want ~0.01", out.RMS())
	}
	// Deterministic across calls.
	out2 := c.Transmit(silence)
	for i := range out.Samples {
		if out.Samples[i] != out2.Samples[i] {
			t.Fatal("ambient noise must be deterministic for a seed")
		}
	}
}

func TestTransmitMixedNearField(t *testing.T) {
	c := Channel{Mic: StudioMic, Attenuation: 0.1, AmbientLevel: 0}
	screen := audio.Tone(audio.SampleRate, 1000, 0.5, 0.5)
	voice := audio.Tone(audio.SampleRate, 300, 0.5, 0.5)
	out := c.TransmitMixed(screen, voice, 1.0)
	// The near-field voice must dominate the attenuated screen audio.
	vp := dsp.BandPower(out.Samples, audio.SampleRate, 200, 400)
	sp := dsp.BandPower(out.Samples, audio.SampleRate, 900, 1100)
	if vp < 5*sp {
		t.Fatalf("near-field %g should dominate overheard %g", vp, sp)
	}
	// nil near-field is allowed.
	if c.TransmitMixed(screen, nil, 1).Len() != screen.Len() {
		t.Fatal("nil near-field length")
	}
}

func TestDefaultChannelEndToEnd(t *testing.T) {
	c := DefaultChannel()
	tone := audio.Tone(audio.SampleRate, 3000, 1, 0.5)
	out := c.Transmit(tone)
	if out.Len() != tone.Len() {
		t.Fatalf("length changed: %d vs %d", out.Len(), tone.Len())
	}
	if out.RMS() <= 0 {
		t.Fatal("transmitted audio should be non-silent")
	}
	for _, v := range out.Samples {
		if math.IsNaN(v) {
			t.Fatal("NaN in channel output")
		}
	}
}

func maxAbs(x []float64) float64 {
	var m float64
	for _, v := range x {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}

func abs(a int) int {
	if a < 0 {
		return -a
	}
	return a
}

func TestChannelSRODriftsImpulse(t *testing.T) {
	// A +500 ppm capture oscillator stretches the recording: an impulse
	// 2 s in lands 2 s · 500 µs/s = 48 samples later than without SRO.
	base := Channel{Mic: StudioMic, Attenuation: 1, AmbientLevel: 0}
	skewed := base
	skewed.SROPPM = 500
	b := audio.NewBuffer(audio.SampleRate, 3*audio.SampleRate)
	b.Samples[2*audio.SampleRate] = 1
	p0 := dsp.ArgMaxAbs(base.Transmit(b).Samples)
	p1 := dsp.ArgMaxAbs(skewed.Transmit(b).Samples)
	if shift := p1 - p0; abs(shift-48) > 2 {
		t.Fatalf("impulse shifted %d samples, want ~48", shift)
	}
}

func TestChannelZeroSROIdentical(t *testing.T) {
	// SROPPM = 0 must leave Transmit bit-identical to the pre-SRO model
	// (no resampling pass at all).
	c := DefaultChannel()
	cz := c
	cz.SROPPM = 0
	tone := audio.Tone(audio.SampleRate, 3000, 1, 0.5)
	a, bb := c.Transmit(tone), cz.Transmit(tone)
	for i := range a.Samples {
		if a.Samples[i] != bb.Samples[i] {
			t.Fatalf("sample %d differs: %v vs %v", i, a.Samples[i], bb.Samples[i])
		}
	}
}

func BenchmarkTransmit1s(b *testing.B) {
	c := DefaultChannel()
	tone := audio.Tone(audio.SampleRate, 3000, 1, 0.5)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Transmit(tone)
	}
}
