package hub

import (
	"math"
	"testing"
	"time"

	"ekho"
	"ekho/internal/transport"
)

// TestHubLoopbackFleet is the tentpole acceptance test: one hub serves a
// full fleet of concurrent loopback sessions — each with a different air
// delay and a wildly different local clock — and every admitted session
// converges below the 10 ms echo threshold, while the session past
// capacity is turned away with TypeBusy.
func TestHubLoopbackFleet(t *testing.T) {
	capacity := 64
	content := 12.0
	if testing.Short() {
		capacity = 16
		content = 10.0
	}
	rep, err := RunLoopback(LoopbackScenario{
		Sessions:       capacity + 1,
		Capacity:       capacity,
		ContentSeconds: content,
	})
	if err != nil {
		t.Fatalf("RunLoopback: %v", err)
	}

	if len(rep.Rejected) != 1 {
		t.Fatalf("rejected sessions = %v, want exactly one", rep.Rejected)
	}
	if len(rep.Results) != capacity {
		t.Fatalf("got %d session results, want %d", len(rep.Results), capacity)
	}
	if rep.Stats.PeakSessions != int64(capacity) {
		t.Errorf("peak sessions = %d, want %d", rep.Stats.PeakSessions, capacity)
	}
	// The refused session's screen and controller hellos are each
	// answered with TypeBusy, so the hello-reject counter reads 2.
	if rep.Stats.Rejected != 2 {
		t.Errorf("stats rejected = %d, want 2", rep.Stats.Rejected)
	}

	for _, r := range rep.Results {
		if r.Measurements < 3 {
			t.Errorf("session %d: only %d measurements", r.ID, r.Measurements)
			continue
		}
		if r.Actions < 1 {
			t.Errorf("session %d: no compensation action (first ISD %.1f ms)",
				r.ID, r.ISDs[0]*1000)
			continue
		}
		if r.PostActionMeasurements < 1 {
			t.Errorf("session %d: no measurement after compensation", r.ID)
			continue
		}
		// The injected air delay is 80-240 ms, so the session must have
		// started far out of sync...
		if first := r.ISDs[0]; first < ekho.HumanEchoThresholdSec {
			t.Errorf("session %d: first ISD %.1f ms already under threshold; scenario broken",
				r.ID, first*1000)
		}
		// ...and finished under the 10 ms human echo threshold.
		if last := r.ISDs[len(r.ISDs)-1]; math.Abs(last) >= ekho.HumanEchoThresholdSec {
			t.Errorf("session %d: final ISD %.1f ms, want |ISD| < 10 ms (trace %v)",
				r.ID, last*1000, r.ISDs)
		}
	}
}

// TestHubClockOffsetIndependence reruns a small fleet with extreme,
// asymmetric clock offsets: Ekho needs no clock synchronization, so the
// measured ISDs must not change.
func TestHubClockOffsetIndependence(t *testing.T) {
	rep, err := RunLoopback(LoopbackScenario{
		Sessions:       4,
		ContentSeconds: 10,
		ClockOffsetSec: func(id uint32) float64 { return float64(id)*7919.5 - 12000 },
	})
	if err != nil {
		t.Fatalf("RunLoopback: %v", err)
	}
	if len(rep.Results) != 4 {
		t.Fatalf("got %d results, want 4", len(rep.Results))
	}
	for _, r := range rep.Results {
		if r.Actions < 1 || r.PostActionMeasurements < 1 {
			t.Errorf("session %d: actions=%d postActionMeasurements=%d, want >=1 each",
				r.ID, r.Actions, r.PostActionMeasurements)
			continue
		}
		if last := r.ISDs[len(r.ISDs)-1]; math.Abs(last) >= ekho.HumanEchoThresholdSec {
			t.Errorf("session %d: final ISD %.1f ms under clock offset, want < 10 ms",
				r.ID, last*1000)
		}
	}
}

// TestHubIdleReap verifies that a session with no inbound traffic is
// evicted after the idle timeout and surfaced through OnSessionEnd.
func TestHubIdleReap(t *testing.T) {
	mem := NewMemNet()
	server := mem.Endpoint("hub")
	ended := make(chan uint32, 1)
	h := New(Config{
		TickEvery:   -1,
		IdleTimeout: 50 * time.Millisecond,
		OnSessionEnd: func(id uint32, r SessionResult) {
			select {
			case ended <- id:
			default:
			}
		},
	}, server)
	serveErr := make(chan error, 1)
	go func() { serveErr <- h.Serve() }()
	defer h.Close()

	client := mem.Endpoint("client")
	if err := client.SendTo(
		transport.EncodeHello(transport.Hello{Session: 7, Role: transport.RoleScreen}),
		server.LocalAddr()); err != nil {
		t.Fatalf("hello: %v", err)
	}

	select {
	case id := <-ended:
		if id != 7 {
			t.Fatalf("reaped session %d, want 7", id)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("idle session was never reaped")
	}
	deadline := time.Now().Add(2 * time.Second)
	for h.Stats().Reaped == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("stats = %v, want Reaped=1", h.Stats())
		}
		time.Sleep(10 * time.Millisecond)
	}
	h.Close()
	if err := <-serveErr; err != nil {
		t.Fatalf("Serve: %v", err)
	}
	if s := h.Stats(); s.ActiveSessions != 0 || s.Admitted != 1 {
		t.Errorf("final stats = %v, want 0 active / 1 admitted", s)
	}
}

// TestHubDrain verifies that a draining hub keeps existing sessions but
// rejects new hellos with TypeBusy.
func TestHubDrain(t *testing.T) {
	mem := NewMemNet()
	server := mem.Endpoint("hub")
	h := New(Config{TickEvery: -1, IdleTimeout: -1}, server)
	serveErr := make(chan error, 1)
	go func() { serveErr <- h.Serve() }()
	defer h.Close()

	first := mem.Endpoint("first")
	if err := first.SendTo(
		transport.EncodeHello(transport.Hello{Session: 1, Role: transport.RoleScreen}),
		server.LocalAddr()); err != nil {
		t.Fatalf("hello: %v", err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for h.Stats().Admitted == 0 {
		if time.Now().After(deadline) {
			t.Fatal("first session never admitted")
		}
		time.Sleep(5 * time.Millisecond)
	}

	h.Drain()
	second := mem.Endpoint("second")
	if err := second.SendTo(
		transport.EncodeHello(transport.Hello{Session: 2, Role: transport.RoleScreen}),
		server.LocalAddr()); err != nil {
		t.Fatalf("hello: %v", err)
	}
	msg, err := second.Recv(time.Now().Add(2 * time.Second))
	if err != nil {
		t.Fatalf("waiting for busy reject: %v", err)
	}
	if msg.Type != transport.TypeBusy || msg.Session != 2 {
		t.Fatalf("got %v packet for session %d, want TypeBusy for 2", msg.Type, msg.Session)
	}
	if s := h.Stats(); s.Rejected != 1 || s.ActiveSessions != 1 {
		t.Errorf("stats = %v, want 1 rejected / 1 active", s)
	}
	h.Close()
	if err := <-serveErr; err != nil {
		t.Fatalf("Serve: %v", err)
	}
}

// TestShardIndexSpread checks that the shard hash distributes sequential
// session IDs (the common client convention) across all shards.
func TestShardIndexSpread(t *testing.T) {
	const shards = 8
	var hits [shards]int
	for id := uint32(1); id <= 256; id++ {
		idx := shardIndex(id, shards)
		if idx < 0 || idx >= shards {
			t.Fatalf("shardIndex(%d) = %d out of range", id, idx)
		}
		hits[idx]++
	}
	for i, n := range hits {
		if n == 0 {
			t.Errorf("shard %d received no sessions out of 256 sequential ids", i)
		}
	}
}
