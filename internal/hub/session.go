package hub

import (
	"fmt"
	"math"
	"net"
	"os"
	"path/filepath"
	"sync/atomic"

	"ekho"
	"ekho/internal/audio"
	"ekho/internal/jitterbuf"
	"ekho/internal/serverpipe"
	"ekho/internal/trace"
	"ekho/internal/transport"
)

// frameSec is the content-time advance of one media tick (20 ms).
const frameSec = float64(ekho.FrameSamples) / ekho.SampleRate

// chatReorderWindow is how many out-of-order chat uplink packets a
// session parks before abandoning a gap to the sequencer's concealment.
// Chat packets are ~one per frame, so 4 slots rides out 80 ms of
// reordering — beyond that the packet is as good as lost for a 10 ms
// sync target.
const chatReorderWindow = 4

// SessionResult summarizes one hosted session after it ends.
type SessionResult struct {
	// ID is the wire session identifier.
	ID uint32
	// Measurements / Actions count estimator outputs and compensator
	// corrections over the session's lifetime; Resamples counts drift
	// rate retunes.
	Measurements int
	Actions      int
	Resamples    int
	// PostActionMeasurements counts measurements taken after the first
	// correction was applied (a convergence proof needs at least one).
	PostActionMeasurements int
	// FirstActionFrames is the insert size of the first compensation.
	FirstActionFrames int
	// ISDs holds every measured ISD in seconds, in order.
	ISDs []float64
	// Frames is the number of media frame pairs streamed.
	Frames int
}

// session hosts one Ekho pipeline on the hub: it owns the socket I/O and
// wire serialization for two endpoints and delegates everything else —
// streams, markers, estimation, compensation — to a serverpipe.Pipeline.
// All fields except lastActive are owned by the session's shard worker;
// lastActive is touched by the receive loop and read by the reaper.
type session struct {
	id    uint32
	hub   *Hub
	shard *shard // the shard this session is pinned to (egress queue)

	// wire is the framing the session helloed in; enc is the matching
	// stateless encoder, used for every packet sent to this session.
	wire transport.Wire
	enc  transport.WireEncoder

	screenAddr     net.Addr
	controllerAddr net.Addr
	ready          bool

	pipe *serverpipe.Pipeline
	res  SessionResult

	// reorder resequences the chat uplink ahead of the pipeline's
	// ChatSequencer; hold stores the payload copies for parked packets
	// (slot-indexed, capacity reused across anomalies). lastReorder is
	// the stats snapshot already forwarded to the hub aggregates.
	reorder     *jitterbuf.Reorder
	hold        []heldChat
	lastReorder jitterbuf.ReorderStats

	// Per-session observability, fed by the EventSink callbacks and
	// served by the /sessions admin endpoint.
	injected  int
	matched   int
	expired   int
	conceals  int
	isdLastMS float64
	isdPeakMS float64 // peak |ISD|

	// rec captures the session's timeline when the hub records; recFile
	// is the backing log file. Both are touched only on the shard worker
	// (and at shutdown, after workers stopped).
	rec     *trace.Recorder
	recFile *os.File

	// Per-tick scratch: one frame is generated, marked, converted and
	// serialized at a time. The two packet buffers (one per stream) stay
	// queued on the shard's egress until the worker flushes it at the
	// end of the tick, so each needs its own storage; they are free for
	// reuse by the next tick, which runs strictly after the flush.
	frame   []float64
	pcm     []int16
	pktScr  []byte
	pktAcc  []byte
	lastPkt int // wire size of the most recently serialized frame

	// lastActive is the wall clock (UnixNano) of the last packet seen
	// for this session, maintained by the receive loop for the reaper.
	lastActive atomic.Int64
}

// heldChat is the payload of one parked out-of-order chat packet: a deep
// copy (the arena slices a Message decodes into are recycled after the
// batch), with capacity reused across the session's lifetime so only the
// first few anomalies allocate.
type heldChat struct {
	adcMicros int64
	records   []transport.PlaybackRecord
	encoded   []byte
}

func (h *Hub) newSession(sh *shard, id uint32, wire transport.Wire) *session {
	s := &session{
		id:      id,
		hub:     h,
		shard:   sh,
		wire:    wire,
		enc:     wireEncoder(wire),
		res:     SessionResult{ID: id},
		reorder: jitterbuf.NewReorder(chatReorderWindow),
		hold:    make([]heldChat, chatReorderWindow),
		frame:   make([]float64, ekho.FrameSamples),
		pcm:     make([]int16, ekho.FrameSamples),
	}
	cfg := serverpipe.Config{
		Game:        h.clip(h.cfg.Clip),
		Seq:         h.markerSeq(),
		MarkerC:     h.cfg.MarkerC,
		Codec:       h.codecProfile(),
		Compensator: h.cfg.Compensator,
		Detector:    h.cfg.Detector,
		Sink:        s,
	}
	s.pipe = serverpipe.New(cfg)
	if h.cfg.RecordDir != "" {
		s.openRecorder(cfg)
	}
	return s
}

// openRecorder starts capturing the session's timeline to
// <RecordDir>/session-<id>.ektrace. Recording failures degrade to an
// unrecorded session rather than refusing admission.
func (s *session) openRecorder(cfg serverpipe.Config) {
	path := filepath.Join(s.hub.cfg.RecordDir, fmt.Sprintf("session-%d.ektrace", s.id))
	f, err := os.Create(path)
	if err != nil {
		s.hub.logf("hub: session %d: recording disabled: %v", s.id, err)
		return
	}
	rec, err := trace.NewRecorder(f, trace.HeaderFor(s.id, s.hub.cfg.Clip, s.hub.cfg.Seed, cfg))
	if err != nil {
		s.hub.logf("hub: session %d: recording disabled: %v", s.id, err)
		f.Close()
		return
	}
	s.rec = rec
	s.recFile = f
	s.hub.logf("hub: session %d: recording to %s", s.id, path)
}

// closeRecorder flushes and closes the session's trace log. Idempotent;
// called on session removal and at hub shutdown.
func (s *session) closeRecorder() {
	if s.rec == nil {
		return
	}
	if err := s.rec.Close(); err != nil {
		s.hub.logf("hub: session %d: trace flush: %v", s.id, err)
	}
	if err := s.recFile.Close(); err != nil {
		s.hub.logf("hub: session %d: trace close: %v", s.id, err)
	}
	s.rec, s.recFile = nil, nil
}

// handle processes one packet on the shard worker. It reports true when
// the session ended (Bye) and should be removed. Batch items pass a
// pointer into the receive arena; nothing in msg may be retained past
// the call except From (control packets only), which the dispatcher
// materialized as a stable value.
func (s *session) handle(msg *transport.Message) (done bool) {
	switch msg.Type {
	case transport.TypeHello:
		s.hello(msg)
	case transport.TypeChat:
		s.chatIn(&msg.Chat)
	case transport.TypeBye:
		s.hub.logf("hub: session %d: bye from %s", s.id, msg.From)
		return true
	}
	return false
}

func (s *session) hello(msg *transport.Message) {
	switch msg.Hello.Role {
	case transport.RoleScreen:
		s.screenAddr = msg.From
		s.hub.logf("hub: session %d: screen registered from %s", s.id, msg.From)
	case transport.RoleController:
		s.controllerAddr = msg.From
		s.hub.logf("hub: session %d: controller registered from %s", s.id, msg.From)
	default:
		return
	}
	if !s.ready && s.screenAddr != nil && s.controllerAddr != nil {
		s.ready = true
		s.hub.logf("hub: session %d: both endpoints joined; streaming", s.id)
		if s.hub.cfg.OnSessionReady != nil {
			s.hub.cfg.OnSessionReady(s.id)
		}
	}
}

// tick emits one 20 ms frame pair: marked screen audio to the screen
// endpoint and accessory audio to the controller endpoint. Both packets
// are queued on the shard's egress and leave in one batched flush.
func (s *session) tick() {
	if !s.ready {
		return
	}
	if s.rec != nil {
		s.rec.Tick(s.pipe.Now())
	}
	fi := s.pipe.NextScreenFrame(s.frame)
	s.pktScr = s.sendMedia(s.pktScr, s.screenAddr, transport.Media{
		Seq: fi.Seq, Session: s.id, ContentStart: fi.ContentStart, ContentOff: uint16(fi.ContentOff)})
	if s.rec != nil {
		s.rec.MediaOut(trace.StreamScreen, fi, s.lastPkt)
	}
	fi = s.pipe.NextAccessoryFrame(s.frame)
	s.pktAcc = s.sendMedia(s.pktAcc, s.controllerAddr, transport.Media{
		Seq: fi.Seq, Session: s.id, ContentStart: fi.ContentStart, ContentOff: uint16(fi.ContentOff)})
	if s.rec != nil {
		s.rec.MediaOut(trace.StreamAccessory, fi, s.lastPkt)
	}
	s.res.Frames++
}

// chatIn runs one uplink packet through the reorder stage and delivers
// whatever comes out in sequence. The in-order case — no gap open, the
// packet is the expected sequence — costs two compares on top of the
// old direct path and delivers the arena-backed payload zero-copy;
// out-of-order packets are deep-copied into a hold slot until the gap
// fills or the window flushes.
func (s *session) chatIn(c *transport.Chat) {
	v, slot := s.reorder.Offer(c.Seq)
	if v == jitterbuf.RDeliver && s.reorder.Pending() == 0 {
		s.chat(*c) // fast path: nothing held, nothing to drain
		return
	}
	switch v {
	case jitterbuf.RDeliver:
		s.chat(*c)
	case jitterbuf.RHold:
		h := &s.hold[slot]
		h.adcMicros = c.ADCMicros
		h.records = append(h.records[:0], c.Records...)
		h.encoded = append(h.encoded[:0], c.Encoded...)
	}
	for {
		slot, seq, ok := s.reorder.Pop()
		if !ok {
			break
		}
		h := &s.hold[slot]
		// s.chat consumes the payload synchronously (the pipeline copies
		// what it keeps), so the slot is free for reuse on return.
		s.chat(transport.Chat{
			Seq: seq, Session: s.id, ADCMicros: h.adcMicros,
			Records: h.records, Encoded: h.encoded,
		})
	}
	// Forward the stage's counter movement to the fleet aggregates; only
	// anomaly paths reach here, so the fast path never touches these.
	st := s.reorder.Stats()
	d, prev := &s.hub.stats, s.lastReorder
	if n := st.Held - prev.Held; n > 0 {
		d.reordered.Add(int64(n))
	}
	if n := st.Late - prev.Late; n > 0 {
		d.reorderLate.Add(int64(n))
	}
	if n := st.Duplicates - prev.Duplicates; n > 0 {
		d.reorderDups.Add(int64(n))
	}
	if n := (st.Flushed + st.Overflows) - (prev.Flushed + prev.Overflows); n > 0 {
		d.reorderFlushed.Add(int64(n))
	}
	s.lastReorder = st
}

// chat deserializes one uplink packet into the pipeline: piggybacked
// playback records first (micros → seconds), then the encoded audio.
func (s *session) chat(chat transport.Chat) {
	if !s.ready {
		return
	}
	for _, r := range chat.Records {
		rec := serverpipe.Record{
			ContentStart: r.ContentStart,
			N:            int(r.N),
			LocalTime:    float64(r.LocalMicros) / 1e6,
		}
		if s.rec != nil {
			s.rec.OfferRecord(s.pipe.Now(), rec)
		}
		s.pipe.OfferRecord(rec)
	}
	adc := float64(chat.ADCMicros) / 1e6
	if s.rec != nil {
		s.rec.OfferChat(s.pipe.Now(), chat.Seq, adc, chat.Encoded)
	}
	s.pipe.OfferChat(chat.Seq, adc, chat.Encoded)
}

// result snapshots the session's outcome; callers must hold the shard
// worker's serialization (remove path or post-shutdown).
func (s *session) result() SessionResult { return s.res }

// sendMedia serializes the session's scratch frame as the media payload
// into buf (reusing its capacity) and queues it on the shard's egress;
// the worker's end-of-item flush transmits it. It returns the grown
// buffer for the caller to retain; s.lastPkt records the wire size.
func (s *session) sendMedia(buf []byte, to net.Addr, m transport.Media) []byte {
	for i, v := range s.frame {
		s.pcm[i] = audio.FloatToInt16(v)
	}
	m.Samples = s.pcm
	out, err := s.enc.AppendMedia(buf[:0], m)
	if err != nil {
		s.hub.stats.sendErrs.Add(1)
		s.lastPkt = 0
		return buf
	}
	s.lastPkt = len(out)
	if to != nil {
		s.shard.egress = append(s.shard.egress, transport.Packet{Buf: out, To: to})
	}
	return out
}

// info snapshots the session for the admin plane; shard workers call it
// for the hub's SessionInfos collection (trace.SessionStat lines are
// derived from it, so the two views can never drift).
func (s *session) info() SessionInfo {
	rs := s.reorder.Stats()
	return SessionInfo{
		ID:           s.id,
		Wire:         s.wire.String(),
		Frames:       s.res.Frames,
		Measurements: s.res.Measurements,
		Actions:      s.res.Actions,
		Pending:      s.pipe.PendingMarkers(),
		Records:      s.pipe.RecordCount(),
		Resamples:    s.res.Resamples,
		Injected:     s.injected,
		Matched:      s.matched,
		Expired:      s.expired,
		Conceals:     s.conceals,
		ISDLastMS:    s.isdLastMS,
		ISDPeakAbsMS: s.isdPeakMS,
		ReorderHeld:  rs.Held,
		ReorderLate:  rs.Late,
		ReorderDups:  rs.Duplicates,
		GapsFlushed:  rs.Flushed + rs.Overflows,
	}
}

// The session is its pipeline's EventSink: measurement and action events
// feed the hub's per-session results and fleet counters, and are teed to
// the trace recorder when the hub records.

// MarkerInjected implements serverpipe.EventSink.
func (s *session) MarkerInjected(content int64) {
	if s.rec != nil {
		s.rec.MarkerInjected(content)
	}
	s.injected++
	s.hub.stats.injections.Inc()
}

// MarkerMatched implements serverpipe.EventSink.
func (s *session) MarkerMatched(content int64, localTime float64) {
	if s.rec != nil {
		s.rec.MarkerMatched(content, localTime)
	}
	s.matched++
	s.hub.stats.matches.Inc()
}

// MarkerExpired implements serverpipe.EventSink.
func (s *session) MarkerExpired(content int64) {
	if s.rec != nil {
		s.rec.MarkerExpired(content)
	}
	s.expired++
	s.hub.stats.expired.Inc()
	s.hub.logf("hub: session %d: marker at content %d expired unmatched", s.id, content)
}

// ChatGapConcealed implements serverpipe.EventSink.
func (s *session) ChatGapConcealed(seq uint32, startLocal float64) {
	if s.rec != nil {
		s.rec.ChatGapConcealed(seq, startLocal)
	}
	s.conceals++
	s.hub.stats.conceals.Inc()
}

// ISDMeasurement implements serverpipe.EventSink.
func (s *session) ISDMeasurement(now float64, m ekho.Measurement) {
	if s.rec != nil {
		s.rec.ISDMeasurement(now, m)
	}
	s.res.Measurements++
	s.hub.stats.measurements.Add(1)
	if s.res.Actions > 0 {
		s.res.PostActionMeasurements++
	}
	s.res.ISDs = append(s.res.ISDs, m.ISDSeconds)
	s.isdLastMS = m.ISDSeconds * 1000
	if abs := math.Abs(s.isdLastMS); abs > s.isdPeakMS {
		s.isdPeakMS = abs
		s.hub.stats.isdPeakMS.Observe(abs)
	}
	s.hub.logf("hub: session %d: ISD measurement %+.1f ms (strength %.0f)", s.id, m.ISDSeconds*1000, m.Strength)
}

// CompensationAction implements serverpipe.EventSink.
func (s *session) CompensationAction(now float64, a ekho.Action) {
	if s.rec != nil {
		s.rec.CompensationAction(now, a)
	}
	s.res.Actions++
	s.hub.stats.actions.Add(1)
	if s.res.Actions == 1 {
		s.res.FirstActionFrames = a.InsertFrames
	}
	s.hub.logf("hub: session %d: compensation %v stream insert=%d skip=%d frames",
		s.id, a.Stream, a.InsertFrames, a.SkipFrames)
}

// ResampleApplied implements serverpipe.EventSink.
func (s *session) ResampleApplied(now float64, r ekho.Resample) {
	if s.rec != nil {
		s.rec.ResampleApplied(now, r)
	}
	s.res.Resamples++
	s.hub.stats.resamples.Add(1)
	s.hub.logf("hub: session %d: resample %v stream rate %+.1f ppm", s.id, r.Stream, r.PPM)
}
