package hub

import (
	"net"
	"sync/atomic"

	"ekho"
	"ekho/internal/audio"
	"ekho/internal/serverpipe"
	"ekho/internal/transport"
)

// frameSec is the content-time advance of one media tick (20 ms).
const frameSec = float64(ekho.FrameSamples) / ekho.SampleRate

// SessionResult summarizes one hosted session after it ends.
type SessionResult struct {
	// ID is the wire session identifier.
	ID uint32
	// Measurements / Actions count estimator outputs and compensator
	// corrections over the session's lifetime.
	Measurements int
	Actions      int
	// PostActionMeasurements counts measurements taken after the first
	// correction was applied (a convergence proof needs at least one).
	PostActionMeasurements int
	// FirstActionFrames is the insert size of the first compensation.
	FirstActionFrames int
	// ISDs holds every measured ISD in seconds, in order.
	ISDs []float64
	// Frames is the number of media frame pairs streamed.
	Frames int
}

// session hosts one Ekho pipeline on the hub: it owns the socket I/O and
// wire serialization for two endpoints and delegates everything else —
// streams, markers, estimation, compensation — to a serverpipe.Pipeline.
// All fields except lastActive are owned by the session's shard worker;
// lastActive is touched by the receive loop and read by the reaper.
type session struct {
	id  uint32
	hub *Hub

	screenAddr     net.Addr
	controllerAddr net.Addr
	ready          bool

	pipe *serverpipe.Pipeline
	res  SessionResult

	// Per-tick scratch: one frame is generated, marked, converted and
	// serialized at a time, so a single set of buffers serves both streams
	// (the socket layer does not retain sent datagrams).
	frame []float64
	pcm   []int16
	pkt   []byte

	// lastActive is the wall clock (UnixNano) of the last packet seen
	// for this session, maintained by the receive loop for the reaper.
	lastActive atomic.Int64
}

func (h *Hub) newSession(id uint32) *session {
	s := &session{
		id:    id,
		hub:   h,
		res:   SessionResult{ID: id},
		frame: make([]float64, ekho.FrameSamples),
		pcm:   make([]int16, ekho.FrameSamples),
	}
	s.pipe = serverpipe.New(serverpipe.Config{
		Game:        h.clip(h.cfg.Clip),
		Seq:         h.markerSeq(),
		MarkerC:     h.cfg.MarkerC,
		Codec:       h.codecProfile(),
		Compensator: h.cfg.Compensator,
		Sink:        s,
	})
	return s
}

// handle processes one packet on the shard worker. It reports true when
// the session ended (Bye) and should be removed.
func (s *session) handle(msg transport.Message) (done bool) {
	switch msg.Type {
	case transport.TypeHello:
		s.hello(msg)
	case transport.TypeChat:
		s.chat(msg.Chat)
	case transport.TypeBye:
		s.hub.logf("hub: session %d: bye from %s", s.id, msg.From)
		return true
	}
	return false
}

func (s *session) hello(msg transport.Message) {
	switch msg.Hello.Role {
	case transport.RoleScreen:
		s.screenAddr = msg.From
		s.hub.logf("hub: session %d: screen registered from %s", s.id, msg.From)
	case transport.RoleController:
		s.controllerAddr = msg.From
		s.hub.logf("hub: session %d: controller registered from %s", s.id, msg.From)
	default:
		return
	}
	if !s.ready && s.screenAddr != nil && s.controllerAddr != nil {
		s.ready = true
		s.hub.logf("hub: session %d: both endpoints joined; streaming", s.id)
		if s.hub.cfg.OnSessionReady != nil {
			s.hub.cfg.OnSessionReady(s.id)
		}
	}
}

// tick emits one 20 ms frame pair: marked screen audio to the screen
// endpoint and accessory audio to the controller endpoint.
func (s *session) tick() {
	if !s.ready {
		return
	}
	fi := s.pipe.NextScreenFrame(s.frame)
	s.sendMedia(s.screenAddr, transport.Media{
		Seq: fi.Seq, Session: s.id, ContentStart: fi.ContentStart, ContentOff: uint16(fi.ContentOff)})
	fi = s.pipe.NextAccessoryFrame(s.frame)
	s.sendMedia(s.controllerAddr, transport.Media{
		Seq: fi.Seq, Session: s.id, ContentStart: fi.ContentStart, ContentOff: uint16(fi.ContentOff)})
	s.res.Frames++
}

// chat deserializes one uplink packet into the pipeline: piggybacked
// playback records first (micros → seconds), then the encoded audio.
func (s *session) chat(chat transport.Chat) {
	if !s.ready {
		return
	}
	for _, r := range chat.Records {
		s.pipe.OfferRecord(serverpipe.Record{
			ContentStart: r.ContentStart,
			N:            int(r.N),
			LocalTime:    float64(r.LocalMicros) / 1e6,
		})
	}
	s.pipe.OfferChat(chat.Seq, float64(chat.ADCMicros)/1e6, chat.Encoded)
}

// result snapshots the session's outcome; callers must hold the shard
// worker's serialization (remove path or post-shutdown).
func (s *session) result() SessionResult { return s.res }

// sendMedia serializes the session's scratch frame as the media payload
// and transmits it through the hub socket, reusing the session's int16 and
// packet buffers. Safe because neither MemNet nor UDP retains the datagram
// after SendTo returns.
func (s *session) sendMedia(to net.Addr, m transport.Media) {
	for i, v := range s.frame {
		s.pcm[i] = audio.FloatToInt16(v)
	}
	m.Samples = s.pcm
	var err error
	if s.pkt, err = transport.AppendMedia(s.pkt[:0], m); err != nil {
		s.hub.stats.sendErrs.Add(1)
		return
	}
	s.hub.send(s.pkt, to)
}

// The session is its pipeline's EventSink: measurement and action events
// feed the hub's per-session results and fleet counters.

// MarkerInjected implements serverpipe.EventSink.
func (s *session) MarkerInjected(int64) {}

// MarkerMatched implements serverpipe.EventSink.
func (s *session) MarkerMatched(int64, float64) {}

// MarkerExpired implements serverpipe.EventSink.
func (s *session) MarkerExpired(content int64) {
	s.hub.logf("hub: session %d: marker at content %d expired unmatched", s.id, content)
}

// ChatGapConcealed implements serverpipe.EventSink.
func (s *session) ChatGapConcealed(uint32, float64) {}

// ISDMeasurement implements serverpipe.EventSink.
func (s *session) ISDMeasurement(_ float64, m ekho.Measurement) {
	s.res.Measurements++
	s.hub.stats.measurements.Add(1)
	if s.res.Actions > 0 {
		s.res.PostActionMeasurements++
	}
	s.res.ISDs = append(s.res.ISDs, m.ISDSeconds)
	s.hub.logf("hub: session %d: ISD measurement %+.1f ms (strength %.0f)", s.id, m.ISDSeconds*1000, m.Strength)
}

// CompensationAction implements serverpipe.EventSink.
func (s *session) CompensationAction(_ float64, a ekho.Action) {
	s.res.Actions++
	s.hub.stats.actions.Add(1)
	if s.res.Actions == 1 {
		s.res.FirstActionFrames = a.InsertFrames
	}
	s.hub.logf("hub: session %d: compensation %v stream insert=%d skip=%d frames",
		s.id, a.Stream, a.InsertFrames, a.SkipFrames)
}
