package hub

import (
	"net"
	"sync/atomic"

	"ekho"
	"ekho/internal/audio"
	"ekho/internal/codec"
	"ekho/internal/transport"
)

// frameSec is the content-time advance of one media tick (20 ms).
const frameSec = float64(ekho.FrameSamples) / ekho.SampleRate

// SessionResult summarizes one hosted session after it ends.
type SessionResult struct {
	// ID is the wire session identifier.
	ID uint32
	// Measurements / Actions count estimator outputs and compensator
	// corrections over the session's lifetime.
	Measurements int
	Actions      int
	// PostActionMeasurements counts measurements taken after the first
	// correction was applied (a convergence proof needs at least one).
	PostActionMeasurements int
	// FirstActionFrames is the insert size of the first compensation.
	FirstActionFrames int
	// ISDs holds every measured ISD in seconds, in order.
	ISDs []float64
	// Frames is the number of media frame pairs streamed.
	Frames int
}

// stream is a minimal content-tracked frame source with compensation
// (the hub-hosted twin of the simulator's streamScheduler).
type stream struct {
	game        *audio.Buffer
	pos         int
	silenceDebt int
	seq         uint32
}

func (s *stream) apply(a *ekho.Action) {
	s.silenceDebt += a.InsertFrames*ekho.FrameSamples + a.InsertSamples
	skip := a.SkipFrames*ekho.FrameSamples + a.SkipSamples
	if skip > 0 {
		if s.silenceDebt >= skip {
			s.silenceDebt -= skip
			skip = 0
		} else {
			skip -= s.silenceDebt
			s.silenceDebt = 0
		}
		s.pos += skip
	}
}

// next fills the caller's FrameSamples-long buffer with the stream's next
// frame (callers reuse one buffer per tick, keeping the path off the heap).
func (s *stream) next(f []float64) (contentStart int64, off uint16) {
	if s.silenceDebt >= ekho.FrameSamples {
		s.silenceDebt -= ekho.FrameSamples
		for i := range f {
			f[i] = 0
		}
		return -1, 0
	}
	o := s.silenceDebt
	s.silenceDebt = 0
	start := s.pos
	for i := 0; i < o; i++ {
		f[i] = 0
	}
	for i := o; i < ekho.FrameSamples; i++ {
		f[i] = s.game.Samples[s.pos%s.game.Len()]
		s.pos++
	}
	return int64(start), uint16(o)
}

// session is one hub-hosted Ekho pipeline: its own PN schedule, streams,
// estimator, compensator and endpoints. All fields except lastActive are
// owned by the session's shard worker; lastActive is touched by the
// receive loop and read by the reaper.
type session struct {
	id  uint32
	hub *Hub

	screenAddr     net.Addr
	controllerAddr net.Addr
	ready          bool

	screen    *stream
	accessory *stream
	injector  *ekho.Injector
	est       *ekho.Estimator
	comp      *ekho.Compensator
	dec       *codec.Decoder

	markerContent []int64
	records       []transport.PlaybackRecord
	chatNext      uint32
	chatStarted   bool
	lastChatEnd   float64

	ticks int
	res   SessionResult

	// Per-tick scratch: one frame is generated, marked, converted and
	// serialized at a time, so a single set of buffers serves both streams
	// (the socket layer does not retain sent datagrams).
	frame   []float64
	pcm     []int16
	pkt     []byte
	chatBuf []float64

	// lastActive is the wall clock (UnixNano) of the last packet seen
	// for this session, maintained by the receive loop for the reaper.
	lastActive atomic.Int64
}

func (h *Hub) newSession(id uint32) *session {
	game := h.clip(h.cfg.Clip)
	seq := h.markerSeq()
	s := &session{
		id:        id,
		hub:       h,
		screen:    &stream{game: game},
		accessory: &stream{game: game},
		injector:  ekho.NewInjector(seq, h.cfg.MarkerC),
		est:       ekho.NewEstimator(seq),
		comp:      ekho.NewCompensator(h.cfg.Compensator),
		dec:       codec.NewDecoder(h.codecProfile()),
		res:       SessionResult{ID: id},
		frame:     make([]float64, ekho.FrameSamples),
		pcm:       make([]int16, ekho.FrameSamples),
	}
	return s
}

// now is the session's content-time clock in seconds: it advances with
// the media it has streamed, so compensator settling windows hold whether
// the hub is paced by a wall-clock ticker or driven flat-out in tests.
func (s *session) now() float64 { return float64(s.ticks) * frameSec }

// handle processes one packet on the shard worker. It reports true when
// the session ended (Bye) and should be removed.
func (s *session) handle(msg transport.Message) (done bool) {
	switch msg.Type {
	case transport.TypeHello:
		s.hello(msg)
	case transport.TypeChat:
		s.chat(msg.Chat)
	case transport.TypeBye:
		s.hub.logf("hub: session %d: bye from %s", s.id, msg.From)
		return true
	}
	return false
}

func (s *session) hello(msg transport.Message) {
	switch msg.Hello.Role {
	case transport.RoleScreen:
		s.screenAddr = msg.From
		s.hub.logf("hub: session %d: screen registered from %s", s.id, msg.From)
	case transport.RoleController:
		s.controllerAddr = msg.From
		s.hub.logf("hub: session %d: controller registered from %s", s.id, msg.From)
	default:
		return
	}
	if !s.ready && s.screenAddr != nil && s.controllerAddr != nil {
		s.ready = true
		s.hub.logf("hub: session %d: both endpoints joined; streaming", s.id)
		if s.hub.cfg.OnSessionReady != nil {
			s.hub.cfg.OnSessionReady(s.id)
		}
	}
}

// tick emits one 20 ms frame pair: marked screen audio to the screen
// endpoint and accessory audio to the controller endpoint.
func (s *session) tick() {
	if !s.ready {
		return
	}
	sc, so := s.screen.next(s.frame)
	if markerStarted(s.injector, s.frame) {
		mc := sc
		if mc < 0 {
			mc = int64(s.screen.pos)
		}
		s.markerContent = append(s.markerContent, mc)
	}
	s.sendMedia(s.screenAddr, transport.Media{
		Seq: s.screen.seq, Session: s.id, ContentStart: sc, ContentOff: so})
	ac, ao := s.accessory.next(s.frame)
	s.sendMedia(s.controllerAddr, transport.Media{
		Seq: s.accessory.seq, Session: s.id, ContentStart: ac, ContentOff: ao})
	s.screen.seq++
	s.accessory.seq++
	s.ticks++
	s.res.Frames++
}

// chat runs the estimator/compensator pipeline on one uplink packet.
func (s *session) chat(chat transport.Chat) {
	if !s.ready {
		return
	}
	s.records = append(s.records, chat.Records...)
	if len(s.records) > 400 {
		s.records = s.records[len(s.records)-200:]
	}
	s.markerContent = matchMarkers(s.est, s.markerContent, s.records)
	if !s.chatStarted {
		s.chatStarted = true
		s.chatNext = chat.Seq
	}
	for chat.Seq > s.chatNext {
		// Conceal lost uplink packets so the chat timeline stays dense.
		// AddChat copies the samples, so the scratch is safe to reuse.
		s.chatBuf = s.dec.ConcealTo(s.chatBuf[:0])
		s.est.AddChat(s.chatBuf, s.lastChatEnd)
		s.lastChatEnd += frameSec
		s.chatNext++
	}
	if chat.Seq < s.chatNext {
		return
	}
	decoded, err := s.dec.DecodeTo(s.chatBuf[:0], chat.Encoded)
	if err != nil {
		decoded = s.dec.ConcealTo(s.chatBuf[:0])
	}
	s.chatBuf = decoded
	ts := float64(chat.ADCMicros)/1e6 - float64(s.hub.codecProfile().Delay())/ekho.SampleRate
	ms := s.est.AddChat(decoded, ts)
	s.lastChatEnd = ts + float64(len(decoded))/ekho.SampleRate
	s.chatNext++
	now := s.now()
	for _, m := range ms {
		s.res.Measurements++
		s.hub.stats.measurements.Add(1)
		if s.res.Actions > 0 {
			s.res.PostActionMeasurements++
		}
		s.res.ISDs = append(s.res.ISDs, m.ISDSeconds)
		s.hub.logf("hub: session %d: ISD measurement %+.1f ms (strength %.0f)", s.id, m.ISDSeconds*1000, m.Strength)
		if act := s.comp.Offer(now, m.ISDSeconds); act != nil {
			s.res.Actions++
			s.hub.stats.actions.Add(1)
			if s.res.Actions == 1 {
				s.res.FirstActionFrames = act.InsertFrames
			}
			target := s.accessory
			if act.Stream == ekho.ScreenStream {
				target = s.screen
			}
			target.apply(act)
			s.hub.logf("hub: session %d: compensation %v stream insert=%d skip=%d frames",
				s.id, act.Stream, act.InsertFrames, act.SkipFrames)
		}
	}
}

// result snapshots the session's outcome; callers must hold the shard
// worker's serialization (remove path or post-shutdown).
func (s *session) result() SessionResult { return s.res }

// sendMedia serializes the session's scratch frame as the media payload
// and transmits it through the hub socket, reusing the session's int16 and
// packet buffers. Safe because neither MemNet nor UDP retains the datagram
// after SendTo returns.
func (s *session) sendMedia(to net.Addr, m transport.Media) {
	for i, v := range s.frame {
		s.pcm[i] = audio.FloatToInt16(v)
	}
	m.Samples = s.pcm
	var err error
	if s.pkt, err = transport.AppendMedia(s.pkt[:0], m); err != nil {
		s.hub.stats.sendErrs.Add(1)
		return
	}
	s.hub.send(s.pkt, to)
}

// markerStarted runs the injector on the frame and reports whether a new
// marker began.
func markerStarted(in *ekho.Injector, frame []float64) bool {
	before := in.InjectionCount()
	in.ProcessFrame(frame)
	return in.InjectionCount() > before
}

// matchMarkers emits marker local times for contents covered by records.
func matchMarkers(est *ekho.Estimator, pending []int64, records []transport.PlaybackRecord) []int64 {
	var rest []int64
	for _, mc := range pending {
		matched := false
		for _, r := range records {
			if mc >= r.ContentStart && mc < r.ContentStart+int64(r.N) {
				t := float64(r.LocalMicros)/1e6 + float64(mc-r.ContentStart)/ekho.SampleRate
				est.AddMarkerTime(t)
				matched = true
				break
			}
		}
		if !matched {
			rest = append(rest, mc)
		}
	}
	return rest
}
