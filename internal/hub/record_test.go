package hub

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"ekho/internal/trace"
)

// TestLoopbackRecordReplay is the acceptance gate for the capture/replay
// subsystem on the live-server host: a loopback fleet recorded with
// RecordDir must replay bit-identically — each session's trace re-drives
// a fresh pipeline whose ISD sequence equals the hub's SessionResult
// exactly.
func TestLoopbackRecordReplay(t *testing.T) {
	dir := t.TempDir()
	rpt, err := RunLoopback(LoopbackScenario{
		Sessions:       3,
		ContentSeconds: 8,
		RecordDir:      dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rpt.Results) != 3 {
		t.Fatalf("expected 3 session results, got %d", len(rpt.Results))
	}
	byID := make(map[uint32]SessionResult, len(rpt.Results))
	for _, r := range rpt.Results {
		byID[r.ID] = r
	}

	for id, res := range byID {
		path := filepath.Join(dir, fmt.Sprintf("session-%d.ektrace", id))
		f, err := os.Open(path)
		if err != nil {
			t.Fatalf("session %d: trace not recorded: %v", id, err)
		}
		rep, rerr := trace.Replay(f)
		f.Close()
		if rerr != nil {
			t.Fatalf("session %d: replay: %v", id, rerr)
		}
		if !rep.OK() {
			for _, d := range rep.Divergences {
				t.Errorf("session %d: divergence %s", id, d)
			}
			t.Fatalf("session %d: replay diverged %d times", id, rep.DivergenceCount)
		}
		if rep.Header.SessionID != id {
			t.Fatalf("session %d: trace header claims session %d", id, rep.Header.SessionID)
		}
		if res.Measurements == 0 {
			t.Fatalf("session %d: live session measured nothing", id)
		}
		// Bit-identical ISD sequence vs the hub's own result log.
		if len(rep.ISDs) != len(res.ISDs) {
			t.Fatalf("session %d: replay saw %d measurements, hub saw %d", id, len(rep.ISDs), len(res.ISDs))
		}
		for i := range rep.ISDs {
			if rep.ISDs[i] != res.ISDs[i] {
				t.Fatalf("session %d: measurement %d: replay %v, hub %v", id, i, rep.ISDs[i], res.ISDs[i])
			}
		}
		if len(rep.Actions) != res.Actions {
			t.Fatalf("session %d: replay saw %d actions, hub saw %d", id, len(rep.Actions), res.Actions)
		}
		if rep.Final.Frames != res.Frames {
			t.Fatalf("session %d: replay produced %d frames, hub %d", id, rep.Final.Frames, res.Frames)
		}
	}
}

// TestSessionStatsLines checks the stable one-line-per-session format is
// available from a live hub and sorted by session ID.
func TestSessionStatsLines(t *testing.T) {
	dir := t.TempDir()
	var lines []trace.SessionStat
	_, err := RunLoopback(LoopbackScenario{
		Sessions:       2,
		ContentSeconds: 2,
		RecordDir:      dir,
		// OnSessionReady fires before streaming; sample stats mid-run via
		// the hub the scenario exposes is not plumbed, so instead verify
		// the stable format on the replayed traces below.
	})
	if err != nil {
		t.Fatal(err)
	}
	for id := uint32(1); id <= 2; id++ {
		f, err := os.Open(filepath.Join(dir, fmt.Sprintf("session-%d.ektrace", id)))
		if err != nil {
			t.Fatal(err)
		}
		rep, rerr := trace.Replay(f)
		f.Close()
		if rerr != nil {
			t.Fatal(rerr)
		}
		lines = append(lines, rep.Final)
	}
	trace.SortSessionStats(lines)
	for i, st := range lines {
		want := fmt.Sprintf("session %d frames=%d measurements=%d actions=%d pending=%d records=%d resamples=%d",
			st.ID, st.Frames, st.Measurements, st.Actions, st.Pending, st.Records, st.Resamples)
		if st.String() != want {
			t.Fatalf("line %d: %q != %q", i, st.String(), want)
		}
		if i > 0 && lines[i-1].ID > st.ID {
			t.Fatalf("stats not sorted by ID")
		}
	}
}
