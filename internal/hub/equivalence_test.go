package hub

import (
	"testing"

	"ekho"
	"ekho/internal/audio"
	"ekho/internal/codec"
	"ekho/internal/gamesynth"
	"ekho/internal/serverpipe"
)

// isdCollector records the measurement sequence a pipeline produces.
type isdCollector struct {
	serverpipe.NopSink
	isds    []float64
	actions int
}

func (c *isdCollector) ISDMeasurement(_ float64, m ekho.Measurement) {
	c.isds = append(c.isds, m.ISDSeconds)
}

func (c *isdCollector) CompensationAction(float64, ekho.Action) { c.actions++ }

// TestHubMatchesDirectPipeline is the sim/hub equivalence check for the
// shared server core: a single-session hub loopback (full wire path —
// serialization, MemNet datagrams, shard workers) must produce exactly the
// same ISD measurement sequence as a directly driven serverpipe.Pipeline
// fed the same client arithmetic. Any hub-private processing that crept
// back in (its own matcher, sequencer or scheduler) would break this.
func TestHubMatchesDirectPipeline(t *testing.T) {
	const (
		contentSeconds = 12.0
		delayFrames    = 7
		offset         = 3.0
		atten          = 0.1
	)

	rep, err := RunLoopback(LoopbackScenario{
		Sessions:       1,
		ContentSeconds: contentSeconds,
		AirDelayFrames: func(uint32) int { return delayFrames },
		ClockOffsetSec: func(uint32) float64 { return offset },
		Attenuation:    atten,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 1 {
		t.Fatalf("expected 1 session result, got %d", len(rep.Results))
	}
	hubISDs := rep.Results[0].ISDs
	if len(hubISDs) == 0 {
		t.Fatal("hub session produced no measurements")
	}

	// Direct drive: the same pipeline configuration the hub builds
	// (defaults: clip 0, seed 4242, loopback codec and settling), with the
	// loopback client's timestamp arithmetic replicated synchronously.
	sink := &isdCollector{}
	pipe := serverpipe.New(serverpipe.Config{
		Game:        gamesynth.Generate(gamesynth.Catalog()[0], gamesynth.ClipSeconds),
		Seq:         ekho.NewMarkerSequence(4242),
		Codec:       codec.Lossless,
		Compensator: ekho.CompensatorConfig{SettleSec: 3},
		Sink:        sink,
	})
	enc := codec.NewEncoder(codec.Lossless)
	frame := make([]float64, ekho.FrameSamples)
	mic := make([]float64, ekho.FrameSamples)
	ticks := int(contentSeconds / frameSec)
	for i := 0; i < ticks; i++ {
		// Screen frame: serialized to int16 on the wire, overheard at the
		// mic attenuated; the air delay is modeled by the ADC timestamp.
		fi := pipe.NextScreenFrame(frame)
		for j, v := range frame {
			mic[j] = audio.Int16ToFloat(audio.FloatToInt16(v)) * atten
		}
		// Accessory frame: every content-bearing frame yields a playback
		// record on the client's offset clock, micros-rounded on the wire.
		fa := pipe.NextAccessoryFrame(frame)
		if fa.ContentStart >= 0 {
			at := offset + float64(fa.Seq)*frameSec + float64(fa.ContentOff)/ekho.SampleRate
			pipe.OfferRecord(serverpipe.Record{
				ContentStart: fa.ContentStart,
				N:            ekho.FrameSamples - fa.ContentOff,
				LocalTime:    float64(int64(at*1e6)) / 1e6,
			})
		}
		pkt, err := enc.Encode(mic)
		if err != nil {
			t.Fatal(err)
		}
		adcMicros := int64((offset + (float64(fi.Seq)+float64(delayFrames))*frameSec) * 1e6)
		pipe.OfferChat(fi.Seq, float64(adcMicros)/1e6, pkt)
	}

	if len(sink.isds) != len(hubISDs) {
		t.Fatalf("measurement count: hub %d, direct %d", len(hubISDs), len(sink.isds))
	}
	for i := range hubISDs {
		if hubISDs[i] != sink.isds[i] {
			t.Fatalf("ISD %d: hub %.9f, direct %.9f", i, hubISDs[i], sink.isds[i])
		}
	}
	if rep.Results[0].Actions != sink.actions {
		t.Fatalf("action count: hub %d, direct %d", rep.Results[0].Actions, sink.actions)
	}
}
